package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"dcfail/internal/fot"
)

// noTimeNS is the on-wire sentinel for a zero time.Time (unset OpTime
// or DeployTime). math.MinInt64 is outside time.Time's representable
// unix-nano range, so it can never collide with a real timestamp.
const noTimeNS = math.MinInt64

// timeNS converts a time to wire nanos, mapping the zero time to the
// sentinel.
func timeNS(t time.Time) int64 {
	if t.IsZero() {
		return noTimeNS
	}
	return t.UnixNano()
}

// nsTime inverts timeNS. Real timestamps come back in UTC, matching
// what every dcfail producer stores.
func nsTime(ns int64) time.Time {
	if ns == noTimeNS {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// Report is the binary twin of fmsnet.Report: the subset of ticket
// fields a host agent knows, plus the delivery sequence number that
// rides in the JSON envelope. fmsnet converts at its boundary so the
// two packages do not import each other.
type Report struct {
	Seq        uint64
	InWarranty bool

	HostID      uint64
	Hostname    string
	IDC         string
	Rack        string
	Position    int
	Device      string
	Slot        string
	Type        string
	Time        time.Time
	Detail      string
	ProductLine string
	DeployTime  time.Time
	Model       string
}

// Encoder appends frames to caller-owned buffers, interning strings
// into the stream's symbol table as it goes. One Encoder per stream;
// it is not safe for concurrent use.
type Encoder struct {
	syms map[string]uint32
}

// NewEncoder returns an encoder with an empty symbol table.
func NewEncoder() *Encoder {
	return &Encoder{syms: make(map[string]uint32)}
}

// appendString writes one tagged string (see the package doc for the
// tag scheme), defining a new symbol when the string is unseen and the
// table has room.
func (e *Encoder) appendString(dst []byte, s string) []byte {
	if id, ok := e.syms[s]; ok {
		return binary.AppendUvarint(dst, uint64(id)+2)
	}
	if len(e.syms) < MaxSymbols {
		e.syms[s] = uint32(len(e.syms))
		dst = binary.AppendUvarint(dst, 0)
	} else {
		dst = binary.AppendUvarint(dst, 1)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendRawString writes a length-prefixed string outside the symbol
// table — used by frames (KindError) that must decode against any
// table state.
func appendRawString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

// appendTicketBody encodes the dense ticket fields: varint ids, fixed
// int64 nanos, one byte per enum, tagged strings.
func (e *Encoder) appendTicketBody(dst []byte, t *fot.Ticket) []byte {
	dst = binary.AppendUvarint(dst, t.ID)
	dst = binary.AppendUvarint(dst, t.HostID)
	dst = appendI64(dst, timeNS(t.Time))
	dst = appendI64(dst, timeNS(t.OpTime))
	dst = appendI64(dst, timeNS(t.DeployTime))
	dst = append(dst, byte(t.Device), byte(t.Category), byte(t.Action))
	dst = binary.AppendVarint(dst, int64(t.Position))
	dst = e.appendString(dst, t.Hostname)
	dst = e.appendString(dst, t.IDC)
	dst = e.appendString(dst, t.Rack)
	dst = e.appendString(dst, t.Slot)
	dst = e.appendString(dst, t.Type)
	dst = e.appendString(dst, t.Detail)
	dst = e.appendString(dst, t.Operator)
	dst = e.appendString(dst, t.ProductLine)
	return e.appendString(dst, t.Model)
}

// AppendTicket appends one KindTicket frame carrying t.
func (e *Encoder) AppendTicket(dst []byte, t *fot.Ticket) []byte {
	start := len(dst)
	dst = beginFrame(dst, KindTicket)
	dst = e.appendTicketBody(dst, t)
	return sealFrame(dst, start)
}

// AppendRow appends one KindRow frame: a replica stream row index
// followed by the ticket body.
func (e *Encoder) AppendRow(dst []byte, row int, t *fot.Ticket) []byte {
	start := len(dst)
	dst = beginFrame(dst, KindRow)
	dst = binary.AppendUvarint(dst, uint64(row))
	dst = e.appendTicketBody(dst, t)
	return sealFrame(dst, start)
}

// AppendReport appends one KindReport frame carrying r.
func (e *Encoder) AppendReport(dst []byte, r *Report) []byte {
	start := len(dst)
	dst = beginFrame(dst, KindReport)
	dst = binary.AppendUvarint(dst, r.Seq)
	var flags byte
	if r.InWarranty {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, r.HostID)
	dst = appendI64(dst, timeNS(r.Time))
	dst = appendI64(dst, timeNS(r.DeployTime))
	dst = binary.AppendVarint(dst, int64(r.Position))
	dst = e.appendString(dst, r.Hostname)
	dst = e.appendString(dst, r.IDC)
	dst = e.appendString(dst, r.Rack)
	dst = e.appendString(dst, r.Device)
	dst = e.appendString(dst, r.Slot)
	dst = e.appendString(dst, r.Type)
	dst = e.appendString(dst, r.Detail)
	dst = e.appendString(dst, r.ProductLine)
	dst = e.appendString(dst, r.Model)
	return sealFrame(dst, start)
}

// AppendAck appends one KindAck frame: ticket id + duplicate flag. It
// touches no symbol state, so it needs no Encoder.
func AppendAck(dst []byte, ticketID uint64, duplicate bool) []byte {
	start := len(dst)
	dst = beginFrame(dst, KindAck)
	dst = binary.AppendUvarint(dst, ticketID)
	var flags byte
	if duplicate {
		flags |= 1
	}
	dst = append(dst, flags)
	return sealFrame(dst, start)
}

// AppendError appends one KindError frame: code + message as raw
// strings, decodable against any symbol-table state.
func AppendError(dst []byte, code, msg string) []byte {
	start := len(dst)
	dst = beginFrame(dst, KindError)
	dst = appendRawString(dst, code)
	dst = appendRawString(dst, msg)
	return sealFrame(dst, start)
}

// AppendEpoch appends one KindEpoch frame: the replica fold marker.
func AppendEpoch(dst []byte, epoch uint64, rows int, foldedAt time.Time) []byte {
	start := len(dst)
	dst = beginFrame(dst, KindEpoch)
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, uint64(rows))
	dst = appendI64(dst, timeNS(foldedAt))
	return sealFrame(dst, start)
}

// AppendHello appends one KindHello frame: the replica heartbeat
// carrying the primary's current epoch and row count.
func AppendHello(dst []byte, epoch uint64, rows int) []byte {
	start := len(dst)
	dst = beginFrame(dst, KindHello)
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, uint64(rows))
	return sealFrame(dst, start)
}

// Decoder decodes frame payloads, mirroring the peer Encoder's symbol
// table. One Decoder per stream; not safe for concurrent use.
type Decoder struct {
	syms []string
}

// NewDecoder returns a decoder with an empty symbol table.
func NewDecoder() *Decoder {
	return &Decoder{}
}

// readUvarint decodes one uvarint at p[pos:].
func readUvarint(p []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(p[pos:])
	if n <= 0 {
		return 0, pos, fmt.Errorf("%w: bad uvarint at %d", ErrMalformed, pos)
	}
	return v, pos + n, nil
}

// readVarint decodes one zigzag varint at p[pos:].
func readVarint(p []byte, pos int) (int64, int, error) {
	v, n := binary.Varint(p[pos:])
	if n <= 0 {
		return 0, pos, fmt.Errorf("%w: bad varint at %d", ErrMalformed, pos)
	}
	return v, pos + n, nil
}

// readI64 decodes one fixed little-endian int64 at p[pos:].
func readI64(p []byte, pos int) (int64, int, error) {
	if len(p)-pos < 8 {
		return 0, pos, fmt.Errorf("%w: short int64 at %d", ErrMalformed, pos)
	}
	return int64(binary.LittleEndian.Uint64(p[pos:])), pos + 8, nil
}

// readByte decodes one byte at p[pos:].
func readByte(p []byte, pos int) (byte, int, error) {
	if pos >= len(p) {
		return 0, pos, fmt.Errorf("%w: short byte at %d", ErrMalformed, pos)
	}
	return p[pos], pos + 1, nil
}

// readRawString decodes one length-prefixed string outside the symbol
// table.
func readRawString(p []byte, pos int) (string, int, error) {
	ln, pos, err := readUvarint(p, pos)
	if err != nil {
		return "", pos, err
	}
	if ln > uint64(len(p)-pos) {
		return "", pos, fmt.Errorf("%w: string length %d overruns payload", ErrMalformed, ln)
	}
	s := string(p[pos : pos+int(ln)])
	return s, pos + int(ln), nil
}

// readString decodes one tagged string, updating the symbol table on a
// definition.
func (d *Decoder) readString(p []byte, pos int) (string, int, error) {
	tag, pos, err := readUvarint(p, pos)
	if err != nil {
		return "", pos, err
	}
	switch tag {
	case 0, 1:
		s, pos, err := readRawString(p, pos)
		if err != nil {
			return "", pos, err
		}
		if tag == 0 {
			if len(d.syms) >= MaxSymbols {
				return "", pos, fmt.Errorf("%w: symbol table overflow", ErrMalformed)
			}
			d.syms = append(d.syms, s)
		}
		return s, pos, nil
	default:
		id := tag - 2
		if id >= uint64(len(d.syms)) {
			return "", pos, fmt.Errorf("%w: id %d of %d", ErrSymbol, id, len(d.syms))
		}
		return d.syms[id], pos, nil
	}
}

// decodeTicketBody decodes a ticket body at p[pos:] into t, returning
// the position past it.
func (d *Decoder) decodeTicketBody(p []byte, pos int, t *fot.Ticket) (int, error) {
	var err error
	if t.ID, pos, err = readUvarint(p, pos); err != nil {
		return pos, err
	}
	if t.HostID, pos, err = readUvarint(p, pos); err != nil {
		return pos, err
	}
	var ns int64
	if ns, pos, err = readI64(p, pos); err != nil {
		return pos, err
	}
	t.Time = nsTime(ns)
	if ns, pos, err = readI64(p, pos); err != nil {
		return pos, err
	}
	t.OpTime = nsTime(ns)
	if ns, pos, err = readI64(p, pos); err != nil {
		return pos, err
	}
	t.DeployTime = nsTime(ns)
	var b byte
	if b, pos, err = readByte(p, pos); err != nil {
		return pos, err
	}
	t.Device = fot.Component(b)
	if b, pos, err = readByte(p, pos); err != nil {
		return pos, err
	}
	t.Category = fot.Category(b)
	if b, pos, err = readByte(p, pos); err != nil {
		return pos, err
	}
	t.Action = fot.Action(b)
	var v int64
	if v, pos, err = readVarint(p, pos); err != nil {
		return pos, err
	}
	t.Position = int(v)
	if t.Hostname, pos, err = d.readString(p, pos); err != nil {
		return pos, err
	}
	if t.IDC, pos, err = d.readString(p, pos); err != nil {
		return pos, err
	}
	if t.Rack, pos, err = d.readString(p, pos); err != nil {
		return pos, err
	}
	if t.Slot, pos, err = d.readString(p, pos); err != nil {
		return pos, err
	}
	if t.Type, pos, err = d.readString(p, pos); err != nil {
		return pos, err
	}
	if t.Detail, pos, err = d.readString(p, pos); err != nil {
		return pos, err
	}
	if t.Operator, pos, err = d.readString(p, pos); err != nil {
		return pos, err
	}
	if t.ProductLine, pos, err = d.readString(p, pos); err != nil {
		return pos, err
	}
	if t.Model, pos, err = d.readString(p, pos); err != nil {
		return pos, err
	}
	return pos, nil
}

// DecodeTicketInto decodes a KindTicket payload into *t without
// allocating (beyond symbol definitions on first sight).
func (d *Decoder) DecodeTicketInto(p []byte, t *fot.Ticket) error {
	*t = fot.Ticket{}
	pos, err := d.decodeTicketBody(p, 0, t)
	if err != nil {
		return err
	}
	if pos != len(p) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(p)-pos)
	}
	return nil
}

// DecodeTicket decodes a KindTicket payload.
func (d *Decoder) DecodeTicket(p []byte) (fot.Ticket, error) {
	var t fot.Ticket
	err := d.DecodeTicketInto(p, &t)
	return t, err
}

// DecodeRowInto decodes a KindRow payload: the replica row index and
// the ticket it carries.
func (d *Decoder) DecodeRowInto(p []byte, t *fot.Ticket) (row int, err error) {
	*t = fot.Ticket{}
	r, pos, err := readUvarint(p, 0)
	if err != nil {
		return 0, err
	}
	pos, err = d.decodeTicketBody(p, pos, t)
	if err != nil {
		return 0, err
	}
	if pos != len(p) {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(p)-pos)
	}
	return int(r), nil
}

// DecodeReportInto decodes a KindReport payload into *r.
func (d *Decoder) DecodeReportInto(p []byte, r *Report) error {
	*r = Report{}
	var err error
	pos := 0
	if r.Seq, pos, err = readUvarint(p, pos); err != nil {
		return err
	}
	var flags byte
	if flags, pos, err = readByte(p, pos); err != nil {
		return err
	}
	r.InWarranty = flags&1 != 0
	if r.HostID, pos, err = readUvarint(p, pos); err != nil {
		return err
	}
	var ns int64
	if ns, pos, err = readI64(p, pos); err != nil {
		return err
	}
	r.Time = nsTime(ns)
	if ns, pos, err = readI64(p, pos); err != nil {
		return err
	}
	r.DeployTime = nsTime(ns)
	var v int64
	if v, pos, err = readVarint(p, pos); err != nil {
		return err
	}
	r.Position = int(v)
	if r.Hostname, pos, err = d.readString(p, pos); err != nil {
		return err
	}
	if r.IDC, pos, err = d.readString(p, pos); err != nil {
		return err
	}
	if r.Rack, pos, err = d.readString(p, pos); err != nil {
		return err
	}
	if r.Device, pos, err = d.readString(p, pos); err != nil {
		return err
	}
	if r.Slot, pos, err = d.readString(p, pos); err != nil {
		return err
	}
	if r.Type, pos, err = d.readString(p, pos); err != nil {
		return err
	}
	if r.Detail, pos, err = d.readString(p, pos); err != nil {
		return err
	}
	if r.ProductLine, pos, err = d.readString(p, pos); err != nil {
		return err
	}
	if r.Model, pos, err = d.readString(p, pos); err != nil {
		return err
	}
	if pos != len(p) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(p)-pos)
	}
	return nil
}

// DecodeAck decodes a KindAck payload.
func DecodeAck(p []byte) (ticketID uint64, duplicate bool, err error) {
	id, pos, err := readUvarint(p, 0)
	if err != nil {
		return 0, false, err
	}
	flags, pos, err := readByte(p, pos)
	if err != nil {
		return 0, false, err
	}
	if pos != len(p) {
		return 0, false, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(p)-pos)
	}
	return id, flags&1 != 0, nil
}

// DecodeError decodes a KindError payload.
func DecodeError(p []byte) (code, msg string, err error) {
	code, pos, err := readRawString(p, 0)
	if err != nil {
		return "", "", err
	}
	msg, pos, err = readRawString(p, pos)
	if err != nil {
		return "", "", err
	}
	if pos != len(p) {
		return "", "", fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(p)-pos)
	}
	return code, msg, nil
}

// DecodeEpoch decodes a KindEpoch payload.
func DecodeEpoch(p []byte) (epoch uint64, rows int, foldedAt time.Time, err error) {
	e, pos, err := readUvarint(p, 0)
	if err != nil {
		return 0, 0, time.Time{}, err
	}
	r, pos, err := readUvarint(p, pos)
	if err != nil {
		return 0, 0, time.Time{}, err
	}
	ns, pos, err := readI64(p, pos)
	if err != nil {
		return 0, 0, time.Time{}, err
	}
	if pos != len(p) {
		return 0, 0, time.Time{}, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(p)-pos)
	}
	return e, int(r), nsTime(ns), nil
}

// DecodeHello decodes a KindHello payload.
func DecodeHello(p []byte) (epoch uint64, rows int, err error) {
	e, pos, err := readUvarint(p, 0)
	if err != nil {
		return 0, 0, err
	}
	r, pos, err := readUvarint(p, pos)
	if err != nil {
		return 0, 0, err
	}
	if pos != len(p) {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(p)-pos)
	}
	return e, int(r), nil
}
