package wire

import (
	"errors"
	"testing"
	"time"

	"dcfail/internal/fot"
)

// FuzzDecodeFrame drives the frame splitter and every payload decoder
// with arbitrary bytes: the decoders must never panic, and any rejection
// must be one of the package's typed errors.
func FuzzDecodeFrame(f *testing.F) {
	enc := NewEncoder()
	for i := 0; i < 4; i++ {
		tk := testTicket(i)
		f.Add(enc.AppendTicket(nil, &tk))
		f.Add(enc.AppendRow(nil, i*10, &tk))
	}
	rep := Report{Seq: 9, InWarranty: true, HostID: 4, IDC: "idc-1", Device: "memory",
		Type: "CE", Time: time.Date(2019, 1, 2, 3, 4, 5, 6, time.UTC)}
	f.Add(enc.AppendReport(nil, &rep))
	f.Add(AppendAck(nil, 12, false))
	f.Add(AppendError(nil, "bad_request", "nope"))
	f.Add(AppendEpoch(nil, 3, 77, time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)))
	f.Add(AppendHello(nil, 1, 2))
	f.Add([]byte{})
	f.Add([]byte{Version})

	typed := func(err error) bool {
		return errors.Is(err, ErrTruncated) || errors.Is(err, ErrCRC) ||
			errors.Is(err, ErrVersion) || errors.Is(err, ErrFrameTooBig) ||
			errors.Is(err, ErrMalformed) || errors.Is(err, ErrSymbol)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for i := 0; i < 64 && len(rest) > 0; i++ {
			kind, payload, next, err := DecodeFrame(rest)
			if err != nil {
				if !typed(err) {
					t.Fatalf("untyped frame error: %v", err)
				}
				return
			}
			dec := NewDecoder()
			switch kind {
			case KindTicket:
				if _, err := dec.DecodeTicket(payload); err != nil && !typed(err) {
					t.Fatalf("untyped ticket error: %v", err)
				}
			case KindRow:
				var tkt fot.Ticket
				if _, err := dec.DecodeRowInto(payload, &tkt); err != nil && !typed(err) {
					t.Fatalf("untyped row error: %v", err)
				}
			case KindReport:
				var r Report
				if err := dec.DecodeReportInto(payload, &r); err != nil && !typed(err) {
					t.Fatalf("untyped report error: %v", err)
				}
			case KindAck:
				if _, _, err := DecodeAck(payload); err != nil && !typed(err) {
					t.Fatalf("untyped ack error: %v", err)
				}
			case KindError:
				if _, _, err := DecodeError(payload); err != nil && !typed(err) {
					t.Fatalf("untyped error-frame error: %v", err)
				}
			case KindEpoch:
				if _, _, _, err := DecodeEpoch(payload); err != nil && !typed(err) {
					t.Fatalf("untyped epoch error: %v", err)
				}
			case KindHello:
				if _, _, err := DecodeHello(payload); err != nil && !typed(err) {
					t.Fatalf("untyped hello error: %v", err)
				}
			}
			rest = next
		}
	})
}
