// Package wire implements dcfail's binary ticket codec: the
// length-prefixed, CRC-framed wire format that fmsnet (agent →
// collector), internal/replica (primary → replica), and the binary
// archive log share. It exists because the system's throughput ceiling
// moved to the edges once the analysis core went columnar — JSON
// marshalling of ~300-byte ticket lines was the ingest hot path.
//
// # Frame layout
//
// Every message is one frame:
//
//	offset  size  field
//	0       1     version (currently 1)
//	1       1     kind (Kind* constant)
//	2       4     payload length, uint32 little-endian
//	6       4     CRC-32 (IEEE) of the payload, uint32 little-endian
//	10      n     payload
//
// The CRC covers the payload only; the header is validated
// structurally (version, kind, bounded length). A frame never exceeds
// MaxFrameBytes of payload, mirroring fmsnet's JSON line bound.
//
// # Strings and the symbol table
//
// Ticket payloads are dense: int64 unix-nanos for times, single bytes
// for the Category/Component/Action enums, varints for ids, and
// interned symbol references for the nine string fields. Both ends of
// a stream maintain one shared, append-only symbol table; the encoder
// defines a symbol the first time it sends a string and refers back by
// index afterwards, so a steady-state ticket frame carries no string
// bytes at all. Each string is prefixed with a uvarint tag:
//
//	tag 0    definition: uvarint length + bytes follow; BOTH sides
//	         append the string to their table (next id = len(table))
//	tag 1    raw: uvarint length + bytes follow; NOT added to the
//	         table (the encoder's escape once MaxSymbols is reached,
//	         so the two tables can never desynchronize)
//	tag k≥2  reference to table entry k-2
//
// The table is per-stream state: a new connection (or a new archive
// log file) starts with an empty table on both sides. Decoders reject
// references past the table end with ErrSymbol rather than guessing.
//
// # Error taxonomy
//
// Decoders never panic on hostile input; they return typed errors that
// callers classify with errors.Is: ErrTruncated (input ends
// mid-frame — the torn-tail case recovery paths tolerate), ErrCRC
// (payload corrupt), ErrVersion / ErrFrameTooBig / ErrMalformed /
// ErrSymbol (structurally invalid).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the frame format version this package encodes. Decoders
// reject other versions with ErrVersion; a future incompatible layout
// bumps this byte and negotiates a new codec name.
const Version = 1

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 10

// MaxFrameBytes bounds one frame's payload, mirroring fmsnet's JSON
// line bound so neither codec can make the other's peer buffer more.
const MaxFrameBytes = 1 << 20

// MaxSymbols caps a stream's symbol table. Past the cap the encoder
// falls back to raw (non-interned) strings; both sides stop growing
// their tables at exactly the same point.
const MaxSymbols = 1 << 20

// CodecBinV1 is the negotiation token for this codec, offered in the
// JSON hello exchange ("codecs":["bin/1"]) and echoed back by a peer
// that accepts it. Peers that predate the token ignore the field and
// the stream stays NL-JSON.
const CodecBinV1 = "bin/1"

// Frame kinds.
const (
	// KindTicket carries one fully-materialized fot.Ticket (archive log,
	// tooling).
	KindTicket byte = 1
	// KindReport carries one agent failure report (fmsnet).
	KindReport byte = 2
	// KindAck acknowledges a report: ticket id + duplicate flag.
	KindAck byte = 3
	// KindError carries a coded rejection (code + message strings).
	KindError byte = 4
	// KindEpoch marks a replica fold point: epoch, rows, folded-at.
	KindEpoch byte = 5
	// KindHello is the replica heartbeat/status frame: epoch, rows.
	KindHello byte = 6
	// KindRow carries one replica stream row: row index + ticket body.
	KindRow byte = 7
)

// Typed decode errors.
var (
	// ErrTruncated marks input that ends mid-frame (short header or
	// short payload) — the recoverable torn-tail shape.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrCRC marks a payload whose checksum does not match its header.
	ErrCRC = errors.New("wire: frame CRC mismatch")
	// ErrVersion marks a frame with an unsupported version byte.
	ErrVersion = errors.New("wire: unsupported frame version")
	// ErrFrameTooBig marks a header declaring a payload over MaxFrameBytes.
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	// ErrMalformed marks a structurally invalid payload (bad varint,
	// length overrun, short fixed field).
	ErrMalformed = errors.New("wire: malformed payload")
	// ErrSymbol marks a reference past the end of the symbol table.
	ErrSymbol = errors.New("wire: unknown symbol reference")
)

// beginFrame appends a frame header with zeroed length/CRC; sealFrame
// backfills them once the payload is appended.
func beginFrame(dst []byte, kind byte) []byte {
	return append(dst, Version, kind, 0, 0, 0, 0, 0, 0, 0, 0)
}

// sealFrame backfills the length and CRC of the frame whose header
// starts at start. The payload is everything appended after the header.
func sealFrame(dst []byte, start int) []byte {
	payload := dst[start+HeaderSize:]
	binary.LittleEndian.PutUint32(dst[start+2:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+6:], crc32.ChecksumIEEE(payload))
	return dst
}

// DecodeFrame splits one frame off the front of b, validating version,
// size bound, and CRC. It returns the frame kind, its payload (aliasing
// b), and the remaining bytes. ErrTruncated means b ends mid-frame —
// callers tailing a live file treat that as "stop here, retry later".
func DecodeFrame(b []byte) (kind byte, payload []byte, rest []byte, err error) {
	if len(b) < HeaderSize {
		return 0, nil, b, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), HeaderSize)
	}
	if b[0] != Version {
		return 0, nil, b, fmt.Errorf("%w: %d", ErrVersion, b[0])
	}
	n := binary.LittleEndian.Uint32(b[2:6])
	if n > MaxFrameBytes {
		return 0, nil, b, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if uint32(len(b)-HeaderSize) < n {
		return 0, nil, b, fmt.Errorf("%w: %d payload bytes of %d", ErrTruncated, len(b)-HeaderSize, n)
	}
	payload = b[HeaderSize : HeaderSize+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[6:10]) {
		return 0, nil, b, ErrCRC
	}
	return b[1], payload, b[HeaderSize+int(n):], nil
}

// FrameReader reads frames off an io.Reader, reusing one payload
// buffer across calls so steady-state ingest allocates nothing. The
// payload returned by Next is valid only until the following Next.
type FrameReader struct {
	r   io.Reader
	hdr [HeaderSize]byte
	buf []byte
}

// NewFrameReader wraps r. Wrap r in a bufio.Reader first when the
// transport benefits from read coalescing; FrameReader issues exactly
// two reads per frame.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next reads and validates the next frame. A clean end of stream
// (EOF on a frame boundary) returns io.EOF; EOF mid-frame returns
// ErrTruncated.
func (fr *FrameReader) Next() (kind byte, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: short header", ErrTruncated)
		}
		return 0, nil, err
	}
	if fr.hdr[0] != Version {
		return 0, nil, fmt.Errorf("%w: %d", ErrVersion, fr.hdr[0])
	}
	n := binary.LittleEndian.Uint32(fr.hdr[2:6])
	if n > MaxFrameBytes {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: short payload", ErrTruncated)
		}
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(buf) != binary.LittleEndian.Uint32(fr.hdr[6:10]) {
		return 0, nil, ErrCRC
	}
	return fr.hdr[1], buf, nil
}
