package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"dcfail/internal/fot"
)

// crossCorpus is a set of tickets chosen to stress codec boundaries:
// sub-second timestamps (which JSON's RFC 3339 encoding truncates to
// whole seconds), unset optional times, empty optional strings, and
// multi-byte UTF-8 in free-text fields.
func crossCorpus() []fot.Ticket {
	base := time.Date(2017, 11, 5, 3, 4, 5, 0, time.UTC)
	tickets := []fot.Ticket{
		testTicket(0),
		testTicket(3),
		{
			ID: 7, HostID: 42, IDC: "idc-北京-1", Position: 1,
			Device: fot.Memory, Type: "CE Overflow",
			Time:     base.Add(999999999 * time.Nanosecond), // sub-second
			Detail:   "corrected errors ≥ threshold — überwachung",
			Category: fot.Error, Action: fot.ActionIgnore,
		},
		{
			ID: 8, HostID: 43, IDC: "dc01", Position: 2,
			Device: fot.HDD, Type: "SMARTFail",
			Time:     base,
			Category: fot.Fixing, Action: fot.ActionNone,
			// every optional field empty/zero
		},
	}
	return tickets
}

// binRoundTrip pushes one ticket through a fresh encoder/decoder pair.
func binRoundTrip(t *testing.T, tk fot.Ticket) fot.Ticket {
	t.Helper()
	frame := NewEncoder().AppendTicket(nil, &tk)
	kind, payload, rest, err := DecodeFrame(frame)
	if err != nil || kind != KindTicket || len(rest) != 0 {
		t.Fatalf("DecodeFrame: kind=%d rest=%d err=%v", kind, len(rest), err)
	}
	got, err := NewDecoder().DecodeTicket(payload)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// jsonRoundTrip pushes one ticket through the archive/trace JSON-lines
// codec.
func jsonRoundTrip(t *testing.T, tk fot.Ticket) fot.Ticket {
	t.Helper()
	line, err := fot.MarshalJSONLine(tk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fot.UnmarshalJSONLine(line)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestCrossCodecRoundTripEquivalence pins the contract the mixed-codec
// archive and the report byte-identity gate rely on: the binary codec is
// lossless on any ticket, and on the JSON-normalized image of a ticket
// (what a JSON segment or the legacy wire actually stores) the two
// codecs are interchangeable — a ticket can cross JSON→binary→JSON any
// number of times without drifting by a byte.
func TestCrossCodecRoundTripEquivalence(t *testing.T) {
	for i, tk := range crossCorpus() {
		// Binary alone is exact, nanoseconds included.
		if got := binRoundTrip(t, tk); !reflect.DeepEqual(got, tk) {
			t.Fatalf("ticket %d: binary round trip not lossless:\n got %+v\nwant %+v", i, got, tk)
		}

		// JSON normalizes (RFC 3339 truncates sub-second precision); its
		// image must be a fixed point of BOTH codecs.
		norm := jsonRoundTrip(t, tk)
		if again := jsonRoundTrip(t, norm); !reflect.DeepEqual(again, norm) {
			t.Fatalf("ticket %d: JSON round trip not idempotent", i)
		}
		if got := binRoundTrip(t, norm); !reflect.DeepEqual(got, norm) {
			t.Fatalf("ticket %d: binary round trip of JSON-normalized ticket drifted:\n got %+v\nwant %+v", i, got, norm)
		}

		// And the serialized images agree: re-marshaling the binary round
		// trip reproduces the original JSON line byte for byte.
		want, err := fot.MarshalJSONLine(norm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fot.MarshalJSONLine(binRoundTrip(t, norm))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("ticket %d: JSON image changed across the binary codec:\n got %s\nwant %s", i, got, want)
		}
	}
}
