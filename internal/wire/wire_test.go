package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"dcfail/internal/fot"
)

func testTicket(i int) fot.Ticket {
	base := time.Date(2018, 4, 1, 9, 30, 0, 123456789, time.UTC)
	return fot.Ticket{
		ID:          uint64(i + 1),
		HostID:      uint64(1000 + i%7),
		Hostname:    "host-7",
		IDC:         "idc-beijing-2",
		Rack:        "r12",
		Position:    3 + i%5,
		Device:      fot.HDD,
		Slot:        "slot-1",
		Type:        "MediumError",
		Time:        base.Add(time.Duration(i) * 41 * time.Second),
		Detail:      "SMART reallocated sector count exceeded threshold",
		Category:    fot.Fixing,
		Action:      fot.ActionRepairOrder,
		Operator:    "op-3",
		OpTime:      base.Add(time.Duration(i)*41*time.Second + 6*time.Hour),
		ProductLine: "search",
		DeployTime:  base.AddDate(-2, 0, 0),
		Model:       "ST4000NM0033",
	}
}

func TestTicketRoundTrip(t *testing.T) {
	enc := NewEncoder()
	dec := NewDecoder()
	var buf []byte
	for i := 0; i < 10; i++ {
		want := testTicket(i)
		if i == 4 { // unset optional times must survive the sentinel
			want.OpTime = time.Time{}
			want.DeployTime = time.Time{}
			want.Operator = ""
		}
		buf = enc.AppendTicket(buf[:0], &want)
		kind, payload, rest, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("ticket %d: DecodeFrame: %v", i, err)
		}
		if kind != KindTicket || len(rest) != 0 {
			t.Fatalf("ticket %d: kind=%d rest=%d", i, kind, len(rest))
		}
		got, err := dec.DecodeTicket(payload)
		if err != nil {
			t.Fatalf("ticket %d: DecodeTicket: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ticket %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestSymbolInterningShrinksSteadyStateFrames(t *testing.T) {
	enc := NewEncoder()
	tk := testTicket(0)
	first := enc.AppendTicket(nil, &tk)
	second := enc.AppendTicket(nil, &tk)
	if len(second) >= len(first) {
		t.Fatalf("interning did not shrink repeat frame: first=%d second=%d", len(first), len(second))
	}
	// All nine strings collapse to one-or-two-byte references; the repeat
	// frame should carry no string bytes at all.
	if len(second) > HeaderSize+64 {
		t.Fatalf("steady-state frame unexpectedly large: %d bytes", len(second))
	}
}

func TestRawStringTagDoesNotGrowTable(t *testing.T) {
	// Hand-build a ticket body whose strings all use tag 1 (raw): the
	// decoder must accept them without extending its table, so a
	// following tag-2 reference is ErrSymbol.
	var p []byte
	p = binary.AppendUvarint(p, 1)  // id
	p = binary.AppendUvarint(p, 2)  // host
	p = appendI64(p, 42)            // time
	p = appendI64(p, noTimeNS)      // optime
	p = appendI64(p, noTimeNS)      // deploytime
	p = append(p, 1, 1, 0)          // device, category, action
	p = binary.AppendVarint(p, 0)   // position
	for i := 0; i < 8; i++ {
		p = binary.AppendUvarint(p, 1) // raw tag
		p = binary.AppendUvarint(p, 1)
		p = append(p, 'x')
	}
	p = binary.AppendUvarint(p, 2) // reference into an empty table
	dec := NewDecoder()
	_, err := dec.DecodeTicket(p)
	if !errors.Is(err, ErrSymbol) {
		t.Fatalf("want ErrSymbol for reference after raw-only strings, got %v", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	enc := NewEncoder()
	dec := NewDecoder()
	want := Report{
		Seq:         77,
		InWarranty:  true,
		HostID:      42,
		Hostname:    "host-42",
		IDC:         "idc-1",
		Rack:        "r3",
		Position:    12,
		Device:      "hard drive",
		Slot:        "s2",
		Type:        "NotReady",
		Time:        time.Date(2019, 2, 3, 4, 5, 6, 7, time.UTC),
		Detail:      "spin-up failure",
		ProductLine: "ads",
		DeployTime:  time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		Model:       "WD4000FYYZ",
	}
	buf := enc.AppendReport(nil, &want)
	kind, payload, _, err := DecodeFrame(buf)
	if err != nil || kind != KindReport {
		t.Fatalf("DecodeFrame: kind=%d err=%v", kind, err)
	}
	var got Report
	if err := dec.DecodeReportInto(payload, &got); err != nil {
		t.Fatalf("DecodeReportInto: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("report mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRowAckErrorEpochHelloRoundTrips(t *testing.T) {
	enc := NewEncoder()
	dec := NewDecoder()
	tk := testTicket(3)
	buf := enc.AppendRow(nil, 1234, &tk)
	kind, payload, _, err := DecodeFrame(buf)
	if err != nil || kind != KindRow {
		t.Fatalf("row frame: kind=%d err=%v", kind, err)
	}
	var got fot.Ticket
	row, err := dec.DecodeRowInto(payload, &got)
	if err != nil || row != 1234 || !reflect.DeepEqual(got, tk) {
		t.Fatalf("row decode: row=%d err=%v", row, err)
	}

	buf = AppendAck(nil, 99, true)
	kind, payload, _, err = DecodeFrame(buf)
	if err != nil || kind != KindAck {
		t.Fatalf("ack frame: kind=%d err=%v", kind, err)
	}
	id, dup, err := DecodeAck(payload)
	if err != nil || id != 99 || !dup {
		t.Fatalf("ack decode: id=%d dup=%v err=%v", id, dup, err)
	}

	buf = AppendError(nil, "bad_request", "no such kind")
	kind, payload, _, err = DecodeFrame(buf)
	if err != nil || kind != KindError {
		t.Fatalf("error frame: kind=%d err=%v", kind, err)
	}
	code, msg, err := DecodeError(payload)
	if err != nil || code != "bad_request" || msg != "no such kind" {
		t.Fatalf("error decode: %q %q %v", code, msg, err)
	}

	at := time.Date(2020, 6, 7, 8, 9, 10, 11, time.UTC)
	buf = AppendEpoch(nil, 7, 290000, at)
	kind, payload, _, err = DecodeFrame(buf)
	if err != nil || kind != KindEpoch {
		t.Fatalf("epoch frame: kind=%d err=%v", kind, err)
	}
	ep, rows, folded, err := DecodeEpoch(payload)
	if err != nil || ep != 7 || rows != 290000 || !folded.Equal(at) {
		t.Fatalf("epoch decode: %d %d %v %v", ep, rows, folded, err)
	}

	buf = AppendHello(nil, 3, 1000)
	kind, payload, _, err = DecodeFrame(buf)
	if err != nil || kind != KindHello {
		t.Fatalf("hello frame: kind=%d err=%v", kind, err)
	}
	ep, rows, err = DecodeHello(payload)
	if err != nil || ep != 3 || rows != 1000 {
		t.Fatalf("hello decode: %d %d %v", ep, rows, err)
	}
}

func TestDecodeFrameTypedErrors(t *testing.T) {
	enc := NewEncoder()
	tk := testTicket(0)
	frame := enc.AppendTicket(nil, &tk)

	for cut := 0; cut < len(frame); cut++ {
		_, _, _, err := DecodeFrame(frame[:cut])
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: want ErrTruncated, got %v", cut, err)
		}
	}

	bad := bytes.Clone(frame)
	bad[0] = 9
	if _, _, _, err := DecodeFrame(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}

	bad = bytes.Clone(frame)
	binary.LittleEndian.PutUint32(bad[2:], MaxFrameBytes+1)
	if _, _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("want ErrFrameTooBig, got %v", err)
	}

	bad = bytes.Clone(frame)
	bad[len(bad)-1] ^= 0xff
	if _, _, _, err := DecodeFrame(bad); !errors.Is(err, ErrCRC) {
		t.Fatalf("want ErrCRC, got %v", err)
	}

	// Trailing garbage inside a valid frame payload is ErrMalformed.
	withJunk := NewEncoder().AppendTicket(nil, &tk)
	withJunk = append(withJunk, 0xaa)
	binary.LittleEndian.PutUint32(withJunk[2:], uint32(len(withJunk)-HeaderSize))
	// recompute CRC over the padded payload
	withJunk = sealFrame(withJunk, 0)
	_, payload, _, err := DecodeFrame(withJunk)
	if err != nil {
		t.Fatalf("padded frame should pass CRC: %v", err)
	}
	if _, err := NewDecoder().DecodeTicket(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed on trailing bytes, got %v", err)
	}
}

func TestFrameReaderStreamAndTornTail(t *testing.T) {
	enc := NewEncoder()
	var stream []byte
	var want []fot.Ticket
	for i := 0; i < 25; i++ {
		tk := testTicket(i)
		want = append(want, tk)
		stream = enc.AppendTicket(stream, &tk)
	}
	fr := NewFrameReader(bytes.NewReader(stream))
	dec := NewDecoder()
	var got []fot.Ticket
	for {
		kind, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if kind != KindTicket {
			t.Fatalf("kind=%d", kind)
		}
		tk, err := dec.DecodeTicket(payload)
		if err != nil {
			t.Fatalf("DecodeTicket: %v", err)
		}
		got = append(got, tk)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream round trip mismatch (%d vs %d tickets)", len(got), len(want))
	}

	// A stream cut mid-frame must surface ErrTruncated, not EOF.
	for _, cut := range []int{len(stream) - 1, len(stream) - HeaderSize - 1, len(stream) - 3} {
		fr := NewFrameReader(bytes.NewReader(stream[:cut]))
		var err error
		for {
			_, _, err = fr.Next()
			if err != nil {
				break
			}
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: want ErrTruncated, got %v", cut, err)
		}
	}
}

func TestSteadyStateCodecDoesNotAllocate(t *testing.T) {
	enc := NewEncoder()
	dec := NewDecoder()
	tk := testTicket(0)
	buf := make([]byte, 0, 1024)
	// Warm the symbol tables and the scratch ticket.
	buf = enc.AppendTicket(buf[:0], &tk)
	var out fot.Ticket
	_, payload, _, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.DecodeTicketInto(payload, &out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = enc.AppendTicket(buf[:0], &tk)
		_, payload, _, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.DecodeTicketInto(payload, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state encode+decode allocates %.1f times per ticket; want 0", allocs)
	}
}
