package fmsnet

import (
	"testing"
	"time"
)

func TestRunAgentDeliversAll(t *testing.T) {
	col := startCollector(t)
	reports := make(chan *Report, 64)
	for i := uint64(1); i <= 50; i++ {
		reports <- sampleReport(i, true)
	}
	close(reports)
	stats, err := RunAgent(col.Addr(), reports, DefaultAgentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 50 {
		t.Errorf("sent = %d, want 50", stats.Sent)
	}
	if col.Trace().Len() != 50 {
		t.Errorf("collector has %d tickets", col.Trace().Len())
	}
}

func TestRunAgentSurvivesCollectorRestart(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := col.Addr()

	reports := make(chan *Report)
	done := make(chan struct{})
	var stats *AgentStats
	var agentErr error
	go func() {
		defer close(done)
		cfg := DefaultAgentConfig()
		cfg.MaxAttempts = 40
		cfg.RetryMax = 300 * time.Millisecond
		stats, agentErr = RunAgent(addr, reports, cfg)
	}()
	send := func(r *Report) {
		t.Helper()
		select {
		case reports <- r:
		case <-done:
			t.Fatalf("agent exited early: %v", agentErr)
		case <-time.After(30 * time.Second):
			t.Fatal("send blocked — agent stalled")
		}
	}

	send(sampleReport(1, true))
	// Kill the collector mid-stream, then bring a new one up on the same
	// address while the agent is retrying.
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		col2, err := NewCollector(addr)
		if err != nil {
			t.Logf("rebind failed: %v", err)
			return
		}
		t.Cleanup(func() { col2.Close() })
	}()
	send(sampleReport(2, true))
	send(sampleReport(3, true))
	close(reports)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("agent did not finish")
	}

	if agentErr != nil {
		t.Skipf("collector rebind raced with the OS: %v", agentErr)
	}
	if stats.Sent != 3 {
		t.Errorf("sent = %d, want 3", stats.Sent)
	}
	if stats.Retries == 0 {
		t.Error("expected retries across the restart")
	}
}

func TestRunAgentPermanentRejection(t *testing.T) {
	col := startCollector(t)
	reports := make(chan *Report, 1)
	bad := sampleReport(1, true)
	bad.Device = "gpu" // collector rejects: permanent
	reports <- bad
	close(reports)
	cfg := DefaultAgentConfig()
	start := time.Now()
	_, err := RunAgent(col.Addr(), reports, cfg)
	if err == nil {
		t.Fatal("permanent rejection not surfaced")
	}
	// Must fail fast (no retry storm on a permanent error).
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("permanent rejection retried for %v", elapsed)
	}
}

func TestRunAgentGivesUpOnDeadCollector(t *testing.T) {
	reports := make(chan *Report, 1)
	reports <- sampleReport(1, true)
	close(reports)
	cfg := AgentConfig{MaxAttempts: 3, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond}
	stats, err := RunAgent("127.0.0.1:1", reports, cfg)
	if err == nil {
		t.Fatal("dead collector not surfaced")
	}
	if stats.Sent != 0 || stats.Retries != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRunAgentEmptyChannel(t *testing.T) {
	reports := make(chan *Report)
	close(reports)
	stats, err := RunAgent("127.0.0.1:1", reports, DefaultAgentConfig())
	if err != nil || stats.Sent != 0 {
		t.Errorf("empty channel: %+v, %v", stats, err)
	}
}

func TestRunOperatorDrainsPool(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)
	for i := uint64(1); i <= 30; i++ {
		if _, err := cl.Report(sampleReport(i, true)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var closed int
	var opErr error
	go func() {
		defer close(done)
		cfg := DefaultOperatorConfig()
		cfg.Interval = 20 * time.Millisecond
		cfg.BatchSize = 7
		closed, opErr = RunOperator(col.Addr(), cfg, stop)
	}()
	// Let a few review sweeps run, then add stragglers and stop.
	deadline := time.After(5 * time.Second)
	for {
		open, err := cl.List(true, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(open) == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("pool not drained: %d still open", len(open))
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
	for i := uint64(31); i <= 35; i++ {
		if _, err := cl.Report(sampleReport(i, true)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
	if opErr != nil {
		t.Fatal(opErr)
	}
	if closed != 35 {
		t.Errorf("operator closed %d tickets, want 35", closed)
	}
	// Every ticket carries the operator id.
	for _, tk := range col.Trace().Tickets {
		if tk.Operator != "op-auto" {
			t.Fatalf("ticket %d operator %q", tk.ID, tk.Operator)
		}
	}
}

func TestRunOperatorDialFailure(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	if _, err := RunOperator("127.0.0.1:1", DefaultOperatorConfig(), stop); err == nil {
		t.Error("dead collector accepted")
	}
}
