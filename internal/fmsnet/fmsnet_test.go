package fmsnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/mine"
)

func startCollector(t *testing.T) *Collector {
	t.Helper()
	c, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("collector close: %v", err)
		}
	})
	return c
}

func dial(t *testing.T, c *Collector) *Client {
	t.Helper()
	cl, err := Dial(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func sampleReport(host uint64, inWarranty bool) *Report {
	return &Report{
		HostID:     host,
		Hostname:   fmt.Sprintf("host-%d", host),
		IDC:        "dc01",
		Rack:       "r01",
		Position:   int(host%40) + 1,
		Device:     "hdd",
		Slot:       "sdb",
		Type:       "SMARTFail",
		Time:       time.Date(2015, 3, 1, 10, 0, 0, 0, time.UTC),
		InWarranty: inWarranty,
	}
}

func TestReportListCloseRoundTrip(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)

	id, err := cl.Report(sampleReport(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero ticket id")
	}
	open, err := cl.List(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 1 || open[0].ID != id || !open[0].Open {
		t.Fatalf("open list = %+v", open)
	}
	if err := cl.CloseTicket(id, fot.ActionRepairOrder, "op-7"); err != nil {
		t.Fatal(err)
	}
	open, err = cl.List(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 0 {
		t.Fatalf("still open after close: %+v", open)
	}
	// Closing twice fails.
	if err := cl.CloseTicket(id, fot.ActionRepairOrder, "op-7"); err == nil {
		t.Error("double close accepted")
	}

	tr := col.Trace()
	if tr.Len() != 1 {
		t.Fatalf("trace len = %d", tr.Len())
	}
	tk := tr.Tickets[0]
	if tk.Category != fot.Fixing || tk.Operator != "op-7" || tk.OpTime.IsZero() {
		t.Errorf("exported ticket wrong: %+v", tk)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestOutOfWarrantyAutoCategorized(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)
	// Non-fatal out-of-warranty: D_error / ignore, closed immediately.
	if _, err := cl.Report(sampleReport(2, false)); err != nil {
		t.Fatal(err)
	}
	// Fatal out-of-warranty: decommission.
	fatal := sampleReport(3, false)
	fatal.Type = "NotReady"
	if _, err := cl.Report(fatal); err != nil {
		t.Fatal(err)
	}
	open, err := cl.List(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 0 {
		t.Fatalf("out-of-warranty tickets left open: %+v", open)
	}
	tr := col.Trace()
	actions := map[fot.Action]int{}
	for _, tk := range tr.Tickets {
		if tk.Category != fot.Error {
			t.Errorf("category = %v, want D_error", tk.Category)
		}
		actions[tk.Action]++
	}
	if actions[fot.ActionIgnore] != 1 || actions[fot.ActionDecommission] != 1 {
		t.Errorf("actions = %v", actions)
	}
}

func TestFalseAlarmClose(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)
	id, err := cl.Report(sampleReport(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CloseTicket(id, fot.ActionMarkFalseAlarm, "op-1"); err != nil {
		t.Fatal(err)
	}
	tr := col.Trace()
	if tr.Tickets[0].Category != fot.FalseAlarm {
		t.Errorf("category = %v, want false alarm", tr.Tickets[0].Category)
	}
}

func TestStats(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)
	for i := uint64(1); i <= 5; i++ {
		if _, err := cl.Report(sampleReport(i, i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 5 || st.Open != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.ByCategory["D_error"] != 3 {
		t.Errorf("by category = %v", st.ByCategory)
	}
}

func TestBadRequests(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)
	bad := []*Report{
		nil,
		{HostID: 0, Device: "hdd", Type: "T", Time: time.Now()},
		{HostID: 1, Device: "gpu", Type: "T", Time: time.Now()},
		{HostID: 1, Device: "hdd", Type: "", Time: time.Now()},
		{HostID: 1, Device: "hdd", Type: "T"},
	}
	for i, r := range bad {
		if _, err := cl.Report(r); err == nil {
			t.Errorf("bad report %d accepted", i)
		}
	}
	if err := cl.CloseTicket(999, fot.ActionRepairOrder, "op"); err == nil {
		t.Error("close of unknown ticket accepted")
	}
	if err := cl.CloseTicket(1, fot.ActionNone, "op"); err == nil {
		t.Error("close with none action accepted")
	}
	// Connection survives errors: a good report still works.
	if _, err := cl.Report(sampleReport(6, true)); err != nil {
		t.Errorf("connection broken after errors: %v", err)
	}
}

func TestConcurrentAgents(t *testing.T) {
	col := startCollector(t)
	const agents = 8
	const perAgent = 50
	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			cl, err := Dial(col.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < perAgent; i++ {
				host := uint64(a*perAgent + i + 1)
				if _, err := cl.Report(sampleReport(host, true)); err != nil {
					errs <- err
					return
				}
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	tr := col.Trace()
	if tr.Len() != agents*perAgent {
		t.Fatalf("trace len = %d, want %d", tr.Len(), agents*perAgent)
	}
	// Ticket ids are unique and dense.
	seen := map[uint64]bool{}
	for _, tk := range tr.Tickets {
		if seen[tk.ID] {
			t.Fatalf("duplicate ticket id %d", tk.ID)
		}
		seen[tk.ID] = true
	}
}

func TestListLimit(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)
	for i := uint64(1); i <= 10; i++ {
		if _, err := cl.Report(sampleReport(i, true)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.List(false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("limit ignored: %d tickets", len(got))
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestCollectorBatchAlerts(t *testing.T) {
	col := startCollector(t)
	var mu sync.Mutex
	var alerts []mine.BatchAlert
	col.EnableBatchAlerts(mine.NewBatchDetector(time.Hour, 5), func(a mine.BatchAlert) {
		mu.Lock()
		alerts = append(alerts, a)
		mu.Unlock()
	})
	cl := dial(t, col)
	base := time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 8; i++ {
		rep := sampleReport(uint64(300+i), true)
		rep.Time = base.Add(time.Duration(i) * time.Minute)
		if _, err := cl.Report(rep); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want 1", len(alerts))
	}
	if alerts[0].Count != 5 || alerts[0].Device != fot.HDD {
		t.Errorf("alert = %+v", alerts[0])
	}
}
