package fmsnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dcfail/internal/faultnet"
	"dcfail/internal/fot"
)

// TestChaosCollectorCrashMidStream is the end-to-end crash-safety
// acceptance test: agents in retry-forever mode deliver through a
// faultnet proxy while the test stalls acks, truncates frames mid-line,
// partitions the network, and hard-stops the collector mid-stream. The
// replacement collector recovers from the WAL, the proxy is repointed at
// it, and the final trace must contain every acked report exactly once —
// zero loss, zero duplicates.
func TestChaosCollectorCrashMidStream(t *testing.T) {
	walDir := t.TempDir()
	col1, err := NewCollectorWith("127.0.0.1:0", CollectorOptions{WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.New("127.0.0.1:0", col1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const agents = 2
	const perAgent = 60
	channels := make([]chan *Report, agents)
	for i := range channels {
		channels[i] = make(chan *Report, 16)
	}
	var wg sync.WaitGroup
	agentStats := make([]*AgentStats, agents)
	agentErrs := make([]error, agents)
	for i := 0; i < agents; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := DefaultAgentConfig()
			cfg.AgentID = fmt.Sprintf("chaos-agent-%d", i)
			cfg.RetryForever = true
			cfg.RetryBase = 5 * time.Millisecond
			cfg.RetryMax = 80 * time.Millisecond
			cfg.SpoolSize = 32
			agentStats[i], agentErrs[i] = RunAgent(proxy.Addr(), channels[i], cfg)
		}(i)
	}
	// Feed reports in the background; unique host ids make loss and
	// duplication directly countable in the final trace.
	go func() {
		for n := 0; n < perAgent; n++ {
			for i := 0; i < agents; i++ {
				channels[i] <- sampleReport(uint64(i*perAgent+n+1), n%3 == 0)
			}
			// Pace detections so every chaos phase lands mid-stream
			// rather than after the backlog has already drained.
			time.Sleep(4 * time.Millisecond)
		}
		for i := range channels {
			close(channels[i])
		}
	}()

	// Chaos phase 1: lose acks. Requests reach the collector but the
	// responses are black-holed, so agents must retry and the collector
	// must dedup on (AgentID, Seq).
	time.Sleep(50 * time.Millisecond)
	proxy.StallUpstream(true)
	time.Sleep(100 * time.Millisecond)
	proxy.StallUpstream(false)
	proxy.SeverAll() // unstick agents blocked on the stalled reads

	// Chaos phase 2: truncate frames mid-line, then heal.
	time.Sleep(50 * time.Millisecond)
	proxy.SetTruncateAfter(200)
	time.Sleep(100 * time.Millisecond)
	proxy.SetTruncateAfter(0)
	proxy.SeverAll()

	// Chaos phase 3: hard-stop the collector mid-stream behind a
	// partition, then bring a replacement up from the WAL and repoint
	// the proxy — the agents never learn the address changed.
	time.Sleep(50 * time.Millisecond)
	proxy.Partition(true)
	if err := col1.Close(); err != nil {
		t.Fatal(err)
	}
	col2, err := NewCollectorWith("127.0.0.1:0", CollectorOptions{WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	rec := col2.Recovered()
	t.Logf("recovered %d reports / %d closes (%d open) after crash", rec.Reports, rec.Closes, rec.Open)
	proxy.SetUpstream(col2.Addr())
	proxy.Partition(false)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("agents did not drain after the collector came back")
	}
	for i, err := range agentErrs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		if agentStats[i].Sent != perAgent {
			t.Errorf("agent %d sent %d, want %d", i, agentStats[i].Sent, perAgent)
		}
	}
	t.Logf("agent stats: %+v %+v", *agentStats[0], *agentStats[1])

	// Zero acked-ticket loss, zero duplicates: every (agent, host)
	// appears exactly once.
	tr := col2.Trace()
	if tr.Len() != agents*perAgent {
		t.Fatalf("final trace has %d tickets, want %d", tr.Len(), agents*perAgent)
	}
	seen := map[uint64]bool{}
	for _, tk := range tr.Tickets {
		if seen[tk.HostID] {
			t.Fatalf("host %d reported twice — duplicate insert", tk.HostID)
		}
		seen[tk.HostID] = true
	}

	// Operator drains the recovered pool; the closes are WAL-durable
	// too.
	cl, err := Dial(col2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	open, err := cl.List(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range open {
		if err := cl.CloseTicket(tk.ID, fot.ActionRepairOrder, "op-chaos"); err != nil {
			t.Fatal(err)
		}
	}
	if err := col2.Close(); err != nil {
		t.Fatal(err)
	}

	// A third incarnation replays everything — the archive-of-record
	// property: the trace survives any number of crashes bit-for-bit.
	col3, err := NewCollectorWith("127.0.0.1:0", CollectorOptions{WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer col3.Close()
	final := col3.Trace()
	if final.Len() != tr.Len() {
		t.Fatalf("third recovery has %d tickets, want %d", final.Len(), tr.Len())
	}
	if got := col3.Recovered().Open; got != 0 {
		t.Errorf("%d tickets reopened after operator drain", got)
	}
	if err := final.Validate(); err != nil {
		t.Errorf("recovered trace invalid: %v", err)
	}
}

// TestChaosPartitionOnlyDelaysDelivery exercises a pure network fault
// with a healthy collector: a partition opens mid-stream and heals; no
// restart is involved, and still nothing is lost or duplicated.
func TestChaosPartitionOnlyDelaysDelivery(t *testing.T) {
	col := startCollector(t)
	proxy, err := faultnet.New("127.0.0.1:0", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetDelay(time.Millisecond)

	reports := make(chan *Report, 8)
	cfg := DefaultAgentConfig()
	cfg.AgentID = "partition-agent"
	cfg.RetryForever = true
	cfg.RetryBase = 5 * time.Millisecond
	cfg.RetryMax = 50 * time.Millisecond
	done := make(chan struct{})
	var stats *AgentStats
	var agentErr error
	go func() {
		defer close(done)
		stats, agentErr = RunAgent(proxy.Addr(), reports, cfg)
	}()

	const total = 40
	go func() {
		for i := uint64(1); i <= total; i++ {
			reports <- sampleReport(i, true)
			if i == total/2 {
				proxy.Partition(true)
				time.Sleep(150 * time.Millisecond)
				proxy.Partition(false)
			}
		}
		close(reports)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("agent did not finish after partition healed")
	}
	if agentErr != nil {
		t.Fatal(agentErr)
	}
	if stats.Sent != total {
		t.Errorf("sent = %d, want %d", stats.Sent, total)
	}
	tr := col.Trace()
	if tr.Len() != total {
		t.Fatalf("trace has %d tickets, want %d", tr.Len(), total)
	}
	hosts := map[uint64]bool{}
	for _, tk := range tr.Tickets {
		if hosts[tk.HostID] {
			t.Fatalf("duplicate report for host %d", tk.HostID)
		}
		hosts[tk.HostID] = true
	}
}
