package fmsnet

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// AgentConfig tunes the host agent's delivery behavior.
type AgentConfig struct {
	// AgentID identifies this agent for at-least-once dedup: every
	// report is stamped with (AgentID, delivery sequence) so retries
	// after a lost ack cannot double-insert at the collector. Empty
	// disables dedup stamping (legacy fire-once delivery).
	//
	// RunAgent numbers deliveries from 1, so the id must be unique per
	// agent *incarnation* (e.g. host plus boot epoch): a WAL-backed
	// collector remembers every (AgentID, Seq) pair it ever acked, and
	// a restarted agent reusing both would see its fresh reports
	// deduplicated against a previous life's.
	AgentID string
	// MaxAttempts bounds delivery attempts per report (connection
	// establishment included). Minimum 1. Ignored when RetryForever.
	MaxAttempts int
	// RetryForever keeps retrying each report until it is delivered or
	// permanently rejected — the paper's invariant that detections
	// "must reach the central FMS" across arbitrarily long collector
	// outages.
	RetryForever bool
	// RetryBase is the initial backoff; it doubles per retry up to
	// RetryMax, and each sleep is jittered uniformly within
	// [RetryBase, current cap] so a restarted collector is not hit by a
	// thundering herd of synchronized agents.
	RetryBase time.Duration
	RetryMax  time.Duration
	// SpoolSize bounds the in-memory report spool between the detector
	// (the reports channel) and the sender. During a collector outage
	// up to SpoolSize detections queue locally instead of blocking the
	// detector; once full, sends into the channel block (backpressure).
	// 0 means no spool: the sender consumes the channel directly.
	SpoolSize int
	// Codec selects the wire codec. "" and "binary" negotiate the dense
	// binary report codec at connect time, falling back to NL-JSON
	// transparently against collectors that decline or predate it;
	// "json" forces legacy NL-JSON without attempting negotiation.
	Codec string
}

// DefaultAgentConfig returns sensible retry settings for a host agent.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		MaxAttempts: 5,
		RetryBase:   20 * time.Millisecond,
		RetryMax:    2 * time.Second,
		SpoolSize:   256,
	}
}

// AgentStats summarizes one agent run.
type AgentStats struct {
	Sent    int
	Retries int
	// Duplicates counts acks where the collector had already accepted
	// the report under the same (AgentID, Seq) — retries whose original
	// attempt landed but whose ack was lost.
	Duplicates int
}

// retryDelay returns the jittered backoff before retry number attempt
// (attempt ≥ 1): the exponential cap base<<(attempt-1) clamped to max,
// then drawn uniformly from [base, cap] using r ∈ [0, 1).
func retryDelay(base, max time.Duration, attempt int, r float64) time.Duration {
	ceil := base
	for i := 1; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	return base + time.Duration(r*float64(ceil-base))
}

// RunAgent drains reports and delivers each to the collector at addr,
// reconnecting with jittered exponential backoff on failure. It returns
// when the channel is closed and the spool has drained (success), when a
// report exhausts its attempts (unless RetryForever), or when the
// collector permanently rejects a report. It mirrors the paper's host
// agent: detections must reach the central FMS even across collector
// restarts, and with an AgentID set, delivery is exactly-once at the
// collector (at-least-once on the wire plus dedup).
func RunAgent(addr string, reports <-chan *Report, cfg AgentConfig) (*AgentStats, error) {
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 20 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = cfg.RetryBase
	}
	// The spool decouples detection from delivery: a buffered stage the
	// detector can fill while the sender rides out a collector outage.
	// quit stops the pump if delivery aborts, so an early return does
	// not keep draining the caller's channel.
	spool := reports
	if cfg.SpoolSize > 0 {
		buf := make(chan *Report, cfg.SpoolSize)
		quit := make(chan struct{})
		defer close(quit)
		go func() {
			defer close(buf)
			for rep := range reports {
				select {
				case buf <- rep:
				case <-quit:
					return
				}
			}
		}()
		spool = buf
	}

	stats := &AgentStats{}
	var client *Client
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	var seq uint64
	for rep := range spool {
		seq++
		delivered := false
		var lastErr error
		for attempt := 0; cfg.RetryForever || attempt < cfg.MaxAttempts; attempt++ {
			if attempt > 0 {
				stats.Retries++
				//lint:ignore globalrand backoff jitter decorrelates concurrent agents and never lands in a ticket; replay determinism comes from the (AgentID, Seq) dedup key, not retry timing
				time.Sleep(retryDelay(cfg.RetryBase, cfg.RetryMax, attempt, rand.Float64()))
			}
			if client == nil {
				var c *Client
				var err error
				if cfg.Codec == "json" {
					c, err = Dial(addr)
				} else {
					c, err = DialBinary(addr, cfg.AgentID)
				}
				if err != nil {
					lastErr = err
					continue
				}
				client = c
			}
			var dup bool
			var err error
			if cfg.AgentID != "" {
				_, dup, err = client.ReportFrom(rep, cfg.AgentID, seq)
			} else {
				_, err = client.Report(rep)
			}
			if err != nil {
				lastErr = err
				// A collector rejection is permanent (retrying the same
				// report cannot succeed) unless the collector flagged it
				// as an internal fault; a transport error warrants a
				// reconnect and retry.
				var pe *ProtocolError
				if errors.As(err, &pe) && pe.Permanent() {
					return stats, fmt.Errorf("fmsnet: report rejected: %w", err)
				}
				//lint:ignore errdrop the transport already failed; Close on a dead connection adds nothing before the reconnect
				client.Close()
				client = nil
				continue
			}
			stats.Sent++
			if dup {
				stats.Duplicates++
			}
			delivered = true
			break
		}
		if !delivered {
			return stats, fmt.Errorf("fmsnet: giving up after %d attempts: %w",
				cfg.MaxAttempts, lastErr)
		}
	}
	return stats, nil
}
