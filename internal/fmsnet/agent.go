package fmsnet

import (
	"fmt"
	"time"
)

// AgentConfig tunes the host agent's delivery behavior.
type AgentConfig struct {
	// MaxAttempts bounds delivery attempts per report (connection
	// establishment included). Minimum 1.
	MaxAttempts int
	// RetryBase is the initial backoff; it doubles per retry up to
	// RetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration
}

// DefaultAgentConfig returns sensible retry settings for a host agent.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		MaxAttempts: 5,
		RetryBase:   20 * time.Millisecond,
		RetryMax:    2 * time.Second,
	}
}

// AgentStats summarizes one agent run.
type AgentStats struct {
	Sent    int
	Retries int
}

// RunAgent drains reports and delivers each to the collector at addr,
// reconnecting with exponential backoff on failure. It returns when the
// channel is closed (success) or when a report exhausts its attempts.
// It mirrors the paper's host agent: detections must reach the central
// FMS even across collector restarts.
func RunAgent(addr string, reports <-chan *Report, cfg AgentConfig) (*AgentStats, error) {
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 20 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = cfg.RetryBase
	}
	stats := &AgentStats{}
	var client *Client
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	for rep := range reports {
		backoff := cfg.RetryBase
		delivered := false
		var lastErr error
		for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
			if attempt > 0 {
				stats.Retries++
				time.Sleep(backoff)
				backoff *= 2
				if backoff > cfg.RetryMax {
					backoff = cfg.RetryMax
				}
			}
			if client == nil {
				c, err := Dial(addr)
				if err != nil {
					lastErr = err
					continue
				}
				client = c
			}
			if _, err := client.Report(rep); err != nil {
				lastErr = err
				// A collector-side validation error is permanent; a
				// transport error warrants a reconnect.
				if isProtocolError(err) {
					return stats, fmt.Errorf("fmsnet: report rejected: %w", err)
				}
				client.Close()
				client = nil
				continue
			}
			stats.Sent++
			delivered = true
			break
		}
		if !delivered {
			return stats, fmt.Errorf("fmsnet: giving up after %d attempts: %w",
				cfg.MaxAttempts, lastErr)
		}
	}
	return stats, nil
}

// isProtocolError distinguishes collector rejections (the collector
// answered with KindError) from transport failures.
func isProtocolError(err error) bool {
	// Collector rejections are wrapped with the "collector:" prefix by
	// roundTrip; transport errors are not.
	return err != nil && containsCollectorPrefix(err.Error())
}

func containsCollectorPrefix(s string) bool {
	const prefix = "fmsnet: collector:"
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
