// Package fmsnet implements the paper's Fig. 1 failure management system
// as a real networked service: host agents detect component failures and
// report them over TCP to a (logically) centralized collector; tickets
// accumulate in the failure pool; operator clients review the pool and
// close tickets with their handling decision. The wire protocol is
// newline-delimited JSON, one message per line.
package fmsnet

import (
	"encoding/json"
	"fmt"
	"time"

	"dcfail/internal/fot"
)

// Message kinds.
const (
	// KindReport is an agent-to-collector failure report.
	KindReport = "report"
	// KindList asks the collector for open tickets.
	KindList = "list"
	// KindClose records an operator's handling decision.
	KindClose = "close"
	// KindStats asks the collector for pool statistics.
	KindStats = "stats"
	// KindAck is the collector's success response.
	KindAck = "ack"
	// KindError is the collector's failure response.
	KindError = "error"
	// KindHello negotiates the wire codec at connect time: the client
	// offers the codecs it speaks (Request.Codecs) and the collector
	// acks with the one it picked (Response.Codec, empty = stay on
	// NL-JSON). Collectors that predate the kind answer KindError and
	// keep the connection usable, so new agents fall back to JSON
	// against old collectors.
	KindHello = "hello"
)

// Error codes carried on KindError responses so clients can classify
// rejections without string matching.
const (
	// CodeBadRequest marks a validation rejection: retrying the same
	// request can never succeed.
	CodeBadRequest = "bad_request"
	// CodeNotOpen marks a close of a ticket that is not open — usually a
	// lost race with another operator sweep or a replayed close.
	CodeNotOpen = "not_open"
	// CodeOversizedFrame marks a request line that exceeded MaxFrameBytes;
	// the collector answers once and then severs the stream (it cannot
	// resynchronize mid-frame).
	CodeOversizedFrame = "oversized_frame"
	// CodeInternal marks a collector-side failure (e.g. the WAL append
	// failed); the request may be retried.
	CodeInternal = "internal"
)

// MaxFrameBytes bounds one request or response line on the wire.
const MaxFrameBytes = 1 << 20

// ProtocolError is a collector rejection: the collector answered with
// KindError rather than the transport failing. Clients unwrap it with
// errors.As to distinguish permanent rejections from transient transport
// faults.
type ProtocolError struct {
	// Code is one of the Code* constants ("" from older collectors).
	Code string
	Msg  string
}

func (e *ProtocolError) Error() string {
	return "fmsnet: collector: " + e.Msg
}

// Permanent reports whether retrying the identical request is pointless.
func (e *ProtocolError) Permanent() bool {
	return e.Code != CodeInternal
}

// Request is the client-to-collector envelope.
type Request struct {
	Kind string `json:"kind"`
	// Source identifies the sending agent for at-least-once dedup
	// (KindReport): the collector drops a report whose (AgentID, Seq)
	// pair it has already accepted and re-acks the original ticket.
	// Empty AgentID disables dedup (legacy senders).
	AgentID string `json:"agent_id,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	// Report fields (KindReport).
	Report *Report `json:"report,omitempty"`
	// Close fields (KindClose).
	TicketID uint64 `json:"ticket_id,omitempty"`
	Action   string `json:"action,omitempty"`
	Operator string `json:"operator,omitempty"`
	// List fields (KindList).
	OnlyOpen bool `json:"only_open,omitempty"`
	Limit    int  `json:"limit,omitempty"`
	// Codecs offers wire codecs in preference order (KindHello), e.g.
	// wire.CodecBinV1. Old collectors ignore the field.
	Codecs []string `json:"codecs,omitempty"`
}

// Report is one agent detection, the subset of ticket fields a host agent
// knows.
type Report struct {
	HostID   uint64    `json:"host_id"`
	Hostname string    `json:"hostname,omitempty"`
	IDC      string    `json:"host_idc"`
	Rack     string    `json:"rack,omitempty"`
	Position int       `json:"position"`
	Device   string    `json:"error_device"`
	Slot     string    `json:"error_slot,omitempty"`
	Type     string    `json:"error_type"`
	Time     time.Time `json:"error_time"`
	Detail   string    `json:"error_detail,omitempty"`

	// Asset enrichment the agent reads from the host's provisioning
	// metadata.
	ProductLine string    `json:"product_line,omitempty"`
	DeployTime  time.Time `json:"deploy_time,omitempty"`
	Model       string    `json:"model,omitempty"`
	// InWarranty lets the collector categorize without an asset DB.
	InWarranty bool `json:"in_warranty"`
}

// Response is the collector-to-client envelope.
type Response struct {
	Kind     string `json:"kind"`
	Error    string `json:"error,omitempty"`
	Code     string `json:"code,omitempty"` // Code* constant on KindError
	TicketID uint64 `json:"ticket_id,omitempty"`
	// Duplicate marks an ack for a report the collector had already
	// accepted under the same (AgentID, Seq): TicketID is the original
	// ticket, and no new ticket was created.
	Duplicate bool         `json:"duplicate,omitempty"`
	Tickets   []PoolTicket `json:"tickets,omitempty"`
	Stats     *PoolStats   `json:"stats,omitempty"`
	// Codec is the collector's pick on a KindHello ack; empty means the
	// stream stays NL-JSON.
	Codec string `json:"codec,omitempty"`
}

// PoolTicket is the collector's view of one ticket.
type PoolTicket struct {
	ID       uint64    `json:"id"`
	HostID   uint64    `json:"host_id"`
	IDC      string    `json:"host_idc"`
	Device   string    `json:"error_device"`
	Slot     string    `json:"error_slot,omitempty"`
	Type     string    `json:"error_type"`
	Time     time.Time `json:"error_time"`
	Category string    `json:"category"`
	Open     bool      `json:"open"`
}

// PoolStats summarizes the pool.
type PoolStats struct {
	Total      int            `json:"total"`
	Open       int            `json:"open"`
	ByCategory map[string]int `json:"by_category"`
}

// codedError is a collector-side rejection carrying a protocol code; the
// serve loop turns it into a KindError response with that code. Handler
// errors without a code default to CodeBadRequest.
type codedError struct {
	code string
	msg  string
}

func (e *codedError) Error() string { return e.msg }

func codedErrorf(code, format string, args ...interface{}) error {
	return &codedError{code: code, msg: fmt.Sprintf(format, args...)}
}

// encode writes a JSON line.
func encode(v interface{}) ([]byte, error) {
	line, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("fmsnet: encode: %w", err)
	}
	return append(line, '\n'), nil
}

// validateReport checks the agent-supplied fields.
func validateReport(r *Report) error {
	if r == nil {
		return fmt.Errorf("fmsnet: missing report body")
	}
	if r.HostID == 0 {
		return fmt.Errorf("fmsnet: report without host id")
	}
	if _, err := fot.ParseComponent(r.Device); err != nil {
		return err
	}
	if r.Type == "" {
		return fmt.Errorf("fmsnet: report without error type")
	}
	if r.Time.IsZero() {
		return fmt.Errorf("fmsnet: report without error time")
	}
	return nil
}
