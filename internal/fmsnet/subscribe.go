package fmsnet

import (
	"sync"
	"sync/atomic"

	"dcfail/internal/fot"
)

// TicketSub is a live, in-process feed of tickets the collector accepts:
// every report that enters the pool is offered to the subscription in
// pool (ticket-id) order. Delivery is non-blocking — if the subscriber
// falls behind its bounded buffer, tickets are dropped and counted
// rather than ever stalling an agent ack; a consumer that needs the
// dropped tickets can backfill them from the archive or a pool List.
//
// The feed carries the ticket as materialized at accept time:
// out-of-warranty reports arrive already closed (D_error), in-warranty
// ones arrive open (D_fixing, no operator fields). Later operator closes
// mutate the pool, not the feed.
type TicketSub struct {
	reg     *subscribers
	ch      chan fot.Ticket
	dropped atomic.Uint64
	closed  bool // guarded by reg.mu
}

// C returns the receive side of the subscription. The channel is closed
// by Close (never by the collector), so ranging over it ends only when
// the subscriber cancels.
func (s *TicketSub) C() <-chan fot.Ticket { return s.ch }

// Dropped returns how many tickets were discarded because the buffer was
// full when they arrived.
func (s *TicketSub) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from its collector and closes the
// channel. Idempotent; the collector stops publishing to the feed before
// Close returns, so no send can race the channel close.
func (s *TicketSub) Close() {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// subscribers is the collector-side registry. Publishing happens under
// the collector's pool lock so subscribers observe tickets in exactly
// pool order; the send itself is a non-blocking select, so a slow or
// abandoned subscriber costs one failed channel send, never a stall.
type subscribers struct {
	mu   sync.Mutex
	subs []*TicketSub
}

func (p *subscribers) add(s *TicketSub) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.subs = append(p.subs, s)
}

// publish offers t to every live subscription and prunes closed ones.
func (p *subscribers) publish(t fot.Ticket) {
	p.mu.Lock()
	defer p.mu.Unlock()
	live := p.subs[:0]
	for _, s := range p.subs {
		if s.closed {
			continue
		}
		select {
		case s.ch <- t:
		default:
			s.dropped.Add(1)
		}
		live = append(live, s)
	}
	// Zero the tail so detached subscriptions are collectable.
	for i := len(live); i < len(p.subs); i++ {
		p.subs[i] = nil
	}
	p.subs = live
}

// SubscribeTickets attaches a live ticket feed with the given buffer
// capacity (minimum 1). Tickets accepted after the call are offered to
// the feed in pool order; the subscriber must drain s.C() promptly or
// accept drops (visible via s.Dropped()). Call s.Close() when done.
func (c *Collector) SubscribeTickets(buffer int) *TicketSub {
	if buffer < 1 {
		buffer = 1
	}
	s := &TicketSub{reg: &c.subs, ch: make(chan fot.Ticket, buffer)}
	c.subs.add(s)
	return s
}
