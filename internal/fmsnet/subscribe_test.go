package fmsnet

import (
	"sync"
	"testing"
	"time"
)

// TestSubscribeDeliversInPoolOrder drains a generously buffered
// subscription while several clients report concurrently and checks the
// feed is exactly pool order (strictly increasing ticket ids, no gaps up
// to the drained count).
func TestSubscribeDeliversInPoolOrder(t *testing.T) {
	col := startCollector(t)
	sub := col.SubscribeTickets(1024)
	defer sub.Close()

	const clients, perClient = 4, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(col.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				if _, err := cl.Report(sampleReport(uint64(c*1000+i+1), true)); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	if got := sub.Dropped(); got != 0 {
		t.Fatalf("buffered subscription dropped %d tickets", got)
	}
	total := clients * perClient
	var last uint64
	for i := 0; i < total; i++ {
		select {
		case tk := <-sub.C():
			if tk.ID != last+1 {
				t.Fatalf("ticket %d arrived after %d; want strict pool order", tk.ID, last)
			}
			last = tk.ID
		case <-time.After(5 * time.Second):
			t.Fatalf("subscription delivered only %d of %d tickets", i, total)
		}
	}
}

// TestSlowSubscriberNeverStallsAcks attaches a subscription with a tiny
// buffer that nobody drains and checks that reports still get acked
// promptly — overflow must be counted as drops, not backpressure on the
// reporting path.
func TestSlowSubscriberNeverStallsAcks(t *testing.T) {
	col := startCollector(t)
	sub := col.SubscribeTickets(2) // never drained during the burst
	defer sub.Close()

	cl := dial(t, col)
	const n = 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); i <= n; i++ {
			if _, err := cl.Report(sampleReport(i, true)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reports stalled behind an undrained subscription")
	}

	if got := sub.Dropped(); got != n-2 {
		t.Fatalf("dropped = %d, want %d (buffer keeps 2 of %d)", got, n-2, n)
	}
	// The two buffered tickets are the earliest ones, in order.
	for want := uint64(1); want <= 2; want++ {
		select {
		case tk := <-sub.C():
			if tk.ID != want {
				t.Fatalf("buffered ticket id = %d, want %d", tk.ID, want)
			}
		default:
			t.Fatalf("expected buffered ticket %d", want)
		}
	}
}

// TestSubscribeCloseDetaches verifies Close is idempotent, ends a range
// over the channel, and that reports after Close don't panic the
// publisher.
func TestSubscribeCloseDetaches(t *testing.T) {
	col := startCollector(t)
	sub := col.SubscribeTickets(4)
	cl := dial(t, col)
	if _, err := cl.Report(sampleReport(1, true)); err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close() // idempotent
	if _, err := cl.Report(sampleReport(2, true)); err != nil {
		t.Fatal(err)
	}
	n := 0
	for range sub.C() {
		n++
	}
	if n != 1 {
		t.Fatalf("drained %d tickets from closed subscription, want the 1 pre-close ticket", n)
	}
}
