package fmsnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dcfail/internal/fot"
)

func startWALCollector(t *testing.T, dir string, now func() time.Time) *Collector {
	t.Helper()
	col, err := NewCollectorWith("127.0.0.1:0", CollectorOptions{WALDir: dir, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestWALRecoveryRebuildsPool(t *testing.T) {
	dir := t.TempDir()
	col := startWALCollector(t, dir, nil)
	cl, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Three open tickets, one closed, one out-of-warranty (auto-closed).
	var ids []uint64
	for i := uint64(1); i <= 3; i++ {
		id, err := cl.Report(sampleReport(i, true))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := cl.Report(sampleReport(4, false)); err != nil {
		t.Fatal(err)
	}
	if err := cl.CloseTicket(ids[0], fot.ActionRepairOrder, "op-9"); err != nil {
		t.Fatal(err)
	}
	before := col.Trace()
	cl.Close()
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the WAL: the pool must come back exactly.
	col2 := startWALCollector(t, dir, nil)
	defer col2.Close()
	rec := col2.Recovered()
	if rec.Reports != 4 || rec.Closes != 1 || rec.Open != 2 {
		t.Errorf("recovery stats = %+v", rec)
	}
	after := col2.Trace()
	if after.Len() != before.Len() {
		t.Fatalf("recovered %d tickets, want %d", after.Len(), before.Len())
	}
	for i := range before.Tickets {
		if before.Tickets[i] != after.Tickets[i] {
			t.Errorf("ticket %d differs:\n before %+v\n after  %+v",
				i, before.Tickets[i], after.Tickets[i])
		}
	}
	cl2, err := Dial(col2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	open, err := cl2.List(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 2 {
		t.Fatalf("open after recovery = %+v", open)
	}
	// The id counter continues past the replayed maximum.
	id, err := cl2.Report(sampleReport(9, true))
	if err != nil {
		t.Fatal(err)
	}
	if id != 5 {
		t.Errorf("next id after recovery = %d, want 5", id)
	}
	// Closing a recovered ticket works.
	if err := cl2.CloseTicket(ids[1], fot.ActionRepairOrder, "op-9"); err != nil {
		t.Errorf("close of recovered ticket: %v", err)
	}
}

func TestReportDedupSuppressesRetries(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)
	id, dup, err := cl.ReportFrom(sampleReport(1, true), "agent-a", 7)
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Error("first delivery flagged duplicate")
	}
	// The retry (same agent, same seq) must re-ack the original ticket.
	id2, dup2, err := cl.ReportFrom(sampleReport(1, true), "agent-a", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !dup2 || id2 != id {
		t.Errorf("retry: id=%d dup=%v, want id=%d dup=true", id2, dup2, id)
	}
	// A different agent reusing the seq is not a duplicate.
	if _, dup3, err := cl.ReportFrom(sampleReport(2, true), "agent-b", 7); err != nil || dup3 {
		t.Errorf("cross-agent seq collision: dup=%v err=%v", dup3, err)
	}
	if n := col.Trace().Len(); n != 2 {
		t.Errorf("pool has %d tickets, want 2", n)
	}
}

func TestDedupSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	col := startWALCollector(t, dir, nil)
	cl, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := cl.ReportFrom(sampleReport(1, true), "agent-a", 1)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	col2 := startWALCollector(t, dir, nil)
	defer col2.Close()
	cl2, err := Dial(col2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	// A retry that straddles the crash must still be recognized.
	id2, dup, err := cl2.ReportFrom(sampleReport(1, true), "agent-a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !dup || id2 != id {
		t.Errorf("post-restart retry: id=%d dup=%v, want id=%d dup=true", id2, dup, id)
	}
	if n := col2.Trace().Len(); n != 1 {
		t.Errorf("pool has %d tickets, want 1", n)
	}
}

func TestInjectedClockMakesCloseDeterministic(t *testing.T) {
	fixed := time.Date(2015, 7, 4, 12, 0, 0, 0, time.UTC)
	dir := t.TempDir()
	col := startWALCollector(t, dir, func() time.Time { return fixed })
	cl, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	id, err := cl.Report(sampleReport(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CloseTicket(id, fot.ActionRepairOrder, "op-c"); err != nil {
		t.Fatal(err)
	}
	if got := col.Trace().Tickets[0].OpTime; !got.Equal(fixed) {
		t.Errorf("OpTime = %v, want injected %v", got, fixed)
	}
	cl.Close()
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay reproduces the identical OpTime even under a different
	// clock.
	col2 := startWALCollector(t, dir, func() time.Time { return fixed.Add(48 * time.Hour) })
	defer col2.Close()
	if got := col2.Trace().Tickets[0].OpTime; !got.Equal(fixed) {
		t.Errorf("replayed OpTime = %v, want original %v", got, fixed)
	}
}

func TestOversizedFrameGetsErrorResponse(t *testing.T) {
	col := startCollector(t)
	conn, err := net.Dial("tcp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame past the 1 MiB scanner limit used to sever the stream
	// wordlessly; now the collector must answer with a coded error.
	huge := fmt.Sprintf(`{"kind":"report","report":{"error_detail":%q}}`,
		strings.Repeat("x", MaxFrameBytes+1024))
	if _, err := fmt.Fprintf(conn, "%s\n", huge); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), MaxFrameBytes)
	if !sc.Scan() {
		t.Fatalf("no response to oversized frame: %v", sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindError || resp.Code != CodeOversizedFrame {
		t.Errorf("response = %+v, want %s error", resp, CodeOversizedFrame)
	}
	// The stream is severed after the error (cannot resync mid-frame).
	if sc.Scan() {
		t.Error("collector kept the stream open after an oversized frame")
	}
}

func TestProtocolErrorTypedClassification(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)
	bad := sampleReport(1, true)
	bad.Device = "gpu"
	_, err := cl.Report(bad)
	if err == nil {
		t.Fatal("bad report accepted")
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("rejection is %T, want *ProtocolError", err)
	}
	if !pe.Permanent() {
		t.Error("validation rejection not flagged permanent")
	}
	// Wrapping must not break classification (the old string-prefix
	// check did).
	wrapped := fmt.Errorf("delivery attempt 3: %w", err)
	var pe2 *ProtocolError
	if !errors.As(wrapped, &pe2) {
		t.Error("wrapped rejection lost its type")
	}
	if err := cl.CloseTicket(999, fot.ActionRepairOrder, "op"); err != nil {
		var pe3 *ProtocolError
		if !errors.As(err, &pe3) || pe3.Code != CodeNotOpen {
			t.Errorf("close of unknown ticket: err=%v code=%q, want %s", err, pe3.Code, CodeNotOpen)
		}
	} else {
		t.Error("close of unknown ticket accepted")
	}
}

func TestConcurrentCloseRacesInFlightHandlers(t *testing.T) {
	// Close() must cope with handleReport/handleClose still running:
	// no panics, no deadlocks, and whatever was acked is in the trace.
	col, err := NewCollectorWith("127.0.0.1:0", CollectorOptions{WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	var wg sync.WaitGroup
	var acked sync.Map
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(col.Addr())
			if err != nil {
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				host := uint64(g*100 + i + 1)
				id, err := cl.Report(sampleReport(host, i%2 == 0))
				if err != nil {
					return // collector shut down mid-stream: fine
				}
				acked.Store(id, struct{}{})
				if i%2 == 0 {
					cl.CloseTicket(id, fot.ActionRepairOrder, "op-race")
				}
			}
		}(g)
	}
	// Let the workers get going, then yank the collector out from under
	// them.
	time.Sleep(20 * time.Millisecond)
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	got := map[uint64]bool{}
	for _, tk := range col.Trace().Tickets {
		got[tk.ID] = true
	}
	acked.Range(func(k, _ interface{}) bool {
		if !got[k.(uint64)] {
			t.Errorf("acked ticket %d missing from trace", k.(uint64))
		}
		return true
	})
}

func TestRetryDelayJitterBounds(t *testing.T) {
	base := 10 * time.Millisecond
	max := 160 * time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		lo := retryDelay(base, max, attempt, 0)
		hi := retryDelay(base, max, attempt, 0.999999)
		if lo != base {
			t.Errorf("attempt %d: r=0 delay = %v, want base %v", attempt, lo, base)
		}
		if hi > max {
			t.Errorf("attempt %d: r→1 delay = %v exceeds max %v", attempt, hi, max)
		}
		ceil := base << (attempt - 1)
		if ceil > max {
			ceil = max
		}
		if hi < time.Duration(float64(ceil)*0.99)-base {
			t.Errorf("attempt %d: r→1 delay = %v, far below cap %v", attempt, hi, ceil)
		}
		// Spacing is genuinely randomized across the band, not constant
		// (no thundering herd of synchronized agents).
		if attempt >= 2 {
			mid := retryDelay(base, max, attempt, 0.5)
			if mid == lo || mid == hi {
				t.Errorf("attempt %d: jitter not spreading: lo=%v mid=%v hi=%v", attempt, lo, mid, hi)
			}
			if mid < base || mid > max {
				t.Errorf("attempt %d: mid delay %v outside [%v, %v]", attempt, mid, base, max)
			}
		}
	}
}

func TestAgentRetryForeverAcrossLongOutage(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := col.Addr()
	reports := make(chan *Report, 8)
	for i := uint64(1); i <= 5; i++ {
		reports <- sampleReport(i, true)
	}
	close(reports)
	cfg := DefaultAgentConfig()
	cfg.AgentID = "agent-forever"
	cfg.RetryForever = true
	cfg.RetryBase = 5 * time.Millisecond
	cfg.RetryMax = 50 * time.Millisecond
	done := make(chan struct{})
	var stats *AgentStats
	var agentErr error
	go func() {
		defer close(done)
		stats, agentErr = RunAgent(addr, reports, cfg)
	}()
	// Kill the collector; the agent must keep retrying far past the
	// default MaxAttempts until a replacement appears.
	time.Sleep(30 * time.Millisecond)
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	col2, err := NewCollector(addr)
	if err != nil {
		t.Skipf("rebind raced with the OS: %v", err)
	}
	defer col2.Close()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("retry-forever agent did not finish after collector came back")
	}
	if agentErr != nil {
		t.Fatal(agentErr)
	}
	if stats.Sent != 5 {
		t.Errorf("sent = %d, want 5", stats.Sent)
	}
	total := col.Trace().Len() + col2.Trace().Len()
	if total != 5 {
		t.Errorf("collectors hold %d tickets, want 5", total)
	}
}
