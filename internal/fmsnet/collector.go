package fmsnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/wal"
	"dcfail/internal/wire"
)

// CollectorOptions tunes a collector beyond its listen address.
type CollectorOptions struct {
	// WALDir enables crash safety: every accepted report and close is
	// appended (CRC-framed, fsync-batched) to a write-ahead log in this
	// directory before the collector acks, and a collector opened on an
	// existing WAL replays it to rebuild the pool. Empty disables
	// durability (the seed's in-memory behavior).
	WALDir string
	// WAL tunes the log when WALDir is set.
	WAL wal.Options
	// Now supplies close timestamps (nil means time.Now) so lifecycle
	// tests are deterministic and replayed closes carry their original
	// OpTime.
	Now func() time.Time
	// DisableBinary refuses binary codec negotiation: KindHello is still
	// answered (with an empty codec pick) but every stream stays NL-JSON.
	// Used to exercise the fallback path and to mimic old collectors.
	DisableBinary bool
}

// RecoveryStats reports what a WAL replay rebuilt.
type RecoveryStats struct {
	Reports   int   // report records replayed (tickets rebuilt)
	Closes    int   // close records replayed
	Open      int   // tickets left open after replay
	TornBytes int64 // torn tail discarded from the newest WAL segment
}

// sourceKey is the at-least-once dedup key: one agent's delivery
// sequence number.
type sourceKey struct {
	agent string
	seq   uint64
}

// Collector is the centralized FMS server: it accepts agent reports and
// operator commands over TCP and keeps the failure pool in memory,
// optionally backed by a write-ahead log so a crash loses nothing that
// was acked.
type Collector struct {
	listener  net.Listener
	log       *wal.WAL
	now       func() time.Time
	binaryOff bool

	mu        sync.Mutex
	nextID    uint64
	tickets   []fot.Ticket
	open      map[uint64]int       // ticket id -> index into tickets
	seen      map[sourceKey]uint64 // (agent, seq) -> ticket id
	conns     map[net.Conn]struct{}
	recovered RecoveryStats

	detector *mine.BatchDetector
	onAlert  func(mine.BatchAlert)
	subs     subscribers

	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// NewCollector starts an in-memory collector listening on addr (use
// "127.0.0.1:0" for an ephemeral test port). Callers must Close it.
func NewCollector(addr string) (*Collector, error) {
	return NewCollectorWith(addr, CollectorOptions{})
}

// NewCollectorWith starts a collector with explicit options. With a WAL
// directory set, the log is replayed first: tickets, the open pool, the
// id counter, and the dedup index all come back exactly as acked before
// the crash.
func NewCollectorWith(addr string, opts CollectorOptions) (*Collector, error) {
	c := &Collector{
		open:      make(map[uint64]int),
		seen:      make(map[sourceKey]uint64),
		conns:     make(map[net.Conn]struct{}),
		closing:   make(chan struct{}),
		now:       opts.Now,
		binaryOff: opts.DisableBinary,
	}
	if c.now == nil {
		//lint:ignore walltime injection-point default; CollectorOptions.Now overrides the clock so replayed closes keep their original OpTime
		c.now = time.Now
	}
	if opts.WALDir != "" {
		w, err := wal.Open(opts.WALDir, opts.WAL)
		if err != nil {
			return nil, err
		}
		stats, err := wal.Replay(opts.WALDir, c.applyReplayed)
		if err != nil {
			//lint:ignore errdrop best-effort cleanup of a WAL we are abandoning; the replay error is what the caller needs
			w.Close()
			return nil, fmt.Errorf("fmsnet: wal replay: %w", err)
		}
		c.recovered.Open = len(c.open)
		c.recovered.TornBytes = stats.TornBytes + w.TornBytes()
		c.log = w
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if c.log != nil {
			//lint:ignore errdrop best-effort cleanup on the listen-failure path; nothing was written yet, the listen error is returned
			c.log.Close()
		}
		return nil, fmt.Errorf("fmsnet: listen: %w", err)
	}
	c.listener = ln
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address.
func (c *Collector) Addr() string { return c.listener.Addr().String() }

// Recovered reports what the WAL replay rebuilt at startup (zero values
// without a WAL or on a fresh directory).
func (c *Collector) Recovered() RecoveryStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovered
}

// EnableBatchAlerts attaches a live batch detector (internal/mine): every
// accepted report flows through it, and onAlert runs (on the reporting
// connection's goroutine) when a failure kind bursts. Call before agents
// connect.
func (c *Collector) EnableBatchAlerts(d *mine.BatchDetector, onAlert func(mine.BatchAlert)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.detector = d
	c.onAlert = onAlert
}

// Close stops accepting, severs active connections (idle agents would
// otherwise hold the collector open forever), waits for the handler
// goroutines to drain, and finalizes the WAL. It is idempotent.
func (c *Collector) Close() error {
	c.closeOnce.Do(func() {
		close(c.closing)
		err := c.listener.Close()
		c.mu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		c.mu.Unlock()
		c.wg.Wait()
		if c.log != nil {
			if werr := c.log.Close(); err == nil {
				err = werr
			}
		}
		c.closeErr = err
	})
	return c.closeErr
}

// Trace exports the pool as an analysis-ready trace (a copy).
func (c *Collector) Trace() *fot.Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make([]fot.Ticket, len(c.tickets))
	copy(cp, c.tickets)
	return fot.NewTrace(cp)
}

// WAL record operations.
const (
	walOpReport = "report"
	walOpClose  = "close"
)

// walRecord is one durable state transition. Report records carry the
// fully materialized ticket (id, category, action already assigned) plus
// the dedup key; close records carry the operator decision including the
// original OpTime so replay is bit-identical.
type walRecord struct {
	Op       string      `json:"op"`
	Ticket   *fot.Ticket `json:"ticket,omitempty"`
	AgentID  string      `json:"agent_id,omitempty"`
	Seq      uint64      `json:"seq,omitempty"`
	TicketID uint64      `json:"ticket_id,omitempty"`
	Action   string      `json:"action,omitempty"`
	Operator string      `json:"operator,omitempty"`
	OpTime   time.Time   `json:"op_time,omitempty"`
}

// appendWAL makes one record durable; a nil log is a no-op. Called
// outside c.mu so concurrent handlers share group-commit fsyncs.
func (c *Collector) appendWAL(rec *walRecord) error {
	if c.log == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return codedErrorf(CodeInternal, "fmsnet: wal encode: %v", err)
	}
	if err := c.log.Append(payload); err != nil {
		return codedErrorf(CodeInternal, "fmsnet: wal append: %v", err)
	}
	return nil
}

// applyReplayed rebuilds in-memory state from one WAL record. It runs
// before the listener starts, so no locking is needed.
func (c *Collector) applyReplayed(payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("decode record: %w", err)
	}
	switch rec.Op {
	case walOpReport:
		if rec.Ticket == nil {
			return fmt.Errorf("report record without ticket")
		}
		t := *rec.Ticket
		if t.ID > c.nextID {
			c.nextID = t.ID
		}
		if t.Category == fot.Fixing && t.Action == fot.ActionNone {
			c.open[t.ID] = len(c.tickets)
		}
		c.tickets = append(c.tickets, t)
		if rec.AgentID != "" {
			c.seen[sourceKey{rec.AgentID, rec.Seq}] = t.ID
		}
		c.recovered.Reports++
	case walOpClose:
		idx, ok := c.open[rec.TicketID]
		if !ok {
			return fmt.Errorf("close record for ticket %d which is not open", rec.TicketID)
		}
		action, err := fot.ParseAction(rec.Action)
		if err != nil {
			return fmt.Errorf("close record: %w", err)
		}
		t := &c.tickets[idx]
		t.Action = action
		t.Operator = rec.Operator
		t.OpTime = rec.OpTime
		if action == fot.ActionMarkFalseAlarm {
			t.Category = fot.FalseAlarm
		}
		delete(c.open, rec.TicketID)
		c.recovered.Closes++
	default:
		return fmt.Errorf("unknown record op %q", rec.Op)
	}
	return nil
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			select {
			case <-c.closing:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		c.wg.Add(1)
		go c.serve(conn)
	}
}

func (c *Collector) serve(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	c.mu.Lock()
	c.conns[conn] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), MaxFrameBytes)
	w := bufio.NewWriter(conn)
	writeResp := func(resp Response) bool {
		out, err := encode(resp)
		if err != nil {
			return false
		}
		if _, err := w.Write(out); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{Kind: KindError, Error: err.Error(), Code: CodeBadRequest}
		} else if req.Kind == KindHello {
			// Codec negotiation. The client is synchronous — it sends
			// nothing after the hello until our ack arrives — so the
			// Scanner's buffer holds no binary bytes when we hand the raw
			// connection to the frame reader below.
			codec := ""
			if !c.binaryOff {
				for _, offer := range req.Codecs {
					if offer == wire.CodecBinV1 {
						codec = offer
						break
					}
				}
			}
			if !writeResp(Response{Kind: KindAck, Codec: codec}) {
				return
			}
			if codec != "" {
				c.serveBinary(conn, w, req.AgentID)
				return
			}
			continue
		} else if r, err := c.handle(&req); err != nil {
			resp = Response{Kind: KindError, Error: err.Error(), Code: CodeBadRequest}
			var ce *codedError
			if errors.As(err, &ce) {
				resp.Code = ce.code
			}
		} else {
			resp = *r
		}
		if !writeResp(resp) {
			return
		}
	}
	if errors.Is(sc.Err(), bufio.ErrTooLong) {
		// The sender overran the frame limit. We cannot resynchronize a
		// line-delimited stream mid-frame, but tell the sender why
		// before severing instead of dropping the connection wordlessly.
		writeResp(Response{
			Kind:  KindError,
			Code:  CodeOversizedFrame,
			Error: fmt.Sprintf("fmsnet: frame exceeds %d bytes; closing connection", MaxFrameBytes),
		})
	}
}

func (c *Collector) handle(req *Request) (*Response, error) {
	switch req.Kind {
	case KindReport:
		return c.handleReport(req)
	case KindList:
		return c.handleList(req)
	case KindClose:
		return c.handleClose(req)
	case KindStats:
		return c.handleStats()
	default:
		return nil, fmt.Errorf("fmsnet: unknown request kind %q", req.Kind)
	}
}

func (c *Collector) handleReport(req *Request) (*Response, error) {
	id, dup, err := c.acceptReport(req.Report, req.AgentID, req.Seq)
	if err != nil {
		return nil, err
	}
	return &Response{Kind: KindAck, TicketID: id, Duplicate: dup}, nil
}

// acceptReport validates and admits one failure report — the codec-neutral
// core shared by the JSON handler and the binary serve loop. It returns
// the ticket id and whether the report was an at-least-once duplicate
// (agentID != "" enables dedup on (agentID, seq)).
func (c *Collector) acceptReport(r *Report, agentID string, seq uint64) (uint64, bool, error) {
	if err := validateReport(r); err != nil {
		return 0, false, err
	}
	device, err := fot.ParseComponent(r.Device)
	if err != nil {
		return 0, false, err
	}
	t := fot.Ticket{
		HostID:      r.HostID,
		Hostname:    r.Hostname,
		IDC:         r.IDC,
		Rack:        r.Rack,
		Position:    r.Position,
		Device:      device,
		Slot:        r.Slot,
		Type:        r.Type,
		Time:        r.Time.UTC(),
		Detail:      r.Detail,
		ProductLine: r.ProductLine,
		DeployTime:  r.DeployTime,
		Model:       r.Model,
	}
	key := sourceKey{agentID, seq}
	var fire *mine.BatchAlert
	var onAlert func(mine.BatchAlert)
	c.mu.Lock()
	if agentID != "" {
		if id, dup := c.seen[key]; dup {
			c.mu.Unlock()
			// At-least-once retry whose original ack was lost. The
			// original handler appended its WAL record synchronously
			// before any retry could arrive, so a sync barrier is enough
			// to guarantee it is durable before we re-ack.
			if c.log != nil {
				if err := c.log.Sync(); err != nil {
					return 0, false, codedErrorf(CodeInternal, "fmsnet: wal sync: %v", err)
				}
			}
			return id, true, nil
		}
	}
	c.nextID++
	t.ID = c.nextID
	if r.InWarranty {
		// Awaits an operator decision; until then it sits open in the
		// pool as D_fixing-to-be.
		t.Category = fot.Fixing
		t.Action = fot.ActionNone
		c.open[t.ID] = len(c.tickets)
	} else {
		// Out of warranty: closed immediately, not repaired (Table I).
		t.Category = fot.Error
		if fot.IsFatalType(device, r.Type) {
			t.Action = fot.ActionDecommission
		} else {
			t.Action = fot.ActionIgnore
		}
	}
	c.tickets = append(c.tickets, t)
	if agentID != "" {
		c.seen[key] = t.ID
	}
	if c.detector != nil {
		fire = c.detector.Observe(t)
		onAlert = c.onAlert
	}
	// Publish to live subscriptions while still ordered by the pool
	// lock; the sends inside are non-blocking.
	c.subs.publish(t)
	c.mu.Unlock()
	// Durability before the ack: the record is appended (and fsynced,
	// batched across connections) outside the pool lock.
	rec := walRecord{Op: walOpReport, Ticket: &t, AgentID: agentID, Seq: seq}
	if err := c.appendWAL(&rec); err != nil {
		return 0, false, err
	}
	// The alert callback runs outside the pool lock so it may dial back
	// into the collector if it wants to.
	if fire != nil && onAlert != nil {
		onAlert(*fire)
	}
	return t.ID, false, nil
}

// serveBinary takes over a connection after a successful bin/1 handshake.
// From here on the stream is length-prefixed CRC-framed binary in both
// directions: the agent sends KindReport frames, the collector answers
// each with KindAck or KindError. The decoder's symbol table accumulates
// per connection, matching the encoder on the agent side. All scratch
// state (frame buffers, decoded report, symbol table) is reused across
// reports, so steady-state ingest does not allocate.
//
// Error handling mirrors the JSON loop: a validation rejection answers
// KindError and keeps the stream; a framing fault (bad CRC, oversized or
// truncated frame) answers once and severs, because a broken frame
// boundary — like an overlong JSON line — cannot be resynchronized. A
// decode fault inside a valid frame also severs: the symbol tables may
// have diverged, poisoning every later string reference.
func (c *Collector) serveBinary(conn net.Conn, w *bufio.Writer, agentID string) {
	fr := wire.NewFrameReader(conn)
	dec := wire.NewDecoder()
	var (
		out  []byte
		wrep wire.Report
		rep  Report
	)
	send := func(frame []byte) bool {
		if _, err := w.Write(frame); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	for {
		kind, payload, err := fr.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				code := CodeBadRequest
				if errors.Is(err, wire.ErrFrameTooBig) {
					code = CodeOversizedFrame
				}
				out = wire.AppendError(out[:0], code, err.Error())
				send(out)
			}
			return
		}
		if kind != wire.KindReport {
			out = wire.AppendError(out[:0], CodeBadRequest,
				fmt.Sprintf("fmsnet: unexpected frame kind %d", kind))
			send(out)
			return
		}
		if err := dec.DecodeReportInto(payload, &wrep); err != nil {
			out = wire.AppendError(out[:0], CodeBadRequest, err.Error())
			send(out)
			return
		}
		rep = Report{
			HostID:      wrep.HostID,
			Hostname:    wrep.Hostname,
			IDC:         wrep.IDC,
			Rack:        wrep.Rack,
			Position:    wrep.Position,
			Device:      wrep.Device,
			Slot:        wrep.Slot,
			Type:        wrep.Type,
			Time:        wrep.Time,
			Detail:      wrep.Detail,
			ProductLine: wrep.ProductLine,
			DeployTime:  wrep.DeployTime,
			Model:       wrep.Model,
			InWarranty:  wrep.InWarranty,
		}
		id, dup, err := c.acceptReport(&rep, agentID, wrep.Seq)
		if err != nil {
			code := CodeBadRequest
			var ce *codedError
			if errors.As(err, &ce) {
				code = ce.code
			}
			out = wire.AppendError(out[:0], code, err.Error())
			if !send(out) {
				return
			}
			continue
		}
		out = wire.AppendAck(out[:0], id, dup)
		if !send(out) {
			return
		}
	}
}

func (c *Collector) handleList(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	limit := req.Limit
	if limit <= 0 {
		limit = len(c.tickets)
	}
	resp := &Response{Kind: KindAck}
	for i := range c.tickets {
		t := &c.tickets[i]
		_, isOpen := c.open[t.ID]
		if req.OnlyOpen && !isOpen {
			continue
		}
		resp.Tickets = append(resp.Tickets, PoolTicket{
			ID:       t.ID,
			HostID:   t.HostID,
			IDC:      t.IDC,
			Device:   t.Device.String(),
			Slot:     t.Slot,
			Type:     t.Type,
			Time:     t.Time,
			Category: t.Category.String(),
			Open:     isOpen,
		})
		if len(resp.Tickets) >= limit {
			break
		}
	}
	return resp, nil
}

func (c *Collector) handleClose(req *Request) (*Response, error) {
	action, err := fot.ParseAction(req.Action)
	if err != nil {
		return nil, err
	}
	if action == fot.ActionNone {
		return nil, fmt.Errorf("fmsnet: close requires a real action")
	}
	c.mu.Lock()
	idx, ok := c.open[req.TicketID]
	if !ok {
		c.mu.Unlock()
		return nil, codedErrorf(CodeNotOpen, "fmsnet: ticket %d is not open", req.TicketID)
	}
	t := &c.tickets[idx]
	t.Action = action
	t.Operator = req.Operator
	t.OpTime = c.now().UTC()
	if t.OpTime.Before(t.Time) {
		// Simulated traces may carry future detection timestamps; keep
		// the ticket schema-valid.
		t.OpTime = t.Time
	}
	if action == fot.ActionMarkFalseAlarm {
		t.Category = fot.FalseAlarm
	}
	delete(c.open, req.TicketID)
	rec := walRecord{
		Op:       walOpClose,
		TicketID: req.TicketID,
		Action:   action.String(),
		Operator: req.Operator,
		OpTime:   t.OpTime,
	}
	c.mu.Unlock()
	if err := c.appendWAL(&rec); err != nil {
		return nil, err
	}
	return &Response{Kind: KindAck, TicketID: req.TicketID}, nil
}

func (c *Collector) handleStats() (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	stats := &PoolStats{
		Total:      len(c.tickets),
		Open:       len(c.open),
		ByCategory: make(map[string]int, 3),
	}
	for i := range c.tickets {
		stats.ByCategory[c.tickets[i].Category.String()]++
	}
	return &Response{Kind: KindAck, Stats: stats}, nil
}
