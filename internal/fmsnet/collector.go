package fmsnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/mine"
)

// Collector is the centralized FMS server: it accepts agent reports and
// operator commands over TCP and keeps the failure pool in memory.
type Collector struct {
	listener net.Listener

	mu      sync.Mutex
	nextID  uint64
	tickets []fot.Ticket
	open    map[uint64]int // ticket id -> index into tickets
	conns   map[net.Conn]struct{}

	detector *mine.BatchDetector
	onAlert  func(mine.BatchAlert)

	wg      sync.WaitGroup
	closing chan struct{}
}

// NewCollector starts a collector listening on addr (use "127.0.0.1:0"
// for an ephemeral test port). Callers must Close it.
func NewCollector(addr string) (*Collector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fmsnet: listen: %w", err)
	}
	c := &Collector{
		listener: ln,
		open:     make(map[uint64]int),
		conns:    make(map[net.Conn]struct{}),
		closing:  make(chan struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address.
func (c *Collector) Addr() string { return c.listener.Addr().String() }

// EnableBatchAlerts attaches a live batch detector (internal/mine): every
// accepted report flows through it, and onAlert runs (on the reporting
// connection's goroutine) when a failure kind bursts. Call before agents
// connect.
func (c *Collector) EnableBatchAlerts(d *mine.BatchDetector, onAlert func(mine.BatchAlert)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.detector = d
	c.onAlert = onAlert
}

// Close stops accepting, severs active connections (idle agents would
// otherwise hold the collector open forever), and waits for the handler
// goroutines to drain.
func (c *Collector) Close() error {
	close(c.closing)
	err := c.listener.Close()
	c.mu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

// Trace exports the pool as an analysis-ready trace (a copy).
func (c *Collector) Trace() *fot.Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make([]fot.Ticket, len(c.tickets))
	copy(cp, c.tickets)
	return fot.NewTrace(cp)
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			select {
			case <-c.closing:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		c.wg.Add(1)
		go c.serve(conn)
	}
}

func (c *Collector) serve(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	c.mu.Lock()
	c.conns[conn] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		resp := Response{Kind: KindAck}
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{Kind: KindError, Error: err.Error()}
		} else if r, err := c.handle(&req); err != nil {
			resp = Response{Kind: KindError, Error: err.Error()}
		} else {
			resp = *r
		}
		out, err := encode(resp)
		if err != nil {
			return
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (c *Collector) handle(req *Request) (*Response, error) {
	switch req.Kind {
	case KindReport:
		return c.handleReport(req.Report)
	case KindList:
		return c.handleList(req)
	case KindClose:
		return c.handleClose(req)
	case KindStats:
		return c.handleStats()
	default:
		return nil, fmt.Errorf("fmsnet: unknown request kind %q", req.Kind)
	}
}

func (c *Collector) handleReport(r *Report) (*Response, error) {
	if err := validateReport(r); err != nil {
		return nil, err
	}
	device, err := fot.ParseComponent(r.Device)
	if err != nil {
		return nil, err
	}
	t := fot.Ticket{
		HostID:      r.HostID,
		Hostname:    r.Hostname,
		IDC:         r.IDC,
		Rack:        r.Rack,
		Position:    r.Position,
		Device:      device,
		Slot:        r.Slot,
		Type:        r.Type,
		Time:        r.Time.UTC(),
		Detail:      r.Detail,
		ProductLine: r.ProductLine,
		DeployTime:  r.DeployTime,
		Model:       r.Model,
	}
	var fire *mine.BatchAlert
	var onAlert func(mine.BatchAlert)
	c.mu.Lock()
	c.nextID++
	t.ID = c.nextID
	if r.InWarranty {
		// Awaits an operator decision; until then it sits open in the
		// pool as D_fixing-to-be.
		t.Category = fot.Fixing
		t.Action = fot.ActionNone
		c.open[t.ID] = len(c.tickets)
	} else {
		// Out of warranty: closed immediately, not repaired (Table I).
		t.Category = fot.Error
		if fot.IsFatalType(device, r.Type) {
			t.Action = fot.ActionDecommission
		} else {
			t.Action = fot.ActionIgnore
		}
	}
	c.tickets = append(c.tickets, t)
	if c.detector != nil {
		fire = c.detector.Observe(t)
		onAlert = c.onAlert
	}
	c.mu.Unlock()
	// The alert callback runs outside the pool lock so it may dial back
	// into the collector if it wants to.
	if fire != nil && onAlert != nil {
		onAlert(*fire)
	}
	return &Response{Kind: KindAck, TicketID: t.ID}, nil
}

func (c *Collector) handleList(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	limit := req.Limit
	if limit <= 0 {
		limit = len(c.tickets)
	}
	resp := &Response{Kind: KindAck}
	for i := range c.tickets {
		t := &c.tickets[i]
		_, isOpen := c.open[t.ID]
		if req.OnlyOpen && !isOpen {
			continue
		}
		resp.Tickets = append(resp.Tickets, PoolTicket{
			ID:       t.ID,
			HostID:   t.HostID,
			IDC:      t.IDC,
			Device:   t.Device.String(),
			Slot:     t.Slot,
			Type:     t.Type,
			Time:     t.Time,
			Category: t.Category.String(),
			Open:     isOpen,
		})
		if len(resp.Tickets) >= limit {
			break
		}
	}
	return resp, nil
}

func (c *Collector) handleClose(req *Request) (*Response, error) {
	action, err := fot.ParseAction(req.Action)
	if err != nil {
		return nil, err
	}
	if action == fot.ActionNone {
		return nil, fmt.Errorf("fmsnet: close requires a real action")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.open[req.TicketID]
	if !ok {
		return nil, fmt.Errorf("fmsnet: ticket %d is not open", req.TicketID)
	}
	t := &c.tickets[idx]
	t.Action = action
	t.Operator = req.Operator
	t.OpTime = time.Now().UTC()
	if t.OpTime.Before(t.Time) {
		// Simulated traces may carry future detection timestamps; keep
		// the ticket schema-valid.
		t.OpTime = t.Time
	}
	if action == fot.ActionMarkFalseAlarm {
		t.Category = fot.FalseAlarm
	}
	delete(c.open, req.TicketID)
	return &Response{Kind: KindAck, TicketID: req.TicketID}, nil
}

func (c *Collector) handleStats() (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	stats := &PoolStats{
		Total:      len(c.tickets),
		Open:       len(c.open),
		ByCategory: make(map[string]int, 3),
	}
	for i := range c.tickets {
		stats.ByCategory[c.tickets[i].Category.String()]++
	}
	return &Response{Kind: KindAck, Stats: stats}, nil
}
