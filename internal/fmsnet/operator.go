package fmsnet

import (
	"errors"
	"fmt"
	"time"

	"dcfail/internal/fot"
)

// OperatorConfig tunes the automated operator loop.
type OperatorConfig struct {
	// Operator is the user id recorded on closed tickets.
	Operator string
	// Interval is the review period (§VI: operators "periodically review
	// the failure records in the failure pool").
	Interval time.Duration
	// BatchSize bounds how many tickets one review sweep closes
	// ("process them in batches to save time"). Zero means all open.
	BatchSize int
}

// DefaultOperatorConfig returns a fast-reviewing operator for demos.
func DefaultOperatorConfig() OperatorConfig {
	return OperatorConfig{
		Operator:  "op-auto",
		Interval:  time.Second,
		BatchSize: 0,
	}
}

// RunOperator reviews the collector's open pool on a fixed period,
// issuing repair orders in batches, until stop closes. It performs one
// final sweep on shutdown and returns the number of tickets it closed.
func RunOperator(addr string, cfg OperatorConfig, stop <-chan struct{}) (int, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Operator == "" {
		cfg.Operator = "op-auto"
	}
	client, err := Dial(addr)
	if err != nil {
		return 0, err
	}
	defer client.Close()

	closed := 0
	sweep := func() error {
		open, err := client.List(true, cfg.BatchSize)
		if err != nil {
			return err
		}
		for _, t := range open {
			if err := client.CloseTicket(t.ID, fot.ActionRepairOrder, cfg.Operator); err != nil {
				// A concurrent sweep (or a close whose ack was lost
				// before a collector restart) may have beaten us to the
				// ticket; closing closed work is not a failure.
				var pe *ProtocolError
				if errors.As(err, &pe) && pe.Code == CodeNotOpen {
					continue
				}
				return fmt.Errorf("fmsnet: operator close %d: %w", t.ID, err)
			}
			closed++
		}
		return nil
	}

	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			// Final sweep so nothing stays open across shutdown.
			if err := sweep(); err != nil {
				return closed, err
			}
			return closed, nil
		case <-ticker.C:
			if err := sweep(); err != nil {
				return closed, err
			}
		}
	}
}
