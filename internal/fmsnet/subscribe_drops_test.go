package fmsnet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dcfail/internal/serve"
)

// TestSubscriberDropBackfillAccounting is the end-to-end drop contract
// between the collector feed and the serving daemon: a subscriber that
// overflows its bounded buffer sees Dropped() advance while the
// collector's ack path never stalls, and the daemon's exported
// SourceDrops tracks the live subscriber's counter — including across a
// reattach, where the fresh subscription restarts its count at zero and
// the daemon's high-water mark carries the history until the new feed
// catches up past it.
func TestSubscriberDropBackfillAccounting(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col)

	// The daemon reads whichever subscription is currently attached —
	// exactly how cmd/fotqueryd wires sub.Dropped into Options.SourceDrops.
	var cur atomic.Pointer[TicketSub]
	sub := col.SubscribeTickets(2)
	cur.Store(sub)
	d := serve.New(serve.Options{SourceDrops: func() uint64 { return cur.Load().Dropped() }})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	stats := func() uint64 {
		t.Helper()
		resp, err := http.Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var reply serve.StatsReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		return reply.SourceDrops
	}

	// Overflow the undrained 2-slot buffer. Every report must ack within
	// the deadline — drops are counted, never pushed back on the agent.
	const burst = 32
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); i <= burst; i++ {
			if _, err := cl.Report(sampleReport(i, true)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("acks stalled behind an overflowing subscription")
	}
	if got := sub.Dropped(); got != burst-2 {
		t.Fatalf("Dropped() = %d, want %d (buffer keeps 2 of %d)", got, burst-2, burst)
	}
	if got := stats(); got != sub.Dropped() {
		t.Fatalf("/stats source_drops = %d, want the subscriber's %d", got, sub.Dropped())
	}

	// Reattach: the old feed closes, a fresh one starts its counter at
	// zero. The exported counter must not regress, and once the new feed
	// drops past the old high-water mark the two agree again.
	sub.Close()
	sub2 := col.SubscribeTickets(1)
	defer sub2.Close()
	cur.Store(sub2)
	if got := stats(); got != burst-2 {
		t.Fatalf("/stats source_drops after reattach = %d, want high-water %d", got, burst-2)
	}
	const burst2 = 2 * burst
	for i := uint64(burst + 1); i <= burst+burst2; i++ {
		if _, err := cl.Report(sampleReport(i, true)); err != nil {
			t.Fatal(err)
		}
	}
	if got := sub2.Dropped(); got != burst2-1 {
		t.Fatalf("reattached Dropped() = %d, want %d", got, burst2-1)
	}
	if got := stats(); got != sub2.Dropped() {
		t.Fatalf("/stats source_drops = %d, want the reattached subscriber's %d", got, sub2.Dropped())
	}
}
