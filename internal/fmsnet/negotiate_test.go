package fmsnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dcfail/internal/wire"
)

// TestBinaryNegotiationHappyPath: a new agent against a new collector
// lands on the binary codec, and reports, acks, validation rejections,
// and (AgentID, Seq) dedup all behave exactly as over JSON.
func TestBinaryNegotiationHappyPath(t *testing.T) {
	col := startCollector(t)
	cl, err := DialBinary(col.Addr(), "agent-1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if got := cl.Codec(); got != wire.CodecBinV1 {
		t.Fatalf("negotiated codec = %q, want %q", got, wire.CodecBinV1)
	}

	id1, dup, err := cl.ReportFrom(sampleReport(1, true), "agent-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == 0 || dup {
		t.Fatalf("first report: id=%d dup=%v", id1, dup)
	}
	// At-least-once retry: same seq re-acks the original ticket.
	id2, dup, err := cl.ReportFrom(sampleReport(1, true), "agent-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1 || !dup {
		t.Fatalf("retried report: id=%d dup=%v, want id=%d dup=true", id2, dup, id1)
	}
	id3, dup, err := cl.ReportFrom(sampleReport(2, false), "agent-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 || dup {
		t.Fatalf("second report: id=%d dup=%v", id3, dup)
	}

	// A validation rejection comes back as a typed ProtocolError and the
	// stream keeps working afterwards.
	bad := sampleReport(3, true)
	bad.Device = "flux-capacitor"
	if _, _, err := cl.ReportFrom(bad, "agent-1", 3); err == nil {
		t.Fatal("invalid device accepted")
	} else {
		var pe *ProtocolError
		if !errors.As(err, &pe) || !pe.Permanent() {
			t.Fatalf("rejection error = %v, want permanent ProtocolError", err)
		}
	}
	if _, _, err := cl.ReportFrom(sampleReport(4, true), "agent-1", 4); err != nil {
		t.Fatalf("report after rejection: %v", err)
	}

	tr := col.Trace()
	if tr.Len() != 3 {
		t.Fatalf("pool has %d tickets, want 3", tr.Len())
	}
}

// TestOldJSONAgentAgainstNewCollector: a legacy client that never sends
// a hello still speaks plain NL-JSON end to end.
func TestOldJSONAgentAgainstNewCollector(t *testing.T) {
	col := startCollector(t)
	cl := dial(t, col) // plain Dial: no hello, pure JSON
	id, dup, err := cl.ReportFrom(sampleReport(1, true), "legacy", 1)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 || dup {
		t.Fatalf("legacy report: id=%d dup=%v", id, dup)
	}
	if _, _, err := cl.ReportFrom(sampleReport(1, true), "legacy", 1); err != nil {
		t.Fatal(err)
	}
	if got := cl.Codec(); got != "json" {
		t.Fatalf("legacy client codec = %q", got)
	}
}

// TestBinaryFallbackWhenCollectorDeclines: the collector answers the
// hello but refuses binary (DisableBinary); the new agent transparently
// stays on JSON over the same connection.
func TestBinaryFallbackWhenCollectorDeclines(t *testing.T) {
	col, err := NewCollectorWith("127.0.0.1:0", CollectorOptions{DisableBinary: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := col.Close(); err != nil {
			t.Errorf("collector close: %v", err)
		}
	})
	cl, err := DialBinary(col.Addr(), "agent-1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if got := cl.Codec(); got != "json" {
		t.Fatalf("codec after decline = %q, want json", got)
	}
	id, _, err := cl.ReportFrom(sampleReport(1, true), "agent-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero ticket id over fallback connection")
	}
}

// TestBinaryFallbackAgainstPreHelloCollector simulates a collector old
// enough to not know the hello kind at all: it rejects the unknown kind
// with KindError but keeps the connection serviceable, which is exactly
// what the real pre-negotiation serve loop does. DialBinary must treat
// the rejection as "no binary here" and keep the JSON connection.
func TestBinaryFallbackAgainstPreHelloCollector(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		sc := bufio.NewScanner(conn)
		w := bufio.NewWriter(conn)
		reply := func(resp Response) {
			line, _ := json.Marshal(resp)
			w.Write(append(line, '\n'))
			w.Flush()
		}
		for sc.Scan() {
			var req Request
			if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
				return
			}
			switch req.Kind {
			case KindReport:
				reply(Response{Kind: KindAck, TicketID: 42})
			default:
				// The old serve loop's unknown-kind rejection.
				reply(Response{Kind: KindError, Code: CodeBadRequest,
					Error: "fmsnet: unknown request kind \"hello\""})
			}
		}
	}()

	cl, err := DialBinary(ln.Addr().String(), "agent-1")
	if err != nil {
		t.Fatalf("DialBinary against old collector: %v", err)
	}
	if got := cl.Codec(); got != "json" {
		t.Fatalf("codec against old collector = %q, want json", got)
	}
	id, err := cl.Report(sampleReport(1, true))
	if err != nil {
		t.Fatalf("report over fallback: %v", err)
	}
	if id != 42 {
		t.Fatalf("ticket id = %d, want 42", id)
	}
	cl.Close()
	wg.Wait()
}

// TestRunAgentBinaryAcrossCollectorRestart: the full agent loop on the
// default (binary) codec survives a collector restart mid-stream — the
// reconnect renegotiates the codec and the (AgentID, Seq) dedup keeps
// delivery exactly-once at the collector.
func TestRunAgentBinaryAcrossCollectorRestart(t *testing.T) {
	dir := t.TempDir()
	col, err := NewCollectorWith("127.0.0.1:0", CollectorOptions{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	addr := col.Addr()

	reports := make(chan *Report, 8)
	cfg := DefaultAgentConfig()
	cfg.AgentID = "agent-r"
	cfg.RetryForever = true
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 20 * time.Millisecond

	done := make(chan struct{})
	var stats *AgentStats
	var runErr error
	go func() {
		defer close(done)
		stats, runErr = RunAgent(addr, reports, cfg)
	}()

	for i := 1; i <= 3; i++ {
		reports <- sampleReport(uint64(i), true)
	}
	waitPool(t, col, 3)

	// Restart on the same WAL. The listen address changes, so restart on
	// the original one explicitly.
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	col2, err := NewCollectorWith(addr, CollectorOptions{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := col2.Close(); err != nil {
			t.Errorf("collector close: %v", err)
		}
	})
	for i := 4; i <= 6; i++ {
		reports <- sampleReport(uint64(i), true)
	}
	close(reports)
	<-done
	if runErr != nil {
		t.Fatalf("RunAgent: %v (stats %+v)", runErr, stats)
	}
	if stats.Sent != 6 {
		t.Fatalf("sent %d reports, want 6 (stats %+v)", stats.Sent, stats)
	}
	tr := col2.Trace()
	if tr.Len() != 6 {
		t.Fatalf("pool has %d tickets after restart, want 6", tr.Len())
	}
	seen := make(map[uint64]bool)
	for _, tk := range tr.Tickets {
		if seen[tk.HostID] {
			t.Fatalf("duplicate ticket for host %d", tk.HostID)
		}
		seen[tk.HostID] = true
	}
}

// waitPool blocks until the collector's pool holds want tickets.
func waitPool(t *testing.T, col *Collector, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if col.Trace().Len() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("pool never reached %d tickets (has %d)", want, col.Trace().Len())
}

// TestBinaryReportSteadyStateDoesNotAllocate pins the tentpole gate on
// the live path, not just the codec in isolation: after warm-up, a
// report round trip allocates nothing on the client side (encoder,
// frame buffer, and symbol table are all reused).
func TestBinaryReportSteadyStateDoesNotAllocate(t *testing.T) {
	col := startCollector(t)
	cl, err := DialBinary(col.Addr(), "agent-a")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if cl.Codec() != wire.CodecBinV1 {
		t.Fatalf("codec = %q", cl.Codec())
	}
	rep := sampleReport(7, true)
	var seq uint64
	// Warm up: intern every symbol, grow the buffers.
	for i := 0; i < 4; i++ {
		seq++
		if _, _, err := cl.ReportFrom(rep, "agent-a", seq); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		seq++
		if _, _, err := cl.ReportFrom(rep, "agent-a", seq); err != nil {
			t.Fatal(err)
		}
	})
	// The client-side hot path is alloc-free; allow a tiny slack for the
	// runtime's conn read path.
	if avg > 2 {
		t.Fatalf("steady-state report allocates %.1f times per round trip", avg)
	}
}
