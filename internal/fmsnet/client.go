package fmsnet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// Client is a synchronous FMS connection used by both host agents (to
// report failures) and operators (to review and close tickets).
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
}

// Dial connects to a collector.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("fmsnet: dial %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Client{conn: conn, r: sc, w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	line, err := encode(req)
	if err != nil {
		return nil, err
	}
	if _, err := c.w.Write(line); err != nil {
		return nil, fmt.Errorf("fmsnet: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("fmsnet: flush: %w", err)
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, fmt.Errorf("fmsnet: receive: %w", err)
		}
		return nil, fmt.Errorf("fmsnet: connection closed by collector")
	}
	var resp Response
	if err := json.Unmarshal(c.r.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("fmsnet: decode response: %w", err)
	}
	if resp.Kind == KindError {
		return nil, &ProtocolError{Code: resp.Code, Msg: resp.Error}
	}
	return &resp, nil
}

// Report submits one failure report and returns the assigned ticket id.
func (c *Client) Report(r *Report) (uint64, error) {
	resp, err := c.roundTrip(&Request{Kind: KindReport, Report: r})
	if err != nil {
		return 0, err
	}
	return resp.TicketID, nil
}

// ReportFrom submits one report stamped with the agent's (AgentID, Seq)
// dedup key, enabling at-least-once delivery: resending after a lost ack
// is safe because the collector re-acks the original ticket instead of
// inserting a duplicate. It returns the ticket id and whether the
// collector recognized the report as a duplicate.
func (c *Client) ReportFrom(r *Report, agentID string, seq uint64) (uint64, bool, error) {
	resp, err := c.roundTrip(&Request{Kind: KindReport, AgentID: agentID, Seq: seq, Report: r})
	if err != nil {
		return 0, false, err
	}
	return resp.TicketID, resp.Duplicate, nil
}

// List fetches tickets from the pool.
func (c *Client) List(onlyOpen bool, limit int) ([]PoolTicket, error) {
	resp, err := c.roundTrip(&Request{Kind: KindList, OnlyOpen: onlyOpen, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Tickets, nil
}

// CloseTicket records an operator decision on an open ticket.
func (c *Client) CloseTicket(id uint64, action fot.Action, operator string) error {
	_, err := c.roundTrip(&Request{
		Kind: KindClose, TicketID: id, Action: action.String(), Operator: operator,
	})
	return err
}

// Stats fetches pool statistics.
func (c *Client) Stats() (*PoolStats, error) {
	resp, err := c.roundTrip(&Request{Kind: KindStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("fmsnet: stats response without body")
	}
	return resp.Stats, nil
}

// ReportTicket converts an already-materialized ticket (e.g. from a
// simulated trace) into an agent report and submits it — the bridge used
// to replay simulator output through the real pipeline.
func (c *Client) ReportTicket(t fot.Ticket, server *topo.Server) (uint64, error) {
	rep := &Report{
		HostID:      t.HostID,
		Hostname:    t.Hostname,
		IDC:         t.IDC,
		Rack:        t.Rack,
		Position:    t.Position,
		Device:      t.Device.String(),
		Slot:        t.Slot,
		Type:        t.Type,
		Time:        t.Time,
		Detail:      t.Detail,
		ProductLine: t.ProductLine,
		DeployTime:  t.DeployTime,
		Model:       t.Model,
		InWarranty:  t.Category != fot.Error,
	}
	if server != nil {
		rep.InWarranty = server.InWarranty(t.Time)
	}
	return c.Report(rep)
}
