package fmsnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/topo"
	"dcfail/internal/wire"
)

// Client is a synchronous FMS connection used by both host agents (to
// report failures) and operators (to review and close tickets).
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer

	// Binary codec state, nil/empty on NL-JSON connections. Set once by
	// DialBinary's handshake; the scratch buffers and symbol tables are
	// reused across reports so steady-state reporting does not allocate.
	codec string
	enc   *wire.Encoder
	fr    *wire.FrameReader
	frame []byte
	wrep  wire.Report
}

// Dial connects to a collector speaking legacy NL-JSON.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("fmsnet: dial %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Client{conn: conn, r: sc, w: bufio.NewWriter(conn)}, nil
}

// DialBinary connects and negotiates the dense binary report codec,
// falling back to NL-JSON transparently when the collector declines (or
// predates the hello kind entirely). The returned client works either
// way; Codec reports what was negotiated.
//
// A binary connection is a report pipe: Report and ReportFrom use the
// binary frames, and the collector only accepts report frames on it.
// Operator calls (List, CloseTicket, Stats) need a plain Dial client.
// agentID becomes the dedup scope for every report on the connection;
// with a non-empty agentID use ReportFrom with distinct sequence
// numbers, since the collector dedups on (agentID, seq).
func DialBinary(addr, agentID string) (*Client, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&Request{
		Kind:    KindHello,
		AgentID: agentID,
		Codecs:  []string{wire.CodecBinV1},
	})
	if err != nil {
		var pe *ProtocolError
		if errors.As(err, &pe) {
			// An old collector rejects the unknown hello kind but keeps
			// the connection serviceable: stay on JSON.
			return c, nil
		}
		//lint:ignore errdrop the dial failed on a transport error; that error is returned and the half-open conn is abandoned
		c.Close()
		return nil, err
	}
	if resp.Codec == wire.CodecBinV1 {
		c.codec = resp.Codec
		c.enc = wire.NewEncoder()
		// Safe to read the raw conn: the protocol is strictly
		// request/response, so after the hello ack line the Scanner's
		// buffer holds no server bytes the frame reader would miss.
		c.fr = wire.NewFrameReader(c.conn)
	}
	return c, nil
}

// Codec reports the negotiated wire codec: wire.CodecBinV1 after a
// successful binary handshake, "json" otherwise.
func (c *Client) Codec() string {
	if c.codec == "" {
		return "json"
	}
	return c.codec
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	line, err := encode(req)
	if err != nil {
		return nil, err
	}
	if _, err := c.w.Write(line); err != nil {
		return nil, fmt.Errorf("fmsnet: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("fmsnet: flush: %w", err)
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, fmt.Errorf("fmsnet: receive: %w", err)
		}
		return nil, fmt.Errorf("fmsnet: connection closed by collector")
	}
	var resp Response
	if err := json.Unmarshal(c.r.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("fmsnet: decode response: %w", err)
	}
	if resp.Kind == KindError {
		return nil, &ProtocolError{Code: resp.Code, Msg: resp.Error}
	}
	return &resp, nil
}

// Report submits one failure report and returns the assigned ticket id.
func (c *Client) Report(r *Report) (uint64, error) {
	if c.codec == wire.CodecBinV1 {
		id, _, err := c.reportBinary(r, 0)
		return id, err
	}
	resp, err := c.roundTrip(&Request{Kind: KindReport, Report: r})
	if err != nil {
		return 0, err
	}
	return resp.TicketID, nil
}

// ReportFrom submits one report stamped with the agent's (AgentID, Seq)
// dedup key, enabling at-least-once delivery: resending after a lost ack
// is safe because the collector re-acks the original ticket instead of
// inserting a duplicate. It returns the ticket id and whether the
// collector recognized the report as a duplicate. On a binary connection
// the agent identity was pinned at the handshake, so agentID here only
// needs to match the one given to DialBinary.
func (c *Client) ReportFrom(r *Report, agentID string, seq uint64) (uint64, bool, error) {
	if c.codec == wire.CodecBinV1 {
		return c.reportBinary(r, seq)
	}
	resp, err := c.roundTrip(&Request{Kind: KindReport, AgentID: agentID, Seq: seq, Report: r})
	if err != nil {
		return 0, false, err
	}
	return resp.TicketID, resp.Duplicate, nil
}

// reportBinary is the dense-codec report round trip: one KindReport
// frame out, one KindAck or KindError frame back. The encoder's symbol
// table and the frame buffer persist across calls, so a steady-state
// agent reporting recurrent failure shapes allocates nothing per report.
func (c *Client) reportBinary(r *Report, seq uint64) (uint64, bool, error) {
	c.wrep = wire.Report{
		Seq:         seq,
		InWarranty:  r.InWarranty,
		HostID:      r.HostID,
		Hostname:    r.Hostname,
		IDC:         r.IDC,
		Rack:        r.Rack,
		Position:    r.Position,
		Device:      r.Device,
		Slot:        r.Slot,
		Type:        r.Type,
		Time:        r.Time,
		Detail:      r.Detail,
		ProductLine: r.ProductLine,
		DeployTime:  r.DeployTime,
		Model:       r.Model,
	}
	c.frame = c.enc.AppendReport(c.frame[:0], &c.wrep)
	if _, err := c.w.Write(c.frame); err != nil {
		return 0, false, fmt.Errorf("fmsnet: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return 0, false, fmt.Errorf("fmsnet: flush: %w", err)
	}
	kind, payload, err := c.fr.Next()
	if err != nil {
		return 0, false, fmt.Errorf("fmsnet: receive: %w", err)
	}
	switch kind {
	case wire.KindAck:
		id, dup, err := wire.DecodeAck(payload)
		if err != nil {
			return 0, false, fmt.Errorf("fmsnet: decode ack: %w", err)
		}
		return id, dup, nil
	case wire.KindError:
		code, msg, err := wire.DecodeError(payload)
		if err != nil {
			return 0, false, fmt.Errorf("fmsnet: decode error frame: %w", err)
		}
		return 0, false, &ProtocolError{Code: code, Msg: msg}
	default:
		return 0, false, fmt.Errorf("fmsnet: unexpected response frame kind %d", kind)
	}
}

// List fetches tickets from the pool.
func (c *Client) List(onlyOpen bool, limit int) ([]PoolTicket, error) {
	resp, err := c.roundTrip(&Request{Kind: KindList, OnlyOpen: onlyOpen, Limit: limit})
	if err != nil {
		return nil, err
	}
	return resp.Tickets, nil
}

// CloseTicket records an operator decision on an open ticket.
func (c *Client) CloseTicket(id uint64, action fot.Action, operator string) error {
	_, err := c.roundTrip(&Request{
		Kind: KindClose, TicketID: id, Action: action.String(), Operator: operator,
	})
	return err
}

// Stats fetches pool statistics.
func (c *Client) Stats() (*PoolStats, error) {
	resp, err := c.roundTrip(&Request{Kind: KindStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("fmsnet: stats response without body")
	}
	return resp.Stats, nil
}

// ReportTicket converts an already-materialized ticket (e.g. from a
// simulated trace) into an agent report and submits it — the bridge used
// to replay simulator output through the real pipeline.
func (c *Client) ReportTicket(t fot.Ticket, server *topo.Server) (uint64, error) {
	rep := &Report{
		HostID:      t.HostID,
		Hostname:    t.Hostname,
		IDC:         t.IDC,
		Rack:        t.Rack,
		Position:    t.Position,
		Device:      t.Device.String(),
		Slot:        t.Slot,
		Type:        t.Type,
		Time:        t.Time,
		Detail:      t.Detail,
		ProductLine: t.ProductLine,
		DeployTime:  t.DeployTime,
		Model:       t.Model,
		InWarranty:  t.Category != fot.Error,
	}
	if server != nil {
		rep.InWarranty = server.InWarranty(t.Time)
	}
	return c.Report(rep)
}
