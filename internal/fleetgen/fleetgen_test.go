package fleetgen

import (
	"math"
	"testing"
	"time"

	"dcfail/internal/event"
	"dcfail/internal/fot"
)

func generateSmall(t *testing.T, seed int64) ([]event.Event, *Report) {
	t.Helper()
	_, gen, err := SmallProfile().Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	events, report, err := gen.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	return events, report
}

func TestGenerateBasics(t *testing.T) {
	events, report := generateSmall(t, 1)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if report.Total() != len(events) {
		t.Errorf("report total %d != %d events", report.Total(), len(events))
	}
	start, end := SmallProfile().Window()
	for i, e := range events {
		if err := e.Validate(); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e.Time.Before(start) || e.Time.After(end) {
			t.Fatalf("event %d at %v outside window", i, e.Time)
		}
		if i > 0 && events[i].Time.Before(events[i-1].Time) {
			t.Fatal("events not sorted by time")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := generateSmall(t, 5)
	b, _ := generateSmall(t, 5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].Server.HostID != b[i].Server.HostID ||
			a[i].Component != b[i].Component || a[i].Type != b[i].Type {
			t.Fatalf("event %d differs across equal-seed runs", i)
		}
	}
	c, _ := generateSmall(t, 6)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if !a[i].Time.Equal(c[i].Time) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds gave identical streams")
		}
	}
}

func TestCalibrationHitsTableII(t *testing.T) {
	events, report := generateSmall(t, 2)
	shares := TableIIShares()
	counts := make(map[fot.Component]int)
	for _, e := range events {
		counts[e.Component]++
	}
	total := float64(len(events))
	// The dominant classes must land near their Table II shares. Injected
	// overshoot (floored classes like power at small scale) gets slack.
	for _, c := range []fot.Component{fot.HDD, fot.Misc, fot.Memory} {
		got := float64(counts[c]) / total
		want := shares[c]
		if math.Abs(got-want) > 0.35*want+0.01 {
			t.Errorf("%v share = %.4f, want ≈%.4f", c, got, want)
		}
	}
	// Every class must be present — except CPU, whose 0.04% share means
	// only ~3 expected tickets at small scale (a Poisson zero is fair).
	for _, c := range fot.Components() {
		if counts[c] == 0 && c != fot.CPU {
			t.Errorf("class %v absent from trace", c)
		}
	}
	// Calibration factors must be recorded and positive.
	for _, c := range fot.Components() {
		if f := report.CalibrationFactor[c]; f <= 0 {
			t.Errorf("calibration factor for %v = %g", c, f)
		}
	}
}

func TestTargetTicketsApproximatelyMet(t *testing.T) {
	p := SmallProfile()
	events, _ := generateSmall(t, 3)
	got := float64(len(events))
	want := float64(p.TargetTickets)
	if got < 0.6*want || got > 1.6*want {
		t.Errorf("generated %d events for a %d budget", len(events), p.TargetTickets)
	}
}

func TestInjectedAndBaselineBothPresent(t *testing.T) {
	events, report := generateSmall(t, 4)
	causes := map[event.Cause]int{}
	for _, e := range events {
		causes[e.Cause]++
	}
	if causes[event.CauseBaseline] == 0 || causes[event.CauseBatch] == 0 ||
		causes[event.CauseCorrelated] == 0 || causes[event.CauseRepeat] == 0 {
		t.Errorf("missing cause classes: %v", causes)
	}
	if len(report.Injected) == 0 || len(report.Baseline) == 0 {
		t.Error("report should track both mechanisms")
	}
}

func TestWorkloadGateAblation(t *testing.T) {
	p := SmallProfile()
	p.WorkloadGate = false
	_, gen, err := p.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := gen.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline detections should spread uniformly over hours. Use only
	// baseline events (injected batches have their own windows).
	counts := make([]float64, 24)
	n := 0
	for _, e := range events {
		if e.Cause == event.CauseBaseline {
			counts[e.Time.Hour()]++
			n++
		}
	}
	mean := float64(n) / 24
	for h, c := range counts {
		if math.Abs(c-mean) > 5*math.Sqrt(mean) {
			t.Errorf("hour %d count %g deviates from flat mean %g", h, c, mean)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	fleet, gen, err := SmallProfile().Build(1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*Generator){
		func(g *Generator) { g.Fleet = nil },
		func(g *Generator) { g.Hazard = nil },
		func(g *Generator) { g.End = g.Start },
		func(g *Generator) { g.TargetTickets = -1 },
	}
	for i, mutate := range cases {
		bad := *gen
		bad.Fleet = fleet
		mutate(&bad)
		if _, _, err := bad.Generate(1); err == nil {
			t.Errorf("bad generator %d accepted", i)
		}
	}
}

func TestProfileRequiresInjectorFactory(t *testing.T) {
	p := SmallProfile()
	p.NewInjectors = nil
	if _, _, err := p.Build(1); err == nil {
		t.Error("nil injector factory accepted")
	}
}

func TestNoInjectorsStillWorks(t *testing.T) {
	// The "no batch" ablation: baseline only.
	p := SmallProfile()
	_, gen, err := p.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	gen.Injectors = nil
	events, report, err := gen.Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Cause != event.CauseBaseline {
			t.Fatal("non-baseline event without injectors")
		}
	}
	if len(report.Injected) != 0 {
		t.Error("injected report should be empty")
	}
	// Calibration should now assign the full class budget to baseline.
	got := float64(len(events))
	want := float64(p.TargetTickets)
	if got < 0.7*want || got > 1.3*want {
		t.Errorf("baseline-only run: %d events for %d budget", len(events), p.TargetTickets)
	}
}

func TestExposureWindows(t *testing.T) {
	_, gen, err := SmallProfile().Build(9)
	if err != nil {
		t.Fatal(err)
	}
	s := &gen.Fleet.Servers[0]
	var total float64
	var windows int
	forEachExposureWindow(s, gen.Start, gen.End, func(age int, lo, hi time.Time, frac float64) {
		windows++
		if lo.Before(gen.Start) || hi.After(gen.End) || !hi.After(lo) {
			t.Fatalf("bad window [%v, %v)", lo, hi)
		}
		if frac <= 0 || frac > 1+1e-9 {
			t.Fatalf("bad frac %g", frac)
		}
		if age < 0 {
			t.Fatalf("negative age %d", age)
		}
		total += frac
	})
	if windows == 0 {
		t.Fatal("no exposure windows")
	}
	// Total exposure (in months) should be close to the overlap between
	// [deploy, end) and [start, end) in months.
	lo := s.DeployTime
	if gen.Start.After(lo) {
		lo = gen.Start
	}
	overlapMonths := gen.End.Sub(lo).Hours() / (24 * 30.44)
	if math.Abs(total-overlapMonths) > 1.5 {
		t.Errorf("total exposure %.1f months, want ≈%.1f", total, overlapMonths)
	}
}

func TestExposureSkipsUndeployed(t *testing.T) {
	_, gen, err := SmallProfile().Build(10)
	if err != nil {
		t.Fatal(err)
	}
	s := *(&gen.Fleet.Servers[0])
	s.DeployTime = gen.End.AddDate(1, 0, 0)
	called := false
	forEachExposureWindow(&s, gen.Start, gen.End, func(int, time.Time, time.Time, float64) {
		called = true
	})
	if called {
		t.Error("server deployed after the window should have no exposure")
	}
}
