package fleetgen

import (
	"testing"

	"dcfail/internal/fot"
)

func TestProfileShapes(t *testing.T) {
	paper := PaperProfile()
	small := SmallProfile()
	if paper.Name != "paper" || small.Name != "small" {
		t.Errorf("profile names: %q, %q", paper.Name, small.Name)
	}
	if paper.TargetTickets <= small.TargetTickets {
		t.Error("paper profile should dwarf the small one")
	}
	if !paper.WorkloadGate || !small.WorkloadGate {
		t.Error("profiles gate detection by default")
	}
	for _, p := range []Profile{paper, small} {
		lo, hi := p.Window()
		if !hi.After(lo) {
			t.Errorf("%s: empty window", p.Name)
		}
		if got := hi.Sub(lo).Hours() / (24 * 365.25); got < 3.5 || got > 4.5 {
			t.Errorf("%s: window %.1f years, want ≈4", p.Name, got)
		}
		injs := p.NewInjectors()
		if len(injs) != 6 {
			t.Errorf("%s: %d injectors, want the full roster of 6", p.Name, len(injs))
		}
		// Fresh instances each call (no shared mutable config).
		again := p.NewInjectors()
		for i := range injs {
			if injs[i] == again[i] {
				t.Errorf("%s: injector %d shared between calls", p.Name, i)
			}
		}
	}
	// The paper profile models hundreds of product lines so Fig. 11's
	// small-line population exists.
	if paper.FleetSpec.ProductLines < 200 {
		t.Errorf("paper profile has only %d product lines", paper.FleetSpec.ProductLines)
	}
}

func TestTableIISharesNormalized(t *testing.T) {
	shares := TableIIShares()
	sum := 0.0
	for _, c := range fot.Components() {
		s, ok := shares[c]
		if !ok {
			t.Errorf("missing share for %v", c)
		}
		if s <= 0 {
			t.Errorf("non-positive share for %v", c)
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %g", sum)
	}
	if shares[fot.HDD] != 0.8184 {
		t.Errorf("HDD share = %g, want the paper's 0.8184", shares[fot.HDD])
	}
}

func TestReportTotal(t *testing.T) {
	r := &Report{
		Baseline: map[fot.Component]int{fot.HDD: 3, fot.Memory: 2},
		Injected: map[fot.Component]int{fot.HDD: 5},
	}
	if got := r.Total(); got != 10 {
		t.Errorf("total = %d, want 10", got)
	}
}
