// Package fleetgen orchestrates trace generation: it builds the fleet,
// runs the correlated-failure injectors, calibrates the baseline hazard
// model so the class mix lands on Table II, and samples the baseline
// (independent) failures through the workload-gated detection model.
//
// Output is a raw event stream; internal/fms turns it into tickets.
package fleetgen

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dcfail/internal/event"
	"dcfail/internal/fot"
	"dcfail/internal/hazard"
	"dcfail/internal/inject"
	"dcfail/internal/stats"
	"dcfail/internal/topo"
	"dcfail/internal/workload"
)

// TableIIShares returns the paper's component failure mix (Table II),
// normalized to sum to one.
func TableIIShares() map[fot.Component]float64 {
	return map[fot.Component]float64{
		fot.HDD:          0.8184,
		fot.Misc:         0.1020,
		fot.Memory:       0.0306,
		fot.Power:        0.0174,
		fot.RAIDCard:     0.0123,
		fot.FlashCard:    0.0067,
		fot.Motherboard:  0.0057,
		fot.SSD:          0.0031,
		fot.Fan:          0.0019,
		fot.HDDBackboard: 0.0014,
		fot.CPU:          0.0004,
	}
}

// Report summarizes one generation run: how many events each mechanism
// contributed per class. It is ground truth for ablations and EXPERIMENTS.md
// and is never visible to the analyses.
type Report struct {
	Baseline map[fot.Component]int
	Injected map[fot.Component]int
	// CalibrationFactor is the per-class multiplier applied to the
	// hazard model's base AFRs to hit the Table II budget.
	CalibrationFactor map[fot.Component]float64
}

// Total returns the total number of generated events.
func (r *Report) Total() int {
	n := 0
	for _, v := range r.Baseline {
		n += v
	}
	for _, v := range r.Injected {
		n += v
	}
	return n
}

// Generator produces raw failure events for a fleet.
type Generator struct {
	Fleet  *topo.Fleet
	Hazard *hazard.Model
	// Start and End bound the study window (FMS coverage window).
	Start, End time.Time
	// Injectors contribute the correlated failures; may be empty (the
	// "no batch" ablation).
	Injectors []inject.Injector
	// TargetTickets is the calibration budget: expected failures
	// (baseline + injected) across all classes. Zero disables
	// calibration and uses the hazard model's rates as-is.
	TargetTickets int
	// Shares is the per-class target mix; nil means TableIIShares.
	Shares map[fot.Component]float64
	// WorkloadGate applies the per-line diurnal detection profiles.
	// Disabling it is the Hypothesis 1/2 ablation: detections place
	// uniformly in time.
	WorkloadGate bool
}

// Generate runs injection, calibration and baseline sampling. The same
// seed yields the same events.
func (g *Generator) Generate(seed int64) ([]event.Event, *Report, error) {
	if err := g.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	report := &Report{
		Baseline:          make(map[fot.Component]int),
		Injected:          make(map[fot.Component]int),
		CalibrationFactor: make(map[fot.Component]float64),
	}

	var batchSeq uint64
	ctx := &inject.Context{
		Fleet: g.Fleet,
		Start: g.Start,
		End:   g.End,
		NextBatchID: func() uint64 {
			batchSeq++
			return batchSeq
		},
	}
	var events []event.Event
	for _, inj := range g.Injectors {
		injected, err := inj.Inject(rng, ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("fleetgen: injector %s: %w", inj.Name(), err)
		}
		for _, e := range injected {
			report.Injected[e.Component]++
		}
		events = append(events, injected...)
	}

	if g.TargetTickets > 0 {
		g.calibrate(report)
	}

	baseline := g.sampleBaseline(seed, report)
	events = append(events, baseline...)
	event.SortByTime(events)
	return events, report, nil
}

func (g *Generator) validate() error {
	switch {
	case g.Fleet == nil || g.Fleet.NumServers() == 0:
		return fmt.Errorf("fleetgen: empty fleet")
	case g.Hazard == nil:
		return fmt.Errorf("fleetgen: nil hazard model")
	case !g.End.After(g.Start):
		return fmt.Errorf("fleetgen: empty study window")
	case g.TargetTickets < 0:
		return fmt.Errorf("fleetgen: negative ticket target")
	}
	return g.Hazard.Validate()
}

// calibrate rescales the hazard model's base AFRs so that the expected
// baseline count per class equals the class's Table II budget minus what
// the injectors already produced (empirically, from this run). A small
// floor keeps every class alive even when injection overshoots its budget.
func (g *Generator) calibrate(report *Report) {
	shares := g.Shares
	if shares == nil {
		shares = TableIIShares()
	}
	expected := g.expectedBaseline()
	total := float64(g.TargetTickets)
	for _, c := range fot.Components() {
		budget := total*shares[c] - float64(report.Injected[c])
		floor := 0.02 * total * shares[c]
		if budget < floor {
			budget = floor
		}
		if expected[c] <= 0 {
			report.CalibrationFactor[c] = 1
			continue
		}
		factor := budget / expected[c]
		report.CalibrationFactor[c] = factor
		g.Hazard.SetBaseAFR(c, g.Hazard.BaseAFR(c)*factor)
	}
}

// expectedBaseline integrates the hazard model over the fleet's exposure:
// the expected number of baseline failures per class with the current
// rates.
func (g *Generator) expectedBaseline() map[fot.Component]float64 {
	out := make(map[fot.Component]float64, len(fot.Components()))
	for i := range g.Fleet.Servers {
		s := &g.Fleet.Servers[i]
		dc := g.datacenterOf(s.IDC)
		cooling := 1.0
		if dc != nil {
			cooling = dc.CoolingAt(s.Position)
		}
		forEachExposureMonth(s, g.Start, g.End, func(ageMonths int, frac float64) {
			for _, c := range fot.Components() {
				n := s.Inventory[c]
				if n == 0 {
					continue
				}
				mult := s.Frailty * float64(n) * frac
				if c != fot.Misc {
					mult *= cooling
				}
				out[c] += g.Hazard.MonthlyRate(c, ageMonths) * mult
			}
		})
	}
	return out
}

// baselineShardSize is the number of servers one goroutine samples. Each
// shard derives its own RNG from (seed, shard index), so results are
// deterministic regardless of GOMAXPROCS or scheduling.
const baselineShardSize = 4096

// sampleBaseline draws the independent failures: per server, per class,
// per month-in-service, a Poisson count placed in time by the detection
// profile. Shards run in parallel.
func (g *Generator) sampleBaseline(seed int64, report *Report) []event.Event {
	lineWorkload := make(map[string]workload.Profile, len(g.Fleet.Lines))
	for _, pl := range g.Fleet.Lines {
		name := pl.Workload
		if !g.WorkloadGate {
			name = workload.Flat
		}
		lineWorkload[pl.Name] = workload.ByName(name)
	}
	human := workload.ByName(workload.Human)
	if !g.WorkloadGate {
		human = workload.ByName(workload.Flat)
	}

	servers := g.Fleet.Servers
	shards := (len(servers) + baselineShardSize - 1) / baselineShardSize
	results := make([][]event.Event, shards)
	var wg sync.WaitGroup
	for shard := 0; shard < shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			// Golden-ratio mixing keeps shard streams well separated.
			const mix = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64
			rng := rand.New(rand.NewSource(seed + int64(shard+1)*mix))
			lo := shard * baselineShardSize
			hi := lo + baselineShardSize
			if hi > len(servers) {
				hi = len(servers)
			}
			results[shard] = g.sampleServers(rng, servers[lo:hi], lineWorkload, &human)
		}(shard)
	}
	wg.Wait()

	var out []event.Event
	for _, evs := range results {
		for _, e := range evs {
			report.Baseline[e.Component]++
		}
		out = append(out, evs...)
	}
	return out
}

// sampleServers draws the baseline failures of one server shard.
func (g *Generator) sampleServers(
	rng *rand.Rand,
	servers []topo.Server,
	lineWorkload map[string]workload.Profile,
	human *workload.Profile,
) []event.Event {
	var out []event.Event
	for i := range servers {
		s := &servers[i]
		dc := g.datacenterOf(s.IDC)
		cooling := 1.0
		if dc != nil {
			cooling = dc.CoolingAt(s.Position)
		}
		prof := lineWorkload[s.ProductLine]
		forEachExposureWindow(s, g.Start, g.End, func(ageMonths int, lo, hi time.Time, frac float64) {
			for _, c := range fot.Components() {
				n := s.Inventory[c]
				if n == 0 {
					continue
				}
				mult := s.Frailty * float64(n) * frac
				if c != fot.Misc {
					mult *= cooling
				}
				mean := g.Hazard.MonthlyRate(c, ageMonths) * mult
				k := stats.PoissonRand(rng, mean)
				for j := 0; j < k; j++ {
					p := &prof
					if c == fot.Misc {
						p = human
					}
					out = append(out, event.Event{
						Server:    s,
						Component: c,
						Slot:      fot.SampleSlot(rng, c, n),
						Type:      fot.SampleType(rng, c),
						Time:      p.SampleTime(rng, lo, hi),
						Cause:     event.CauseBaseline,
					})
				}
			}
		})
	}
	return out
}

func (g *Generator) datacenterOf(idc string) *topo.Datacenter {
	for i := range g.Fleet.Datacenters {
		if g.Fleet.Datacenters[i].ID == idc {
			return &g.Fleet.Datacenters[i]
		}
	}
	return nil
}

// forEachExposureMonth visits every month-in-service of the server that
// overlaps the study window, with the fraction of that month inside it.
func forEachExposureMonth(s *topo.Server, start, end time.Time, fn func(ageMonths int, frac float64)) {
	forEachExposureWindow(s, start, end, func(ageMonths int, _, _ time.Time, frac float64) {
		fn(ageMonths, frac)
	})
}

// forEachExposureWindow is forEachExposureMonth plus the clipped window
// bounds, for samplers that need to place timestamps.
func forEachExposureWindow(s *topo.Server, start, end time.Time, fn func(ageMonths int, lo, hi time.Time, frac float64)) {
	if !end.After(s.DeployTime) {
		return
	}
	for age := 0; ; age++ {
		mLo := s.DeployTime.AddDate(0, age, 0)
		mHi := s.DeployTime.AddDate(0, age+1, 0)
		if !mLo.Before(end) {
			return
		}
		lo, hi := mLo, mHi
		if lo.Before(start) {
			lo = start
		}
		if hi.After(end) {
			hi = end
		}
		if !hi.After(lo) {
			continue
		}
		frac := hi.Sub(lo).Hours() / mHi.Sub(mLo).Hours()
		fn(age, lo, hi, frac)
	}
}
