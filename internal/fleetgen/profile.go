package fleetgen

import (
	"fmt"
	"time"

	"dcfail/internal/hazard"
	"dcfail/internal/inject"
	"dcfail/internal/topo"
)

// Profile bundles everything that defines a generation scenario: fleet
// shape, ticket budget, injector roster and the workload-gate switch.
// Profiles are value types; ablations copy one and flip a field.
type Profile struct {
	Name          string
	FleetSpec     topo.Spec
	TargetTickets int
	WorkloadGate  bool
	// NewInjectors returns fresh injector instances (injectors are
	// stateless but configs must not be shared across concurrent runs).
	NewInjectors func() []inject.Injector
}

// PaperProfile is the default, paper-scale scenario: 24 datacenters,
// ≈130k servers, a four-year window and a ≈250k-ticket budget split per
// Table II — the scale at which Table V's absolute batch thresholds
// (100/200/500 per day) are meaningful, and at which the
// tickets-per-server ratio (≈2) approaches the paper's fleet.
func PaperProfile() Profile {
	sp := topo.DefaultSpec()
	sp.RacksPerDC = 160
	sp.ProductLines = 800 // hundreds of lines, most with <100 failures
	return Profile{
		Name:          "paper",
		FleetSpec:     sp,
		TargetTickets: 250000,
		WorkloadGate:  true,
		NewInjectors: func() []inject.Injector {
			return []inject.Injector{
				inject.DefaultHDDBatch(),
				inject.DefaultSASBatch(),
				inject.DefaultPDUOutage(),
				inject.DefaultOperatorMistake(),
				inject.DefaultCorrelatedPairs(),
				inject.DefaultSyncRepeat(),
			}
		},
	}
}

// SmallProfile is a scaled-down scenario for tests and examples: ≈3k
// servers and a ≈9k-ticket budget, keeping the tickets-per-server ratio
// near the paper's so per-server statistics (repeats, pairs, skew) stay
// meaningful. Batch sizes and injector rates shrink with the fleet so the
// joint structure survives at small scale (absolute Table V thresholds do
// not — use PaperProfile for those).
func SmallProfile() Profile {
	sp := topo.DefaultSpec()
	sp.Datacenters = 6
	sp.RacksPerDC = 30
	sp.PositionsPerRack = 24
	sp.ProductLines = 12
	sp.PreModernDCs = 3
	return Profile{
		Name:          "small",
		FleetSpec:     sp,
		TargetTickets: 8000,
		WorkloadGate:  true,
		NewInjectors: func() []inject.Injector {
			return []inject.Injector{
				&inject.HDDBatch{
					MeanLog: 1.2, SigmaLog: 1.0, MinSize: 6, MaxCohortFrac: 0.6,
					AgeWeight: inject.DefaultHDDAgeWeight,
				},
				&inject.SASBatch{RatePerYear: 1.5, MeanSize: 12},
				&inject.PDUOutage{RatePerYear: 3, ServersPerPDU: 30, FanFollowProb: 0.07},
				&inject.OperatorMistake{
					When:    time.Date(2016, 8, 12, 9, 30, 0, 0, time.UTC),
					Servers: 120,
				},
				&inject.CorrelatedPairs{RatePer10kServerYears: 85, Weights: inject.TableVIWeights()},
				&inject.SyncRepeat{Groups: 8, MinRepeats: 4, MaxRepeats: 8, ChronicBBUTickets: 150},
			}
		},
	}
}

// Window returns the profile's study window.
func (p Profile) Window() (time.Time, time.Time) {
	return p.FleetSpec.StudyStart, p.FleetSpec.StudyEnd
}

// Build constructs the fleet and a ready-to-run Generator. The hazard
// model is freshly instantiated (calibration mutates it).
func (p Profile) Build(seed int64) (*topo.Fleet, *Generator, error) {
	if p.NewInjectors == nil {
		return nil, nil, fmt.Errorf("fleetgen: profile %q has no injector factory", p.Name)
	}
	fleet, err := topo.Build(p.FleetSpec, seed)
	if err != nil {
		return nil, nil, fmt.Errorf("fleetgen: profile %q: %w", p.Name, err)
	}
	gen := &Generator{
		Fleet:         fleet,
		Hazard:        hazard.Default(),
		Start:         p.FleetSpec.StudyStart,
		End:           p.FleetSpec.StudyEnd,
		Injectors:     p.NewInjectors(),
		TargetTickets: p.TargetTickets,
		WorkloadGate:  p.WorkloadGate,
	}
	return fleet, gen, nil
}
