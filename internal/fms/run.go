package fms

import (
	"math/rand"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// Result bundles everything one simulation run produces.
type Result struct {
	Fleet *topo.Fleet
	Trace *fot.Trace
	Gen   *fleetgen.Report
	FMS   *Stats
}

// Run is the one-call pipeline: build the fleet from the profile, generate
// raw events (injection + calibrated baseline), and push them through the
// FMS. The same (profile, cfg, seed) triple always yields the same trace.
func Run(profile fleetgen.Profile, cfg Config, seed int64) (*Result, error) {
	fleet, gen, err := profile.Build(seed)
	if err != nil {
		return nil, err
	}
	events, genReport, err := gen.Generate(seed + 1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 2))
	trace, stats, err := Build(events, fleet, cfg, gen.Start, gen.End, rng)
	if err != nil {
		return nil, err
	}
	return &Result{Fleet: fleet, Trace: trace, Gen: genReport, FMS: stats}, nil
}
