// Package fms models the paper's Failure Management System (Fig. 1): raw
// component-failure events become failure operation tickets (FOTs). The
// FMS layers on top of the event stream everything the paper attributes
// to the management plane:
//
//   - agent detection latency (syslog listeners / periodic pollers)
//   - categorization: in-warranty failures get repair orders (D_fixing),
//     out-of-warranty hardware is decommissioned or left degraded
//     (D_error), and a small rate of false alarms (D_falsealarm)
//   - the operator response-time model of §VI: heavy-tailed per-class
//     response, slower for fault-tolerant product lines, with periodic
//     review batching
//   - imperfect repair: a fraction of "solved" tickets recur (§III-D)
package fms

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"dcfail/internal/event"
	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// Config parameterizes the FMS.
type Config struct {
	// MaxAgentLatency bounds the uniform detection delay added to
	// non-manual events (pollers run every few minutes).
	MaxAgentLatency time.Duration
	// FalseAlarmRate is the fraction of all tickets that are false
	// alarms (paper Table I: 1.7%).
	FalseAlarmRate float64
	// RepeatProb is the chance that a repaired (D_fixing) ticket's fix
	// was ineffective and the same failure recurs (paper §III-D: >85% of
	// fixed components never repeat; ~4.5% of failed servers do).
	RepeatProb float64
	// EscalateProb is the chance a predictive warning (SMARTFail,
	// DIMMCE, ...) precedes a fatal failure of the same component
	// instance days later — the signal behind the paper's §VII-A remark
	// that the company "designed a tool to predict component failures a
	// couple of days early".
	EscalateProb float64
	// RepeatContinue is the chance each recurrence is followed by yet
	// another one (geometric chain).
	RepeatContinue float64
	// MaxRepeats caps a single organic repeat chain.
	MaxRepeats int
	// Operators is the size of the operator pool.
	Operators int
	// Response is the operator response-time model.
	Response ResponseModel
	// CoverageStart/CoverageEnd model the FMS rollout the paper lists as
	// a study limitation (§VIII: "people incrementally rolled out FMS
	// during the four years"): the fraction of hosts monitored grows
	// linearly from CoverageStart to CoverageEnd across the window, and
	// failures on unmonitored hosts produce no ticket. Both zero means
	// full coverage (the default, keeping calibrated profiles exact).
	CoverageStart, CoverageEnd float64
}

// DefaultConfig returns the paper-profile FMS configuration.
func DefaultConfig() Config {
	return Config{
		MaxAgentLatency: 10 * time.Minute,
		FalseAlarmRate:  0.017,
		RepeatProb:      0.02,
		EscalateProb:    0.12,
		RepeatContinue:  0.45,
		MaxRepeats:      6,
		Operators:       40,
		Response:        DefaultResponseModel(),
	}
}

// Validate reports config violations.
func (c Config) Validate() error {
	switch {
	case c.MaxAgentLatency < 0:
		return fmt.Errorf("fms: negative agent latency")
	case c.FalseAlarmRate < 0 || c.FalseAlarmRate >= 1:
		return fmt.Errorf("fms: false alarm rate %g outside [0, 1)", c.FalseAlarmRate)
	case c.RepeatProb < 0 || c.RepeatProb > 1:
		return fmt.Errorf("fms: repeat probability %g outside [0, 1]", c.RepeatProb)
	case c.EscalateProb < 0 || c.EscalateProb > 1:
		return fmt.Errorf("fms: escalation probability %g outside [0, 1]", c.EscalateProb)
	case c.RepeatContinue < 0 || c.RepeatContinue >= 1:
		return fmt.Errorf("fms: repeat continuation %g outside [0, 1)", c.RepeatContinue)
	case c.MaxRepeats < 0:
		return fmt.Errorf("fms: negative repeat cap")
	case c.Operators < 1:
		return fmt.Errorf("fms: need at least one operator")
	case c.CoverageStart < 0 || c.CoverageStart > 1 ||
		c.CoverageEnd < 0 || c.CoverageEnd > 1:
		return fmt.Errorf("fms: coverage fractions outside [0, 1]")
	case c.CoverageEnd < c.CoverageStart:
		return fmt.Errorf("fms: coverage cannot shrink over the window")
	}
	return c.Response.Validate()
}

// monitored reports whether a host is covered by FMS at ts. Coverage
// rolls out host-by-host: a host becomes monitored once the ramp passes
// its (stable, id-derived) onboarding percentile, so early-window events
// on late-onboarded hosts are invisible — exactly the paper's limitation.
func (c Config) monitored(hostID uint64, ts time.Time, start, end time.Time) bool {
	if c.CoverageStart == 0 && c.CoverageEnd == 0 {
		return true
	}
	frac := float64(ts.Sub(start)) / float64(end.Sub(start))
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	coverage := c.CoverageStart + (c.CoverageEnd-c.CoverageStart)*frac
	// Stable per-host percentile in [0, 1) from a cheap integer hash.
	h := hostID * 0x9E3779B97F4A7C15 >> 11
	percentile := float64(h%100000) / 100000
	return percentile < coverage
}

// Stats is ground-truth bookkeeping about one FMS run.
type Stats struct {
	Tickets       int
	FalseAlarms   int
	OrganicRepeat int // tickets added by the imperfect-repair model
	Escalations   int // fatal failures preceded by a predictive warning
	// UnmonitoredDropped counts failures that produced no ticket because
	// the host was not yet covered by the FMS rollout.
	UnmonitoredDropped int
	ByCategory         map[fot.Category]int
}

// Build converts raw events into the final ticket trace. The fleet
// supplies product-line metadata for the response model; the window
// [start, end) bounds repeat recurrences and false-alarm placement.
func Build(events []event.Event, fleet *topo.Fleet, cfg Config, start, end time.Time, rng *rand.Rand) (*fot.Trace, *Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if !end.After(start) {
		return nil, nil, fmt.Errorf("fms: empty window")
	}
	if fleet == nil {
		return nil, nil, fmt.Errorf("fms: nil fleet")
	}
	st := &Stats{ByCategory: make(map[fot.Category]int, 3)}
	sampler := newResponseSampler(cfg.Response, rng)
	// A line is "small" when it owns under 0.04% of the fleet (≈50
	// servers at paper scale, i.e. fewer than ~100 failures over four
	// years) — too small for a dedicated operator rotation (§VI-C).
	smallCut := fleet.NumServers() / 2500
	info := make(map[string]LineInfo, len(fleet.Lines))
	for _, pl := range fleet.Lines {
		info[pl.Name] = LineInfo{
			Tier:  pl.Tolerance.String(),
			Small: len(fleet.ServersByLine(pl.Name)) <= smallCut,
		}
	}
	sampler.SetLineInfo(func(line string) LineInfo {
		if li, ok := info[line]; ok {
			return li
		}
		return LineInfo{Tier: "medium"}
	})

	all := make([]event.Event, 0, len(events)+len(events)/4)
	dropped := 0
	for _, e := range events {
		if !cfg.monitored(e.Server.HostID, e.Time, start, end) {
			dropped++
			continue
		}
		all = append(all, e)
	}
	st.UnmonitoredDropped = dropped
	kept := len(all)
	all = append(all, organicRepeats(all, cfg, end, rng)...)
	st.OrganicRepeat = len(all) - kept
	all = append(all, escalations(all, cfg, end, rng)...)
	st.Escalations = len(all) - kept - st.OrganicRepeat
	all = append(all, falseAlarmEvents(all, cfg, start, end, rng)...)
	event.SortByTime(all)

	tickets := make([]fot.Ticket, 0, len(all))
	for _, e := range all {
		t := makeTicket(e, cfg, sampler, end, rng)
		tickets = append(tickets, t)
		st.ByCategory[t.Category]++
	}
	// Agent latency jitters detection times, so re-sort on the final
	// timestamps before assigning sequential ticket ids.
	sort.SliceStable(tickets, func(i, j int) bool {
		return tickets[i].Time.Before(tickets[j].Time)
	})
	for i := range tickets {
		tickets[i].ID = uint64(i + 1)
	}
	st.Tickets = len(tickets)
	st.FalseAlarms = st.ByCategory[fot.FalseAlarm]
	tr := fot.NewTrace(tickets)
	if err := tr.Validate(); err != nil {
		return nil, nil, fmt.Errorf("fms: produced invalid trace: %w", err)
	}
	return tr, st, nil
}

// falseAlarmMarker tags pseudo-events that must become D_falsealarm
// tickets. It abuses the BatchID sign-free space deliberately: real batch
// ids are sequential and never reach this sentinel.
const falseAlarmMarker = ^uint64(0)

func makeTicket(e event.Event, cfg Config, sampler *responseSampler, end time.Time, rng *rand.Rand) fot.Ticket {
	s := e.Server
	detect := e.Time
	// Misc tickets are manual and carry no agent latency. Syslog-detected
	// classes surface within seconds (which preserves the second-level
	// synchronization of Table VIII twins); polled classes wait up to a
	// poll interval.
	switch {
	case e.Component == fot.Misc:
	case fot.IsSyslogDetected(e.Component):
		detect = detect.Add(time.Duration(rng.Int63n(int64(30 * time.Second))))
	case cfg.MaxAgentLatency > 0:
		detect = detect.Add(time.Duration(rng.Int63n(int64(cfg.MaxAgentLatency))))
	}
	if detect.After(end) {
		detect = end
	}
	t := fot.Ticket{
		HostID:      s.HostID,
		Hostname:    s.Hostname,
		IDC:         s.IDC,
		Rack:        s.Rack,
		Position:    s.Position,
		Device:      e.Component,
		Slot:        e.Slot,
		Type:        e.Type,
		Time:        detect,
		ProductLine: s.ProductLine,
		DeployTime:  s.DeployTime,
		Model:       s.Model,
	}
	if ft, ok := fot.LookupType(e.Component, e.Type); ok {
		t.Detail = ft.Explanation
	}

	switch {
	case e.BatchID == falseAlarmMarker:
		t.Category = fot.FalseAlarm
		t.Action = fot.ActionMarkFalseAlarm
		t.Operator = operatorID(rng, cfg.Operators)
		t.OpTime = detect.Add(sampler.sample(e.Component, s.ProductLine, falseAlarmClass))
	case !s.InWarranty(detect):
		// Out of warranty: no repair (Table I's D_error, 28%).
		t.Category = fot.Error
		if fot.IsFatalType(e.Component, e.Type) {
			t.Action = fot.ActionDecommission
		} else {
			t.Action = fot.ActionIgnore
		}
	default:
		t.Category = fot.Fixing
		t.Action = fot.ActionRepairOrder
		t.Operator = operatorID(rng, cfg.Operators)
		t.OpTime = detect.Add(sampler.sample(e.Component, s.ProductLine, fixingClass))
	}
	return t
}

// organicRepeats models ineffective repairs: some D_fixing-bound events
// spawn recurrence chains of the same failure on the same server.
// Injected repeat groups (CauseRepeat) already are chains and are skipped.
func organicRepeats(events []event.Event, cfg Config, end time.Time, rng *rand.Rand) []event.Event {
	if cfg.RepeatProb == 0 {
		return nil
	}
	var out []event.Event
	for _, e := range events {
		if e.Cause == event.CauseRepeat {
			continue
		}
		// Only repaired components can repeat "after being solved";
		// out-of-warranty boxes are decommissioned or left as-is.
		if !e.Server.InWarranty(e.Time) {
			continue
		}
		if rng.Float64() >= cfg.RepeatProb {
			continue
		}
		ts := e.Time
		for r := 0; r < cfg.MaxRepeats; r++ {
			gapHours := math.Exp(math.Log(6*24) + 1.0*rng.NormFloat64())
			ts = ts.Add(time.Duration(gapHours * float64(time.Hour)))
			if ts.After(end) {
				break
			}
			repeat := e
			repeat.Time = ts
			repeat.Cause = event.CauseRepeat
			repeat.BatchID = 0
			out = append(out, repeat)
			if rng.Float64() >= cfg.RepeatContinue {
				break
			}
		}
	}
	return out
}

// escalations models warnings coming true: a predictive failure type
// (SMARTFail, DIMMCE, ...) escalates to a fatal failure of the same
// component instance a few days later. This is the signal the §VII-B
// warning-based failure predictor (internal/mine) evaluates against.
func escalations(events []event.Event, cfg Config, end time.Time, rng *rand.Rand) []event.Event {
	if cfg.EscalateProb == 0 {
		return nil
	}
	var out []event.Event
	for _, e := range events {
		if fot.IsFatalType(e.Component, e.Type) || e.Component == fot.Misc {
			continue
		}
		if rng.Float64() >= cfg.EscalateProb {
			continue
		}
		fatalType, ok := fot.SampleFatalType(rng, e.Component)
		if !ok {
			continue
		}
		// "A couple of days early": lognormal lead time, median ≈3 days.
		gapHours := math.Exp(math.Log(3*24) + 0.6*rng.NormFloat64())
		ts := e.Time.Add(time.Duration(gapHours * float64(time.Hour)))
		if ts.After(end) {
			continue
		}
		fatal := e
		fatal.Type = fatalType
		fatal.Time = ts
		fatal.Cause = event.CauseBaseline
		fatal.BatchID = 0
		out = append(out, fatal)
	}
	return out
}

// falseAlarmEvents fabricates detector mistakes: copies of real events'
// (server, class) with fresh timestamps, tagged with falseAlarmMarker.
func falseAlarmEvents(events []event.Event, cfg Config, start, end time.Time, rng *rand.Rand) []event.Event {
	if cfg.FalseAlarmRate == 0 || len(events) == 0 {
		return nil
	}
	// rate = alarms / (alarms + failures)  =>  alarms = failures*r/(1-r).
	n := int(math.Round(float64(len(events)) * cfg.FalseAlarmRate / (1 - cfg.FalseAlarmRate)))
	out := make([]event.Event, 0, n)
	span := end.Sub(start)
	for i := 0; i < n; i++ {
		src := events[rng.Intn(len(events))]
		ts := start.Add(time.Duration(rng.Int63n(int64(span))))
		if ts.Before(src.Server.DeployTime) {
			ts = src.Server.DeployTime.Add(time.Duration(rng.Intn(86400)) * time.Second)
		}
		if ts.After(end) {
			continue
		}
		out = append(out, event.Event{
			Server:    src.Server,
			Component: src.Component,
			Type:      src.Type,
			Time:      ts,
			Cause:     src.Cause,
			BatchID:   falseAlarmMarker,
		})
	}
	return out
}

func operatorID(rng *rand.Rand, pool int) string {
	return fmt.Sprintf("op-%02d", rng.Intn(pool)+1)
}
