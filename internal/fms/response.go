package fms

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dcfail/internal/fot"
)

// rtClass distinguishes the two ticket populations with recorded operator
// responses (paper Fig. 9 plots them separately).
type rtClass int

const (
	fixingClass rtClass = iota
	falseAlarmClass
)

// ResponseModel is the §VI operator response-time model. Response time is
// lognormal per component class, scaled by the product line's software
// fault-tolerance tier (resilient lines respond slower), by a per-line
// "diligence" factor (some small lines let tickets sit for months), and
// optionally quantized to periodic review days for batch-processing lines.
type ResponseModel struct {
	// MedianDays is the per-class RT median for D_fixing tickets
	// (Fig. 10: SSD and misc in hours; HDD, fan, memory 7–18 days).
	MedianDays map[fot.Component]float64
	// Sigma is the lognormal shape, shared across classes; ≈1.9 puts
	// ~10% of responses beyond 140 days as Fig. 9 reports.
	Sigma float64
	// ToleranceFactor scales RT by the line's fault-tolerance tier.
	ToleranceFactor map[string]float64
	// LineSigma is the dispersion of the per-line diligence lognormal
	// (std-dev across lines of ~30 days per §VI-C).
	LineSigma float64
	// DiligenceCap bounds a single line's diligence multiplier so one
	// unlucky huge line cannot dominate the fleet-wide MTTR.
	DiligenceCap float64
	// SmallLineFactor, SmallLineSigma and SmallLineCap replace the
	// diligence model for lines too small to staff an operator rotation
	// — the §VI-C finding that 21% of lines with <100 failures have
	// median RT over 100 days.
	SmallLineFactor float64
	SmallLineSigma  float64
	SmallLineCap    float64
	// FalseAlarmFactor scales medians for D_falsealarm responses.
	FalseAlarmFactor float64
	// ReviewEvery batches responses for high-tolerance lines: the
	// operator only looks at the pool periodically (§VI: "operators only
	// periodically review the failure records ... and process them in
	// batches"). Zero disables batching.
	ReviewEvery time.Duration
	// ReviewProb is the chance a high-tolerance ticket waits for review.
	ReviewProb float64
}

// DefaultResponseModel returns the paper-calibrated model.
func DefaultResponseModel() ResponseModel {
	return ResponseModel{
		MedianDays: map[fot.Component]float64{
			fot.HDD:          7.5,
			fot.Fan:          14.0,
			fot.Memory:       10.0,
			fot.Motherboard:  7.0,
			fot.HDDBackboard: 7.0,
			fot.Power:        6.0,
			fot.RAIDCard:     5.0,
			fot.CPU:          5.0,
			fot.FlashCard:    4.0,
			fot.SSD:          0.25,
			fot.Misc:         0.17,
		},
		Sigma: 1.7,
		ToleranceFactor: map[string]float64{
			"low":    0.25,
			"medium": 1.0,
			"high":   2.5,
		},
		LineSigma:        0.9,
		DiligenceCap:     3,
		SmallLineFactor:  2.0,
		SmallLineSigma:   2.0,
		SmallLineCap:     25,
		FalseAlarmFactor: 0.45,
		ReviewEvery:      14 * 24 * time.Hour,
		ReviewProb:       0.5,
	}
}

// Validate reports model violations.
func (m ResponseModel) Validate() error {
	for _, c := range fot.Components() {
		if m.MedianDays[c] <= 0 {
			return fmt.Errorf("fms: response median for %v missing or non-positive", c)
		}
	}
	switch {
	case m.Sigma <= 0:
		return fmt.Errorf("fms: response sigma must be positive")
	case m.LineSigma < 0 || m.SmallLineSigma < 0:
		return fmt.Errorf("fms: line sigma must be non-negative")
	case m.DiligenceCap <= 0:
		return fmt.Errorf("fms: diligence cap must be positive")
	case m.SmallLineFactor <= 0:
		return fmt.Errorf("fms: small-line factor must be positive")
	case m.FalseAlarmFactor <= 0:
		return fmt.Errorf("fms: false-alarm factor must be positive")
	case m.ReviewEvery < 0:
		return fmt.Errorf("fms: negative review period")
	case m.ReviewProb < 0 || m.ReviewProb > 1:
		return fmt.Errorf("fms: review probability outside [0, 1]")
	}
	for tier, f := range m.ToleranceFactor {
		if f <= 0 {
			return fmt.Errorf("fms: tolerance factor for %q must be positive", tier)
		}
	}
	return nil
}

// LineInfo describes the product-line attributes the response model uses.
type LineInfo struct {
	// Tier is the software fault-tolerance tier name ("low"/"medium"/
	// "high").
	Tier string
	// Small marks lines too small to staff an operator rotation.
	Small bool
}

// responseSampler draws RTs, memoizing per-line diligence factors.
type responseSampler struct {
	model ResponseModel
	rng   *rand.Rand
	// line factors: tolerance tier × diligence, resolved lazily.
	lineFactor map[string]float64
	lineInfo   func(line string) LineInfo
}

func newResponseSampler(model ResponseModel, rng *rand.Rand) *responseSampler {
	return &responseSampler{
		model:      model,
		rng:        rng,
		lineFactor: make(map[string]float64),
	}
}

// SetLineInfo installs a product-line attribute resolver. Without one,
// every line is a non-small "medium".
func (s *responseSampler) SetLineInfo(fn func(line string) LineInfo) { s.lineInfo = fn }

func (s *responseSampler) factorFor(line string) float64 {
	if f, ok := s.lineFactor[line]; ok {
		return f
	}
	info := LineInfo{Tier: "medium"}
	if s.lineInfo != nil {
		info = s.lineInfo(line)
	}
	tf, ok := s.model.ToleranceFactor[info.Tier]
	if !ok {
		tf = 1
	}
	sigma := s.model.LineSigma
	base := 1.0
	cap := s.model.DiligenceCap
	if info.Small {
		sigma = s.model.SmallLineSigma
		base = s.model.SmallLineFactor
		cap = s.model.SmallLineCap
	}
	diligence := base * math.Exp(sigma*s.rng.NormFloat64())
	if cap > 0 && diligence > cap {
		diligence = cap
	}
	f := tf * diligence
	s.lineFactor[line] = f
	return f
}

// sample draws one response time.
func (s *responseSampler) sample(c fot.Component, line string, class rtClass) time.Duration {
	median := s.model.MedianDays[c]
	if median <= 0 {
		median = 5
	}
	if class == falseAlarmClass {
		median *= s.model.FalseAlarmFactor
	}
	hours := math.Exp(math.Log(median*24)+s.model.Sigma*s.rng.NormFloat64()) * s.factorFor(line)
	rt := time.Duration(hours * float64(time.Hour))
	if rt < time.Minute {
		rt = time.Minute
	}
	// Review batching: slow lines let tickets wait for the next sweep.
	if class == fixingClass && s.model.ReviewEvery > 0 &&
		s.factorFor(line) > 2 && s.rng.Float64() < s.model.ReviewProb {
		period := s.model.ReviewEvery
		rt = rt.Truncate(period) + period
	}
	return rt
}
