package fms

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fot"
)

// runSmall is the shared small-profile pipeline for FMS tests.
func runSmall(t *testing.T, seed int64) *Result {
	t.Helper()
	res, err := Run(fleetgen.SmallProfile(), DefaultConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesValidTrace(t *testing.T) {
	res := runSmall(t, 1)
	if res.Trace.Len() == 0 {
		t.Fatal("empty trace")
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// IDs sequential in time order.
	for i, tk := range res.Trace.Tickets {
		if tk.ID != uint64(i+1) {
			t.Fatalf("ticket %d has id %d", i, tk.ID)
		}
		if i > 0 && tk.Time.Before(res.Trace.Tickets[i-1].Time) {
			t.Fatal("trace not time-sorted")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runSmall(t, 9)
	b := runSmall(t, 9)
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Trace.Len(), b.Trace.Len())
	}
	for i := range a.Trace.Tickets {
		x, y := a.Trace.Tickets[i], b.Trace.Tickets[i]
		if !x.Time.Equal(y.Time) || x.HostID != y.HostID || x.Type != y.Type ||
			!x.OpTime.Equal(y.OpTime) || x.Category != y.Category {
			t.Fatalf("ticket %d differs across equal-seed runs", i)
		}
	}
}

func TestCategoryMix(t *testing.T) {
	res := runSmall(t, 2)
	counts := res.Trace.CountByCategory()
	total := float64(res.Trace.Len())
	fixing := float64(counts[fot.Fixing]) / total
	errs := float64(counts[fot.Error]) / total
	alarms := float64(counts[fot.FalseAlarm]) / total
	// Paper Table I: 70.3 / 28.0 / 1.7. The warranty-driven D_error share
	// depends on fleet age mix; allow generous bands but require the
	// ordering and rough magnitudes.
	if fixing < 0.50 || fixing > 0.85 {
		t.Errorf("fixing share = %.3f, want ≈0.70", fixing)
	}
	if errs < 0.12 || errs > 0.45 {
		t.Errorf("error share = %.3f, want ≈0.28", errs)
	}
	if alarms < 0.008 || alarms > 0.03 {
		t.Errorf("false alarm share = %.4f, want ≈0.017", alarms)
	}
}

func TestCategorySemantics(t *testing.T) {
	res := runSmall(t, 3)
	for _, tk := range res.Trace.Tickets {
		switch tk.Category {
		case fot.Fixing:
			if tk.Action != fot.ActionRepairOrder {
				t.Fatalf("fixing ticket with action %v", tk.Action)
			}
			if tk.OpTime.IsZero() || tk.Operator == "" {
				t.Fatal("fixing ticket missing operator response")
			}
		case fot.Error:
			if !tk.OpTime.IsZero() {
				t.Fatal("out-of-warranty ticket should have no op time")
			}
			if tk.Action != fot.ActionDecommission && tk.Action != fot.ActionIgnore {
				t.Fatalf("error ticket with action %v", tk.Action)
			}
			// Must actually be out of warranty.
			warrantyEnd := tk.DeployTime.AddDate(3, 0, 0)
			if tk.Time.Before(warrantyEnd) {
				t.Fatal("in-warranty ticket categorized as D_error")
			}
		case fot.FalseAlarm:
			if tk.Action != fot.ActionMarkFalseAlarm || tk.OpTime.IsZero() {
				t.Fatal("false alarm missing closure")
			}
		}
	}
}

func TestFatalErrorsDecommission(t *testing.T) {
	res := runSmall(t, 4)
	decommissions, ignores := 0, 0
	for _, tk := range res.Trace.ByCategory(fot.Error).Tickets {
		fatal := fot.IsFatalType(tk.Device, tk.Type)
		switch tk.Action {
		case fot.ActionDecommission:
			decommissions++
			if !fatal {
				t.Fatalf("non-fatal %s decommissioned", tk.Type)
			}
		case fot.ActionIgnore:
			ignores++
			if fatal {
				t.Fatalf("fatal %s ignored", tk.Type)
			}
		}
	}
	if decommissions == 0 || ignores == 0 {
		t.Errorf("want both decommissions (%d) and ignores (%d)", decommissions, ignores)
	}
}

func TestOrganicRepeats(t *testing.T) {
	res := runSmall(t, 5)
	if res.FMS.OrganicRepeat == 0 {
		t.Fatal("no organic repeats generated")
	}
	// Repeats are same host+component+type, later in time: mine the trace
	// the way the paper defines repeats and require a detectable cohort.
	type key struct {
		host uint64
		dev  fot.Component
		slot string
		typ  string
	}
	counts := map[key]int{}
	for _, tk := range res.Trace.Failures().Tickets {
		counts[key{tk.HostID, tk.Device, tk.Slot, tk.Type}]++
	}
	repeated := 0
	for _, n := range counts {
		if n > 1 {
			repeated++
		}
	}
	if repeated < 20 {
		t.Errorf("only %d repeated (host, device, type) groups", repeated)
	}
}

func TestResponseTimeShape(t *testing.T) {
	res := runSmall(t, 6)
	var rtDaysAll []float64
	rtByClass := map[fot.Component][]float64{}
	for _, tk := range res.Trace.ByCategory(fot.Fixing).Tickets {
		rt, ok := tk.ResponseTime()
		if !ok {
			t.Fatal("fixing ticket without RT")
		}
		days := rt.Hours() / 24
		rtDaysAll = append(rtDaysAll, days)
		rtByClass[tk.Device] = append(rtByClass[tk.Device], days)
	}
	med := median(rtDaysAll)
	if med < 1 || med > 25 {
		t.Errorf("overall median RT = %.1f days, want single-digit-to-teens", med)
	}
	mean := 0.0
	for _, d := range rtDaysAll {
		mean += d
	}
	mean /= float64(len(rtDaysAll))
	if mean < 2*med {
		t.Errorf("mean RT %.1f not heavy-tailed vs median %.1f", mean, med)
	}
	// Fig. 10 ordering: SSD and misc respond in hours, HDD in days.
	if ssd := median(rtByClass[fot.SSD]); ssd > 3 {
		t.Errorf("SSD median RT = %.2f days, want hours", ssd)
	}
	if msc := median(rtByClass[fot.Misc]); msc > 3 {
		t.Errorf("misc median RT = %.2f days, want hours", msc)
	}
	if hdd := median(rtByClass[fot.HDD]); hdd < 2 {
		t.Errorf("HDD median RT = %.2f days, want days-to-weeks", hdd)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MaxAgentLatency = -time.Minute },
		func(c *Config) { c.FalseAlarmRate = -0.1 },
		func(c *Config) { c.FalseAlarmRate = 1 },
		func(c *Config) { c.RepeatProb = 1.5 },
		func(c *Config) { c.RepeatContinue = 1 },
		func(c *Config) { c.MaxRepeats = -1 },
		func(c *Config) { c.Operators = 0 },
		func(c *Config) { c.Response.Sigma = 0 },
		func(c *Config) { c.Response.MedianDays = nil },
		func(c *Config) { c.Response.FalseAlarmFactor = 0 },
		func(c *Config) { c.Response.ReviewProb = 2 },
		func(c *Config) { c.Response.ToleranceFactor = map[string]float64{"high": -1} },
	}
	for i, mutate := range cases(bad) {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// cases is an identity helper that keeps gofmt from aligning the huge
// literal above awkwardly.
func cases(fs []func(*Config)) []func(*Config) { return fs }

func TestBuildRejectsBadInputs(t *testing.T) {
	res := runSmall(t, 7)
	rng := rand.New(rand.NewSource(1))
	start, end := fleetgen.SmallProfile().Window()
	if _, _, err := Build(nil, nil, DefaultConfig(), start, end, rng); err == nil {
		t.Error("nil fleet accepted")
	}
	if _, _, err := Build(nil, res.Fleet, DefaultConfig(), end, start, rng); err == nil {
		t.Error("inverted window accepted")
	}
	bad := DefaultConfig()
	bad.Operators = 0
	if _, _, err := Build(nil, res.Fleet, bad, start, end, rng); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestNoRepeatsNoFalseAlarmsConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RepeatProb = 0
	cfg.FalseAlarmRate = 0
	res, err := Run(fleetgen.SmallProfile(), cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.FMS.OrganicRepeat != 0 {
		t.Error("repeats despite RepeatProb=0")
	}
	if res.FMS.FalseAlarms != 0 {
		t.Error("false alarms despite rate 0")
	}
	if got := res.Trace.ByCategory(fot.FalseAlarm).Len(); got != 0 {
		t.Errorf("%d false-alarm tickets", got)
	}
}

func TestHighToleranceLinesRespondSlower(t *testing.T) {
	res := runSmall(t, 10)
	tierOf := map[string]string{}
	for _, pl := range res.Fleet.Lines {
		tierOf[pl.Name] = pl.Tolerance.String()
	}
	var high, low []float64
	for _, tk := range res.Trace.ByCategory(fot.Fixing).ByComponent(fot.HDD).Tickets {
		rt, ok := tk.ResponseTime()
		if !ok {
			continue
		}
		switch tierOf[tk.ProductLine] {
		case "high":
			high = append(high, rt.Hours())
		case "low":
			low = append(low, rt.Hours())
		}
	}
	if len(high) < 10 || len(low) < 10 {
		t.Skipf("not enough tickets to compare tiers: %d vs %d", len(high), len(low))
	}
	if !(median(high) > 2*median(low)) {
		t.Errorf("high-tolerance median %.1fh not ≫ low-tolerance %.1fh",
			median(high), median(low))
	}
}

func TestDetectionLatencySmall(t *testing.T) {
	// Agent latency must not push detection outside the study window.
	res := runSmall(t, 11)
	_, end := fleetgen.SmallProfile().Window()
	for _, tk := range res.Trace.Tickets {
		if tk.Time.After(end) {
			t.Fatalf("ticket %d detected after window end", tk.ID)
		}
	}
}

func TestCoverageRamp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoverageStart = 0.5
	cfg.CoverageEnd = 1.0
	partial, err := Run(fleetgen.SmallProfile(), cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(fleetgen.SmallProfile(), DefaultConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	if partial.FMS.UnmonitoredDropped == 0 {
		t.Fatal("ramp dropped nothing")
	}
	if partial.Trace.Len() >= full.Trace.Len() {
		t.Errorf("partial coverage trace (%d) not smaller than full (%d)",
			partial.Trace.Len(), full.Trace.Len())
	}
	// The rollout starves the early window hardest: the first year's
	// share of tickets must shrink relative to full coverage.
	firstYearShare := func(r *Result) float64 {
		lo, hi, _ := r.Trace.Span()
		_ = hi
		early := r.Trace.Between(lo, lo.AddDate(1, 0, 0)).Len()
		return float64(early) / float64(r.Trace.Len())
	}
	if !(firstYearShare(partial) < firstYearShare(full)) {
		t.Errorf("first-year share did not shrink: %.3f vs %.3f",
			firstYearShare(partial), firstYearShare(full))
	}
}

func TestCoverageValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoverageStart = 0.8
	cfg.CoverageEnd = 0.5
	if err := cfg.Validate(); err == nil {
		t.Error("shrinking coverage accepted")
	}
	cfg = DefaultConfig()
	cfg.CoverageStart = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative coverage accepted")
	}
	cfg = DefaultConfig()
	cfg.CoverageEnd = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("coverage >1 accepted")
	}
}
