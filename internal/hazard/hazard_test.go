package hazard

import (
	"math"
	"testing"
	"testing/quick"

	"dcfail/internal/fot"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCurveAtClamps(t *testing.T) {
	c := Curve{1, 2, 3}
	cases := []struct {
		m    int
		want float64
	}{
		{-5, 1}, {0, 1}, {1, 2}, {2, 3}, {99, 3},
	}
	for _, cs := range cases {
		if got := c.At(cs.m); got != cs.want {
			t.Errorf("At(%d) = %g, want %g", cs.m, got, cs.want)
		}
	}
	if got := (Curve{}).At(5); got != 1 {
		t.Errorf("empty curve At = %g, want 1", got)
	}
}

func TestCurveMass(t *testing.T) {
	c := Curve{2, 2, 1, 1}
	if got := c.Mass(0, 2, 4); !close(got, 4.0/6) {
		t.Errorf("Mass = %g", got)
	}
	// Horizon beyond curve length extends the last value.
	if got := c.Mass(0, 4, 8); !close(got, 6.0/10) {
		t.Errorf("extended Mass = %g", got)
	}
	if (Curve{1}).Mass(2, 1, 4) != 0 || (Curve{1}).Mass(-1, 1, 4) != 0 {
		t.Error("invalid windows should give 0")
	}
	if (Curve{0, 0}).Mass(0, 1, 2) != 0 {
		t.Error("zero curve should give 0")
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestRAIDInfantMortality checks the Fig. 6f calibration: ≈47.4% of RAID
// card hazard mass within the first six months of a 50-month life.
func TestRAIDInfantMortality(t *testing.T) {
	c := Default().CurveOf(fot.RAIDCard)
	got := c.Mass(0, 6, 50)
	if got < 0.42 || got < 0.40 || got > 0.55 {
		t.Errorf("RAID first-6-month mass = %.3f, want ≈0.474", got)
	}
}

// TestHDDShape checks Fig. 6a: ~20% infant bump and a post-month-6 ramp.
func TestHDDShape(t *testing.T) {
	c := Default().CurveOf(fot.HDD)
	early := (c.At(0) + c.At(1) + c.At(2)) / 3
	floor := (c.At(3) + c.At(4) + c.At(5)) / 3
	bump := early/floor - 1
	if bump < 0.15 || bump > 0.25 {
		t.Errorf("HDD infant bump = %.3f, want ≈0.20", bump)
	}
	if !(c.At(24) > c.At(8)) || !(c.At(47) > c.At(24)) {
		t.Error("HDD wear ramp not increasing")
	}
	if c.At(6) <= c.At(5)*0.99 {
		t.Error("ramp should start after month 6")
	}
}

// TestFlashShape checks Fig. 6e: ≈1.4% of mass in year one, steep rise after.
func TestFlashShape(t *testing.T) {
	c := Default().CurveOf(fot.FlashCard)
	first := c.Mass(0, 12, 48)
	if first > 0.03 {
		t.Errorf("flash year-one mass = %.3f, want ≈0.014", first)
	}
	if !(c.At(36) > 5*c.At(12)) {
		t.Error("flash wear-out not steep")
	}
}

// TestMotherboardShape checks Fig. 6c: most mass after year three.
func TestMotherboardShape(t *testing.T) {
	c := Default().CurveOf(fot.Motherboard)
	late := c.Mass(36, 48, 48)
	if late < 0.60 || late > 0.85 {
		t.Errorf("motherboard 3y+ mass = %.3f, want ≈0.72", late)
	}
}

// TestMiscShape checks Fig. 6i: first-month spike then stability.
func TestMiscShape(t *testing.T) {
	c := Default().CurveOf(fot.Misc)
	if !(c.At(0) > 10*c.At(1)) {
		t.Error("misc deployment spike missing")
	}
	for m := 1; m < 47; m++ {
		if math.Abs(c.At(m)-c.At(m+1)) > 0.01 {
			t.Errorf("misc not stable at month %d", m)
		}
	}
}

// TestMechanicalWear checks fans/PSUs (Fig. 6g/h): quiet year one, then
// steadily increasing.
func TestMechanicalWear(t *testing.T) {
	m := Default()
	for _, cls := range []fot.Component{fot.Fan, fot.Power} {
		c := m.CurveOf(cls)
		if !(c.At(0) < 0.6) {
			t.Errorf("%v: early rate %g too high", cls, c.At(0))
		}
		prev := c.At(12)
		for mth := 13; mth < 48; mth++ {
			if c.At(mth) < prev-1e-9 {
				t.Errorf("%v: not monotone at %d", cls, mth)
				break
			}
			prev = c.At(mth)
		}
	}
}

func TestMonthlyRatePositive(t *testing.T) {
	m := Default()
	for _, c := range fot.Components() {
		for mth := 0; mth < 60; mth++ {
			if r := m.MonthlyRate(c, mth); !(r > 0) {
				t.Fatalf("%v month %d: rate %g", c, mth, r)
			}
		}
	}
}

func TestMonthlyRateMatchesBase(t *testing.T) {
	m := Default()
	// A flat-curve class: monthly rate × 12 == base AFR.
	r := m.MonthlyRate(fot.HDDBackboard, 10)
	if !close(r*12, m.BaseAFR(fot.HDDBackboard)) {
		t.Errorf("backboard rate %g vs AFR %g", r*12, m.BaseAFR(fot.HDDBackboard))
	}
}

func TestSetBaseAFR(t *testing.T) {
	m := Default()
	m.SetBaseAFR(fot.CPU, 0.5)
	if m.BaseAFR(fot.CPU) != 0.5 {
		t.Error("SetBaseAFR did not stick")
	}
	m.SetBaseAFR(fot.CPU, 0)
	if err := m.Validate(); err == nil {
		t.Error("zero base rate should invalidate")
	}
}

func TestTableIIRelativeRates(t *testing.T) {
	// With the default inventory, expected failure shares should order
	// like Table II: HDD ≫ memory > power > raid > flash > motherboard >
	// ssd > fan > backboard > cpu. (Misc is deployment-driven and
	// excluded from this steady-state check.)
	m := Default()
	inv := map[fot.Component]float64{
		fot.HDD: 13, fot.Memory: 14, fot.Power: 2, fot.RAIDCard: 1,
		fot.FlashCard: 0.5, fot.Motherboard: 1, fot.SSD: 1, fot.Fan: 4,
		fot.HDDBackboard: 1, fot.CPU: 2,
	}
	share := func(c fot.Component) float64 { return inv[c] * m.BaseAFR(c) }
	order := []fot.Component{
		fot.HDD, fot.Memory, fot.Power, fot.RAIDCard, fot.FlashCard,
		fot.Motherboard, fot.SSD, fot.Fan, fot.HDDBackboard, fot.CPU,
	}
	// HDD dominance among non-misc classes: Table II gives
	// 81.84 / (100 − 10.20 misc) ≈ 91%.
	total := 0.0
	for _, c := range order {
		total += share(c)
	}
	if frac := share(fot.HDD) / total; frac < 0.85 || frac > 0.95 {
		t.Errorf("HDD steady-state share = %.3f, want ≈0.91", frac)
	}
	// Memory should exceed power; power exceed raid is not in Table II
	// order (raid 1.23 < power 1.74), check the published order instead.
	if !(share(fot.Memory) > share(fot.Power)) {
		t.Error("memory share should exceed power")
	}
	if !(share(fot.Power) > share(fot.RAIDCard)) {
		t.Error("power share should exceed raid")
	}
	if !(share(fot.CPU) < share(fot.HDDBackboard)) {
		t.Error("cpu should be rarest")
	}
}

func TestBathtubShape(t *testing.T) {
	b := Bathtub{
		Infant: 1, InfantK: 0.5, Floor: 0.05, Wear: 0.2, WearK: 3, ScaleMon: 24,
	}
	if !(b.At(0.5) > b.At(6)) {
		t.Error("bathtub should fall during infancy")
	}
	if !(b.At(60) > b.At(12)) {
		t.Error("bathtub should rise in wear-out")
	}
	if b.At(0) <= 0 || math.IsInf(b.At(0), 1) {
		t.Error("At(0) should be finite positive")
	}
	// Property: hazard is always positive.
	f := func(raw float64) bool {
		mth := math.Mod(math.Abs(raw), 120)
		return b.At(mth) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
