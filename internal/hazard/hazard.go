// Package hazard models per-component failure rates over the component's
// service life. It encodes the Fig. 6 narrative of the paper: RAID cards
// with severe infant mortality (47.4% of failures in the first six
// months), hard drives with a mild early bump and a wear-out ramp starting
// after month six, flash cards nearly silent in year one and then wearing
// out fast, motherboards failing mostly after year three, and manually
// filed miscellaneous reports spiking in the deployment month.
//
// Rates are expressed as expected failures per component per month; a
// class's lifecycle curve multiplies a per-class base rate. Callers layer
// further multipliers (server frailty, rack-position cooling) on top.
package hazard

import (
	"fmt"
	"math"

	"dcfail/internal/fot"
)

// Curve is a per-month hazard multiplier over a component's service life.
// Index 0 is the deployment month. Beyond the last entry the final value
// holds (components keep wearing at the terminal rate).
type Curve []float64

// At returns the multiplier for a month in service (clamped to the curve).
func (c Curve) At(month int) float64 {
	if len(c) == 0 {
		return 1
	}
	if month < 0 {
		month = 0
	}
	if month >= len(c) {
		month = len(c) - 1
	}
	return c[month]
}

// Mass returns the fraction of total hazard the months [from, to) hold,
// assuming constant exposure across the first `horizon` months. It is the
// quantity behind statements like "47.4% of RAID failures happen in the
// first six months".
func (c Curve) Mass(from, to, horizon int) float64 {
	if from < 0 || to <= from || horizon <= 0 {
		return 0
	}
	window, total := 0.0, 0.0
	for m := 0; m < horizon; m++ {
		v := c.At(m)
		total += v
		if m >= from && m < to {
			window += v
		}
	}
	if total == 0 {
		return 0
	}
	return window / total
}

// Model holds per-class base rates and lifecycle curves.
type Model struct {
	base   map[fot.Component]float64
	curves map[fot.Component]Curve
}

// MonthlyRate returns the expected failures per component per month for a
// component of class c that has been in service ageMonths months.
func (m *Model) MonthlyRate(c fot.Component, ageMonths int) float64 {
	return m.base[c] / 12 * m.curves[c].At(ageMonths)
}

// BaseAFR returns the class's base annualized failure rate (the lifecycle
// curve average is approximately one, so this is the per-component AFR of
// a mid-life part).
func (m *Model) BaseAFR(c fot.Component) float64 { return m.base[c] }

// CurveOf returns the lifecycle curve of a class (shared; do not modify).
func (m *Model) CurveOf(c fot.Component) Curve { return m.curves[c] }

// SetBaseAFR overrides one class's base rate — used by calibration tests
// and ablations.
func (m *Model) SetBaseAFR(c fot.Component, afr float64) { m.base[c] = afr }

// Validate checks the model covers every component class with positive
// rates.
func (m *Model) Validate() error {
	for _, c := range fot.Components() {
		if m.base[c] <= 0 {
			return fmt.Errorf("hazard: class %v has non-positive base rate", c)
		}
		curve := m.curves[c]
		if len(curve) == 0 {
			return fmt.Errorf("hazard: class %v has empty curve", c)
		}
		for i, v := range curve {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("hazard: class %v curve[%d] = %g", c, i, v)
			}
		}
	}
	return nil
}

// months is the default curve horizon: the paper plots the first four
// years of service life.
const months = 48

// Default returns the paper-calibrated hazard model.
//
// Base AFRs are set so the fleet's failure mix reproduces Table II given
// the default inventory (≈13 HDDs, ≈14 DIMMs, 2 PSUs, 4 fans, 2 CPUs, one
// each of RAID card, motherboard and backboard per server, SSDs/flash on
// SSD-using lines only). HDD anchors at a realistic 3.5%/drive-year.
func Default() *Model {
	m := &Model{
		base: map[fot.Component]float64{
			// unit: failures per component per year at curve level 1.0
			fot.HDD:          0.0350,
			fot.Misc:         0.0330, // per server; deployment spike dominates
			fot.Memory:       0.00125,
			fot.Power:        0.00480,
			fot.RAIDCard:     0.00680,
			fot.FlashCard:    0.01100,
			fot.Motherboard:  0.00310,
			fot.SSD:          0.00260,
			fot.Fan:          0.00027,
			fot.HDDBackboard: 0.00078,
			fot.CPU:          0.00011,
		},
		curves: map[fot.Component]Curve{},
	}
	m.curves[fot.HDD] = hddCurve()
	m.curves[fot.Memory] = rampCurve(12, 1.0, 2.8)
	m.curves[fot.Motherboard] = motherboardCurve()
	m.curves[fot.SSD] = ssdCurve()
	m.curves[fot.FlashCard] = flashCurve()
	m.curves[fot.RAIDCard] = raidCurve()
	m.curves[fot.Fan] = rampCurve(12, 0.35, 2.5)
	m.curves[fot.Power] = rampCurve(12, 0.40, 2.3)
	m.curves[fot.CPU] = rampCurve(24, 0.9, 1.3)
	m.curves[fot.HDDBackboard] = flatCurve(1.0)
	m.curves[fot.Misc] = miscCurve()
	return m
}

// hddCurve: ~20% infant bump in months 0–2 over the month 3–8 floor, flat
// until month 6, then a steady wear ramp (Fig. 6a; consistent with
// Schroeder & Gibson's observation that rates rise far earlier than the
// textbook bathtub).
func hddCurve() Curve {
	c := make(Curve, months)
	for mth := range c {
		switch {
		case mth < 3:
			c[mth] = 1.2
		case mth < 6:
			c[mth] = 1.0
		default:
			c[mth] = 1.0 + 0.042*float64(mth-5)
		}
	}
	return c
}

// raidCurve: severe infant mortality — calibrated so ≈47% of the hazard
// mass of the first 50 months sits in months 0–5 (Fig. 6f).
func raidCurve() Curve {
	c := make(Curve, months)
	for mth := range c {
		if mth < 6 {
			c[mth] = 5.2
		} else {
			c[mth] = 0.78 + 0.004*float64(mth-6)
		}
	}
	return c
}

// flashCurve: nearly no failures in year one (≈1.4% of mass), then fast
// correlated wear-out (Fig. 6e).
func flashCurve() Curve {
	c := make(Curve, months)
	for mth := range c {
		if mth < 12 {
			c[mth] = 0.05
		} else {
			c[mth] = 0.3 + 0.135*float64(mth-12)
		}
	}
	return c
}

// ssdCurve: mild early bump, quiet mid-life, wear after year two.
func ssdCurve() Curve {
	c := make(Curve, months)
	for mth := range c {
		switch {
		case mth < 3:
			c[mth] = 1.3
		case mth < 24:
			c[mth] = 0.8
		default:
			c[mth] = 0.8 + 0.06*float64(mth-24)
		}
	}
	return c
}

// motherboardCurve: rare early, most failures after year three (Fig. 6c:
// 72.1% of motherboard failures occur 3+ years after deployment).
func motherboardCurve() Curve {
	c := make(Curve, months)
	for mth := range c {
		switch {
		case mth < 12:
			c[mth] = 0.15
		case mth < 24:
			c[mth] = 0.35
		case mth < 36:
			c[mth] = 0.80
		default:
			c[mth] = 5.5
		}
	}
	return c
}

// miscCurve: manual debugging happens at deployment (Fig. 6i) — an
// extreme first-month spike, then a stable trickle ("lazy" replacement
// responses suppress later manual reports).
func miscCurve() Curve {
	c := make(Curve, months)
	c[0] = 24
	for mth := 1; mth < months; mth++ {
		c[mth] = 1.0
	}
	return c
}

// rampCurve stays at lo for flatMonths, then rises linearly to hi at the
// four-year mark.
func rampCurve(flatMonths int, lo, hi float64) Curve {
	c := make(Curve, months)
	for mth := range c {
		if mth < flatMonths {
			c[mth] = lo
		} else {
			frac := float64(mth-flatMonths) / float64(months-1-flatMonths)
			c[mth] = lo + (hi-lo)*frac
		}
	}
	return c
}

func flatCurve(v float64) Curve {
	c := make(Curve, months)
	for mth := range c {
		c[mth] = v
	}
	return c
}

// Bathtub is the textbook three-phase hazard: a decreasing-hazard Weibull
// (infant mortality) plus a constant floor plus an increasing-hazard
// Weibull (wear-out). The paper contrasts its measurements against this
// model; it is provided for ablations and documentation.
type Bathtub struct {
	Infant   float64 // weight of the infant-mortality term
	InfantK  float64 // Weibull shape < 1
	Floor    float64 // constant useful-life hazard
	Wear     float64 // weight of the wear-out term
	WearK    float64 // Weibull shape > 1
	ScaleMon float64 // characteristic life in months
}

// At returns the bathtub hazard at a service age in months.
func (b Bathtub) At(month float64) float64 {
	if month <= 0 {
		month = 1e-9
	}
	z := month / b.ScaleMon
	infant := b.Infant * b.InfantK * math.Pow(z, b.InfantK-1)
	wear := b.Wear * b.WearK * math.Pow(z, b.WearK-1)
	return infant + b.Floor + wear
}
