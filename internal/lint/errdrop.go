package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop forbids silently discarding errors on durability paths. The
// WAL's crash-safety story (PR 1) is "an acked ticket survives a
// SIGKILL"; that chain is only as strong as its weakest error check — a
// dropped Sync error means the segment may not be on disk, a dropped
// Close error can swallow the final flush, a dropped Write error hands
// the caller a short frame. The rule covers the packages on that chain
// (wal, archive, replica, fmsnet) and the call families whose errors
// carry durability meaning:
//
//   - *os.File: Write, WriteString, WriteAt, Sync, Close, Truncate
//   - *bufio.Writer: Flush, Write, WriteString, WriteByte
//   - os.WriteFile, os.Rename
//   - methods named Sync/Flush/Close/Write/Append/Commit on types
//     declared in this module (the WAL log, the archive writer, the
//     fmsnet client: their errors wrap the same syscalls)
//
// Discarding is a bare expression statement or an assignment of the
// error position to `_`. Deferred calls are exempt: `defer f.Close()`
// on a read path is idiomatic, and the written-file case is already
// enforced by fsyncgap (sync-before-close). Intentional drops — closing
// an already-failed connection before a retry — take a reasoned
// //lint:ignore errdrop, which is the only escape hatch.
//
// The scope includes the binary codec layer (wire) and the columnar
// segment writer (segment): a dropped frame-write error desynchronizes a
// symbol-table stream, and a dropped segment Sync/Close error breaks the
// open-not-replay cold-start contract.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "errors on durability paths (Sync/Flush/Write/Close families) must not be discarded",
	Invariant: "every error returned on the WAL/archive/segment/wire/replica/fmsnet durability " +
		"chain is handled, propagated, or suppressed with a written reason — never dropped",
	Scope: []string{"wal", "archive", "segment", "wire", "replica", "fmsnet"},
	Run:   runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.DeferStmt:
				return false // deferred closes are fsyncgap's domain
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if name, ok := durabilityCall(pass, call); ok {
						pass.Reportf(call.Pos(), "%s error discarded on a durability path: handle it, propagate it, or //lint:ignore errdrop with a reason", name)
					}
				}
				return false
			case *ast.AssignStmt:
				checkErrAssign(pass, s)
				return true
			}
			return true
		})
	}
}

// checkErrAssign flags `_, _ = f.Write(b)` / `_ = f.Sync()` shapes: a
// durability call whose error position lands in the blank identifier.
func checkErrAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := durabilityCall(pass, call)
	if !ok {
		return
	}
	// The error is the call's last result; with a single-value call the
	// single LHS is the error.
	last := assign.Lhs[len(assign.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(assign.Pos(), "%s error assigned to _ on a durability path: handle it, propagate it, or //lint:ignore errdrop with a reason", name)
	}
}

// durabilityCall classifies call as a member of the durability families
// whose last result is an error, returning a printable name.
func durabilityCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !lastResultIsError(pass, call) {
		return "", false
	}
	// Package-level os calls.
	if path, name, ok := pkgFunc(pass.Info, sel); ok {
		if path == "os" && (name == "WriteFile" || name == "Rename") {
			return "os." + name, true
		}
		return "", false
	}
	recv := pass.Info.Types[sel.X].Type
	if recv == nil {
		return "", false
	}
	method := sel.Sel.Name
	switch typePkgPath(recv) {
	case "os":
		switch method {
		case "Write", "WriteString", "WriteAt", "Sync", "Close", "Truncate":
			return "(os.File)." + method, true
		}
		return "", false
	case "bufio":
		switch method {
		case "Flush", "Write", "WriteString", "WriteByte":
			return "(bufio.Writer)." + method, true
		}
		return "", false
	}
	// Module-local durability types: receiver declared in this module
	// (same leading path segment as the package under analysis), method
	// in the durability family.
	if named := namedOf(recv); named != nil && sameModule(named.Obj().Pkg(), pass.Pkg) {
		switch method {
		case "Sync", "Flush", "Close", "Write", "Append", "Commit":
			return "(" + named.Obj().Name() + ")." + method, true
		}
	}
	return "", false
}

// lastResultIsError reports whether the call's final result is error.
func lastResultIsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.Types[call].Type
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// sameModule reports whether p was declared under the same module root
// (first import-path segment) as cur — the loader's view of "our code".
func sameModule(p *types.Package, cur *types.Package) bool {
	if p == nil || cur == nil {
		return false
	}
	root := func(path string) string {
		if i := strings.IndexByte(path, '/'); i >= 0 {
			return path[:i]
		}
		return path
	}
	return root(p.Path()) == root(cur.Path())
}
