package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Machine-readable emitters for fotlint: a flat JSON document and a
// SARIF 2.1.0 log. Both are deterministic — diagnostics sorted by
// position, rules in registry order, paths module-relative — so a CI
// artifact diffs cleanly between runs and the SARIF upload can be
// consumed by code-scanning UIs.

// jsonRule is one registry entry in -json output.
type jsonRule struct {
	Name      string   `json:"name"`
	Doc       string   `json:"doc"`
	Invariant string   `json:"invariant"`
	Scope     []string `json:"scope,omitempty"`
}

// jsonDiag is one finding in -json output. Reason is set only on
// suppression records.
type jsonDiag struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
	Reason  string `json:"reason,omitempty"`
}

// jsonReport is the -json document: the rule registry that ran, the
// failing findings (including malformed directives under the pseudo-
// rule "lint"), and the suppression records with their justifications.
type jsonReport struct {
	Rules      []jsonRule `json:"rules"`
	Findings   []jsonDiag `json:"findings"`
	Suppressed []jsonDiag `json:"suppressed"`
}

// WriteJSON renders res as the -json document. root, when non-empty,
// rewrites file paths module-relative.
func WriteJSON(w io.Writer, analyzers []*Analyzer, res Result, root string) error {
	rep := jsonReport{
		Rules:      ruleMeta(analyzers),
		Findings:   []jsonDiag{},
		Suppressed: []jsonDiag{},
	}
	for _, d := range res.Failures() {
		rep.Findings = append(rep.Findings, toJSONDiag(d, root))
	}
	for _, d := range suppressedDiags(res) {
		jd := toJSONDiag(d, root)
		jd.Reason = d.Reason
		rep.Suppressed = append(rep.Suppressed, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ruleMeta renders the registry plus the pseudo-rule "lint" that owns
// malformed //lint:ignore directives.
func ruleMeta(analyzers []*Analyzer) []jsonRule {
	out := make([]jsonRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		out = append(out, jsonRule{Name: a.Name, Doc: a.Doc, Invariant: a.Invariant, Scope: a.Scope})
	}
	out = append(out, jsonRule{
		Name:      "lint",
		Doc:       "//lint:ignore directives must name a known rule and give a reason",
		Invariant: "every suppression is well-formed and justified",
	})
	return out
}

// suppressedDiags extracts the suppression records, sorted.
func suppressedDiags(res Result) []Diagnostic {
	var out []Diagnostic
	for _, d := range res.Diags {
		if d.Suppressed {
			out = append(out, d)
		}
	}
	sortDiags(out)
	return out
}

func toJSONDiag(d Diagnostic, root string) jsonDiag {
	return jsonDiag{
		Rule:    d.Rule,
		File:    relPath(root, d.Pos.Filename),
		Line:    d.Pos.Line,
		Column:  d.Pos.Column,
		Message: d.Message,
	}
}

// relPath rewrites path module-relative (slash-separated, for stable
// SARIF artifact URIs) when it sits under root.
func relPath(root, path string) string {
	if root == "" {
		return path
	}
	if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return path
}

// --- SARIF 2.1.0 (minimal shape) ---

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string          `json:"name"`
	Rules []sarifRuleDesc `json:"rules"`
}

type sarifRuleDesc struct {
	ID        string       `json:"id"`
	ShortDesc sarifMessage `json:"shortDescription"`
	FullDesc  sarifMessage `json:"fullDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification"`
}

// WriteSARIF renders res as a SARIF 2.1.0 log: failing findings as
// level "error" results, suppression records as results carrying an
// inSource suppression with the //lint:ignore reason as justification.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, res Result, root string) error {
	rules := ruleMeta(analyzers)
	ruleIndex := make(map[string]int, len(rules))
	descs := make([]sarifRuleDesc, len(rules))
	for i, r := range rules {
		ruleIndex[r.Name] = i
		descs[i] = sarifRuleDesc{
			ID:        r.Name,
			ShortDesc: sarifMessage{Text: r.Doc},
			FullDesc:  sarifMessage{Text: r.Invariant},
		}
	}

	results := []sarifResult{}
	toResult := func(d Diagnostic) sarifResult {
		return sarifResult{
			RuleID:    d.Rule,
			RuleIndex: ruleIndex[d.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
	}
	for _, d := range res.Failures() {
		results = append(results, toResult(d))
	}
	for _, d := range suppressedDiags(res) {
		r := toResult(d)
		r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: d.Reason}}
		results = append(results, r)
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "fotlint", Rules: descs}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
