package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GlobalRand flags package-level math/rand calls (rand.Intn,
// rand.Float64, rand.Shuffle, ...) in the generator and simulation
// packages. Those draw from the process-global source, so two runs with
// the same profile seed would diverge — fleetgen/inject/fms traces are
// only reproducible because every draw comes from an explicitly seeded
// *rand.Rand threaded through the call tree.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "generator packages must draw from an explicitly seeded *rand.Rand, not the global math/rand source",
	Invariant: "the same (profile, seed) pair always generates the same fleet, the same failures, " +
		"and the same trace — byte for byte",
	Scope: []string{"fleetgen", "inject", "fms", "topo", "stats", "workload", "fmsnet", "fot"},
	Run:   runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.Info, sel)
			if !ok || (path != "math/rand" && path != "math/rand/v2") {
				return true
			}
			// Constructors (rand.New, rand.NewSource, rand.NewZipf) are
			// exactly how a seeded source is built; type references
			// (*rand.Rand parameters) are the fix, not the bug.
			if strings.HasPrefix(name, "New") {
				return true
			}
			if _, isType := pass.Info.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			pass.Reportf(sel.Pos(), "package-level rand.%s draws from the global math/rand source: use an explicitly seeded *rand.Rand for reproducible traces", name)
			return true
		})
	}
}
