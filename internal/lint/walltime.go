package lint

import (
	"go/ast"
)

// WallTime flags references to the ambient wall clock in packages whose
// behavior must be deterministic or replay-tested. The collector (PR 1)
// and the serve daemon (this PR) take an injected `Now func() time.Time`
// precisely so replayed traces carry their original timestamps and fold
// timing is testable; a stray time.Now reintroduces nondeterminism the
// golden tests cannot see.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "deterministic/replay-tested packages must use an injected clock, not time.Now/Since/Until",
	Invariant: "replayable components take a `Now func() time.Time` (or receive timestamps from " +
		"their input) so identical inputs always produce identical outputs",
	Scope: []string{"core", "report", "fot", "mine", "serve", "fmsnet", "wal", "archive", "replica", "router", "predict"},
	Run:   runWallTime,
}

// wallFuncs are the ambient-clock entry points. time.NewTicker and
// time.NewTimer pace real work and are deliberately not flagged: the
// invariant is about timestamps that land in state or output, not about
// scheduling.
var wallFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallTime(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Both calls (time.Now()) and value references
			// (`clock = time.Now`) smuggle the ambient clock in.
			if path, name, ok := pkgFunc(pass.Info, sel); ok && path == "time" && wallFuncs[name] {
				pass.Reportf(sel.Pos(), "time.%s in deterministic package %q: thread an injected clock (func() time.Time) instead", name, pass.Pkg.Name())
			}
			return true
		})
	}
}
