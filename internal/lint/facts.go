package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The facts layer turns the per-package analyzers into a two-phase,
// cross-package framework, mirroring go/analysis facts on the repo's
// zero-dependency loader:
//
//  1. Per-package phase. Packages are analyzed in import-dependency
//     order; an analyzer's Run may attach typed Facts to package-level
//     objects ("this function acquires mutex X", "this field is the
//     epoch pointer, published only by method P") via Pass.ExportFact.
//     Because dependencies are analyzed first, Run can already consult
//     facts of every imported package through Pass.FactsOf.
//  2. Whole-module phase. After every package is analyzed, each
//     analyzer's RunModule (if any) sees all packages and the complete
//     fact store at once — the phase lockorder needs, since a
//     lock-order cycle is a property of the module-wide acquisition
//     graph, not of any one package.
//
// Facts live in memory for the duration of one Run: the loader already
// holds every package, so unlike go/analysis nothing is serialized, but
// the store still records export order (FactStore.AllFacts) so a fact's
// provenance is inspectable and iteration is deterministic (packages in
// analysis order, objects in source order).

// Fact is a typed statement an analyzer exports about a package-level
// object (a function, a struct field, a variable). Implementations are
// plain data; AFact is a marker so arbitrary values cannot be exported
// by accident.
type Fact interface{ AFact() }

// ObjectFact pairs an object with one exported fact about it.
type ObjectFact struct {
	Obj  types.Object
	Fact Fact
}

// FactStore holds every fact exported during one Run, in export order.
// Export order is deterministic: packages are processed in sorted
// dependency order and analyzers walk files in sorted-name order.
type FactStore struct {
	byObj map[types.Object][]Fact
	all   []ObjectFact
}

// NewFactStore builds an empty store.
func NewFactStore() *FactStore {
	return &FactStore{byObj: make(map[types.Object][]Fact)}
}

// export records one fact.
func (s *FactStore) export(obj types.Object, f Fact) {
	s.byObj[obj] = append(s.byObj[obj], f)
	s.all = append(s.all, ObjectFact{Obj: obj, Fact: f})
}

// FactsOf returns every fact exported about obj, in export order.
func (s *FactStore) FactsOf(obj types.Object) []Fact { return s.byObj[obj] }

// AllFacts returns every exported fact in deterministic export order —
// the whole-module phase's iteration surface.
func (s *FactStore) AllFacts() []ObjectFact { return s.all }

// ExportFact attaches a fact to a package-level object (or a field of a
// package-level type). Downstream passes — later packages in dependency
// order, and every RunModule — observe it via FactsOf.
func (p *Pass) ExportFact(obj types.Object, f Fact) {
	if p.facts == nil || obj == nil {
		return
	}
	p.facts.export(obj, f)
}

// FactsOf returns the facts exported about obj so far: by this package's
// earlier analyzers and by every dependency already analyzed.
func (p *Pass) FactsOf(obj types.Object) []Fact {
	if p.facts == nil {
		return nil
	}
	return p.facts.FactsOf(obj)
}

// ModulePass is the whole-module phase's view: every loaded package in
// analysis order plus the complete fact store. Diagnostics reported here
// are routed through the same //lint:ignore suppression machinery as
// per-package findings, keyed by the position they are reported at.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*Package
	Facts    *FactStore

	diags []Diagnostic
}

// Reportf records a module-phase finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// sortPackagesByDeps orders pkgs so that every package appears after the
// packages it imports (facts flow forward). Ties break on import path,
// so the order is deterministic. Import cycles cannot occur in compiled
// Go; any residue from half-typed packages falls back to path order.
func sortPackagesByDeps(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	deps := make(map[string][]string, len(pkgs))
	indegree := make(map[string]int, len(pkgs))
	for _, p := range pkgs {
		indegree[p.Path] += 0
		seen := map[string]bool{}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path := importPathOf(imp)
				if path == p.Path || seen[path] {
					continue
				}
				if _, inModule := byPath[path]; !inModule {
					continue
				}
				seen[path] = true
				deps[path] = append(deps[path], p.Path)
				indegree[p.Path]++
			}
		}
	}

	var ready []string
	for path, n := range indegree {
		if n == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)

	var out []*Package
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, byPath[path])
		next := append([]string(nil), deps[path]...)
		sort.Strings(next)
		for _, d := range next {
			indegree[d]--
			if indegree[d] == 0 {
				ready = insertSorted(ready, d)
			}
		}
	}
	if len(out) < len(pkgs) { // cycle residue: keep path order
		inOut := make(map[string]bool, len(out))
		for _, p := range out {
			inOut[p.Path] = true
		}
		for _, p := range pkgs {
			if !inOut[p.Path] {
				out = append(out, p)
			}
		}
	}
	return out
}

func importPathOf(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	return s
}

func insertSorted(ss []string, s string) []string {
	i := 0
	for i < len(ss) && ss[i] < s {
		i++
	}
	ss = append(ss, "")
	copy(ss[i+1:], ss[i:])
	ss[i] = s
	return ss
}
