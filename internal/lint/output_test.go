package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"dcfail/internal/lint"
)

// fakeResult builds a Result with one failing finding, one suppressed
// finding, and one malformed directive — the three record kinds the
// emitters must carry.
func fakeResult() lint.Result {
	return lint.Result{
		Diags: []lint.Diagnostic{
			{
				Rule:    "lockorder",
				Pos:     token.Position{Filename: "internal/serve/state.go", Line: 40, Column: 2},
				Message: "lock-order cycle (potential deadlock): A -> B; B -> A",
			},
			{
				Rule:       "epochpub",
				Pos:        token.Position{Filename: "internal/serve/state.go", Line: 144, Column: 2},
				Message:    "epoch pointer stored outside its publish method",
				Suppressed: true,
				Reason:     "epoch 0 bootstrap before the state escapes the constructor",
			},
		},
		Malformed: []lint.Diagnostic{
			{
				Rule:    "lint",
				Pos:     token.Position{Filename: "internal/wal/wal.go", Line: 7, Column: 1},
				Message: "lint:ignore needs a rule name and a reason",
			},
		},
	}
}

// TestSARIFShape pins the SARIF 2.1.0 minimal schema shape: version,
// $schema, tool.driver.rules, and per-result ruleId, message, location,
// and inSource suppression records.
func TestSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, lint.All(), fakeResult(), ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID        string `json:"id"`
						ShortDesc struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						FullDesc struct {
							Text string `json:"text"`
						} `json:"fullDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("$schema is empty")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "fotlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Registry + the pseudo-rule "lint" for malformed directives.
	if want := len(lint.All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("driver has %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	ruleIDs := make(map[string]int)
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDesc.Text == "" {
			t.Errorf("rule %d is missing id or shortDescription", i)
		}
		ruleIDs[r.ID] = i
	}
	if _, ok := ruleIDs["lint"]; !ok {
		t.Error("rules are missing the pseudo-rule \"lint\"")
	}

	// Failing finding + malformed directive + suppressed record.
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	for _, r := range run.Results {
		if r.Level != "error" {
			t.Errorf("result level = %q, want error", r.Level)
		}
		if r.Message.Text == "" {
			t.Errorf("result %s has an empty message", r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %s has %d locations, want 1", r.RuleID, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine == 0 {
			t.Errorf("result %s is missing its artifact URI or start line", r.RuleID)
		}
		if idx, ok := ruleIDs[r.RuleID]; !ok || idx != r.RuleIndex {
			t.Errorf("result %s: ruleIndex %d does not point at its rule entry", r.RuleID, r.RuleIndex)
		}
	}
	// Failures sort by position (serve/state.go before wal/wal.go);
	// suppression records follow them.
	if run.Results[0].RuleID != "lockorder" || run.Results[1].RuleID != "lint" {
		t.Errorf("failure order = %s, %s; want lockorder, lint", run.Results[0].RuleID, run.Results[1].RuleID)
	}
	sup := run.Results[2]
	if sup.RuleID != "epochpub" || len(sup.Suppressions) != 1 {
		t.Fatalf("last result should be the suppressed epochpub record, got %s with %d suppressions", sup.RuleID, len(sup.Suppressions))
	}
	if sup.Suppressions[0].Kind != "inSource" {
		t.Errorf("suppression kind = %q, want inSource", sup.Suppressions[0].Kind)
	}
	if sup.Suppressions[0].Justification == "" {
		t.Error("suppression justification is empty")
	}
	if len(run.Results[0].Suppressions) != 0 {
		t.Error("failing result carries suppressions")
	}
}

// TestJSONReport pins the -json document: rule metadata, findings, and
// suppression records with reasons.
func TestJSONReport(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, lint.All(), fakeResult(), ""); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	var rep struct {
		Rules []struct {
			Name      string `json:"name"`
			Doc       string `json:"doc"`
			Invariant string `json:"invariant"`
		} `json:"rules"`
		Findings []struct {
			Rule    string `json:"rule"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Message string `json:"message"`
			Reason  string `json:"reason"`
		} `json:"findings"`
		Suppressed []struct {
			Rule   string `json:"rule"`
			Reason string `json:"reason"`
		} `json:"suppressed"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if want := len(lint.All()) + 1; len(rep.Rules) != want {
		t.Errorf("rules = %d, want %d", len(rep.Rules), want)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %d, want 2 (failure + malformed)", len(rep.Findings))
	}
	if rep.Findings[0].Rule != "lockorder" || rep.Findings[0].Line != 40 {
		t.Errorf("findings[0] = %+v", rep.Findings[0])
	}
	if rep.Findings[0].Reason != "" {
		t.Error("failing finding carries a suppression reason")
	}
	if len(rep.Suppressed) != 1 || rep.Suppressed[0].Rule != "epochpub" || rep.Suppressed[0].Reason == "" {
		t.Errorf("suppressed = %+v, want one reasoned epochpub record", rep.Suppressed)
	}
}

// TestEmittersAreDeterministic: two renders of the same result are
// byte-identical — the CI artifact must diff cleanly.
func TestEmittersAreDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	res := fakeResult()
	if err := lint.WriteSARIF(&a, lint.All(), res, ""); err != nil {
		t.Fatal(err)
	}
	if err := lint.WriteSARIF(&b, lint.All(), res, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two SARIF renders differ")
	}
	a.Reset()
	b.Reset()
	if err := lint.WriteJSON(&a, lint.All(), res, ""); err != nil {
		t.Fatal(err)
	}
	if err := lint.WriteJSON(&b, lint.All(), res, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two JSON renders differ")
	}
}
