package lint

import (
	"strings"
)

// Result is one lint run over a set of packages.
type Result struct {
	// Diags holds every finding, suppressed ones marked in place so the
	// CLI can report a suppression count.
	Diags []Diagnostic
	// Malformed holds broken //lint:ignore directives. These always
	// fail the run: a typo in a suppression must not pass silently.
	Malformed []Diagnostic
	// TypeErrors holds soft type-check problems per package path.
	TypeErrors map[string][]error
}

// Failures returns the diagnostics that make the run fail: unsuppressed
// findings plus malformed directives, sorted by position.
func (r Result) Failures() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	out = append(out, r.Malformed...)
	sortDiags(out)
	return out
}

// Suppressed counts findings waived by //lint:ignore directives.
func (r Result) Suppressed() int {
	n := 0
	for _, d := range r.Diags {
		if d.Suppressed {
			n++
		}
	}
	return n
}

// Run applies every in-scope analyzer to every package and resolves
// //lint:ignore directives. Output order is deterministic: packages are
// analyzed as given (LoadModule sorts by import path) and diagnostics
// are sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	res := Result{TypeErrors: make(map[string][]error)}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			res.TypeErrors[pkg.Path] = pkg.TypeErrors
		}
		var inScope []*Analyzer
		for _, a := range analyzers {
			if a.AppliesTo(pkg.Path) {
				inScope = append(inScope, a)
			}
		}
		out, malformed := CheckPackage(pkg, inScope, known)
		res.Diags = append(res.Diags, out...)
		res.Malformed = append(res.Malformed, malformed...)
	}
	sortDiags(res.Diags)
	sortDiags(res.Malformed)
	return res
}

// CheckPackage runs the given analyzers over one package regardless of
// Scope and resolves the package's //lint:ignore directives against the
// known rule set (nil means "the analyzers passed in"). It is the
// building block of Run and the fixture harness's entry point.
func CheckPackage(pkg *Package, analyzers []*Analyzer, known map[string]bool) (diags, malformed []Diagnostic) {
	if known == nil {
		known = make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			known[a.Name] = true
		}
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}
	return Suppress(diags, parseDirectives(commentsOf(pkg)), known)
}

// commentsOf flattens a package's comments into the directive parser's
// view. CommentGroup.Text() strips directive-style comments entirely,
// so the raw text is trimmed by hand here.
func commentsOf(pkg *Package) []*fileComments {
	fset := pkg.Fset
	var out []*fileComments
	for _, f := range pkg.Files {
		fc := &fileComments{}
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := c.Text
				if rest, ok := strings.CutPrefix(text, "//"); ok {
					fc.comments = append(fc.comments, commentText{
						text: rest,
						pos:  fset.Position(c.Slash),
					})
				}
			}
		}
		out = append(out, fc)
	}
	return out
}
