package lint

import (
	"strings"
)

// Result is one lint run over a set of packages.
type Result struct {
	// Diags holds every finding, suppressed ones marked in place so the
	// CLI can report a suppression count.
	Diags []Diagnostic
	// Malformed holds broken //lint:ignore directives. These always
	// fail the run: a typo in a suppression must not pass silently.
	Malformed []Diagnostic
	// TypeErrors holds soft type-check problems per package path.
	TypeErrors map[string][]error
}

// Failures returns the diagnostics that make the run fail: unsuppressed
// findings plus malformed directives, sorted by position.
func (r Result) Failures() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	out = append(out, r.Malformed...)
	sortDiags(out)
	return out
}

// Suppressed counts findings waived by //lint:ignore directives.
func (r Result) Suppressed() int {
	n := 0
	for _, d := range r.Diags {
		if d.Suppressed {
			n++
		}
	}
	return n
}

// Run applies every in-scope analyzer to every package (the per-package
// phase, in import-dependency order so facts flow forward), then every
// analyzer's RunModule over the whole set (the module phase), and
// resolves //lint:ignore directives. Output order is deterministic:
// diagnostics are sorted by position, and both phases visit packages in
// a fixed order.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	res := Result{TypeErrors: make(map[string][]error)}
	ordered := sortPackagesByDeps(pkgs)
	store := NewFactStore()
	var allComments []*fileComments
	var raw []Diagnostic
	for _, pkg := range ordered {
		if len(pkg.TypeErrors) > 0 {
			res.TypeErrors[pkg.Path] = pkg.TypeErrors
		}
		var inScope []*Analyzer
		for _, a := range analyzers {
			if a.Run != nil && a.AppliesTo(pkg.Path) {
				inScope = append(inScope, a)
			}
		}
		raw = append(raw, runPackagePhase(pkg, inScope, store)...)
		allComments = append(allComments, commentsOf(pkg)...)
	}
	raw = append(raw, runModulePhase(ordered, analyzers, store)...)

	res.Diags, res.Malformed = Suppress(raw, parseDirectives(allComments), known)
	return res
}

// CheckPackages runs the given analyzers over the given packages with
// Scope bypassed: every analyzer sees every package, per-package phase
// then module phase, and //lint:ignore directives from all packages are
// resolved against the known rule set (nil means "the analyzers passed
// in"). It is the building block of Run and the fixture harness's entry
// point; packages may import one another (they are re-ordered by
// dependency internally).
func CheckPackages(pkgs []*Package, analyzers []*Analyzer, known map[string]bool) (diags, malformed []Diagnostic) {
	if known == nil {
		known = make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			known[a.Name] = true
		}
	}
	ordered := sortPackagesByDeps(pkgs)
	store := NewFactStore()
	var allComments []*fileComments
	var raw []Diagnostic
	for _, pkg := range ordered {
		var withRun []*Analyzer
		for _, a := range analyzers {
			if a.Run != nil {
				withRun = append(withRun, a)
			}
		}
		raw = append(raw, runPackagePhase(pkg, withRun, store)...)
		allComments = append(allComments, commentsOf(pkg)...)
	}
	raw = append(raw, runModulePhase(ordered, analyzers, store)...)
	return Suppress(raw, parseDirectives(allComments), known)
}

// CheckPackage runs the given analyzers over one package regardless of
// Scope (single-package fixtures; see CheckPackages for the module
// form).
func CheckPackage(pkg *Package, analyzers []*Analyzer, known map[string]bool) (diags, malformed []Diagnostic) {
	return CheckPackages([]*Package{pkg}, analyzers, known)
}

// runPackagePhase applies each analyzer's Run to one package, sharing
// the fact store, and returns the raw (unsuppressed) diagnostics.
func runPackagePhase(pkg *Package, analyzers []*Analyzer, store *FactStore) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			facts:    store,
		}
		a.Run(pass)
		out = append(out, pass.diags...)
	}
	return out
}

// runModulePhase applies each analyzer's RunModule across all packages.
func runModulePhase(ordered []*Package, analyzers []*Analyzer, store *FactStore) []Diagnostic {
	if len(ordered) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     ordered[0].Fset,
			Packages: ordered,
			Facts:    store,
		}
		a.RunModule(mp)
		out = append(out, mp.diags...)
	}
	return out
}

// commentsOf flattens a package's comments into the directive parser's
// view. CommentGroup.Text() strips directive-style comments entirely,
// so the raw text is trimmed by hand here.
func commentsOf(pkg *Package) []*fileComments {
	fset := pkg.Fset
	var out []*fileComments
	for _, f := range pkg.Files {
		fc := &fileComments{}
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := c.Text
				if rest, ok := strings.CutPrefix(text, "//"); ok {
					fc.comments = append(fc.comments, commentText{
						text: rest,
						pos:  fset.Position(c.Slash),
					})
				}
			}
		}
		out = append(out, fc)
	}
	return out
}
