package lint

import (
	"go/ast"
	"go/types"
)

// EpochPub guards the serving tier's epoch-publication protocol: a
// snapshot/epoch atomic pointer may only become visible through its
// type's designated publish method. serve.State.publish is the single
// place a new epoch is installed — it appends under foldMu, advances
// the incremental engine and the predictor, then Stores the snapshot
// pointer, so every reader observes a fully folded epoch. A Store (or
// worse, a non-atomic field write) anywhere else publishes a torn or
// half-advanced epoch: exactly the correlated-failure class the chaos
// harness can only catch after the fact.
//
// Designation is structural: any struct field of type sync/atomic's
// Pointer[T] whose declaring type also declares a method named
// "publish" or "Publish" is an epoch pointer; the per-package phase
// exports an EpochPtrFact for it. The whole-module phase then scans
// every loaded package: Store calls on the field outside the publisher
// (and outside the declaring type's constructors only via suppression)
// and any direct assignment to the field are findings. Types without a
// publish method are unconstrained — the rule encodes the protocol,
// not a blanket atomic.Pointer policy.
var EpochPub = &Analyzer{
	Name: "epochpub",
	Doc:  "epoch/snapshot atomic pointers are stored only inside the designated publish method",
	Invariant: "a type that declares publish()/Publish() installs its atomic.Pointer fields " +
		"nowhere else; all other stores and every non-atomic write are findings",
	Scope:     []string{"serve", "replica", "predict"},
	Run:       runEpochPubPackage,
	RunModule: runEpochPubModule,
}

// EpochPtrFact marks a struct field as a designated-publish epoch
// pointer.
type EpochPtrFact struct {
	Owner     string // owning named type, e.g. "dcfail/internal/serve.State"
	Publisher string // the designated method name ("publish" or "Publish")
}

func (*EpochPtrFact) AFact() {}

// runEpochPubPackage exports an EpochPtrFact for every atomic.Pointer
// field of a type that declares a publish method.
func runEpochPubPackage(pass *Pass) {
	if pass.Pkg == nil {
		return
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		publisher := publishMethodOf(named)
		if publisher == "" {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isAtomicPointer(f.Type()) {
				pass.ExportFact(f, &EpochPtrFact{
					Owner:     named.Obj().Pkg().Path() + "." + named.Obj().Name(),
					Publisher: publisher,
				})
			}
		}
	}
}

// publishMethodOf returns the designated publish method's name, or "".
func publishMethodOf(named *types.Named) string {
	for i := 0; i < named.NumMethods(); i++ {
		switch named.Method(i).Name() {
		case "publish", "Publish":
			return named.Method(i).Name()
		}
	}
	return ""
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[T].
func isAtomicPointer(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// runEpochPubModule checks every package — in or out of Scope — for
// stores into fact-carrying fields outside their designated publisher.
func runEpochPubModule(pass *ModulePass) {
	facts := make(map[types.Object]*EpochPtrFact)
	for _, of := range pass.Facts.AllFacts() {
		if f, ok := of.Fact.(*EpochPtrFact); ok {
			facts[of.Obj] = f
		}
	}
	if len(facts) == 0 {
		return
	}
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkEpochStores(pass, pkg, fd, facts)
			}
		}
	}
}

// checkEpochStores flags Stores and direct writes to epoch-pointer
// fields inside one function, unless the function is the field's
// designated publisher.
func checkEpochStores(pass *ModulePass, pkg *Package, fd *ast.FuncDecl, facts map[types.Object]*EpochPtrFact) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// field.Store(v) / field.Swap(v) / field.CompareAndSwap(o, v)
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Store", "Swap", "CompareAndSwap":
			default:
				return true
			}
			fieldSel, ok := sel.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[fieldSel.Sel]
			fact, marked := facts[obj]
			if !marked {
				return true
			}
			if isPublisher(pkg, fd, fact) {
				return true
			}
			pass.Reportf(x.Pos(), "epoch pointer %s.%s stored outside its publish method %s.%s: readers can observe a half-published epoch",
				fact.Owner, fieldSel.Sel.Name, fact.Owner, fact.Publisher)
		case *ast.AssignStmt:
			// Non-atomic write: s.cur = ... (or a compound target path
			// ending at the field). Always a finding — even inside the
			// publisher, a torn write defeats the atomic protocol.
			for _, lhs := range x.Lhs {
				target := lhs
				if star, ok := target.(*ast.StarExpr); ok {
					target = star.X
				}
				fieldSel, ok := target.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := pkg.Info.Uses[fieldSel.Sel]
				if fact, marked := facts[obj]; marked {
					pass.Reportf(lhs.Pos(), "non-atomic write to epoch pointer %s.%s: use %s.%s (atomic Store inside the publisher)",
						fact.Owner, fieldSel.Sel.Name, fact.Owner, fact.Publisher)
				}
			}
		}
		return true
	})
}

// isPublisher reports whether fd is the designated publish method on the
// fact's owning type.
func isPublisher(pkg *Package, fd *ast.FuncDecl, fact *EpochPtrFact) bool {
	if fd.Name.Name != fact.Publisher || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return false
	}
	return named.Obj().Pkg().Path()+"."+named.Obj().Name() == fact.Owner
}
