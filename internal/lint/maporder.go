package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range-over-map loops whose iteration order can leak
// into output: a slice append with no later sort of that slice in the
// same function, a direct write to a writer, or a channel send. This is
// the exact bug class that broke PR 2's byte-identity golden test when
// CorrelatedPairs iterated its host map unsorted.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map must not feed an unsorted append, a writer, or a channel send",
	Invariant: "report output is byte-identical across worker counts and input orders; " +
		"map iteration order must never reach a slice, stream, or channel unsorted",
	Scope: []string{"core", "report", "fot", "mine", "serve", "predict"},
	Run:   runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkMapOrderBody(pass, body)
		})
	}
}

func checkMapOrderBody(pass *Pass, body *ast.BlockStmt) {
	// Collect the map-range statements of this function (including
	// those inside nested literals: a closure appending map-ordered
	// items leaks order the same way).
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := pass.Info.Types[rs.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})
	if len(ranges) == 0 {
		return
	}

	// Index the function's sort calls once: (position, objects named in
	// the arguments). sort.Slice(keys, ...) after the loop launders the
	// map order out of keys.
	type sortCall struct {
		pos  token.Pos
		node ast.Node
	}
	var sorts []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if path, name, ok := pkgFunc(pass.Info, sel); ok && isSortFunc(path, name) {
				sorts = append(sorts, sortCall{pos: call.Pos(), node: call})
			}
		}
		return true
	})
	sortedAfter := func(pos token.Pos, obj types.Object) bool {
		for _, s := range sorts {
			if s.pos > pos && mentionsObject(pass.Info, s.node, obj) {
				return true
			}
		}
		return false
	}

	isMapRange := make(map[*ast.RangeStmt]bool, len(ranges))
	for _, rs := range ranges {
		isMapRange[rs] = true
	}

	for _, rs := range ranges {
		rangeEnd := rs.End()
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			// A nested map-range is analyzed as its own loop; stopping
			// here keeps each finding attributed once.
			if inner, ok := n.(*ast.RangeStmt); ok && isMapRange[inner] {
				return false
			}
			switch stmt := n.(type) {
			case *ast.SendStmt:
				pass.Reportf(stmt.Pos(), "channel send inside range over map: receivers observe nondeterministic order")
			case *ast.CallExpr:
				if name, ok := writerCallName(pass.Info, stmt); ok {
					pass.Reportf(stmt.Pos(), "%s inside range over map writes in nondeterministic order (sort keys first)", name)
				}
			case *ast.AssignStmt:
				obj := appendTarget(pass.Info, stmt)
				if obj == nil {
					return true
				}
				// Accumulating into a variable that outlives the loop:
				// fine only if something sorts it afterwards.
				if obj.Pos() >= rs.Pos() && obj.Pos() <= rangeEnd {
					return true
				}
				if !sortedAfter(rangeEnd, obj) {
					pass.Reportf(stmt.Pos(), "append to %q inside range over map with no later sort of %q in this function: element order is nondeterministic", obj.Name(), obj.Name())
				}
			}
			return true
		})
	}
}

// appendTarget returns the object of x in `x = append(x, ...)` /
// `x = append(y, ...)` when x is a plain identifier, else nil. Writes
// into map entries (`m[k] = append(...)`) are order-independent and
// return nil.
func appendTarget(info *types.Info, assign *ast.AssignStmt) types.Object {
	if len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return identObj(info, id)
}

// writerCallName classifies calls that emit bytes in call order:
// package-level print/write helpers and Write-family methods. The name
// returned is used in the diagnostic.
func writerCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if path, name, ok := pkgFunc(info, sel); ok {
		switch path {
		case "fmt":
			switch name {
			case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
				return "fmt." + name, true
			}
		case "io":
			if name == "WriteString" || name == "Copy" {
				return "io." + name, true
			}
		case "net/http":
			if name == "Error" {
				return "http.Error", true
			}
		}
		return "", false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// A method named Write* on anything (os.File, bytes.Buffer,
		// strings.Builder, net.Conn, http.ResponseWriter) streams in
		// call order.
		return "(...)." + sel.Sel.Name, true
	}
	return "", false
}

// isSortFunc recognizes the stdlib sorting entry points.
func isSortFunc(path, name string) bool {
	switch path {
	case "sort":
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
