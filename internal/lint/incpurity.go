package lint

import (
	"go/ast"
	"go/types"
)

// Incpurity enforces the incremental section engine's state contract on
// fold functions (DESIGN §9): Update must treat its prev state as
// immutable — a snapshot that rendered epoch N may still be read while
// epoch N+1 folds — and must not let map iteration order reach carried
// state. Mutating through prev (or a type-asserted alias of it) is the
// bug class the engine's byte-identity test only catches when a fold
// races a render; this rule catches it at review time.
var Incpurity = &Analyzer{
	Name: "incpurity",
	Doc:  "incremental Update must not mutate prev state nor fold map order into state",
	Invariant: "Update(prev, ix, newRows) returns prev unchanged or a fresh top-level state; " +
		"prev and its aliases are never written through, and state never absorbs unsorted map order",
	Scope: []string{"core", "report", "mine", "predict"},
	Run:   runIncpurity,
}

func runIncpurity(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if prev := updatePrevParam(pass.Info, ftype); prev != nil {
				checkUpdateBody(pass, body, prev)
			}
			return true
		})
	}
}

// updatePrevParam recognizes the fold-function shape — three parameters
// and two results with SectionState first in both lists — and returns the
// object of the prev parameter, or nil.
func updatePrevParam(info *types.Info, ftype *ast.FuncType) types.Object {
	if ftype.Params == nil || ftype.Results == nil {
		return nil
	}
	if countFields(ftype.Params) != 3 || countFields(ftype.Results) != 2 {
		return nil
	}
	first := ftype.Params.List[0]
	if len(first.Names) == 0 {
		return nil // an unnamed prev cannot be mutated
	}
	if !isSectionState(info.Types[first.Type].Type) {
		return nil
	}
	if !isSectionState(info.Types[ftype.Results.List[0].Type].Type) {
		return nil
	}
	return info.Defs[first.Names[0]]
}

func countFields(fl *ast.FieldList) int {
	n := 0
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// isSectionState matches the engine's state interface by name, so the
// rule follows the type wherever the fold function is declared.
func isSectionState(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "SectionState"
}

func checkUpdateBody(pass *Pass, body *ast.BlockStmt, prev types.Object) {
	// prev plus every one-hop alias bound by `st := prev` or
	// `st, ok := prev.(*T)`. The blessed idiom — st.clone() or a fresh
	// literal, then writes through the clone — introduces a new object on
	// the right-hand side and stays out of this set.
	aliases := map[types.Object]bool{prev: true}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		rhs := assign.Rhs[0]
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ta.X
		}
		id, ok := rhs.(*ast.Ident)
		if !ok || !aliases[identObj(pass.Info, id)] {
			return true
		}
		if lhs, ok := assign.Lhs[0].(*ast.Ident); ok && lhs.Name != "_" {
			if obj := identObj(pass.Info, lhs); obj != nil {
				aliases[obj] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				if obj, root := writeThroughRoot(pass.Info, lhs, aliases); obj != nil {
					pass.Reportf(lhs.Pos(), "write through %q mutates prev state shared with rendered snapshots (clone before writing)", root)
				}
			}
		case *ast.IncDecStmt:
			if obj, root := writeThroughRoot(pass.Info, stmt.X, aliases); obj != nil {
				pass.Reportf(stmt.Pos(), "write through %q mutates prev state shared with rendered snapshots (clone before writing)", root)
			}
		case *ast.CallExpr:
			if id, ok := stmt.Fun.(*ast.Ident); ok && id.Name == "delete" && len(stmt.Args) > 0 {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					if obj, root := writeThroughRoot(pass.Info, stmt.Args[0], aliases); obj != nil {
						pass.Reportf(stmt.Pos(), "delete through %q mutates prev state shared with rendered snapshots (clone before writing)", root)
					}
				}
			}
		case *ast.RangeStmt:
			checkUpdateMapRange(pass, body, stmt)
		}
		return true
	})
}

// writeThroughRoot reports a write whose target dereferences an alias of
// prev: a field, element, or pointer chain rooted at the alias. A plain
// rebind of the alias identifier itself (`st = ...`) writes no shared
// memory and is ignored.
func writeThroughRoot(info *types.Info, expr ast.Expr, aliases map[types.Object]bool) (types.Object, string) {
	derefs := 0
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
			derefs++
		case *ast.IndexExpr:
			expr = e.X
			derefs++
		case *ast.StarExpr:
			expr = e.X
			derefs++
		case *ast.Ident:
			if derefs == 0 {
				return nil, ""
			}
			if obj := identObj(info, e); obj != nil && aliases[obj] {
				return obj, e.Name
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}

// checkUpdateMapRange flags state-field appends fed by a range over a
// map with no later sort of the field: the carried slice would replay
// the map's random order into every future render. This closes the gap
// maporder leaves for field targets (it only tracks plain identifiers).
func checkUpdateMapRange(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt) {
	t := pass.Info.Types[rs.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		field := appendFieldTarget(pass.Info, assign)
		if field == nil {
			return true
		}
		if sortedLaterInFunc(pass, body, rs, field) {
			return true
		}
		pass.Reportf(assign.Pos(), "append to state field %q inside range over map with no later sort: carried order is nondeterministic", field.Name())
		return true
	})
}

// appendFieldTarget returns the field object of x.f in
// `x.f = append(x.f, ...)`, else nil.
func appendFieldTarget(info *types.Info, assign *ast.AssignStmt) types.Object {
	if len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	sel, ok := assign.Lhs[0].(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return info.Uses[sel.Sel]
}

// sortedLaterInFunc reports whether a sort call mentioning field appears
// after the range loop, inside the same function body. Sorts in other
// functions do not launder this loop's order.
func sortedLaterInFunc(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, field types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if path, name, ok := pkgFunc(pass.Info, sel); ok && isSortFunc(path, name) && mentionsObject(pass.Info, call, field) {
				found = true
			}
		}
		return true
	})
	return found
}
