package lint_test

import (
	"strings"
	"testing"

	"dcfail/internal/lint"
)

func loadIgnoreFixture(t *testing.T) *lint.Package {
	t.Helper()
	pkg, err := lint.NewLoader().LoadDir("testdata/ignore", "fixture/ignore")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("ignore fixture has type errors: %v", pkg.TypeErrors)
	}
	return pkg
}

// TestIgnoreSuppression: a well-formed //lint:ignore (line above or
// same line) suppresses the finding and carries its reason; suppressed
// findings do not count as failures.
func TestIgnoreSuppression(t *testing.T) {
	pkg := loadIgnoreFixture(t)
	diags, malformed := lint.CheckPackage(pkg, []*lint.Analyzer{lint.WallTime}, nil)

	var suppressed, live []lint.Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		} else {
			live = append(live, d)
		}
	}
	// defaultClock (directive above) and sameLine (directive riding the
	// statement) are suppressed; the three functions with malformed
	// directives stay live.
	if len(suppressed) != 2 {
		t.Errorf("suppressed = %d findings %v, want 2", len(suppressed), suppressed)
	}
	for _, d := range suppressed {
		if d.Reason == "" {
			t.Errorf("suppressed finding without a reason: %s", d)
		}
	}
	if len(live) != 3 {
		t.Errorf("live = %d findings %v, want 3 (malformed directives must not suppress)", len(live), live)
	}
	if len(malformed) != 3 {
		t.Fatalf("malformed = %d %v, want 3", len(malformed), malformed)
	}
	wantProblems := []string{"missing reason", "unknown rule", "missing rule"}
	for _, want := range wantProblems {
		found := false
		for _, m := range malformed {
			if m.Rule != "lint" {
				t.Errorf("malformed directive reported under rule %q, want \"lint\"", m.Rule)
			}
			if strings.Contains(m.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no malformed diagnostic mentions %q in %v", want, malformed)
		}
	}
}

// TestIgnoreDoesNotLeakAcrossRules: a directive for one rule leaves
// other rules' findings on the same line untouched.
func TestIgnoreDoesNotLeakAcrossRules(t *testing.T) {
	pkg := loadIgnoreFixture(t)
	// Run with both walltime and lockedblocking known so the walltime
	// directives validate, then verify only walltime findings were
	// affected (lockedblocking finds nothing here either way).
	diags, _ := lint.CheckPackage(pkg, []*lint.Analyzer{lint.WallTime, lint.LockedBlocking}, nil)
	for _, d := range diags {
		if d.Suppressed && d.Rule != "walltime" {
			t.Errorf("directive for walltime suppressed %s finding: %s", d.Rule, d)
		}
	}
}

// TestIgnoreEdgeCases: directives keep working at the syntactic
// extremes — the file's last line, deep block nesting, and several
// rules in one comma-separated directive — and never widen beyond
// their own line plus the next.
func TestIgnoreEdgeCases(t *testing.T) {
	pkg, err := lint.NewLoader().LoadDir("testdata/ignoreedge", "fixture/ignoreedge")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("ignoreedge fixture has type errors: %v", pkg.TypeErrors)
	}
	diags, malformed := lint.CheckPackage(pkg, []*lint.Analyzer{lint.WallTime, lint.GlobalRand}, nil)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}

	byReason := make(map[string][]lint.Diagnostic)
	var live []lint.Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			byReason[d.Reason] = append(byReason[d.Reason], d)
		} else {
			live = append(live, d)
		}
	}

	// Nested block: the deeply-nested call is suppressed...
	if got := byReason["deep nesting must not hide the directive"]; len(got) != 1 {
		t.Errorf("nested-block suppression hit %d findings %v, want 1", len(got), got)
	}
	// ...but the directive does not scope to the whole block: exactly
	// one walltime finding (nested's trailing return) stays live.
	if len(live) != 1 || live[0].Rule != "walltime" {
		t.Errorf("live findings = %v, want just nested()'s trailing time.Now", live)
	}

	// One directive, two rules, one line.
	multi := byReason["seeded replay fixture needs both on one line"]
	if len(multi) != 2 {
		t.Fatalf("multi-rule directive suppressed %d findings %v, want 2", len(multi), multi)
	}
	rules := map[string]bool{}
	for _, d := range multi {
		rules[d.Rule] = true
	}
	if !rules["walltime"] || !rules["globalrand"] {
		t.Errorf("multi-rule directive covered %v, want walltime and globalrand", rules)
	}

	// Same-line directive on the file's last line.
	if got := byReason["directive on the final line of the file"]; len(got) != 1 {
		t.Errorf("last-line suppression hit %d findings %v, want 1", len(got), got)
	}
}

// TestResultFailures: Run-level accounting — suppressed findings drop
// out of Failures, malformed directives land in it.
func TestResultFailures(t *testing.T) {
	pkg := loadIgnoreFixture(t)
	diags, malformed := lint.CheckPackage(pkg, []*lint.Analyzer{lint.WallTime}, nil)
	res := lint.Result{Diags: diags, Malformed: malformed}
	fails := res.Failures()
	if want := 3 + 3; len(fails) != want { // 3 live findings + 3 malformed directives
		t.Errorf("Failures() = %d %v, want %d", len(fails), fails, want)
	}
	if got := res.Suppressed(); got != 2 {
		t.Errorf("Suppressed() = %d, want 2", got)
	}
	for _, f := range fails {
		if f.Suppressed {
			t.Errorf("suppressed finding leaked into Failures(): %s", f)
		}
	}
}
