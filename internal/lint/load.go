package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("dcfail/internal/core")
	Name  string // package name from source
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File

	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check problems. Analysis proceeds on
	// whatever information was resolved; the CLI surfaces these so a
	// half-typed package is never silently half-linted.
	TypeErrors []error

	checking bool
	checked  bool
}

// Loader parses and type-checks packages from source. Imports inside
// the module resolve against the loaded set; everything else (the
// standard library) goes through the compiler's source importer, so the
// whole pipeline stays zero-dependency.
type Loader struct {
	Fset *token.FileSet

	std  types.Importer
	pkgs map[string]*Package // by import path
}

// NewLoader builds an empty loader with a shared FileSet.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*Package),
	}
}

// LoadModule discovers, parses, and type-checks every package under the
// module rooted at root (the directory holding go.mod). Test files and
// testdata/ trees are skipped: the rules guard production code, and
// fixtures under testdata must not be linted as part of the module.
// Packages come back sorted by import path.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var loaded []*Package
	for _, dir := range dirs {
		importPath := modPath
		if rel, _ := filepath.Rel(root, dir); rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.parseDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		l.pkgs[importPath] = pkg
		loaded = append(loaded, pkg)
	}
	for _, pkg := range loaded {
		if err := l.check(pkg); err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", pkg.Path, err)
		}
	}
	return loaded, nil
}

// LoadDir parses and type-checks the single package in dir (used by the
// fixture harness). The package may import only the standard library.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	pkg, err := l.parseDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	l.pkgs[importPath] = pkg
	if err := l.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// parseDir parses the non-test Go files of dir into an unchecked
// Package, or nil if the directory holds none.
func (l *Loader) parseDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Name = pkg.Files[0].Name.Name
	return pkg, nil
}

// check type-checks pkg, resolving module-internal imports recursively.
// Type errors are collected, not fatal: analyzers run on whatever was
// resolved, and the CLI reports the residue.
func (l *Loader) check(pkg *Package) error {
	if pkg.checked {
		return nil
	}
	if pkg.checking {
		return fmt.Errorf("import cycle through %s", pkg.Path)
	}
	pkg.checking = true
	defer func() { pkg.checking = false }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(pkg.Path, l.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
	pkg.checked = true
	return nil
}

// loaderImporter adapts the loader to types.Importer: module-internal
// paths resolve from the loaded set, the rest falls through to the
// stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if pkg, ok := l.pkgs[path]; ok {
		if err := l.check(pkg); err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod (how cmd/fotlint anchors "./..." patterns).
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}
