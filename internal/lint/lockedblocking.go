package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockedBlocking flags network/file I/O and time.Sleep performed while
// a sync.Mutex or sync.RWMutex is held. A lock that spans a blocking
// call turns one slow peer (or one slow disk) into a stall for every
// goroutine contending on that lock — the live service's ingest and
// query paths share several small mutexes that must stay compute-only.
//
// The check is a linear over-approximation: within one function body,
// a region starts at x.Lock()/x.RLock() and ends at the matching
// x.Unlock()/x.RUnlock(); `defer x.Unlock()` holds to function end.
// Function literals are separate regions (their bodies run on their own
// schedule). Intentional holds — e.g. the WAL's group-commit fsync —
// are suppressed in place with a reasoned //lint:ignore.
var LockedBlocking = &Analyzer{
	Name: "lockedblocking",
	Doc:  "no blocking I/O or sleep while a sync.Mutex/RWMutex is held",
	Invariant: "locks protect in-memory state transitions only; anything that can block on the " +
		"outside world happens before Lock or after Unlock",
	Run: runLockedBlocking,
}

func runLockedBlocking(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(c ast.Node) bool {
			switch fn := c.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockedRegion(pass, fn.Body)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					checkLockedRegion(pass, fn.Body)
				}
			}
			return true
		})
	}
}

// mutexMethod classifies sel as a sync mutex lock/unlock call on the
// standard mutex types, returning the lock key (source text of the
// receiver expression) and whether it acquires or releases.
func mutexMethod(pass *Pass, sel *ast.SelectorExpr) (key string, acquire, release bool) {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false, false
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		return types.ExprString(sel.X), true, false
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// checkLockedRegion scans one function body in statement order,
// maintaining the set of held locks. Branch bodies are scanned with the
// entry-state copy; locks acquired inside a branch do not leak past it
// (an over- and under-approximation that matches how the repo's lock
// regions are actually written).
func checkLockedRegion(pass *Pass, body *ast.BlockStmt) {
	held := map[string]bool{}
	var scanStmts func(stmts []ast.Stmt, held map[string]bool)
	scanStmts = func(stmts []ast.Stmt, held map[string]bool) {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						key, acquire, release := mutexMethod(pass, sel)
						if acquire {
							held[key] = true
							continue
						}
						if release {
							delete(held, key)
							continue
						}
					}
				}
			case *ast.DeferStmt:
				if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
					if key, _, release := mutexMethod(pass, sel); release {
						// Held until function end: the region covers
						// every following statement.
						held[key] = true
						continue
					}
				}
			case *ast.BlockStmt:
				scanStmts(s.List, copyHeld(held))
				continue
			case *ast.IfStmt:
				scanStmts(s.Body.List, copyHeld(held))
				if s.Else != nil {
					if eb, ok := s.Else.(*ast.BlockStmt); ok {
						scanStmts(eb.List, copyHeld(held))
					} else {
						scanStmts([]ast.Stmt{s.Else}, copyHeld(held))
					}
				}
				continue
			case *ast.ForStmt:
				scanStmts(s.Body.List, copyHeld(held))
				continue
			case *ast.RangeStmt:
				scanStmts(s.Body.List, copyHeld(held))
				continue
			case *ast.SwitchStmt:
				for _, clause := range s.Body.List {
					if cc, ok := clause.(*ast.CaseClause); ok {
						scanStmts(cc.Body, copyHeld(held))
					}
				}
				continue
			case *ast.TypeSwitchStmt:
				for _, clause := range s.Body.List {
					if cc, ok := clause.(*ast.CaseClause); ok {
						scanStmts(cc.Body, copyHeld(held))
					}
				}
				continue
			case *ast.SelectStmt:
				for _, clause := range s.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						scanStmts(cc.Body, copyHeld(held))
					}
				}
				continue
			}
			if len(held) > 0 {
				reportBlockingCalls(pass, stmt, held)
			}
		}
	}
	scanStmts(body.List, held)
}

func copyHeld(held map[string]bool) map[string]bool {
	cp := make(map[string]bool, len(held))
	for k := range held {
		cp[k] = true
	}
	return cp
}

// reportBlockingCalls flags blocking calls inside stmt while locks are
// held. Nested function literals are skipped: they run later, on their
// own goroutine or call stack.
func reportBlockingCalls(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	locks := make([]string, 0, len(held))
	for k := range held {
		locks = append(locks, k)
	}
	// Deterministic diagnostic text regardless of map order (the linter
	// holds itself to its own rules).
	sort.Strings(locks)
	heldDesc := strings.Join(locks, ", ")

	inspectSkipFuncLits(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := blockingCallName(pass, call); ok {
			pass.Reportf(call.Pos(), "%s while %s is held: a blocking call under a mutex stalls every contender", name, heldDesc)
		}
		return true
	})
}

// blockingCallName classifies calls that can block on the outside
// world: sleeps, dials/listens, and I/O methods on net and *os.File
// values.
func blockingCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if path, name, ok := pkgFunc(pass.Info, sel); ok {
		switch path {
		case "time":
			if name == "Sleep" {
				return "time.Sleep", true
			}
		case "net":
			switch name {
			case "Dial", "DialTimeout", "Listen", "ListenPacket":
				return "net." + name, true
			}
		case "net/http":
			switch name {
			case "Get", "Post", "PostForm", "Head":
				return "http." + name, true
			}
		}
		return "", false
	}
	// Method calls: receiver from package net, net/http, or *os.File.
	recv := pass.Info.Types[sel.X].Type
	if recv == nil {
		return "", false
	}
	pkgPath := typePkgPath(recv)
	method := sel.Sel.Name
	switch pkgPath {
	case "net":
		switch method {
		case "Read", "Write", "ReadFrom", "WriteTo", "Accept", "AcceptTCP":
			return "(net)." + method, true
		}
	case "net/http":
		if method == "Do" {
			return "(http.Client).Do", true
		}
	case "os":
		switch method {
		case "Read", "Write", "WriteString", "WriteAt", "ReadFrom", "Sync":
			return "(os.File)." + method, true
		}
	}
	return "", false
}

// typePkgPath digs the defining package out of a (possibly pointer or
// interface) type.
func typePkgPath(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Named:
			if obj := tt.Obj(); obj != nil && obj.Pkg() != nil {
				return obj.Pkg().Path()
			}
			return ""
		default:
			return ""
		}
	}
}
