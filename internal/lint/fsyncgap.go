package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FsyncGap guards PR 1's durability contract in the wal and archive
// packages: data the collector acks must survive a crash, so a file
// that is written must be fsynced before it is closed (and before any
// rename publishes it). Two patterns are flagged:
//
//   - a function that opens a file for writing (os.Create / os.OpenFile
//     with a write flag), writes to it, and closes it — or lets it go
//     out of scope — without ever calling Sync on it;
//   - any call to os.WriteFile, which never syncs.
//
// Handing the file onward (returning it, storing it in a field) moves
// the obligation to the new owner and is not flagged.
var FsyncGap = &Analyzer{
	Name: "fsyncgap",
	Doc:  "files written on the durability path must Sync before Close/rename",
	Invariant: "an acked record is on stable storage: every written os.File in wal/archive/segment " +
		"fsyncs before close, and no durable write goes through os.WriteFile",
	Scope: []string{"wal", "archive", "segment"},
	Run:   runFsyncGap,
}

func runFsyncGap(pass *Pass) {
	for _, file := range pass.Files {
		// os.WriteFile anywhere in scope is a durability hole.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if path, name, ok := pkgFunc(pass.Info, sel); ok && path == "os" && name == "WriteFile" {
					pass.Reportf(call.Pos(), "os.WriteFile never fsyncs: open, write, Sync, Close explicitly on the durability path")
				}
			}
			return true
		})
		funcBodies(file, func(body *ast.BlockStmt) {
			checkFsyncBody(pass, body)
		})
	}
}

// fileUse tracks what one function does with one opened file object.
type fileUse struct {
	obj      types.Object
	openPos  token.Pos
	writePos token.Pos // first write-ish use
	closePos token.Pos // first Close (incl. deferred)
	synced   bool
	escapes  bool // returned or stored: ownership moves on
}

func checkFsyncBody(pass *Pass, body *ast.BlockStmt) {
	uses := map[types.Object]*fileUse{}

	// Pass 1: find `f, err := os.Create(...)` / writable os.OpenFile.
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, name, ok := pkgFunc(pass.Info, sel)
		if !ok || path != "os" {
			return true
		}
		switch name {
		case "Create", "CreateTemp":
		case "OpenFile":
			if !openFileWritable(call) {
				return true
			}
		default:
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj := identObj(pass.Info, id); obj != nil {
			uses[obj] = &fileUse{obj: obj, openPos: call.Pos()}
		}
		return true
	})
	if len(uses) == 0 {
		return
	}

	// Pass 2: classify every other appearance of each tracked file.
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if u := uses[identObj(pass.Info, id)]; u != nil {
						switch sel.Sel.Name {
						case "Sync":
							u.synced = true
						case "Close":
							if u.closePos == token.NoPos {
								u.closePos = node.Pos()
							}
						case "Write", "WriteString", "WriteAt", "ReadFrom", "Truncate", "Seek":
							if u.writePos == token.NoPos {
								u.writePos = node.Pos()
							}
						}
						return true
					}
				}
			}
			// The file as an argument (fmt.Fprintf(f, ...), a JSON
			// encoder, a bufio writer) is a write path too.
			for _, arg := range node.Args {
				if id, ok := arg.(*ast.Ident); ok {
					if u := uses[identObj(pass.Info, id)]; u != nil && u.writePos == token.NoPos {
						u.writePos = node.Pos()
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				markEscape(pass.Info, res, uses)
			}
		case *ast.AssignStmt:
			// Storing the handle (a.current = f) hands the sync
			// obligation to the new owner.
			for _, rhs := range node.Rhs {
				markEscape(pass.Info, rhs, uses)
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				markEscape(pass.Info, elt, uses)
			}
		}
		return true
	})

	for _, u := range uses {
		if u.writePos == token.NoPos || u.synced || u.escapes {
			continue
		}
		at := u.closePos
		if at == token.NoPos {
			at = u.writePos
		}
		pass.Reportf(at, "file opened at %s is written but never Synced in this function: a crash can lose acked data (fsync before close/rename)",
			pass.Fset.Position(u.openPos))
	}
}

// markEscape marks tracked files named directly by expr (identifier or
// &identifier) as escaping.
func markEscape(info *types.Info, expr ast.Expr, uses map[types.Object]*fileUse) {
	if un, ok := expr.(*ast.UnaryExpr); ok && un.Op == token.AND {
		expr = un.X
	}
	if kv, ok := expr.(*ast.KeyValueExpr); ok {
		expr = kv.Value
	}
	if id, ok := expr.(*ast.Ident); ok {
		if u := uses[identObj(info, id)]; u != nil {
			u.escapes = true
		}
	}
}

// openFileWritable reports whether an os.OpenFile call's flag argument
// names a write mode. Unresolvable flag expressions count as writable
// (better a suppressible false positive than a missed durability gap).
func openFileWritable(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return true
	}
	writable := false
	sawFlag := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			sawFlag = true
			switch sel.Sel.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
				writable = true
			}
			return false
		}
		return true
	})
	return writable || !sawFlag
}
