package lint_test

import (
	"path/filepath"
	"testing"

	"dcfail/internal/lint"
	"dcfail/internal/lint/linttest"
)

// TestAnalyzerFixtures drives every registered analyzer over its
// fixture tree: each rule must fire exactly where the // want comments
// say and stay silent on the compliant functions.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range lint.All() {
		t.Run(a.Name, func(t *testing.T) {
			linttest.Run(t, filepath.Join("testdata", a.Name), a)
		})
	}
}

// TestRegistry pins the rule registry's shape: stable names, docs, and
// scopes, so fotlint -list stays meaningful.
func TestRegistry(t *testing.T) {
	want := []string{
		"maporder", "walltime", "globalrand", "fsyncgap", "lockedblocking", "incpurity",
		"lockorder", "epochpub", "goroleak", "errdrop",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Invariant == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Doc/Invariant/Run", a.Name)
		}
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) did not resolve the registered analyzer", a.Name)
		}
	}
	if lint.ByName("nosuchrule") != nil {
		t.Error("ByName resolved a rule that does not exist")
	}
}

// TestScope pins the package scoping of each rule to the packages the
// invariants actually cover.
func TestScope(t *testing.T) {
	cases := []struct {
		rule    string
		path    string
		applies bool
	}{
		{"maporder", "dcfail/internal/core", true},
		{"maporder", "dcfail/internal/report", true},
		{"maporder", "dcfail/internal/serve", true},
		{"maporder", "dcfail/internal/wal", false},
		{"walltime", "dcfail/internal/serve", true},
		{"walltime", "dcfail/internal/fmsnet", true},
		{"walltime", "dcfail/internal/replica", true},
		{"walltime", "dcfail/internal/router", true},
		{"walltime", "dcfail/cmd/fotqueryd", false},
		{"globalrand", "dcfail/internal/fleetgen", true},
		{"globalrand", "dcfail/internal/inject", true},
		{"globalrand", "dcfail/internal/serve", false},
		{"fsyncgap", "dcfail/internal/wal", true},
		{"fsyncgap", "dcfail/internal/archive", true},
		{"fsyncgap", "dcfail/internal/archive/segment", true},
		{"fsyncgap", "dcfail/internal/report", false},
		{"lockedblocking", "dcfail/internal/anything", true},
		{"lockedblocking", "dcfail", true},
		{"incpurity", "dcfail/internal/core", true},
		{"incpurity", "dcfail/internal/report", true},
		{"incpurity", "dcfail/internal/mine", true},
		{"incpurity", "dcfail/internal/serve", false},
		{"maporder", "dcfail/internal/predict", true},
		{"walltime", "dcfail/internal/predict", true},
		{"incpurity", "dcfail/internal/predict", true},
		{"globalrand", "dcfail/internal/predict", false},
		{"lockorder", "dcfail/internal/anything", true},
		{"lockorder", "dcfail", true},
		{"epochpub", "dcfail/internal/serve", true},
		{"epochpub", "dcfail/internal/replica", true},
		{"epochpub", "dcfail/internal/predict", true},
		{"epochpub", "dcfail/internal/core", false},
		{"goroleak", "dcfail/internal/router", true},
		{"goroleak", "dcfail/internal/fmsnet", true},
		{"goroleak", "dcfail/internal/report", false},
		{"errdrop", "dcfail/internal/wal", true},
		{"errdrop", "dcfail/internal/archive", true},
		{"errdrop", "dcfail/internal/archive/segment", true},
		{"errdrop", "dcfail/internal/wire", true},
		{"errdrop", "dcfail/internal/replica", true},
		{"errdrop", "dcfail/internal/fmsnet", true},
		{"errdrop", "dcfail/internal/serve", false},
	}
	for _, c := range cases {
		a := lint.ByName(c.rule)
		if a == nil {
			t.Fatalf("no analyzer %q", c.rule)
		}
		if got := a.AppliesTo(c.path); got != c.applies {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.rule, c.path, got, c.applies)
		}
	}
}
