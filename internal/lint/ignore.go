package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Directive is one parsed //lint:ignore comment:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// A well-formed directive suppresses matching diagnostics on its own
// line and on the line directly below it (so it can ride the flagged
// statement or sit on its own line above). The reason is mandatory:
// every suppression documents why the invariant is safe to waive there.
type Directive struct {
	Rules  []string
	Reason string
	Pos    token.Position

	// Malformed directives (missing rule or reason, unknown rule) are
	// themselves diagnostics: a typo must not silently stop suppressing.
	Malformed bool
	Problem   string
}

// ignorePrefix is matched after the comment marker, with no space
// before "lint" (the conventional directive shape, like //go:build).
const ignorePrefix = "lint:ignore"

// parseDirectives scans a file's comments for //lint:ignore directives.
func parseDirectives(files []*fileComments) []Directive {
	var out []Directive
	for _, fc := range files {
		for _, text := range fc.comments {
			rest, ok := strings.CutPrefix(text.text, ignorePrefix)
			if !ok {
				continue
			}
			d := Directive{Pos: text.pos}
			rest = strings.TrimSpace(rest)
			ruleField, reason, _ := strings.Cut(rest, " ")
			d.Reason = strings.TrimSpace(reason)
			if ruleField == "" {
				d.Malformed = true
				d.Problem = "missing rule: want //lint:ignore <rule> <reason>"
				out = append(out, d)
				continue
			}
			for _, r := range strings.Split(ruleField, ",") {
				if r = strings.TrimSpace(r); r != "" {
					d.Rules = append(d.Rules, r)
				}
			}
			if d.Reason == "" {
				d.Malformed = true
				d.Problem = "missing reason: want //lint:ignore <rule> <reason>"
			}
			out = append(out, d)
		}
	}
	return out
}

// fileComments is the comment view of one parsed file: the raw text
// (marker stripped) and position of every // comment.
type fileComments struct {
	comments []commentText
}

type commentText struct {
	text string
	pos  token.Position
}

// Suppress applies directives to diags: covered findings are marked
// Suppressed with the directive's reason. Directives naming a rule not
// in known, or missing a field, become malformed diagnostics under the
// pseudo-rule "lint". The returned slices are sorted by position.
func Suppress(diags []Diagnostic, dirs []Directive, known map[string]bool) (out, malformed []Diagnostic) {
	type key struct {
		file string
		line int
	}
	active := make(map[key][]*Directive)
	for i := range dirs {
		d := &dirs[i]
		if d.Malformed {
			malformed = append(malformed, Diagnostic{
				Rule:    "lint",
				Pos:     d.Pos,
				Message: "malformed //lint:ignore directive: " + d.Problem,
			})
			continue
		}
		bad := false
		for _, r := range d.Rules {
			if !known[r] {
				malformed = append(malformed, Diagnostic{
					Rule:    "lint",
					Pos:     d.Pos,
					Message: fmt.Sprintf("//lint:ignore names unknown rule %q (see fotlint -list)", r),
				})
				bad = true
			}
		}
		if bad {
			continue
		}
		active[key{d.Pos.Filename, d.Pos.Line}] = append(active[key{d.Pos.Filename, d.Pos.Line}], d)
	}

	out = append(out, diags...)
	for i := range out {
		diag := &out[i]
		for _, line := range []int{diag.Pos.Line, diag.Pos.Line - 1} {
			for _, d := range active[key{diag.Pos.Filename, line}] {
				for _, r := range d.Rules {
					if r == diag.Rule {
						diag.Suppressed = true
						diag.Reason = d.Reason
					}
				}
			}
		}
	}
	sortDiags(out)
	sortDiags(malformed)
	return out, malformed
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
