package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition graph and reports
// every cycle — a potential deadlock. The serving tier acquires small
// mutexes in nested patterns (serve.State.foldMu over the incremental
// engine's mutex over each epoch's cache mutex); two call paths that
// take the same pair of locks in opposite orders deadlock only under
// the exact interleaving the chaos harness happens not to hit, which is
// why the rule runs at merge time instead.
//
// Mechanics: the per-package phase scans every function linearly (the
// same region model as lockedblocking), identifies each acquired lock
// by its declaration — a named struct field ("(serve.State).foldMu") or
// a package-level variable — and exports a LockOrderFact per function:
// the locks it acquires, the nested held→acquired edges, and the calls
// it makes while holding locks. The whole-module phase closes the call
// relation transitively (a function that calls another under lock
// reaches everything the callee acquires, through any chain), assembles
// the directed graph over lock identities, and reports one finding per
// cycle naming both call chains. Function-local mutexes cannot be
// shared across functions by identity, so they stay out of the graph.
//
// The lock identity is per field declaration, not per instance: two
// instances of one struct type share a graph node. Hand-over-hand
// locking of sibling instances would be a false positive — none exists
// in the repo, and the //lint:ignore escape hatch covers the pattern if
// one ever appears.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the module-wide lock-acquisition graph must be cycle-free",
	Invariant: "any two locks ever held together are acquired in one global order; " +
		"a cycle in the held→acquired graph is a latent deadlock",
	Run:       runLockOrderPackage,
	RunModule: runLockOrderModule,
}

// LockSite is one acquisition of an identified lock.
type LockSite struct {
	Key string // lock identity, e.g. "(dcfail/internal/serve.State).foldMu"
	Pos token.Pos
}

// LockEdge is a nested acquisition: To acquired while From was held.
type LockEdge struct {
	From, To string
	Pos      token.Pos
	Fn       string // function the nesting occurs in
}

// LockCall is a call made while holding locks; the callee's (transitive)
// acquisitions become edges in the module phase.
type LockCall struct {
	Held   []string
	Callee *types.Func
	Pos    token.Pos
	Fn     string
}

// LockOrderFact is the per-function lock summary exported to the module
// phase.
type LockOrderFact struct {
	Acquires []LockSite
	Edges    []LockEdge
	Calls    []LockCall
}

func (*LockOrderFact) AFact() {}

func runLockOrderPackage(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			fact := &LockOrderFact{}
			scanLockRegions(pass, fd.Body, fn.FullName(), fact)
			// Function literals inside fd run on their own schedule, but
			// locks they acquire still belong to this function's summary
			// only if invoked inline; goroutine bodies are separate. The
			// conservative choice — folding literals into the summary —
			// manufactures edges from locks held at the go statement to
			// locks the goroutine takes later, which are not deadlocks.
			// Literals are therefore scanned as their own anonymous
			// regions: their internal nesting still reaches the graph,
			// their acquisitions do not leak into the spawner's.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
					litFact := &LockOrderFact{}
					scanLockRegions(pass, lit.Body, fn.FullName()+".func", litFact)
					fact.Edges = append(fact.Edges, litFact.Edges...)
					// Calls under lock inside the literal still matter.
					fact.Calls = append(fact.Calls, litFact.Calls...)
					return false
				}
				return true
			})
			if len(fact.Acquires)+len(fact.Edges)+len(fact.Calls) > 0 {
				pass.ExportFact(fn, fact)
			}
		}
	}
}

// lockIdentity names the lock behind a mutex method receiver expression,
// or "" if it has no stable cross-function identity (a function-local
// mutex). Identities:
//
//	struct field:        "(pkgpath.Type).field"
//	package-level var:   "pkgpath.var"
//	embedded sync mutex: "(pkgpath.Type).Mutex" / ".RWMutex"
func lockIdentity(pass *Pass, recv ast.Expr) string {
	switch x := recv.(type) {
	case *ast.ParenExpr:
		return lockIdentity(pass, x.X)
	case *ast.SelectorExpr:
		obj := pass.Info.Uses[x.Sel]
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			// Selecting a package-level var through its package name.
			if v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			return ""
		}
		return fieldLockKey(pass, x, v)
	case *ast.Ident:
		obj := identObj(pass.Info, x)
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return "" // function-local mutex: no cross-function identity
	}
	return ""
}

// fieldLockKey names a struct-field lock by its owning named type. The
// owner comes from the selection's receiver type, so promoted fields
// resolve to the embedding struct's declared field.
func fieldLockKey(pass *Pass, sel *ast.SelectorExpr, field *types.Var) string {
	recvT := pass.Info.Types[sel.X].Type
	if recvT == nil {
		return ""
	}
	if named := namedOf(recvT); named != nil {
		return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Path(), named.Obj().Name(), field.Name())
	}
	// Anonymous struct: fall back to the field's own package + name.
	if field.Pkg() != nil {
		return fmt.Sprintf("(%s.?).%s", field.Pkg().Path(), field.Name())
	}
	return ""
}

// namedOf unwraps pointers to the defining named type, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			if tt.Obj().Pkg() == nil {
				return nil
			}
			return tt
		default:
			return nil
		}
	}
}

// lockMethodRecv classifies call as a sync.Mutex/RWMutex Lock/RLock/
// Unlock/RUnlock and returns the receiver expression the lock lives at.
// An embedded mutex called through its promoting struct ("s.Lock()")
// reports the struct expression; lockIdentity then keys it by the
// embedding type.
func lockMethodRecv(pass *Pass, call *ast.CallExpr) (recv ast.Expr, acquire, release bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false, false
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		return sel.X, true, false
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return sel.X, false, true
	}
	return nil, false, false
}

// embeddedLockKey adjusts the identity when the receiver expression is
// the embedding struct itself (promoted Lock): "s.Lock()" acquires the
// embedded sync.Mutex field of s's type.
func embeddedLockKey(pass *Pass, recv ast.Expr) string {
	t := pass.Info.Types[recv].Type
	if t == nil {
		return ""
	}
	named := namedOf(t)
	if named == nil {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Embedded() {
			continue
		}
		if fn := namedOf(f.Type()); fn != nil && fn.Obj().Pkg() != nil &&
			fn.Obj().Pkg().Path() == "sync" &&
			(fn.Obj().Name() == "Mutex" || fn.Obj().Name() == "RWMutex") {
			return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Path(), named.Obj().Name(), fn.Obj().Name())
		}
	}
	return ""
}

// acquiredKey resolves the lock identity of an acquire/release receiver:
// a mutex-typed expression directly, or a struct with an embedded mutex.
func acquiredKey(pass *Pass, recv ast.Expr) string {
	t := pass.Info.Types[recv].Type
	if t != nil {
		if named := namedOf(t); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			// Promoted method: the receiver is the embedding struct.
			if key := embeddedLockKey(pass, recv); key != "" {
				return key
			}
		}
	}
	return lockIdentity(pass, recv)
}

// scanLockRegions walks one function body in statement order with the
// lockedblocking region model: acquisitions push onto the held list (in
// order), releases pop, defer-release holds to function end, branch
// bodies inherit a copy of the entry state. While any lock is held,
// further acquisitions record edges and calls record LockCalls.
func scanLockRegions(pass *Pass, body *ast.BlockStmt, fnName string, fact *LockOrderFact) {
	var scan func(stmts []ast.Stmt, held []string)
	scan = func(stmts []ast.Stmt, held []string) {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if recv, acquire, release := lockMethodRecv(pass, call); acquire || release {
						key := acquiredKey(pass, recv)
						if acquire {
							if key != "" {
								fact.Acquires = append(fact.Acquires, LockSite{Key: key, Pos: call.Pos()})
								// A held→acquired pair is one edge; h == key
								// (re-acquiring a held non-reentrant mutex)
								// becomes a self-loop, itself a deadlock.
								for _, h := range held {
									fact.Edges = append(fact.Edges, LockEdge{From: h, To: key, Pos: call.Pos(), Fn: fnName})
								}
								held = append(held, key)
							}
							continue
						}
						if key != "" {
							held = removeLock(held, key)
						}
						continue
					}
				}
			case *ast.DeferStmt:
				// defer x.Unlock() holds the lock to function end; the
				// held list already carries it from the acquisition just
				// above, so there is nothing to pop. Any other deferred
				// call runs at return, outside the statement-ordered
				// region model; skip both.
				continue
			case *ast.BlockStmt:
				scan(s.List, append([]string(nil), held...))
				continue
			case *ast.IfStmt:
				scan(s.Body.List, append([]string(nil), held...))
				if s.Else != nil {
					if eb, ok := s.Else.(*ast.BlockStmt); ok {
						scan(eb.List, append([]string(nil), held...))
					} else {
						scan([]ast.Stmt{s.Else}, append([]string(nil), held...))
					}
				}
				continue
			case *ast.ForStmt:
				scan(s.Body.List, append([]string(nil), held...))
				continue
			case *ast.RangeStmt:
				scan(s.Body.List, append([]string(nil), held...))
				continue
			case *ast.SwitchStmt:
				for _, clause := range s.Body.List {
					if cc, ok := clause.(*ast.CaseClause); ok {
						scan(cc.Body, append([]string(nil), held...))
					}
				}
				continue
			case *ast.TypeSwitchStmt:
				for _, clause := range s.Body.List {
					if cc, ok := clause.(*ast.CaseClause); ok {
						scan(cc.Body, append([]string(nil), held...))
					}
				}
				continue
			case *ast.SelectStmt:
				for _, clause := range s.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						scan(cc.Body, append([]string(nil), held...))
					}
				}
				continue
			}
			if len(held) > 0 {
				recordCallsUnderLock(pass, stmt, held, fnName, fact)
			}
		}
	}
	scan(body.List, nil)
}

func removeLock(held []string, key string) []string {
	out := held[:0:len(held)]
	removed := false
	for _, h := range held {
		if !removed && h == key {
			removed = true
			continue
		}
		out = append(out, h)
	}
	return out
}

// recordCallsUnderLock records every resolvable function or method call
// inside stmt made while locks are held. Nested function literals are
// skipped (they run on their own schedule).
func recordCallsUnderLock(pass *Pass, stmt ast.Stmt, held []string, fnName string, fact *LockOrderFact) {
	inspectSkipFuncLits(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *types.Func
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			callee, _ = pass.Info.Uses[fun.Sel].(*types.Func)
		case *ast.Ident:
			callee, _ = pass.Info.Uses[fun].(*types.Func)
		}
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		fact.Calls = append(fact.Calls, LockCall{
			Held:   append([]string(nil), held...),
			Callee: callee,
			Pos:    call.Pos(),
			Fn:     fnName,
		})
		return true
	})
}

// moduleLockEdge is one graph edge with its witness.
type moduleLockEdge struct {
	from, to string
	pos      token.Pos
	via      string // human-readable witness: "fnA (direct)" or "fnA -> fnB"
}

func runLockOrderModule(pass *ModulePass) {
	// Collect per-function facts in deterministic export order.
	type fnFact struct {
		fn   *types.Func
		fact *LockOrderFact
	}
	var fnFacts []fnFact
	factOf := make(map[*types.Func]*LockOrderFact)
	for _, of := range pass.Facts.AllFacts() {
		lf, ok := of.Fact.(*LockOrderFact)
		if !ok {
			continue
		}
		fn, ok := of.Obj.(*types.Func)
		if !ok {
			continue
		}
		fnFacts = append(fnFacts, fnFact{fn: fn, fact: lf})
		factOf[fn] = lf
	}

	// Transitive acquisition closure: reaches(F) = locks F acquires
	// directly plus, through any chain of calls recorded under or out of
	// lock, locks its callees acquire. Fixpoint over the (small) summary
	// call graph.
	reaches := make(map[*types.Func]map[string]token.Pos, len(fnFacts))
	for _, ff := range fnFacts {
		m := make(map[string]token.Pos)
		for _, a := range ff.fact.Acquires {
			if _, ok := m[a.Key]; !ok {
				m[a.Key] = a.Pos
			}
		}
		reaches[ff.fn] = m
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range fnFacts {
			m := reaches[ff.fn]
			for _, c := range ff.fact.Calls {
				cm := reaches[c.Callee]
				for k := range cm {
					if _, ok := m[k]; !ok {
						m[k] = c.Pos // witness: the call site that reaches k
						changed = true
					}
				}
			}
		}
	}

	// Assemble edges: direct nesting, plus held→(callee's reach).
	var edges []moduleLockEdge
	seen := make(map[string]bool)
	add := func(e moduleLockEdge) {
		id := e.from + "\x00" + e.to
		if seen[id] {
			return
		}
		seen[id] = true
		edges = append(edges, e)
	}
	for _, ff := range fnFacts {
		for _, e := range ff.fact.Edges {
			add(moduleLockEdge{from: e.From, to: e.To, pos: e.Pos, via: e.Fn})
		}
		for _, c := range ff.fact.Calls {
			cm := reaches[c.Callee]
			if len(cm) == 0 {
				continue
			}
			keys := make([]string, 0, len(cm))
			for k := range cm {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, to := range keys {
				for _, h := range c.Held {
					if h == to {
						continue // callee re-acquiring the held lock is a
						// self-deadlock only if truly the same instance;
						// left to the direct-edge case above.
					}
					add(moduleLockEdge{from: h, to: to, pos: c.Pos, via: c.Fn + " -> " + c.Callee.FullName()})
				}
			}
		}
	}

	// Cycle detection over the lock graph. The graph is small (tens of
	// nodes); enumerate cycles by DFS from each node in sorted order and
	// canonicalize so each cycle reports once, at its first edge's
	// witness position.
	adj := make(map[string][]moduleLockEdge)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	reported := make(map[string]bool)
	for _, start := range nodes {
		var path []moduleLockEdge
		onPath := map[string]bool{start: true}
		var dfs func(cur string)
		dfs = func(cur string) {
			for _, e := range adj[cur] {
				if e.to == start {
					cycle := append(append([]moduleLockEdge(nil), path...), e)
					reportLockCycle(pass, cycle, reported)
					continue
				}
				if onPath[e.to] || e.to < start {
					// Cycles through smaller nodes were found from that
					// node's own DFS; visiting again would double-report.
					continue
				}
				onPath[e.to] = true
				path = append(path, e)
				dfs(e.to)
				path = path[:len(path)-1]
				delete(onPath, e.to)
			}
		}
		dfs(start)
	}
}

// reportLockCycle emits one diagnostic per distinct cycle, naming every
// edge's lock pair and witnessing call chain.
func reportLockCycle(pass *ModulePass, cycle []moduleLockEdge, reported map[string]bool) {
	keys := make([]string, len(cycle))
	for i, e := range cycle {
		keys[i] = e.from
	}
	id := strings.Join(keys, "\x00")
	if reported[id] {
		return
	}
	reported[id] = true

	var parts []string
	for _, e := range cycle {
		parts = append(parts, fmt.Sprintf("%s -> %s [%s at %s]", e.from, e.to, e.via, pass.Fset.Position(e.pos)))
	}
	pass.Reportf(cycle[0].pos, "lock-order cycle (potential deadlock): %s", strings.Join(parts, "; "))
}
