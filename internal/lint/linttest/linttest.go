// Package linttest is the fixture harness for dcfail's analyzers, in
// the spirit of golang.org/x/tools' analysistest but stdlib-only: a
// fixture is a small package under testdata/<rule>/ whose flagged lines
// carry `// want "substring"` comments. Run loads and type-checks the
// fixture, applies one analyzer, and fails the test on any missing,
// unexpected, or mispositioned diagnostic — so every rule is exercised
// on both firing and non-firing code.
//
// A fixture may instead be a tree of packages: when testdata/<rule>/
// holds subdirectories, each becomes one package ("fixture/<rule>/a",
// "fixture/<rule>/b", ...) and the analyzer runs over all of them as a
// module — per-package phase in dependency order, then the module
// phase. That is how the cross-package rules (lockorder, epochpub,
// goroleak's fact path) exercise facts exported by one package and
// consumed by another. Subdirectories load in sorted order, so a
// fixture package may import siblings that sort before it.
package linttest

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dcfail/internal/lint"
)

// wantRe extracts the quoted substrings of a `// want "..." "..."`
// comment.
var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one required diagnostic: a substring that must appear
// in a finding on this file:line.
type expectation struct {
	file string
	line int
	sub  string
	hit  bool
}

// Run checks one analyzer against its fixture directory.
func Run(t *testing.T, fixtureDir string, a *lint.Analyzer) {
	t.Helper()

	pkgs := loadFixture(t, fixtureDir, a.Name)
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture package %s has type errors (weakens analysis): %v", pkg.Path, terr)
		}
	}

	var expects []expectation
	for _, pkg := range pkgs {
		expects = append(expects, parseWants(t, pkg)...)
	}
	diags, malformed := lint.CheckPackages(pkgs, []*lint.Analyzer{a}, nil)
	for _, m := range malformed {
		t.Errorf("fixture %s: %s", fixtureDir, m)
	}

	firing := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		matched := false
		for i := range expects {
			e := &expects[i]
			if e.hit || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if strings.Contains(d.Message, e.sub) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
		firing++
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("missing diagnostic at %s:%d containing %q", e.file, e.line, e.sub)
		}
	}
	if len(expects) == 0 {
		t.Errorf("fixture %s has no // want expectations: the firing half of the rule is untested", fixtureDir)
	}
	if firing > 0 && !hasCleanFunc(pkgs, diags) {
		t.Errorf("fixture %s flags every function: the non-firing half of the rule is untested", fixtureDir)
	}
}

// loadFixture loads testdata/<rule> as a single package, or — when the
// directory holds subdirectories — one package per subdirectory, sorted,
// sharing a loader so cross-package imports and facts resolve.
func loadFixture(t *testing.T, fixtureDir, rule string) []*lint.Package {
	t.Helper()
	loader := lint.NewLoader()
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixtureDir, err)
	}
	var subs []string
	for _, e := range entries {
		if e.IsDir() {
			subs = append(subs, e.Name())
		}
	}
	if len(subs) == 0 {
		pkg, err := loader.LoadDir(fixtureDir, "fixture/"+rule)
		if err != nil {
			t.Fatalf("load fixture %s: %v", fixtureDir, err)
		}
		return []*lint.Package{pkg}
	}
	sort.Strings(subs)
	var pkgs []*lint.Package
	for _, sub := range subs {
		path := "fixture/" + rule + "/" + sub
		pkg, err := loader.LoadDir(filepath.Join(fixtureDir, sub), path)
		if err != nil {
			t.Fatalf("load fixture package %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// parseWants scans fixture comments for expectations.
func parseWants(t *testing.T, pkg *lint.Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					sub, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					out = append(out, expectation{file: pos.Filename, line: pos.Line, sub: sub})
				}
			}
		}
	}
	return out
}

// hasCleanFunc reports whether at least one function declaration in the
// fixture contains no diagnostic — every fixture must demonstrate
// compliant code alongside the violations.
func hasCleanFunc(pkgs []*lint.Package, diags []lint.Diagnostic) bool {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				file := pkg.Fset.Position(fd.Pos()).Filename
				start := pkg.Fset.Position(fd.Pos()).Line
				end := pkg.Fset.Position(fd.End()).Line
				hasDiag := false
				for _, d := range diags {
					if d.Pos.Filename == file && d.Pos.Line >= start && d.Pos.Line <= end {
						hasDiag = true
						break
					}
				}
				if !hasDiag {
					return true
				}
			}
		}
	}
	return false
}
