// Package lint is dcfail's zero-dependency static-analysis framework:
// a miniature go/analysis built directly on go/parser and go/types.
//
// The repo's correctness story rests on invariants no compiler checks:
//
//   - report output must be byte-identical across worker counts and
//     ticket input orders (PR 2's golden tests — broken once already by
//     map-order iteration in CorrelatedPairs);
//   - the WAL/archive durability path must fsync before rename/ack
//     (PR 1's crash-safety contract);
//   - replayable components must use injected clocks and seeded
//     randomness, never ambient time.Now or the global math/rand source.
//
// Each invariant is encoded as an Analyzer. cmd/fotlint runs the whole
// registry over the module ("make lint"); findings that are intentional
// are suppressed in place with a reasoned //lint:ignore directive (see
// ignore.go) so every exception is documented where it lives.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package through its Pass and reports findings.
type Analyzer struct {
	// Name is the rule id used in output and //lint:ignore directives.
	Name string
	// Doc is a one-line description printed by fotlint -list.
	Doc string
	// Invariant is the project rule the analyzer encodes, printed by
	// fotlint -list -v and DESIGN.md.
	Invariant string
	// Scope lists the package basenames (last import-path element) the
	// rule applies to when run over the module; empty means every
	// package. Fixture runs bypass Scope. Scope gates the per-package
	// phase only: RunModule always sees every loaded package.
	Scope []string
	// Run performs the per-package check. Packages are visited in
	// import-dependency order, so Run may export facts about this
	// package's objects and import facts of every dependency.
	Run func(*Pass)
	// RunModule, if set, runs once after every package's Run: the
	// whole-module phase. Cross-package properties — the lock-order
	// graph, stores into another package's published field — live here.
	RunModule func(*ModulePass)
}

// AppliesTo reports whether the analyzer is in scope for the package
// with the given import path.
func (a *Analyzer) AppliesTo(importPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	base := importPath
	for i := len(importPath) - 1; i >= 0; i-- {
		if importPath[i] == '/' {
			base = importPath[i+1:]
			break
		}
	}
	for _, s := range a.Scope {
		if s == base {
			return true
		}
	}
	return false
}

// Pass carries one (analyzer, package) unit of work. Analyzers read the
// syntax and type information and call Reportf.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	facts *FactStore
	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string

	// Suppressed is set by the runner when a //lint:ignore directive
	// covers the finding; Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// All returns the standard rule registry in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder, WallTime, GlobalRand, FsyncGap, LockedBlocking, Incpurity,
		LockOrder, EpochPub, GoroLeak, ErrDrop,
	}
}

// ByName resolves a rule id against the standard registry.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// --- shared syntax/type helpers used by the analyzers ---

// pkgFunc resolves call targets and value references of the form
// pkg.Name where pkg is an imported package: it returns the imported
// package path and selected identifier. ok is false for method calls,
// locals, and unresolved expressions.
func pkgFunc(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// funcFullName returns the types.Func full name ("(*sync.Mutex).Lock",
// "time.Now") of the selected object, or "".
func funcFullName(info *types.Info, sel *ast.SelectorExpr) string {
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// identObj returns the object an identifier denotes (uses or defs).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// mentionsObject reports whether any identifier under n denotes obj.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcBodies yields every function body in the file exactly once:
// declarations and top-level function literals are visited as separate
// regions, and literals nested inside a declaration are reported with
// their enclosing body (analyzers that need literal-free traversal use
// inspectSkipFuncLits).
func funcBodies(file *ast.File, visit func(*ast.BlockStmt)) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				visit(d.Body)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					if lit, ok := v.(*ast.FuncLit); ok && lit.Body != nil {
						visit(lit.Body)
					}
				}
			}
		}
	}
}

// inspectSkipFuncLits walks n without descending into nested function
// literals — for analyses where a literal's body executes on its own
// schedule, not inline.
func inspectSkipFuncLits(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return f(c)
		}
		if _, isLit := c.(*ast.FuncLit); isLit {
			return false
		}
		return f(c)
	})
}
