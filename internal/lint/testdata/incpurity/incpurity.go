// Fixture for the incpurity analyzer: incremental Update functions must
// never write through their prev state, and must not fold map iteration
// order into carried state.
package fixture

import "sort"

// SectionState mirrors the engine's state interface: the analyzer keys
// on the type name, exactly as core declares it.
type SectionState any

// Index stands in for *fot.TraceIndex; its identity is irrelevant to
// the rule.
type Index struct{}

type state struct {
	count  int
	byHost map[string]int
	hosts  []string
	gaps   []float64
}

func (st *state) clone() *state {
	next := &state{count: st.count, byHost: st.byHost}
	next.hosts = append([]string(nil), st.hosts...)
	next.gaps = append([]float64(nil), st.gaps...)
	return next
}

// updateMutatesPrev is the bug class: a snapshot holding prev may be
// mid-render while these writes land.
func updateMutatesPrev(prev SectionState, ix *Index, newRows []int32) (SectionState, error) {
	st, _ := prev.(*state)
	st.count++              // want "mutates prev state"
	st.byHost["h1"] = 1     // want "mutates prev state"
	st.gaps = nil           // want "mutates prev state"
	delete(st.byHost, "h2") // want "mutates prev state"
	st.hosts[0] = "rebound" // want "mutates prev state"
	return st, nil
}

// updateMutatesParamDirectly writes through the parameter itself after a
// bare rebinding alias.
func updateMutatesParamDirectly(prev SectionState, ix *Index, newRows []int32) (SectionState, error) {
	alias := prev
	st := alias.(*state)
	st.count += len(newRows) // want "mutates prev state"
	return prev, nil
}

// updateClones is the blessed idiom: assert, clone, write through the
// clone only. Rebinding the alias identifier itself writes no shared
// memory.
func updateClones(prev SectionState, ix *Index, newRows []int32) (SectionState, error) {
	st, _ := prev.(*state)
	if st == nil {
		st = &state{byHost: map[string]int{}}
		return st, nil
	}
	next := st.clone()
	next.count += len(newRows)
	next.byHost["h"] = next.count
	st = nil
	_ = st
	return next, nil
}

// updateMapOrderIntoState folds the map's random iteration order into a
// carried slice: every future render replays it.
func updateMapOrderIntoState(prev SectionState, ix *Index, newRows []int32) (SectionState, error) {
	st, _ := prev.(*state)
	next := st.clone()
	for h := range next.byHost {
		next.hosts = append(next.hosts, h) // want "no later sort"
	}
	return next, nil
}

// updateMapOrderSorted launders the order out before it is carried.
func updateMapOrderSorted(prev SectionState, ix *Index, newRows []int32) (SectionState, error) {
	st, _ := prev.(*state)
	next := st.clone()
	next.hosts = next.hosts[:0]
	for h := range next.byHost {
		next.hosts = append(next.hosts, h)
	}
	sort.Strings(next.hosts)
	return next, nil
}

// accumulate is not an Update implementation — same mutations, different
// shape — so the rule stays out of its way.
func accumulate(st *state, rows []int32) {
	st.count += len(rows)
	st.byHost["h"] = st.count
	delete(st.byHost, "old")
}
