// Fixture for the maporder analyzer: map iteration order must never
// reach a slice, stream, or channel unsorted.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// collectUnsorted is the CorrelatedPairs bug class: the keys slice
// inherits the map's random iteration order.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "no later sort"
	}
	return keys
}

// collectSorted is the canonical fix: collect, then sort.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectSortSlice sorts aggregates through sort.Slice.
func collectSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// dump streams key=value lines straight out of the loop.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "nondeterministic order"
	}
}

// dumpBuilder leaks order through a Write-family method.
func dumpBuilder(sb io.StringWriter, m map[string]bool) {
	for k := range m {
		sb.WriteString(k) // want "nondeterministic order"
	}
}

// stream sends keys to a channel in map order.
func stream(ch chan<- string, m map[string]bool) {
	for k := range m {
		ch <- k // want "channel send inside range over map"
	}
}

// invert writes into a map keyed by the loop variable: order-free.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// total folds commutatively: order-free.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// sliceAppend ranges over a slice, not a map: out of the rule's reach.
func sliceAppend(in []string) []string {
	var out []string
	for _, s := range in {
		out = append(out, s)
	}
	return out
}

// innerScratch appends to a loop-local slice that dies each iteration:
// nothing outlives the loop, so no order leaks.
func innerScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		tmp := make([]int, 0, len(vs))
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}
