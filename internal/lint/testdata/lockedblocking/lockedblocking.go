// Fixture for the lockedblocking analyzer: locks protect in-memory
// state only; blocking calls happen outside the critical section.
package fixture

import (
	"net"
	"sync"
	"time"
)

type guarded struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	n    int
}

// slowBump sleeps inside the critical section.
func (g *guarded) slowBump() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while g.mu is held"
	g.n++
	g.mu.Unlock()
}

// send writes to the network under a deferred unlock.
func (g *guarded) send(b []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, err := g.conn.Write(b) // want "while g.mu is held"
	return err
}

// dialUnderRead dials while holding the read lock.
func (g *guarded) dialUnderRead() (net.Conn, error) {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return net.Dial("tcp", "localhost:1") // want "net.Dial while g.rw is held"
}

// branchIO blocks inside a branch entered with the lock held.
func (g *guarded) branchIO(b []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n > 0 {
		g.conn.Write(b) // want "while g.mu is held"
	}
}

// sendUnlocked is the fix: copy state out, unlock, then do I/O.
func (g *guarded) sendUnlocked(b []byte) error {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	_ = n
	_, err := g.conn.Write(b)
	return err
}

// spawn starts a goroutine while locked; the literal's body runs on its
// own schedule and is analyzed as its own (lock-free) region.
func (g *guarded) spawn() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	g.n++
}

// compute holds the lock for memory work only.
func (g *guarded) compute() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n * 2
}
