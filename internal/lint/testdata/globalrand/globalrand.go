// Fixture for the globalrand analyzer: generator packages draw from an
// explicitly seeded *rand.Rand, never the process-global source.
package fixture

import "math/rand"

// roll draws from the global source: two runs with the same profile
// seed diverge.
func roll() int {
	return rand.Intn(6) // want "global math/rand source"
}

// jitter does too, as a float.
func jitter() float64 {
	return rand.Float64() // want "global math/rand source"
}

// shuffle reorders through the global source.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand source"
}

// seeded builds and uses an explicit source: the constructors are the
// fix, not the bug.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// threaded receives the seeded source as a parameter; the *rand.Rand
// type reference itself is not a draw.
func threaded(r *rand.Rand, xs []int) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
