// Fixture for the walltime analyzer: deterministic packages take an
// injected clock instead of reading the ambient one.
package fixture

import "time"

type daemon struct {
	now func() time.Time
}

// stamp reads the wall clock directly.
func stamp() time.Time {
	return time.Now() // want "time.Now"
}

// age computes elapsed time off the ambient clock.
func age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since"
}

// deadline does too, via Until.
func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until"
}

// defaultClock smuggles the ambient clock in as a value, not a call.
func defaultClock(d *daemon) {
	d.now = time.Now // want "time.Now"
}

// injected is the fix: all timestamps come from the daemon's clock.
func injected(d *daemon) time.Time {
	return d.now()
}

// paced uses a ticker for scheduling, which the rule deliberately
// allows: the invariant is about timestamps in state and output.
func paced(interval time.Duration) *time.Ticker {
	return time.NewTicker(interval)
}
