// Package b closes a lock cycle across the package boundary: Refresh
// holds Cache.mu while calling a.Store.Flush (whose fact says it takes
// Store.Mu), and Evict holds Store.Mu while taking Cache.mu — opposite
// orders, visible only with both packages' facts on the table.
package b

import (
	"sync"

	"fixture/lockorder/a"
)

type Cache struct {
	mu sync.Mutex
	st *a.Store
}

// Refresh: Cache.mu -> Store.Mu, through the call to Flush.
func (c *Cache) Refresh() {
	c.mu.Lock()
	c.st.Flush()
	c.mu.Unlock()
}

// Evict: Store.Mu -> Cache.mu, directly.
func (c *Cache) Evict() {
	c.st.Mu.Lock()
	c.mu.Lock() // want "lock-order cycle"
	c.mu.Unlock()
	c.st.Mu.Unlock()
}

// Peek takes only its own lock: not part of any cycle.
func (c *Cache) Peek() {
	c.mu.Lock()
	c.mu.Unlock()
}
