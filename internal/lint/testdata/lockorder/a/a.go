// Package a seeds the lock graph: an in-package two-mutex cycle on
// Pair, and a Store whose Flush acquires locks that package b nests
// under its own — the fact consumed across the package boundary.
package a

import "sync"

// Pair takes its two mutexes in opposite orders on two paths: the
// classic AB/BA deadlock.
type Pair struct {
	A sync.Mutex
	B sync.Mutex
}

func (p *Pair) LockAB() {
	p.A.Lock()
	p.B.Lock() // want "lock-order cycle"
	p.B.Unlock()
	p.A.Unlock()
}

func (p *Pair) LockBA() {
	p.B.Lock()
	p.A.Lock()
	p.A.Unlock()
	p.B.Unlock()
}

// Store nests inner under Mu consistently — no cycle from this package
// alone; package b closes the loop through Flush's exported fact.
type Store struct {
	Mu    sync.Mutex
	inner sync.Mutex
}

func (s *Store) Flush() {
	s.Mu.Lock()
	s.inner.Lock()
	s.inner.Unlock()
	s.Mu.Unlock()
}

// Drain takes inner alone: a single lock is never an edge.
func (s *Store) Drain() {
	s.inner.Lock()
	s.inner.Unlock()
}
