// Package b stores into a.State's epoch pointer from outside the
// owning package — caught by the module phase through the exported
// fact, which a per-package pass could never see.
package b

import (
	"sync/atomic"

	"fixture/epochpub/a"
)

func Hijack(st *a.State, snap *a.Snapshot) {
	st.Cur.Store(snap) // want "stored outside its publish method"
}

func Tear(st *a.State) {
	st.Cur = atomic.Pointer[a.Snapshot]{} // want "non-atomic write to epoch pointer"
}

// ViaPublisher routes through the protocol: clean.
func ViaPublisher(st *a.State, snap *a.Snapshot) {
	st.Publish(snap)
}
