// Package a declares an epoch-publication protocol: State has a
// Publish method, so its atomic.Pointer fields are epoch pointers and
// may be stored only there.
package a

import "sync/atomic"

type Snapshot struct {
	Epoch int
}

type State struct {
	Cur atomic.Pointer[Snapshot]
}

// Publish is the designated publisher: the one legal Store.
func (s *State) Publish(next *Snapshot) {
	s.Cur.Store(next)
}

// Reset stores outside the publisher — a torn epoch waiting to happen.
func (s *State) Reset() {
	s.Cur.Store(nil) // want "stored outside its publish method"
}

// Load is a read: always fine.
func (s *State) Load() *Snapshot {
	return s.Cur.Load()
}

// Scratch has no publish method, so its pointer is unconstrained.
type Scratch struct {
	P atomic.Pointer[Snapshot]
}

func (s *Scratch) Set(v *Snapshot) {
	s.P.Store(v)
}
