// Fixture for //lint:ignore edge cases: a directive deep inside nested
// blocks, one directive naming several rules, block-scoping limits, and
// a directive on the file's last line (see below).
package fixture

import (
	"math/rand"
	"time"
)

// nested carries its directive inside a doubly-nested block: position,
// not block depth, decides coverage.
func nested(cond bool) time.Time {
	if cond {
		for i := 0; i < 3; i++ {
			//lint:ignore walltime deep nesting must not hide the directive
			_ = time.Now()
		}
	}
	// The directive above covers only its own and the next line: this
	// call stays a live finding.
	return time.Now()
}

// multiRule suppresses two rules' findings on one line with a single
// comma-separated directive.
func multiRule() int64 {
	//lint:ignore walltime,globalrand seeded replay fixture needs both on one line
	return time.Now().UnixNano() + int64(rand.Intn(3))
}

// lastLine sits on the file's final line with a same-line directive:
// nothing follows it, and suppression must still apply.
func lastLine() time.Time { return time.Now() } //lint:ignore walltime directive on the final line of the file
