// Fixture for the fsyncgap analyzer: written files fsync before close
// on the durability path.
package fixture

import (
	"fmt"
	"io"
	"os"
)

type segment struct {
	f *os.File
}

// writeNoSync loses acked data on crash: written, closed, never synced.
func writeNoSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close() // want "never Synced"
}

// writeSynced is the durable shape: write, Sync, Close.
func writeSynced(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// appendLine writes through fmt with a deferred close and no sync.
func appendLine(path, msg string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "never Synced"
	_, err = fmt.Fprintln(f, msg)
	return err
}

// sidecar goes through os.WriteFile, which never syncs.
func sidecar(path string, raw []byte) error {
	return os.WriteFile(path, raw, 0o644) // want "os.WriteFile never fsyncs"
}

// readAll opens read-only: nothing to sync.
func readAll(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// openSegment hands the written handle to its owner, who syncs at roll
// time: the obligation moves with the file.
func openSegment(s *segment, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("hdr\n")); err != nil {
		return err
	}
	s.f = f
	return nil
}

// openReturn passes the handle back to the caller.
func openReturn(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte("hdr\n")); err != nil {
		return nil, err
	}
	return f, nil
}
