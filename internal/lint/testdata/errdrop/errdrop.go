// Package errdrop exercises the durability families: os.File,
// bufio.Writer, the os package calls, and module-local types whose
// Sync/Flush/Close/Write/Append/Commit errors carry the crash-safety
// story.
package errdrop

import (
	"bufio"
	"os"
)

// Log stands in for the WAL: a module-local durability type.
type Log struct{}

func (l *Log) Sync() error                  { return nil }
func (l *Log) Close() error                 { return nil }
func (l *Log) Append(b []byte) (int, error) { return len(b), nil }

func drops(f *os.File, w *bufio.Writer, lg *Log) {
	f.Sync()              // want "error discarded on a durability path"
	_ = f.Close()         // want "error assigned to _ on a durability path"
	w.Flush()             // want "error discarded on a durability path"
	lg.Sync()             // want "error discarded on a durability path"
	_, _ = lg.Append(nil) // want "error assigned to _ on a durability path"
	os.Rename("a", "b")   // want "error discarded on a durability path"
}

// handles propagates every error: clean.
func handles(f *os.File, lg *Log) error {
	if err := f.Sync(); err != nil {
		return err
	}
	n, err := lg.Append(nil)
	if err != nil || n == 0 {
		return err
	}
	return lg.Close()
}

// deferred closes are exempt: the read path's idiom, and fsyncgap owns
// the written-file case.
func deferred(f *os.File) {
	defer f.Close()
}

// suppressed drops on purpose, with the reason written down.
func suppressed(lg *Log) {
	//lint:ignore errdrop best-effort cleanup of an already-failed log
	lg.Close()
}
