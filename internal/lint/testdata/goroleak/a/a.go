// Package a exports the hazard: Spin loops forever with no stop
// signal, so spawning it leaks a goroutine. Looper parks on its done
// channel each iteration and is safe to spawn.
package a

func Spin() {
	for {
		work()
	}
}

func Looper(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
			work()
		}
	}
}

func work() {}
