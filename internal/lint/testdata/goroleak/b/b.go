// Package b spawns package a's functions: the stop-less one is a
// finding resolved through a's exported SpawnHazardFact; the others
// demonstrate each accepted stop shape.
package b

import (
	"sync"

	"fixture/goroleak/a"
)

func SpawnBad() {
	go a.Spin() // want "loops forever with no stop path"
}

func SpawnLitBad(tick chan int) {
	go func() { // want "loops forever with no stop path"
		for {
			<-tick
		}
	}()
}

// SpawnWithDone selects on a done channel each iteration: clean.
func SpawnWithDone(done chan struct{}, tick chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case <-tick:
			}
		}
	}()
}

// SpawnJoined is WaitGroup-joined: some Close owns its lifetime.
func SpawnJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go a.Spin()
}

// SpawnOK spawns the function that honors its done channel.
func SpawnOK(done chan struct{}) {
	go a.Looper(done)
}

// SpawnRange ranges a channel: the sender's close ends the loop.
func SpawnRange(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// SpawnBounded runs a conditional loop: bounded, clean.
func SpawnBounded() {
	go func() {
		for i := 0; i < 10; i++ {
		}
	}()
}
