// Fixture for //lint:ignore handling: suppressed findings carry their
// reason, malformed directives are themselves reported.
package fixture

import "time"

type clock struct {
	now func() time.Time
}

// defaultClock is a legitimate injection-point default, suppressed with
// a reasoned directive on the line above.
func defaultClock(c *clock) {
	//lint:ignore walltime injection-point default; callers override Now for determinism
	c.now = time.Now
}

// sameLine demonstrates a directive riding the flagged statement.
func sameLine() time.Time {
	return time.Now() //lint:ignore walltime fixture demonstrates same-line suppression
}

// missingReason has a directive with no justification: the directive is
// malformed and the finding stays live.
func missingReason() time.Time {
	//lint:ignore walltime
	return time.Now()
}

// unknownRule names a rule that does not exist: reported, not silently
// inert.
func unknownRule() time.Time {
	//lint:ignore nosuchrule the rule name has a typo
	return time.Now()
}

// missingEverything is the degenerate malformed case.
func missingEverything() time.Time {
	//lint:ignore
	return time.Now()
}

// clean uses the injected clock: nothing to suppress.
func clean(c *clock) time.Time {
	return c.now()
}
