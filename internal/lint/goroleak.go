package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every goroutine spawned in a long-lived package to
// have a shutdown path. The serving tier's processes run for weeks; a
// goroutine whose only loop can never observe a stop signal outlives
// its owner's Close, keeps its captures reachable forever, and — when
// the loop polls — keeps burning a core after the component is gone.
// PR 6's router health prober and PR 1's collector accept loop both got
// this right by hand (select on a closing channel, WaitGroup-joined
// Close); this rule makes the pattern a checked contract before the
// ROADMAP's sharding work multiplies the goroutine count.
//
// The check is shape-based. A `go` statement is a finding when the
// spawned body contains an unconditional `for {}` loop none of whose
// iterations can exit through a stop signal, and the spawn is not
// WaitGroup-joined. Accepted stop shapes, per loop:
//
//   - a select case that receives and then returns or breaks
//     (`case <-done: return`, `case <-ctx.Done(): return`);
//   - a plain receive somewhere in the loop paired with a return/break
//     (`if _, ok := <-ch; !ok { return }`);
//   - ranging over a channel (the loop ends when the sender closes it).
//
// Conditional loops (`for cond {}`, `for range slice`) are bounded or
// caller-terminated and pass. A spawn preceded by wg.Add in the same
// function also passes: the WaitGroup join means some Close/Stop owns
// the goroutine's lifetime (severing a connection it blocks on, say) —
// a contract the region model cannot see but the join makes explicit.
//
// Cross-package and cross-function spawns resolve through facts: the
// per-package phase exports a SpawnHazardFact for every function whose
// own body contains a stop-less unconditional loop; a `go pkg.F(...)`
// consults F's fact (dependency order guarantees it exists by then).
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines in long-lived packages must have a stop path (done channel, context, or WaitGroup join)",
	Invariant: "every unconditional loop in a spawned goroutine can observe a stop signal, " +
		"or the spawn is WaitGroup-joined so Close/Stop owns its lifetime",
	Scope: []string{"serve", "replica", "router", "fmsnet", "archive", "wal", "predict"},
	Run:   runGoroLeak,
}

// SpawnHazardFact marks a function whose body loops forever without a
// stop signal: spawning it as a goroutine leaks it.
type SpawnHazardFact struct{}

func (*SpawnHazardFact) AFact() {}

func runGoroLeak(pass *Pass) {
	// Phase A: export hazard facts for this package's functions, and
	// remember local bodies so same-package spawns resolve directly.
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			bodies[fn] = fd.Body
			if hasStoplessLoop(pass, fd.Body) {
				pass.ExportFact(fn, &SpawnHazardFact{})
			}
		}
	}

	// Phase B: check every go statement.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkGoStmts(pass, fd.Body, bodies)
			return false
		})
	}
}

// checkGoStmts walks one function body flagging leaky go statements.
// wgAdded tracks whether a WaitGroup Add call has been seen earlier in
// the same body — the join discipline that exempts a spawn.
func checkGoStmts(pass *Pass, body *ast.BlockStmt, bodies map[*types.Func]*ast.BlockStmt) {
	wgAddPos := collectWaitGroupAdds(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if precededByAdd(wgAddPos, gs) {
			return true
		}
		switch fun := gs.Call.Fun.(type) {
		case *ast.FuncLit:
			if fun.Body != nil && hasStoplessLoop(pass, fun.Body) {
				pass.Reportf(gs.Pos(), "goroutine loops forever with no stop path: select on a done channel/context or join it with a WaitGroup-backed Close")
			}
		default:
			var callee *types.Func
			switch f := gs.Call.Fun.(type) {
			case *ast.SelectorExpr:
				callee, _ = pass.Info.Uses[f.Sel].(*types.Func)
			case *ast.Ident:
				callee, _ = pass.Info.Uses[f].(*types.Func)
			}
			if callee == nil {
				return true
			}
			if b, ok := bodies[callee]; ok {
				if hasStoplessLoop(pass, b) {
					pass.Reportf(gs.Pos(), "goroutine %s loops forever with no stop path: select on a done channel/context or join it with a WaitGroup-backed Close", callee.Name())
				}
				return true
			}
			for _, f := range pass.FactsOf(callee) {
				if _, ok := f.(*SpawnHazardFact); ok {
					pass.Reportf(gs.Pos(), "goroutine %s loops forever with no stop path: select on a done channel/context or join it with a WaitGroup-backed Close", callee.FullName())
				}
			}
		}
		return true
	})
}

// collectWaitGroupAdds records the positions of (*sync.WaitGroup).Add
// calls in body (outside nested literals).
func collectWaitGroupAdds(pass *Pass, body *ast.BlockStmt) []int {
	var out []int
	inspectSkipFuncLits(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if funcFullName(pass.Info, sel) == "(*sync.WaitGroup).Add" {
				out = append(out, int(call.Pos()))
			}
		}
		return true
	})
	return out
}

func precededByAdd(addPos []int, gs *ast.GoStmt) bool {
	for _, p := range addPos {
		if p < int(gs.Pos()) {
			return true
		}
	}
	return false
}

// hasStoplessLoop reports whether body contains an unconditional for
// loop with no stop signal. Nested function literals are separate
// schedules and are not descended into.
func hasStoplessLoop(pass *Pass, body *ast.BlockStmt) bool {
	hazard := false
	inspectSkipFuncLits(body, func(n ast.Node) bool {
		if hazard {
			return false
		}
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		if !loopHasStopSignal(pass, fs.Body) {
			hazard = true
			return false
		}
		return true
	})
	return hazard
}

// loopHasStopSignal scans one unconditional loop body for an accepted
// stop shape.
func loopHasStopSignal(pass *Pass, body *ast.BlockStmt) bool {
	stop := false
	sawRecv := false
	sawExit := false
	inspectSkipFuncLits(body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt:
			for _, clause := range x.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || !commIsReceive(cc) {
					continue
				}
				if bodyExits(cc.Body) {
					stop = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				sawRecv = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[x.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					// Ranging a channel inside the loop still parks the
					// iteration on a close-able signal.
					sawRecv = true
				}
			}
		case *ast.ReturnStmt:
			sawExit = true
		case *ast.BranchStmt:
			if x.Tok == token.BREAK {
				sawExit = true
			}
		}
		return true
	})
	return stop || (sawRecv && sawExit)
}

// commIsReceive reports whether a select clause receives (rather than
// sends or is the default case).
func commIsReceive(cc *ast.CommClause) bool {
	switch s := cc.Comm.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := s.Rhs[0].(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

// bodyExits reports whether a statement list contains a return or break.
func bodyExits(stmts []ast.Stmt) bool {
	exits := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if exits {
				return false
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
			case *ast.BranchStmt:
				if x.Tok == token.BREAK {
					exits = true
				}
			}
			return !exits
		})
		if exits {
			return true
		}
	}
	return false
}
