package core

import (
	"fmt"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// tbfFloorMinutes replaces zero gaps (same-timestamp batch tickets) before
// parametric fitting: the fitted families have positive support. One
// second keeps the batch signature (a huge spike of tiny TBFs) visible to
// the tests without breaking the MLE.
const tbfFloorMinutes = 1.0 / 60

const (
	tbfFitBinsScope = 30
	tbfFitBinsLine  = 20
)

// TBFResult reproduces Fig. 5 for one scope (all components, one class,
// or one product line) and carries the Hypothesis 3/4 verdicts.
type TBFResult struct {
	Scope string
	N     int // number of gaps
	// MTBFMinutes is the mean time between failures (paper: 6.8 minutes
	// fleet-wide at full scale).
	MTBFMinutes   float64
	MedianMinutes float64
	// Fits holds the MLE fit + chi-square verdict for exponential,
	// Weibull, gamma and lognormal (paper §II-B procedure). Hypotheses
	// 3/4 are rejected when every family's test rejects.
	Fits []stats.FitReport
	// BestFamily names the least-bad family by AIC — even when every
	// family is rejected (as in Fig. 5), one curve hugs the data closest.
	BestFamily string
	// CDF is the empirical distribution, subsampled for plotting
	// (Fig. 5's data series).
	CDF []stats.Point
	// PerIDCMTBF is the per-datacenter MTBF in minutes (paper: 32–390
	// minutes across facilities).
	PerIDCMTBF map[string]float64
}

// AllRejected reports whether every successful fit is rejected at the
// significance level — the paper's "none of the distributions fits" claim.
func (r *TBFResult) AllRejected(alpha float64) bool {
	fitted := 0
	for _, f := range r.Fits {
		if f.Err != nil {
			continue
		}
		fitted++
		if !f.Test.Reject(alpha) {
			return false
		}
	}
	return fitted > 0
}

// tbfGaps builds the consecutive-gap series (minutes) of time-ordered
// rows straight off the TimeNS column.
func tbfGaps(cols *fot.Columns, rows []int32) []float64 {
	if len(rows) < 2 {
		return nil
	}
	out := make([]float64, len(rows)-1)
	for i := 1; i < len(rows); i++ {
		out[i-1] = time.Duration(cols.TimeNS[rows[i]] - cols.TimeNS[rows[i-1]]).Minutes()
	}
	return out
}

// floorAndFit runs the shared TBF pipeline for one scope: floor zero
// gaps, then summarize and fit every family. It mutates gaps in place —
// callers handing over a cached slice must copy first.
func floorAndFit(scope string, gaps []float64, bins int) *TBFResult {
	for i, g := range gaps {
		if g < tbfFloorMinutes {
			gaps[i] = tbfFloorMinutes
		}
	}
	return &TBFResult{
		Scope:         scope,
		N:             len(gaps),
		MTBFMinutes:   stats.Mean(gaps),
		MedianMinutes: stats.Median(gaps),
		Fits:          stats.FitAll(gaps, bins),
	}
}

// TBFAnalysis computes the Fig. 5 analysis. Pass component 0 for the
// all-components scope (Hypothesis 3); a specific class gives the
// Hypothesis 4 per-class variant.
func TBFAnalysis(tr *fot.Trace, c fot.Component) (*TBFResult, error) {
	return TBFAnalysisIndexed(fot.BorrowTraceIndex(tr), c)
}

// tbfMemo is the memoized (result, error) pair; the result is shared
// between sections and must not be mutated.
type tbfMemo struct {
	res *TBFResult
	err error
}

// TBFAnalysisIndexed is TBFAnalysis over a shared TraceIndex. The MLE
// fits dominate its cost, so the result is memoized per (index,
// component): the hypotheses section and Fig. 5 share one computation.
func TBFAnalysisIndexed(ix *fot.TraceIndex, c fot.Component) (*TBFResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	m := ix.Memo(fmt.Sprintf("core.tbf.%d", int(c)), func() any {
		res, err := tbfAnalysisUncached(ix, c)
		return tbfMemo{res, err}
	}).(tbfMemo)
	return m.res, m.err
}

func tbfAnalysisUncached(ix *fot.TraceIndex, c fot.Component) (*TBFResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	cols := ix.Cols()
	scope := "all"
	var gaps []float64
	var scopeRows []int32
	if c != 0 {
		scopeRows = ix.FailureRowsByComponent(c)
		scope = c.String()
		if len(scopeRows) < 16 {
			return nil, errNoTickets("component", c.String())
		}
		gaps = tbfGaps(cols, scopeRows)
	} else {
		scopeRows = ix.FailureRows()
		gaps = append([]float64(nil), ix.FailureTBF()...)
	}
	if len(gaps) < 16 {
		return nil, errNoTickets("scope", scope)
	}
	res := floorAndFit(scope, gaps, tbfFitBinsScope)
	res.CDF = stats.NewECDF(gaps).Points(256)
	res.PerIDCMTBF = make(map[string]float64)
	if ranked := stats.RankFitsByAIC(gaps, res.Fits); len(ranked) > 0 && ranked[0].Err == nil {
		res.BestFamily = ranked[0].Dist.Name()
	}
	// Bucket the scope's rows by IDC symbol; each bucket is already
	// time-ordered, so its gap series falls straight out.
	idcRows := make([][]int32, cols.IDCCount())
	for _, r := range scopeRows {
		sym := cols.IDCSym[r]
		idcRows[sym] = append(idcRows[sym], r)
	}
	for sym, rows := range idcRows {
		g := tbfGaps(cols, rows)
		if len(g) < 2 {
			continue
		}
		if idc := cols.IDCName(uint32(sym)); idc != "" {
			res.PerIDCMTBF[idc] = stats.Mean(g)
		}
	}
	return res, nil
}

// TBFByProductLine runs the Hypothesis 4 product-line breakdown: the TBF
// analysis for each line with at least minTickets failures.
func TBFByProductLine(tr *fot.Trace, minTickets int) (map[string]*TBFResult, error) {
	return TBFByProductLineIndexed(fot.BorrowTraceIndex(tr), minTickets)
}

// TBFByProductLineIndexed is TBFByProductLine over a shared TraceIndex.
func TBFByProductLineIndexed(ix *fot.TraceIndex, minTickets int) (map[string]*TBFResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	cols := ix.Cols()
	out := make(map[string]*TBFResult)
	for _, line := range ix.FailureProductLines() {
		rows := ix.FailureRowsByProductLine(line)
		if len(rows) < minTickets {
			continue
		}
		gaps := tbfGaps(cols, rows)
		if len(gaps) < 16 {
			continue
		}
		out[line] = floorAndFit("line:"+line, gaps, tbfFitBinsLine)
	}
	if len(out) == 0 {
		return nil, errNoTickets("product lines with", "enough tickets")
	}
	return out, nil
}
