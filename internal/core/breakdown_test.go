package core

import (
	"math"
	"testing"

	"dcfail/internal/fot"
)

func TestCategoryBreakdownTableI(t *testing.T) {
	res, _ := fixture(t)
	br, err := CategoryBreakdown(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if br.Total != res.Trace.Len() {
		t.Errorf("total %d != trace %d", br.Total, res.Trace.Len())
	}
	if len(br.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(br.Rows))
	}
	sum := 0.0
	byCat := map[fot.Category]CategoryShare{}
	for _, row := range br.Rows {
		sum += row.Fraction
		byCat[row.Category] = row
		if row.Decision == "" {
			t.Errorf("%v: missing decision text", row.Category)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", sum)
	}
	// Table I ordering: fixing > error > false alarm.
	if !(byCat[fot.Fixing].Fraction > byCat[fot.Error].Fraction) {
		t.Error("fixing should dominate error")
	}
	if !(byCat[fot.Error].Fraction > byCat[fot.FalseAlarm].Fraction) {
		t.Error("error should dominate false alarms")
	}
	// "The false alarm rate is extremely low."
	if byCat[fot.FalseAlarm].Fraction > 0.03 {
		t.Errorf("false alarm fraction %.3f too high", byCat[fot.FalseAlarm].Fraction)
	}
	// "Over 1/4 of the failures are in out-of-warranty hardware."
	if byCat[fot.Error].Fraction < 0.10 {
		t.Errorf("error fraction %.3f implausibly low", byCat[fot.Error].Fraction)
	}
}

func TestComponentBreakdownTableII(t *testing.T) {
	res, _ := fixture(t)
	br, err := ComponentBreakdown(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	// CPU (0.04% share ⇒ ~3 expected tickets at small scale) may draw a
	// Poisson zero; all other classes must be present.
	if len(br.Rows) < len(fot.Components())-1 {
		t.Fatalf("want >= %d classes, got %d", len(fot.Components())-1, len(br.Rows))
	}
	// Rows sorted descending; HDD first and dominant; misc second.
	if br.Rows[0].Component != fot.HDD {
		t.Fatalf("top class = %v, want HDD", br.Rows[0].Component)
	}
	if br.Rows[0].Fraction < 0.65 || br.Rows[0].Fraction > 0.92 {
		t.Errorf("HDD share %.3f, want ≈0.82", br.Rows[0].Fraction)
	}
	if br.Rows[1].Component != fot.Misc {
		t.Errorf("second class = %v, want misc", br.Rows[1].Component)
	}
	for i := 1; i < len(br.Rows); i++ {
		if br.Rows[i].Fraction > br.Rows[i-1].Fraction {
			t.Fatal("rows not sorted by share")
		}
	}
	sum := 0.0
	for _, row := range br.Rows {
		sum += row.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", sum)
	}
}

func TestComponentBreakdownExcludesFalseAlarms(t *testing.T) {
	res, _ := fixture(t)
	br, err := ComponentBreakdown(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if br.Total != res.Trace.Failures().Len() {
		t.Errorf("total %d should exclude false alarms (%d failures)",
			br.Total, res.Trace.Failures().Len())
	}
}

func TestTypeBreakdownFig2(t *testing.T) {
	res, _ := fixture(t)
	for _, c := range []fot.Component{fot.HDD, fot.RAIDCard, fot.FlashCard, fot.Memory} {
		br, err := TypeBreakdown(res.Trace, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		sum := 0.0
		for i, row := range br.Rows {
			sum += row.Fraction
			if _, ok := fot.LookupType(c, row.Type); !ok {
				t.Errorf("%v: unknown type %s in breakdown", c, row.Type)
			}
			if i > 0 && row.Count > br.Rows[i-1].Count {
				t.Errorf("%v: rows not sorted", c)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: fractions sum to %g", c, sum)
		}
	}
	// HDD's dominant type is SMARTFail (Fig. 2a).
	br, err := TypeBreakdown(res.Trace, fot.HDD)
	if err != nil {
		t.Fatal(err)
	}
	if br.Rows[0].Type != "SMARTFail" {
		t.Errorf("HDD top type = %s, want SMARTFail", br.Rows[0].Type)
	}
	// Memory splits into DIMMCE/DIMMUE with CE dominating (Fig. 2d).
	br, err = TypeBreakdown(res.Trace, fot.Memory)
	if err != nil {
		t.Fatal(err)
	}
	if br.Rows[0].Type != "DIMMCE" {
		t.Errorf("memory top type = %s, want DIMMCE", br.Rows[0].Type)
	}
}

func TestTypeBreakdownUnknownComponent(t *testing.T) {
	res, _ := fixture(t)
	// CPU failures are the rarest (0.04%) but should still be present at
	// small scale thanks to the calibration floor; an absent class errors.
	if _, err := TypeBreakdown(res.Trace.ByComponent(fot.HDD), fot.Memory); err == nil {
		t.Error("breakdown on filtered-out class should fail")
	}
}
