package core

import (
	"fmt"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// HypothesisVerdict is one tested hypothesis with its outcome.
type HypothesisVerdict struct {
	// ID is the paper's hypothesis number (1–5).
	ID int
	// Statement paraphrases the null hypothesis.
	Statement string
	// Scope describes what the verdict covers.
	Scope string
	// Alpha is the significance level the paper tested at.
	Alpha float64
	// Rejected is the verdict.
	Rejected bool
	// Test carries the strongest single test behind the verdict (for
	// H3/H4, the Weibull fit — the family previous studies endorsed;
	// for H5 the per-facility summary is in Detail instead).
	Test stats.ChiSquareResult
	// Detail holds auxiliary numbers (e.g. the Table IV bucket counts).
	Detail string
}

// HypothesesResult bundles the paper's five hypotheses, tested on one
// trace — the one-call summary of the study's statistical core.
type HypothesesResult struct {
	Verdicts []HypothesisVerdict
}

// AllMatchPaper reports whether every verdict matches the paper's
// published outcome: H1–H4 rejected; H5 rejected in some facilities and
// retained in others (mixed — represented by Rejected=true with the
// Table IV split in Detail).
func (r *HypothesesResult) AllMatchPaper() bool {
	for _, v := range r.Verdicts {
		if !v.Rejected {
			return false
		}
	}
	return len(r.Verdicts) == 5
}

// Hypotheses evaluates the paper's five hypotheses on a trace. The census
// is needed for Hypothesis 5 (rack positions); pass nil to skip it.
func Hypotheses(tr *fot.Trace, census *Census) (*HypothesesResult, error) {
	return HypothesesIndexed(fot.BorrowTraceIndex(tr), census)
}

// HypothesesIndexed is Hypotheses over a shared TraceIndex: the five
// underlying analyses reuse the index's cached failure and TBF views.
func HypothesesIndexed(ix *fot.TraceIndex, census *Census) (*HypothesesResult, error) {
	res := &HypothesesResult{}

	dow, err := DayOfWeekIndexed(ix, 0)
	if err != nil {
		return nil, err
	}
	res.Verdicts = append(res.Verdicts, HypothesisVerdict{
		ID:        1,
		Statement: "failures are uniform over days of the week",
		Scope:     "all components",
		Alpha:     0.01,
		Rejected:  dow.Test.Reject(0.01),
		Test:      dow.Test,
		Detail:    "weekday-only: " + dow.WeekdayTest.String(),
	})

	hod, err := HourOfDayIndexed(ix, 0)
	if err != nil {
		return nil, err
	}
	res.Verdicts = append(res.Verdicts, HypothesisVerdict{
		ID:        2,
		Statement: "failures are uniform over hours of the day",
		Scope:     "all components",
		Alpha:     0.01,
		Rejected:  hod.Test.Reject(0.01),
		Test:      hod.Test,
	})

	tbf, err := TBFAnalysisIndexed(ix, 0)
	if err != nil {
		return nil, err
	}
	res.Verdicts = append(res.Verdicts, HypothesisVerdict{
		ID:        3,
		Statement: "fleet-wide TBF follows an exponential distribution",
		Scope:     "all components",
		Alpha:     0.05,
		Rejected:  tbf.AllRejected(0.05),
		Test:      fitTestOf(tbf, "exponential"),
		Detail:    "every family (exp/weibull/gamma/lognormal) tested; least-bad: " + tbf.BestFamily,
	})

	// H4: per-class TBF. Use the dominant class as the headline scope.
	hddTBF, err := TBFAnalysisIndexed(ix, fot.HDD)
	if err != nil {
		return nil, err
	}
	res.Verdicts = append(res.Verdicts, HypothesisVerdict{
		ID:        4,
		Statement: "per-class TBF follows an exponential distribution",
		Scope:     "hdd (dominant class)",
		Alpha:     0.05,
		Rejected:  hddTBF.AllRejected(0.05),
		Test:      fitTestOf(hddTBF, "exponential"),
	})

	if census != nil {
		ra, err := RackAnalysisIndexed(ix, census)
		if err != nil {
			return nil, err
		}
		res.Verdicts = append(res.Verdicts, HypothesisVerdict{
			ID:        5,
			Statement: "failure rate is independent of rack position",
			Scope:     "per facility (mixed verdict, as in Table IV)",
			Alpha:     0.05,
			Rejected:  ra.PLow+ra.PMid > 0,
			Detail:    sprintfTableIV(ra),
		})
	}
	return res, nil
}

func fitTestOf(r *TBFResult, family string) stats.ChiSquareResult {
	for _, f := range r.Fits {
		if f.Dist.Name() == family && f.Err == nil {
			return f.Test
		}
	}
	return stats.ChiSquareResult{}
}

func sprintfTableIV(ra *RackAnalysisResult) string {
	return fmt.Sprintf("p<0.01: %d, 0.01–0.05: %d, p>=0.05: %d of %d facilities",
		ra.PLow, ra.PMid, ra.PHigh, len(ra.PerDC))
}
