package core

import (
	"io"
	"slices"
	"sync"

	"dcfail/internal/fot"
)

// SectionState is one section's carried fold state: an opaque value owned
// by the IncrementalEngine, produced by that section's Update and read by
// its RenderState. States must be pointers (or nil): the engine detects
// "nothing changed" by interface identity between Update's input and
// output.
type SectionState any

// IncrementalSection is the delta path of one report section. The
// full-recompute core.Section stays the golden reference; an
// IncrementalSection reproduces its bytes from carried state instead of
// rescanning history on every epoch.
//
// Contract (DESIGN.md §9):
//
//   - Update folds the appended rows into the next state. prev is nil on
//     the first fold and after an engine rebuild; newRows is exactly the
//     appended row range, pre-sorted by the global (time, id) order, and
//     must not be retained or mutated.
//   - Update must not write through prev. It either returns prev itself
//     (identity signals "no output-relevant change"; the engine may then
//     carry the previous epoch's rendered bytes forward) or a freshly
//     allocated top-level state. The fresh state may absorb prev's
//     containers — ownership hand-off: once Update returns, the engine
//     never renders or folds the handed-off prev again.
//   - RenderState is a pure function of (state, ix): it must produce
//     bytes identical to the section's full-recompute render over the
//     same ticket prefix, including error values and any partial output
//     written before an error.
type IncrementalSection struct {
	ID          string
	Update      func(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error)
	RenderState func(state SectionState, ix *fot.TraceIndex, w io.Writer) error
}

// IncrementalEngineStats is a point-in-time snapshot of engine health.
type IncrementalEngineStats struct {
	Epoch    uint64
	Rows     int
	Rebuilds uint64
	Broken   []string // sections whose Update failed; full fallback
}

// IncrementalEngine carries every section's fold state across epochs.
// Advance (one caller at a time, the fold path) consumes appended row
// ranges; TryRender serves section renders from state under a read lock,
// so renders of the current epoch never race the next fold's Update.
//
// The engine assumes rows are appended in global (time, id) order — the
// invariant live sources provide. When a batch violates it (out-of-order
// ingest after a reattach, a backfill), the engine transparently rebuilds
// every state from the full permutation: correctness never depends on
// arrival order, only the delta fast path does.
type IncrementalEngine struct {
	mu       sync.RWMutex
	sections []IncrementalSection
	byID     map[string]int
	states   []SectionState
	broken   []bool
	epoch    uint64
	rows     int
	lastT    int64 // (time, id) key of the last folded row
	lastID   uint64
	haveLast bool
	rebuilds uint64
}

// NewIncrementalEngine builds an engine over the given sections with no
// folded rows (epoch 0).
func NewIncrementalEngine(sections []IncrementalSection) *IncrementalEngine {
	e := &IncrementalEngine{
		sections: sections,
		byID:     make(map[string]int, len(sections)),
		states:   make([]SectionState, len(sections)),
		broken:   make([]bool, len(sections)),
	}
	for i, sec := range sections {
		e.byID[sec.ID] = i
	}
	return e
}

// Advance folds the rows appended since the previous call — rows
// [watermark, ix.Len()) — into every section's state and tags the result
// with epoch. It returns the set of section ids whose rendered output may
// differ from the previous epoch; ids absent from the map are guaranteed
// byte-identical, so cached renders may be carried forward. Advance must
// be externally serialized with respect to itself (serve's fold mutex).
func (e *IncrementalEngine) Advance(ix *fot.TraceIndex, epoch uint64) map[string]bool {
	cols := ix.Cols()
	n := ix.Len()

	e.mu.Lock()
	defer e.mu.Unlock()

	changed := make(map[string]bool)
	if n < e.rows {
		// The index shrank: not an extension of what we folded. Rebuild.
		e.rebuildLocked(ix, epoch, changed)
		return changed
	}
	newRows := make([]int32, 0, n-e.rows)
	for r := e.rows; r < n; r++ {
		newRows = append(newRows, int32(r))
	}
	if len(newRows) == 0 {
		// Epoch marker with no rows (replication): every section's output
		// is unchanged except those already broken, which re-render via
		// the full path against an index holding the same rows — still
		// byte-identical, so nothing needs to change hands.
		e.epoch = epoch
		return changed
	}
	slices.SortFunc(newRows, func(a, b int32) int {
		if cols.TimeNS[a] != cols.TimeNS[b] {
			if cols.TimeNS[a] < cols.TimeNS[b] {
				return -1
			}
			return 1
		}
		if cols.ID[a] != cols.ID[b] {
			if cols.ID[a] < cols.ID[b] {
				return -1
			}
			return 1
		}
		return 0
	})
	first := newRows[0]
	if e.haveLast && (cols.TimeNS[first] < e.lastT ||
		(cols.TimeNS[first] == e.lastT && cols.ID[first] <= e.lastID)) {
		// Batch starts at or before the folded history: out-of-order
		// append. Delta folding assumed monotone time; start over.
		e.rebuildLocked(ix, epoch, changed)
		return changed
	}
	e.foldLocked(ix, newRows, changed)
	last := newRows[len(newRows)-1]
	e.lastT, e.lastID, e.haveLast = cols.TimeNS[last], cols.ID[last], true
	e.rows = n
	e.epoch = epoch
	return changed
}

// foldLocked runs every live section's Update over rows.
func (e *IncrementalEngine) foldLocked(ix *fot.TraceIndex, rows []int32, changed map[string]bool) {
	for i, sec := range e.sections {
		if e.broken[i] {
			// Full-fallback sections re-render from the new index.
			changed[sec.ID] = true
			continue
		}
		next, err := sec.Update(e.states[i], ix, rows)
		if err != nil {
			e.states[i] = nil
			e.broken[i] = true
			changed[sec.ID] = true
			continue
		}
		if next != e.states[i] {
			changed[sec.ID] = true
		}
		e.states[i] = next
	}
}

// rebuildLocked discards every state and refolds the whole permutation.
func (e *IncrementalEngine) rebuildLocked(ix *fot.TraceIndex, epoch uint64, changed map[string]bool) {
	e.rebuilds++
	perm := ix.TimePerm()
	for i := range e.states {
		e.states[i] = nil
		e.broken[i] = false
	}
	e.foldLocked(ix, perm, changed)
	// A rebuild invalidates identity-based carry for every section.
	for _, sec := range e.sections {
		changed[sec.ID] = true
	}
	e.rows = ix.Len()
	e.epoch = epoch
	if len(perm) > 0 {
		last := perm[len(perm)-1]
		cols := ix.Cols()
		e.lastT, e.lastID, e.haveLast = cols.TimeNS[last], cols.ID[last], true
	} else {
		e.haveLast = false
	}
}

// TryRender renders section id from carried state, holding the read lock
// so the next fold's Update cannot race it. It reports ok=false — without
// writing anything — when the state cannot serve this request: unknown
// id, an epoch other than the engine's current one (a reader holding an
// older snapshot), or a section whose Update failed. The caller then
// falls back to the full-recompute render.
func (e *IncrementalEngine) TryRender(id string, epoch uint64, ix *fot.TraceIndex, w io.Writer) (ok bool, err error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	i, known := e.byID[id]
	if !known || e.broken[i] || epoch != e.epoch {
		return false, nil
	}
	return true, e.sections[i].RenderState(e.states[i], ix, w)
}

// Stats snapshots the engine's epoch, row watermark, rebuild count and
// broken-section list.
func (e *IncrementalEngine) Stats() IncrementalEngineStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := IncrementalEngineStats{Epoch: e.epoch, Rows: e.rows, Rebuilds: e.rebuilds}
	for i, sec := range e.sections {
		if e.broken[i] {
			st.Broken = append(st.Broken, sec.ID)
		}
	}
	return st
}
