package core

import (
	"slices"

	"dcfail/internal/fot"
)

// CategoryShare is one row of Table I.
type CategoryShare struct {
	Category fot.Category
	Decision string // the handling decision column of Table I
	Count    int
	Fraction float64
}

// CategoryBreakdownResult reproduces Table I: the split of tickets into
// D_fixing, D_error and D_falsealarm.
type CategoryBreakdownResult struct {
	Total int
	Rows  []CategoryShare
}

// CategoryBreakdown computes Table I over the full ticket set (false
// alarms included — that is the point of the table).
func CategoryBreakdown(tr *fot.Trace) (*CategoryBreakdownResult, error) {
	return CategoryBreakdownIndexed(fot.BorrowTraceIndex(tr))
}

// CategoryBreakdownIndexed is CategoryBreakdown over a shared TraceIndex.
func CategoryBreakdownIndexed(ix *fot.TraceIndex) (*CategoryBreakdownResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	total := ix.Len()
	decisions := map[fot.Category]string{
		fot.Fixing:     "Issue a repair order (RO)",
		fot.Error:      "Not repair and set to decommission",
		fot.FalseAlarm: "Mark as a false alarm",
	}
	res := &CategoryBreakdownResult{Total: total}
	for _, cat := range []fot.Category{fot.Fixing, fot.Error, fot.FalseAlarm} {
		n := len(ix.RowsByCategory(cat))
		res.Rows = append(res.Rows, CategoryShare{
			Category: cat,
			Decision: decisions[cat],
			Count:    n,
			Fraction: float64(n) / float64(total),
		})
	}
	return res, nil
}

// ComponentShare is one row of Table II.
type ComponentShare struct {
	Component fot.Component
	Count     int
	Fraction  float64
}

// ComponentBreakdownResult reproduces Table II: failure share per
// component class (false alarms excluded, per the paper).
type ComponentBreakdownResult struct {
	Total int
	Rows  []ComponentShare
}

// ComponentBreakdown computes Table II.
func ComponentBreakdown(tr *fot.Trace) (*ComponentBreakdownResult, error) {
	return ComponentBreakdownIndexed(fot.BorrowTraceIndex(tr))
}

// ComponentBreakdownIndexed is ComponentBreakdown over a shared TraceIndex.
func ComponentBreakdownIndexed(ix *fot.TraceIndex) (*ComponentBreakdownResult, error) {
	rows, err := requireFailureRows(ix)
	if err != nil {
		return nil, err
	}
	total := len(rows)
	counts := ix.FailureCountByComponent()
	res := &ComponentBreakdownResult{Total: total}
	for _, c := range sortedComponentsByCount(counts) {
		res.Rows = append(res.Rows, ComponentShare{
			Component: c,
			Count:     counts[c],
			Fraction:  float64(counts[c]) / float64(total),
		})
	}
	return res, nil
}

// TypeShare is one slice of a Fig. 2 pie.
type TypeShare struct {
	Type     string
	Count    int
	Fraction float64
}

// TypeBreakdownResult reproduces one subfigure of Fig. 2: the failure-type
// mix within a component class.
type TypeBreakdownResult struct {
	Component fot.Component
	Total     int
	Rows      []TypeShare
}

// TypeBreakdown computes the Fig. 2 breakdown for one component class.
func TypeBreakdown(tr *fot.Trace, c fot.Component) (*TypeBreakdownResult, error) {
	return TypeBreakdownIndexed(fot.BorrowTraceIndex(tr), c)
}

// TypeBreakdownIndexed is TypeBreakdown over a shared TraceIndex: one
// dense count over the interned type column, no per-type maps.
func TypeBreakdownIndexed(ix *fot.TraceIndex, c fot.Component) (*TypeBreakdownResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	sub := ix.FailureRowsByComponent(c)
	if len(sub) == 0 {
		return nil, errNoTickets("component", c.String())
	}
	cols := ix.Cols()
	counts := make([]int, cols.TypeCount())
	for _, r := range sub {
		counts[cols.TypeSym[r]]++
	}
	names := make([]string, 0, 8)
	byName := make(map[string]int, 8)
	for sym, n := range counts {
		if n > 0 {
			name := cols.TypeName(uint32(sym))
			names = append(names, name)
			byName[name] = n
		}
	}
	slices.SortFunc(names, func(a, b string) int {
		if byName[a] != byName[b] {
			return byName[b] - byName[a]
		}
		return cmpString(a, b)
	})
	res := &TypeBreakdownResult{Component: c, Total: len(sub)}
	for _, name := range names {
		res.Rows = append(res.Rows, TypeShare{
			Type:     name,
			Count:    byName[name],
			Fraction: float64(byName[name]) / float64(len(sub)),
		})
	}
	return res, nil
}
