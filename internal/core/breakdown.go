package core

import (
	"sort"

	"dcfail/internal/fot"
)

// CategoryShare is one row of Table I.
type CategoryShare struct {
	Category fot.Category
	Decision string // the handling decision column of Table I
	Count    int
	Fraction float64
}

// CategoryBreakdownResult reproduces Table I: the split of tickets into
// D_fixing, D_error and D_falsealarm.
type CategoryBreakdownResult struct {
	Total int
	Rows  []CategoryShare
}

// CategoryBreakdown computes Table I over the full ticket set (false
// alarms included — that is the point of the table).
func CategoryBreakdown(tr *fot.Trace) (*CategoryBreakdownResult, error) {
	return CategoryBreakdownIndexed(fot.BorrowTraceIndex(tr))
}

// CategoryBreakdownIndexed is CategoryBreakdown over a shared TraceIndex.
func CategoryBreakdownIndexed(ix *fot.TraceIndex) (*CategoryBreakdownResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	counts := ix.All().CountByCategory()
	total := ix.Len()
	decisions := map[fot.Category]string{
		fot.Fixing:     "Issue a repair order (RO)",
		fot.Error:      "Not repair and set to decommission",
		fot.FalseAlarm: "Mark as a false alarm",
	}
	res := &CategoryBreakdownResult{Total: total}
	for _, cat := range []fot.Category{fot.Fixing, fot.Error, fot.FalseAlarm} {
		res.Rows = append(res.Rows, CategoryShare{
			Category: cat,
			Decision: decisions[cat],
			Count:    counts[cat],
			Fraction: float64(counts[cat]) / float64(total),
		})
	}
	return res, nil
}

// ComponentShare is one row of Table II.
type ComponentShare struct {
	Component fot.Component
	Count     int
	Fraction  float64
}

// ComponentBreakdownResult reproduces Table II: failure share per
// component class (false alarms excluded, per the paper).
type ComponentBreakdownResult struct {
	Total int
	Rows  []ComponentShare
}

// ComponentBreakdown computes Table II.
func ComponentBreakdown(tr *fot.Trace) (*ComponentBreakdownResult, error) {
	return ComponentBreakdownIndexed(fot.BorrowTraceIndex(tr))
}

// ComponentBreakdownIndexed is ComponentBreakdown over a shared TraceIndex.
func ComponentBreakdownIndexed(ix *fot.TraceIndex) (*ComponentBreakdownResult, error) {
	failures, err := requireFailures(ix)
	if err != nil {
		return nil, err
	}
	counts := ix.FailureCountByComponent()
	res := &ComponentBreakdownResult{Total: failures.Len()}
	for _, c := range sortedComponentsByCount(counts) {
		res.Rows = append(res.Rows, ComponentShare{
			Component: c,
			Count:     counts[c],
			Fraction:  float64(counts[c]) / float64(failures.Len()),
		})
	}
	return res, nil
}

// TypeShare is one slice of a Fig. 2 pie.
type TypeShare struct {
	Type     string
	Count    int
	Fraction float64
}

// TypeBreakdownResult reproduces one subfigure of Fig. 2: the failure-type
// mix within a component class.
type TypeBreakdownResult struct {
	Component fot.Component
	Total     int
	Rows      []TypeShare
}

// TypeBreakdown computes the Fig. 2 breakdown for one component class.
func TypeBreakdown(tr *fot.Trace, c fot.Component) (*TypeBreakdownResult, error) {
	return TypeBreakdownIndexed(fot.BorrowTraceIndex(tr), c)
}

// TypeBreakdownIndexed is TypeBreakdown over a shared TraceIndex.
func TypeBreakdownIndexed(ix *fot.TraceIndex, c fot.Component) (*TypeBreakdownResult, error) {
	if _, err := requireFailures(ix); err != nil {
		return nil, err
	}
	sub := ix.FailuresByComponent(c)
	if sub.Len() == 0 {
		return nil, errNoTickets("component", c.String())
	}
	counts := sub.CountByType()
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	res := &TypeBreakdownResult{Component: c, Total: sub.Len()}
	for _, name := range names {
		res.Rows = append(res.Rows, TypeShare{
			Type:     name,
			Count:    counts[name],
			Fraction: float64(counts[name]) / float64(sub.Len()),
		})
	}
	return res, nil
}
