package core

import (
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// trendYearAgg is one calendar year's running aggregates.
type trendYearAgg struct {
	tickets  int
	failures int
	errs     int
	gaps     []float64 // within-year consecutive failure gaps, chronological
	hosts    map[uint64]bool
	rt       []float64 // D_fixing response days, ascending (see UpdateTrend)
}

// trendState carries the year-over-year aggregates behind the trend
// section, bucketed by UTC calendar year (the full path's binary-search
// boundaries are UTC midnights).
type trendState struct {
	years        map[int]*trendYearAgg
	prevFailNS   int64
	prevFailYear int
	haveFail     bool
}

// UpdateTrend folds appended rows into the per-year trend aggregates.
func UpdateTrend(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*trendState)
	cols := ix.Cols()
	var next *trendState
	var freshRT map[int][]float64
	for _, r := range newRows {
		if next == nil {
			next = &trendState{years: make(map[int]*trendYearAgg)}
			if st != nil {
				next.years = st.years // absorbed: prev handed off
				next.prevFailNS = st.prevFailNS
				next.prevFailYear = st.prevFailYear
				next.haveFail = st.haveFail
			}
		}
		t := cols.TimeNS[r]
		year := time.Unix(0, t).UTC().Year()
		agg := next.years[year]
		if agg == nil {
			agg = &trendYearAgg{hosts: make(map[uint64]bool)}
			next.years[year] = agg
		}
		agg.tickets++
		cat := fot.Category(cols.Category[r])
		if !cat.IsFailure() {
			continue
		}
		agg.failures++
		if next.haveFail && next.prevFailYear == year {
			agg.gaps = append(agg.gaps, time.Duration(t-next.prevFailNS).Minutes())
		}
		next.prevFailNS, next.prevFailYear, next.haveFail = t, year, true
		agg.hosts[cols.Host[r]] = true
		switch cat {
		case fot.Error:
			agg.errs++
		case fot.Fixing:
			if ns := cols.RTNS[r]; ns >= 0 {
				if freshRT == nil {
					freshRT = make(map[int][]float64)
				}
				freshRT[year] = append(freshRT[year], time.Duration(ns).Hours()/24)
			}
		}
	}
	if next == nil {
		if st == nil {
			return &trendState{years: make(map[int]*trendYearAgg)}, nil
		}
		return prev, nil
	}
	// rt is carried ascending so the render's median pays a merge per
	// fold instead of a full re-sort per epoch. The median is a function
	// of the multiset alone, so the rendered value is unchanged; per-year
	// merge order is irrelevant for the same reason.
	for year, f := range freshRT {
		agg := next.years[year]
		agg.rt = mergeSortedGaps(agg.rt, f)
	}
	return next, nil
}

// TrendFromState renders the trend result from carried state,
// byte-identical to TrendIndexed.
func TrendFromState(state SectionState, ix *fot.TraceIndex) (*TrendResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*trendState)
	lo, hi, _ := ix.FailureSpan()
	res := &TrendResult{}
	for year := lo.Year(); year <= hi.Year(); year++ {
		agg := st.years[year]
		if agg == nil || agg.failures == 0 {
			continue
		}
		ys := YearStats{
			Year:     year,
			Tickets:  agg.tickets,
			Failures: agg.failures,
		}
		if len(agg.gaps) > 0 {
			ys.MTBFMinutes = stats.Mean(agg.gaps)
		}
		ys.FailedServers = len(agg.hosts)
		ys.ErrorShare = float64(agg.errs) / float64(agg.failures)
		if len(agg.rt) > 0 {
			ys.MedianRTDays = stats.Median(agg.rt)
		}
		res.Years = append(res.Years, ys)
	}
	if len(res.Years) == 0 {
		return nil, errNoTickets("years with", "failures")
	}
	return res, nil
}
