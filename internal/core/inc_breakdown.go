package core

import (
	"slices"

	"dcfail/internal/fot"
)

// incComponents is the dense component-code array size (codes 1..N).
var incComponents = len(fot.Components()) + 1

// categoryBreakdownState carries Table I's per-category ticket counts.
type categoryBreakdownState struct {
	counts [8]int // indexed by category code
}

// UpdateCategoryBreakdown folds appended rows into the Table I state.
func UpdateCategoryBreakdown(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*categoryBreakdownState)
	next := &categoryBreakdownState{}
	if st != nil {
		next.counts = st.counts
	}
	cols := ix.Cols()
	for _, r := range newRows {
		next.counts[cols.Category[r]]++
	}
	return next, nil
}

// CategoryBreakdownFromState renders Table I's result from carried state,
// byte-identical to CategoryBreakdownIndexed over the same prefix.
func CategoryBreakdownFromState(state SectionState, ix *fot.TraceIndex) (*CategoryBreakdownResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	st := state.(*categoryBreakdownState)
	total := ix.Len()
	decisions := map[fot.Category]string{
		fot.Fixing:     "Issue a repair order (RO)",
		fot.Error:      "Not repair and set to decommission",
		fot.FalseAlarm: "Mark as a false alarm",
	}
	res := &CategoryBreakdownResult{Total: total}
	for _, cat := range []fot.Category{fot.Fixing, fot.Error, fot.FalseAlarm} {
		n := st.counts[cat]
		res.Rows = append(res.Rows, CategoryShare{
			Category: cat,
			Decision: decisions[cat],
			Count:    n,
			Fraction: float64(n) / float64(total),
		})
	}
	return res, nil
}

// componentBreakdownState carries Table II's dense failure counts per
// component code plus the failure total.
type componentBreakdownState struct {
	counts   []int // len incComponents, indexed by component code
	failures int
}

// UpdateComponentBreakdown folds appended rows into the Table II state.
// Batches without failure rows leave the output untouched and return
// prev unchanged.
func UpdateComponentBreakdown(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*componentBreakdownState)
	cols := ix.Cols()
	var next *componentBreakdownState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			next = &componentBreakdownState{counts: make([]int, incComponents)}
			if st != nil {
				copy(next.counts, st.counts)
				next.failures = st.failures
			}
		}
		next.counts[cols.Device[r]]++
		next.failures++
	}
	if next == nil {
		if st == nil {
			// First fold of a failure-free prefix still needs a state so
			// the empty-trace guard can give way to the no-failures one.
			return &componentBreakdownState{counts: make([]int, incComponents)}, nil
		}
		return prev, nil
	}
	return next, nil
}

// ComponentBreakdownFromState renders Table II's result from carried
// state, byte-identical to ComponentBreakdownIndexed.
func ComponentBreakdownFromState(state SectionState, ix *fot.TraceIndex) (*ComponentBreakdownResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*componentBreakdownState)
	total := st.failures
	counts := make(map[fot.Component]int, incComponents)
	for c, n := range st.counts {
		if n > 0 {
			counts[fot.Component(c)] = n
		}
	}
	res := &ComponentBreakdownResult{Total: total}
	for _, c := range sortedComponentsByCount(counts) {
		res.Rows = append(res.Rows, ComponentShare{
			Component: c,
			Count:     counts[c],
			Fraction:  float64(counts[c]) / float64(total),
		})
	}
	return res, nil
}

// typeBreakdownState carries Fig. 2's dense per-component failure-type
// counters: counts[device][type symbol].
type typeBreakdownState struct {
	counts   [][]int // [component code][type symbol], grown on demand
	perComp  []int   // failures per component code
	failures int
}

// UpdateTypeBreakdown folds appended rows into the Fig. 2 state. Interned
// type symbols are stable across index extensions, so the dense counter
// columns carry over untouched.
func UpdateTypeBreakdown(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*typeBreakdownState)
	cols := ix.Cols()
	var next *typeBreakdownState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			next = &typeBreakdownState{counts: make([][]int, incComponents), perComp: make([]int, incComponents)}
			if st != nil {
				copy(next.counts, st.counts)
				copy(next.perComp, st.perComp)
				next.failures = st.failures
			}
		}
		dev := cols.Device[r]
		sym := int(cols.TypeSym[r])
		if len(next.counts[dev]) <= sym {
			grown := make([]int, cols.TypeCount())
			copy(grown, next.counts[dev])
			next.counts[dev] = grown
		}
		next.counts[dev][sym]++
		next.perComp[dev]++
		next.failures++
	}
	if next == nil {
		if st == nil {
			return &typeBreakdownState{counts: make([][]int, incComponents), perComp: make([]int, incComponents)}, nil
		}
		return prev, nil
	}
	return next, nil
}

// TypeBreakdownFromState renders one Fig. 2 component's result from
// carried state, byte-identical to TypeBreakdownIndexed.
func TypeBreakdownFromState(state SectionState, ix *fot.TraceIndex, c fot.Component) (*TypeBreakdownResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*typeBreakdownState)
	total := st.perComp[c]
	if total == 0 {
		return nil, errNoTickets("component", c.String())
	}
	cols := ix.Cols()
	names := make([]string, 0, 8)
	byName := make(map[string]int, 8)
	for sym, n := range st.counts[c] {
		if n > 0 {
			name := cols.TypeName(uint32(sym))
			names = append(names, name)
			byName[name] = n
		}
	}
	slices.SortFunc(names, func(a, b string) int {
		if byName[a] != byName[b] {
			return byName[b] - byName[a]
		}
		return cmpString(a, b)
	})
	res := &TypeBreakdownResult{Component: c, Total: total}
	for _, name := range names {
		res.Rows = append(res.Rows, TypeShare{
			Type:     name,
			Count:    byName[name],
			Fraction: float64(byName[name]) / float64(total),
		})
	}
	return res, nil
}
