package core

import (
	"sort"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// ServerSkewResult reproduces Fig. 7: how unevenly failures concentrate on
// individual servers.
type ServerSkewResult struct {
	FailedServers int
	TotalFailures int
	// CDF plots, for x = fraction of ever-failed servers (taken in
	// decreasing failure-count order), the cumulative share y of all
	// failures those servers hold.
	CDF []stats.Point
	// TopShare[p] is the share of failures held by the top fraction p of
	// failed servers (the paper highlights p = 0.02).
	TopShare map[float64]float64
	// MaxOneServer is the largest per-server ticket count (the chronic
	// BBU server holds >400 in the paper).
	MaxOneServer int
	MaxServer    uint64
}

// ServerSkew computes Fig. 7.
func ServerSkew(tr *fot.Trace) (*ServerSkewResult, error) {
	return ServerSkewIndexed(fot.BorrowTraceIndex(tr))
}

// ServerSkewIndexed is ServerSkew over a shared TraceIndex.
func ServerSkewIndexed(ix *fot.TraceIndex) (*ServerSkewResult, error) {
	failures, err := requireFailures(ix)
	if err != nil {
		return nil, err
	}
	perServer := make(map[uint64]int)
	for _, tk := range failures.Tickets {
		perServer[tk.HostID]++
	}
	counts := make([]int, 0, len(perServer))
	var maxCount int
	var maxHost uint64
	for host, n := range perServer {
		counts = append(counts, n)
		if n > maxCount || (n == maxCount && host < maxHost) {
			maxCount, maxHost = n, host
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))

	res := &ServerSkewResult{
		FailedServers: len(counts),
		TotalFailures: failures.Len(),
		TopShare:      make(map[float64]float64),
		MaxOneServer:  maxCount,
		MaxServer:     maxHost,
	}
	cum := 0
	cdf := make([]stats.Point, 0, 257)
	step := len(counts)/256 + 1
	for i, n := range counts {
		cum += n
		if i%step == 0 || i == len(counts)-1 {
			cdf = append(cdf, stats.Point{
				X: float64(i+1) / float64(len(counts)),
				Y: float64(cum) / float64(res.TotalFailures),
			})
		}
	}
	res.CDF = cdf
	for _, p := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50} {
		k := int(p * float64(len(counts)))
		if k < 1 {
			k = 1
		}
		sum := 0
		for _, n := range counts[:k] {
			sum += n
		}
		res.TopShare[p] = float64(sum) / float64(res.TotalFailures)
	}
	return res, nil
}

// RepeatResult reproduces §III-D: repeating failures and the
// effectiveness of repairs.
type RepeatResult struct {
	// FixedGroups counts (host, device, type) groups that received at
	// least one repair (a D_fixing ticket).
	FixedGroups int
	// RepeatedGroups counts fixed groups where the same failure recurred
	// after a ticket was closed as solved.
	RepeatedGroups int
	// NeverRepeatFraction is 1 − RepeatedGroups/FixedGroups (paper: over
	// 85% of fixed components never repeat).
	NeverRepeatFraction float64
	// FailedServers / ServersWithRepeats give the per-server view
	// (paper: ~4.5% of ever-failed servers suffered repeats).
	FailedServers        int
	ServersWithRepeats   int
	RepeatServerFraction float64
}

// RepeatAnalysis computes §III-D's repeat statistics. A repeat is a later
// ticket with the same (host, device, slot, type) after an earlier ticket
// of that group was marked solved (paper definition: the same problem
// reappearing on the same component instance).
func RepeatAnalysis(tr *fot.Trace) (*RepeatResult, error) {
	return RepeatAnalysisIndexed(fot.BorrowTraceIndex(tr))
}

// RepeatAnalysisIndexed is RepeatAnalysis over a shared TraceIndex.
func RepeatAnalysisIndexed(ix *fot.TraceIndex) (*RepeatResult, error) {
	if _, err := requireFailures(ix); err != nil {
		return nil, err
	}
	type groupKey struct {
		host uint64
		dev  fot.Component
		slot string
		typ  string
	}
	ordered := ix.FailuresByTime()
	type groupState struct {
		fixed    bool // saw a D_fixing ticket
		repeated bool // saw a ticket after a fixing ticket
	}
	groups := make(map[groupKey]*groupState)
	serversWithRepeat := make(map[uint64]bool)
	servers := make(map[uint64]bool)
	for _, tk := range ordered.Tickets {
		servers[tk.HostID] = true
		k := groupKey{tk.HostID, tk.Device, tk.Slot, tk.Type}
		g := groups[k]
		if g == nil {
			g = &groupState{}
			groups[k] = g
		}
		if g.fixed {
			// Same failure after a "solved" ticket: a repeat.
			g.repeated = true
			serversWithRepeat[tk.HostID] = true
		}
		if tk.Category == fot.Fixing {
			g.fixed = true
		}
	}
	res := &RepeatResult{FailedServers: len(servers)}
	for _, g := range groups {
		if !g.fixed {
			continue
		}
		res.FixedGroups++
		if g.repeated {
			res.RepeatedGroups++
		}
	}
	if res.FixedGroups > 0 {
		res.NeverRepeatFraction = 1 - float64(res.RepeatedGroups)/float64(res.FixedGroups)
	}
	res.ServersWithRepeats = len(serversWithRepeat)
	if res.FailedServers > 0 {
		res.RepeatServerFraction = float64(res.ServersWithRepeats) / float64(res.FailedServers)
	}
	return res, nil
}
