package core

import (
	"slices"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// ServerSkewResult reproduces Fig. 7: how unevenly failures concentrate on
// individual servers.
type ServerSkewResult struct {
	FailedServers int
	TotalFailures int
	// CDF plots, for x = fraction of ever-failed servers (taken in
	// decreasing failure-count order), the cumulative share y of all
	// failures those servers hold.
	CDF []stats.Point
	// TopShare[p] is the share of failures held by the top fraction p of
	// failed servers (the paper highlights p = 0.02).
	TopShare map[float64]float64
	// MaxOneServer is the largest per-server ticket count (the chronic
	// BBU server holds >400 in the paper).
	MaxOneServer int
	MaxServer    uint64
}

// ServerSkew computes Fig. 7.
func ServerSkew(tr *fot.Trace) (*ServerSkewResult, error) {
	return ServerSkewIndexed(fot.BorrowTraceIndex(tr))
}

// ServerSkewIndexed is ServerSkew over a shared TraceIndex: per-server
// counts are the host-group lengths, no map build.
func ServerSkewIndexed(ix *fot.TraceIndex) (*ServerSkewResult, error) {
	fail, err := requireFailureRows(ix)
	if err != nil {
		return nil, err
	}
	hosts, groups := ix.FailureHostGroups()
	counts := make([]int, len(groups))
	var maxCount int
	var maxHost uint64
	// Hosts come sorted ascending, so a strict > keeps the smallest host
	// on ties.
	for hi, host := range hosts {
		n := len(groups[hi])
		counts[hi] = n
		if n > maxCount {
			maxCount, maxHost = n, host
		}
	}
	slices.SortFunc(counts, func(a, b int) int { return b - a })

	res := &ServerSkewResult{
		FailedServers: len(counts),
		TotalFailures: len(fail),
		TopShare:      make(map[float64]float64),
		MaxOneServer:  maxCount,
		MaxServer:     maxHost,
	}
	cum := 0
	cdf := make([]stats.Point, 0, 257)
	step := len(counts)/256 + 1
	for i, n := range counts {
		cum += n
		if i%step == 0 || i == len(counts)-1 {
			cdf = append(cdf, stats.Point{
				X: float64(i+1) / float64(len(counts)),
				Y: float64(cum) / float64(res.TotalFailures),
			})
		}
	}
	res.CDF = cdf
	for _, p := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50} {
		k := int(p * float64(len(counts)))
		if k < 1 {
			k = 1
		}
		sum := 0
		for _, n := range counts[:k] {
			sum += n
		}
		res.TopShare[p] = float64(sum) / float64(res.TotalFailures)
	}
	return res, nil
}

// RepeatResult reproduces §III-D: repeating failures and the
// effectiveness of repairs.
type RepeatResult struct {
	// FixedGroups counts (host, device, type) groups that received at
	// least one repair (a D_fixing ticket).
	FixedGroups int
	// RepeatedGroups counts fixed groups where the same failure recurred
	// after a ticket was closed as solved.
	RepeatedGroups int
	// NeverRepeatFraction is 1 − RepeatedGroups/FixedGroups (paper: over
	// 85% of fixed components never repeat).
	NeverRepeatFraction float64
	// FailedServers / ServersWithRepeats give the per-server view
	// (paper: ~4.5% of ever-failed servers suffered repeats).
	FailedServers        int
	ServersWithRepeats   int
	RepeatServerFraction float64
}

// RepeatAnalysis computes §III-D's repeat statistics. A repeat is a later
// ticket with the same (host, device, slot, type) after an earlier ticket
// of that group was marked solved (paper definition: the same problem
// reappearing on the same component instance).
func RepeatAnalysis(tr *fot.Trace) (*RepeatResult, error) {
	return RepeatAnalysisIndexed(fot.BorrowTraceIndex(tr))
}

// RepeatAnalysisIndexed is RepeatAnalysis over a shared TraceIndex. The
// group key uses interned slot/type symbols: equality is all the scan
// needs, and symbol keys hash far cheaper than strings.
func RepeatAnalysisIndexed(ix *fot.TraceIndex) (*RepeatResult, error) {
	rows, err := requireFailureRows(ix)
	if err != nil {
		return nil, err
	}
	cols := ix.Cols()
	type groupKey struct {
		host uint64
		dev  uint8
		slot uint32
		typ  uint32
	}
	const (
		gFixed    = 1 // saw a D_fixing ticket
		gRepeated = 2 // saw a ticket after a fixing ticket
	)
	groups := make(map[groupKey]uint8)
	serversWithRepeat := make(map[uint64]bool)
	for _, r := range rows {
		k := groupKey{cols.Host[r], cols.Device[r], cols.SlotSym[r], cols.TypeSym[r]}
		g := groups[k]
		if g&gFixed != 0 {
			// Same failure after a "solved" ticket: a repeat.
			g |= gRepeated
			serversWithRepeat[cols.Host[r]] = true
		}
		if fot.Category(cols.Category[r]) == fot.Fixing {
			g |= gFixed
		}
		groups[k] = g
	}
	hosts, _ := ix.FailureHostGroups()
	res := &RepeatResult{FailedServers: len(hosts)}
	for _, g := range groups {
		if g&gFixed == 0 {
			continue
		}
		res.FixedGroups++
		if g&gRepeated != 0 {
			res.RepeatedGroups++
		}
	}
	if res.FixedGroups > 0 {
		res.NeverRepeatFraction = 1 - float64(res.RepeatedGroups)/float64(res.FixedGroups)
	}
	res.ServersWithRepeats = len(serversWithRepeat)
	if res.FailedServers > 0 {
		res.RepeatServerFraction = float64(res.ServersWithRepeats) / float64(res.FailedServers)
	}
	return res, nil
}
