package core

import (
	"fmt"
	"sort"
	"time"

	"dcfail/internal/fot"
)

// instKey identifies one failing component instance — the repeat-dedup
// key of fot.TraceIndex.FirstInstanceRows.
type instKey struct {
	host      uint64
	dev       uint8
	slot, typ uint32
}

// lifecycleState carries Fig. 6's first-instance failure census: one
// age-month histogram per component class over deduplicated failures,
// plus the first-instance time span that bounds the exposure window.
type lifecycleState struct {
	seen      map[instKey]struct{}
	counts    [][]int // [component code][service month], grown on demand
	loNS      int64   // time of the earliest first-instance row
	hiNS      int64   // time of the latest first-instance row
	haveFirst bool
}

func (st *lifecycleState) clone() *lifecycleState {
	next := &lifecycleState{
		seen:      st.seen, // absorbed: prev is handed off, never reused
		counts:    append([][]int(nil), st.counts...),
		loNS:      st.loNS,
		hiNS:      st.hiNS,
		haveFirst: st.haveFirst,
	}
	return next
}

// UpdateLifecycle folds appended rows into the Fig. 6 state.
func UpdateLifecycle(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*lifecycleState)
	cols := ix.Cols()
	var next *lifecycleState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			if st != nil {
				next = st.clone()
			} else {
				next = &lifecycleState{
					seen:   make(map[instKey]struct{}),
					counts: make([][]int, incComponents),
				}
			}
		}
		k := instKey{cols.Host[r], cols.Device[r], cols.SlotSym[r], cols.TypeSym[r]}
		if _, ok := next.seen[k]; ok {
			continue
		}
		next.seen[k] = struct{}{}
		t := cols.TimeNS[r]
		if !next.haveFirst {
			next.loNS = t
			next.haveFirst = true
		}
		next.hiNS = t
		ns := cols.AgeNS[r]
		if ns < 0 {
			continue
		}
		m := int(time.Duration(ns).Hours() / hoursPerMonth)
		if m < 0 {
			continue
		}
		dev := cols.Device[r]
		if len(next.counts[dev]) <= m {
			grown := make([]int, m+1)
			copy(grown, next.counts[dev])
			next.counts[dev] = grown
		}
		next.counts[dev][m]++
	}
	if next == nil {
		if st == nil {
			return &lifecycleState{seen: make(map[instKey]struct{}), counts: make([][]int, incComponents)}, nil
		}
		return prev, nil
	}
	return next, nil
}

// LifecycleFromState renders one Fig. 6 result from carried state,
// byte-identical to LifecycleRatesIndexed. The census exposure pass —
// the dominant cost — is memoized per epoch and computed for every
// component class at once, preserving the full path's exact float
// expression shapes so the rates match bit for bit.
func LifecycleFromState(state SectionState, ix *fot.TraceIndex, census *Census, c fot.Component, horizon int) (*LifecycleResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*lifecycleState)
	if census == nil {
		return nil, errNoTickets("census for", c.String())
	}
	if horizon < 1 {
		horizon = 48
	}
	if !st.haveFirst {
		return nil, errEmptyTrace()
	}
	res := &LifecycleResult{
		Component:  c,
		Counts:     make([]int, horizon),
		Exposure:   make([]float64, horizon),
		Rates:      make([]float64, horizon),
		Normalized: make([]float64, horizon),
	}
	copy(res.Counts, st.counts[c])
	exp := ix.Memo(fmt.Sprintf("core.lifecycle.exp.%d", horizon), func() any {
		return censusExposure(census, st.loNS, st.hiNS, horizon)
	}).([][]float64)
	copy(res.Exposure, exp[c])
	maxRate := 0.0
	for m := range res.Rates {
		if res.Exposure[m] > 0 {
			res.Rates[m] = float64(res.Counts[m]) / res.Exposure[m]
		}
		if res.Rates[m] > maxRate {
			maxRate = res.Rates[m]
		}
	}
	if maxRate > 0 {
		for m := range res.Normalized {
			res.Normalized[m] = res.Rates[m] / maxRate
		}
	}
	return res, nil
}

// censusExposureDense is the census flattened for the exposure scan:
// deploy times as nanoseconds and each server's nonzero component counts
// as a CSR run of (class, float count) pairs, in ascending class order —
// the same values, in the same order, the map-shaped walk produced.
type censusExposureDense struct {
	deployNS []int64
	off      []int32 // len(servers)+1; server i owns cls/fvs[off[i]:off[i+1]]
	cls      []uint8
	fvs      []float64
}

// exposureDense builds the dense layout once per census. The census is
// immutable after construction while exposure re-derives every epoch, so
// the per-server map reads and int→float conversions move out of the
// per-epoch path entirely.
func (c *Census) exposureDense() *censusExposureDense {
	c.expOnce.Do(func() {
		d := &censusExposureDense{
			deployNS: make([]int64, len(c.Servers)),
			off:      make([]int32, len(c.Servers)+1),
		}
		for i := range c.Servers {
			s := &c.Servers[i]
			d.deployNS[i] = s.DeployTime.UnixNano()
			for cc := 1; cc < incComponents; cc++ {
				if n := s.Components[fot.Component(cc)]; n != 0 {
					d.cls = append(d.cls, uint8(cc))
					d.fvs = append(d.fvs, float64(n))
				}
			}
			d.off[i+1] = int32(len(d.cls))
		}
		c.expDense = d
	})
	return c.expDense
}

// censusExposure runs addExposure's arithmetic for every component class
// in one pass over the census, on int64 nanoseconds. Each float operation
// mirrors addExposure exactly (same expressions, same order), so the
// accumulated exposures are bit-identical to per-class full passes.
func censusExposure(census *Census, loNS, hiNS int64, horizon int) [][]float64 {
	exposure := make([][]float64, incComponents)
	for c := range exposure {
		exposure[c] = make([]float64, horizon)
	}
	const monthHours = hoursPerMonth
	// Month-boundary offsets depend only on m; computing them per server
	// would re-derive the same values census-size times over.
	offLo := make([]int64, horizon)
	offHi := make([]int64, horizon)
	hrsFull := make([]float64, horizon)
	for m := 0; m < horizon; m++ {
		offLo[m] = int64(time.Duration(float64(m) * monthHours * float64(time.Hour)))
		offHi[m] = int64(time.Duration(float64(m+1) * monthHours * float64(time.Hour)))
		// Hours() of an unclamped month window — the common case — is a
		// function of m alone; precomputing it is the same call on the
		// same duration value, so the float is bit-identical.
		hrsFull[m] = time.Duration(offHi[m] - offLo[m]).Hours()
	}
	// Accumulate month-major: the inner class loop then walks one small
	// contiguous row, and the int→float conversions hoist to one per class
	// per server. Per-cell accumulation order (server-major) and every
	// float expression are unchanged, so the sums are bit-identical; the
	// layout transposes back on return.
	byMonth := make([][]float64, horizon)
	for m := range byMonth {
		byMonth[m] = make([]float64, incComponents)
	}
	dense := census.exposureDense()
	for i := range dense.deployNS {
		deployNS := dense.deployNS[i]
		if !(hiNS > deployNS) { // !hi.After(deploy)
			continue
		}
		// The server's nonzero classes, in ascending class order — the
		// same counts, read once per census instead of once per epoch, so
		// per-cell accumulation order and every float expression are
		// unchanged.
		cls := dense.cls[dense.off[i]:dense.off[i+1]]
		fvs := dense.fvs[dense.off[i]:dense.off[i+1]]
		if len(cls) == 0 {
			continue
		}
		// Months that end before the first-instance window opens clamp to
		// an empty [wLo, wHi] and contribute nothing; start at the first
		// month whose end passes loNS instead of iterating through them.
		// For fleets deployed years before the window this skips most of
		// the horizon.
		mFirst := 0
		if gap := loNS - deployNS; gap > 0 {
			mFirst = sort.Search(horizon, func(m int) bool { return offHi[m] > gap })
		}
		for m := mFirst; m < horizon; m++ {
			mLoNS := deployNS + offLo[m]
			mHiNS := deployNS + offHi[m]
			if !(mLoNS < hiNS) { // !mLo.Before(hi)
				break
			}
			wLo, wHi := mLoNS, mHiNS
			if wLo < loNS {
				wLo = loNS
			}
			if wHi > hiNS {
				wHi = hiNS
			}
			if !(wHi > wLo) {
				continue
			}
			var hrs float64
			if wLo == mLoNS && wHi == mHiNS {
				hrs = hrsFull[m]
			} else {
				hrs = time.Duration(wHi - wLo).Hours()
			}
			row := byMonth[m]
			for j, c := range cls {
				row[c] += fvs[j] * hrs / monthHours
			}
		}
	}
	for m := 0; m < horizon; m++ {
		for c := 1; c < incComponents; c++ {
			exposure[c][m] = byMonth[m][c]
		}
	}
	return exposure
}
