package core

import (
	"testing"
	"time"

	"dcfail/internal/fot"
)

func TestBatchFrequencyTableV(t *testing.T) {
	res, _ := fixture(t)
	// Absolute Table V thresholds (100/200/500) assume paper scale; the
	// small profile uses proportionally smaller ones.
	bf, err := BatchFrequency(res.Trace, []int{10, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Days < 1000 {
		t.Errorf("study days = %d, want ≈1460", bf.Days)
	}
	byComp := map[fot.Component]BatchFrequencyRow{}
	for _, row := range bf.Rows {
		byComp[row.Component] = row
		// r is monotone decreasing in the threshold.
		if !(row.R[10] >= row.R[20] && row.R[20] >= row.R[50]) {
			t.Errorf("%v: r not monotone: %v", row.Component, row.R)
		}
		for _, r := range row.R {
			if r < 0 || r > 1 {
				t.Errorf("%v: r out of range: %v", row.Component, row.R)
			}
		}
	}
	// HDD dominates batch failures (Table V row 1).
	hdd := byComp[fot.HDD]
	if hdd.R[10] < 0.10 {
		t.Errorf("HDD r10 = %.3f, want frequent batch days", hdd.R[10])
	}
	for _, c := range []fot.Component{fot.Memory, fot.SSD, fot.CPU} {
		if byComp[c].R[10] >= hdd.R[10] {
			t.Errorf("%v batches as often as HDD", c)
		}
	}
	// CPU never batches (Table V: 0 across the board).
	if byComp[fot.CPU].R[10] > 0.01 {
		t.Errorf("CPU r10 = %.3f, want ≈0", byComp[fot.CPU].R[10])
	}
}

func TestBatchFrequencyDefaultThresholds(t *testing.T) {
	res, _ := fixture(t)
	bf, err := BatchFrequency(res.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Thresholds) != 3 || bf.Thresholds[0] != 100 {
		t.Errorf("default thresholds = %v", bf.Thresholds)
	}
}

func TestBatchWindowsFindsEpisodes(t *testing.T) {
	res, cen := fixture(t)
	eps, err := BatchWindows(res.Trace, cen, 30*time.Minute, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) == 0 {
		t.Fatal("no batch episodes found despite injected batches")
	}
	// Episodes sorted largest first.
	for i := 1; i < len(eps); i++ {
		if eps[i].Tickets > eps[i-1].Tickets {
			t.Fatal("episodes not sorted by size")
		}
	}
	top := eps[0]
	if top.Servers < 10 || top.Servers > top.Tickets {
		t.Errorf("episode servers=%d tickets=%d inconsistent", top.Servers, top.Tickets)
	}
	if top.End.Before(top.Start) {
		t.Error("episode window inverted")
	}
	if top.End.Sub(top.Start) > 24*time.Hour {
		t.Errorf("episode spans %v, want a tight window", top.End.Sub(top.Start))
	}
	if top.TopProductLine == "" || top.LineFraction <= 0 || top.LineFraction > 1 {
		t.Errorf("episode line attribution broken: %q %.3f", top.TopProductLine, top.LineFraction)
	}
	if len(top.IDCs) == 0 || len(top.Models) == 0 {
		t.Error("episode spread metadata missing")
	}
	// The HDD epidemics (case 1) must be present, and at least one is a
	// clean single-model cohort (concurrent same-day epidemics can merge
	// in the miner, so not every episode is).
	singleModel := false
	hddSeen := false
	for i := range eps {
		if eps[i].Component != fot.HDD {
			continue
		}
		hddSeen = true
		if len(eps[i].Models) == 1 {
			singleModel = true
			break
		}
	}
	if !hddSeen {
		t.Fatal("no HDD batch episode found")
	}
	if !singleModel {
		t.Error("no single-model HDD cohort episode found")
	}
}

func TestBatchWindowsPowerCase(t *testing.T) {
	res, cen := fixture(t)
	eps, err := BatchWindows(res.Trace, cen, time.Hour, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A PDU outage (case 3) must appear: a power episode within one IDC.
	for _, ep := range eps {
		if ep.Component == fot.Power {
			if len(ep.IDCs) != 1 {
				t.Errorf("power episode spans %d IDCs, want 1 (single PDU)", len(ep.IDCs))
			}
			return
		}
	}
	t.Error("no power batch episode found despite PDU injection")
}

func TestBatchWindowsParameterDefaults(t *testing.T) {
	res, cen := fixture(t)
	eps, err := BatchWindows(res.Trace, cen, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) == 0 {
		t.Error("default parameters found nothing")
	}
	// Without census, line fractions are zero but mining still works.
	eps2, err := BatchWindows(res.Trace, nil, 30*time.Minute, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps2 {
		if ep.LineFraction != 0 {
			t.Error("line fraction without census should be 0")
		}
	}
}

// TestBatchFrequencyCalendarDays is the regression test for the Table V
// day-bucketing bug: the old code bucketed by rolling 24-hour offsets
// from the first ticket, so a trace starting at 23:00 folded a
// midnight-straddling cluster into one "day". Calendar-date bucketing
// must see two study days with two failures each.
func TestBatchFrequencyCalendarDays(t *testing.T) {
	day := time.Date(2015, 3, 10, 0, 0, 0, 0, time.UTC)
	mk := func(id uint64, at time.Time) fot.Ticket {
		return fot.Ticket{
			ID: id, HostID: id, IDC: "dc01", Position: 1,
			Device: fot.HDD, Slot: "sdb", Type: "SMARTFail",
			Time: at, Category: fot.Fixing, Action: fot.ActionRepairOrder,
		}
	}
	tr := fot.NewTrace([]fot.Ticket{
		mk(1, day.Add(23*time.Hour)),
		mk(2, day.Add(23*time.Hour+30*time.Minute)),
		mk(3, day.Add(24*time.Hour+15*time.Minute)),
		mk(4, day.Add(24*time.Hour+30*time.Minute)),
	})
	bf, err := BatchFrequency(tr, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Days != 2 {
		t.Fatalf("Days = %d, want 2 (cluster straddles midnight UTC)", bf.Days)
	}
	row := bf.Rows[0]
	if row.MaxDaily != 2 {
		t.Errorf("MaxDaily = %d, want 2 per calendar day", row.MaxDaily)
	}
	if row.R[2] != 1.0 {
		t.Errorf("r_2 = %v, want 1.0 (both days have >= 2 failures)", row.R[2])
	}
}
