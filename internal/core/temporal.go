package core

import (
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// DayOfWeekResult reproduces Fig. 3 and tests Hypothesis 1 ("the average
// number of component failures is uniformly random over different days of
// the week") for one component class.
type DayOfWeekResult struct {
	Component fot.Component
	// Counts indexes by time.Weekday (0 = Sunday).
	Counts [7]int
	// Fractions is Counts normalized by the total (the published view).
	Fractions [7]float64
	// Test is the chi-square uniformity test over all seven days.
	Test stats.ChiSquareResult
	// WeekdayTest excludes weekends (the paper's second, stronger check:
	// rejected at 0.02 even without weekends).
	WeekdayTest stats.ChiSquareResult
}

// DayOfWeek computes Fig. 3 for one component class. Pass component 0 to
// aggregate all classes.
func DayOfWeek(tr *fot.Trace, c fot.Component) (*DayOfWeekResult, error) {
	return DayOfWeekIndexed(fot.BorrowTraceIndex(tr), c)
}

// DayOfWeekIndexed is DayOfWeek over a shared TraceIndex: one dense
// count over the precomputed weekday column.
func DayOfWeekIndexed(ix *fot.TraceIndex, c fot.Component) (*DayOfWeekResult, error) {
	rows, err := requireFailureRows(ix)
	if err != nil {
		return nil, err
	}
	if c != 0 {
		rows = ix.FailureRowsByComponent(c)
		if len(rows) == 0 {
			return nil, errNoTickets("component", c.String())
		}
	}
	cols := ix.Cols()
	res := &DayOfWeekResult{Component: c}
	for _, r := range rows {
		res.Counts[cols.Weekday[r]]++
	}
	total := len(rows)
	for d := range res.Counts {
		res.Fractions[d] = float64(res.Counts[d]) / float64(total)
	}
	res.Test, err = stats.ChiSquareUniform(res.Counts[:])
	if err != nil {
		return nil, err
	}
	weekdays := []int{
		res.Counts[time.Monday], res.Counts[time.Tuesday], res.Counts[time.Wednesday],
		res.Counts[time.Thursday], res.Counts[time.Friday],
	}
	res.WeekdayTest, err = stats.ChiSquareUniform(weekdays)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// HourOfDayResult reproduces Fig. 4 and tests Hypothesis 2 for one
// component class.
type HourOfDayResult struct {
	Component fot.Component
	Counts    [24]int
	Fractions [24]float64
	Test      stats.ChiSquareResult
}

// HourOfDay computes Fig. 4 for one component class. Pass component 0 to
// aggregate all classes.
func HourOfDay(tr *fot.Trace, c fot.Component) (*HourOfDayResult, error) {
	return HourOfDayIndexed(fot.BorrowTraceIndex(tr), c)
}

// HourOfDayIndexed is HourOfDay over a shared TraceIndex: one dense
// count over the precomputed hour column.
func HourOfDayIndexed(ix *fot.TraceIndex, c fot.Component) (*HourOfDayResult, error) {
	rows, err := requireFailureRows(ix)
	if err != nil {
		return nil, err
	}
	if c != 0 {
		rows = ix.FailureRowsByComponent(c)
		if len(rows) == 0 {
			return nil, errNoTickets("component", c.String())
		}
	}
	cols := ix.Cols()
	res := &HourOfDayResult{Component: c}
	for _, r := range rows {
		res.Counts[cols.Hour[r]]++
	}
	total := len(rows)
	for h := range res.Counts {
		res.Fractions[h] = float64(res.Counts[h]) / float64(total)
	}
	res.Test, err = stats.ChiSquareUniform(res.Counts[:])
	if err != nil {
		return nil, err
	}
	return res, nil
}
