package core

import (
	"slices"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// ResponseTimesResult reproduces Fig. 9 for one ticket category: the
// distribution of operator response times RT = op_time − error_time.
type ResponseTimesResult struct {
	Category fot.Category
	N        int
	// Day-denominated summary statistics. The paper reports MTTR 42.2
	// days for D_fixing (median 6.1) and 19.1 days for false alarms
	// (median 4.9).
	MeanDays   float64
	MedianDays float64
	P90Days    float64
	P99Days    float64
	// FracOver140 / FracOver200: the long-tail fractions the paper
	// highlights (10% beyond 140 days, 2% beyond 200).
	FracOver140 float64
	FracOver200 float64
	// CDF is the plottable distribution (x in days).
	CDF []stats.Point
}

// ResponseTimes computes Fig. 9 for one category (Fixing or FalseAlarm;
// D_error tickets carry no response by definition).
func ResponseTimes(tr *fot.Trace, cat fot.Category) (*ResponseTimesResult, error) {
	return ResponseTimesIndexed(fot.BorrowTraceIndex(tr), cat)
}

// ResponseTimesIndexed is ResponseTimes over a shared TraceIndex.
func ResponseTimesIndexed(ix *fot.TraceIndex, cat fot.Category) (*ResponseTimesResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	days := rtDaysRows(ix.Cols(), ix.RowsByCategory(cat))
	if len(days) == 0 {
		return nil, errNoTickets("category", cat.String())
	}
	return summarizeRT(cat, days), nil
}

// ResponseTimesByClass computes Fig. 10: the RT distribution per component
// class over all tickets with a recorded response.
func ResponseTimesByClass(tr *fot.Trace) (map[fot.Component]*ResponseTimesResult, error) {
	return ResponseTimesByClassIndexed(fot.BorrowTraceIndex(tr))
}

// ResponseTimesByClassIndexed is ResponseTimesByClass over a shared
// TraceIndex.
func ResponseTimesByClassIndexed(ix *fot.TraceIndex) (map[fot.Component]*ResponseTimesResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	cols := ix.Cols()
	out := make(map[fot.Component]*ResponseTimesResult)
	for _, c := range fot.Components() {
		days := rtDaysRows(cols, ix.AllRowsByComponent(c))
		if len(days) < 8 {
			continue
		}
		out[c] = summarizeRT(0, days)
	}
	if len(out) == 0 {
		return nil, errNoTickets("components with", "responses")
	}
	return out, nil
}

// rtDaysRows collects the day-denominated response times of the rows
// with a recorded response, straight off the RTNS column.
func rtDaysRows(cols *fot.Columns, rows []int32) []float64 {
	out := make([]float64, 0, len(rows))
	for _, r := range rows {
		if ns := cols.RTNS[r]; ns >= 0 {
			out = append(out, time.Duration(ns).Hours()/24)
		}
	}
	return out
}

func summarizeRT(cat fot.Category, days []float64) *ResponseTimesResult {
	sum := stats.Summarize(days)
	res := &ResponseTimesResult{
		Category:   cat,
		N:          sum.N,
		MeanDays:   sum.Mean,
		MedianDays: sum.Median,
		P90Days:    sum.P90,
		P99Days:    sum.P99,
		CDF:        stats.NewECDF(days).Points(256),
	}
	over140, over200 := 0, 0
	for _, d := range days {
		if d > 140 {
			over140++
		}
		if d > 200 {
			over200++
		}
	}
	res.FracOver140 = float64(over140) / float64(len(days))
	res.FracOver200 = float64(over200) / float64(len(days))
	return res
}

// LineRTPoint is one Fig. 11 point: a product line's failure count and
// median response time over the analysis window.
type LineRTPoint struct {
	Line         string
	Failures     int
	MedianRTDays float64
}

// ProductLineRTResult reproduces Fig. 11 and the §VI-C summary numbers.
type ProductLineRTResult struct {
	Component fot.Component
	Points    []LineRTPoint
	// Top1PctMedianDays pools the busiest 1% of lines (paper: 47 days).
	Top1PctMedianDays float64
	// SmallLineOver100dFraction is the share of lines with fewer than
	// 100 failures whose median RT exceeds 100 days (paper: 21%).
	SmallLineOver100dFraction float64
	// MedianStdDevDays is the standard deviation of per-line median RTs
	// (paper: 30.2 days across lines for hard-drive failures).
	MedianStdDevDays float64
	// VolumeRTCorrelation is the Spearman rank correlation between a
	// line's failure count and its median RT. The paper's §VI-C point is
	// that it is NOT positive ("it is just the opposite").
	VolumeRTCorrelation float64
}

// ProductLineRT computes Fig. 11 for one component class (the paper plots
// hard-drive tickets). Lines without any responded ticket are skipped.
func ProductLineRT(tr *fot.Trace, c fot.Component) (*ProductLineRTResult, error) {
	return ProductLineRTIndexed(fot.BorrowTraceIndex(tr), c)
}

// ProductLineRTIndexed is ProductLineRT over a shared TraceIndex. One
// bucketing pass over the scope's rows replaces the per-line re-filter
// of the whole trace the row-struct implementation paid.
func ProductLineRTIndexed(ix *fot.TraceIndex, c fot.Component) (*ProductLineRTResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	cols := ix.Cols()
	scope := ix.TimePerm()
	if c != 0 {
		scope = ix.AllRowsByComponent(c)
	}
	lineRows := make([][]int32, cols.LineCount())
	for _, r := range scope {
		sym := cols.LineSym[r]
		lineRows[sym] = append(lineRows[sym], r)
	}
	lines := make([]string, 0, len(lineRows))
	for sym, rows := range lineRows {
		if len(rows) > 0 && cols.LineName(uint32(sym)) != "" {
			lines = append(lines, cols.LineName(uint32(sym)))
		}
	}
	slices.Sort(lines)

	res := &ProductLineRTResult{Component: c}
	var medians []float64
	for _, line := range lines {
		sym, _ := cols.LineSymOf(line)
		rows := lineRows[sym]
		days := rtDaysRows(cols, rows)
		if len(days) == 0 {
			continue
		}
		failures := 0
		for _, r := range rows {
			if fot.Category(cols.Category[r]).IsFailure() {
				failures++
			}
		}
		med := stats.Median(days)
		res.Points = append(res.Points, LineRTPoint{
			Line:         line,
			Failures:     failures,
			MedianRTDays: med,
		})
		medians = append(medians, med)
	}
	if len(res.Points) == 0 {
		return nil, errNoTickets("product lines with", "responses")
	}
	slices.SortFunc(res.Points, func(a, b LineRTPoint) int {
		if a.Failures != b.Failures {
			return b.Failures - a.Failures
		}
		return cmpString(a.Line, b.Line)
	})
	// Busiest 1% of lines (at least one), pooled ticket median.
	top := len(res.Points) / 100
	if top < 1 {
		top = 1
	}
	var pooled []float64
	for _, pt := range res.Points[:top] {
		sym, _ := cols.LineSymOf(pt.Line)
		pooled = append(pooled, rtDaysRows(cols, lineRows[sym])...)
	}
	res.Top1PctMedianDays = stats.Median(pooled)

	small, slow := 0, 0
	for _, pt := range res.Points {
		if pt.Failures < 100 {
			small++
			if pt.MedianRTDays > 100 {
				slow++
			}
		}
	}
	if small > 0 {
		res.SmallLineOver100dFraction = float64(slow) / float64(small)
	}
	if len(medians) > 1 {
		res.MedianStdDevDays = stats.StdDev(medians)
	}
	if len(res.Points) >= 3 {
		volumes := make([]float64, len(res.Points))
		meds := make([]float64, len(res.Points))
		for i, pt := range res.Points {
			volumes[i] = float64(pt.Failures)
			meds[i] = pt.MedianRTDays
		}
		if rho, err := stats.SpearmanRho(volumes, meds); err == nil {
			res.VolumeRTCorrelation = rho
		}
	}
	return res, nil
}
