package core

import (
	"strings"
	"testing"
)

func TestHypothesesSummary(t *testing.T) {
	res, cen := fixture(t)
	h, err := Hypotheses(res.Trace, cen)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Verdicts) != 5 {
		t.Fatalf("got %d verdicts, want 5", len(h.Verdicts))
	}
	for i, v := range h.Verdicts {
		if v.ID != i+1 {
			t.Errorf("verdict %d has id %d", i, v.ID)
		}
		if v.Statement == "" || v.Scope == "" {
			t.Errorf("verdict %d incomplete: %+v", i, v)
		}
		if !v.Rejected {
			t.Errorf("H%d not rejected: %+v", v.ID, v)
		}
	}
	if !h.AllMatchPaper() {
		t.Error("verdicts do not match the paper's outcomes")
	}
	// H5 carries the Table IV split.
	if !strings.Contains(h.Verdicts[4].Detail, "facilities") {
		t.Errorf("H5 detail missing Table IV split: %q", h.Verdicts[4].Detail)
	}
	// H3 names the least-bad family.
	if !strings.Contains(h.Verdicts[2].Detail, "least-bad") {
		t.Errorf("H3 detail missing AIC ranking: %q", h.Verdicts[2].Detail)
	}
}

func TestHypothesesWithoutCensus(t *testing.T) {
	res, _ := fixture(t)
	h, err := Hypotheses(res.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Verdicts) != 4 {
		t.Fatalf("without census: %d verdicts, want 4", len(h.Verdicts))
	}
	if h.AllMatchPaper() {
		t.Error("AllMatchPaper should require all five hypotheses")
	}
}

func TestTBFBestFamilySet(t *testing.T) {
	res, _ := fixture(t)
	tbf, err := TBFAnalysis(res.Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	switch tbf.BestFamily {
	case "weibull", "gamma", "lognormal", "exponential":
	default:
		t.Errorf("best family = %q", tbf.BestFamily)
	}
}
