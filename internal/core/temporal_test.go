package core

import (
	"math"
	"testing"
	"time"

	"dcfail/internal/fot"
)

func TestHypothesis1DayOfWeek(t *testing.T) {
	res, _ := fixture(t)
	dow, err := DayOfWeek(res.Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	fracSum := 0.0
	for d := range dow.Counts {
		total += dow.Counts[d]
		fracSum += dow.Fractions[d]
	}
	if total != res.Trace.Failures().Len() {
		t.Errorf("counts sum %d != failures %d", total, res.Trace.Failures().Len())
	}
	if math.Abs(fracSum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", fracSum)
	}
	// Paper: rejected at 0.01 for all classes; 0.02 excluding weekends.
	if !dow.Test.Reject(0.01) {
		t.Errorf("Hypothesis 1 not rejected: %v", dow.Test)
	}
	if !dow.WeekdayTest.Reject(0.05) {
		t.Errorf("weekday-only test not rejected: %v", dow.WeekdayTest)
	}
}

func TestHypothesis1PerClass(t *testing.T) {
	res, _ := fixture(t)
	// The most numerous classes must individually reject uniformity.
	for _, c := range []fot.Component{fot.HDD, fot.Misc} {
		dow, err := DayOfWeek(res.Trace, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !dow.Test.Reject(0.01) {
			t.Errorf("%v: Hypothesis 1 not rejected: %v", c, dow.Test)
		}
	}
	// Misc (human-filed) should show the strongest weekend dip: Sunday
	// below the weekday average.
	dow, err := DayOfWeek(res.Trace, fot.Misc)
	if err != nil {
		t.Fatal(err)
	}
	weekdayAvg := 0.0
	for _, d := range []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday} {
		weekdayAvg += dow.Fractions[d]
	}
	weekdayAvg /= 5
	if !(dow.Fractions[time.Sunday] < weekdayAvg/2) {
		t.Errorf("misc Sunday %.4f not far below weekday average %.4f",
			dow.Fractions[time.Sunday], weekdayAvg)
	}
}

func TestHypothesis2HourOfDay(t *testing.T) {
	res, _ := fixture(t)
	for _, c := range []fot.Component{0, fot.HDD, fot.Misc} {
		hod, err := HourOfDay(res.Trace, c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !hod.Test.Reject(0.01) {
			t.Errorf("%v: Hypothesis 2 not rejected: %v", c, hod.Test)
		}
		sum := 0.0
		for h := range hod.Fractions {
			sum += hod.Fractions[h]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: fractions sum to %g", c, sum)
		}
	}
}

func TestMiscHourShapeIsHuman(t *testing.T) {
	res, _ := fixture(t)
	hod, err := HourOfDay(res.Trace, fot.Misc)
	if err != nil {
		t.Fatal(err)
	}
	// Office hours dominate the small hours (Fig. 4h).
	office := hod.Fractions[10] + hod.Fractions[11] + hod.Fractions[15] + hod.Fractions[16]
	night := hod.Fractions[1] + hod.Fractions[2] + hod.Fractions[3] + hod.Fractions[4]
	if !(office > 4*night) {
		t.Errorf("misc office-hours mass %.4f not ≫ night mass %.4f", office, night)
	}
}

func TestDayOfWeekUnknownComponent(t *testing.T) {
	res, _ := fixture(t)
	onlyHDD := res.Trace.ByComponent(fot.HDD)
	if _, err := DayOfWeek(onlyHDD, fot.Memory); err == nil {
		t.Error("missing class should error")
	}
	if _, err := HourOfDay(onlyHDD, fot.Memory); err == nil {
		t.Error("missing class should error")
	}
}
