package core

import (
	"cmp"
	"slices"
	"time"

	"dcfail/internal/fot"
)

// pfEvent is one power→fan candidate pair, kept so the render can
// reproduce the full path's "first 8 in ascending-host order" selection
// even though pairs form in global time order.
type pfEvent struct {
	host uint64
	a, b int32
}

// corrPairsState carries Table VI's per-host pairing automaton over
// first-instance failure rows. The full scan walks each host's rows with
// an index that advances by one on a miss and two on a pair; a single
// pending row per host replays that exactly: pair → both consumed,
// miss → the older row is discarded and the newer becomes pending.
type corrPairsState struct {
	seen        map[instKey]struct{}
	pending     map[uint64]int32 // host -> pending row; -1 = none (host still counts as failed)
	counts      map[[2]fot.Component]int
	totalPairs  int
	miscPairs   int
	pairedHosts map[uint64]bool
	pfEvents    []pfEvent
}

// CorrelatedPairsUpdater returns the fold function of Table VI for the
// given window (<= 0 = the paper's 24h).
func CorrelatedPairsUpdater(window time.Duration) func(SectionState, *fot.TraceIndex, []int32) (SectionState, error) {
	if window <= 0 {
		window = 24 * time.Hour
	}
	windowNS := int64(window)
	return func(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
		return updateCorrPairs(prev, ix, newRows, windowNS)
	}
}

func newCorrPairsState() *corrPairsState {
	return &corrPairsState{
		seen:        make(map[instKey]struct{}),
		pending:     make(map[uint64]int32),
		counts:      make(map[[2]fot.Component]int),
		pairedHosts: make(map[uint64]bool),
	}
}

func updateCorrPairs(prev SectionState, ix *fot.TraceIndex, newRows []int32, windowNS int64) (SectionState, error) {
	st, _ := prev.(*corrPairsState)
	cols := ix.Cols()
	powerFan := canonicalPair(fot.Power, fot.Fan)
	var next *corrPairsState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			if st != nil {
				next = &corrPairsState{}
				*next = *st // containers absorbed: prev handed off
			} else {
				next = newCorrPairsState()
			}
		}
		k := instKey{cols.Host[r], cols.Device[r], cols.SlotSym[r], cols.TypeSym[r]}
		if _, ok := next.seen[k]; ok {
			continue
		}
		next.seen[k] = struct{}{}
		host := cols.Host[r]
		a, ok := next.pending[host]
		if !ok || a < 0 {
			next.pending[host] = r
			continue
		}
		devA, devB := fot.Component(cols.Device[a]), fot.Component(cols.Device[r])
		if cols.TimeNS[r]-cols.TimeNS[a] > windowNS || devA == devB {
			next.pending[host] = r // miss: discard the older row
			continue
		}
		key := canonicalPair(devA, devB)
		next.counts[key]++
		next.totalPairs++
		next.pairedHosts[host] = true
		if key == powerFan {
			next.pfEvents = append(next.pfEvents, pfEvent{host: host, a: a, b: r})
		}
		if devA == fot.Misc || devB == fot.Misc {
			next.miscPairs++
		}
		next.pending[host] = -1 // both consumed
	}
	if next == nil {
		if st == nil {
			return newCorrPairsState(), nil
		}
		return prev, nil
	}
	return next, nil
}

// CorrelatedPairsFromState renders Table VI from carried state,
// byte-identical to CorrelatedPairsIndexed with the same window.
func CorrelatedPairsFromState(state SectionState, ix *fot.TraceIndex, window time.Duration) (*CorrelatedPairsResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	if window <= 0 {
		window = 24 * time.Hour
	}
	st := state.(*corrPairsState)
	cols := ix.Cols()
	res := &CorrelatedPairsResult{Window: window}
	res.FailedServers = len(st.pending)
	res.TotalPairs = st.totalPairs
	res.MiscFraction = float64(st.miscPairs)
	res.ServersWithPairs = len(st.pairedHosts)
	// The full scan collects the first 8 examples walking hosts in
	// ascending order; a stable sort by host restores that order from the
	// time-ordered event log.
	events := append([]pfEvent(nil), st.pfEvents...)
	slices.SortStableFunc(events, func(x, y pfEvent) int { return cmp.Compare(x.host, y.host) })
	if len(events) > 8 {
		events = events[:8]
	}
	for _, ev := range events {
		first, second := *cols.Ticket(ev.a), *cols.Ticket(ev.b)
		if first.Device != fot.Power {
			first, second = second, first
		}
		res.PowerFanExamples = append(res.PowerFanExamples, PairExample{
			HostID: ev.host, First: first, Second: second,
		})
	}
	if res.TotalPairs > 0 {
		res.MiscFraction /= float64(res.TotalPairs)
	}
	if res.FailedServers > 0 {
		res.ServerFraction = float64(res.ServersWithPairs) / float64(res.FailedServers)
	}
	for key, n := range st.counts {
		res.Pairs = append(res.Pairs, PairCount{A: key[0], B: key[1], Count: n})
	}
	slices.SortFunc(res.Pairs, func(a, b PairCount) int {
		if a.Count != b.Count {
			return b.Count - a.Count
		}
		if a.A != b.A {
			return int(a.A) - int(b.A)
		}
		return int(a.B) - int(b.B)
	})
	return res, nil
}

// syncEmission mirrors SyncRepeatGroupsIndexed's emission entries.
type syncEmission struct {
	a, b  uint64
	grain int64
	key   uint64
	row   int32
}

// syncShiftRun is one (group, shift) bucketing automaton: the closed
// emissions so far plus the open bucket run.
type syncShiftRun struct {
	closed   []syncEmission
	open     []int32
	bucket   int64
	haveOpen bool
}

// syncRepeatState carries Table VIII's per-(device, type) bucket runs for
// both bucketing passes.
type syncRepeatState struct {
	groups      map[uint64]*[2]syncShiftRun
	firstByHost map[uint64]int32 // fold scratch
	runHosts    []uint64         // fold scratch
}

// SyncRepeatUpdater returns the fold function of Table VIII for the
// given skew (<= 0 = the paper's 2 minutes).
func SyncRepeatUpdater(maxSkew time.Duration) func(SectionState, *fot.TraceIndex, []int32) (SectionState, error) {
	if maxSkew <= 0 {
		maxSkew = 2 * time.Minute
	}
	skew := int64(maxSkew / time.Second)
	return func(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
		return updateSyncRepeat(prev, ix, newRows, skew)
	}
}

func updateSyncRepeat(prev SectionState, ix *fot.TraceIndex, newRows []int32, skew int64) (SectionState, error) {
	st, _ := prev.(*syncRepeatState)
	cols := ix.Cols()
	shifts := [2]int64{0, skew / 2}
	var next *syncRepeatState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			if st != nil {
				next = &syncRepeatState{groups: st.groups, firstByHost: st.firstByHost, runHosts: st.runHosts}
			} else {
				next = &syncRepeatState{groups: make(map[uint64]*[2]syncShiftRun), firstByHost: make(map[uint64]int32)}
			}
		}
		k := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
		g := next.groups[k]
		if g == nil {
			g = &[2]syncShiftRun{}
			next.groups[k] = g
		}
		unix := cols.Ticket(r).Time.Unix()
		for si, shift := range shifts {
			run := &g[si]
			b := (unix + shift) / skew
			if !run.haveOpen {
				run.open = append(run.open[:0], r)
				run.bucket, run.haveOpen = b, true
				continue
			}
			if b == run.bucket {
				run.open = append(run.open, r)
				continue
			}
			run.closed = emitSyncRun(run.closed, cols, k, skew, run.open, next.firstByHost, &next.runHosts)
			run.open = append(run.open[:0:0], r)
			run.bucket = b
		}
	}
	if next == nil {
		if st == nil {
			return &syncRepeatState{groups: make(map[uint64]*[2]syncShiftRun), firstByHost: make(map[uint64]int32)}, nil
		}
		return prev, nil
	}
	return next, nil
}

// emitSyncRun is SyncRepeatGroupsIndexed's emitRun against one closed
// bucket run, appending to dst.
func emitSyncRun(dst []syncEmission, cols *fot.Columns, key uint64, skew int64, rows []int32, firstByHost map[uint64]int32, runHosts *[]uint64) []syncEmission {
	clear(firstByHost)
	hosts := (*runHosts)[:0]
	for _, r := range rows {
		h := cols.Host[r]
		if _, ok := firstByHost[h]; !ok {
			firstByHost[h] = r
			hosts = append(hosts, h)
		}
	}
	*runHosts = hosts
	const maxBucketHosts = 8
	if len(hosts) < 2 || len(hosts) > maxBucketHosts {
		return dst
	}
	slices.Sort(hosts)
	for i := 0; i < len(hosts); i++ {
		r := firstByHost[hosts[i]]
		grain := cols.Ticket(r).Time.Unix() / skew
		for j := i + 1; j < len(hosts); j++ {
			dst = append(dst, syncEmission{hosts[i], hosts[j], grain, key, r})
		}
	}
	return dst
}

// SyncRepeatGroupsFromState renders Table VIII from carried state,
// byte-identical to SyncRepeatGroupsIndexed with the same parameters.
// Within each group the emission order is both shift-0 passes' closed
// runs in time order, then the open run — exactly the full scan's
// per-group order — and the cross-group order is irrelevant because the
// stable sort separates groups by key before grouping.
func SyncRepeatGroupsFromState(state SectionState, ix *fot.TraceIndex, maxSkew time.Duration, minOccurrences int) ([]SyncRepeatGroup, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	if maxSkew <= 0 {
		maxSkew = 2 * time.Minute
	}
	if minOccurrences < 2 {
		minOccurrences = 2
	}
	skew := int64(maxSkew / time.Second)
	st := state.(*syncRepeatState)
	cols := ix.Cols()

	var emits []syncEmission
	firstByHost := make(map[uint64]int32) // renders may run concurrently; own scratch
	var runHosts []uint64
	for k, g := range st.groups {
		for si := range g {
			run := &g[si]
			emits = append(emits, run.closed...)
			if run.haveOpen {
				emits = emitSyncRun(emits, cols, k, skew, run.open, firstByHost, &runHosts)
			}
		}
	}

	// Group emissions by (a, b, key) instead of globally sorting all of
	// them: almost every group is far too small to reach minOccurrences
	// and can be skipped without ever being sorted. Within a group the
	// previous global (a, b, key, grain, position) sort reduces to
	// (grain, append position), which the per-group sort reproduces —
	// append order within one group is deterministic regardless of the
	// state-map walk above, so index order stands in for it. Group
	// processing order does not matter: (HostA, HostB, Component, Type)
	// identifies a group uniquely, so the final sort below totally
	// determines the output order.
	type syncEmitGroup struct{ a, b, key uint64 }
	counts := make(map[syncEmitGroup]int32, len(emits)/2)
	for i := range emits {
		e := &emits[i]
		counts[syncEmitGroup{e.a, e.b, e.key}]++
	}
	// Lay the surviving groups out in one flat index buffer (CSR-style)
	// instead of a slice per group: groups under minOccurrences — the
	// vast majority — get no slots at all, and the fill pass walks emits
	// in append order, so each span preserves its group's deterministic
	// relative order.
	type groupSpan struct {
		gk       syncEmitGroup
		from, to int32
	}
	spans := make([]groupSpan, 0, 16)
	cursor := make(map[syncEmitGroup]int32, 16)
	var off int32
	for gk, cnt := range counts {
		if int(cnt) < minOccurrences { // occurrences <= emission count
			continue
		}
		//lint:ignore maporder span order never reaches the output: groups are independent and out is totally sorted below
		spans = append(spans, groupSpan{gk, off, off + cnt})
		cursor[gk] = off
		off += cnt
	}
	idxBuf := make([]int32, off)
	for i := range emits {
		e := &emits[i]
		gk := syncEmitGroup{e.a, e.b, e.key}
		p, live := cursor[gk]
		if !live {
			continue
		}
		idxBuf[p] = int32(i)
		cursor[gk] = p + 1
	}

	var out []SyncRepeatGroup
	for _, sp := range spans {
		gk, idxs := sp.gk, idxBuf[sp.from:sp.to]
		slices.SortFunc(idxs, func(xi, yi int32) int {
			if gx, gy := emits[xi].grain, emits[yi].grain; gx != gy {
				return cmp.Compare(gx, gy)
			}
			return cmp.Compare(xi, yi)
		})
		occurrences := 1
		for k := 1; k < len(idxs); k++ {
			if emits[idxs[k]].grain != emits[idxs[k-1]].grain {
				occurrences++
			}
		}
		if occurrences < minOccurrences {
			continue
		}
		g := SyncRepeatGroup{
			HostA: gk.a, HostB: gk.b,
			Occurrences: occurrences,
			Component:   fot.Component(gk.key >> 32),
			Type:        cols.TypeName(uint32(gk.key)),
			Times:       make([]time.Time, 0, occurrences),
		}
		for k, xi := range idxs {
			if k+1 < len(idxs) && emits[idxs[k+1]].grain == emits[xi].grain {
				continue
			}
			g.Times = append(g.Times, cols.Ticket(emits[xi].row).Time)
		}
		slices.SortFunc(g.Times, func(a, b time.Time) int { return a.Compare(b) })
		if len(g.Times) > 8 {
			g.Times = g.Times[:8]
		}
		out = append(out, g)
	}
	slices.SortFunc(out, func(a, b SyncRepeatGroup) int {
		if a.Occurrences != b.Occurrences {
			return b.Occurrences - a.Occurrences
		}
		if a.HostA != b.HostA {
			if a.HostA < b.HostA {
				return -1
			}
			return 1
		}
		if a.HostB != b.HostB {
			if a.HostB < b.HostB {
				return -1
			}
			return 1
		}
		if a.Component != b.Component {
			return int(a.Component) - int(b.Component)
		}
		return cmpString(a.Type, b.Type)
	})
	return out, nil
}
