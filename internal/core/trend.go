package core

import (
	"cmp"
	"slices"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// YearStats is one calendar year of the trace.
type YearStats struct {
	Year     int
	Tickets  int
	Failures int
	// MTBFMinutes is the fleet-wide mean time between failures within
	// the year.
	MTBFMinutes float64
	// FailedServers counts distinct servers with a failure in the year.
	FailedServers int
	// ErrorShare is the D_error fraction — it grows as the fleet ages
	// out of warranty.
	ErrorShare float64
	// MedianRTDays is the median operator response among the year's
	// D_fixing tickets.
	MedianRTDays float64
}

// TrendResult is the year-over-year evolution of the trace — the view
// behind the paper's §VIII remark that monitoring coverage, fleet size and
// failure behavior all drifted across the four years.
type TrendResult struct {
	Years []YearStats
}

// Trend computes per-calendar-year statistics of the trace.
func Trend(tr *fot.Trace) (*TrendResult, error) {
	return TrendIndexed(fot.BorrowTraceIndex(tr))
}

// rowsInRange cuts the [fromNS, toNS) window out of a time-ordered row
// slice by binary search — no per-year filter pass over the whole trace.
func rowsInRange(cols *fot.Columns, rows []int32, fromNS, toNS int64) []int32 {
	cmpNS := func(r int32, ns int64) int { return cmp.Compare(cols.TimeNS[r], ns) }
	lo, _ := slices.BinarySearchFunc(rows, fromNS, cmpNS)
	hi, _ := slices.BinarySearchFunc(rows, toNS, cmpNS)
	return rows[lo:hi]
}

// TrendIndexed is Trend over a shared TraceIndex.
func TrendIndexed(ix *fot.TraceIndex) (*TrendResult, error) {
	fail, err := requireFailureRows(ix)
	if err != nil {
		return nil, err
	}
	cols := ix.Cols()
	perm := ix.TimePerm()
	lo, hi, _ := ix.FailureSpan()
	res := &TrendResult{}
	for year := lo.Year(); year <= hi.Year(); year++ {
		fromNS := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
		toNS := time.Date(year+1, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
		allRows := rowsInRange(cols, perm, fromNS, toNS)
		failRows := rowsInRange(cols, fail, fromNS, toNS)
		if len(failRows) == 0 {
			continue
		}
		ys := YearStats{
			Year:     year,
			Tickets:  len(allRows),
			Failures: len(failRows),
		}
		if gaps := tbfGaps(cols, failRows); len(gaps) > 0 {
			ys.MTBFMinutes = stats.Mean(gaps)
		}
		hosts := make(map[uint64]bool)
		errs := 0
		var rt []float64
		for _, r := range failRows {
			hosts[cols.Host[r]] = true
			switch fot.Category(cols.Category[r]) {
			case fot.Error:
				errs++
			case fot.Fixing:
				if ns := cols.RTNS[r]; ns >= 0 {
					rt = append(rt, time.Duration(ns).Hours()/24)
				}
			}
		}
		ys.FailedServers = len(hosts)
		ys.ErrorShare = float64(errs) / float64(len(failRows))
		if len(rt) > 0 {
			ys.MedianRTDays = stats.Median(rt)
		}
		res.Years = append(res.Years, ys)
	}
	slices.SortFunc(res.Years, func(a, b YearStats) int { return a.Year - b.Year })
	if len(res.Years) == 0 {
		return nil, errNoTickets("years with", "failures")
	}
	return res, nil
}

// FleetGrowth reports whether yearly failure volume grew monotonically —
// the deployment-ramp signature of a growing fleet.
func (r *TrendResult) FleetGrowth() bool {
	for i := 1; i < len(r.Years); i++ {
		if r.Years[i].Failures < r.Years[i-1].Failures {
			return false
		}
	}
	return len(r.Years) > 1
}
