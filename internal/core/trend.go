package core

import (
	"sort"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// YearStats is one calendar year of the trace.
type YearStats struct {
	Year     int
	Tickets  int
	Failures int
	// MTBFMinutes is the fleet-wide mean time between failures within
	// the year.
	MTBFMinutes float64
	// FailedServers counts distinct servers with a failure in the year.
	FailedServers int
	// ErrorShare is the D_error fraction — it grows as the fleet ages
	// out of warranty.
	ErrorShare float64
	// MedianRTDays is the median operator response among the year's
	// D_fixing tickets.
	MedianRTDays float64
}

// TrendResult is the year-over-year evolution of the trace — the view
// behind the paper's §VIII remark that monitoring coverage, fleet size and
// failure behavior all drifted across the four years.
type TrendResult struct {
	Years []YearStats
}

// Trend computes per-calendar-year statistics of the trace.
func Trend(tr *fot.Trace) (*TrendResult, error) {
	return TrendIndexed(fot.BorrowTraceIndex(tr))
}

// TrendIndexed is Trend over a shared TraceIndex.
func TrendIndexed(ix *fot.TraceIndex) (*TrendResult, error) {
	if _, err := requireFailures(ix); err != nil {
		return nil, err
	}
	lo, hi, _ := ix.FailureSpan()
	res := &TrendResult{}
	for year := lo.Year(); year <= hi.Year(); year++ {
		from := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
		to := from.AddDate(1, 0, 0)
		all := ix.All().Between(from, to)
		fail := all.Failures()
		if fail.Len() == 0 {
			continue
		}
		ys := YearStats{
			Year:     year,
			Tickets:  all.Len(),
			Failures: fail.Len(),
		}
		if gaps := fail.TBF(); len(gaps) > 0 {
			ys.MTBFMinutes = stats.Mean(gaps)
		}
		hosts := make(map[uint64]bool)
		errs := 0
		var rt []float64
		for _, tk := range fail.Tickets {
			hosts[tk.HostID] = true
			if tk.Category == fot.Error {
				errs++
			}
			if tk.Category == fot.Fixing {
				if d, ok := tk.ResponseTime(); ok {
					rt = append(rt, d.Hours()/24)
				}
			}
		}
		ys.FailedServers = len(hosts)
		ys.ErrorShare = float64(errs) / float64(fail.Len())
		if len(rt) > 0 {
			ys.MedianRTDays = stats.Median(rt)
		}
		res.Years = append(res.Years, ys)
	}
	sort.Slice(res.Years, func(i, j int) bool { return res.Years[i].Year < res.Years[j].Year })
	if len(res.Years) == 0 {
		return nil, errNoTickets("years with", "failures")
	}
	return res, nil
}

// FleetGrowth reports whether yearly failure volume grew monotonically —
// the deployment-ramp signature of a growing fleet.
func (r *TrendResult) FleetGrowth() bool {
	for i := 1; i < len(r.Years); i++ {
		if r.Years[i].Failures < r.Years[i-1].Failures {
			return false
		}
	}
	return len(r.Years) > 1
}
