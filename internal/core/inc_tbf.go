package core

import (
	"fmt"
	"slices"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// tbfScopeState carries Fig. 5's gap series for one scope (component 0 =
// all classes): the floored gaps in chronological order (the order every
// MLE sum consumes them in, so fits stay bit-identical to the full path),
// the same multiset kept ascending for quantiles/ECDF, and per-IDC raw
// gap series for the MTBF table.
type tbfScopeState struct {
	nRows  int
	lastNS int64
	chrono []float64 // floored gaps, chronological
	sorted []float64 // same multiset, ascending, fresh array per fold

	idcN    []int       // scope rows seen per IDC symbol
	idcLast []int64     // last scope-row time per IDC symbol
	idcGaps [][]float64 // raw (unfloored) gaps per IDC symbol, chronological
}

// TBFUpdater returns the fold function of the Fig. 5 scope for component
// c (0 = all classes).
func TBFUpdater(c fot.Component) func(SectionState, *fot.TraceIndex, []int32) (SectionState, error) {
	return func(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
		return updateTBFScope(prev, ix, newRows, c)
	}
}

func updateTBFScope(prev SectionState, ix *fot.TraceIndex, newRows []int32, c fot.Component) (SectionState, error) {
	st, _ := prev.(*tbfScopeState)
	cols := ix.Cols()
	var next *tbfScopeState
	var fresh []float64 // this fold's new floored gaps
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if c != 0 && fot.Component(cols.Device[r]) != c {
			continue
		}
		if next == nil {
			next = &tbfScopeState{}
			if st != nil {
				*next = *st
				next.idcN = append([]int(nil), st.idcN...)
				next.idcLast = append([]int64(nil), st.idcLast...)
				next.idcGaps = append([][]float64(nil), st.idcGaps...)
			}
		}
		t := cols.TimeNS[r]
		if next.nRows > 0 {
			g := time.Duration(t - next.lastNS).Minutes()
			if g < tbfFloorMinutes {
				g = tbfFloorMinutes
			}
			next.chrono = append(next.chrono, g)
			fresh = append(fresh, g)
		}
		next.nRows++
		next.lastNS = t
		sym := int(cols.IDCSym[r])
		if len(next.idcN) <= sym {
			next.idcN = append(next.idcN, make([]int, sym+1-len(next.idcN))...)
			next.idcLast = append(next.idcLast, make([]int64, sym+1-len(next.idcLast))...)
			next.idcGaps = append(next.idcGaps, make([][]float64, sym+1-len(next.idcGaps))...)
		}
		if next.idcN[sym] > 0 {
			next.idcGaps[sym] = append(next.idcGaps[sym], time.Duration(t-next.idcLast[sym]).Minutes())
		}
		next.idcN[sym]++
		next.idcLast[sym] = t
	}
	if next == nil {
		if st == nil {
			return &tbfScopeState{}, nil
		}
		return prev, nil
	}
	if len(fresh) > 0 {
		next.sorted = mergeSortedGaps(next.sorted, fresh)
	}
	return next, nil
}

// mergeSortedGaps merges an ascending array with an unsorted batch into a
// fresh ascending array, leaving both inputs untouched.
func mergeSortedGaps(sorted, fresh []float64) []float64 {
	tail := append([]float64(nil), fresh...)
	slices.Sort(tail)
	out := make([]float64, 0, len(sorted)+len(tail))
	i, j := 0, 0
	for i < len(sorted) && j < len(tail) {
		if sorted[i] <= tail[j] {
			out = append(out, sorted[i])
			i++
		} else {
			out = append(out, tail[j])
			j++
		}
	}
	out = append(out, sorted[i:]...)
	out = append(out, tail[j:]...)
	return out
}

// TBFFromState renders the Fig. 5 result for one scope from carried
// state, byte-identical to TBFAnalysisIndexed — including sharing its
// memo slot, so the hypotheses section and Fig. 5 still compute the fits
// once per epoch between them.
func TBFFromState(state SectionState, ix *fot.TraceIndex, c fot.Component) (*TBFResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	m := ix.Memo(fmt.Sprintf("core.tbf.%d", int(c)), func() any {
		res, err := tbfFromStateUncached(state.(*tbfScopeState), ix, c)
		return tbfMemo{res, err}
	}).(tbfMemo)
	return m.res, m.err
}

func tbfFromStateUncached(st *tbfScopeState, ix *fot.TraceIndex, c fot.Component) (*TBFResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	cols := ix.Cols()
	scope := "all"
	if c != 0 {
		scope = c.String()
		if st.nRows < 16 {
			return nil, errNoTickets("component", c.String())
		}
	}
	gaps := st.chrono
	if len(gaps) < 16 {
		return nil, errNoTickets("scope", scope)
	}
	res := &TBFResult{
		Scope:         scope,
		N:             len(gaps),
		MTBFMinutes:   stats.Mean(gaps),
		MedianMinutes: stats.QuantileSorted(st.sorted, 0.5),
		Fits:          stats.FitAllWithECDF(gaps, stats.NewECDFSorted(st.sorted), tbfFitBinsScope),
	}
	res.CDF = stats.NewECDFSorted(st.sorted).Points(256)
	res.PerIDCMTBF = make(map[string]float64)
	if ranked := stats.RankFitsByAIC(gaps, res.Fits); len(ranked) > 0 && ranked[0].Err == nil {
		res.BestFamily = ranked[0].Dist.Name()
	}
	for sym, g := range st.idcGaps {
		if len(g) < 2 {
			continue
		}
		if idc := cols.IDCName(uint32(sym)); idc != "" {
			res.PerIDCMTBF[idc] = stats.Mean(g)
		}
	}
	return res, nil
}
