package core

import (
	"slices"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// serverSkewState carries Fig. 7's per-server failure counts plus the
// running maximum (count, smallest host holding it).
type serverSkewState struct {
	counts   map[uint64]int
	total    int
	maxCount int
	maxHost  uint64
}

// UpdateServerSkew folds appended rows into the Fig. 7 state.
func UpdateServerSkew(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*serverSkewState)
	cols := ix.Cols()
	var next *serverSkewState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			next = &serverSkewState{counts: make(map[uint64]int)}
			if st != nil {
				next.counts = st.counts // absorbed: prev handed off
				next.total = st.total
				next.maxCount = st.maxCount
				next.maxHost = st.maxHost
			}
		}
		h := cols.Host[r]
		c := next.counts[h] + 1
		next.counts[h] = c
		next.total++
		// Counts only grow, so the running max needs two cases: a new
		// unique maximum, or h joining the current maximum from below —
		// ties keep the smallest host, as the full path's ascending scan
		// with strict > does.
		if c > next.maxCount {
			next.maxCount, next.maxHost = c, h
		} else if c == next.maxCount && h < next.maxHost {
			next.maxHost = h
		}
	}
	if next == nil {
		if st == nil {
			return &serverSkewState{counts: make(map[uint64]int)}, nil
		}
		return prev, nil
	}
	return next, nil
}

// ServerSkewFromState renders Fig. 7 from carried state, byte-identical
// to ServerSkewIndexed.
func ServerSkewFromState(state SectionState, ix *fot.TraceIndex) (*ServerSkewResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*serverSkewState)
	counts := make([]int, 0, len(st.counts))
	for _, n := range st.counts {
		counts = append(counts, n)
	}
	slices.SortFunc(counts, func(a, b int) int { return b - a })

	res := &ServerSkewResult{
		FailedServers: len(counts),
		TotalFailures: st.total,
		TopShare:      make(map[float64]float64),
		MaxOneServer:  st.maxCount,
		MaxServer:     st.maxHost,
	}
	cum := 0
	cdf := make([]stats.Point, 0, 257)
	step := len(counts)/256 + 1
	for i, n := range counts {
		cum += n
		if i%step == 0 || i == len(counts)-1 {
			cdf = append(cdf, stats.Point{
				X: float64(i+1) / float64(len(counts)),
				Y: float64(cum) / float64(res.TotalFailures),
			})
		}
	}
	res.CDF = cdf
	for _, p := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50} {
		k := int(p * float64(len(counts)))
		if k < 1 {
			k = 1
		}
		sum := 0
		for _, n := range counts[:k] {
			sum += n
		}
		res.TopShare[p] = float64(sum) / float64(res.TotalFailures)
	}
	return res, nil
}

// repeatState carries §III-D's per-instance repair flags and host sets.
type repeatState struct {
	groups            map[instKey]uint8
	serversWithRepeat map[uint64]bool
	hostsSeen         map[uint64]bool
}

// UpdateRepeats folds appended rows into the §III-D state. Rows arrive in
// global time order, so the fixed→repeated flag automaton sees the same
// sequence the full scan does.
func UpdateRepeats(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*repeatState)
	cols := ix.Cols()
	const (
		gFixed    = 1
		gRepeated = 2
	)
	var next *repeatState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			next = &repeatState{
				groups:            make(map[instKey]uint8),
				serversWithRepeat: make(map[uint64]bool),
				hostsSeen:         make(map[uint64]bool),
			}
			if st != nil { // absorbed: prev handed off
				next.groups = st.groups
				next.serversWithRepeat = st.serversWithRepeat
				next.hostsSeen = st.hostsSeen
			}
		}
		k := instKey{cols.Host[r], cols.Device[r], cols.SlotSym[r], cols.TypeSym[r]}
		g := next.groups[k]
		if g&gFixed != 0 {
			g |= gRepeated
			next.serversWithRepeat[cols.Host[r]] = true
		}
		if fot.Category(cols.Category[r]) == fot.Fixing {
			g |= gFixed
		}
		next.groups[k] = g
		next.hostsSeen[cols.Host[r]] = true
	}
	if next == nil {
		if st == nil {
			return &repeatState{
				groups:            make(map[instKey]uint8),
				serversWithRepeat: make(map[uint64]bool),
				hostsSeen:         make(map[uint64]bool),
			}, nil
		}
		return prev, nil
	}
	return next, nil
}

// RepeatsFromState renders §III-D from carried state, byte-identical to
// RepeatAnalysisIndexed.
func RepeatsFromState(state SectionState, ix *fot.TraceIndex) (*RepeatResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*repeatState)
	const (
		gFixed    = 1
		gRepeated = 2
	)
	res := &RepeatResult{FailedServers: len(st.hostsSeen)}
	for _, g := range st.groups {
		if g&gFixed == 0 {
			continue
		}
		res.FixedGroups++
		if g&gRepeated != 0 {
			res.RepeatedGroups++
		}
	}
	if res.FixedGroups > 0 {
		res.NeverRepeatFraction = 1 - float64(res.RepeatedGroups)/float64(res.FixedGroups)
	}
	res.ServersWithRepeats = len(st.serversWithRepeat)
	if res.FailedServers > 0 {
		res.RepeatServerFraction = float64(res.ServersWithRepeats) / float64(res.FailedServers)
	}
	return res, nil
}
