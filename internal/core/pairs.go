package core

import (
	"sort"
	"time"

	"dcfail/internal/fot"
)

// PairCount is one cell of Table VI.
type PairCount struct {
	A, B  fot.Component // canonical order: A < B by component value
	Count int
}

// PairExample is one Table VII row pair: two correlated tickets on the
// same server.
type PairExample struct {
	HostID uint64
	First  fot.Ticket
	Second fot.Ticket
}

// CorrelatedPairsResult reproduces Table VI (and carries the Table VII
// power→fan examples).
type CorrelatedPairsResult struct {
	Window time.Duration
	// Pairs holds the co-failure matrix cells, largest first.
	Pairs      []PairCount
	TotalPairs int
	// MiscFraction is the share of pairs that involve a miscellaneous
	// ticket (paper: 71.5%).
	MiscFraction float64
	// ServersWithPairs / FailedServers give the prevalence (paper:
	// 0.49% of servers that ever failed).
	ServersWithPairs int
	FailedServers    int
	ServerFraction   float64
	// PowerFanExamples are Table VII-style instances.
	PowerFanExamples []PairExample
}

// CorrelatedPairs computes Table VI: failures of two different components
// on the same server within `window` (the paper uses a single day).
// Repeating failures are filtered first, exactly as in the spatial
// analysis — otherwise a single flapping server (the chronic BBU case)
// would flood the matrix.
func CorrelatedPairs(tr *fot.Trace, window time.Duration) (*CorrelatedPairsResult, error) {
	return CorrelatedPairsIndexed(fot.BorrowTraceIndex(tr), window)
}

// CorrelatedPairsIndexed is CorrelatedPairs over a shared TraceIndex.
func CorrelatedPairsIndexed(ix *fot.TraceIndex, window time.Duration) (*CorrelatedPairsResult, error) {
	if _, err := requireFailures(ix); err != nil {
		return nil, err
	}
	failures := ix.FailuresFirstPerInstance()
	if window <= 0 {
		window = 24 * time.Hour
	}
	res := &CorrelatedPairsResult{Window: window}
	counts := make(map[[2]fot.Component]int)
	serversWith := make(map[uint64]bool)

	byHost := failures.GroupByHost()
	res.FailedServers = len(byHost)
	// Walk hosts in sorted order: the Table VII example list is capped, so
	// map-order iteration would pick different examples every run.
	hosts := make([]uint64, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, host := range hosts {
		tickets := byHost[host]
		sort.Slice(tickets, func(i, j int) bool { return tickets[i].Time.Before(tickets[j].Time) })
		for i := 0; i < len(tickets)-1; i++ {
			a := tickets[i]
			b := tickets[i+1]
			if b.Time.Sub(a.Time) > window || a.Device == b.Device {
				continue
			}
			key := canonicalPair(a.Device, b.Device)
			counts[key]++
			res.TotalPairs++
			serversWith[host] = true
			if key == canonicalPair(fot.Power, fot.Fan) && len(res.PowerFanExamples) < 8 {
				first, second := a, b
				if first.Device != fot.Power {
					first, second = b, a
				}
				res.PowerFanExamples = append(res.PowerFanExamples, PairExample{
					HostID: host, First: first, Second: second,
				})
			}
			if a.Device == fot.Misc || b.Device == fot.Misc {
				res.MiscFraction++ // numerator; normalized below
			}
			i++ // consume both tickets of the pair
		}
	}
	if res.TotalPairs > 0 {
		res.MiscFraction /= float64(res.TotalPairs)
	}
	res.ServersWithPairs = len(serversWith)
	if res.FailedServers > 0 {
		res.ServerFraction = float64(res.ServersWithPairs) / float64(res.FailedServers)
	}
	for key, n := range counts {
		res.Pairs = append(res.Pairs, PairCount{A: key[0], B: key[1], Count: n})
	}
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].Count != res.Pairs[j].Count {
			return res.Pairs[i].Count > res.Pairs[j].Count
		}
		if res.Pairs[i].A != res.Pairs[j].A {
			return res.Pairs[i].A < res.Pairs[j].A
		}
		return res.Pairs[i].B < res.Pairs[j].B
	})
	return res, nil
}

func canonicalPair(a, b fot.Component) [2]fot.Component {
	if a > b {
		a, b = b, a
	}
	return [2]fot.Component{a, b}
}

// SyncRepeatGroup is one Table VIII finding: two servers whose identical
// failures recur nearly simultaneously, repeatedly.
type SyncRepeatGroup struct {
	HostA, HostB uint64
	// Occurrences counts synchronized failure instants.
	Occurrences int
	// Times lists the first few synchronized instants.
	Times []time.Time
	// Component/Type of the synchronized failures.
	Component fot.Component
	Type      string
}

// SyncRepeatGroups mines Table VIII: pairs of servers with at least
// minOccurrences failure instants of the same (component, type) within
// maxSkew of each other. Buckets holding many hosts are skipped — those
// are batch failures (§V-A), not repeat twins.
func SyncRepeatGroups(tr *fot.Trace, maxSkew time.Duration, minOccurrences int) ([]SyncRepeatGroup, error) {
	return SyncRepeatGroupsIndexed(fot.BorrowTraceIndex(tr), maxSkew, minOccurrences)
}

// SyncRepeatGroupsIndexed is SyncRepeatGroups over a shared TraceIndex.
func SyncRepeatGroupsIndexed(ix *fot.TraceIndex, maxSkew time.Duration, minOccurrences int) ([]SyncRepeatGroup, error) {
	failures, err := requireFailures(ix)
	if err != nil {
		return nil, err
	}
	if maxSkew <= 0 {
		maxSkew = 2 * time.Minute
	}
	if minOccurrences < 2 {
		minOccurrences = 2
	}
	const maxBucketHosts = 8

	type bucketKey struct {
		dev    fot.Component
		typ    string
		bucket int64
	}
	buckets := make(map[bucketKey]map[uint64]time.Time)
	skew := int64(maxSkew / time.Second)
	for _, tk := range failures.Tickets {
		// Two buckets (floor and shifted) so near-boundary instants meet.
		sec := tk.Time.Unix()
		for _, b := range []int64{sec / skew, (sec + skew/2) / skew} {
			k := bucketKey{tk.Device, tk.Type, b}
			m := buckets[k]
			if m == nil {
				m = make(map[uint64]time.Time)
				buckets[k] = m
			}
			if _, ok := m[tk.HostID]; !ok {
				m[tk.HostID] = tk.Time
			}
		}
	}

	type pairKey struct {
		a, b uint64
		dev  fot.Component
		typ  string
	}
	type pairAgg struct {
		instants map[int64]time.Time
	}
	pairs := make(map[pairKey]*pairAgg)
	for k, hosts := range buckets {
		if len(hosts) < 2 || len(hosts) > maxBucketHosts {
			continue
		}
		ids := make([]uint64, 0, len(hosts))
		for h := range hosts {
			ids = append(ids, h)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				pk := pairKey{ids[i], ids[j], k.dev, k.typ}
				agg := pairs[pk]
				if agg == nil {
					agg = &pairAgg{instants: make(map[int64]time.Time)}
					pairs[pk] = agg
				}
				// Deduplicate the double-bucketing by the instant's
				// skew-grain timestamp.
				t := hosts[ids[i]]
				agg.instants[t.Unix()/skew] = t
			}
		}
	}

	var out []SyncRepeatGroup
	for pk, agg := range pairs {
		if len(agg.instants) < minOccurrences {
			continue
		}
		g := SyncRepeatGroup{
			HostA: pk.a, HostB: pk.b,
			Occurrences: len(agg.instants),
			Component:   pk.dev,
			Type:        pk.typ,
		}
		for _, t := range agg.instants {
			g.Times = append(g.Times, t)
		}
		sort.Slice(g.Times, func(i, j int) bool { return g.Times[i].Before(g.Times[j]) })
		if len(g.Times) > 8 {
			g.Times = g.Times[:8]
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Occurrences != out[j].Occurrences {
			return out[i].Occurrences > out[j].Occurrences
		}
		if out[i].HostA != out[j].HostA {
			return out[i].HostA < out[j].HostA
		}
		if out[i].HostB != out[j].HostB {
			return out[i].HostB < out[j].HostB
		}
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Type < out[j].Type
	})
	return out, nil
}
