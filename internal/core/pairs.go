package core

import (
	"cmp"
	"slices"
	"time"

	"dcfail/internal/fot"
)

// PairCount is one cell of Table VI.
type PairCount struct {
	A, B  fot.Component // canonical order: A < B by component value
	Count int
}

// PairExample is one Table VII row pair: two correlated tickets on the
// same server.
type PairExample struct {
	HostID uint64
	First  fot.Ticket
	Second fot.Ticket
}

// CorrelatedPairsResult reproduces Table VI (and carries the Table VII
// power→fan examples).
type CorrelatedPairsResult struct {
	Window time.Duration
	// Pairs holds the co-failure matrix cells, largest first.
	Pairs      []PairCount
	TotalPairs int
	// MiscFraction is the share of pairs that involve a miscellaneous
	// ticket (paper: 71.5%).
	MiscFraction float64
	// ServersWithPairs / FailedServers give the prevalence (paper:
	// 0.49% of servers that ever failed).
	ServersWithPairs int
	FailedServers    int
	ServerFraction   float64
	// PowerFanExamples are Table VII-style instances.
	PowerFanExamples []PairExample
}

// CorrelatedPairs computes Table VI: failures of two different components
// on the same server within `window` (the paper uses a single day).
// Repeating failures are filtered first, exactly as in the spatial
// analysis — otherwise a single flapping server (the chronic BBU case)
// would flood the matrix.
func CorrelatedPairs(tr *fot.Trace, window time.Duration) (*CorrelatedPairsResult, error) {
	return CorrelatedPairsIndexed(fot.BorrowTraceIndex(tr), window)
}

// CorrelatedPairsIndexed is CorrelatedPairs over a shared TraceIndex.
// The host grouping comes pre-sorted (hosts ascending, rows in time
// order) from the index, so the scan is one pass over dense columns.
func CorrelatedPairsIndexed(ix *fot.TraceIndex, window time.Duration) (*CorrelatedPairsResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	if window <= 0 {
		window = 24 * time.Hour
	}
	cols := ix.Cols()
	res := &CorrelatedPairsResult{Window: window}
	counts := make(map[[2]fot.Component]int)
	windowNS := int64(window)
	powerFan := canonicalPair(fot.Power, fot.Fan)

	hosts, groups := ix.FirstInstanceHostGroups()
	res.FailedServers = len(hosts)
	for hi, rows := range groups {
		host := hosts[hi]
		pairedHost := false
		for i := 0; i < len(rows)-1; i++ {
			a, b := rows[i], rows[i+1]
			devA, devB := fot.Component(cols.Device[a]), fot.Component(cols.Device[b])
			if cols.TimeNS[b]-cols.TimeNS[a] > windowNS || devA == devB {
				continue
			}
			key := canonicalPair(devA, devB)
			counts[key]++
			res.TotalPairs++
			pairedHost = true
			if key == powerFan && len(res.PowerFanExamples) < 8 {
				first, second := *cols.Ticket(a), *cols.Ticket(b)
				if first.Device != fot.Power {
					first, second = second, first
				}
				res.PowerFanExamples = append(res.PowerFanExamples, PairExample{
					HostID: host, First: first, Second: second,
				})
			}
			if devA == fot.Misc || devB == fot.Misc {
				res.MiscFraction++ // numerator; normalized below
			}
			i++ // consume both tickets of the pair
		}
		if pairedHost {
			res.ServersWithPairs++
		}
	}
	if res.TotalPairs > 0 {
		res.MiscFraction /= float64(res.TotalPairs)
	}
	if res.FailedServers > 0 {
		res.ServerFraction = float64(res.ServersWithPairs) / float64(res.FailedServers)
	}
	for key, n := range counts {
		res.Pairs = append(res.Pairs, PairCount{A: key[0], B: key[1], Count: n})
	}
	slices.SortFunc(res.Pairs, func(a, b PairCount) int {
		if a.Count != b.Count {
			return b.Count - a.Count
		}
		if a.A != b.A {
			return int(a.A) - int(b.A)
		}
		return int(a.B) - int(b.B)
	})
	return res, nil
}

func canonicalPair(a, b fot.Component) [2]fot.Component {
	if a > b {
		a, b = b, a
	}
	return [2]fot.Component{a, b}
}

// SyncRepeatGroup is one Table VIII finding: two servers whose identical
// failures recur nearly simultaneously, repeatedly.
type SyncRepeatGroup struct {
	HostA, HostB uint64
	// Occurrences counts synchronized failure instants.
	Occurrences int
	// Times lists the first few synchronized instants.
	Times []time.Time
	// Component/Type of the synchronized failures.
	Component fot.Component
	Type      string
}

// SyncRepeatGroups mines Table VIII: pairs of servers with at least
// minOccurrences failure instants of the same (component, type) within
// maxSkew of each other. Buckets holding many hosts are skipped — those
// are batch failures (§V-A), not repeat twins.
func SyncRepeatGroups(tr *fot.Trace, maxSkew time.Duration, minOccurrences int) ([]SyncRepeatGroup, error) {
	return SyncRepeatGroupsIndexed(fot.BorrowTraceIndex(tr), maxSkew, minOccurrences)
}

// SyncRepeatGroupsIndexed is SyncRepeatGroups over a shared TraceIndex.
// Because the failure rows arrive time-ordered, each (component, type)
// group's time buckets are contiguous runs: the scan reuses one scratch
// table per run instead of materializing a map per bucket.
func SyncRepeatGroupsIndexed(ix *fot.TraceIndex, maxSkew time.Duration, minOccurrences int) ([]SyncRepeatGroup, error) {
	fail, err := requireFailureRows(ix)
	if err != nil {
		return nil, err
	}
	if maxSkew <= 0 {
		maxSkew = 2 * time.Minute
	}
	if minOccurrences < 2 {
		minOccurrences = 2
	}
	const maxBucketHosts = 8
	cols := ix.Cols()
	skew := int64(maxSkew / time.Second)

	// Group the time-ordered failure rows by (device, type).
	groups := make(map[uint64][]int32)
	for _, r := range fail {
		k := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
		groups[k] = append(groups[k], r)
	}

	// Candidate pair instants go into one flat slice instead of a map of
	// per-pair grain maps. All emissions for a given (a, b, group) come
	// from that group's deterministic floor/shifted passes over
	// time-ordered rows, so after a stable sort the last entry of each
	// equal-grain run is exactly the value the old map overwrite kept.
	type emission struct {
		a, b  uint64
		grain int64  // skew-grain instant, deduplicates double-bucketing
		key   uint64 // device<<32 | type symbol
		row   int32
	}
	var emits []emission

	firstByHost := make(map[uint64]int32) // scratch, reset per run
	var runHosts []uint64                 // scratch
	emitRun := func(key uint64, rows []int32) {
		// First occurrence per host within the bucket, in time order.
		clear(firstByHost)
		runHosts = runHosts[:0]
		for _, r := range rows {
			h := cols.Host[r]
			if _, ok := firstByHost[h]; !ok {
				firstByHost[h] = r
				runHosts = append(runHosts, h)
			}
		}
		if len(runHosts) < 2 || len(runHosts) > maxBucketHosts {
			return
		}
		slices.Sort(runHosts)
		for i := 0; i < len(runHosts); i++ {
			r := firstByHost[runHosts[i]]
			grain := cols.Ticket(r).Time.Unix() / skew
			for j := i + 1; j < len(runHosts); j++ {
				emits = append(emits, emission{runHosts[i], runHosts[j], grain, key, r})
			}
		}
	}

	for k, rows := range groups {
		// Two bucketing passes (floor and shifted) so near-boundary
		// instants meet; rows are time-ordered, so equal bucket values
		// form contiguous runs.
		for _, shift := range []int64{0, skew / 2} {
			runStart := 0
			var runBucket int64
			for i, r := range rows {
				b := (cols.Ticket(r).Time.Unix() + shift) / skew
				if i == 0 {
					runBucket = b
					continue
				}
				if b != runBucket {
					emitRun(k, rows[runStart:i])
					runStart, runBucket = i, b
				}
			}
			emitRun(k, rows[runStart:])
		}
	}

	slices.SortStableFunc(emits, func(x, y emission) int {
		if x.a != y.a {
			return cmp.Compare(x.a, y.a)
		}
		if x.b != y.b {
			return cmp.Compare(x.b, y.b)
		}
		if x.key != y.key {
			return cmp.Compare(x.key, y.key)
		}
		return cmp.Compare(x.grain, y.grain)
	})

	var out []SyncRepeatGroup
	for i := 0; i < len(emits); {
		j := i + 1
		for j < len(emits) && emits[j].a == emits[i].a && emits[j].b == emits[i].b && emits[j].key == emits[i].key {
			j++
		}
		occurrences := 1
		for k := i + 1; k < j; k++ {
			if emits[k].grain != emits[k-1].grain {
				occurrences++
			}
		}
		if occurrences >= minOccurrences {
			g := SyncRepeatGroup{
				HostA: emits[i].a, HostB: emits[i].b,
				Occurrences: occurrences,
				Component:   fot.Component(emits[i].key >> 32),
				Type:        cols.TypeName(uint32(emits[i].key)),
				Times:       make([]time.Time, 0, occurrences),
			}
			for k := i; k < j; k++ {
				if k+1 < j && emits[k+1].grain == emits[k].grain {
					continue // only the last emission of a grain counts
				}
				g.Times = append(g.Times, cols.Ticket(emits[k].row).Time)
			}
			slices.SortFunc(g.Times, func(a, b time.Time) int { return a.Compare(b) })
			if len(g.Times) > 8 {
				g.Times = g.Times[:8]
			}
			out = append(out, g)
		}
		i = j
	}
	slices.SortFunc(out, func(a, b SyncRepeatGroup) int {
		if a.Occurrences != b.Occurrences {
			return b.Occurrences - a.Occurrences
		}
		if a.HostA != b.HostA {
			if a.HostA < b.HostA {
				return -1
			}
			return 1
		}
		if a.HostB != b.HostB {
			if a.HostB < b.HostB {
				return -1
			}
			return 1
		}
		if a.Component != b.Component {
			return int(a.Component) - int(b.Component)
		}
		return cmpString(a.Type, b.Type)
	})
	return out, nil
}
