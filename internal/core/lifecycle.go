package core

import (
	"time"

	"dcfail/internal/fot"
)

// hoursPerMonth is the mean Gregorian month used to bucket service age.
const hoursPerMonth = 24 * 30.44

// LifecycleResult reproduces one subfigure of Fig. 6: the monthly failure
// rate of a component class across its service life.
type LifecycleResult struct {
	Component fot.Component
	// Counts[m] is the number of failures detected in service month m.
	Counts []int
	// Exposure[m] is the component-months of exposure at age m (how many
	// installed components of the class were m months old during the
	// study, weighted by partial coverage).
	Exposure []float64
	// Rates[m] = Counts[m] / Exposure[m]; zero-exposure months are zero.
	Rates []float64
	// Normalized is Rates scaled so the maximum is 1 — the same
	// confidentiality normalization the paper applies.
	Normalized []float64
}

// MassBetween returns the fraction of failures whose service age fell in
// [fromMonth, toMonth). It backs statements like "47.4% of RAID failures
// happen in the first six months".
func (r *LifecycleResult) MassBetween(fromMonth, toMonth int) float64 {
	total, window := 0, 0
	for m, n := range r.Counts {
		total += n
		if m >= fromMonth && m < toMonth {
			window += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(window) / float64(total)
}

// LifecycleRates computes Fig. 6 for one component class over the first
// `horizon` months of service life. The census provides the population
// (how many components of the class were at each age), mirroring the
// paper's footnote 2 normalization. Repeating failures are filtered first
// so a single flapping component (the chronic BBU server) counts once,
// not hundreds of times, in its age bucket.
func LifecycleRates(tr *fot.Trace, census *Census, c fot.Component, horizon int) (*LifecycleResult, error) {
	return LifecycleRatesIndexed(fot.BorrowTraceIndex(tr), census, c, horizon)
}

// LifecycleRatesIndexed is LifecycleRates over a shared TraceIndex: one
// pass over the deduplicated failure rows, reading the precomputed
// service-age column.
func LifecycleRatesIndexed(ix *fot.TraceIndex, census *Census, c fot.Component, horizon int) (*LifecycleResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	first := ix.FirstInstanceRows()
	if census == nil {
		return nil, errNoTickets("census for", c.String())
	}
	if horizon < 1 {
		horizon = 48
	}
	if len(first) == 0 {
		return nil, errEmptyTrace()
	}
	cols := ix.Cols()
	// Rows are time-ordered, so the span is the first and last row.
	lo := cols.Ticket(first[0]).Time
	hi := cols.Ticket(first[len(first)-1]).Time
	res := &LifecycleResult{
		Component:  c,
		Counts:     make([]int, horizon),
		Exposure:   make([]float64, horizon),
		Rates:      make([]float64, horizon),
		Normalized: make([]float64, horizon),
	}
	for _, r := range first {
		if fot.Component(cols.Device[r]) != c {
			continue
		}
		ns := cols.AgeNS[r]
		if ns < 0 {
			continue
		}
		m := int(time.Duration(ns).Hours() / hoursPerMonth)
		if m >= 0 && m < horizon {
			res.Counts[m]++
		}
	}
	for i := range census.Servers {
		s := &census.Servers[i]
		n := s.Components[c]
		if n == 0 {
			continue
		}
		addExposure(res.Exposure, s.DeployTime, lo, hi, float64(n))
	}
	maxRate := 0.0
	for m := range res.Rates {
		if res.Exposure[m] > 0 {
			res.Rates[m] = float64(res.Counts[m]) / res.Exposure[m]
		}
		if res.Rates[m] > maxRate {
			maxRate = res.Rates[m]
		}
	}
	if maxRate > 0 {
		for m := range res.Normalized {
			res.Normalized[m] = res.Rates[m] / maxRate
		}
	}
	return res, nil
}

// addExposure accumulates, for one server deployed at deploy, the overlap
// (in months) between each service-age month and the study window
// [lo, hi), scaled by weight (component count).
func addExposure(exposure []float64, deploy time.Time, lo, hi time.Time, weight float64) {
	if !hi.After(deploy) {
		return
	}
	monthHours := hoursPerMonth
	for m := range exposure {
		mLo := deploy.Add(time.Duration(float64(m) * monthHours * float64(time.Hour)))
		mHi := deploy.Add(time.Duration(float64(m+1) * monthHours * float64(time.Hour)))
		if !mLo.Before(hi) {
			return
		}
		wLo, wHi := mLo, mHi
		if wLo.Before(lo) {
			wLo = lo
		}
		if wHi.After(hi) {
			wHi = hi
		}
		if wHi.After(wLo) {
			exposure[m] += weight * wHi.Sub(wLo).Hours() / monthHours
		}
	}
}
