package core

import (
	"dcfail/internal/fot"
)

// RackCensus pairs a census with its precomputed per-datacenter rack
// occupancy. Occupancy depends only on the census, so incremental renders
// reuse it across epochs instead of rescanning the server list; the
// counts are exactly what rackPositions recomputes per call. A nil
// census yields a nil RackCensus.
type RackCensus struct {
	census *Census
	occ    [][]int // [datacenter index][position], index 0 unused
}

// NewRackCensus precomputes rack occupancy for every census datacenter.
func NewRackCensus(census *Census) *RackCensus {
	if census == nil {
		return nil
	}
	rc := &RackCensus{census: census, occ: make([][]int, len(census.Datacenters))}
	for d := range census.Datacenters {
		rc.occ[d] = make([]int, census.Datacenters[d].PositionsPerRack+1)
	}
	for i := range census.Servers {
		s := &census.Servers[i]
		for d := range census.Datacenters {
			dc := &census.Datacenters[d]
			if s.IDC == dc.ID && s.Position >= 1 && s.Position <= dc.PositionsPerRack {
				rc.occ[d][s.Position]++
			}
		}
	}
	return rc
}

// rackState carries the spatial sections' first-instance failed-host
// positions per census datacenter. The full path's host map is built by
// last-write-wins over time-ordered first-instance rows; folding rows in
// that same order preserves the overwrite semantics.
type rackState struct {
	seen  map[instKey]struct{}
	perDC []map[uint64]int32 // [datacenter index] host -> position
}

// RackUpdater returns the fold function of the spatial sections for the
// given census view (nil allowed — the state then stays empty and
// renders fail with the census guard, as the full path does).
func RackUpdater(rc *RackCensus) func(SectionState, *fot.TraceIndex, []int32) (SectionState, error) {
	return func(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
		return updateRack(prev, ix, newRows, rc)
	}
}

func updateRack(prev SectionState, ix *fot.TraceIndex, newRows []int32, rc *RackCensus) (SectionState, error) {
	st, _ := prev.(*rackState)
	cols := ix.Cols()
	var symToDC map[uint32]int
	if rc != nil {
		symToDC = make(map[uint32]int, len(rc.census.Datacenters))
		for d := range rc.census.Datacenters {
			if sym, ok := cols.IDCSymOf(rc.census.Datacenters[d].ID); ok {
				symToDC[sym] = d
			}
		}
	}
	var next *rackState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			next = newRackState(rc)
			if st != nil { // absorbed: prev handed off
				next.seen = st.seen
				next.perDC = st.perDC
			}
		}
		k := instKey{cols.Host[r], cols.Device[r], cols.SlotSym[r], cols.TypeSym[r]}
		if _, ok := next.seen[k]; ok {
			continue
		}
		next.seen[k] = struct{}{}
		d, ok := symToDC[cols.IDCSym[r]]
		if !ok {
			continue
		}
		if pos := cols.Position[r]; pos >= 1 && pos <= int32(rc.census.Datacenters[d].PositionsPerRack) {
			next.perDC[d][cols.Host[r]] = pos
		}
	}
	if next == nil {
		if st == nil {
			return newRackState(rc), nil
		}
		return prev, nil
	}
	return next, nil
}

func newRackState(rc *RackCensus) *rackState {
	st := &rackState{seen: make(map[instKey]struct{})}
	if rc != nil {
		st.perDC = make([]map[uint64]int32, len(rc.census.Datacenters))
		for d := range st.perDC {
			st.perDC[d] = make(map[uint64]int32)
		}
	}
	return st
}

// RackAnalysisFromState renders Table IV from carried state,
// byte-identical to RackAnalysisIndexed — including sharing its memo
// slot with the hypotheses section.
func RackAnalysisFromState(state SectionState, ix *fot.TraceIndex, rc *RackCensus) (*RackAnalysisResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	m := ix.Memo("core.rack", func() any {
		res, err := rackAnalysisFromStateUncached(state.(*rackState), ix, rc)
		return rackMemo{res, err}
	}).(rackMemo)
	return m.res, m.err
}

func rackAnalysisFromStateUncached(st *rackState, ix *fot.TraceIndex, rc *RackCensus) (*RackAnalysisResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	if rc == nil || len(rc.census.Datacenters) == 0 {
		return nil, errNoTickets("census for", "rack analysis")
	}
	res := &RackAnalysisResult{}
	modern, modernOK := 0, 0
	for d := range rc.census.Datacenters {
		dc := rc.census.Datacenters[d]
		one, err := rackPositionsFromState(st, rc, d)
		if err != nil {
			continue
		}
		res.PerDC = append(res.PerDC, *one)
		switch {
		case one.Test.P < 0.01:
			res.PLow++
		case one.Test.P < 0.05:
			res.PMid++
		default:
			res.PHigh++
		}
		if dc.BuiltYear >= 2014 {
			modern++
			if !one.Test.Reject(0.02) {
				modernOK++
			}
		}
	}
	if len(res.PerDC) == 0 {
		return nil, errNoTickets("datacenters with", "rack data")
	}
	if modern > 0 {
		res.ModernNonRejectFraction = float64(modernOK) / float64(modern)
	}
	return res, nil
}

// RackPositionsFromState renders one Fig. 8 subplot from carried state,
// byte-identical to RackPositionsIndexed.
func RackPositionsFromState(state SectionState, ix *fot.TraceIndex, rc *RackCensus, idc string) (*RackPositionResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*rackState)
	if rc != nil {
		for d := range rc.census.Datacenters {
			if rc.census.Datacenters[d].ID == idc {
				return rackPositionsFromState(st, rc, d)
			}
		}
	}
	return nil, errNoTickets("datacenter", idc)
}

// rackPositionsFromState is rackPositions against the carried host map
// and precomputed occupancy of one census datacenter.
func rackPositionsFromState(st *rackState, rc *RackCensus, d int) (*RackPositionResult, error) {
	dc := rc.census.Datacenters[d]
	res := &RackPositionResult{
		IDC:       dc.ID,
		BuiltYear: dc.BuiltYear,
		Positions: dc.PositionsPerRack,
		Failures:  make([]int, dc.PositionsPerRack+1),
		Occupancy: make([]int, dc.PositionsPerRack+1),
		Ratio:     make([]float64, dc.PositionsPerRack+1),
	}
	copy(res.Occupancy, rc.occ[d])
	for _, pos := range st.perDC[d] {
		res.Failures[pos]++
	}
	var positions []int
	totalFailed, totalOcc := 0, 0
	for p := 1; p <= dc.PositionsPerRack; p++ {
		if res.Occupancy[p] == 0 {
			continue
		}
		res.Ratio[p] = float64(res.Failures[p]) / float64(res.Occupancy[p])
		positions = append(positions, p)
		totalFailed += res.Failures[p]
		totalOcc += res.Occupancy[p]
	}
	if len(positions) < 3 || totalFailed == 0 {
		return nil, errNoTickets("occupied positions in", dc.ID)
	}
	res.Test = contingencyTest(res.Failures, res.Occupancy, positions, totalFailed, totalOcc)
	res.Anomalies = rateAnomalies(res.Failures, res.Occupancy, positions, totalFailed, totalOcc)
	return res, nil
}
