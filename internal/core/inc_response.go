package core

import (
	"slices"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// summarizeRTSorted is summarizeRT against an already-sorted day sample
// with precomputed tail counts. Summarize computes every statistic on a
// sorted copy of its input, so feeding the sorted array straight through
// QuantileSorted/Mean reproduces its values bit for bit.
func summarizeRTSorted(cat fot.Category, sorted []float64, over140, over200 int) *ResponseTimesResult {
	res := &ResponseTimesResult{
		Category:   cat,
		N:          len(sorted),
		MeanDays:   stats.Mean(sorted),
		MedianDays: stats.QuantileSorted(sorted, 0.5),
		P90Days:    stats.QuantileSorted(sorted, 0.90),
		P99Days:    stats.QuantileSorted(sorted, 0.99),
		CDF:        stats.NewECDFSorted(sorted).Points(256),
	}
	res.FracOver140 = float64(over140) / float64(len(sorted))
	res.FracOver200 = float64(over200) / float64(len(sorted))
	return res
}

// responseTimesState carries Fig. 9: per-category sorted response-day
// samples with long-tail counters.
type responseTimesState struct {
	sorted  [][]float64 // [category code], ascending, fresh array per fold
	over140 []int
	over200 []int
}

// UpdateResponseTimes folds appended rows into the Fig. 9 state.
func UpdateResponseTimes(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*responseTimesState)
	cols := ix.Cols()
	var next *responseTimesState
	var fresh [8][]float64
	for _, r := range newRows {
		ns := cols.RTNS[r]
		if ns < 0 {
			continue
		}
		if next == nil {
			next = &responseTimesState{
				sorted:  make([][]float64, 8),
				over140: make([]int, 8),
				over200: make([]int, 8),
			}
			if st != nil {
				copy(next.sorted, st.sorted)
				copy(next.over140, st.over140)
				copy(next.over200, st.over200)
			}
		}
		cat := cols.Category[r]
		d := time.Duration(ns).Hours() / 24
		fresh[cat] = append(fresh[cat], d)
		if d > 140 {
			next.over140[cat]++
		}
		if d > 200 {
			next.over200[cat]++
		}
	}
	if next == nil {
		if st == nil {
			return &responseTimesState{
				sorted:  make([][]float64, 8),
				over140: make([]int, 8),
				over200: make([]int, 8),
			}, nil
		}
		return prev, nil
	}
	for cat, f := range fresh {
		if len(f) > 0 {
			next.sorted[cat] = mergeSortedGaps(next.sorted[cat], f)
		}
	}
	return next, nil
}

// ResponseTimesFromState renders one Fig. 9 category from carried state,
// byte-identical to ResponseTimesIndexed.
func ResponseTimesFromState(state SectionState, ix *fot.TraceIndex, cat fot.Category) (*ResponseTimesResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	st := state.(*responseTimesState)
	days := st.sorted[cat]
	if len(days) == 0 {
		return nil, errNoTickets("category", cat.String())
	}
	return summarizeRTSorted(cat, days, st.over140[cat], st.over200[cat]), nil
}

// responseByClassState carries Fig. 10: per-component sorted day samples
// over all tickets with a recorded response.
type responseByClassState struct {
	sorted  [][]float64 // [component code]
	over140 []int
	over200 []int
}

// UpdateResponseTimesByClass folds appended rows into the Fig. 10 state.
func UpdateResponseTimesByClass(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*responseByClassState)
	cols := ix.Cols()
	var next *responseByClassState
	fresh := make([][]float64, incComponents)
	for _, r := range newRows {
		ns := cols.RTNS[r]
		if ns < 0 {
			continue
		}
		if next == nil {
			next = &responseByClassState{
				sorted:  make([][]float64, incComponents),
				over140: make([]int, incComponents),
				over200: make([]int, incComponents),
			}
			if st != nil {
				copy(next.sorted, st.sorted)
				copy(next.over140, st.over140)
				copy(next.over200, st.over200)
			}
		}
		dev := cols.Device[r]
		d := time.Duration(ns).Hours() / 24
		fresh[dev] = append(fresh[dev], d)
		if d > 140 {
			next.over140[dev]++
		}
		if d > 200 {
			next.over200[dev]++
		}
	}
	if next == nil {
		if st == nil {
			return &responseByClassState{
				sorted:  make([][]float64, incComponents),
				over140: make([]int, incComponents),
				over200: make([]int, incComponents),
			}, nil
		}
		return prev, nil
	}
	for dev, f := range fresh {
		if len(f) > 0 {
			next.sorted[dev] = mergeSortedGaps(next.sorted[dev], f)
		}
	}
	return next, nil
}

// ResponseTimesByClassFromState renders Fig. 10 from carried state,
// byte-identical to ResponseTimesByClassIndexed.
func ResponseTimesByClassFromState(state SectionState, ix *fot.TraceIndex) (map[fot.Component]*ResponseTimesResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	st := state.(*responseByClassState)
	out := make(map[fot.Component]*ResponseTimesResult)
	for _, c := range fot.Components() {
		days := st.sorted[c]
		if len(days) < 8 {
			continue
		}
		out[c] = summarizeRTSorted(0, days, st.over140[c], st.over200[c])
	}
	if len(out) == 0 {
		return nil, errNoTickets("components with", "responses")
	}
	return out, nil
}

// lineRTState carries Fig. 11: per-product-line row/failure counts and
// sorted response-day samples within one component scope.
type lineRTState struct {
	rowCount []int       // [line symbol] rows in scope
	failures []int       // [line symbol] failure rows in scope
	sorted   [][]float64 // [line symbol] responded days, ascending
}

// LineRTUpdater returns the fold function of the Fig. 11 scope for
// component c (0 = all rows).
func LineRTUpdater(c fot.Component) func(SectionState, *fot.TraceIndex, []int32) (SectionState, error) {
	return func(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
		return updateLineRT(prev, ix, newRows, c)
	}
}

func updateLineRT(prev SectionState, ix *fot.TraceIndex, newRows []int32, c fot.Component) (SectionState, error) {
	st, _ := prev.(*lineRTState)
	cols := ix.Cols()
	var next *lineRTState
	var freshSyms []uint32
	var fresh map[uint32][]float64
	grow := func(sym int) {
		if len(next.rowCount) <= sym {
			n := cols.LineCount()
			rc := make([]int, n)
			copy(rc, next.rowCount)
			next.rowCount = rc
			fl := make([]int, n)
			copy(fl, next.failures)
			next.failures = fl
			so := make([][]float64, n)
			copy(so, next.sorted)
			next.sorted = so
		}
	}
	for _, r := range newRows {
		if c != 0 && fot.Component(cols.Device[r]) != c {
			continue
		}
		if next == nil {
			next = &lineRTState{}
			if st != nil {
				next.rowCount = append([]int(nil), st.rowCount...)
				next.failures = append([]int(nil), st.failures...)
				next.sorted = append([][]float64(nil), st.sorted...)
			}
			fresh = make(map[uint32][]float64)
		}
		sym := cols.LineSym[r]
		grow(int(sym))
		next.rowCount[sym]++
		if fot.Category(cols.Category[r]).IsFailure() {
			next.failures[sym]++
		}
		if ns := cols.RTNS[r]; ns >= 0 {
			if _, ok := fresh[sym]; !ok {
				freshSyms = append(freshSyms, sym)
			}
			fresh[sym] = append(fresh[sym], time.Duration(ns).Hours()/24)
		}
	}
	if next == nil {
		if st == nil {
			return &lineRTState{}, nil
		}
		return prev, nil
	}
	for _, sym := range freshSyms {
		next.sorted[sym] = mergeSortedGaps(next.sorted[sym], fresh[sym])
	}
	return next, nil
}

// ProductLineRTFromState renders Fig. 11 from carried state,
// byte-identical to ProductLineRTIndexed.
func ProductLineRTFromState(state SectionState, ix *fot.TraceIndex, c fot.Component) (*ProductLineRTResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	st := state.(*lineRTState)
	cols := ix.Cols()
	lines := make([]string, 0, len(st.rowCount))
	for sym, n := range st.rowCount {
		if n > 0 && cols.LineName(uint32(sym)) != "" {
			lines = append(lines, cols.LineName(uint32(sym)))
		}
	}
	slices.Sort(lines)

	res := &ProductLineRTResult{Component: c}
	var medians []float64
	for _, line := range lines {
		sym, _ := cols.LineSymOf(line)
		days := st.sorted[sym]
		if len(days) == 0 {
			continue
		}
		med := stats.QuantileSorted(days, 0.5)
		res.Points = append(res.Points, LineRTPoint{
			Line:         line,
			Failures:     st.failures[sym],
			MedianRTDays: med,
		})
		medians = append(medians, med)
	}
	if len(res.Points) == 0 {
		return nil, errNoTickets("product lines with", "responses")
	}
	slices.SortFunc(res.Points, func(a, b LineRTPoint) int {
		if a.Failures != b.Failures {
			return b.Failures - a.Failures
		}
		return cmpString(a.Line, b.Line)
	})
	top := len(res.Points) / 100
	if top < 1 {
		top = 1
	}
	var pooled []float64
	for _, pt := range res.Points[:top] {
		sym, _ := cols.LineSymOf(pt.Line)
		pooled = append(pooled, st.sorted[sym]...)
	}
	res.Top1PctMedianDays = stats.Median(pooled)

	small, slow := 0, 0
	for _, pt := range res.Points {
		if pt.Failures < 100 {
			small++
			if pt.MedianRTDays > 100 {
				slow++
			}
		}
	}
	if small > 0 {
		res.SmallLineOver100dFraction = float64(slow) / float64(small)
	}
	if len(medians) > 1 {
		res.MedianStdDevDays = stats.StdDev(medians)
	}
	if len(res.Points) >= 3 {
		volumes := make([]float64, len(res.Points))
		meds := make([]float64, len(res.Points))
		for i, pt := range res.Points {
			volumes[i] = float64(pt.Failures)
			meds[i] = pt.MedianRTDays
		}
		if rho, err := stats.SpearmanRho(volumes, meds); err == nil {
			res.VolumeRTCorrelation = rho
		}
	}
	return res, nil
}
