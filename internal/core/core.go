// Package core implements the paper's contribution: the statistical
// analyses of DSN'17 "What Can We Learn from Four Years of Data Center
// Hardware Failures?". Each published table and figure has a
// corresponding analysis function:
//
//	Table I    CategoryBreakdown
//	Table II   ComponentBreakdown
//	Fig. 2     TypeBreakdown
//	Fig. 3     DayOfWeek (Hypothesis 1)
//	Fig. 4     HourOfDay (Hypothesis 2)
//	Fig. 5     TBFAnalysis (Hypotheses 3–4)
//	Fig. 6     LifecycleRates
//	Fig. 7     ServerSkew
//	§III-D     RepeatAnalysis
//	Table IV   RackAnalysis (Hypothesis 5) / Fig. 8 per-DC ratios
//	Table V    BatchFrequency
//	§V-A       BatchWindows (case-study mining)
//	Table VI   CorrelatedPairs
//	Table VII  (power→fan examples inside CorrelatedPairs)
//	Table VIII SyncRepeatGroups
//	Fig. 9     ResponseTimes
//	Fig. 10    ResponseTimesByClass
//	Fig. 11    ProductLineRT
//
// All analyses consume only ticket data (fot.Trace) plus, where the paper
// itself needed asset data (population normalization for Fig. 6 and
// Fig. 8), a Census. Ground-truth generator internals are never used.
package core

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// Census is the asset-database view the paper joins with tickets: the
// monitored server population with deploy times, locations and component
// counts (paper footnote 2), plus facility metadata (§IV).
type Census struct {
	Servers     []CensusServer
	Datacenters []CensusDC

	// Dense per-server inventory for the Fig. 6 exposure scan, built
	// lazily once per census (inc_lifecycle.go): the census is static
	// while exposure is re-derived every epoch, so the map-shaped
	// Components reads are paid once, not per epoch.
	expOnce  sync.Once
	expDense *censusExposureDense
}

// CensusServer is one monitored host.
type CensusServer struct {
	HostID      uint64
	IDC         string
	Rack        string
	Position    int
	ProductLine string
	Model       string
	DeployTime  time.Time
	// Components counts installed parts per class (the paper knows HDD,
	// SSD and CPU counts per server and approximates the rest as one per
	// server; we carry the full inventory).
	Components map[fot.Component]int
}

// CensusDC is one facility.
type CensusDC struct {
	ID               string
	BuiltYear        int
	PositionsPerRack int
}

// CensusFromFleet adapts the simulator's fleet into the census view.
// Production users would load this from their CMDB instead.
func CensusFromFleet(fleet *topo.Fleet) *Census {
	c := &Census{
		Servers:     make([]CensusServer, 0, len(fleet.Servers)),
		Datacenters: make([]CensusDC, 0, len(fleet.Datacenters)),
	}
	for i := range fleet.Datacenters {
		dc := &fleet.Datacenters[i]
		c.Datacenters = append(c.Datacenters, CensusDC{
			ID:               dc.ID,
			BuiltYear:        dc.BuiltYear,
			PositionsPerRack: dc.PositionsPerRack,
		})
	}
	for i := range fleet.Servers {
		s := &fleet.Servers[i]
		inv := make(map[fot.Component]int, len(s.Inventory))
		for k, v := range s.Inventory {
			inv[k] = v
		}
		c.Servers = append(c.Servers, CensusServer{
			HostID:      s.HostID,
			IDC:         s.IDC,
			Rack:        s.Rack,
			Position:    s.Position,
			ProductLine: s.ProductLine,
			Model:       s.Model,
			DeployTime:  s.DeployTime,
			Components:  inv,
		})
	}
	return c
}

// Validate reports census violations.
func (c *Census) Validate() error {
	if len(c.Servers) == 0 {
		return fmt.Errorf("core: census has no servers")
	}
	dcs := make(map[string]bool, len(c.Datacenters))
	for _, dc := range c.Datacenters {
		if dc.PositionsPerRack < 1 {
			return fmt.Errorf("core: census datacenter %s has no rack positions", dc.ID)
		}
		dcs[dc.ID] = true
	}
	for _, s := range c.Servers {
		if !dcs[s.IDC] {
			return fmt.Errorf("core: census server %d references unknown idc %s", s.HostID, s.IDC)
		}
		if s.DeployTime.IsZero() {
			return fmt.Errorf("core: census server %d has zero deploy time", s.HostID)
		}
	}
	return nil
}

// requireFailureRows extracts the failure population (D_fixing +
// D_error) as time-ordered row indices and errors out on an empty
// trace, the common precondition of all analyses.
func requireFailureRows(ix *fot.TraceIndex) ([]int32, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	rows := ix.FailureRows()
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: trace has no failures (only false alarms)")
	}
	return rows, nil
}

// sortedComponentsByCount returns component classes ordered by descending
// count (Table II presentation order).
func sortedComponentsByCount(counts map[fot.Component]int) []fot.Component {
	comps := make([]fot.Component, 0, len(counts))
	for c := range counts {
		comps = append(comps, c)
	}
	slices.SortFunc(comps, func(a, b fot.Component) int {
		if counts[a] != counts[b] {
			return counts[b] - counts[a]
		}
		return int(a) - int(b)
	})
	return comps
}

// cmpString is strings.Compare for SortFunc comparators.
func cmpString(a, b string) int { return strings.Compare(a, b) }
