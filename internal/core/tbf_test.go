package core

import (
	"testing"

	"dcfail/internal/fot"
)

func TestHypothesis3TBFAllComponents(t *testing.T) {
	res, _ := fixture(t)
	tbf, err := TBFAnalysis(res.Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbf.N < 1000 {
		t.Fatalf("only %d gaps", tbf.N)
	}
	if tbf.MTBFMinutes <= 0 {
		t.Fatalf("MTBF = %g", tbf.MTBFMinutes)
	}
	// Batch failures skew the distribution: median ≪ mean.
	if !(tbf.MedianMinutes < tbf.MTBFMinutes) {
		t.Errorf("median %.2f not below mean %.2f — batch skew missing",
			tbf.MedianMinutes, tbf.MTBFMinutes)
	}
	// Paper Hypothesis 3: every classic family is rejected at 0.05.
	if !tbf.AllRejected(0.05) {
		for _, f := range tbf.Fits {
			t.Logf("%s: err=%v test=%v ks=%.4f", f.Dist.Name(), f.Err, f.Test, f.KS)
		}
		t.Error("some distribution fit the TBF — Hypothesis 3 not rejected")
	}
	if len(tbf.CDF) == 0 {
		t.Error("missing CDF points")
	}
	if len(tbf.PerIDCMTBF) < 2 {
		t.Error("missing per-datacenter MTBF")
	}
	// Per-DC MTBFs must exceed the fleet-wide MTBF (fewer arrivals per DC).
	for idc, m := range tbf.PerIDCMTBF {
		if m < tbf.MTBFMinutes {
			t.Errorf("%s MTBF %.1f below fleet-wide %.1f", idc, m, tbf.MTBFMinutes)
		}
	}
}

func TestHypothesis4PerClass(t *testing.T) {
	res, _ := fixture(t)
	// The dominant class must also reject every family.
	tbf, err := TBFAnalysis(res.Trace, fot.HDD)
	if err != nil {
		t.Fatal(err)
	}
	if !tbf.AllRejected(0.05) {
		t.Error("HDD TBF fit by some distribution — Hypothesis 4 not rejected")
	}
	if tbf.Scope != "hdd" {
		t.Errorf("scope = %q", tbf.Scope)
	}
}

func TestTBFByProductLine(t *testing.T) {
	res, _ := fixture(t)
	lines, err := TBFByProductLine(res.Trace, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no product lines analyzed")
	}
	for name, r := range lines {
		if r.N < 16 {
			t.Errorf("%s: too few gaps %d", name, r.N)
		}
		if r.MTBFMinutes <= 0 {
			t.Errorf("%s: bad MTBF", name)
		}
	}
}

func TestTBFTooSmallScope(t *testing.T) {
	res, _ := fixture(t)
	// CPU is the rarest class; restrict further to one IDC to guarantee a
	// too-small sample somewhere... use an empty-after-filter scope.
	sub := res.Trace.ByComponent(fot.CPU).ByIDC("no-such-idc")
	if _, err := TBFAnalysis(sub, 0); err == nil {
		t.Error("tiny scope should error")
	}
}
