package core

import (
	"testing"
	"time"

	"dcfail/internal/fot"
)

// synthTrace builds a hand-crafted trace for edge-case analysis tests.
func synthTrace(n int, gap time.Duration) *fot.Trace {
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	tickets := make([]fot.Ticket, 0, n)
	for i := 0; i < n; i++ {
		tickets = append(tickets, fot.Ticket{
			ID:       uint64(i + 1),
			HostID:   uint64(i%17 + 1),
			IDC:      "dc01",
			Position: i%10 + 1,
			Device:   fot.HDD,
			Slot:     "sdb",
			Type:     "SMARTFail",
			Time:     base.Add(time.Duration(i) * gap),
			Category: fot.Fixing,
			Action:   fot.ActionRepairOrder,
		})
	}
	return fot.NewTrace(tickets)
}

// TestTBFZeroGapsFloored: a trace of same-timestamp batches must still fit
// (the floor replaces zero gaps) rather than erroring out of the MLE.
func TestTBFZeroGapsFloored(t *testing.T) {
	tr := synthTrace(64, 0) // every ticket at the same instant
	res, err := TBFAnalysis(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 63 {
		t.Errorf("gaps = %d", res.N)
	}
	// Every gap became the one-second floor.
	if res.MTBFMinutes > 0.02 {
		t.Errorf("MTBF = %g min, want ≈1/60", res.MTBFMinutes)
	}
	for _, f := range res.Fits {
		if f.Err == nil && f.Dist.Name() == "exponential" {
			return // at least the exponential fit ran on floored data
		}
	}
	t.Error("no exponential fit on floored gaps")
}

// TestRackAnomaliesSaturated: when every server has failed, the binomial
// anomaly detector has nothing to flag and must return nil, not divide by
// zero.
func TestRackAnomaliesSaturated(t *testing.T) {
	failed := []int{0, 5, 5, 5}
	occ := []int{0, 5, 5, 5}
	if got := rateAnomalies(failed, occ, []int{1, 2, 3}, 15, 15); got != nil {
		t.Errorf("saturated anomalies = %v, want nil", got)
	}
	// Zero failures likewise.
	if got := rateAnomalies([]int{0, 0, 0, 0}, occ, []int{1, 2, 3}, 0, 15); got != nil {
		t.Errorf("zero-failure anomalies = %v, want nil", got)
	}
}

// TestBatchWindowsSingleRun: a single continuous run forms exactly one
// episode with the full ticket count.
func TestBatchWindowsSingleRun(t *testing.T) {
	tr := synthTrace(40, time.Minute)
	eps, err := BatchWindows(tr, nil, 30*time.Minute, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	if eps[0].Tickets != 40 || eps[0].Servers != 17 {
		t.Errorf("episode = %+v", eps[0])
	}
}

// TestBatchWindowsRespectsGap: a gap larger than linkGap splits episodes.
func TestBatchWindowsRespectsGap(t *testing.T) {
	a := synthTrace(20, time.Minute).Tickets
	b := synthTrace(20, time.Minute).Tickets
	for i := range b {
		b[i].ID += 100
		b[i].Time = b[i].Time.Add(48 * time.Hour)
	}
	tr := fot.NewTrace(append(a, b...))
	eps, err := BatchWindows(tr, nil, 30*time.Minute, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
}

// TestCorrelatedPairsNoPairs: a single-component trace yields an empty
// matrix without error.
func TestCorrelatedPairsNoPairs(t *testing.T) {
	tr := synthTrace(30, time.Hour)
	cp, err := CorrelatedPairs(tr, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cp.TotalPairs != 0 || len(cp.Pairs) != 0 {
		t.Errorf("pairs from single-component trace: %+v", cp)
	}
}

// TestSyncRepeatGroupsNoTwins: without synchronized instants across hosts
// there are no groups.
func TestSyncRepeatGroupsNoTwins(t *testing.T) {
	tr := synthTrace(30, time.Hour) // one ticket per hour, hosts rotate
	groups, err := SyncRepeatGroups(tr, 2*time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Errorf("groups = %d, want 0", len(groups))
	}
}

// TestServerSkewUniform: with one failure per host the CDF is the
// diagonal and the top-2% share is proportional.
func TestServerSkewUniform(t *testing.T) {
	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	tickets := make([]fot.Ticket, 0, 100)
	for i := 0; i < 100; i++ {
		tickets = append(tickets, fot.Ticket{
			ID: uint64(i + 1), HostID: uint64(i + 1), IDC: "dc01",
			Device: fot.HDD, Slot: "sda", Type: "SMARTFail",
			Time: base.Add(time.Duration(i) * time.Hour), Category: fot.Fixing,
		})
	}
	sk, err := ServerSkew(fot.NewTrace(tickets))
	if err != nil {
		t.Fatal(err)
	}
	if sk.FailedServers != 100 || sk.MaxOneServer != 1 {
		t.Errorf("skew = %+v", sk)
	}
	if got := sk.TopShare[0.10]; got < 0.09 || got > 0.11 {
		t.Errorf("uniform top-10%% share = %g, want 0.10", got)
	}
}
