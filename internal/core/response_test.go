package core

import (
	"testing"

	"dcfail/internal/fot"
)

func TestResponseTimesFig9(t *testing.T) {
	res, _ := fixture(t)
	fixing, err := ResponseTimes(res.Trace, fot.Fixing)
	if err != nil {
		t.Fatal(err)
	}
	alarm, err := ResponseTimes(res.Trace, fot.FalseAlarm)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 9: MTTR ≫ median (42.2 vs 6.1 days for D_fixing); very
	// long tails (10% > 140 days).
	if !(fixing.MeanDays > 2*fixing.MedianDays) {
		t.Errorf("fixing mean %.1f not ≫ median %.1f", fixing.MeanDays, fixing.MedianDays)
	}
	if fixing.MedianDays < 0.5 || fixing.MedianDays > 30 {
		t.Errorf("fixing median %.1f days implausible", fixing.MedianDays)
	}
	if fixing.FracOver140 <= 0 {
		t.Error("no responses beyond 140 days — the paper's long tail is missing")
	}
	if !(fixing.FracOver140 >= fixing.FracOver200) {
		t.Error("tail fractions inconsistent")
	}
	// False alarms respond like fixing tickets but are fewer.
	if alarm.N >= fixing.N {
		t.Errorf("false alarms (%d) outnumber fixing (%d)", alarm.N, fixing.N)
	}
	// CDF well-formed.
	for i := 1; i < len(fixing.CDF); i++ {
		if fixing.CDF[i].Y < fixing.CDF[i-1].Y {
			t.Fatal("RT CDF not monotone")
		}
	}
}

func TestResponseTimesErrorCategoryEmpty(t *testing.T) {
	res, _ := fixture(t)
	// D_error tickets are never responded to (paper: out-of-warranty
	// tickets are closed without an operator action).
	if _, err := ResponseTimes(res.Trace, fot.Error); err == nil {
		t.Error("D_error should have no response times")
	}
}

func TestResponseTimesByClassFig10(t *testing.T) {
	res, _ := fixture(t)
	byClass, err := ResponseTimesByClass(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	hdd, ok1 := byClass[fot.HDD]
	ssd, ok2 := byClass[fot.SSD]
	misc, ok3 := byClass[fot.Misc]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing classes in Fig. 10 result: %v %v %v", ok1, ok2, ok3)
	}
	// Paper: SSD and misc medians are hours; HDD 7–18 days.
	if !(ssd.MedianDays < 2) {
		t.Errorf("SSD median %.2f days, want hours", ssd.MedianDays)
	}
	if !(misc.MedianDays < 2) {
		t.Errorf("misc median %.2f days, want hours", misc.MedianDays)
	}
	if !(hdd.MedianDays > 2*ssd.MedianDays) {
		t.Errorf("HDD median %.2f not ≫ SSD %.2f", hdd.MedianDays, ssd.MedianDays)
	}
}

func TestProductLineRTFig11(t *testing.T) {
	res, _ := fixture(t)
	pl, err := ProductLineRT(res.Trace, fot.HDD)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Points) < 3 {
		t.Fatalf("only %d product lines", len(pl.Points))
	}
	// Sorted by failure count, descending.
	for i := 1; i < len(pl.Points); i++ {
		if pl.Points[i].Failures > pl.Points[i-1].Failures {
			t.Fatal("points not sorted by failures")
		}
	}
	if pl.Top1PctMedianDays <= 0 {
		t.Error("missing top-1% median")
	}
	// §VI-C's anti-correlation (busiest lines respond slower) is asserted
	// at paper scale in experiments_test.go — with only a dozen lines in
	// the small profile a single diligence draw can flip it. Here, check
	// the structural outputs only.
	if pl.MedianStdDevDays <= 0 {
		t.Error("no cross-line variation")
	}
}

func TestProductLineRTAllComponents(t *testing.T) {
	res, _ := fixture(t)
	pl, err := ProductLineRT(res.Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Points) == 0 {
		t.Fatal("no lines")
	}
}
