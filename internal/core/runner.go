package core

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"

	"dcfail/internal/fot"
)

// Section is one independently renderable unit of the full report: a
// paper table, figure, or summary. Render receives the shared immutable
// TraceIndex and writes the section's text to w. Sections must not
// mutate anything reachable from the index — that is what makes them
// safe to fan out.
type Section struct {
	ID     string
	Render func(ix *fot.TraceIndex, w io.Writer) error
}

// SectionResult is one rendered section: its buffered text and the error
// (if any) that stopped it. Text holds whatever the section wrote before
// failing, so serial streaming semantics can be replayed exactly.
type SectionResult struct {
	ID   string
	Text []byte
	Err  error
}

// ReportBundle is the collected output of a RunAll: every section's
// result, in the submitted order regardless of completion order.
type ReportBundle struct {
	Sections []SectionResult
}

// Err returns the first section error in report order, wrapped with the
// section id — the same error WriteTo would surface.
func (b *ReportBundle) Err() error {
	for _, s := range b.Sections {
		if s.Err != nil {
			return fmt.Errorf("%s: %w", s.ID, s.Err)
		}
	}
	return nil
}

// WriteTo replays the bundle as the serial renderer would have streamed
// it: each section's text in order followed by a blank separator line; a
// failed section contributes its partial text and stops the report with
// the wrapped error.
func (b *ReportBundle) WriteTo(w io.Writer) (int64, error) {
	var written int64
	for _, s := range b.Sections {
		n, err := w.Write(s.Text)
		written += int64(n)
		if err != nil {
			return written, err
		}
		if s.Err != nil {
			return written, fmt.Errorf("%s: %w", s.ID, s.Err)
		}
		n2, err := fmt.Fprintln(w)
		written += int64(n2)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Runner fans report sections out across a worker pool. The zero value
// uses one worker per CPU.
type Runner struct {
	// Workers caps the number of concurrent sections; <= 0 means
	// runtime.NumCPU().
	Workers int
}

// RunAll renders every section against the shared index and returns the
// bundle. Each section renders into its own buffer, so concurrent
// sections never interleave output; result order is submission order.
func (r Runner) RunAll(ix *fot.TraceIndex, sections []Section) *ReportBundle {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(sections) {
		workers = len(sections)
	}
	results := make([]SectionResult, len(sections))
	if workers <= 0 {
		return &ReportBundle{Sections: results}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				var buf bytes.Buffer
				err := sections[idx].Render(ix, &buf)
				results[idx] = SectionResult{ID: sections[idx].ID, Text: buf.Bytes(), Err: err}
			}
		}()
	}
	for i := range sections {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return &ReportBundle{Sections: results}
}
