package core

import (
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// temporalState carries Figs. 3 & 4 jointly: per-component weekday and
// hour histograms over failure rows (component 0 = all classes).
type temporalState struct {
	dow  [][7]int  // [component code][weekday]
	hod  [][24]int // [component code][hour]
	fail []int     // failures per component code
}

// UpdateTemporal folds appended rows into the shared Fig. 3/Fig. 4 state.
// All-false-alarm batches return prev unchanged.
func UpdateTemporal(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
	st, _ := prev.(*temporalState)
	cols := ix.Cols()
	var next *temporalState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			next = &temporalState{
				dow:  make([][7]int, incComponents),
				hod:  make([][24]int, incComponents),
				fail: make([]int, incComponents),
			}
			if st != nil {
				copy(next.dow, st.dow)
				copy(next.hod, st.hod)
				copy(next.fail, st.fail)
			}
		}
		dev, wd, h := cols.Device[r], cols.Weekday[r], cols.Hour[r]
		next.dow[0][wd]++
		next.hod[0][h]++
		next.fail[0]++
		next.dow[dev][wd]++
		next.hod[dev][h]++
		next.fail[dev]++
	}
	if next == nil {
		if st == nil {
			return &temporalState{
				dow:  make([][7]int, incComponents),
				hod:  make([][24]int, incComponents),
				fail: make([]int, incComponents),
			}, nil
		}
		return prev, nil
	}
	return next, nil
}

// DayOfWeekFromState renders one Fig. 3 result from carried state,
// byte-identical to DayOfWeekIndexed.
func DayOfWeekFromState(state SectionState, ix *fot.TraceIndex, c fot.Component) (*DayOfWeekResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*temporalState)
	total := st.fail[c]
	if c != 0 && total == 0 {
		return nil, errNoTickets("component", c.String())
	}
	res := &DayOfWeekResult{Component: c, Counts: st.dow[c]}
	for d := range res.Counts {
		res.Fractions[d] = float64(res.Counts[d]) / float64(total)
	}
	var err error
	res.Test, err = stats.ChiSquareUniform(res.Counts[:])
	if err != nil {
		return nil, err
	}
	weekdays := []int{
		res.Counts[time.Monday], res.Counts[time.Tuesday], res.Counts[time.Wednesday],
		res.Counts[time.Thursday], res.Counts[time.Friday],
	}
	res.WeekdayTest, err = stats.ChiSquareUniform(weekdays)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// HourOfDayFromState renders one Fig. 4 result from carried state,
// byte-identical to HourOfDayIndexed.
func HourOfDayFromState(state SectionState, ix *fot.TraceIndex, c fot.Component) (*HourOfDayResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*temporalState)
	total := st.fail[c]
	if c != 0 && total == 0 {
		return nil, errNoTickets("component", c.String())
	}
	res := &HourOfDayResult{Component: c, Counts: st.hod[c]}
	for h := range res.Counts {
		res.Fractions[h] = float64(res.Counts[h]) / float64(total)
	}
	var err error
	res.Test, err = stats.ChiSquareUniform(res.Counts[:])
	if err != nil {
		return nil, err
	}
	return res, nil
}
