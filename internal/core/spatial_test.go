package core

import (
	"testing"
)

func TestRackAnalysisTableIV(t *testing.T) {
	res, cen := fixture(t)
	ra, err := RackAnalysis(res.Trace, cen)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.PerDC) != len(cen.Datacenters) {
		t.Fatalf("analyzed %d of %d datacenters", len(ra.PerDC), len(cen.Datacenters))
	}
	if ra.PLow+ra.PMid+ra.PHigh != len(ra.PerDC) {
		t.Error("Table IV buckets don't partition the facilities")
	}
	// The small profile has 2 uneven (pre-2014) facilities out of 4:
	// at least one rejection and at least one non-rejection expected.
	if ra.PLow == 0 {
		t.Error("no facility rejects Hypothesis 5 despite uneven cooling")
	}
	if ra.PHigh == 0 {
		t.Error("every facility rejects Hypothesis 5 — modern DCs should not")
	}
	// Paper: ~90% of post-2014 facilities cannot be rejected at 0.02.
	if ra.ModernNonRejectFraction < 0.5 {
		t.Errorf("modern non-reject fraction = %.2f, want high", ra.ModernNonRejectFraction)
	}
}

func TestRackPositionsGradientDC(t *testing.T) {
	res, cen := fixture(t)
	// dc02 is the "datacenter B" profile: broad cooling gradient.
	rp, err := RackPositions(res.Trace, cen, "dc02")
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Test.Reject(0.05) {
		t.Errorf("gradient facility not rejected: %v", rp.Test)
	}
	if rp.BuiltYear >= 2014 {
		t.Errorf("dc02 built %d, expected pre-2014", rp.BuiltYear)
	}
	// Per-server ratio should rise towards the top of the rack.
	low := avgRange(rp.Ratio, 2, 8)
	high := avgRange(rp.Ratio, rp.Positions-8, rp.Positions-2)
	if !(high > low) {
		t.Errorf("gradient DC: top ratio %.3f not above bottom %.3f", high, low)
	}
}

func TestRackPositionsHotspotDC(t *testing.T) {
	res, cen := fixture(t)
	// dc01 is the "datacenter A" profile: two singular hot positions.
	rp, err := RackPositions(res.Trace, cen, "dc01")
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Anomalies) == 0 {
		t.Error("no μ±2σ anomalies found in the hotspot facility")
	}
	// The planted hot spots are near position P-5 and P/2+2.
	wantNear := map[int]bool{rp.Positions - 5: true, rp.Positions/2 + 2: true}
	found := false
	for _, p := range rp.Anomalies {
		if wantNear[p] {
			found = true
		}
	}
	if !found {
		t.Errorf("anomalies %v do not include a planted hot position", rp.Anomalies)
	}
}

func TestRackPositionsConsistency(t *testing.T) {
	res, cen := fixture(t)
	for _, dc := range cen.Datacenters {
		rp, err := RackPositions(res.Trace, cen, dc.ID)
		if err != nil {
			t.Fatalf("%s: %v", dc.ID, err)
		}
		for p := 1; p <= rp.Positions; p++ {
			if rp.Occupancy[p] == 0 && rp.Failures[p] > 0 {
				t.Errorf("%s: failures at unoccupied position %d", dc.ID, p)
			}
			if rp.Occupancy[p] > 0 && rp.Ratio[p] != float64(rp.Failures[p])/float64(rp.Occupancy[p]) {
				t.Errorf("%s: ratio mismatch at %d", dc.ID, p)
			}
		}
	}
}

func TestRackPositionsUnknownIDC(t *testing.T) {
	res, cen := fixture(t)
	if _, err := RackPositions(res.Trace, cen, "dc99"); err == nil {
		t.Error("unknown datacenter accepted")
	}
}

func TestRackAnalysisNeedsCensus(t *testing.T) {
	res, _ := fixture(t)
	if _, err := RackAnalysis(res.Trace, nil); err == nil {
		t.Error("nil census accepted")
	}
}

func TestDedupeRepeats(t *testing.T) {
	res, _ := fixture(t)
	failures := res.Trace.Failures()
	deduped := failures.FirstPerInstance()
	if deduped.Len() >= failures.Len() {
		t.Errorf("dedupe removed nothing: %d vs %d", deduped.Len(), failures.Len())
	}
	type key struct {
		host uint64
		dev  interface{}
		slot string
		typ  string
	}
	seen := map[key]bool{}
	for _, tk := range deduped.Tickets {
		k := key{tk.HostID, tk.Device, tk.Slot, tk.Type}
		if seen[k] {
			t.Fatal("duplicate (host, device, slot, type) after dedupe")
		}
		seen[k] = true
	}
}
