package core

import (
	"slices"
	"time"

	"dcfail/internal/fot"
)

// batchFrequencyState carries Table V: per-component daily failure
// counts with running threshold-crossing tallies.
type batchFrequencyState struct {
	thresholds []int
	daily      []map[int32]int // [component code] day index -> failures
	crossed    [][]int         // [component code][threshold idx] days at >= threshold
	maxDaily   []int
	counts     []int // failures per component code
	minDay     int32
	maxDay     int32
	haveDay    bool
}

// BatchFrequencyUpdater returns the fold function of Table V for the
// given thresholds (nil = the paper's 100/200/500).
func BatchFrequencyUpdater(thresholds []int) func(SectionState, *fot.TraceIndex, []int32) (SectionState, error) {
	if len(thresholds) == 0 {
		thresholds = []int{100, 200, 500}
	}
	return func(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
		return updateBatchFrequency(prev, ix, newRows, thresholds)
	}
}

func newBatchFrequencyState(thresholds []int) *batchFrequencyState {
	st := &batchFrequencyState{
		thresholds: thresholds,
		daily:      make([]map[int32]int, incComponents),
		crossed:    make([][]int, incComponents),
		maxDaily:   make([]int, incComponents),
		counts:     make([]int, incComponents),
	}
	for c := range st.daily {
		st.daily[c] = make(map[int32]int)
		st.crossed[c] = make([]int, len(thresholds))
	}
	return st
}

func updateBatchFrequency(prev SectionState, ix *fot.TraceIndex, newRows []int32, thresholds []int) (SectionState, error) {
	st, _ := prev.(*batchFrequencyState)
	cols := ix.Cols()
	var next *batchFrequencyState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			if st != nil {
				next = &batchFrequencyState{}
				*next = *st // containers absorbed: prev handed off
			} else {
				next = newBatchFrequencyState(thresholds)
			}
		}
		dev := cols.Device[r]
		day := cols.DayIdx[r]
		n := next.daily[dev][day] + 1
		next.daily[dev][day] = n
		next.counts[dev]++
		if n > next.maxDaily[dev] {
			next.maxDaily[dev] = n
		}
		for ti, th := range next.thresholds {
			if n == th { // first crossing of this threshold today
				next.crossed[dev][ti]++
			}
		}
		if !next.haveDay || day < next.minDay {
			next.minDay = day
		}
		if !next.haveDay || day > next.maxDay {
			next.maxDay = day
		}
		next.haveDay = true
	}
	if next == nil {
		if st == nil {
			return newBatchFrequencyState(thresholds), nil
		}
		return prev, nil
	}
	return next, nil
}

// BatchFrequencyFromState renders Table V from carried state,
// byte-identical to BatchFrequencyIndexed with the same thresholds.
func BatchFrequencyFromState(state SectionState, ix *fot.TraceIndex) (*BatchFrequencyResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	st := state.(*batchFrequencyState)
	days := 0
	if st.haveDay {
		days = int(st.maxDay-st.minDay) + 1
	}
	if days < 1 {
		days = 1
	}
	counts := make(map[fot.Component]int, incComponents)
	for c, n := range st.counts {
		if n > 0 {
			counts[fot.Component(c)] = n
		}
	}
	res := &BatchFrequencyResult{Thresholds: st.thresholds, Days: days}
	for _, c := range sortedComponentsByCount(counts) {
		row := BatchFrequencyRow{Component: c, R: make(map[int]float64, len(st.thresholds))}
		row.MaxDaily = st.maxDaily[c]
		for ti, th := range st.thresholds {
			// The full path sums 1.0 per qualifying day then divides; an
			// integer count converts to the identical float sum.
			row.R[th] = float64(st.crossed[c][ti]) / float64(days)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// batchRun is one open run of a (device, type) group.
type batchRun struct {
	rows   []int32
	lastNS int64
}

// batchWindowsState carries §V-A's episode mining: per-(device, type)
// open runs plus episodes already closed by a later out-of-gap ticket.
type batchWindowsState struct {
	runs     map[uint64]*batchRun
	episodes []BatchEpisode
	scratch  *episodeScratch
}

// BatchWindowsUpdater returns the fold function of the §V-A episode
// miner. The census (optional) sizes product lines for LineFraction;
// linkGap/minSize default as in BatchWindowsIndexed.
func BatchWindowsUpdater(census *Census, linkGap time.Duration, minSize int) func(SectionState, *fot.TraceIndex, []int32) (SectionState, error) {
	if minSize < 2 {
		minSize = 2
	}
	if linkGap <= 0 {
		linkGap = 30 * time.Minute
	}
	lineSizes := make(map[string]int)
	if census != nil {
		for i := range census.Servers {
			lineSizes[census.Servers[i].ProductLine]++
		}
	}
	gapNS := int64(linkGap)
	return func(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
		return updateBatchWindows(prev, ix, newRows, lineSizes, gapNS, minSize)
	}
}

func updateBatchWindows(prev SectionState, ix *fot.TraceIndex, newRows []int32, lineSizes map[string]int, gapNS int64, minSize int) (SectionState, error) {
	st, _ := prev.(*batchWindowsState)
	cols := ix.Cols()
	var next *batchWindowsState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			if st != nil {
				next = &batchWindowsState{runs: st.runs, episodes: st.episodes, scratch: st.scratch}
			} else {
				next = &batchWindowsState{runs: make(map[uint64]*batchRun), scratch: newEpisodeScratch()}
			}
		}
		k := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
		t := cols.TimeNS[r]
		run := next.runs[k]
		if run == nil {
			next.runs[k] = &batchRun{rows: []int32{r}, lastNS: t}
			continue
		}
		if t-run.lastNS <= gapNS {
			run.rows = append(run.rows, r)
			run.lastNS = t
			continue
		}
		// Out-of-gap ticket: the open run closes exactly as the full
		// scan's run boundary would close it.
		if len(run.rows) >= minSize {
			dev := fot.Component(k >> 32)
			typ := cols.TypeName(uint32(k))
			next.episodes = append(next.episodes, summarizeEpisode(cols, dev, typ, run.rows, lineSizes, next.scratch))
		}
		next.runs[k] = &batchRun{rows: []int32{r}, lastNS: t}
	}
	if next == nil {
		if st == nil {
			return &batchWindowsState{runs: make(map[uint64]*batchRun), scratch: newEpisodeScratch()}, nil
		}
		return prev, nil
	}
	return next, nil
}

// BatchWindowsFromState renders §V-A's episodes from carried state,
// byte-identical to BatchWindowsIndexed with the same parameters. Open
// runs are summarized on the fly — they are exactly the trailing runs
// the full scan closes at end-of-input.
func BatchWindowsFromState(state SectionState, ix *fot.TraceIndex, census *Census, linkGap time.Duration, minSize int) ([]BatchEpisode, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	if minSize < 2 {
		minSize = 2
	}
	st := state.(*batchWindowsState)
	lineSizes := make(map[string]int)
	if census != nil {
		for i := range census.Servers {
			lineSizes[census.Servers[i].ProductLine]++
		}
	}
	cols := ix.Cols()
	episodes := make([]BatchEpisode, 0, len(st.episodes)+len(st.runs))
	episodes = append(episodes, st.episodes...)
	sc := newEpisodeScratch() // renders may run concurrently; don't share state scratch
	for k, run := range st.runs {
		if len(run.rows) >= minSize {
			dev := fot.Component(k >> 32)
			typ := cols.TypeName(uint32(k))
			episodes = append(episodes, summarizeEpisode(cols, dev, typ, run.rows, lineSizes, sc))
		}
	}
	slices.SortFunc(episodes, func(a, b BatchEpisode) int {
		if a.Tickets != b.Tickets {
			return b.Tickets - a.Tickets
		}
		if d := a.Start.Compare(b.Start); d != 0 {
			return d
		}
		if a.Component != b.Component {
			return int(a.Component) - int(b.Component)
		}
		return cmpString(a.Type, b.Type)
	})
	return episodes, nil
}
