package core

import "fmt"

func errEmptyTrace() error {
	return fmt.Errorf("core: empty trace")
}

func errNoTickets(dim, value string) error {
	return fmt.Errorf("core: no tickets for %s %s", dim, value)
}
