package core

import (
	"testing"
)

func TestServerSkewFig7(t *testing.T) {
	res, _ := fixture(t)
	sk, err := ServerSkew(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if sk.FailedServers == 0 || sk.TotalFailures == 0 {
		t.Fatal("empty skew result")
	}
	// CDF must be monotone and end at (1, 1).
	for i := 1; i < len(sk.CDF); i++ {
		if sk.CDF[i].X < sk.CDF[i-1].X || sk.CDF[i].Y < sk.CDF[i-1].Y-1e-12 {
			t.Fatal("CDF not monotone")
		}
	}
	last := sk.CDF[len(sk.CDF)-1]
	if last.X != 1 || last.Y < 1-1e-9 {
		t.Errorf("CDF endpoint = %+v, want (1,1)", last)
	}
	// Extreme concentration (paper: top 2% ≫ everyone else). At small
	// scale the chronic server plus frailty tail must already give the
	// top 2% several times their proportional share.
	top2 := sk.TopShare[0.02]
	if top2 < 0.05 {
		t.Errorf("top-2%% share = %.3f, want heavily super-proportional", top2)
	}
	if !(sk.TopShare[0.10] > sk.TopShare[0.02]) {
		t.Error("TopShare not monotone in p")
	}
	// The chronic BBU server dominates per-server counts.
	if sk.MaxOneServer < 100 {
		t.Errorf("max per-server tickets = %d, want the chronic server's hundreds", sk.MaxOneServer)
	}
}

func TestRepeatAnalysisSecIIID(t *testing.T) {
	res, _ := fixture(t)
	rep, err := RepeatAnalysis(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FixedGroups == 0 {
		t.Fatal("no fixed groups")
	}
	// Paper: over 85% of fixed components never repeat.
	if rep.NeverRepeatFraction < 0.80 || rep.NeverRepeatFraction > 0.995 {
		t.Errorf("never-repeat fraction = %.3f, want ≈0.85+", rep.NeverRepeatFraction)
	}
	// Paper: ~4.5% of failed servers suffered repeats.
	if rep.RepeatServerFraction <= 0 || rep.RepeatServerFraction > 0.25 {
		t.Errorf("repeat-server fraction = %.4f, want small but positive", rep.RepeatServerFraction)
	}
	if rep.ServersWithRepeats == 0 {
		t.Error("no servers with repeats despite injected chains")
	}
	if rep.RepeatedGroups == 0 {
		t.Error("no repeated groups despite organic repeats")
	}
}
