package core

import (
	"testing"

	"dcfail/internal/fot"
)

func TestLifecycleRatesFig6(t *testing.T) {
	res, cen := fixture(t)
	for _, c := range []fot.Component{fot.HDD, fot.Memory, fot.Misc, fot.RAIDCard} {
		lc, err := LifecycleRates(res.Trace, cen, c, 48)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if len(lc.Rates) != 48 || len(lc.Exposure) != 48 || len(lc.Counts) != 48 {
			t.Fatalf("%v: wrong horizon", c)
		}
		// Normalization: max is exactly 1 (when any failures exist).
		maxN := 0.0
		for _, v := range lc.Normalized {
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("%v: normalized rate %g outside [0,1]", c, v)
			}
			if v > maxN {
				maxN = v
			}
		}
		if maxN < 1-1e-9 {
			t.Errorf("%v: max normalized = %g, want 1", c, maxN)
		}
		// Exposure must be positive somewhere and never negative.
		sawExposure := false
		for _, e := range lc.Exposure {
			if e < 0 {
				t.Fatalf("%v: negative exposure", c)
			}
			if e > 0 {
				sawExposure = true
			}
		}
		if !sawExposure {
			t.Errorf("%v: no exposure at all", c)
		}
	}
}

func TestRAIDInfantMortalityFig6f(t *testing.T) {
	res, cen := fixture(t)
	lc, err := LifecycleRates(res.Trace, cen, fot.RAIDCard, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 47.4% of RAID failures within the first six months. The
	// small profile is noisy; require a strong infant-mortality signal.
	mass := lc.MassBetween(0, 6)
	if mass < 0.25 {
		t.Errorf("RAID first-6-month failure mass %.3f, want ≫ uniform (0.12)", mass)
	}
}

func TestMiscDeploymentSpikeFig6i(t *testing.T) {
	res, cen := fixture(t)
	lc, err := LifecycleRates(res.Trace, cen, fot.Misc, 48)
	if err != nil {
		t.Fatal(err)
	}
	// The first month must be the peak by far.
	if lc.Normalized[0] != 1 {
		t.Errorf("misc month-0 normalized = %g, want 1 (the peak)", lc.Normalized[0])
	}
	rest := 0.0
	for _, v := range lc.Normalized[1:] {
		if v > rest {
			rest = v
		}
	}
	if !(rest < 0.5) {
		t.Errorf("misc post-deployment peak %.3f, want ≪ 1", rest)
	}
}

func TestHDDWearRampFig6a(t *testing.T) {
	res, cen := fixture(t)
	lc, err := LifecycleRates(res.Trace, cen, fot.HDD, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Wear-out: average rate in months 24-40 above months 3-8. (Late
	// months have thin exposure at small scale; stop at 40.)
	early := avgRange(lc.Rates, 3, 9)
	late := avgRange(lc.Rates, 24, 40)
	if !(late > early) {
		t.Errorf("HDD wear ramp missing: early %.4g vs late %.4g", early, late)
	}
}

func TestFlashQuietFirstYearFig6e(t *testing.T) {
	res, cen := fixture(t)
	lc, err := LifecycleRates(res.Trace, cen, fot.FlashCard, 48)
	if err != nil {
		t.Fatal(err)
	}
	// At small scale flash has only dozens of tickets and the correlated
	// pair injector contributes age-uniform ones, so only require a clear
	// suppression below the uniform 25%; the paper-scale experiment
	// harness checks the ≈1.4% figure.
	firstYear := lc.MassBetween(0, 12)
	if firstYear > 0.20 {
		t.Errorf("flash first-year mass %.3f, want well below uniform", firstYear)
	}
}

func avgRange(xs []float64, lo, hi int) float64 {
	if hi > len(xs) {
		hi = len(xs)
	}
	sum, n := 0.0, 0
	for i := lo; i < hi; i++ {
		sum += xs[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestLifecycleNeedsCensus(t *testing.T) {
	res, _ := fixture(t)
	if _, err := LifecycleRates(res.Trace, nil, fot.HDD, 48); err == nil {
		t.Error("nil census accepted")
	}
}

func TestLifecycleDefaultHorizon(t *testing.T) {
	res, cen := fixture(t)
	lc, err := LifecycleRates(res.Trace, cen, fot.HDD, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.Rates) != 48 {
		t.Errorf("default horizon = %d, want 48", len(lc.Rates))
	}
}

func TestMassBetweenBounds(t *testing.T) {
	lc := &LifecycleResult{Counts: []int{10, 20, 30, 40}}
	if got := lc.MassBetween(0, 2); got != 0.3 {
		t.Errorf("MassBetween(0,2) = %g", got)
	}
	if got := lc.MassBetween(0, 99); got != 1 {
		t.Errorf("MassBetween full = %g", got)
	}
	empty := &LifecycleResult{Counts: []int{0, 0}}
	if got := empty.MassBetween(0, 2); got != 0 {
		t.Errorf("empty MassBetween = %g", got)
	}
}
