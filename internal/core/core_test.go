package core

import (
	"sync"
	"testing"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
)

// fixture is the shared small-profile simulation run all core tests use.
var (
	fixtureOnce sync.Once
	fixtureRes  *fms.Result
	fixtureCen  *Census
	fixtureErr  error
)

func fixture(t *testing.T) (*fms.Result, *Census) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureRes, fixtureErr = fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 1234)
		if fixtureErr == nil {
			fixtureCen = CensusFromFleet(fixtureRes.Fleet)
			fixtureErr = fixtureCen.Validate()
		}
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureRes, fixtureCen
}

func TestCensusFromFleet(t *testing.T) {
	res, cen := fixture(t)
	if len(cen.Servers) != res.Fleet.NumServers() {
		t.Errorf("census has %d servers, fleet %d", len(cen.Servers), res.Fleet.NumServers())
	}
	if len(cen.Datacenters) != len(res.Fleet.Datacenters) {
		t.Error("census datacenter count mismatch")
	}
	// Mutating census inventory must not touch the fleet.
	cen.Servers[0].Components[fot.HDD] += 100
	if res.Fleet.Servers[0].Inventory[fot.HDD] == cen.Servers[0].Components[fot.HDD] {
		t.Error("census aliases fleet inventory")
	}
	cen.Servers[0].Components[fot.HDD] -= 100
}

func TestCensusValidate(t *testing.T) {
	_, cen := fixture(t)
	if err := cen.Validate(); err != nil {
		t.Fatal(err)
	}
	var empty Census
	if err := empty.Validate(); err == nil {
		t.Error("empty census accepted")
	}
	bad := Census{
		Servers:     []CensusServer{{HostID: 1, IDC: "nope"}},
		Datacenters: []CensusDC{{ID: "dc", PositionsPerRack: 10}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("unknown idc accepted")
	}
}

func TestAnalysesRejectEmptyTrace(t *testing.T) {
	empty := fot.NewTrace(nil)
	if _, err := CategoryBreakdown(empty); err == nil {
		t.Error("CategoryBreakdown accepted empty trace")
	}
	if _, err := ComponentBreakdown(empty); err == nil {
		t.Error("ComponentBreakdown accepted empty trace")
	}
	if _, err := DayOfWeek(empty, 0); err == nil {
		t.Error("DayOfWeek accepted empty trace")
	}
	if _, err := TBFAnalysis(empty, 0); err == nil {
		t.Error("TBFAnalysis accepted empty trace")
	}
	if _, err := ServerSkew(empty); err == nil {
		t.Error("ServerSkew accepted empty trace")
	}
	if _, err := BatchFrequency(empty, nil); err == nil {
		t.Error("BatchFrequency accepted empty trace")
	}
	if _, err := CorrelatedPairs(empty, 0); err == nil {
		t.Error("CorrelatedPairs accepted empty trace")
	}
	if _, err := ResponseTimes(empty, fot.Fixing); err == nil {
		t.Error("ResponseTimes accepted empty trace")
	}
}
