package core

import (
	"dcfail/internal/fot"
)

// hypothesesState composes the sub-states the five verdicts render from:
// temporal counts (H1/H2), fleet-wide and HDD TBF scopes (H3/H4), and the
// rack position map (H5).
type hypothesesState struct {
	temporal SectionState
	tbf0     SectionState
	tbfHDD   SectionState
	rack     SectionState
}

// HypothesesUpdater returns the fold function of the verdicts section.
// The rack view may be nil — H5 is then skipped at render, exactly as the
// full path skips it without a census.
func HypothesesUpdater(rc *RackCensus) func(SectionState, *fot.TraceIndex, []int32) (SectionState, error) {
	return func(prev SectionState, ix *fot.TraceIndex, newRows []int32) (SectionState, error) {
		st, _ := prev.(*hypothesesState)
		var pt, p0, ph, pr SectionState
		if st != nil {
			pt, p0, ph, pr = st.temporal, st.tbf0, st.tbfHDD, st.rack
		}
		nt, err := UpdateTemporal(pt, ix, newRows)
		if err != nil {
			return nil, err
		}
		n0, err := updateTBFScope(p0, ix, newRows, 0)
		if err != nil {
			return nil, err
		}
		nh, err := updateTBFScope(ph, ix, newRows, fot.HDD)
		if err != nil {
			return nil, err
		}
		nr, err := updateRack(pr, ix, newRows, rc)
		if err != nil {
			return nil, err
		}
		if st != nil && nt == pt && n0 == p0 && nh == ph && nr == pr {
			return prev, nil // every sub-state carried through unchanged
		}
		return &hypothesesState{temporal: nt, tbf0: n0, tbfHDD: nh, rack: nr}, nil
	}
}

// HypothesesFromState renders the five verdicts from carried state,
// byte-identical to HypothesesIndexed with the same census. The TBF and
// rack renders share the full path's memo slots, so whichever section
// renders first on an epoch fills them for the others.
func HypothesesFromState(state SectionState, ix *fot.TraceIndex, rc *RackCensus) (*HypothesesResult, error) {
	// state is nil only when nothing has folded (empty index); the
	// sub-renders' own index guards produce the full path's errors then.
	st, _ := state.(*hypothesesState)
	if st == nil {
		st = &hypothesesState{}
	}
	res := &HypothesesResult{}

	dow, err := DayOfWeekFromState(st.temporal, ix, 0)
	if err != nil {
		return nil, err
	}
	res.Verdicts = append(res.Verdicts, HypothesisVerdict{
		ID:        1,
		Statement: "failures are uniform over days of the week",
		Scope:     "all components",
		Alpha:     0.01,
		Rejected:  dow.Test.Reject(0.01),
		Test:      dow.Test,
		Detail:    "weekday-only: " + dow.WeekdayTest.String(),
	})

	hod, err := HourOfDayFromState(st.temporal, ix, 0)
	if err != nil {
		return nil, err
	}
	res.Verdicts = append(res.Verdicts, HypothesisVerdict{
		ID:        2,
		Statement: "failures are uniform over hours of the day",
		Scope:     "all components",
		Alpha:     0.01,
		Rejected:  hod.Test.Reject(0.01),
		Test:      hod.Test,
	})

	tbf, err := TBFFromState(st.tbf0, ix, 0)
	if err != nil {
		return nil, err
	}
	res.Verdicts = append(res.Verdicts, HypothesisVerdict{
		ID:        3,
		Statement: "fleet-wide TBF follows an exponential distribution",
		Scope:     "all components",
		Alpha:     0.05,
		Rejected:  tbf.AllRejected(0.05),
		Test:      fitTestOf(tbf, "exponential"),
		Detail:    "every family (exp/weibull/gamma/lognormal) tested; least-bad: " + tbf.BestFamily,
	})

	hddTBF, err := TBFFromState(st.tbfHDD, ix, fot.HDD)
	if err != nil {
		return nil, err
	}
	res.Verdicts = append(res.Verdicts, HypothesisVerdict{
		ID:        4,
		Statement: "per-class TBF follows an exponential distribution",
		Scope:     "hdd (dominant class)",
		Alpha:     0.05,
		Rejected:  hddTBF.AllRejected(0.05),
		Test:      fitTestOf(hddTBF, "exponential"),
	})

	if rc != nil {
		ra, err := RackAnalysisFromState(st.rack, ix, rc)
		if err != nil {
			return nil, err
		}
		res.Verdicts = append(res.Verdicts, HypothesisVerdict{
			ID:        5,
			Statement: "failure rate is independent of rack position",
			Scope:     "per facility (mixed verdict, as in Table IV)",
			Alpha:     0.05,
			Rejected:  ra.PLow+ra.PMid > 0,
			Detail:    sprintfTableIV(ra),
		})
	}
	return res, nil
}
