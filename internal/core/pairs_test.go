package core

import (
	"testing"
	"time"

	"dcfail/internal/fot"
)

func TestCorrelatedPairsTableVI(t *testing.T) {
	res, _ := fixture(t)
	cp, err := CorrelatedPairs(res.Trace, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cp.TotalPairs == 0 {
		t.Fatal("no correlated pairs found despite injection")
	}
	// Matrix cells are canonical (A < B) and sorted by count.
	sum := 0
	for i, pc := range cp.Pairs {
		if pc.A >= pc.B {
			t.Fatalf("non-canonical pair %v/%v", pc.A, pc.B)
		}
		if i > 0 && pc.Count > cp.Pairs[i-1].Count {
			t.Fatal("pairs not sorted")
		}
		sum += pc.Count
	}
	if sum != cp.TotalPairs {
		t.Errorf("cells sum to %d, total %d", sum, cp.TotalPairs)
	}
	// Paper: misc reports accompany 71.5% of two-component failures.
	if cp.MiscFraction < 0.45 || cp.MiscFraction > 0.90 {
		t.Errorf("misc fraction = %.3f, want ≈0.715", cp.MiscFraction)
	}
	// Paper: experienced by 0.49% of servers that ever failed — rare.
	if cp.ServerFraction <= 0 || cp.ServerFraction > 0.10 {
		t.Errorf("server fraction = %.4f, want small", cp.ServerFraction)
	}
	// Misc×HDD is the dominant cell (349 in Table VI).
	top := cp.Pairs[0]
	if !(top.A == fot.HDD && top.B == fot.Misc) {
		t.Errorf("top pair = %v/%v, want hdd/misc", top.A, top.B)
	}
}

func TestPowerFanExamplesTableVII(t *testing.T) {
	res, _ := fixture(t)
	cp, err := CorrelatedPairs(res.Trace, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.PowerFanExamples) == 0 {
		t.Fatal("no power→fan examples despite PDU fan-follow injection")
	}
	for _, ex := range cp.PowerFanExamples {
		if ex.First.Device != fot.Power || ex.Second.Device != fot.Fan {
			t.Errorf("example devices %v→%v, want power→fan", ex.First.Device, ex.Second.Device)
		}
		if ex.First.HostID != ex.Second.HostID || ex.HostID != ex.First.HostID {
			t.Error("example spans hosts")
		}
		gap := ex.Second.Time.Sub(ex.First.Time)
		if gap < -24*time.Hour || gap > 24*time.Hour {
			t.Errorf("example gap %v outside window", gap)
		}
	}
}

func TestCorrelatedPairsDefaultWindow(t *testing.T) {
	res, _ := fixture(t)
	cp, err := CorrelatedPairs(res.Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Window != 24*time.Hour {
		t.Errorf("default window = %v", cp.Window)
	}
}

func TestSyncRepeatGroupsTableVIII(t *testing.T) {
	res, _ := fixture(t)
	groups, err := SyncRepeatGroups(res.Trace, 2*time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no synchronized repeat groups despite injection")
	}
	for i, g := range groups {
		if g.HostA >= g.HostB {
			t.Fatalf("group %d hosts not canonical", i)
		}
		if g.Occurrences < 3 {
			t.Fatalf("group %d below threshold", i)
		}
		if len(g.Times) == 0 {
			t.Fatalf("group %d has no instants", i)
		}
		for j := 1; j < len(g.Times); j++ {
			if g.Times[j].Before(g.Times[j-1]) {
				t.Fatalf("group %d instants unsorted", i)
			}
		}
		if i > 0 && g.Occurrences > groups[i-1].Occurrences {
			t.Fatal("groups not sorted by occurrences")
		}
	}
	// The injected twins are same-model, same-line, same-IDC HDD pairs;
	// verify the top group's hosts are real twins via the census.
	_, cen := fixture(t)
	byHost := map[uint64]*CensusServer{}
	for i := range cen.Servers {
		byHost[cen.Servers[i].HostID] = &cen.Servers[i]
	}
	top := groups[0]
	a, b := byHost[top.HostA], byHost[top.HostB]
	if a == nil || b == nil {
		t.Fatal("group hosts missing from census")
	}
	if a.Model != b.Model || a.ProductLine != b.ProductLine {
		t.Errorf("top sync-repeat pair is not a twin: %+v vs %+v", a, b)
	}
}

func TestSyncRepeatGroupsSkipsBatches(t *testing.T) {
	res, _ := fixture(t)
	// With a huge skew window every batch would alias into "sync" pairs;
	// the bucket cap must keep the group count sane instead of quadratic.
	groups, err := SyncRepeatGroups(res.Trace, 2*time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) > 500 {
		t.Errorf("%d sync groups — batch aliasing not suppressed", len(groups))
	}
}

func TestSyncRepeatGroupsDefaults(t *testing.T) {
	res, _ := fixture(t)
	if _, err := SyncRepeatGroups(res.Trace, 0, 0); err != nil {
		t.Fatal(err)
	}
}
