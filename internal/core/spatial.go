package core

import (
	"math"
	"slices"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// RackPositionResult reproduces one Fig. 8 subplot: the failure ratio at
// each rack position of one datacenter, with the Hypothesis 5 test.
type RackPositionResult struct {
	IDC       string
	BuiltYear int
	Positions int
	// Failures[p] counts failed servers at rack position p (index 0
	// unused): repeating failures are filtered out first, and a server
	// counts once when any of its components fail (paper §IV). Counting
	// servers rather than tickets keeps per-server luck (frailty, batch
	// membership) from masquerading as a position effect.
	Failures []int
	// Occupancy[p] is the number of monitored servers at position p.
	Occupancy []int
	// Ratio[p] is Failures[p]/Occupancy[p], the per-server failure ratio.
	Ratio []float64
	// Test is the occupancy-weighted chi-square uniformity test
	// (Hypothesis 5: failure rate independent of rack position).
	Test stats.ChiSquareResult
	// Anomalies lists positions whose ratio lies outside μ±2σ — the
	// paper's spot-anomaly detection that flags positions 22 and 35 in
	// its datacenter A even though the overall test cannot reject.
	Anomalies []int
}

// RackAnalysisResult reproduces Table IV across datacenters.
type RackAnalysisResult struct {
	PerDC []RackPositionResult
	// Table IV buckets.
	PLow  int // p < 0.01
	PMid  int // 0.01 <= p < 0.05
	PHigh int // p >= 0.05
	// ModernNonRejectFraction is the share of post-2014 facilities where
	// Hypothesis 5 cannot be rejected at 0.02 (paper: ~90%).
	ModernNonRejectFraction float64
}

// RackAnalysis computes Fig. 8 / Table IV over every datacenter in the
// census.
func RackAnalysis(tr *fot.Trace, census *Census) (*RackAnalysisResult, error) {
	return RackAnalysisIndexed(fot.BorrowTraceIndex(tr), census)
}

// rackMemo is the memoized (result, error) pair for RackAnalysisIndexed.
type rackMemo struct {
	res *RackAnalysisResult
	err error
}

// RackAnalysisIndexed is RackAnalysis over a shared TraceIndex,
// memoized per index: Table IV and the hypotheses section share one
// computation.
func RackAnalysisIndexed(ix *fot.TraceIndex, census *Census) (*RackAnalysisResult, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, errEmptyTrace()
	}
	m := ix.Memo("core.rack", func() any {
		res, err := rackAnalysisUncached(ix, census)
		return rackMemo{res, err}
	}).(rackMemo)
	return m.res, m.err
}

func rackAnalysisUncached(ix *fot.TraceIndex, census *Census) (*RackAnalysisResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	if census == nil || len(census.Datacenters) == 0 {
		return nil, errNoTickets("census for", "rack analysis")
	}
	res := &RackAnalysisResult{}
	modern, modernOK := 0, 0
	for _, dc := range census.Datacenters {
		one, err := rackPositions(ix, census, dc)
		if err != nil {
			continue // facility with too little data
		}
		res.PerDC = append(res.PerDC, *one)
		switch {
		case one.Test.P < 0.01:
			res.PLow++
		case one.Test.P < 0.05:
			res.PMid++
		default:
			res.PHigh++
		}
		if dc.BuiltYear >= 2014 {
			modern++
			if !one.Test.Reject(0.02) {
				modernOK++
			}
		}
	}
	if len(res.PerDC) == 0 {
		return nil, errNoTickets("datacenters with", "rack data")
	}
	if modern > 0 {
		res.ModernNonRejectFraction = float64(modernOK) / float64(modern)
	}
	return res, nil
}

// RackPositions computes the Fig. 8 subplot for one datacenter id.
func RackPositions(tr *fot.Trace, census *Census, idc string) (*RackPositionResult, error) {
	return RackPositionsIndexed(fot.BorrowTraceIndex(tr), census, idc)
}

// RackPositionsIndexed is RackPositions over a shared TraceIndex.
func RackPositionsIndexed(ix *fot.TraceIndex, census *Census, idc string) (*RackPositionResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	for _, dc := range census.Datacenters {
		if dc.ID == idc {
			return rackPositions(ix, census, dc)
		}
	}
	return nil, errNoTickets("datacenter", idc)
}

// rackPositions scans the deduplicated failure rows of one datacenter:
// an IDC-symbol compare and a position-column read per row, no ticket
// copies.
func rackPositions(ix *fot.TraceIndex, census *Census, dc CensusDC) (*RackPositionResult, error) {
	res := &RackPositionResult{
		IDC:       dc.ID,
		BuiltYear: dc.BuiltYear,
		Positions: dc.PositionsPerRack,
		Failures:  make([]int, dc.PositionsPerRack+1),
		Occupancy: make([]int, dc.PositionsPerRack+1),
		Ratio:     make([]float64, dc.PositionsPerRack+1),
	}
	for i := range census.Servers {
		s := &census.Servers[i]
		if s.IDC == dc.ID && s.Position >= 1 && s.Position <= dc.PositionsPerRack {
			res.Occupancy[s.Position]++
		}
	}
	cols := ix.Cols()
	failedHosts := make(map[uint64]int32) // host -> position
	if sym, ok := cols.IDCSymOf(dc.ID); ok {
		for _, r := range ix.FirstInstanceRows() {
			if cols.IDCSym[r] != sym {
				continue
			}
			if pos := cols.Position[r]; pos >= 1 && pos <= int32(dc.PositionsPerRack) {
				failedHosts[cols.Host[r]] = pos
			}
		}
	}
	for _, pos := range failedHosts {
		res.Failures[pos]++
	}
	// Only positions that actually host servers enter the test.
	var positions []int
	totalFailed, totalOcc := 0, 0
	for p := 1; p <= dc.PositionsPerRack; p++ {
		if res.Occupancy[p] == 0 {
			continue
		}
		res.Ratio[p] = float64(res.Failures[p]) / float64(res.Occupancy[p])
		positions = append(positions, p)
		totalFailed += res.Failures[p]
		totalOcc += res.Occupancy[p]
	}
	if len(positions) < 3 || totalFailed == 0 {
		return nil, errNoTickets("occupied positions in", dc.ID)
	}
	res.Test = contingencyTest(res.Failures, res.Occupancy, positions, totalFailed, totalOcc)
	res.Anomalies = rateAnomalies(res.Failures, res.Occupancy, positions, totalFailed, totalOcc)
	return res, nil
}

// contingencyTest runs the positions × {failed, alive} chi-square test of
// independence. Binary per-server outcomes make this the correct form:
// a plain Poisson-cell test would be badly underdispersed once most
// servers have failed at least once.
func contingencyTest(failed, occupancy []int, positions []int, totalFailed, totalOcc int) stats.ChiSquareResult {
	pBar := float64(totalFailed) / float64(totalOcc)
	statistic := 0.0
	cells := 0
	for _, p := range positions {
		occ := float64(occupancy[p])
		expFail := occ * pBar
		expAlive := occ * (1 - pBar)
		if expFail < 1e-9 || expAlive < 1e-9 {
			continue
		}
		dFail := float64(failed[p]) - expFail
		dAlive := (occ - float64(failed[p])) - expAlive
		statistic += dFail*dFail/expFail + dAlive*dAlive/expAlive
		cells++
	}
	df := cells - 1
	if df < 1 {
		df = 1
	}
	return stats.ChiSquareResult{
		Stat: statistic,
		DF:   df,
		P:    stats.ChiSquarePValue(statistic, df),
	}
}

// rateAnomalies flags positions whose per-server failure ratio lies
// outside μ ± 2σ, with σ the position's binomial standard error around
// the facility-wide rate — the paper's §IV CLT argument.
func rateAnomalies(failed, occupancy []int, positions []int, totalFailed, totalOcc int) []int {
	mu := float64(totalFailed) / float64(totalOcc)
	if mu <= 0 || mu >= 1 {
		return nil
	}
	var out []int
	for _, p := range positions {
		sigma := math.Sqrt(mu * (1 - mu) / float64(occupancy[p]))
		ratio := float64(failed[p]) / float64(occupancy[p])
		if math.Abs(ratio-mu) > 2*sigma {
			out = append(out, p)
		}
	}
	slices.Sort(out)
	return out
}
