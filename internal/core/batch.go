package core

import (
	"sort"
	"time"

	"dcfail/internal/fot"
)

// BatchFrequencyRow is one Table V row: the batch-failure frequency r_N of
// a component class for each threshold N.
type BatchFrequencyRow struct {
	Component fot.Component
	// R[N] is the fraction of study days on which at least N failures of
	// the class occurred (the paper's r_N metric).
	R map[int]float64
	// MaxDaily is the largest single-day count observed.
	MaxDaily int
}

// BatchFrequencyResult reproduces Table V.
type BatchFrequencyResult struct {
	Thresholds []int
	Days       int
	Rows       []BatchFrequencyRow
}

// BatchFrequency computes Table V: r_N per component class for the given
// thresholds (the paper uses 100, 200 and 500).
func BatchFrequency(tr *fot.Trace, thresholds []int) (*BatchFrequencyResult, error) {
	return BatchFrequencyIndexed(fot.BorrowTraceIndex(tr), thresholds)
}

// BatchFrequencyIndexed is BatchFrequency over a shared TraceIndex. Days
// are UTC calendar dates, not rolling 24-hour offsets from the first
// ticket: r_N must not depend on the trace's start time-of-day, and a
// failure cluster straddling midnight belongs to two study days.
func BatchFrequencyIndexed(ix *fot.TraceIndex, thresholds []int) (*BatchFrequencyResult, error) {
	if _, err := requireFailures(ix); err != nil {
		return nil, err
	}
	if len(thresholds) == 0 {
		thresholds = []int{100, 200, 500}
	}
	daily, days := ix.FailureDayBuckets()
	if days < 1 {
		days = 1
	}
	counts := ix.FailureCountByComponent()
	res := &BatchFrequencyResult{Thresholds: thresholds, Days: days}
	for _, c := range sortedComponentsByCount(counts) {
		row := BatchFrequencyRow{Component: c, R: make(map[int]float64, len(thresholds))}
		for _, n := range daily[c] {
			if n > row.MaxDaily {
				row.MaxDaily = n
			}
		}
		for _, th := range thresholds {
			over := 0
			for _, n := range daily[c] {
				if n >= th {
					over++
				}
			}
			row.R[th] = float64(over) / float64(days)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// BatchEpisode is one mined batch-failure case (§V-A's case studies).
type BatchEpisode struct {
	Component fot.Component
	Type      string
	Start     time.Time
	End       time.Time
	Tickets   int
	Servers   int
	// IDCs and Models describe the episode's spread.
	IDCs   []string
	Models []string
	// TopProductLine is the line owning most affected servers, and
	// LineFraction the share of that line's fleet that failed (paper
	// case 1: 32% of the product line's servers).
	TopProductLine string
	LineFraction   float64
}

// BatchWindows mines batch episodes from a trace: runs of same-class,
// same-type failures where consecutive tickets are at most linkGap apart
// and the run holds at least minSize distinct tickets. Episodes are
// returned largest-first. The census (optional) enables LineFraction.
func BatchWindows(tr *fot.Trace, census *Census, linkGap time.Duration, minSize int) ([]BatchEpisode, error) {
	return BatchWindowsIndexed(fot.BorrowTraceIndex(tr), census, linkGap, minSize)
}

// BatchWindowsIndexed is BatchWindows over a shared TraceIndex.
func BatchWindowsIndexed(ix *fot.TraceIndex, census *Census, linkGap time.Duration, minSize int) ([]BatchEpisode, error) {
	failures, err := requireFailures(ix)
	if err != nil {
		return nil, err
	}
	if minSize < 2 {
		minSize = 2
	}
	if linkGap <= 0 {
		linkGap = 30 * time.Minute
	}
	lineSizes := make(map[string]int)
	if census != nil {
		for i := range census.Servers {
			lineSizes[census.Servers[i].ProductLine]++
		}
	}
	type groupKey struct {
		dev fot.Component
		typ string
	}
	groups := make(map[groupKey][]fot.Ticket)
	for _, tk := range failures.Tickets {
		k := groupKey{tk.Device, tk.Type}
		groups[k] = append(groups[k], tk)
	}
	var episodes []BatchEpisode
	for k, tickets := range groups {
		sort.Slice(tickets, func(i, j int) bool { return tickets[i].Time.Before(tickets[j].Time) })
		runStart := 0
		for i := 1; i <= len(tickets); i++ {
			if i < len(tickets) && tickets[i].Time.Sub(tickets[i-1].Time) <= linkGap {
				continue
			}
			if i-runStart >= minSize {
				episodes = append(episodes, summarizeEpisode(k.dev, k.typ, tickets[runStart:i], lineSizes))
			}
			runStart = i
		}
	}
	sort.Slice(episodes, func(i, j int) bool {
		if episodes[i].Tickets != episodes[j].Tickets {
			return episodes[i].Tickets > episodes[j].Tickets
		}
		if !episodes[i].Start.Equal(episodes[j].Start) {
			return episodes[i].Start.Before(episodes[j].Start)
		}
		if episodes[i].Component != episodes[j].Component {
			return episodes[i].Component < episodes[j].Component
		}
		return episodes[i].Type < episodes[j].Type
	})
	return episodes, nil
}

func summarizeEpisode(dev fot.Component, typ string, run []fot.Ticket, lineSizes map[string]int) BatchEpisode {
	ep := BatchEpisode{
		Component: dev,
		Type:      typ,
		Start:     run[0].Time,
		End:       run[len(run)-1].Time,
		Tickets:   len(run),
	}
	servers := make(map[uint64]bool)
	idcs := make(map[string]bool)
	models := make(map[string]bool)
	lineServers := make(map[string]map[uint64]bool)
	for _, tk := range run {
		servers[tk.HostID] = true
		idcs[tk.IDC] = true
		if tk.Model != "" {
			models[tk.Model] = true
		}
		m := lineServers[tk.ProductLine]
		if m == nil {
			m = make(map[uint64]bool)
			lineServers[tk.ProductLine] = m
		}
		m[tk.HostID] = true
	}
	ep.Servers = len(servers)
	ep.IDCs = sortedKeys(idcs)
	ep.Models = sortedKeys(models)
	best, bestN := "", 0
	for line, hosts := range lineServers {
		if len(hosts) > bestN || (len(hosts) == bestN && line < best) {
			best, bestN = line, len(hosts)
		}
	}
	ep.TopProductLine = best
	if size := lineSizes[best]; size > 0 {
		ep.LineFraction = float64(bestN) / float64(size)
	}
	return ep
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
