package core

import (
	"slices"
	"time"

	"dcfail/internal/fot"
)

// BatchFrequencyRow is one Table V row: the batch-failure frequency r_N of
// a component class for each threshold N.
type BatchFrequencyRow struct {
	Component fot.Component
	// R[N] is the fraction of study days on which at least N failures of
	// the class occurred (the paper's r_N metric).
	R map[int]float64
	// MaxDaily is the largest single-day count observed.
	MaxDaily int
}

// BatchFrequencyResult reproduces Table V.
type BatchFrequencyResult struct {
	Thresholds []int
	Days       int
	Rows       []BatchFrequencyRow
}

// BatchFrequency computes Table V: r_N per component class for the given
// thresholds (the paper uses 100, 200 and 500).
func BatchFrequency(tr *fot.Trace, thresholds []int) (*BatchFrequencyResult, error) {
	return BatchFrequencyIndexed(fot.BorrowTraceIndex(tr), thresholds)
}

// BatchFrequencyIndexed is BatchFrequency over a shared TraceIndex. Days
// are UTC calendar dates, not rolling 24-hour offsets from the first
// ticket: r_N must not depend on the trace's start time-of-day, and a
// failure cluster straddling midnight belongs to two study days.
func BatchFrequencyIndexed(ix *fot.TraceIndex, thresholds []int) (*BatchFrequencyResult, error) {
	if _, err := requireFailureRows(ix); err != nil {
		return nil, err
	}
	if len(thresholds) == 0 {
		thresholds = []int{100, 200, 500}
	}
	daily, days := ix.FailureDayCounts()
	if days < 1 {
		days = 1
	}
	counts := ix.FailureCountByComponent()
	res := &BatchFrequencyResult{Thresholds: thresholds, Days: days}
	for _, c := range sortedComponentsByCount(counts) {
		row := BatchFrequencyRow{Component: c, R: make(map[int]float64, len(thresholds))}
		for _, th := range thresholds {
			row.R[th] = 0
		}
		for _, n := range daily[c] {
			if n == 0 {
				continue // only days with failures, as the sparse buckets had
			}
			if int(n) > row.MaxDaily {
				row.MaxDaily = int(n)
			}
			for _, th := range thresholds {
				if int(n) >= th {
					row.R[th] += 1
				}
			}
		}
		for _, th := range thresholds {
			row.R[th] /= float64(days)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// BatchEpisode is one mined batch-failure case (§V-A's case studies).
type BatchEpisode struct {
	Component fot.Component
	Type      string
	Start     time.Time
	End       time.Time
	Tickets   int
	Servers   int
	// IDCs and Models describe the episode's spread.
	IDCs   []string
	Models []string
	// TopProductLine is the line owning most affected servers, and
	// LineFraction the share of that line's fleet that failed (paper
	// case 1: 32% of the product line's servers).
	TopProductLine string
	LineFraction   float64
}

// BatchWindows mines batch episodes from a trace: runs of same-class,
// same-type failures where consecutive tickets are at most linkGap apart
// and the run holds at least minSize distinct tickets. Episodes are
// returned largest-first. The census (optional) enables LineFraction.
func BatchWindows(tr *fot.Trace, census *Census, linkGap time.Duration, minSize int) ([]BatchEpisode, error) {
	return BatchWindowsIndexed(fot.BorrowTraceIndex(tr), census, linkGap, minSize)
}

// BatchWindowsIndexed is BatchWindows over a shared TraceIndex. The
// failure rows arrive time-ordered, so each (device, type) group is
// already run-detectable without a per-group sort or ticket copies.
func BatchWindowsIndexed(ix *fot.TraceIndex, census *Census, linkGap time.Duration, minSize int) ([]BatchEpisode, error) {
	fail, err := requireFailureRows(ix)
	if err != nil {
		return nil, err
	}
	if minSize < 2 {
		minSize = 2
	}
	if linkGap <= 0 {
		linkGap = 30 * time.Minute
	}
	lineSizes := make(map[string]int)
	if census != nil {
		for i := range census.Servers {
			lineSizes[census.Servers[i].ProductLine]++
		}
	}
	cols := ix.Cols()
	groups := make(map[uint64][]int32)
	for _, r := range fail {
		k := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
		groups[k] = append(groups[k], r)
	}
	gapNS := int64(linkGap)
	var episodes []BatchEpisode
	scratch := newEpisodeScratch()
	for k, rows := range groups {
		dev := fot.Component(k >> 32)
		typ := cols.TypeName(uint32(k))
		runStart := 0
		for i := 1; i <= len(rows); i++ {
			if i < len(rows) && cols.TimeNS[rows[i]]-cols.TimeNS[rows[i-1]] <= gapNS {
				continue
			}
			if i-runStart >= minSize {
				episodes = append(episodes, summarizeEpisode(cols, dev, typ, rows[runStart:i], lineSizes, scratch))
			}
			runStart = i
		}
	}
	slices.SortFunc(episodes, func(a, b BatchEpisode) int {
		if a.Tickets != b.Tickets {
			return b.Tickets - a.Tickets
		}
		if d := a.Start.Compare(b.Start); d != 0 {
			return d
		}
		if a.Component != b.Component {
			return int(a.Component) - int(b.Component)
		}
		return cmpString(a.Type, b.Type)
	})
	return episodes, nil
}

// episodeScratch holds the per-episode dedup sets, reused (cleared, not
// reallocated) across every episode of a BatchWindows pass.
type episodeScratch struct {
	servers   map[uint64]bool
	idcs      map[string]bool
	models    map[string]bool
	lineHosts map[[2]uint64]bool // {line symbol, host} pairs seen
	lineCount map[uint32]int     // line symbol -> distinct hosts
}

func newEpisodeScratch() *episodeScratch {
	return &episodeScratch{
		servers:   make(map[uint64]bool),
		idcs:      make(map[string]bool),
		models:    make(map[string]bool),
		lineHosts: make(map[[2]uint64]bool),
		lineCount: make(map[uint32]int),
	}
}

func summarizeEpisode(cols *fot.Columns, dev fot.Component, typ string, run []int32, lineSizes map[string]int, sc *episodeScratch) BatchEpisode {
	ep := BatchEpisode{
		Component: dev,
		Type:      typ,
		Start:     cols.Ticket(run[0]).Time,
		End:       cols.Ticket(run[len(run)-1]).Time,
		Tickets:   len(run),
	}
	clear(sc.servers)
	clear(sc.idcs)
	clear(sc.models)
	clear(sc.lineHosts)
	clear(sc.lineCount)
	for _, r := range run {
		sc.servers[cols.Host[r]] = true
		sc.idcs[cols.IDCName(cols.IDCSym[r])] = true
		if m := cols.Ticket(r).Model; m != "" {
			sc.models[m] = true
		}
		sym := cols.LineSym[r]
		lh := [2]uint64{uint64(sym), cols.Host[r]}
		if !sc.lineHosts[lh] {
			sc.lineHosts[lh] = true
			sc.lineCount[sym]++
		}
	}
	ep.Servers = len(sc.servers)
	ep.IDCs = sortedKeys(sc.idcs)
	ep.Models = sortedKeys(sc.models)
	best, bestN := "", 0
	for sym, hosts := range sc.lineCount {
		line := cols.LineName(sym)
		if hosts > bestN || (hosts == bestN && line < best) {
			best, bestN = line, hosts
		}
	}
	ep.TopProductLine = best
	if size := lineSizes[best]; size > 0 {
		ep.LineFraction = float64(bestN) / float64(size)
	}
	return ep
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
