package core

import (
	"testing"

	"dcfail/internal/fot"
)

func TestTrendYearOverYear(t *testing.T) {
	res, _ := fixture(t)
	tr, err := Trend(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Years) != 4 {
		t.Fatalf("got %d years, want 4 (2013–2016)", len(tr.Years))
	}
	for i, ys := range tr.Years {
		if ys.Year != 2013+i {
			t.Errorf("year %d = %d", i, ys.Year)
		}
		if ys.Failures == 0 || ys.FailedServers == 0 {
			t.Errorf("%d: empty year stats %+v", ys.Year, ys)
		}
		if ys.MTBFMinutes <= 0 {
			t.Errorf("%d: MTBF %g", ys.Year, ys.MTBFMinutes)
		}
		if ys.ErrorShare < 0 || ys.ErrorShare > 1 {
			t.Errorf("%d: error share %g", ys.Year, ys.ErrorShare)
		}
		if ys.Tickets < ys.Failures {
			t.Errorf("%d: tickets %d < failures %d", ys.Year, ys.Tickets, ys.Failures)
		}
	}
	// The fleet deploys incrementally across the window, so failure
	// volume grows and the fleet-wide MTBF shrinks year over year.
	if !tr.FleetGrowth() {
		t.Errorf("failure volume not growing: %+v", tr.Years)
	}
	first, last := tr.Years[0], tr.Years[len(tr.Years)-1]
	if !(last.MTBFMinutes < first.MTBFMinutes) {
		t.Errorf("MTBF did not shrink: %.1f -> %.1f", first.MTBFMinutes, last.MTBFMinutes)
	}
	// Warranty expiry: the out-of-warranty share grows over the window.
	if !(last.ErrorShare > first.ErrorShare) {
		t.Errorf("D_error share did not grow: %.3f -> %.3f", first.ErrorShare, last.ErrorShare)
	}
}

func TestTrendEmptyTrace(t *testing.T) {
	if _, err := Trend(fot.NewTrace(nil)); err == nil {
		t.Error("empty trace accepted")
	}
}
