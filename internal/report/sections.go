package report

import (
	"fmt"
	"io"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
)

// SectionIDs lists every full-report section id in print order — the
// values accepted by fotreport's -only flag.
func SectionIDs() []string {
	out := make([]string, 0, len(standardSections(nil)))
	for _, s := range standardSections(nil) {
		out = append(out, s.ID)
	}
	return out
}

// StandardSections returns the full paper report as independent sections
// in print order: hypothesis verdicts, Tables I–VIII, Figs. 2–11, the
// trend summary and the mining extension. Each section consumes only the
// shared TraceIndex (plus the census), so a core.Runner may render them
// in any order or in parallel.
func StandardSections(census *core.Census) []core.Section {
	return standardSections(census)
}

func standardSections(census *core.Census) []core.Section {
	return []core.Section{
		{ID: "verdicts", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.HypothesesIndexed(ix, census)
			if err != nil {
				return err
			}
			return Hypotheses(w, r)
		}},
		{ID: "table1", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.CategoryBreakdownIndexed(ix)
			if err != nil {
				return err
			}
			return CategoryBreakdown(w, r)
		}},
		{ID: "table2", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.ComponentBreakdownIndexed(ix)
			if err != nil {
				return err
			}
			return ComponentBreakdown(w, r)
		}},
		{ID: "fig2", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			for _, c := range []fot.Component{fot.HDD, fot.RAIDCard, fot.FlashCard, fot.Memory} {
				r, err := core.TypeBreakdownIndexed(ix, c)
				if err != nil {
					return err
				}
				if err := TypeBreakdown(w, r); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: "fig3", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.DayOfWeekIndexed(ix, 0)
			if err != nil {
				return err
			}
			return DayOfWeek(w, r)
		}},
		{ID: "fig4", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			for _, c := range []fot.Component{fot.HDD, fot.Misc} {
				r, err := core.HourOfDayIndexed(ix, c)
				if err != nil {
					return err
				}
				if err := HourOfDay(w, r); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: "fig5", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.TBFAnalysisIndexed(ix, 0)
			if err != nil {
				return err
			}
			return TBF(w, r)
		}},
		{ID: "fig6", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			for _, c := range []fot.Component{fot.HDD, fot.Memory, fot.RAIDCard, fot.FlashCard, fot.Misc} {
				r, err := core.LifecycleRatesIndexed(ix, census, c, 48)
				if err != nil {
					return err
				}
				if err := Lifecycle(w, r); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: "fig7", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.ServerSkewIndexed(ix)
			if err != nil {
				return err
			}
			return ServerSkew(w, r)
		}},
		{ID: "repeats", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.RepeatAnalysisIndexed(ix)
			if err != nil {
				return err
			}
			return Repeats(w, r)
		}},
		{ID: "table4", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.RackAnalysisIndexed(ix, census)
			if err != nil {
				return err
			}
			return RackAnalysis(w, r)
		}},
		{ID: "fig8", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			for _, idc := range []string{"dc01", "dc02"} {
				r, err := core.RackPositionsIndexed(ix, census, idc)
				if err != nil {
					return err
				}
				if err := RackPositions(w, r); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: "table5", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.BatchFrequencyIndexed(ix, nil)
			if err != nil {
				return err
			}
			return BatchFrequency(w, r)
		}},
		{ID: "batches", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			eps, err := core.BatchWindowsIndexed(ix, census, 30*time.Minute, 20)
			if err != nil {
				return err
			}
			return BatchEpisodes(w, eps, 10)
		}},
		{ID: "table6", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.CorrelatedPairsIndexed(ix, 24*time.Hour)
			if err != nil {
				return err
			}
			return CorrelatedPairs(w, r)
		}},
		{ID: "table8", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			groups, err := core.SyncRepeatGroupsIndexed(ix, 2*time.Minute, 3)
			if err != nil {
				return err
			}
			return SyncRepeatGroups(w, groups, 10)
		}},
		{ID: "fig9", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			for _, cat := range []fot.Category{fot.Fixing, fot.FalseAlarm} {
				r, err := core.ResponseTimesIndexed(ix, cat)
				if err != nil {
					return err
				}
				if err := ResponseTimes(w, cat.String(), r); err != nil {
					return err
				}
			}
			return nil
		}},
		{ID: "fig10", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.ResponseTimesByClassIndexed(ix)
			if err != nil {
				return err
			}
			return ResponseTimesByClass(w, r)
		}},
		{ID: "fig11", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.ProductLineRTIndexed(ix, fot.HDD)
			if err != nil {
				return err
			}
			return ProductLineRT(w, r, 15)
		}},
		{ID: "trend", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			r, err := core.TrendIndexed(ix)
			if err != nil {
				return err
			}
			return Trend(w, r)
		}},
		{ID: "mine", Render: func(ix *fot.TraceIndex, w io.Writer) error {
			rules, err := mine.MineRulesIndexed(ix, 24*time.Hour, 3, 3.0)
			if err != nil {
				return err
			}
			if err := MiningRules(w, rules, 12); err != nil {
				return err
			}
			eval, err := mine.EvaluateWarningPredictorIndexed(ix, 10*24*time.Hour)
			if err != nil {
				return err
			}
			return PredictorEval(w, eval)
		}},
	}
}

// selectSections filters the standard sections by sel (nil keeps all).
func selectSections(census *core.Census, sel func(string) bool) []core.Section {
	all := standardSections(census)
	if sel == nil {
		return all
	}
	out := make([]core.Section, 0, len(all))
	for _, s := range all {
		if sel(s.ID) {
			out = append(out, s)
		}
	}
	return out
}

// Full renders the complete paper report through the parallel runner:
// sections fan out across `workers` goroutines (<= 0 means one per CPU)
// over the shared index, and the collected bundle is streamed to w in
// print order — byte-identical to SerialReference on the same trace.
func Full(w io.Writer, ix *fot.TraceIndex, census *core.Census, workers int, sel func(string) bool) error {
	bundle := core.Runner{Workers: workers}.RunAll(ix, selectSections(census, sel))
	_, err := bundle.WriteTo(w)
	return err
}

// SerialReference renders the complete paper report strictly serially
// through the one-shot *fot.Trace analysis entry points — no shared
// index, every section refiltering the trace from scratch. It is the
// pre-runner pipeline, kept as the golden reference (Full must match it
// byte for byte) and as the baseline side of BenchmarkFullReport.
func SerialReference(w io.Writer, trace *fot.Trace, census *core.Census, sel func(string) bool) error {
	if sel == nil {
		sel = func(string) bool { return true }
	}
	section := func(id string, fn func() error) error {
		if !sel(id) {
			return nil
		}
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	if err := section("verdicts", func() error {
		r, err := core.Hypotheses(trace, census)
		if err != nil {
			return err
		}
		return Hypotheses(w, r)
	}); err != nil {
		return err
	}
	if err := section("table1", func() error {
		r, err := core.CategoryBreakdown(trace)
		if err != nil {
			return err
		}
		return CategoryBreakdown(w, r)
	}); err != nil {
		return err
	}
	if err := section("table2", func() error {
		r, err := core.ComponentBreakdown(trace)
		if err != nil {
			return err
		}
		return ComponentBreakdown(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig2", func() error {
		for _, c := range []fot.Component{fot.HDD, fot.RAIDCard, fot.FlashCard, fot.Memory} {
			r, err := core.TypeBreakdown(trace, c)
			if err != nil {
				return err
			}
			if err := TypeBreakdown(w, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("fig3", func() error {
		r, err := core.DayOfWeek(trace, 0)
		if err != nil {
			return err
		}
		return DayOfWeek(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig4", func() error {
		for _, c := range []fot.Component{fot.HDD, fot.Misc} {
			r, err := core.HourOfDay(trace, c)
			if err != nil {
				return err
			}
			if err := HourOfDay(w, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("fig5", func() error {
		r, err := core.TBFAnalysis(trace, 0)
		if err != nil {
			return err
		}
		return TBF(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig6", func() error {
		for _, c := range []fot.Component{fot.HDD, fot.Memory, fot.RAIDCard, fot.FlashCard, fot.Misc} {
			r, err := core.LifecycleRates(trace, census, c, 48)
			if err != nil {
				return err
			}
			if err := Lifecycle(w, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("fig7", func() error {
		r, err := core.ServerSkew(trace)
		if err != nil {
			return err
		}
		return ServerSkew(w, r)
	}); err != nil {
		return err
	}
	if err := section("repeats", func() error {
		r, err := core.RepeatAnalysis(trace)
		if err != nil {
			return err
		}
		return Repeats(w, r)
	}); err != nil {
		return err
	}
	if err := section("table4", func() error {
		r, err := core.RackAnalysis(trace, census)
		if err != nil {
			return err
		}
		return RackAnalysis(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig8", func() error {
		for _, idc := range []string{"dc01", "dc02"} {
			r, err := core.RackPositions(trace, census, idc)
			if err != nil {
				return err
			}
			if err := RackPositions(w, r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("table5", func() error {
		r, err := core.BatchFrequency(trace, nil)
		if err != nil {
			return err
		}
		return BatchFrequency(w, r)
	}); err != nil {
		return err
	}
	if err := section("batches", func() error {
		eps, err := core.BatchWindows(trace, census, 30*time.Minute, 20)
		if err != nil {
			return err
		}
		return BatchEpisodes(w, eps, 10)
	}); err != nil {
		return err
	}
	if err := section("table6", func() error {
		r, err := core.CorrelatedPairs(trace, 24*time.Hour)
		if err != nil {
			return err
		}
		return CorrelatedPairs(w, r)
	}); err != nil {
		return err
	}
	if err := section("table8", func() error {
		groups, err := core.SyncRepeatGroups(trace, 2*time.Minute, 3)
		if err != nil {
			return err
		}
		return SyncRepeatGroups(w, groups, 10)
	}); err != nil {
		return err
	}
	if err := section("fig9", func() error {
		for _, cat := range []fot.Category{fot.Fixing, fot.FalseAlarm} {
			r, err := core.ResponseTimes(trace, cat)
			if err != nil {
				return err
			}
			if err := ResponseTimes(w, cat.String(), r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := section("fig10", func() error {
		r, err := core.ResponseTimesByClass(trace)
		if err != nil {
			return err
		}
		return ResponseTimesByClass(w, r)
	}); err != nil {
		return err
	}
	if err := section("fig11", func() error {
		r, err := core.ProductLineRT(trace, fot.HDD)
		if err != nil {
			return err
		}
		return ProductLineRT(w, r, 15)
	}); err != nil {
		return err
	}
	if err := section("trend", func() error {
		r, err := core.Trend(trace)
		if err != nil {
			return err
		}
		return Trend(w, r)
	}); err != nil {
		return err
	}
	return section("mine", func() error {
		rules, err := mine.MineRules(trace, 24*time.Hour, 3, 3.0)
		if err != nil {
			return err
		}
		if err := MiningRules(w, rules, 12); err != nil {
			return err
		}
		eval, err := mine.EvaluateWarningPredictor(trace, 10*24*time.Hour)
		if err != nil {
			return err
		}
		return PredictorEval(w, eval)
	})
}
