package report

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"dcfail/internal/core"
	"dcfail/internal/fot"
)

// sortedFixtureTickets returns the fixture's tickets in global (time, id)
// order — the append order a live source delivers, and the order the
// incremental engine's delta path assumes.
func sortedFixtureTickets(t *testing.T) ([]fot.Ticket, *core.Census) {
	t.Helper()
	r, census := fixture(t)
	tickets := append([]fot.Ticket(nil), r.Trace.Clone().Tickets...)
	slices.SortFunc(tickets, func(a, b fot.Ticket) int {
		if !a.Time.Equal(b.Time) {
			return a.Time.Compare(b.Time)
		}
		if a.ID != b.ID {
			if a.ID < b.ID {
				return -1
			}
			return 1
		}
		return 0
	})
	return tickets, census
}

// renderSection runs one render function and captures (bytes, error) —
// the pair the byte-identity contract covers, including partial output
// written before an error.
func renderSection(render func(w *bytes.Buffer) error) (string, string) {
	var buf bytes.Buffer
	err := render(&buf)
	if err != nil {
		return buf.String(), err.Error()
	}
	return buf.String(), ""
}

// foldSchedule cuts n rows into randomized batch boundaries, always
// ending at n. It front-loads a few degenerate epochs — empty prefixes
// and single rows — so the error paths render under both engines too.
func foldSchedule(rng *rand.Rand, n int) []int {
	cuts := []int{0, 1}
	k := 1
	for k < n {
		step := 1 + rng.Intn(n/4+1)
		k += step
		if k > n {
			k = n
		}
		cuts = append(cuts, k)
		if rng.Intn(4) == 0 {
			cuts = append(cuts, k) // empty batch: epoch advances, no rows
		}
	}
	if cuts[len(cuts)-1] != n {
		cuts = append(cuts, n)
	}
	return cuts
}

// TestIncrementalSectionsByteIdentical is the tentpole gate: every
// section rendered from carried fold state must be byte-identical —
// bytes and errors — to its full recompute over the same prefix, for
// randomized fold schedules (many small folds vs one big fold), at every
// epoch, under concurrent renders (run with -race).
func TestIncrementalSectionsByteIdentical(t *testing.T) {
	tickets, census := sortedFixtureTickets(t)
	full := StandardSections(census)

	for _, workers := range []int{0, 1, 4, 32} {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("workers=%d/seed=%d", workers, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				engine := core.NewIncrementalEngine(StandardIncrementalSections(census))
				var ix *fot.TraceIndex
				prevBytes := map[string]string{}
				for epoch, k := range foldSchedule(rng, len(tickets)) {
					ix = fot.ExtendTraceIndex(ix, fot.NewTrace(tickets[:k]))
					changed := engine.Advance(ix, uint64(epoch))

					type out struct{ bytes, err string }
					gotInc := make([]out, len(full))
					gotFull := make([]out, len(full))
					nWorkers := workers
					if nWorkers < 1 {
						nWorkers = 8
					}
					var wg sync.WaitGroup
					work := make(chan int)
					for w := 0; w < nWorkers; w++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for i := range work {
								sec := full[i]
								gotFull[i].bytes, gotFull[i].err = renderSection(func(b *bytes.Buffer) error {
									return sec.Render(ix, b)
								})
								gotInc[i].bytes, gotInc[i].err = renderSection(func(b *bytes.Buffer) error {
									ok, err := engine.TryRender(sec.ID, uint64(epoch), ix, b)
									if !ok {
										t.Errorf("epoch %d: TryRender(%q) not ok", epoch, sec.ID)
									}
									return err
								})
							}
						}()
					}
					for i := range full {
						work <- i
					}
					close(work)
					wg.Wait()

					for i, sec := range full {
						if gotInc[i] != gotFull[i] {
							t.Fatalf("epoch %d (rows %d) section %s: incremental render diverged\n inc: err=%q bytes=%q\nfull: err=%q bytes=%q",
								epoch, k, sec.ID, gotInc[i].err, gotInc[i].bytes, gotFull[i].err, gotFull[i].bytes)
						}
						// Sections the engine reported unchanged must allow
						// byte-carry from the previous epoch.
						if prev, ok := prevBytes[sec.ID]; ok && !changed[sec.ID] && gotFull[i].bytes != prev {
							t.Fatalf("epoch %d section %s: engine said unchanged but bytes moved", epoch, sec.ID)
						}
						prevBytes[sec.ID] = gotFull[i].bytes
					}
				}

				st := engine.Stats()
				if st.Rebuilds != 0 {
					t.Errorf("monotone schedule triggered %d rebuilds", st.Rebuilds)
				}
				if len(st.Broken) != 0 {
					t.Errorf("broken sections: %v", st.Broken)
				}

				// Final epoch: the assembled incremental report matches the
				// serial golden reference byte for byte.
				var want bytes.Buffer
				if err := SerialReference(&want, fot.NewTrace(tickets), census, nil); err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				for _, sec := range full {
					if ok, err := engine.TryRender(sec.ID, st.Epoch, ix, &got); !ok || err != nil {
						t.Fatalf("final render %s: ok=%v err=%v", sec.ID, ok, err)
					}
					fmt.Fprintln(&got)
				}
				if got.String() != want.String() {
					t.Fatal("assembled incremental report differs from SerialReference")
				}
			})
		}
	}
}

// TestIncrementalEngineRebuildsOnDisorder feeds a batch that starts
// before the fold watermark: the engine must rebuild from the full
// permutation — counted in Stats — and still render byte-identically.
func TestIncrementalEngineRebuildsOnDisorder(t *testing.T) {
	tickets, census := sortedFixtureTickets(t)
	full := StandardSections(census)
	engine := core.NewIncrementalEngine(StandardIncrementalSections(census))

	// Fold the SECOND half first, then extend with a trace that appends
	// the first half after it — an out-of-order backfill.
	half := len(tickets) / 2
	disordered := append([]fot.Ticket(nil), tickets[half:]...)
	disordered = append(disordered, tickets[:half]...)

	ix := fot.NewTraceIndex(fot.NewTrace(disordered[:half]))
	engine.Advance(ix, 1)
	if got := engine.Stats().Rebuilds; got != 0 {
		t.Fatalf("rebuilds after ordered prefix = %d, want 0", got)
	}
	ix = fot.ExtendTraceIndex(ix, fot.NewTrace(disordered))
	engine.Advance(ix, 2)
	if got := engine.Stats().Rebuilds; got != 1 {
		t.Fatalf("rebuilds after backfill = %d, want 1", got)
	}
	for _, sec := range full {
		fullBytes, fullErr := renderSection(func(b *bytes.Buffer) error { return sec.Render(ix, b) })
		incBytes, incErr := renderSection(func(b *bytes.Buffer) error {
			ok, err := engine.TryRender(sec.ID, 2, ix, b)
			if !ok {
				t.Errorf("TryRender(%q) not ok after rebuild", sec.ID)
			}
			return err
		})
		if incBytes != fullBytes || incErr != fullErr {
			t.Fatalf("section %s diverged after rebuild", sec.ID)
		}
	}
}

// TestIncrementalStaleEpochRefused pins TryRender's snapshot rule: a
// reader holding an older epoch gets ok=false and no bytes.
func TestIncrementalStaleEpochRefused(t *testing.T) {
	tickets, census := sortedFixtureTickets(t)
	engine := core.NewIncrementalEngine(StandardIncrementalSections(census))
	ix := fot.NewTraceIndex(fot.NewTrace(tickets[:len(tickets)/2]))
	engine.Advance(ix, 7)
	var buf bytes.Buffer
	if ok, err := engine.TryRender("table1", 6, ix, &buf); ok || err != nil || buf.Len() != 0 {
		t.Fatalf("stale epoch: ok=%v err=%v len=%d, want refusal with no bytes", ok, err, buf.Len())
	}
	if ok, err := engine.TryRender("nope", 7, ix, &buf); ok || err != nil || buf.Len() != 0 {
		t.Fatalf("unknown id: ok=%v err=%v len=%d, want refusal with no bytes", ok, err, buf.Len())
	}
}
