package report

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"dcfail/internal/core"
	"dcfail/internal/fot"
)

// TestFullMatchesSerialReference is the golden equivalence test of the
// parallel runner: on the same fixed-seed trace, the fan-out/collect
// pipeline must produce output byte-identical to the strictly serial
// per-analysis rendering. `make tier2` runs this under -race, which also
// exercises the shared-TraceIndex concurrency contract.
func TestFullMatchesSerialReference(t *testing.T) {
	res, cen := fixture(t)

	var serial bytes.Buffer
	if err := SerialReference(&serial, res.Trace, cen, nil); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4, 32} {
		var parallel bytes.Buffer
		if err := Full(&parallel, fot.NewTraceIndex(res.Trace), cen, workers, nil); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
			t.Fatalf("workers=%d: parallel output diverges from serial (%d vs %d bytes)",
				workers, parallel.Len(), serial.Len())
		}
	}
	if serial.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestFullHonorsSelection(t *testing.T) {
	res, cen := fixture(t)
	sel := func(id string) bool { return id == "table1" || id == "table5" }

	var got, want bytes.Buffer
	if err := Full(&got, fot.NewTraceIndex(res.Trace), cen, 0, sel); err != nil {
		t.Fatal(err)
	}
	if err := SerialReference(&want, res.Trace, cen, sel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("selected subset diverges from serial")
	}
	if !strings.Contains(got.String(), "Table I") || !strings.Contains(got.String(), "Table V") {
		t.Fatal("selected sections missing from output")
	}
	if strings.Contains(got.String(), "Fig. 5") {
		t.Fatal("unselected section leaked into output")
	}
}

// TestRunnerErrorSemantics checks that a failing section replays exactly
// like the serial pipeline: prior sections and the failer's partial text
// are written, the error is wrapped with the section id, and nothing
// after the failure appears.
func TestRunnerErrorSemantics(t *testing.T) {
	boom := errors.New("boom")
	sections := []core.Section{
		{ID: "ok", Render: func(_ *fot.TraceIndex, w io.Writer) error {
			_, err := fmt.Fprintln(w, "first")
			return err
		}},
		{ID: "bad", Render: func(_ *fot.TraceIndex, w io.Writer) error {
			fmt.Fprint(w, "partial")
			return boom
		}},
		{ID: "after", Render: func(_ *fot.TraceIndex, w io.Writer) error {
			_, err := fmt.Fprintln(w, "never shown")
			return err
		}},
	}
	bundle := core.Runner{Workers: 2}.RunAll(fot.NewTraceIndex(&fot.Trace{}), sections)

	var buf bytes.Buffer
	_, err := bundle.WriteTo(&buf)
	if !errors.Is(err, boom) {
		t.Fatalf("WriteTo error = %v, want wrapped boom", err)
	}
	if got, want := err.Error(), "bad: boom"; got != want {
		t.Fatalf("error = %q, want %q", got, want)
	}
	if got, want := buf.String(), "first\n\npartial"; got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
	if !errors.Is(bundle.Err(), boom) {
		t.Fatal("bundle.Err should surface the section error")
	}
}

func TestSectionIDsStable(t *testing.T) {
	ids := SectionIDs()
	if len(ids) != 21 {
		t.Fatalf("%d sections, want 21", len(ids))
	}
	if ids[0] != "verdicts" || ids[len(ids)-1] != "mine" {
		t.Fatalf("unexpected order: first=%s last=%s", ids[0], ids[len(ids)-1])
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate section id %s", id)
		}
		seen[id] = true
	}
}
