package report

import (
	"bytes"
	"encoding/csv"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
)

var (
	once sync.Once
	res  *fms.Result
	cen  *core.Census
	gerr error
)

func fixture(t *testing.T) (*fms.Result, *core.Census) {
	t.Helper()
	once.Do(func() {
		res, gerr = fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 777)
		if gerr == nil {
			cen = core.CensusFromFleet(res.Fleet)
		}
	})
	if gerr != nil {
		t.Fatal(gerr)
	}
	return res, cen
}

// render runs fn against a buffer and returns the output, failing on error.
func render(t *testing.T, fn func(buf *bytes.Buffer) error) string {
	t.Helper()
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatal("empty rendering")
	}
	return out
}

func TestRenderAllTables(t *testing.T) {
	r, census := fixture(t)
	tr := r.Trace

	cb, err := core.CategoryBreakdown(tr)
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, func(b *bytes.Buffer) error { return CategoryBreakdown(b, cb) })
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "D_fixing") {
		t.Errorf("Table I output malformed:\n%s", out)
	}

	comp, err := core.ComponentBreakdown(tr)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return ComponentBreakdown(b, comp) })
	if !strings.Contains(out, "hdd") {
		t.Errorf("Table II missing hdd:\n%s", out)
	}

	tb, err := core.TypeBreakdown(tr, fot.HDD)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return TypeBreakdown(b, tb) })
	if !strings.Contains(out, "SMARTFail") {
		t.Errorf("Fig 2 missing SMARTFail:\n%s", out)
	}

	dow, err := core.DayOfWeek(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return DayOfWeek(b, dow) })
	if !strings.Contains(out, "Mon") || !strings.Contains(out, "REJECTED") {
		t.Errorf("Fig 3 output malformed:\n%s", out)
	}

	hod, err := core.HourOfDay(tr, fot.Misc)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return HourOfDay(b, hod) })
	if !strings.Contains(out, "H2") {
		t.Errorf("Fig 4 output malformed:\n%s", out)
	}

	tbf, err := core.TBFAnalysis(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return TBF(b, tbf) })
	if !strings.Contains(out, "MTBF") || !strings.Contains(out, "weibull") {
		t.Errorf("Fig 5 output malformed:\n%s", out)
	}

	lc, err := core.LifecycleRates(tr, census, fot.HDD, 48)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return Lifecycle(b, lc) })
	if !strings.Contains(out, "m00-02") {
		t.Errorf("Fig 6 output malformed:\n%s", out)
	}

	sk, err := core.ServerSkew(tr)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return ServerSkew(b, sk) })
	if !strings.Contains(out, "top") {
		t.Errorf("Fig 7 output malformed:\n%s", out)
	}

	rep, err := core.RepeatAnalysis(tr)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return Repeats(b, rep) })
	if !strings.Contains(out, "never-repeat") {
		t.Errorf("repeat output malformed:\n%s", out)
	}

	ra, err := core.RackAnalysis(tr, census)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return RackAnalysis(b, ra) })
	if !strings.Contains(out, "Table IV") {
		t.Errorf("Table IV output malformed:\n%s", out)
	}

	rp, err := core.RackPositions(tr, census, "dc02")
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return RackPositions(b, rp) })
	if !strings.Contains(out, "pos ") {
		t.Errorf("Fig 8 output malformed:\n%s", out)
	}

	bf, err := core.BatchFrequency(tr, []int{10, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return BatchFrequency(b, bf) })
	if !strings.Contains(out, "r10") {
		t.Errorf("Table V output malformed:\n%s", out)
	}

	eps, err := core.BatchWindows(tr, census, 30*time.Minute, 10)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return BatchEpisodes(b, eps, 5) })
	if !strings.Contains(out, "episodes") {
		t.Errorf("episodes output malformed:\n%s", out)
	}

	cp, err := core.CorrelatedPairs(tr, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return CorrelatedPairs(b, cp) })
	if !strings.Contains(out, "Table VI") || !strings.Contains(out, "Table VII") {
		t.Errorf("Table VI/VII output malformed:\n%s", out)
	}

	groups, err := core.SyncRepeatGroups(tr, 2*time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return SyncRepeatGroups(b, groups, 5) })
	if !strings.Contains(out, "Table VIII") {
		t.Errorf("Table VIII output malformed:\n%s", out)
	}

	rt, err := core.ResponseTimes(tr, fot.Fixing)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return ResponseTimes(b, "D_fixing", rt) })
	if !strings.Contains(out, "median") {
		t.Errorf("Fig 9 output malformed:\n%s", out)
	}

	byClass, err := core.ResponseTimesByClass(tr)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return ResponseTimesByClass(b, byClass) })
	if !strings.Contains(out, "Fig. 10") {
		t.Errorf("Fig 10 output malformed:\n%s", out)
	}

	plrt, err := core.ProductLineRT(tr, fot.HDD)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return ProductLineRT(b, plrt, 10) })
	if !strings.Contains(out, "busiest 1%") {
		t.Errorf("Fig 11 output malformed:\n%s", out)
	}
}

// failingWriter errors after n bytes to exercise error propagation.
type failingWriter struct{ left int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errFailing
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errFailing
	}
	return n, nil
}

var errFailing = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "writer full" }

func TestWriterErrorsPropagate(t *testing.T) {
	r, _ := fixture(t)
	cb, err := core.CategoryBreakdown(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := CategoryBreakdown(&failingWriter{left: 10}, cb); err == nil {
		t.Error("write error swallowed")
	}
}

func TestBar(t *testing.T) {
	if bar(-1, 1) != "" {
		t.Error("negative bar should be empty")
	}
	if got := bar(1, 1); len(got) != 20 {
		t.Errorf("unit bar len = %d, want 20", len(got))
	}
	if got := bar(100, 1); len(got) != 60 {
		t.Errorf("clamped bar len = %d, want 60", len(got))
	}
}

func TestRenderExtensions(t *testing.T) {
	r, census := fixture(t)

	h, err := core.Hypotheses(r.Trace, census)
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, func(b *bytes.Buffer) error { return Hypotheses(b, h) })
	if !strings.Contains(out, "H1") || !strings.Contains(out, "H5") {
		t.Errorf("hypotheses output malformed:\n%s", out)
	}

	trend, err := core.Trend(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return Trend(b, trend) })
	if !strings.Contains(out, "2013") || !strings.Contains(out, "MTBF") {
		t.Errorf("trend output malformed:\n%s", out)
	}

	rules, err := mine.MineRules(r.Trace, 24*time.Hour, 3, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return MiningRules(b, rules, 5) })
	if !strings.Contains(out, "lift") {
		t.Errorf("rules output malformed:\n%s", out)
	}

	eval, err := mine.EvaluateWarningPredictor(r.Trace, 10*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return PredictorEval(b, eval) })
	if !strings.Contains(out, "recall") {
		t.Errorf("predictor output malformed:\n%s", out)
	}

	ix, err := mine.NewIndex(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ix.Contextualize(r.Trace.Tickets[len(r.Trace.Tickets)/2].ID)
	if err != nil {
		t.Fatal(err)
	}
	out = render(t, func(b *bytes.Buffer) error { return TicketContext(b, ctx) })
	if !strings.Contains(out, "slot repeats") {
		t.Errorf("context output malformed:\n%s", out)
	}
}

func TestFigureCSVs(t *testing.T) {
	r, census := fixture(t)
	files := map[string]string{}
	err := FigureCSVs(r.Trace, census, func(name string, render func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			return err
		}
		files[name] = buf.String()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table2_components.csv", "fig2_types_hdd.csv", "fig3_weekday.csv",
		"fig4_hourly.csv", "fig5_tbf_cdf.csv", "fig6_lifecycle_hdd.csv",
		"fig7_skew_cdf.csv", "fig8_rack_dc01.csv", "table5_batch_frequency.csv",
		"fig9_rt_cdf_D_fixing.csv", "fig11_line_rt.csv",
	}
	for _, name := range want {
		body, ok := files[name]
		if !ok {
			t.Errorf("missing %s (have %d files)", name, len(files))
			continue
		}
		lines := strings.Split(strings.TrimSpace(body), "\n")
		if len(lines) < 2 {
			t.Errorf("%s has no data rows", name)
			continue
		}
		// All rows must have the header's column count.
		cols := strings.Count(lines[0], ",")
		for i, ln := range lines {
			if strings.Count(ln, ",") != cols {
				t.Errorf("%s: row %d has wrong arity", name, i)
				break
			}
		}
	}
	// Fig. 5 export overlays the fitted CDFs.
	if !strings.Contains(files["fig5_tbf_cdf.csv"], "weibull_cdf") {
		t.Error("fig5 export missing fitted families")
	}
	// Re-parse one export with the CSV reader to prove well-formedness.
	rd := csv.NewReader(strings.NewReader(files["table2_components.csv"]))
	if _, err := rd.ReadAll(); err != nil {
		t.Errorf("table2 csv unparsable: %v", err)
	}
}
