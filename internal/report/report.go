// Package report renders dcfail analysis results as plain-text tables and
// series, one renderer per paper table/figure. The cmd tools, examples and
// the bench harness all print through it so their output stays uniform.
package report

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"

	"dcfail/internal/core"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/stats"
)

// Table I -------------------------------------------------------------

// CategoryBreakdown renders paper Table I.
func CategoryBreakdown(w io.Writer, r *core.CategoryBreakdownResult) error {
	ew := &errWriter{w: w}
	ew.printf("Table I — FOT categories (total %d)\n", r.Total)
	ew.printf("  %-14s %-38s %8s %8s\n", "trace", "handling decision", "count", "share")
	for _, row := range r.Rows {
		ew.printf("  %-14s %-38s %8d %7.1f%%\n",
			row.Category, row.Decision, row.Count, 100*row.Fraction)
	}
	return ew.err
}

// Table II ------------------------------------------------------------

// ComponentBreakdown renders paper Table II.
func ComponentBreakdown(w io.Writer, r *core.ComponentBreakdownResult) error {
	ew := &errWriter{w: w}
	ew.printf("Table II — failure breakdown by component (total %d)\n", r.Total)
	ew.printf("  %-14s %8s %8s\n", "device", "count", "share")
	for _, row := range r.Rows {
		ew.printf("  %-14s %8d %7.2f%%\n", row.Component, row.Count, 100*row.Fraction)
	}
	return ew.err
}

// Fig. 2 --------------------------------------------------------------

// TypeBreakdown renders one Fig. 2 subfigure.
func TypeBreakdown(w io.Writer, r *core.TypeBreakdownResult) error {
	ew := &errWriter{w: w}
	ew.printf("Fig. 2 — failure types of %s (total %d)\n", r.Component, r.Total)
	for _, row := range r.Rows {
		ew.printf("  %-22s %8d %7.2f%%\n", row.Type, row.Count, 100*row.Fraction)
	}
	return ew.err
}

// Fig. 3 / Fig. 4 -----------------------------------------------------

var dayNames = [7]string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}

// DayOfWeek renders a Fig. 3 series with its Hypothesis 1 verdict.
func DayOfWeek(w io.Writer, r *core.DayOfWeekResult) error {
	ew := &errWriter{w: w}
	scope := "all components"
	if r.Component != 0 {
		scope = r.Component.String()
	}
	ew.printf("Fig. 3 — failures per weekday (%s)\n", scope)
	for d, name := range dayNames {
		ew.printf("  %s %6.2f%% %s\n", name, 100*r.Fractions[d], bar(r.Fractions[d], 0.25))
	}
	ew.printf("  H1 uniform-over-days: %s => %s\n", r.Test, verdict(r.Test, 0.01))
	ew.printf("  H1 weekdays only:     %s => %s\n", r.WeekdayTest, verdict(r.WeekdayTest, 0.02))
	return ew.err
}

// HourOfDay renders a Fig. 4 series with its Hypothesis 2 verdict.
func HourOfDay(w io.Writer, r *core.HourOfDayResult) error {
	ew := &errWriter{w: w}
	scope := "all components"
	if r.Component != 0 {
		scope = r.Component.String()
	}
	ew.printf("Fig. 4 — failures per hour of day (%s)\n", scope)
	for h := 0; h < 24; h++ {
		ew.printf("  %02d %6.2f%% %s\n", h, 100*r.Fractions[h], bar(r.Fractions[h], 0.10))
	}
	ew.printf("  H2 uniform-over-hours: %s => %s\n", r.Test, verdict(r.Test, 0.01))
	return ew.err
}

// Fig. 5 --------------------------------------------------------------

// TBF renders the Fig. 5 analysis with the Hypothesis 3/4 verdicts.
func TBF(w io.Writer, r *core.TBFResult) error {
	ew := &errWriter{w: w}
	ew.printf("Fig. 5 — time between failures (%s, %d gaps)\n", r.Scope, r.N)
	ew.printf("  MTBF %.1f min, median %.1f min\n", r.MTBFMinutes, r.MedianMinutes)
	for _, f := range r.Fits {
		if f.Err != nil {
			ew.printf("  %-12s fit failed: %v\n", f.Dist.Name(), f.Err)
			continue
		}
		ew.printf("  %-12s %s KS=%.4f => %s\n", f.Dist.Name(), f.Test, f.KS, verdict(f.Test, 0.05))
	}
	if r.BestFamily != "" {
		ew.printf("  least-bad family by AIC: %s\n", r.BestFamily)
	}
	if len(r.PerIDCMTBF) > 0 {
		lo, hi := minMax(r.PerIDCMTBF)
		ew.printf("  per-datacenter MTBF: %.0f–%.0f min across %d facilities\n",
			lo, hi, len(r.PerIDCMTBF))
	}
	return ew.err
}

// Fig. 6 --------------------------------------------------------------

// Lifecycle renders one Fig. 6 subfigure as a normalized monthly series.
func Lifecycle(w io.Writer, r *core.LifecycleResult) error {
	ew := &errWriter{w: w}
	ew.printf("Fig. 6 — normalized monthly failure rate of %s by months in service\n", r.Component)
	for m := 0; m < len(r.Normalized); m += 3 {
		end := m + 3
		if end > len(r.Normalized) {
			end = len(r.Normalized)
		}
		ew.printf("  m%02d-%02d", m, end-1)
		for i := m; i < end; i++ {
			ew.printf(" %5.2f", r.Normalized[i])
		}
		ew.printf("  %s\n", bar(avg(r.Normalized[m:end]), 1))
	}
	return ew.err
}

// Fig. 7 --------------------------------------------------------------

// ServerSkew renders Fig. 7's concentration numbers.
func ServerSkew(w io.Writer, r *core.ServerSkewResult) error {
	ew := &errWriter{w: w}
	ew.printf("Fig. 7 — failure concentration across %d ever-failed servers (%d failures)\n",
		r.FailedServers, r.TotalFailures)
	ps := make([]float64, 0, len(r.TopShare))
	for p := range r.TopShare {
		ps = append(ps, p)
	}
	sort.Float64s(ps)
	for _, p := range ps {
		ew.printf("  top %4.1f%% of failed servers hold %5.1f%% of failures\n",
			100*p, 100*r.TopShare[p])
	}
	ew.printf("  busiest server: %d tickets (host %d)\n", r.MaxOneServer, r.MaxServer)
	return ew.err
}

// §III-D --------------------------------------------------------------

// Repeats renders the §III-D repeat statistics.
func Repeats(w io.Writer, r *core.RepeatResult) error {
	ew := &errWriter{w: w}
	ew.printf("§III-D — repeating failures\n")
	ew.printf("  fixed (host,component,slot,type) groups: %d\n", r.FixedGroups)
	ew.printf("  groups that repeated after a fix:        %d (never-repeat %.1f%%)\n",
		r.RepeatedGroups, 100*r.NeverRepeatFraction)
	ew.printf("  servers with repeats: %d of %d ever-failed (%.2f%%)\n",
		r.ServersWithRepeats, r.FailedServers, 100*r.RepeatServerFraction)
	return ew.err
}

// Table IV / Fig. 8 ---------------------------------------------------

// RackAnalysis renders Table IV plus one Fig. 8-style line per facility.
func RackAnalysis(w io.Writer, r *core.RackAnalysisResult) error {
	ew := &errWriter{w: w}
	ew.printf("Table IV — Hypothesis 5 (failure rate independent of rack position)\n")
	ew.printf("  p < 0.01        : %d of %d\n", r.PLow, len(r.PerDC))
	ew.printf("  0.01 <= p < 0.05: %d of %d\n", r.PMid, len(r.PerDC))
	ew.printf("  p >= 0.05       : %d of %d\n", r.PHigh, len(r.PerDC))
	ew.printf("  post-2014 facilities not rejected at 0.02: %.0f%%\n", 100*r.ModernNonRejectFraction)
	for i := range r.PerDC {
		dc := &r.PerDC[i]
		ew.printf("  %s (built %d): %s anomalies=%v\n", dc.IDC, dc.BuiltYear, dc.Test, dc.Anomalies)
	}
	return ew.err
}

// RackPositions renders one Fig. 8 subplot.
func RackPositions(w io.Writer, r *core.RackPositionResult) error {
	ew := &errWriter{w: w}
	ew.printf("Fig. 8 — failure ratio by rack position in %s (built %d)\n", r.IDC, r.BuiltYear)
	for p := 1; p <= r.Positions; p++ {
		if r.Occupancy[p] == 0 {
			continue
		}
		mark := ""
		for _, a := range r.Anomalies {
			if a == p {
				mark = "  <= μ±2σ outlier"
			}
		}
		ew.printf("  pos %2d: %5.3f %s%s\n", p, r.Ratio[p], bar(r.Ratio[p], 1), mark)
	}
	ew.printf("  H5: %s => %s\n", r.Test, verdict(r.Test, 0.05))
	return ew.err
}

// Table V -------------------------------------------------------------

// BatchFrequency renders Table V.
func BatchFrequency(w io.Writer, r *core.BatchFrequencyResult) error {
	ew := &errWriter{w: w}
	ew.printf("Table V — batch failure frequency over %d days\n", r.Days)
	ew.printf("  %-14s", "device")
	for _, th := range r.Thresholds {
		ew.printf(" %8s", fmt.Sprintf("r%d", th))
	}
	ew.printf(" %8s\n", "max/day")
	for _, row := range r.Rows {
		ew.printf("  %-14s", row.Component)
		for _, th := range r.Thresholds {
			ew.printf(" %7.2f%%", 100*row.R[th])
		}
		ew.printf(" %8d\n", row.MaxDaily)
	}
	return ew.err
}

// §V-A ----------------------------------------------------------------

// BatchEpisodes renders the top mined batch cases.
func BatchEpisodes(w io.Writer, eps []core.BatchEpisode, n int) error {
	ew := &errWriter{w: w}
	if n > len(eps) {
		n = len(eps)
	}
	ew.printf("§V-A — largest %d batch episodes (of %d mined)\n", n, len(eps))
	for _, ep := range eps[:n] {
		ew.printf("  %s %s: %d tickets on %d servers in %s (idcs=%v models=%v line=%s %.0f%% of line)\n",
			ep.Component, ep.Type, ep.Tickets, ep.Servers,
			ep.End.Sub(ep.Start).Round(1e9), ep.IDCs, ep.Models,
			ep.TopProductLine, 100*ep.LineFraction)
	}
	return ew.err
}

// Table VI/VII --------------------------------------------------------

// CorrelatedPairs renders Table VI and the Table VII examples.
func CorrelatedPairs(w io.Writer, r *core.CorrelatedPairsResult) error {
	ew := &errWriter{w: w}
	ew.printf("Table VI — correlated component failures (window %v)\n", r.Window)
	ew.printf("  %d pairs on %d of %d ever-failed servers (%.2f%%); %.1f%% involve misc\n",
		r.TotalPairs, r.ServersWithPairs, r.FailedServers,
		100*r.ServerFraction, 100*r.MiscFraction)
	for _, pc := range r.Pairs {
		ew.printf("  %-14s × %-14s %6d\n", pc.A, pc.B, pc.Count)
	}
	if len(r.PowerFanExamples) > 0 {
		ew.printf("Table VII — power→fan examples\n")
		for _, ex := range r.PowerFanExamples {
			ew.printf("  host %d: %s %s %s  ->  %s %s %s\n", ex.HostID,
				ex.First.Type, ex.First.Slot, ex.First.Time.Format("2006-01-02 15:04:05"),
				ex.Second.Type, ex.Second.Slot, ex.Second.Time.Format("2006-01-02 15:04:05"))
		}
	}
	return ew.err
}

// Table VIII ----------------------------------------------------------

// SyncRepeatGroups renders the mined Table VIII twins.
func SyncRepeatGroups(w io.Writer, groups []core.SyncRepeatGroup, n int) error {
	ew := &errWriter{w: w}
	if n > len(groups) {
		n = len(groups)
	}
	ew.printf("Table VIII — synchronously repeating failures (%d groups, top %d)\n", len(groups), n)
	for _, g := range groups[:n] {
		ew.printf("  hosts %d & %d: %s %s × %d instants, first %s\n",
			g.HostA, g.HostB, g.Component, g.Type, g.Occurrences,
			g.Times[0].Format("2006-01-02 15:04:05"))
	}
	return ew.err
}

// Fig. 9/10/11 --------------------------------------------------------

// ResponseTimes renders a Fig. 9 row.
func ResponseTimes(w io.Writer, label string, r *core.ResponseTimesResult) error {
	ew := &errWriter{w: w}
	ew.printf("Fig. 9 — operator response times (%s, n=%d)\n", label, r.N)
	ew.printf("  mean %.1f d, median %.1f d, p90 %.1f d, p99 %.1f d\n",
		r.MeanDays, r.MedianDays, r.P90Days, r.P99Days)
	ew.printf("  beyond 140 d: %.1f%%; beyond 200 d: %.1f%%\n",
		100*r.FracOver140, 100*r.FracOver200)
	return ew.err
}

// ResponseTimesByClass renders Fig. 10 as a sorted table.
func ResponseTimesByClass(w io.Writer, byClass map[fot.Component]*core.ResponseTimesResult) error {
	ew := &errWriter{w: w}
	ew.printf("Fig. 10 — response time by component class\n")
	comps := make([]fot.Component, 0, len(byClass))
	for c := range byClass {
		comps = append(comps, c)
	}
	slices.SortFunc(comps, func(a, b fot.Component) int {
		if ma, mb := byClass[a].MedianDays, byClass[b].MedianDays; ma != mb {
			if ma < mb {
				return -1
			}
			return 1
		}
		return int(a) - int(b)
	})
	ew.printf("  %-14s %8s %10s %10s\n", "device", "n", "median(d)", "mean(d)")
	for _, c := range comps {
		r := byClass[c]
		ew.printf("  %-14s %8d %10.2f %10.1f\n", c, r.N, r.MedianDays, r.MeanDays)
	}
	return ew.err
}

// ProductLineRT renders Fig. 11 and the §VI-C summary.
func ProductLineRT(w io.Writer, r *core.ProductLineRTResult, maxPoints int) error {
	ew := &errWriter{w: w}
	scope := "all components"
	if r.Component != 0 {
		scope = r.Component.String()
	}
	ew.printf("Fig. 11 — median RT vs #failures per product line (%s)\n", scope)
	if maxPoints > len(r.Points) || maxPoints <= 0 {
		maxPoints = len(r.Points)
	}
	for _, pt := range r.Points[:maxPoints] {
		ew.printf("  %-10s %6d failures, median RT %7.1f d\n", pt.Line, pt.Failures, pt.MedianRTDays)
	}
	ew.printf("  busiest 1%% of lines: pooled median RT %.1f d\n", r.Top1PctMedianDays)
	ew.printf("  lines with <100 failures and median RT >100 d: %.0f%%\n",
		100*r.SmallLineOver100dFraction)
	ew.printf("  std dev of per-line median RT: %.1f d\n", r.MedianStdDevDays)
	ew.printf("  Spearman(volume, median RT) = %+.2f — median RT does not grow with volume\n",
		r.VolumeRTCorrelation)
	return ew.err
}

// helpers -------------------------------------------------------------

type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...interface{}) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

func verdict(t stats.ChiSquareResult, alpha float64) string {
	if t.Reject(alpha) {
		return fmt.Sprintf("REJECTED at %.2g", alpha)
	}
	return fmt.Sprintf("not rejected at %.2g", alpha)
}

// bar renders a value as a proportional ASCII bar (scale = value per 20
// characters).
func bar(v, scale float64) string {
	n := int(v / scale * 20)
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}

func minMax(m map[string]float64) (lo, hi float64) {
	first := true
	for _, v := range m {
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// §VII-B mining extension ----------------------------------------------

// MiningRules renders the mined temporal association rules.
func MiningRules(w io.Writer, rules []mine.Rule, n int) error {
	ew := &errWriter{w: w}
	if n > len(rules) || n <= 0 {
		n = len(rules)
	}
	ew.printf("§VII-B — temporal association rules (%d mined, top %d)\n", len(rules), n)
	ew.printf("  %-28s %-28s %8s %10s %8s\n", "A", "B", "servers", "expected", "lift")
	for _, r := range rules[:n] {
		ew.printf("  %-28s %-28s %8d %10.2f %8.1f\n",
			r.A.String(), r.B.String(), r.Support, r.Expected, r.Lift)
	}
	return ew.err
}

// PredictorEval renders the warning-based failure predictor scorecard.
func PredictorEval(w io.Writer, e *mine.PredictorEval) error {
	ew := &errWriter{w: w}
	ew.printf("§VII-A — warning-based failure predictor (horizon %v)\n", e.Horizon)
	ew.printf("  warnings %d, fatal failures %d\n", e.Warnings, e.Fatals)
	ew.printf("  recall    %.1f%% of fatal failures had a prior warning on the same part\n", 100*e.Recall)
	ew.printf("  precision %.1f%% of warnings were followed by a fatal failure\n", 100*e.Precision)
	ew.printf("  median lead time %.1f hours\n", e.MedianLeadHours)
	return ew.err
}

// TicketContext renders one ticket's related-information report.
func TicketContext(w io.Writer, c *mine.Context) error {
	ew := &errWriter{w: w}
	t := c.Ticket
	ew.printf("ticket %d: %s/%s %s on host %d (%s, line %s) at %s\n",
		t.ID, t.Device, t.Slot, t.Type, t.HostID, t.IDC, t.ProductLine,
		t.Time.Format("2006-01-02 15:04:05"))
	ew.printf("  slot repeats: %d", c.SlotRepeats)
	if c.IsChronicSuspect() {
		ew.printf("  << CHRONIC SUSPECT — check for an upstream cause (e.g. BBU)")
	}
	ew.printf("\n")
	if c.LastSameFailure != nil {
		ew.printf("  last same failure: ticket %d at %s\n",
			c.LastSameFailure.ID, c.LastSameFailure.Time.Format("2006-01-02 15:04:05"))
	}
	ew.printf("  batch peers within ±%v: %d", c.BatchWindow, c.BatchPeers)
	if c.IsBatchSuspect() {
		ew.printf("  << BATCH SUSPECT — handle as a cohort")
	}
	ew.printf("\n")
	if len(c.TwinHosts) > 0 {
		ew.printf("  synchronized twins: hosts %v\n", c.TwinHosts)
	}
	ew.printf("  server history: %d earlier tickets\n", len(c.ServerHistory))
	return ew.err
}

// Hypotheses renders the five-hypothesis summary.
func Hypotheses(w io.Writer, r *core.HypothesesResult) error {
	ew := &errWriter{w: w}
	ew.printf("Hypotheses — the paper's five null hypotheses on this trace\n")
	for _, v := range r.Verdicts {
		status := "not rejected"
		if v.Rejected {
			status = "REJECTED"
		}
		ew.printf("  H%d (%s): %s at %.2g\n", v.ID, v.Scope, status, v.Alpha)
		ew.printf("      null: %s\n", v.Statement)
		if v.Test.DF > 0 {
			ew.printf("      test: %s\n", v.Test)
		}
		if v.Detail != "" {
			ew.printf("      %s\n", v.Detail)
		}
	}
	return ew.err
}

// Trend renders the year-over-year evolution.
func Trend(w io.Writer, r *core.TrendResult) error {
	ew := &errWriter{w: w}
	ew.printf("Trend — year-over-year evolution of the trace\n")
	ew.printf("  %-6s %9s %9s %12s %10s %10s %12s\n",
		"year", "tickets", "failures", "MTBF(min)", "servers", "D_error", "medRT(d)")
	for _, ys := range r.Years {
		ew.printf("  %-6d %9d %9d %12.1f %10d %9.1f%% %12.1f\n",
			ys.Year, ys.Tickets, ys.Failures, ys.MTBFMinutes,
			ys.FailedServers, 100*ys.ErrorShare, ys.MedianRTDays)
	}
	if r.FleetGrowth() {
		ew.printf("  failure volume grows with the incrementally deployed fleet\n")
	}
	return ew.err
}

// ChronicServers renders the repeat-heavy server ranking.
func ChronicServers(w io.Writer, servers []mine.ChronicServer) error {
	ew := &errWriter{w: w}
	ew.printf("§III-D — chronic servers (worst same-instance flappers)\n")
	ew.printf("  %-10s %9s %9s %-24s %10s\n", "host", "tickets", "repeats", "worst instance", "span(d)")
	for _, s := range servers {
		ew.printf("  %-10d %9d %9d %-24s %10.0f\n",
			s.HostID, s.Tickets, s.WorstSlotRepeats, s.WorstSlot,
			s.Span.Hours()/24)
	}
	return ew.err
}
