package report

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dcfail/internal/fot"
)

// TestFullByteIdenticalUnderInputShuffle locks in at runtime what the
// maporder lint rule guards statically: the full report is a pure
// function of the ticket *set*, not the order tickets arrived in. The
// same tickets are fed in three different orders (generator order,
// reversed, seeded shuffle) and every rendering must be byte-identical
// — exactly the property the live service relies on when archive tails
// and collector streams deliver tickets in whatever order the network
// produced.
func TestFullByteIdenticalUnderInputShuffle(t *testing.T) {
	r, census := fixture(t)
	base := r.Trace.Clone().Tickets

	reversed := make([]fot.Ticket, len(base))
	for i, tk := range base {
		reversed[len(base)-1-i] = tk
	}
	shuffled := make([]fot.Ticket, len(base))
	copy(shuffled, base)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	render := func(tickets []fot.Ticket, workers int) string {
		t.Helper()
		cp := make([]fot.Ticket, len(tickets))
		copy(cp, tickets)
		var buf bytes.Buffer
		if err := Full(&buf, fot.NewTraceIndex(fot.NewTrace(cp)), census, workers, nil); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	want := render(base, 1)
	if want == "" {
		t.Fatal("empty report")
	}
	// Worker counts cover the serial path, one-per-CPU (0), a mid fan-out
	// and heavy oversubscription (32 > sections is clamped by the runner)
	// on both hostile orderings: scheduling must never reach the bytes.
	cases := map[string]string{"shuffled input, 1 worker": render(shuffled, 1)}
	for _, workers := range []int{0, 1, 4, 32} {
		cases[fmt.Sprintf("reversed input, %d workers", workers)] = render(reversed, workers)
		cases[fmt.Sprintf("shuffled input, %d workers", workers)] = render(shuffled, workers)
	}
	for name, got := range cases {
		if got != want {
			t.Errorf("%s: report differs from generator-order rendering (len %d vs %d)", name, len(got), len(want))
			for i := 0; i < len(got) && i < len(want); i++ {
				if got[i] != want[i] {
					lo, hiG, hiW := max(0, i-80), min(len(got), i+80), min(len(want), i+80)
					t.Errorf("%s: first divergence at byte %d:\n got: %q\nwant: %q", name, i, got[lo:hiG], want[lo:hiW])
					break
				}
			}
		}
	}
}
