package report

import (
	"io"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
)

// mineSectionState composes the two analyses the "mine" section renders.
type mineSectionState struct {
	rules any
	pred  any
}

// StandardIncrementalSections returns the delta path of every standard
// section, in print order, with IDs matching StandardSections. Sections
// sharing an analysis (fig3/fig4 temporal counts, table4/fig8 rack maps)
// fold duplicate states; their renders stay consistent because the
// expensive ones share the index's per-epoch memo slots.
func StandardIncrementalSections(census *core.Census) []core.IncrementalSection {
	rc := core.NewRackCensus(census)
	rulesUpdate := mine.RulesUpdater(24 * time.Hour)
	predUpdate := mine.PredictorUpdater(10 * 24 * time.Hour)
	return []core.IncrementalSection{
		{ID: "verdicts", Update: core.HypothesesUpdater(rc),
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.HypothesesFromState(state, ix, rc)
				if err != nil {
					return err
				}
				return Hypotheses(w, r)
			}},
		{ID: "table1", Update: core.UpdateCategoryBreakdown,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.CategoryBreakdownFromState(state, ix)
				if err != nil {
					return err
				}
				return CategoryBreakdown(w, r)
			}},
		{ID: "table2", Update: core.UpdateComponentBreakdown,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.ComponentBreakdownFromState(state, ix)
				if err != nil {
					return err
				}
				return ComponentBreakdown(w, r)
			}},
		{ID: "fig2", Update: core.UpdateTypeBreakdown,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				for _, c := range []fot.Component{fot.HDD, fot.RAIDCard, fot.FlashCard, fot.Memory} {
					r, err := core.TypeBreakdownFromState(state, ix, c)
					if err != nil {
						return err
					}
					if err := TypeBreakdown(w, r); err != nil {
						return err
					}
				}
				return nil
			}},
		{ID: "fig3", Update: core.UpdateTemporal,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.DayOfWeekFromState(state, ix, 0)
				if err != nil {
					return err
				}
				return DayOfWeek(w, r)
			}},
		{ID: "fig4", Update: core.UpdateTemporal,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				for _, c := range []fot.Component{fot.HDD, fot.Misc} {
					r, err := core.HourOfDayFromState(state, ix, c)
					if err != nil {
						return err
					}
					if err := HourOfDay(w, r); err != nil {
						return err
					}
				}
				return nil
			}},
		{ID: "fig5", Update: core.TBFUpdater(0),
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.TBFFromState(state, ix, 0)
				if err != nil {
					return err
				}
				return TBF(w, r)
			}},
		{ID: "fig6", Update: core.UpdateLifecycle,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				for _, c := range []fot.Component{fot.HDD, fot.Memory, fot.RAIDCard, fot.FlashCard, fot.Misc} {
					r, err := core.LifecycleFromState(state, ix, census, c, 48)
					if err != nil {
						return err
					}
					if err := Lifecycle(w, r); err != nil {
						return err
					}
				}
				return nil
			}},
		{ID: "fig7", Update: core.UpdateServerSkew,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.ServerSkewFromState(state, ix)
				if err != nil {
					return err
				}
				return ServerSkew(w, r)
			}},
		{ID: "repeats", Update: core.UpdateRepeats,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.RepeatsFromState(state, ix)
				if err != nil {
					return err
				}
				return Repeats(w, r)
			}},
		{ID: "table4", Update: core.RackUpdater(rc),
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.RackAnalysisFromState(state, ix, rc)
				if err != nil {
					return err
				}
				return RackAnalysis(w, r)
			}},
		{ID: "fig8", Update: core.RackUpdater(rc),
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				for _, idc := range []string{"dc01", "dc02"} {
					r, err := core.RackPositionsFromState(state, ix, rc, idc)
					if err != nil {
						return err
					}
					if err := RackPositions(w, r); err != nil {
						return err
					}
				}
				return nil
			}},
		{ID: "table5", Update: core.BatchFrequencyUpdater(nil),
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.BatchFrequencyFromState(state, ix)
				if err != nil {
					return err
				}
				return BatchFrequency(w, r)
			}},
		{ID: "batches", Update: core.BatchWindowsUpdater(census, 30*time.Minute, 20),
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				eps, err := core.BatchWindowsFromState(state, ix, census, 30*time.Minute, 20)
				if err != nil {
					return err
				}
				return BatchEpisodes(w, eps, 10)
			}},
		{ID: "table6", Update: core.CorrelatedPairsUpdater(24 * time.Hour),
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.CorrelatedPairsFromState(state, ix, 24*time.Hour)
				if err != nil {
					return err
				}
				return CorrelatedPairs(w, r)
			}},
		{ID: "table8", Update: core.SyncRepeatUpdater(2 * time.Minute),
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				groups, err := core.SyncRepeatGroupsFromState(state, ix, 2*time.Minute, 3)
				if err != nil {
					return err
				}
				return SyncRepeatGroups(w, groups, 10)
			}},
		{ID: "fig9", Update: core.UpdateResponseTimes,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				for _, cat := range []fot.Category{fot.Fixing, fot.FalseAlarm} {
					r, err := core.ResponseTimesFromState(state, ix, cat)
					if err != nil {
						return err
					}
					if err := ResponseTimes(w, cat.String(), r); err != nil {
						return err
					}
				}
				return nil
			}},
		{ID: "fig10", Update: core.UpdateResponseTimesByClass,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.ResponseTimesByClassFromState(state, ix)
				if err != nil {
					return err
				}
				return ResponseTimesByClass(w, r)
			}},
		{ID: "fig11", Update: core.LineRTUpdater(fot.HDD),
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.ProductLineRTFromState(state, ix, fot.HDD)
				if err != nil {
					return err
				}
				return ProductLineRT(w, r, 15)
			}},
		{ID: "trend", Update: core.UpdateTrend,
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				r, err := core.TrendFromState(state, ix)
				if err != nil {
					return err
				}
				return Trend(w, r)
			}},
		{ID: "mine", Update: func(prev core.SectionState, ix *fot.TraceIndex, newRows []int32) (core.SectionState, error) {
			st, _ := prev.(*mineSectionState)
			var pr, pp any
			if st != nil {
				pr, pp = st.rules, st.pred
			}
			nr, err := rulesUpdate(pr, ix, newRows)
			if err != nil {
				return nil, err
			}
			np, err := predUpdate(pp, ix, newRows)
			if err != nil {
				return nil, err
			}
			if st != nil && nr == pr && np == pp {
				return prev, nil
			}
			return &mineSectionState{rules: nr, pred: np}, nil
		},
			RenderState: func(state core.SectionState, ix *fot.TraceIndex, w io.Writer) error {
				// nil only on an empty index; the sub-renders guard on ix.
				st, _ := state.(*mineSectionState)
				if st == nil {
					st = &mineSectionState{}
				}
				rules, err := mine.RulesFromState(st.rules, ix, 24*time.Hour, 3, 3.0)
				if err != nil {
					return err
				}
				if err := MiningRules(w, rules, 12); err != nil {
					return err
				}
				eval, err := mine.PredictorFromState(st.pred, ix, 10*24*time.Hour)
				if err != nil {
					return err
				}
				return PredictorEval(w, eval)
			}},
	}
}
