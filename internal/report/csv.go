package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"dcfail/internal/core"
	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// The CSV emitters write each figure's data series in a plot-ready form
// (one row per point), so the paper's plots can be regenerated with any
// charting tool. Each emitter mirrors one text renderer.

// writeCSV writes a header and rows, converting cells with strconv.
func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("report: csv header: %w", err)
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func itoa(v int) string     { return strconv.Itoa(v) }

// ComponentBreakdownCSV emits Table II as CSV.
func ComponentBreakdownCSV(w io.Writer, r *core.ComponentBreakdownResult) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Component.String(), itoa(row.Count), ftoa(row.Fraction)})
	}
	return writeCSV(w, []string{"device", "count", "fraction"}, rows)
}

// DayOfWeekCSV emits a Fig. 3 series as CSV.
func DayOfWeekCSV(w io.Writer, r *core.DayOfWeekResult) error {
	rows := make([][]string, 0, 7)
	for d := 0; d < 7; d++ {
		rows = append(rows, []string{dayNames[d], itoa(r.Counts[d]), ftoa(r.Fractions[d])})
	}
	return writeCSV(w, []string{"day", "count", "fraction"}, rows)
}

// HourOfDayCSV emits a Fig. 4 series as CSV.
func HourOfDayCSV(w io.Writer, r *core.HourOfDayResult) error {
	rows := make([][]string, 0, 24)
	for h := 0; h < 24; h++ {
		rows = append(rows, []string{itoa(h), itoa(r.Counts[h]), ftoa(r.Fractions[h])})
	}
	return writeCSV(w, []string{"hour", "count", "fraction"}, rows)
}

// TBFCDFCSV emits the Fig. 5 empirical CDF, with each fitted family's CDF
// evaluated at the same abscissae for overlay plotting.
func TBFCDFCSV(w io.Writer, r *core.TBFResult) error {
	header := []string{"tbf_minutes", "empirical_cdf"}
	var dists []stats.Dist
	for _, f := range r.Fits {
		if f.Err == nil {
			header = append(header, f.Dist.Name()+"_cdf")
			dists = append(dists, f.Dist)
		}
	}
	rows := make([][]string, 0, len(r.CDF))
	for _, pt := range r.CDF {
		row := []string{ftoa(pt.X), ftoa(pt.Y)}
		for _, d := range dists {
			row = append(row, ftoa(d.CDF(pt.X)))
		}
		rows = append(rows, row)
	}
	return writeCSV(w, header, rows)
}

// LifecycleCSV emits a Fig. 6 series as CSV.
func LifecycleCSV(w io.Writer, r *core.LifecycleResult) error {
	rows := make([][]string, 0, len(r.Rates))
	for m := range r.Rates {
		rows = append(rows, []string{
			itoa(m), itoa(r.Counts[m]), ftoa(r.Exposure[m]),
			ftoa(r.Rates[m]), ftoa(r.Normalized[m]),
		})
	}
	return writeCSV(w, []string{"month_in_service", "failures", "component_months", "rate", "normalized"}, rows)
}

// ServerSkewCSV emits the Fig. 7 CDF as CSV.
func ServerSkewCSV(w io.Writer, r *core.ServerSkewResult) error {
	rows := make([][]string, 0, len(r.CDF))
	for _, pt := range r.CDF {
		rows = append(rows, []string{ftoa(pt.X), ftoa(pt.Y)})
	}
	return writeCSV(w, []string{"failed_server_fraction", "failure_share"}, rows)
}

// RackPositionsCSV emits a Fig. 8 series as CSV.
func RackPositionsCSV(w io.Writer, r *core.RackPositionResult) error {
	anomalous := make(map[int]bool, len(r.Anomalies))
	for _, p := range r.Anomalies {
		anomalous[p] = true
	}
	rows := make([][]string, 0, r.Positions)
	for p := 1; p <= r.Positions; p++ {
		if r.Occupancy[p] == 0 {
			continue
		}
		rows = append(rows, []string{
			itoa(p), itoa(r.Failures[p]), itoa(r.Occupancy[p]),
			ftoa(r.Ratio[p]), strconv.FormatBool(anomalous[p]),
		})
	}
	return writeCSV(w, []string{"position", "failed_servers", "servers", "ratio", "anomaly"}, rows)
}

// ResponseCDFCSV emits a Fig. 9 RT CDF as CSV.
func ResponseCDFCSV(w io.Writer, r *core.ResponseTimesResult) error {
	rows := make([][]string, 0, len(r.CDF))
	for _, pt := range r.CDF {
		rows = append(rows, []string{ftoa(pt.X), ftoa(pt.Y)})
	}
	return writeCSV(w, []string{"response_days", "cdf"}, rows)
}

// ProductLineRTCSV emits the Fig. 11 scatter as CSV.
func ProductLineRTCSV(w io.Writer, r *core.ProductLineRTResult) error {
	rows := make([][]string, 0, len(r.Points))
	for _, pt := range r.Points {
		rows = append(rows, []string{pt.Line, itoa(pt.Failures), ftoa(pt.MedianRTDays)})
	}
	return writeCSV(w, []string{"product_line", "failures", "median_rt_days"}, rows)
}

// BatchFrequencyCSV emits Table V as CSV.
func BatchFrequencyCSV(w io.Writer, r *core.BatchFrequencyResult) error {
	header := []string{"device"}
	for _, th := range r.Thresholds {
		header = append(header, "r"+itoa(th))
	}
	header = append(header, "max_daily")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Component.String()}
		for _, th := range r.Thresholds {
			cells = append(cells, ftoa(row.R[th]))
		}
		cells = append(cells, itoa(row.MaxDaily))
		rows = append(rows, cells)
	}
	return writeCSV(w, header, rows)
}

// typeBreakdownCSVHeader keeps Fig. 2 export uniform across classes.
var typeBreakdownCSVHeader = []string{"device", "type", "count", "fraction"}

// TypeBreakdownCSV emits a Fig. 2 subfigure as CSV.
func TypeBreakdownCSV(w io.Writer, r *core.TypeBreakdownResult) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			r.Component.String(), row.Type, itoa(row.Count), ftoa(row.Fraction),
		})
	}
	return writeCSV(w, typeBreakdownCSVHeader, rows)
}

// FigureCSVs writes every figure's data series into a map of
// filename → CSV bytes rendered through the given trace analyses. It is
// the bulk-export entry point used by `fotreport -csvdir`.
func FigureCSVs(trace *fot.Trace, census *core.Census, write func(name string, render func(io.Writer) error) error) error {
	table2, err := core.ComponentBreakdown(trace)
	if err != nil {
		return err
	}
	if err := write("table2_components.csv", func(w io.Writer) error {
		return ComponentBreakdownCSV(w, table2)
	}); err != nil {
		return err
	}

	for _, c := range []fot.Component{fot.HDD, fot.RAIDCard, fot.FlashCard, fot.Memory} {
		tb, err := core.TypeBreakdown(trace, c)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig2_types_%s.csv", c)
		if err := write(name, func(w io.Writer) error { return TypeBreakdownCSV(w, tb) }); err != nil {
			return err
		}
	}

	dow, err := core.DayOfWeek(trace, 0)
	if err != nil {
		return err
	}
	if err := write("fig3_weekday.csv", func(w io.Writer) error { return DayOfWeekCSV(w, dow) }); err != nil {
		return err
	}

	hod, err := core.HourOfDay(trace, 0)
	if err != nil {
		return err
	}
	if err := write("fig4_hourly.csv", func(w io.Writer) error { return HourOfDayCSV(w, hod) }); err != nil {
		return err
	}

	tbf, err := core.TBFAnalysis(trace, 0)
	if err != nil {
		return err
	}
	if err := write("fig5_tbf_cdf.csv", func(w io.Writer) error { return TBFCDFCSV(w, tbf) }); err != nil {
		return err
	}

	for _, c := range []fot.Component{fot.HDD, fot.Memory, fot.RAIDCard, fot.FlashCard, fot.Misc} {
		lc, err := core.LifecycleRates(trace, census, c, 48)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig6_lifecycle_%s.csv", c)
		if err := write(name, func(w io.Writer) error { return LifecycleCSV(w, lc) }); err != nil {
			return err
		}
	}

	skew, err := core.ServerSkew(trace)
	if err != nil {
		return err
	}
	if err := write("fig7_skew_cdf.csv", func(w io.Writer) error { return ServerSkewCSV(w, skew) }); err != nil {
		return err
	}

	for _, idc := range []string{"dc01", "dc02"} {
		rp, err := core.RackPositions(trace, census, idc)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig8_rack_%s.csv", idc)
		if err := write(name, func(w io.Writer) error { return RackPositionsCSV(w, rp) }); err != nil {
			return err
		}
	}

	bf, err := core.BatchFrequency(trace, nil)
	if err != nil {
		return err
	}
	if err := write("table5_batch_frequency.csv", func(w io.Writer) error { return BatchFrequencyCSV(w, bf) }); err != nil {
		return err
	}

	for _, cat := range []fot.Category{fot.Fixing, fot.FalseAlarm} {
		rt, err := core.ResponseTimes(trace, cat)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig9_rt_cdf_%s.csv", cat)
		if err := write(name, func(w io.Writer) error { return ResponseCDFCSV(w, rt) }); err != nil {
			return err
		}
	}

	plrt, err := core.ProductLineRT(trace, fot.HDD)
	if err != nil {
		return err
	}
	return write("fig11_line_rt.csv", func(w io.Writer) error { return ProductLineRTCSV(w, plrt) })
}
