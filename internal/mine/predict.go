package mine

import (
	"fmt"
	"slices"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// PredictorEval measures the warning-based failure predictor of paper
// §VII-A ("a tool to predict component failures a couple of days early"):
// a predictive warning ticket (SMARTFail, DIMMCE, ...) on a component
// instance predicts a fatal failure of that same instance within the
// horizon.
type PredictorEval struct {
	Horizon time.Duration
	// Warnings and Fatals are the populations considered.
	Warnings int
	Fatals   int
	// PredictedFatals is the number of fatal failures preceded by a
	// warning on the same (host, device, slot) within the horizon.
	PredictedFatals int
	// UsefulWarnings is the number of warnings followed by such a fatal
	// failure.
	UsefulWarnings int
	// Recall = PredictedFatals / Fatals; Precision = UsefulWarnings /
	// Warnings.
	Recall    float64
	Precision float64
	// MedianLeadHours is the median warning→fatal lead time among
	// predicted fatals (paper: "a couple of days").
	MedianLeadHours float64
}

// PredictorPopulation is one host's lifetime predictor-eligible ticket
// populations: failure-category rows on non-Misc devices, split by the
// fatal-type verdict. It is the consistency surface between this batch
// evaluation and the streaming predictor (internal/predict): on a frozen
// trace both must produce identical per-host populations.
type PredictorPopulation struct {
	Warnings int
	Fatals   int
}

// WarningFatalPopulations classifies every predictor-eligible ticket
// with the exact §VII-A rule EvaluateWarningPredictorIndexed uses and
// returns the per-host populations. Hosts with no eligible tickets are
// absent from the map.
func WarningFatalPopulations(ix *fot.TraceIndex) map[uint64]PredictorPopulation {
	out := make(map[uint64]PredictorPopulation)
	if ix == nil || ix.Len() == 0 {
		return out
	}
	cols := ix.Cols()
	fatalByCode := make(map[uint64]bool)
	for _, r := range ix.FailureRows() {
		dev := fot.Component(cols.Device[r])
		if dev == fot.Misc {
			continue // manual reports are not detector output
		}
		code := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
		fatal, ok := fatalByCode[code]
		if !ok {
			fatal = fot.IsFatalType(dev, cols.TypeName(cols.TypeSym[r]))
			fatalByCode[code] = fatal
		}
		p := out[cols.Host[r]]
		if fatal {
			p.Fatals++
		} else {
			p.Warnings++
		}
		out[cols.Host[r]] = p
	}
	return out
}

// EvaluateWarningPredictor replays the trace and scores the predictor.
// False alarms are excluded; both D_fixing and D_error tickets count
// (a prediction is useful either way).
func EvaluateWarningPredictor(tr *fot.Trace, horizon time.Duration) (*PredictorEval, error) {
	return EvaluateWarningPredictorIndexed(fot.BorrowTraceIndex(tr), horizon)
}

// EvaluateWarningPredictorIndexed is EvaluateWarningPredictor over a
// shared TraceIndex. The failure rows arrive time-ordered, so the
// per-slot warning and fatal timestamp lists come out pre-sorted — no
// per-slot sort pass — and the fatal-type verdict is cached per
// (device, type-symbol) code.
func EvaluateWarningPredictorIndexed(ix *fot.TraceIndex, horizon time.Duration) (*PredictorEval, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, fmt.Errorf("mine: empty trace")
	}
	if horizon <= 0 {
		horizon = 10 * 24 * time.Hour
	}
	fail := ix.FailureRows()
	cols := ix.Cols()

	// Pass 1: map each eligible row to a dense slot index and count the
	// per-slot warning/fatal populations. Two counting-sort passes beat a
	// map of per-slot pointer lists: one backing array per side instead
	// of two grown slices per component instance.
	type instKey struct {
		host uint64
		dev  uint8
		slot uint32
	}
	fatalByCode := make(map[uint64]bool)
	slotIdx := make(map[instKey]int32)
	rowSlot := make([]int32, 0, len(fail)) // dense slot per eligible row
	rowFatal := make([]bool, 0, len(fail))
	var warnN, fatalN []int32
	eval := &PredictorEval{Horizon: horizon}
	for _, r := range fail {
		dev := fot.Component(cols.Device[r])
		if dev == fot.Misc {
			continue // manual reports are not detector output
		}
		sk := instKey{cols.Host[r], cols.Device[r], cols.SlotSym[r]}
		si, ok := slotIdx[sk]
		if !ok {
			si = int32(len(warnN))
			slotIdx[sk] = si
			warnN = append(warnN, 0)
			fatalN = append(fatalN, 0)
		}
		code := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
		fatal, ok := fatalByCode[code]
		if !ok {
			fatal = fot.IsFatalType(dev, cols.TypeName(cols.TypeSym[r]))
			fatalByCode[code] = fatal
		}
		rowSlot = append(rowSlot, si)
		rowFatal = append(rowFatal, fatal)
		if fatal {
			fatalN[si]++
			eval.Fatals++
		} else {
			warnN[si]++
			eval.Warnings++
		}
	}
	if eval.Fatals == 0 || eval.Warnings == 0 {
		return nil, fmt.Errorf("mine: trace has no %s to evaluate",
			map[bool]string{true: "warnings", false: "fatal failures"}[eval.Fatals > 0])
	}

	// Pass 2: partition the timestamps into per-slot sub-slices. The rows
	// were visited in time order, so every sub-slice comes out sorted.
	nSlots := len(warnN)
	warnOff := make([]int32, nSlots+1)
	fatalOff := make([]int32, nSlots+1)
	for s := 0; s < nSlots; s++ {
		warnOff[s+1] = warnOff[s] + warnN[s]
		fatalOff[s+1] = fatalOff[s] + fatalN[s]
	}
	warnTimes := make([]int64, eval.Warnings)
	fatalTimes := make([]int64, eval.Fatals)
	warnFill := make([]int32, nSlots)
	fatalFill := make([]int32, nSlots)
	copy(warnFill, warnOff[:nSlots])
	copy(fatalFill, fatalOff[:nSlots])
	ei := 0
	for _, r := range fail {
		if fot.Component(cols.Device[r]) == fot.Misc {
			continue
		}
		si := rowSlot[ei]
		if rowFatal[ei] {
			fatalTimes[fatalFill[si]] = cols.TimeNS[r]
			fatalFill[si]++
		} else {
			warnTimes[warnFill[si]] = cols.TimeNS[r]
			warnFill[si]++
		}
		ei++
	}

	horizonNS := int64(horizon)
	var leads []float64
	for s := 0; s < nSlots; s++ {
		warnings := warnTimes[warnOff[s]:warnOff[s+1]]
		fatals := fatalTimes[fatalOff[s]:fatalOff[s+1]]
		// Recall side: each fatal, was there a warning in [f-h, f)?
		for _, f := range fatals {
			i, _ := slices.BinarySearch(warnings, f-horizonNS)
			if i < len(warnings) && warnings[i] < f {
				eval.PredictedFatals++
				// Lead time from the earliest in-horizon warning.
				leads = append(leads, time.Duration(f-warnings[i]).Hours())
			}
		}
		// Precision side: each warning, does a fatal follow in (w, w+h]?
		for _, w := range warnings {
			i, _ := slices.BinarySearch(fatals, w+1)
			if i < len(fatals) && fatals[i] <= w+horizonNS {
				eval.UsefulWarnings++
			}
		}
	}
	eval.Recall = float64(eval.PredictedFatals) / float64(eval.Fatals)
	eval.Precision = float64(eval.UsefulWarnings) / float64(eval.Warnings)
	if len(leads) > 0 {
		eval.MedianLeadHours = stats.Median(leads)
	}
	return eval, nil
}
