package mine

import (
	"fmt"
	"sort"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// PredictorEval measures the warning-based failure predictor of paper
// §VII-A ("a tool to predict component failures a couple of days early"):
// a predictive warning ticket (SMARTFail, DIMMCE, ...) on a component
// instance predicts a fatal failure of that same instance within the
// horizon.
type PredictorEval struct {
	Horizon time.Duration
	// Warnings and Fatals are the populations considered.
	Warnings int
	Fatals   int
	// PredictedFatals is the number of fatal failures preceded by a
	// warning on the same (host, device, slot) within the horizon.
	PredictedFatals int
	// UsefulWarnings is the number of warnings followed by such a fatal
	// failure.
	UsefulWarnings int
	// Recall = PredictedFatals / Fatals; Precision = UsefulWarnings /
	// Warnings.
	Recall    float64
	Precision float64
	// MedianLeadHours is the median warning→fatal lead time among
	// predicted fatals (paper: "a couple of days").
	MedianLeadHours float64
}

// EvaluateWarningPredictor replays the trace and scores the predictor.
// False alarms are excluded; both D_fixing and D_error tickets count
// (a prediction is useful either way).
func EvaluateWarningPredictor(tr *fot.Trace, horizon time.Duration) (*PredictorEval, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("mine: empty trace")
	}
	if horizon <= 0 {
		horizon = 10 * 24 * time.Hour
	}
	failures := tr.Failures()

	// Per component instance, the time-ordered warning and fatal lists.
	type lists struct {
		warnings []time.Time
		fatals   []time.Time
	}
	perSlot := make(map[slotKey]*lists)
	eval := &PredictorEval{Horizon: horizon}
	for _, t := range failures.Tickets {
		if t.Device == fot.Misc {
			continue // manual reports are not detector output
		}
		sk := slotKey{t.HostID, t.Device, t.Slot}
		l := perSlot[sk]
		if l == nil {
			l = &lists{}
			perSlot[sk] = l
		}
		if fot.IsFatalType(t.Device, t.Type) {
			l.fatals = append(l.fatals, t.Time)
			eval.Fatals++
		} else {
			l.warnings = append(l.warnings, t.Time)
			eval.Warnings++
		}
	}
	if eval.Fatals == 0 || eval.Warnings == 0 {
		return nil, fmt.Errorf("mine: trace has no %s to evaluate",
			map[bool]string{true: "warnings", false: "fatal failures"}[eval.Fatals > 0])
	}

	var leads []float64
	for _, l := range perSlot {
		sort.Slice(l.warnings, func(i, j int) bool { return l.warnings[i].Before(l.warnings[j]) })
		sort.Slice(l.fatals, func(i, j int) bool { return l.fatals[i].Before(l.fatals[j]) })
		// Recall side: each fatal, was there a warning in [f-h, f)?
		for _, f := range l.fatals {
			i := sort.Search(len(l.warnings), func(i int) bool {
				return !l.warnings[i].Before(f.Add(-horizon))
			})
			if i < len(l.warnings) && l.warnings[i].Before(f) {
				eval.PredictedFatals++
				// Lead time from the earliest in-horizon warning.
				//lint:ignore maporder leads only feeds stats.Median, which copies and sorts before selecting: slot iteration order cannot reach the output
				leads = append(leads, f.Sub(l.warnings[i]).Hours())
			}
		}
		// Precision side: each warning, does a fatal follow in (w, w+h]?
		for _, w := range l.warnings {
			i := sort.Search(len(l.fatals), func(i int) bool {
				return l.fatals[i].After(w)
			})
			if i < len(l.fatals) && !l.fatals[i].After(w.Add(horizon)) {
				eval.UsefulWarnings++
			}
		}
	}
	eval.Recall = float64(eval.PredictedFatals) / float64(eval.Fatals)
	eval.Precision = float64(eval.UsefulWarnings) / float64(eval.Warnings)
	if len(leads) > 0 {
		eval.MedianLeadHours = stats.Median(leads)
	}
	return eval, nil
}
