package mine

import (
	"testing"
	"time"

	"dcfail/internal/fot"
)

func streamTicket(id, host uint64, typ string, at time.Time) fot.Ticket {
	return fot.Ticket{
		ID: id, HostID: host, Device: fot.HDD, Slot: "sda", Type: typ,
		Time: at, Category: fot.Fixing,
	}
}

func TestBatchDetectorFiresOncePerEpisode(t *testing.T) {
	d := NewBatchDetector(time.Hour, 5)
	base := time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC)
	var alerts []BatchAlert
	id := uint64(1)
	// 8 distinct servers in 10 minutes: one alert at the 5th.
	for i := 0; i < 8; i++ {
		tk := streamTicket(id, uint64(100+i), "SMARTFail", base.Add(time.Duration(i)*time.Minute))
		id++
		if a := d.Observe(tk); a != nil {
			alerts = append(alerts, *a)
		}
	}
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want 1", len(alerts))
	}
	if alerts[0].Count != 5 {
		t.Errorf("alert at count %d, want 5", alerts[0].Count)
	}
	// Quiet period drains the window; a second burst re-fires.
	base = base.Add(3 * time.Hour)
	for i := 0; i < 6; i++ {
		tk := streamTicket(id, uint64(200+i), "SMARTFail", base.Add(time.Duration(i)*time.Minute))
		id++
		if a := d.Observe(tk); a != nil {
			alerts = append(alerts, *a)
		}
	}
	if len(alerts) != 2 {
		t.Fatalf("second episode not re-armed: %d alerts", len(alerts))
	}
}

func TestBatchDetectorDistinctServers(t *testing.T) {
	d := NewBatchDetector(time.Hour, 5)
	base := time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC)
	// One flapping server never triggers a batch alert.
	for i := 0; i < 50; i++ {
		tk := streamTicket(uint64(i+1), 7, "SMARTFail", base.Add(time.Duration(i)*time.Minute))
		if a := d.Observe(tk); a != nil {
			t.Fatalf("single-server flapping raised a batch alert: %v", a)
		}
	}
}

func TestBatchDetectorKindIsolation(t *testing.T) {
	d := NewBatchDetector(time.Hour, 5)
	base := time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC)
	// Four servers each of two types: neither crosses the threshold.
	for i := 0; i < 4; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		if a := d.Observe(streamTicket(uint64(i*2+1), uint64(100+i), "SMARTFail", at)); a != nil {
			t.Fatal("premature alert")
		}
		if a := d.Observe(streamTicket(uint64(i*2+2), uint64(200+i), "NotReady", at)); a != nil {
			t.Fatal("premature alert")
		}
	}
}

func TestBatchDetectorIgnoresFalseAlarms(t *testing.T) {
	d := NewBatchDetector(time.Hour, 2)
	base := time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		tk := streamTicket(uint64(i+1), uint64(100+i), "SMARTFail", base)
		tk.Category = fot.FalseAlarm
		if a := d.Observe(tk); a != nil {
			t.Fatal("false alarms should not count towards batches")
		}
	}
}

func TestBatchDetectorReplayOnTrace(t *testing.T) {
	r := fixture(t)
	alerts := NewBatchDetector(3*time.Hour, 15).Replay(r.Trace)
	if len(alerts) == 0 {
		t.Fatal("no alerts on a trace full of injected batches")
	}
	hddAlerts := 0
	for _, a := range alerts {
		if a.Device == fot.HDD {
			hddAlerts++
		}
		if a.Count < 15 {
			t.Fatalf("alert below threshold: %+v", a)
		}
	}
	if hddAlerts == 0 {
		t.Error("no HDD batch alerts despite the epidemic injector")
	}
	t.Logf("replay raised %d alerts (%d HDD)", len(alerts), hddAlerts)
	if s := alerts[0].String(); s == "" {
		t.Error("empty alert string")
	}
}

func TestBatchDetectorDefaults(t *testing.T) {
	d := NewBatchDetector(0, 0)
	if d.window != 3*time.Hour || d.threshold != 20 {
		t.Errorf("defaults = %v/%d", d.window, d.threshold)
	}
}
