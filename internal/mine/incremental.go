package mine

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/stats"
)

// rowEv is one failure ticket in a host's sliding pairing window.
type rowEv struct {
	t    int64
	item uint64
}

// rulesState carries MineRules across epochs: per-host item counts for
// the chance baseline, the per-host tail of rows still inside the pairing
// window, and the set of supporting hosts per item pair. Expected support
// is NOT carried — it depends on the study span, which moves every epoch,
// so the render recomputes it from the counts.
type rulesState struct {
	hostItems map[uint64]map[uint64]int
	recent    map[uint64][]rowEv
	pairHosts map[[2]uint64]map[uint64]struct{}
}

func newRulesState() *rulesState {
	return &rulesState{
		hostItems: make(map[uint64]map[uint64]int),
		recent:    make(map[uint64][]rowEv),
		pairHosts: make(map[[2]uint64]map[uint64]struct{}),
	}
}

// RulesUpdater returns the fold function of the mining section for the
// given window (<= 0 = 24h, as MineRulesIndexed normalizes).
func RulesUpdater(window time.Duration) func(any, *fot.TraceIndex, []int32) (any, error) {
	if window <= 0 {
		window = 24 * time.Hour
	}
	windowNS := int64(window)
	return func(prev any, ix *fot.TraceIndex, newRows []int32) (any, error) {
		return updateRules(prev, ix, newRows, windowNS)
	}
}

func updateRules(prev any, ix *fot.TraceIndex, newRows []int32, windowNS int64) (any, error) {
	st, _ := prev.(*rulesState)
	cols := ix.Cols()
	// Canonical pair orientation: device, then type NAME — the same
	// relation the full path's symbol ranks encode. Name order is stable
	// as the symtab grows, so keys canonicalized at fold time stay valid.
	less := func(a, b uint64) bool {
		if da, db := a>>32, b>>32; da != db {
			return da < db
		}
		return strings.Compare(cols.TypeName(uint32(a)), cols.TypeName(uint32(b))) < 0
	}
	var next *rulesState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		if next == nil {
			if st != nil {
				next = &rulesState{hostItems: st.hostItems, recent: st.recent, pairHosts: st.pairHosts}
			} else {
				next = newRulesState()
			}
		}
		host := cols.Host[r]
		item := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
		t := cols.TimeNS[r]
		hc := next.hostItems[host]
		if hc == nil {
			hc = make(map[uint64]int)
			next.hostItems[host] = hc
		}
		hc[item]++
		rec := next.recent[host]
		// Rows older than the window can never pair with this row or any
		// later one (time only moves forward), so drop the stale prefix.
		lo := 0
		for lo < len(rec) && t-rec[lo].t > windowNS {
			lo++
		}
		rec = rec[lo:]
		for _, ev := range rec {
			if ev.item == item {
				continue
			}
			key := [2]uint64{ev.item, item}
			if less(item, ev.item) {
				key = [2]uint64{item, ev.item}
			}
			hs := next.pairHosts[key]
			if hs == nil {
				hs = make(map[uint64]struct{})
				next.pairHosts[key] = hs
			}
			hs[host] = struct{}{}
		}
		next.recent[host] = append(rec, rowEv{t, item})
	}
	if next == nil {
		if st == nil {
			return newRulesState(), nil
		}
		return prev, nil
	}
	return next, nil
}

// RulesFromState renders the mined rules from carried state,
// byte-identical to MineRulesIndexed with the same parameters. The
// expected-support sum runs per pair in ascending host order — the same
// accumulation order as the full path's host-group loop.
func RulesFromState(state any, ix *fot.TraceIndex, window time.Duration, minSupport int, minLift float64) ([]Rule, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, fmt.Errorf("mine: empty trace")
	}
	if window <= 0 {
		window = 24 * time.Hour
	}
	if minSupport < 1 {
		minSupport = 1
	}
	fail := ix.FailureRows()
	cols := ix.Cols()
	if len(fail) == 0 {
		return nil, fmt.Errorf("mine: no failed servers")
	}
	loNS, hiNS := cols.TimeNS[fail[0]], cols.TimeNS[fail[len(fail)-1]]
	if hiNS <= loNS {
		return nil, fmt.Errorf("mine: no failed servers")
	}
	chancePerPair := 2 * window.Hours() / time.Duration(hiNS-loNS).Hours()
	st := state.(*rulesState)

	rank := make([]int32, cols.TypeCount())
	order := make([]uint32, cols.TypeCount())
	for i := range order {
		order[i] = uint32(i)
	}
	slices.SortFunc(order, func(a, b uint32) int {
		return strings.Compare(cols.TypeName(a), cols.TypeName(b))
	})
	for r, sym := range order {
		rank[sym] = int32(r)
	}
	itemLess := func(a, b uint64) bool {
		if da, db := a>>32, b>>32; da != db {
			return da < db
		}
		return rank[uint32(a)] < rank[uint32(b)]
	}

	// Only hosts with at least two distinct items can produce a pair;
	// skipping the rest before the sort leaves every expected[] sum with
	// exactly the same terms in the same host order.
	hosts := make([]uint64, 0, len(st.hostItems))
	for h, counts := range st.hostItems {
		if len(counts) >= 2 {
			hosts = append(hosts, h)
		}
	}
	slices.Sort(hosts)
	expected := make(map[[2]uint64]float64)
	var items []uint64
	for _, host := range hosts {
		counts := st.hostItems[host]
		items = items[:0]
		for it := range counts {
			items = append(items, it)
		}
		slices.SortFunc(items, func(a, b uint64) int {
			if itemLess(a, b) {
				return -1
			} else if itemLess(b, a) {
				return 1
			}
			return 0
		})
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				p := chancePerPair * float64(counts[items[i]]*counts[items[j]])
				if p > 1 {
					p = 1
				}
				expected[[2]uint64{items[i], items[j]}] += p
			}
		}
	}

	itemOf := func(code uint64) Item {
		return Item{fot.Component(code >> 32), cols.TypeName(uint32(code))}
	}
	var rules []Rule
	for key, hs := range st.pairHosts {
		support := len(hs)
		if support < minSupport {
			continue
		}
		exp := expected[key]
		e := exp
		if e < 1e-9 {
			e = 1e-9
		}
		lift := float64(support) / e
		if lift < minLift {
			continue
		}
		rules = append(rules, Rule{
			A: itemOf(key[0]), B: itemOf(key[1]),
			Support: support, Expected: exp, Lift: lift,
		})
	}
	slices.SortFunc(rules, func(a, b Rule) int {
		if a.Support != b.Support {
			return b.Support - a.Support
		}
		if a.Lift != b.Lift {
			if a.Lift > b.Lift {
				return -1
			}
			return 1
		}
		return strings.Compare(a.A.String()+a.B.String(), b.A.String()+b.B.String())
	})
	return rules, nil
}

// predSlotKey identifies one component instance for the predictor.
type predSlotKey struct {
	host uint64
	dev  uint8
	slot uint32
}

// predictorState carries the warning-predictor scores across epochs.
// Rows arrive in time order, so each verdict is final the moment its row
// folds: a fatal's in-horizon warning lookup sees every warning that can
// ever precede it, and a warning stays "pending" until a fatal lands in
// its forward horizon or time moves past it.
type predictorState struct {
	slotIdx     map[predSlotKey]int32
	warns       [][]int64 // per slot, all warning times, sorted
	pending     [][]int64 // per slot, warnings awaiting a fatal, sorted
	fatalByCode map[uint64]bool
	warnings    int
	fatals      int
	predicted   int
	useful      int
	leads       []float64
}

func newPredictorState() *predictorState {
	return &predictorState{
		slotIdx:     make(map[predSlotKey]int32),
		fatalByCode: make(map[uint64]bool),
	}
}

// PredictorUpdater returns the fold function of the warning predictor for
// the given horizon (<= 0 = 10 days, as the full path normalizes).
func PredictorUpdater(horizon time.Duration) func(any, *fot.TraceIndex, []int32) (any, error) {
	if horizon <= 0 {
		horizon = 10 * 24 * time.Hour
	}
	horizonNS := int64(horizon)
	return func(prev any, ix *fot.TraceIndex, newRows []int32) (any, error) {
		return updatePredictor(prev, ix, newRows, horizonNS)
	}
}

func updatePredictor(prev any, ix *fot.TraceIndex, newRows []int32, horizonNS int64) (any, error) {
	st, _ := prev.(*predictorState)
	cols := ix.Cols()
	var next *predictorState
	for _, r := range newRows {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		dev := fot.Component(cols.Device[r])
		if dev == fot.Misc {
			continue // manual reports are not detector output
		}
		if next == nil {
			if st != nil {
				next = &predictorState{}
				*next = *st // containers absorbed: prev handed off
			} else {
				next = newPredictorState()
			}
		}
		sk := predSlotKey{cols.Host[r], cols.Device[r], cols.SlotSym[r]}
		si, ok := next.slotIdx[sk]
		if !ok {
			si = int32(len(next.warns))
			next.slotIdx[sk] = si
			next.warns = append(next.warns, nil)
			next.pending = append(next.pending, nil)
		}
		code := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
		fatal, ok := next.fatalByCode[code]
		if !ok {
			fatal = fot.IsFatalType(dev, cols.TypeName(cols.TypeSym[r]))
			next.fatalByCode[code] = fatal
		}
		t := cols.TimeNS[r]
		if !fatal {
			next.warnings++
			next.warns[si] = append(next.warns[si], t)
			next.pending[si] = append(next.pending[si], t)
			continue
		}
		next.fatals++
		ws := next.warns[si]
		if i, _ := slices.BinarySearch(ws, t-horizonNS); i < len(ws) && ws[i] < t {
			next.predicted++
			next.leads = append(next.leads, time.Duration(t-ws[i]).Hours())
		}
		// Pending warnings in [t-h, t) are now useful; anything older can
		// never be reached by a later fatal. Both are prefixes of the
		// sorted pending list.
		pd := next.pending[si]
		lo, _ := slices.BinarySearch(pd, t-horizonNS)
		hi, _ := slices.BinarySearch(pd, t)
		next.useful += hi - lo
		next.pending[si] = pd[hi:]
	}
	if next == nil {
		if st == nil {
			return newPredictorState(), nil
		}
		return prev, nil
	}
	return next, nil
}

// PredictorFromState renders the predictor scores from carried state,
// byte-identical to EvaluateWarningPredictorIndexed with the same
// horizon. Leads accumulate in fatal time order rather than slot order;
// the median is order-independent.
func PredictorFromState(state any, ix *fot.TraceIndex, horizon time.Duration) (*PredictorEval, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, fmt.Errorf("mine: empty trace")
	}
	if horizon <= 0 {
		horizon = 10 * 24 * time.Hour
	}
	st := state.(*predictorState)
	eval := &PredictorEval{
		Horizon:         horizon,
		Warnings:        st.warnings,
		Fatals:          st.fatals,
		PredictedFatals: st.predicted,
		UsefulWarnings:  st.useful,
	}
	if eval.Fatals == 0 || eval.Warnings == 0 {
		return nil, fmt.Errorf("mine: trace has no %s to evaluate",
			map[bool]string{true: "warnings", false: "fatal failures"}[eval.Fatals > 0])
	}
	eval.Recall = float64(eval.PredictedFatals) / float64(eval.Fatals)
	eval.Precision = float64(eval.UsefulWarnings) / float64(eval.Warnings)
	if len(st.leads) > 0 {
		eval.MedianLeadHours = stats.Median(st.leads)
	}
	return eval, nil
}
