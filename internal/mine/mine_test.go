package mine

import (
	"sync"
	"testing"
	"time"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
)

var (
	once sync.Once
	res  *fms.Result
	gerr error
)

func fixture(t *testing.T) *fms.Result {
	t.Helper()
	once.Do(func() {
		res, gerr = fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 555)
	})
	if gerr != nil {
		t.Fatal(gerr)
	}
	return res
}

func TestNewIndexRejectsEmpty(t *testing.T) {
	if _, err := NewIndex(nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewIndex(fot.NewTrace(nil)); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestContextualizeChronicServer(t *testing.T) {
	r := fixture(t)
	ix, err := NewIndex(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	// Find the chronic BBU server: the host with the most tickets.
	counts := map[uint64]int{}
	var chronicHost uint64
	for _, tk := range r.Trace.Tickets {
		counts[tk.HostID]++
		if counts[tk.HostID] > counts[chronicHost] {
			chronicHost = tk.HostID
		}
	}
	// Take its last RAID ticket and contextualize it.
	var last fot.Ticket
	for _, tk := range r.Trace.Tickets {
		if tk.HostID == chronicHost && tk.Device == fot.RAIDCard {
			last = tk
		}
	}
	if last.ID == 0 {
		t.Fatal("chronic server has no RAID ticket")
	}
	ctx, err := ix.Contextualize(last.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.IsChronicSuspect() {
		t.Errorf("chronic server not flagged: %d slot repeats", ctx.SlotRepeats)
	}
	if ctx.LastSameFailure == nil {
		t.Error("missing last-same-failure pointer")
	} else if !ctx.LastSameFailure.Time.Before(last.Time) {
		t.Error("last same failure is not earlier")
	}
	if len(ctx.ServerHistory) == 0 {
		t.Error("missing server history")
	}
	for i := 1; i < len(ctx.ServerHistory); i++ {
		if ctx.ServerHistory[i].Time.After(ctx.ServerHistory[i-1].Time) {
			t.Fatal("server history not most-recent-first")
		}
	}
}

func TestContextualizeBatchMember(t *testing.T) {
	r := fixture(t)
	ix, err := NewIndex(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	// Find the busiest same-type HDD hour — a batch member.
	var batchTicket fot.Ticket
	hourCounts := map[int64]int{}
	for _, tk := range r.Trace.Tickets {
		if tk.Device == fot.HDD && tk.Type == "SMARTFail" {
			hourCounts[tk.Time.Unix()/3600]++
		}
	}
	var bestHour int64
	for h, n := range hourCounts {
		if n > hourCounts[bestHour] {
			bestHour = h
		}
	}
	for _, tk := range r.Trace.Tickets {
		if tk.Device == fot.HDD && tk.Type == "SMARTFail" && tk.Time.Unix()/3600 == bestHour {
			batchTicket = tk
			break
		}
	}
	if batchTicket.ID == 0 {
		t.Fatal("no batch ticket found")
	}
	ctx, err := ix.Contextualize(batchTicket.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.IsBatchSuspect() {
		t.Errorf("batch member not flagged: %d peers", ctx.BatchPeers)
	}
}

func TestContextualizeTwin(t *testing.T) {
	r := fixture(t)
	ix, err := NewIndex(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	// SixthFixing tickets come from the planted twin groups.
	found := false
	for _, tk := range r.Trace.Tickets {
		if tk.Type != "SixthFixing" {
			continue
		}
		ctx, err := ix.Contextualize(tk.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(ctx.TwinHosts) > 0 {
			found = true
			for _, h := range ctx.TwinHosts {
				if h == tk.HostID {
					t.Error("twin list contains the ticket's own host")
				}
			}
			break
		}
	}
	if !found {
		t.Error("no twin detected on any SixthFixing ticket")
	}
}

func TestContextualizeUnknownID(t *testing.T) {
	r := fixture(t)
	ix, err := NewIndex(r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Contextualize(99999999); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestMineRulesFindsPairStructure(t *testing.T) {
	r := fixture(t)
	rules, err := MineRules(r.Trace, 24*time.Hour, 3, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	for i, rule := range rules {
		if rule.Support < 3 || rule.Lift < 3.0 {
			t.Fatalf("rule %d below thresholds: %+v", i, rule)
		}
		if rule.Expected <= 0 {
			t.Fatalf("rule %d expected %g", i, rule.Expected)
		}
		if i > 0 && rule.Support > rules[i-1].Support {
			t.Fatal("rules not sorted by support")
		}
	}
	// The injected misc×hdd correlation must surface as a rule.
	foundMiscHDD := false
	for _, rule := range rules {
		devs := map[fot.Component]bool{rule.A.Device: true, rule.B.Device: true}
		if devs[fot.Misc] && devs[fot.HDD] {
			foundMiscHDD = true
			break
		}
	}
	if !foundMiscHDD {
		t.Error("misc×hdd correlation not mined")
	}
}

func TestMineRulesValidation(t *testing.T) {
	if _, err := MineRules(nil, 0, 0, 0); err == nil {
		t.Error("nil trace accepted")
	}
	onlyAlarms := fot.NewTrace([]fot.Ticket{{
		ID: 1, HostID: 1, Device: fot.HDD, Type: "SMARTFail",
		Time: time.Now(), Category: fot.FalseAlarm,
	}})
	if _, err := MineRules(onlyAlarms, 0, 0, 0); err == nil {
		t.Error("alarm-only trace accepted")
	}
}

func TestWarningPredictor(t *testing.T) {
	r := fixture(t)
	eval, err := EvaluateWarningPredictor(r.Trace, 10*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if eval.Warnings == 0 || eval.Fatals == 0 {
		t.Fatalf("degenerate populations: %+v", eval)
	}
	// The FMS escalation model plants warning→fatal chains with median
	// 3-day lead: the predictor must clearly beat coincidence.
	if eval.Recall < 0.05 {
		t.Errorf("recall %.3f too low — escalation signal not recovered", eval.Recall)
	}
	if eval.Precision <= 0 || eval.Precision > 1 {
		t.Errorf("precision %.3f out of range", eval.Precision)
	}
	if eval.MedianLeadHours < 12 || eval.MedianLeadHours > 24*15 {
		t.Errorf("median lead %.0f h not 'a couple of days'", eval.MedianLeadHours)
	}
	t.Logf("predictor: precision %.3f recall %.3f lead %.1f h (n=%d warnings, %d fatals)",
		eval.Precision, eval.Recall, eval.MedianLeadHours, eval.Warnings, eval.Fatals)
}

func TestWarningPredictorNoSignalWithoutEscalation(t *testing.T) {
	cfg := fms.DefaultConfig()
	cfg.EscalateProb = 0
	noEsc, err := fms.Run(fleetgen.SmallProfile(), cfg, 556)
	if err != nil {
		t.Fatal(err)
	}
	evalNo, err := EvaluateWarningPredictor(noEsc.Trace, 10*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	r := fixture(t)
	evalYes, err := EvaluateWarningPredictor(r.Trace, 10*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recall with escalation %.3f, without %.3f", evalYes.Recall, evalNo.Recall)
	if !(evalYes.Recall > 2*evalNo.Recall) {
		t.Error("escalation mechanism should drive predictor recall")
	}
}

func TestWarningPredictorValidation(t *testing.T) {
	if _, err := EvaluateWarningPredictor(nil, 0); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestChronicServers(t *testing.T) {
	r := fixture(t)
	top, err := ChronicServers(r.Trace, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Fatal("no chronic servers found despite the BBU injection")
	}
	// Ranked by worst repeat count; the top one is the BBU server with
	// ~75 same-instance RAID repeats.
	for i := 1; i < len(top); i++ {
		if top[i].WorstSlotRepeats > top[i-1].WorstSlotRepeats {
			t.Fatal("not ranked")
		}
	}
	if top[0].WorstSlotRepeats < 50 {
		t.Errorf("top chronic server has only %d repeats", top[0].WorstSlotRepeats)
	}
	if top[0].WorstSlot == "" || top[0].Span <= 0 {
		t.Errorf("incomplete summary: %+v", top[0])
	}
	if _, err := ChronicServers(nil, 5, 3); err == nil {
		t.Error("nil trace accepted")
	}
}
