package mine

import (
	"fmt"
	"sort"
	"time"

	"dcfail/internal/fot"
)

// Item is one side of an association rule: a (device, type) failure kind.
type Item struct {
	Device fot.Component
	Type   string
}

func (it Item) String() string {
	return fmt.Sprintf("%s/%s", it.Device, it.Type)
}

// Rule is one mined association: servers that see A tend to see B within
// the window, more often than time-coincidence explains.
type Rule struct {
	A, B Item
	// Support is the number of servers where A and B co-occurred within
	// the window.
	Support int
	// Expected is the number of servers where the co-occurrence would
	// land inside the window by pure chance, given how often each side
	// fires on the host over the whole study.
	Expected float64
	// Lift is Support / Expected; well above 1 means A and B attract
	// each other in time, not just on the same hardware.
	Lift float64
}

// MineRules finds failure kinds that co-occur on the same server within
// `window`, keeping rules with at least minSupport supporting servers and
// lift above minLift. Rules come back sorted by support, then lift.
//
// Lift uses a temporal baseline: for a host with nA tickets of kind A and
// nB of kind B across a study of duration D, the chance some A and some B
// land within ±window of each other is ≈ min(1, nA·nB·2w/D). Summing that
// over hosts gives the expected support under independence — so chronic
// hosts that simply see everything do not masquerade as correlations.
func MineRules(tr *fot.Trace, window time.Duration, minSupport int, minLift float64) ([]Rule, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("mine: empty trace")
	}
	if window <= 0 {
		window = 24 * time.Hour
	}
	if minSupport < 1 {
		minSupport = 1
	}

	failures := tr.Failures()
	lo, hi, ok := failures.Span()
	if !ok || !hi.After(lo) {
		return nil, fmt.Errorf("mine: no failed servers")
	}
	chancePerPair := 2 * window.Hours() / hi.Sub(lo).Hours()
	byHost := failures.GroupByHost()
	pairs := make(map[[2]Item]*pairAgg)
	for host, tickets := range byHost {
		sort.Slice(tickets, func(i, j int) bool {
			return tickets[i].Time.Before(tickets[j].Time)
		})
		// Per-host item counts for the chance baseline.
		itemCounts := make(map[Item]int)
		for _, t := range tickets {
			itemCounts[Item{t.Device, t.Type}]++
		}
		// Expected co-occurrence for every item pair this host carries.
		items := make([]Item, 0, len(itemCounts))
		for it := range itemCounts {
			items = append(items, it)
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].Device != items[j].Device {
				return items[i].Device < items[j].Device
			}
			return items[i].Type < items[j].Type
		})
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				p := chancePerPair * float64(itemCounts[items[i]]*itemCounts[items[j]])
				if p > 1 {
					p = 1
				}
				agg := pairAggFor(pairs, [2]Item{items[i], items[j]})
				agg.expected += p
			}
		}
		// Observed co-occurrence within the window.
		for i, t := range tickets {
			a := Item{t.Device, t.Type}
			for j := i + 1; j < len(tickets); j++ {
				u := tickets[j]
				if u.Time.Sub(t.Time) > window {
					break
				}
				b := Item{u.Device, u.Type}
				if a == b {
					continue
				}
				agg := pairAggFor(pairs, canonicalItems(a, b))
				agg.hosts[host] = true
			}
		}
	}

	var rules []Rule
	for key, agg := range pairs {
		support := len(agg.hosts)
		if support < minSupport {
			continue
		}
		expected := agg.expected
		if expected < 1e-9 {
			expected = 1e-9
		}
		lift := float64(support) / expected
		if lift < minLift {
			continue
		}
		rules = append(rules, Rule{
			A: key[0], B: key[1],
			Support: support, Expected: agg.expected, Lift: lift,
		})
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		if rules[i].Lift != rules[j].Lift {
			return rules[i].Lift > rules[j].Lift
		}
		return rules[i].A.String()+rules[i].B.String() < rules[j].A.String()+rules[j].B.String()
	})
	return rules, nil
}

// pairAgg accumulates one item pair's observed hosts and chance baseline.
type pairAgg struct {
	hosts    map[uint64]bool
	expected float64
}

func pairAggFor(m map[[2]Item]*pairAgg, key [2]Item) *pairAgg {
	agg := m[key]
	if agg == nil {
		agg = &pairAgg{hosts: make(map[uint64]bool)}
		m[key] = agg
	}
	return agg
}

func canonicalItems(a, b Item) [2]Item {
	if a.Device > b.Device || (a.Device == b.Device && a.Type > b.Type) {
		a, b = b, a
	}
	return [2]Item{a, b}
}
