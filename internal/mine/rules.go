package mine

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"dcfail/internal/fot"
)

// Item is one side of an association rule: a (device, type) failure kind.
type Item struct {
	Device fot.Component
	Type   string
}

func (it Item) String() string {
	return fmt.Sprintf("%s/%s", it.Device, it.Type)
}

// Rule is one mined association: servers that see A tend to see B within
// the window, more often than time-coincidence explains.
type Rule struct {
	A, B Item
	// Support is the number of servers where A and B co-occurred within
	// the window.
	Support int
	// Expected is the number of servers where the co-occurrence would
	// land inside the window by pure chance, given how often each side
	// fires on the host over the whole study.
	Expected float64
	// Lift is Support / Expected; well above 1 means A and B attract
	// each other in time, not just on the same hardware.
	Lift float64
}

// MineRules finds failure kinds that co-occur on the same server within
// `window`, keeping rules with at least minSupport supporting servers and
// lift above minLift. Rules come back sorted by support, then lift.
//
// Lift uses a temporal baseline: for a host with nA tickets of kind A and
// nB of kind B across a study of duration D, the chance some A and some B
// land within ±window of each other is ≈ min(1, nA·nB·2w/D). Summing that
// over hosts gives the expected support under independence — so chronic
// hosts that simply see everything do not masquerade as correlations.
func MineRules(tr *fot.Trace, window time.Duration, minSupport int, minLift float64) ([]Rule, error) {
	return MineRulesIndexed(fot.BorrowTraceIndex(tr), window, minSupport, minLift)
}

// pairAgg accumulates one item pair's observed support and chance
// baseline. Hosts arrive in ascending unique order, so a last-host
// sentinel replaces the per-pair host set.
type pairAgg struct {
	support  int
	lastHost uint64
	hasHost  bool
	expected float64
}

// MineRulesIndexed is MineRules over a shared TraceIndex: items are
// (device, type-symbol) codes, host groups come pre-sorted from the
// index, and the expected-support sum runs in ascending host order — the
// float accumulation is reproducible regardless of input order.
func MineRulesIndexed(ix *fot.TraceIndex, window time.Duration, minSupport int, minLift float64) ([]Rule, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, fmt.Errorf("mine: empty trace")
	}
	if window <= 0 {
		window = 24 * time.Hour
	}
	if minSupport < 1 {
		minSupport = 1
	}

	fail := ix.FailureRows()
	cols := ix.Cols()
	if len(fail) == 0 {
		return nil, fmt.Errorf("mine: no failed servers")
	}
	loNS, hiNS := cols.TimeNS[fail[0]], cols.TimeNS[fail[len(fail)-1]]
	if hiNS <= loNS {
		return nil, fmt.Errorf("mine: no failed servers")
	}
	chancePerPair := 2 * window.Hours() / time.Duration(hiNS-loNS).Hours()
	windowNS := int64(window)

	// Rank type symbols by name so item ordering (device, then type
	// string) works on codes without resolving strings in the loops.
	rank := make([]int32, cols.TypeCount())
	order := make([]uint32, cols.TypeCount())
	for i := range order {
		order[i] = uint32(i)
	}
	slices.SortFunc(order, func(a, b uint32) int {
		return strings.Compare(cols.TypeName(a), cols.TypeName(b))
	})
	for r, sym := range order {
		rank[sym] = int32(r)
	}
	itemCode := func(r int32) uint64 {
		return uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
	}
	itemLess := func(a, b uint64) bool {
		if da, db := a>>32, b>>32; da != db {
			return da < db
		}
		return rank[uint32(a)] < rank[uint32(b)]
	}

	hosts, groups := ix.FailureHostGroups()
	pairs := make(map[[2]uint64]*pairAgg)
	var items []uint64 // scratch, reused across hosts
	counts := make(map[uint64]int)
	for hi, rows := range groups {
		host := hosts[hi]
		// Per-host item counts for the chance baseline.
		clear(counts)
		for _, r := range rows {
			counts[itemCode(r)]++
		}
		items = items[:0]
		for it := range counts {
			items = append(items, it)
		}
		slices.SortFunc(items, func(a, b uint64) int {
			if itemLess(a, b) {
				return -1
			} else if itemLess(b, a) {
				return 1
			}
			return 0
		})
		// Expected co-occurrence for every item pair this host carries.
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				p := chancePerPair * float64(counts[items[i]]*counts[items[j]])
				if p > 1 {
					p = 1
				}
				pairAggFor(pairs, [2]uint64{items[i], items[j]}).expected += p
			}
		}
		// Observed co-occurrence within the window; rows are time-ordered.
		for i, r := range rows {
			a := itemCode(r)
			for j := i + 1; j < len(rows); j++ {
				u := rows[j]
				if cols.TimeNS[u]-cols.TimeNS[r] > windowNS {
					break
				}
				b := itemCode(u)
				if a == b {
					continue
				}
				key := [2]uint64{a, b}
				if itemLess(b, a) {
					key = [2]uint64{b, a}
				}
				agg := pairAggFor(pairs, key)
				if !agg.hasHost || agg.lastHost != host {
					agg.support++
					agg.lastHost, agg.hasHost = host, true
				}
			}
		}
	}

	itemOf := func(code uint64) Item {
		return Item{fot.Component(code >> 32), cols.TypeName(uint32(code))}
	}
	var rules []Rule
	for key, agg := range pairs {
		if agg.support < minSupport {
			continue
		}
		expected := agg.expected
		if expected < 1e-9 {
			expected = 1e-9
		}
		lift := float64(agg.support) / expected
		if lift < minLift {
			continue
		}
		rules = append(rules, Rule{
			A: itemOf(key[0]), B: itemOf(key[1]),
			Support: agg.support, Expected: agg.expected, Lift: lift,
		})
	}
	slices.SortFunc(rules, func(a, b Rule) int {
		if a.Support != b.Support {
			return b.Support - a.Support
		}
		if a.Lift != b.Lift {
			if a.Lift > b.Lift {
				return -1
			}
			return 1
		}
		return strings.Compare(a.A.String()+a.B.String(), b.A.String()+b.B.String())
	})
	return rules, nil
}

func pairAggFor(m map[[2]uint64]*pairAgg, key [2]uint64) *pairAgg {
	agg := m[key]
	if agg == nil {
		agg = &pairAgg{}
		m[key] = agg
	}
	return agg
}
