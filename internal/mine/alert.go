package mine

import (
	"fmt"
	"time"

	"dcfail/internal/fot"
)

// BatchAlert fires when a failure kind crosses its burst threshold — the
// live counterpart of the offline core.BatchWindows miner, usable inside
// a collector so operators see "this is a batch" while it is happening
// rather than in next morning's review.
type BatchAlert struct {
	Device    fot.Component
	Type      string
	At        time.Time
	WindowLen time.Duration
	// Count is the number of distinct servers in the window when the
	// alert fired.
	Count int
}

func (a BatchAlert) String() string {
	return fmt.Sprintf("batch alert: %d servers with %s/%s within %v (at %s)",
		a.Count, a.Device, a.Type, a.WindowLen,
		a.At.Format("2006-01-02 15:04:05"))
}

// BatchDetector watches a ticket stream and raises one alert per episode
// when a (device, type) kind accumulates at least Threshold distinct
// servers within Window. Tickets must arrive in non-decreasing time order
// (the collector's natural order). The zero value is unusable; use
// NewBatchDetector.
type BatchDetector struct {
	window    time.Duration
	threshold int
	kinds     map[[2]string]*kindWindow
}

// kindWindow is one failure kind's sliding window.
type kindWindow struct {
	events []streamEvent // time-ordered
	hosts  map[uint64]int
	// alerted marks that the current episode already fired; it resets
	// once the window drains below half the threshold.
	alerted bool
}

type streamEvent struct {
	at   time.Time
	host uint64
}

// NewBatchDetector builds a detector. Window defaults to 3h and
// threshold to 20 when zero — roughly the signature of the paper's
// case-study batches at fleet scale.
func NewBatchDetector(window time.Duration, threshold int) *BatchDetector {
	if window <= 0 {
		window = 3 * time.Hour
	}
	if threshold < 2 {
		threshold = 20
	}
	return &BatchDetector{
		window:    window,
		threshold: threshold,
		kinds:     make(map[[2]string]*kindWindow),
	}
}

// Observe feeds one ticket and returns an alert when an episode crosses
// the threshold (nil otherwise). False alarms are ignored.
func (d *BatchDetector) Observe(t fot.Ticket) *BatchAlert {
	if !t.Category.IsFailure() {
		return nil
	}
	key := [2]string{t.Device.String(), t.Type}
	kw := d.kinds[key]
	if kw == nil {
		kw = &kindWindow{hosts: make(map[uint64]int)}
		d.kinds[key] = kw
	}
	// Evict events that fell out of the window.
	cutoff := t.Time.Add(-d.window)
	drop := 0
	for drop < len(kw.events) && kw.events[drop].at.Before(cutoff) {
		h := kw.events[drop].host
		if kw.hosts[h]--; kw.hosts[h] == 0 {
			delete(kw.hosts, h)
		}
		drop++
	}
	kw.events = kw.events[drop:]
	kw.events = append(kw.events, streamEvent{at: t.Time, host: t.HostID})
	kw.hosts[t.HostID]++

	if len(kw.hosts) < d.threshold/2 {
		kw.alerted = false // episode over; re-arm
	}
	if kw.alerted || len(kw.hosts) < d.threshold {
		return nil
	}
	kw.alerted = true
	return &BatchAlert{
		Device:    t.Device,
		Type:      t.Type,
		At:        t.Time,
		WindowLen: d.window,
		Count:     len(kw.hosts),
	}
}

// Replay runs the detector over a whole (time-sorted) trace and returns
// every alert — the offline evaluation mode.
func (d *BatchDetector) Replay(tr *fot.Trace) []BatchAlert {
	ordered := tr.Clone()
	ordered.SortByTime()
	var alerts []BatchAlert
	for _, t := range ordered.Tickets {
		if a := d.Observe(t); a != nil {
			alerts = append(alerts, *a)
		}
	}
	return alerts
}
