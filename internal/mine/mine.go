// Package mine implements the FOT correlation-mining tool the paper calls
// for in §VII-B: the production FMS is "stateless" — every ticket stands
// alone, so operators rediscover the same chronic faults for a year (the
// BBU case) and treat batch members as 290k independent incidents. The
// paper proposes a data-mining layer that, for any ticket, surfaces the
// history of the component, the server and its cohort, plus fleet-wide
// correlation rules; and §VII-A mentions an early-warning predictor the
// operators ignored. This package builds all three:
//
//   - Index / Contextualize: per-ticket related-information report
//     (server history, slot repeat chain, batch membership, twins)
//   - MineRules: association rules between failure types that co-occur on
//     the same server within a time window (Table VI generalized)
//   - EvaluateWarningPredictor: how well predictive warning types
//     (SMARTFail, DIMMCE, ...) anticipate fatal failures of the same
//     component instance, with precision / recall / lead time
package mine

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"dcfail/internal/fot"
)

// slotKey identifies one component instance.
type slotKey struct {
	host uint64
	dev  fot.Component
	slot string
}

// Index holds the per-host and per-slot orderings Contextualize needs.
// Build once per trace; safe for concurrent reads afterwards.
type Index struct {
	trace  *fot.Trace
	byID   map[uint64]int
	byHost map[uint64][]int // ticket indexes, time-ordered
	bySlot map[slotKey][]int
	// byTypeTime: per (device, type), time-ordered ticket indexes for
	// batch-peer and twin lookups.
	byTypeTime map[[2]string][]int
}

// NewIndex builds the mining index over a trace. The trace must not be
// mutated afterwards.
func NewIndex(tr *fot.Trace) (*Index, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("mine: empty trace")
	}
	ix := &Index{
		trace:      tr,
		byID:       make(map[uint64]int, tr.Len()),
		byHost:     make(map[uint64][]int),
		bySlot:     make(map[slotKey][]int),
		byTypeTime: make(map[[2]string][]int),
	}
	order := make([]int, tr.Len())
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return tr.Tickets[a].Time.Compare(tr.Tickets[b].Time)
	})
	for _, i := range order {
		t := &tr.Tickets[i]
		if _, dup := ix.byID[t.ID]; dup {
			return nil, fmt.Errorf("mine: duplicate ticket id %d", t.ID)
		}
		ix.byID[t.ID] = i
		ix.byHost[t.HostID] = append(ix.byHost[t.HostID], i)
		sk := slotKey{t.HostID, t.Device, t.Slot}
		ix.bySlot[sk] = append(ix.bySlot[sk], i)
		tk := [2]string{t.Device.String(), t.Type}
		ix.byTypeTime[tk] = append(ix.byTypeTime[tk], i)
	}
	return ix, nil
}

// HostTickets returns one host's tickets in detection-time order (nil
// for a host with no tickets). The returned slice is freshly allocated;
// the tickets themselves are shared with the index's trace.
func (ix *Index) HostTickets(host uint64) []fot.Ticket {
	idxs := ix.byHost[host]
	if len(idxs) == 0 {
		return nil
	}
	out := make([]fot.Ticket, len(idxs))
	for i, ti := range idxs {
		out[i] = ix.trace.Tickets[ti]
	}
	return out
}

// Context is the related-information report for one ticket — what the
// paper says operators need to stop treating each FOT independently.
type Context struct {
	Ticket fot.Ticket
	// ServerHistory is the host's earlier tickets, most recent first
	// (capped at 16).
	ServerHistory []fot.Ticket
	// SlotRepeats counts earlier tickets on the same component instance
	// with the same failure type — a chronic / ineffective-repair alarm
	// when large.
	SlotRepeats int
	// LastSameFailure is the most recent earlier ticket of the same
	// (slot, type), if any.
	LastSameFailure *fot.Ticket
	// BatchPeers counts same-(device, type) tickets on other servers
	// within ±BatchWindow — large values mean this FOT is one of a batch
	// and should be handled as a cohort, not an incident.
	BatchPeers  int
	BatchWindow time.Duration
	// TwinHosts lists other hosts whose identical failure occurred
	// within ±2 minutes — the §V-C synchronized-repeat signature.
	TwinHosts []uint64
}

// IsChronicSuspect reports whether the ticket looks like the paper's BBU
// case: the same instance failing over and over.
func (c *Context) IsChronicSuspect() bool { return c.SlotRepeats >= 5 }

// IsBatchSuspect reports whether the ticket is likely part of a batch
// failure.
func (c *Context) IsBatchSuspect() bool { return c.BatchPeers >= 10 }

// Contextualize assembles the Context for a ticket id.
func (ix *Index) Contextualize(id uint64) (*Context, error) {
	idx, ok := ix.byID[id]
	if !ok {
		return nil, fmt.Errorf("mine: unknown ticket id %d", id)
	}
	t := ix.trace.Tickets[idx]
	const batchWindow = 3 * time.Hour
	const twinSkew = 2 * time.Minute
	ctx := &Context{Ticket: t, BatchWindow: batchWindow}

	// Server history: earlier tickets on the host, most recent first.
	hostTickets := ix.byHost[t.HostID]
	for i := len(hostTickets) - 1; i >= 0; i-- {
		ht := ix.trace.Tickets[hostTickets[i]]
		if !ht.Time.Before(t.Time) || ht.ID == t.ID {
			continue
		}
		ctx.ServerHistory = append(ctx.ServerHistory, ht)
		if len(ctx.ServerHistory) >= 16 {
			break
		}
	}
	// Slot repeat chain.
	for _, si := range ix.bySlot[slotKey{t.HostID, t.Device, t.Slot}] {
		st := ix.trace.Tickets[si]
		if st.ID == t.ID || !st.Time.Before(t.Time) || st.Type != t.Type {
			continue
		}
		ctx.SlotRepeats++
		cp := st
		ctx.LastSameFailure = &cp
	}
	// Batch peers and twins.
	peers := ix.byTypeTime[[2]string{t.Device.String(), t.Type}]
	lo := sort.Search(len(peers), func(i int) bool {
		return !ix.trace.Tickets[peers[i]].Time.Before(t.Time.Add(-batchWindow))
	})
	for i := lo; i < len(peers); i++ {
		pt := ix.trace.Tickets[peers[i]]
		if pt.Time.After(t.Time.Add(batchWindow)) {
			break
		}
		if pt.HostID == t.HostID {
			continue
		}
		ctx.BatchPeers++
		skew := pt.Time.Sub(t.Time)
		if skew < 0 {
			skew = -skew
		}
		if skew <= twinSkew && len(ctx.TwinHosts) < 8 {
			ctx.TwinHosts = appendUniqueHost(ctx.TwinHosts, pt.HostID)
		}
	}
	return ctx, nil
}

func appendUniqueHost(hosts []uint64, h uint64) []uint64 {
	for _, x := range hosts {
		if x == h {
			return hosts
		}
	}
	return append(hosts, h)
}

// ChronicServer summarizes one repeat-heavy server — the report operators
// need to spot the year-long BBU-style flappers (§III-D).
type ChronicServer struct {
	HostID uint64
	// Tickets is the server's total failure count.
	Tickets int
	// WorstSlotRepeats is the largest same-(device, slot) ticket count
	// on the server — the flap counter.
	WorstSlotRepeats int
	// WorstSlot labels that component instance, e.g. "raid_card/raid0".
	WorstSlot string
	// Span is the time between the server's first and last ticket.
	Span time.Duration
}

// ChronicServers ranks servers by their worst same-instance repeat count
// and returns the top n (fewer if the trace has fewer repeat-heavy
// servers; only servers with at least minRepeats qualify).
func ChronicServers(tr *fot.Trace, n, minRepeats int) ([]ChronicServer, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("mine: empty trace")
	}
	if n < 1 {
		n = 10
	}
	if minRepeats < 2 {
		minRepeats = 2
	}
	type hostAgg struct {
		tickets  int
		lo, hi   time.Time
		bySlot   map[slotKey]int
		slotType map[slotKey]string
	}
	hosts := make(map[uint64]*hostAgg)
	for _, t := range tr.Failures().Tickets {
		agg := hosts[t.HostID]
		if agg == nil {
			agg = &hostAgg{
				lo: t.Time, hi: t.Time,
				bySlot:   make(map[slotKey]int),
				slotType: make(map[slotKey]string),
			}
			hosts[t.HostID] = agg
		}
		agg.tickets++
		if t.Time.Before(agg.lo) {
			agg.lo = t.Time
		}
		if t.Time.After(agg.hi) {
			agg.hi = t.Time
		}
		sk := slotKey{t.HostID, t.Device, t.Slot}
		agg.bySlot[sk]++
		agg.slotType[sk] = t.Device.String() + "/" + t.Slot
	}
	var out []ChronicServer
	for host, agg := range hosts {
		worst, label := 0, ""
		for sk, c := range agg.bySlot {
			if c > worst {
				worst, label = c, agg.slotType[sk]
			}
		}
		if worst < minRepeats {
			continue
		}
		out = append(out, ChronicServer{
			HostID:           host,
			Tickets:          agg.tickets,
			WorstSlotRepeats: worst,
			WorstSlot:        label,
			Span:             agg.hi.Sub(agg.lo),
		})
	}
	slices.SortFunc(out, func(a, b ChronicServer) int {
		if a.WorstSlotRepeats != b.WorstSlotRepeats {
			return b.WorstSlotRepeats - a.WorstSlotRepeats
		}
		if a.HostID < b.HostID {
			return -1
		}
		return 1
	})
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}
