// Package faultnet is a chaos TCP proxy for integration-testing the
// networked FMS: agents and operators dial the proxy instead of the
// collector, and tests inject the paper's failure scenarios on the wire —
// added latency, network partitions, connections severed mid-frame, and
// one-way stalls that deliver a request but black-hole the ack (the case
// that forces at-least-once retry plus collector-side dedup).
//
// All fault controls are safe to flip at runtime from the test goroutine
// while traffic flows.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy forwards TCP connections to an upstream address, applying the
// currently configured faults to every live and future connection.
type Proxy struct {
	ln net.Listener

	mu       sync.Mutex
	upstream string
	links    map[*link]struct{}

	partition atomic.Bool  // refuse new conns, sever existing
	stallUp   atomic.Bool  // black-hole upstream->client bytes (lost acks)
	blackhole atomic.Bool  // accept conns but forward nothing in either direction
	delay     atomic.Int64 // per-chunk latency, nanoseconds
	truncate  atomic.Int64 // sever a conn after forwarding this many client bytes (0 = off)
	bandwidth atomic.Int64 // per-link forwarding cap, bytes/second (0 = unlimited)

	flapMu   sync.Mutex
	flapStop chan struct{} // non-nil while a flap loop runs

	wg      sync.WaitGroup
	closing chan struct{}
}

// link is one proxied connection pair.
type link struct {
	client, server net.Conn
	sentUp         atomic.Int64 // client->upstream bytes forwarded
	once           sync.Once
}

func (l *link) sever() {
	l.once.Do(func() {
		l.client.Close()
		l.server.Close()
	})
}

// New starts a proxy listening on listenAddr (use "127.0.0.1:0") that
// forwards to upstream. Callers must Close it.
func New(listenAddr, upstream string) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{
		ln:       ln,
		upstream: upstream,
		links:    make(map[*link]struct{}),
		closing:  make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address — what agents dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetUpstream repoints future connections at a new collector address —
// how tests "restart" a collector without racing to rebind the old port.
func (p *Proxy) SetUpstream(addr string) {
	p.mu.Lock()
	p.upstream = addr
	p.mu.Unlock()
}

// SetDelay adds per-chunk forwarding latency in both directions.
func (p *Proxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// SetTruncateAfter severs each connection once it has forwarded n client
// bytes upstream — cutting a JSON frame mid-line. 0 disables.
func (p *Proxy) SetTruncateAfter(n int64) { p.truncate.Store(n) }

// StallUpstream black-holes upstream->client traffic when on: requests
// still reach the collector, but acks never come back.
func (p *Proxy) StallUpstream(on bool) { p.stallUp.Store(on) }

// BlackHole, when on, keeps accepting and dialing connections but
// forwards nothing in either direction — the "switch forwards the SYN
// and then dies" failure: the dial succeeds, so naive clients believe
// they are connected and hang instead of failing fast. Unlike Partition,
// nothing is refused and nothing is severed; only read deadlines or
// heartbeats get a client out.
func (p *Proxy) BlackHole(on bool) { p.blackhole.Store(on) }

// SetBandwidth caps each link's forwarding rate (both directions
// combined per direction pump) to bytesPerSec by sleeping after each
// chunk — the degraded-uplink scenario where a replica stays connected
// but cannot keep up with the stream. 0 removes the cap.
func (p *Proxy) SetBandwidth(bytesPerSec int64) { p.bandwidth.Store(bytesPerSec) }

// FlapEvery severs every live connection each interval — the flapping
// NIC/port scenario: connections keep working briefly, then die, over
// and over. The links are cut abruptly (as SeverAll), but new
// connections are still accepted, so retrying clients make progress
// between flaps. A non-positive interval stops flapping.
func (p *Proxy) FlapEvery(interval time.Duration) {
	p.flapMu.Lock()
	defer p.flapMu.Unlock()
	if p.flapStop != nil {
		close(p.flapStop)
		p.flapStop = nil
	}
	if interval <= 0 {
		return
	}
	stop := make(chan struct{})
	p.flapStop = stop
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				p.SeverAll()
			case <-stop:
				return
			case <-p.closing:
				return
			}
		}
	}()
}

// Partition severs every live connection and refuses new ones while on.
func (p *Proxy) Partition(on bool) {
	p.partition.Store(on)
	if on {
		p.SeverAll()
	}
}

// SeverAll drops every live connection (future ones proceed normally).
func (p *Proxy) SeverAll() {
	p.mu.Lock()
	for l := range p.links {
		l.sever()
	}
	p.mu.Unlock()
}

// ActiveConns reports the number of live proxied connections.
func (p *Proxy) ActiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// Close stops the proxy and severs everything.
func (p *Proxy) Close() error {
	close(p.closing)
	err := p.ln.Close()
	p.SeverAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.closing:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if p.partition.Load() {
			conn.Close()
			continue
		}
		p.mu.Lock()
		upstream := p.upstream
		p.mu.Unlock()
		server, err := net.DialTimeout("tcp", upstream, 2*time.Second)
		if err != nil {
			conn.Close()
			continue
		}
		l := &link{client: conn, server: server}
		p.mu.Lock()
		p.links[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(l, conn, server, true)
		go p.pump(l, server, conn, false)
	}
}

// pump copies src→dst applying the live fault controls. clientToServer
// marks the request direction (budgeted by SetTruncateAfter); the reverse
// direction is the one StallUpstream black-holes.
func (p *Proxy) pump(l *link, src, dst net.Conn, clientToServer bool) {
	defer p.wg.Done()
	defer func() {
		l.sever()
		p.mu.Lock()
		delete(p.links, l)
		p.mu.Unlock()
	}()
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := time.Duration(p.delay.Load()); d > 0 {
				select {
				case <-time.After(d):
				case <-p.closing:
					return
				}
			}
			if p.partition.Load() {
				return
			}
			if p.blackhole.Load() {
				// Swallow the bytes but keep reading so neither side
				// blocks on a full send buffer — the link looks alive
				// and carries nothing.
				continue
			}
			if bw := p.bandwidth.Load(); bw > 0 {
				// Model a capped link by stretching each chunk over the
				// time it would need at bw bytes/second.
				wait := time.Duration(int64(n) * int64(time.Second) / bw)
				select {
				case <-time.After(wait):
				case <-p.closing:
					return
				}
			}
			chunk := buf[:n]
			if clientToServer {
				if limit := p.truncate.Load(); limit > 0 {
					already := l.sentUp.Load()
					if already+int64(n) > limit {
						// Forward a prefix so the frame is cut mid-line,
						// then sever.
						if keep := limit - already; keep > 0 {
							dst.Write(chunk[:keep])
						}
						return
					}
				}
				l.sentUp.Add(int64(n))
			} else if p.stallUp.Load() {
				// Black-hole the ack but keep draining so the collector
				// never blocks on its send buffer.
				continue
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			return
		}
	}
}
