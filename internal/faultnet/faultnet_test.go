package faultnet

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer is a line-echo upstream for exercising the proxy.
type echoServer struct {
	ln net.Listener
	wg sync.WaitGroup

	mu       sync.Mutex
	received []string
}

func startEcho(t *testing.T) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					line := sc.Text()
					s.mu.Lock()
					s.received = append(s.received, line)
					s.mu.Unlock()
					fmt.Fprintf(conn, "echo:%s\n", line)
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); s.wg.Wait() })
	return s
}

func (s *echoServer) addr() string { return s.ln.Addr().String() }

func (s *echoServer) got() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.received...)
}

func startProxy(t *testing.T, upstream string) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", upstream)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func roundTrip(t *testing.T, conn net.Conn, line string) (string, error) {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return "", err
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("connection closed")
	}
	return sc.Text(), nil
}

func TestTransparentForwarding(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, echo.addr())
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := roundTrip(t, conn, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "echo:hello" {
		t.Errorf("resp = %q", resp)
	}
}

func TestDelayAddsLatency(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, echo.addr())
	p.SetDelay(60 * time.Millisecond)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := roundTrip(t, conn, "slow"); err != nil {
		t.Fatal(err)
	}
	// Two directions, ≥60ms each.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("round trip took %v, want ≥ ~120ms", elapsed)
	}
}

func TestPartitionRefusesAndSevers(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, echo.addr())
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, "pre"); err != nil {
		t.Fatal(err)
	}
	p.Partition(true)
	if _, err := roundTrip(t, conn, "during"); err == nil {
		t.Error("severed connection still round-tripped")
	}
	// New connections die immediately (accept-then-close) or fail.
	c2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		if _, rerr := roundTrip(t, c2, "during2"); rerr == nil {
			t.Error("partitioned proxy still forwards")
		}
		c2.Close()
	}
	p.Partition(false)
	c3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := roundTrip(t, c3, "post"); err != nil {
		t.Errorf("healed partition still failing: %v", err)
	}
}

func TestTruncateMidFrame(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, echo.addr())
	p.SetTruncateAfter(10)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 30-byte line: the proxy forwards 10 bytes then severs, so the
	// upstream never sees a complete frame.
	if _, err := roundTrip(t, conn, strings.Repeat("x", 30)); err == nil {
		t.Fatal("truncated connection returned a response")
	}
	deadline := time.Now().Add(time.Second)
	for p.ActiveConns() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for _, line := range echo.got() {
		if strings.Contains(line, "xxxxxxxxxxx") {
			t.Errorf("upstream received full frame %q despite truncation", line)
		}
	}
}

func TestStallUpstreamLosesAcks(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, echo.addr())
	p.StallUpstream(true)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The request goes through; the response never arrives.
	if _, err := roundTrip(t, conn, "lost-ack"); err == nil {
		t.Fatal("stalled direction delivered a response")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(echo.got()) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := echo.got()
	if len(got) != 1 || got[0] != "lost-ack" {
		t.Fatalf("upstream received %q, want the stalled request", got)
	}
}

func TestBlackHoleAcceptsButForwardsNothing(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, echo.addr())
	p.BlackHole(true)
	// The dial succeeds — that is the point of this fault mode.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("black-holed proxy refused the dial: %v", err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, "void"); err == nil {
		t.Fatal("black-holed link delivered a response")
	}
	if got := echo.got(); len(got) != 0 {
		t.Fatalf("upstream received %q through a black hole", got)
	}
	// Lifting the fault restores service for new traffic on the same
	// (still-open) connection: the pump never severed it.
	p.BlackHole(false)
	resp, err := roundTrip(t, conn, "back")
	if err != nil {
		t.Fatalf("healed black hole still failing: %v", err)
	}
	if resp != "echo:back" {
		t.Errorf("resp = %q", resp)
	}
}

func TestBandwidthCapSlowsTransfer(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, echo.addr())
	// 1 KiB/s: a 128-byte line should take ≥ ~125ms per direction.
	p.SetBandwidth(1024)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := roundTrip(t, conn, strings.Repeat("b", 128)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("capped round trip took %v, want ≥ ~250ms", elapsed)
	}
	// Uncapped again: fast.
	p.SetBandwidth(0)
	start = time.Now()
	if _, err := roundTrip(t, conn, "quick"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("uncapped round trip took %v", elapsed)
	}
}

func TestFlapSeversPeriodicallyButAllowsReconnect(t *testing.T) {
	echo := startEcho(t)
	p := startProxy(t, echo.addr())
	p.FlapEvery(50 * time.Millisecond)
	defer p.FlapEvery(0)

	// Each connection eventually dies, but a retrying client keeps making
	// progress across reconnects.
	successes := 0
	var flapped bool
	deadline := time.Now().Add(3 * time.Second)
	for successes < 5 && time.Now().Before(deadline) {
		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		// Drive the link until the flap cuts it.
		for time.Now().Before(deadline) {
			if _, err := roundTrip(t, conn, fmt.Sprintf("msg-%d", successes)); err != nil {
				flapped = true
				break
			}
			successes++
			time.Sleep(5 * time.Millisecond)
		}
		conn.Close()
	}
	if successes < 5 {
		t.Fatalf("only %d round trips succeeded under flapping", successes)
	}
	if !flapped {
		t.Fatal("no connection was ever severed by the flap loop")
	}

	// Disabled: a connection survives comfortably longer than the old
	// flap interval.
	p.FlapEvery(0)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(120 * time.Millisecond)
	if _, err := roundTrip(t, conn, "calm"); err != nil {
		t.Fatalf("connection died after flapping was disabled: %v", err)
	}
}

func TestSetUpstreamRedirectsNewConns(t *testing.T) {
	echo1 := startEcho(t)
	echo2 := startEcho(t)
	p := startProxy(t, echo1.addr())
	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := roundTrip(t, c1, "first"); err != nil {
		t.Fatal(err)
	}
	p.SetUpstream(echo2.addr())
	p.SeverAll()
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := roundTrip(t, c2, "second"); err != nil {
		t.Fatal(err)
	}
	if got := echo2.got(); len(got) != 1 || got[0] != "second" {
		t.Errorf("new upstream received %q", got)
	}
}
