package predict

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
)

// Options configures an Engine. The zero value of every field has a
// usable default.
type Options struct {
	// Window is the trailing feature window (recent warning rate,
	// batch-episode recency). Default 240h — the §VII-A default horizon.
	Window time.Duration
	// BatchWindow / BatchThreshold tune the batch-episode membership
	// feature, defaulting to mine.NewBatchDetector's 3h / 20 signature.
	BatchWindow    time.Duration
	BatchThreshold int
	// Scorer combines a feature vector into a risk score in [0, 1].
	// Default: DefaultLogistic().
	Scorer Scorer
	// Now measures update cost for the /stats counters (nil means
	// time.Now). Scores never read it — all scoring time is fold-time.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 240 * time.Hour
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 3 * time.Hour
	}
	if o.BatchThreshold < 2 {
		o.BatchThreshold = 20
	}
	if o.Scorer == nil {
		o.Scorer = DefaultLogistic()
	}
	if o.Now == nil {
		//lint:ignore walltime injection-point default; Options.Now overrides the clock, and it only times update cost — scores use fold-time
		o.Now = time.Now
	}
	return o
}

// HostScore is one scored host: the model output plus the feature
// breakdown it was computed from.
type HostScore struct {
	Host     uint64       `json:"host"`
	Score    float64      `json:"score"`
	Features HostFeatures `json:"features"`
}

// EngineStats is a point-in-time snapshot of the predictor's health and
// cost counters, surfaced under "predict" in the daemon's /stats.
type EngineStats struct {
	Epoch        uint64 `json:"epoch"`
	Rows         int    `json:"rows"`
	Hosts        int    `json:"hosts_tracked"`
	ScoresServed uint64 `json:"scores_served"`
	Folds        uint64 `json:"folds"`
	FoldedRows   uint64 `json:"folded_rows"`
	UpdateNS     uint64 `json:"update_ns_total"`
	Rebuilds     uint64 `json:"rebuilds"`
	Model        string `json:"model"`
}

// Engine carries the per-host feature state across epochs and answers
// score queries against the newest fold. Advance is the fold path —
// serve.State calls it under its fold mutex with exactly the appended
// row range; queries take a read lock, so a score never observes a
// half-folded state.
//
// Like core.IncrementalEngine, the engine assumes rows are appended in
// global (time, id) order. A batch that violates it (backfill,
// out-of-order ingest after a reattach) triggers a transparent rebuild
// from the full permutation — correctness never depends on arrival
// order, only the delta fast path does.
type Engine struct {
	opts   Options
	update func(core.SectionState, *fot.TraceIndex, []int32) (core.SectionState, error)

	mu       sync.RWMutex
	st       *featureState
	epoch    uint64
	rows     int
	asOfNS   int64 // newest folded ticket time (fold-time "now")
	lastT    int64 // (time, id) key of the last folded row
	lastID   uint64
	haveLast bool

	folds      uint64
	foldedRows uint64
	updateNS   uint64
	rebuilds   uint64
	scores     atomic.Uint64 // lifetime scores served (read path)
}

// NewEngine builds an engine with no folded rows (epoch 0).
func NewEngine(opts Options) *Engine {
	opts = opts.withDefaults()
	return &Engine{
		opts:   opts,
		update: stateUpdater(int64(opts.BatchWindow), opts.BatchThreshold),
	}
}

// Model returns the scorer's version string, served alongside every
// score so clients can tell which model produced a number.
func (e *Engine) Model() string { return e.opts.Scorer.Version() }

// Window returns the effective feature window.
func (e *Engine) Window() time.Duration { return e.opts.Window }

// Advance folds the rows appended since the previous call — rows
// [watermark, ix.Len()) — and tags the state with epoch. It must be
// externally serialized with respect to itself (serve's fold mutex).
func (e *Engine) Advance(ix *fot.TraceIndex, epoch uint64) {
	cols := ix.Cols()
	n := ix.Len()
	start := e.opts.Now()

	e.mu.Lock()
	defer e.mu.Unlock()
	defer func() {
		e.folds++
		e.updateNS += uint64(e.opts.Now().Sub(start))
	}()

	if n < e.rows {
		e.rebuildLocked(ix, epoch)
		return
	}
	newRows := make([]int32, 0, n-e.rows)
	for r := e.rows; r < n; r++ {
		newRows = append(newRows, int32(r))
	}
	if len(newRows) == 0 {
		// Epoch marker with no rows (replication): scores are unchanged,
		// only the epoch tag moves.
		e.epoch = epoch
		return
	}
	slices.SortFunc(newRows, func(a, b int32) int {
		if cols.TimeNS[a] != cols.TimeNS[b] {
			if cols.TimeNS[a] < cols.TimeNS[b] {
				return -1
			}
			return 1
		}
		if cols.ID[a] != cols.ID[b] {
			if cols.ID[a] < cols.ID[b] {
				return -1
			}
			return 1
		}
		return 0
	})
	first := newRows[0]
	if e.haveLast && (cols.TimeNS[first] < e.lastT ||
		(cols.TimeNS[first] == e.lastT && cols.ID[first] <= e.lastID)) {
		e.rebuildLocked(ix, epoch)
		return
	}
	e.foldLocked(ix, newRows)
	e.rows = n
	e.epoch = epoch
}

// foldLocked runs the state update over rows (pre-sorted) and advances
// the fold-time watermark.
func (e *Engine) foldLocked(ix *fot.TraceIndex, rows []int32) {
	next, _ := e.update(e.st, ix, rows)
	e.st = next.(*featureState)
	cols := ix.Cols()
	last := rows[len(rows)-1]
	e.lastT, e.lastID, e.haveLast = cols.TimeNS[last], cols.ID[last], true
	if cols.TimeNS[last] > e.asOfNS {
		e.asOfNS = cols.TimeNS[last]
	}
	e.foldedRows += uint64(len(rows))
}

// rebuildLocked discards the state and refolds the whole permutation.
func (e *Engine) rebuildLocked(ix *fot.TraceIndex, epoch uint64) {
	e.rebuilds++
	e.st = nil
	e.asOfNS = 0
	perm := ix.TimePerm()
	if len(perm) > 0 {
		e.foldLocked(ix, perm)
	} else {
		e.haveLast = false
	}
	e.rows = ix.Len()
	e.epoch = epoch
}

// ScoreHost scores one host against the newest fold. ok is false when
// the host has no predictor-eligible tickets (or nothing folded yet).
// The returned epoch identifies the fold the score was computed from —
// the value /predict/{host} stamps as X-Epoch.
func (e *Engine) ScoreHost(host uint64) (sc HostScore, epoch uint64, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.st == nil {
		return HostScore{}, e.epoch, false
	}
	hi, found := e.st.hostIdx[host]
	if !found {
		return HostScore{}, e.epoch, false
	}
	e.scores.Add(1)
	return e.scoreLocked(hi), e.epoch, true
}

// scoreLocked computes one host's score under the read lock.
func (e *Engine) scoreLocked(hi int32) HostScore {
	f := e.st.features(hi, e.asOfNS, int64(e.opts.Window))
	return HostScore{Host: f.Host, Score: e.opts.Scorer.Score(&f), Features: f}
}

// AtRisk returns the k highest-risk hosts against the newest fold,
// deterministically ordered: score descending, host id ascending on
// ties. k <= 0 means 10. The returned epoch identifies the fold — every
// replica that folded the same epoch returns the same list.
func (e *Engine) AtRisk(k int) (ranked []HostScore, epoch uint64) {
	if k <= 0 {
		k = 10
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.st == nil {
		return nil, e.epoch
	}
	all := make([]HostScore, 0, len(e.st.hosts))
	for hi := range e.st.hosts {
		all = append(all, e.scoreLocked(int32(hi)))
	}
	e.scores.Add(uint64(len(all)))
	slices.SortFunc(all, func(a, b HostScore) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		if a.Host != b.Host {
			if a.Host < b.Host {
				return -1
			}
			return 1
		}
		return 0
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k], e.epoch
}

// Populations snapshots every tracked host's lifetime warning/fatal
// populations — the consistency gate surface against
// mine.WarningFatalPopulations.
func (e *Engine) Populations() map[uint64]mine.PredictorPopulation {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.st == nil {
		return map[uint64]mine.PredictorPopulation{}
	}
	return e.st.populations()
}

// Epoch returns the newest folded epoch.
func (e *Engine) Epoch() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() EngineStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	hosts := 0
	if e.st != nil {
		hosts = len(e.st.hosts)
	}
	return EngineStats{
		Epoch:        e.epoch,
		Rows:         e.rows,
		Hosts:        hosts,
		ScoresServed: e.scores.Load(),
		Folds:        e.folds,
		FoldedRows:   e.foldedRows,
		UpdateNS:     e.updateNS,
		Rebuilds:     e.rebuilds,
		Model:        e.opts.Scorer.Version(),
	}
}
