package predict

import "math"

// Scorer turns one host's feature vector into a risk score in [0, 1].
// Implementations must be pure functions of the vector — no clocks, no
// per-call state — so every replica serving the same epoch returns the
// same score.
type Scorer interface {
	// Name is the variant's short identifier (evaluation tables).
	Name() string
	// Version identifies the exact model (name + parameter revision);
	// served with every score so clients can tell models apart.
	Version() string
	// Score maps a feature vector to [0, 1].
	Score(f *HostFeatures) float64
}

// LogisticScorer is a calibrated logistic model over the streaming
// feature vector. The weights are hand-calibrated against the simulated
// fleet (see predict.Evaluate and EXPERIMENTS.md): recent warning volume
// dominates, fatal history and batch-episode membership push risk up,
// an accelerating TBF trend (< 1) adds, and a stale host (no events for
// most of the window) decays toward the prior.
type LogisticScorer struct {
	Bias        float64
	WRecent     float64 // * log1p(RecentWarnings)
	WFatals     float64 // * log1p(Fatals)
	WBatch      float64 // * 1 if BatchMember
	WAccel      float64 // * max(0, 1-TBFTrend) when trend is known
	WStale      float64 // * min(1, LastEventAgeHours/windowHours)
	WindowHours float64 // staleness normalizer; <= 0 disables the term
	// Threshold is the decision boundary the evaluation harness fits on
	// the training seed; Score itself never reads it.
	Threshold float64
	Revision  string
}

// DefaultLogistic returns the shipped calibration. Threshold comes from
// the grid fit on the training seed (fleetgen small profile, seed 1).
func DefaultLogistic() *LogisticScorer {
	return &LogisticScorer{
		Bias:        -4.0,
		WRecent:     2.2,
		WFatals:     0.8,
		WBatch:      0.7,
		WAccel:      0.9,
		WStale:      -1.5,
		WindowHours: 240,
		Threshold:   0.5,
		Revision:    "v1",
	}
}

func (s *LogisticScorer) Name() string    { return "logistic" }
func (s *LogisticScorer) Version() string { return "logistic-" + s.Revision }

func (s *LogisticScorer) Score(f *HostFeatures) float64 {
	x := s.Bias
	x += s.WRecent * math.Log1p(float64(f.RecentWarnings))
	x += s.WFatals * math.Log1p(float64(f.Fatals))
	if f.BatchMember {
		x += s.WBatch
	}
	if f.TBFTrend > 0 && f.TBFTrend < 1 {
		x += s.WAccel * (1 - f.TBFTrend)
	}
	if s.WindowHours > 0 && f.LastEventAgeHours > 0 {
		age := f.LastEventAgeHours / s.WindowHours
		if age > 1 {
			age = 1
		}
		x += s.WStale * age
	}
	return sigmoid(x)
}

// WarningScorer is the §VII-A batch rule lifted to host level: a host
// with any warning inside the window is predicted to fail, all others
// are not. It is the baseline variant in the evaluation harness — the
// streaming equivalent of "a warning in [f-h, f) predicts the fatal".
type WarningScorer struct{}

func (WarningScorer) Name() string    { return "warning-baseline" }
func (WarningScorer) Version() string { return "warning-baseline-v1" }

func (WarningScorer) Score(f *HostFeatures) float64 {
	if f.RecentWarnings > 0 {
		return 1
	}
	return 0
}
