// Package predict is the streaming failure-prediction layer (ROADMAP's
// DC-Prophet direction): it scores every host's near-term fatal-failure
// risk continuously as tickets fold in, instead of replaying history the
// way the batch §VII-A evaluation (mine.EvaluateWarningPredictor) does.
//
// The package rides the serving tier's incremental fold path. On every
// epoch advance the Engine consumes exactly the appended row range — the
// same `newRows []int32` contract core.IncrementalEngine hands its
// sections — and folds it into dense per-host feature state over the
// columnar counters:
//
//   - lifetime warning/fatal populations, classified by the exact rule
//     the batch predictor uses (failure category, non-Misc device,
//     fot.IsFatalType on the (device, type) code) — so a frozen trace's
//     per-host populations match mine.WarningFatalPopulations exactly;
//   - per-component-class ticket mix;
//   - the full sorted warning timeline per host (recent warning rate is
//     a binary search at score time, so folding stays append-only);
//   - batch-episode membership via a per-(device, type) sliding window,
//     mirroring mine.BatchDetector's 3h/20-distinct-hosts signature;
//   - time-between-failures trend: a short ring of recent inter-event
//     gaps against the lifetime mean.
//
// Scoring is pluggable (Scorer): the default is a calibrated logistic
// model over the feature vector; WarningScorer is the §VII-A baseline
// ("a recent warning predicts a fatal") lifted to host level. All state
// is advanced with fold-time (the newest folded ticket timestamp), never
// the wall clock, so replicas that fold the same epochs serve identical
// scores.
package predict

import (
	"math"
	"slices"

	"dcfail/internal/core"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
)

// numClasses sizes the dense per-host per-component counters. Component
// codes start at 1; fot.CPU is the highest code in Table II order.
const numClasses = int(fot.CPU) + 1

// gapRing is how many recent inter-event gaps feed the TBF trend.
const gapRing = 4

// batchEv is one ticket inside a failure kind's sliding batch window.
type batchEv struct {
	t  int64
	hi int32 // dense host index
}

// kindWin is one (device, type) kind's sliding batch-episode window,
// the streaming analogue of mine.BatchDetector's kindWindow over dense
// host indexes.
type kindWin struct {
	events []batchEv
	hosts  map[int32]int
	// alerted marks an episode in progress: the threshold already fired
	// and every window member was stamped; later arrivals are stamped
	// one by one until the window drains below half the threshold.
	alerted bool
}

// featureState is the carried fold state: one dense row per host ever
// seen with a predictor-eligible failure ticket. It follows the
// incremental state contract (DESIGN §10): UpdateState never writes
// through its prev argument — it returns prev itself when nothing
// eligible folded, or a fresh top-level state that absorbs prev's
// containers (ownership hand-off; the engine never touches the old
// top-level value again).
type featureState struct {
	hostIdx map[uint64]int32 // host id -> dense index
	hosts   []uint64         // dense index -> host id

	warnCnt  []int32   // lifetime eligible warnings
	fatalCnt []int32   // lifetime eligible fatals
	warnNS   [][]int64 // per host, warning times, sorted (fold order)
	classCnt []uint32  // flat [host*numClasses + class] ticket counts

	lastNS      []int64          // last eligible ticket time per host
	gapSum      []int64          // lifetime inter-event gap sum (ns)
	gapCnt      []int32          // lifetime inter-event gap count
	gaps        [][gapRing]int64 // ring of the most recent gaps
	gapPos      []int8           // next ring slot
	batchNS     []int64          // last batch-episode membership time; -1 = never
	kinds       map[uint64]*kindWin
	fatalByCode map[uint64]bool
}

func newFeatureState() *featureState {
	return &featureState{
		hostIdx:     make(map[uint64]int32),
		kinds:       make(map[uint64]*kindWin),
		fatalByCode: make(map[uint64]bool),
	}
}

// hostFor returns the dense index of host, growing every per-host column
// on first sight.
func (st *featureState) hostFor(host uint64) int32 {
	if hi, ok := st.hostIdx[host]; ok {
		return hi
	}
	hi := int32(len(st.hosts))
	st.hostIdx[host] = hi
	st.hosts = append(st.hosts, host)
	st.warnCnt = append(st.warnCnt, 0)
	st.fatalCnt = append(st.fatalCnt, 0)
	st.warnNS = append(st.warnNS, nil)
	st.classCnt = append(st.classCnt, make([]uint32, numClasses)...)
	st.lastNS = append(st.lastNS, 0)
	st.gapSum = append(st.gapSum, 0)
	st.gapCnt = append(st.gapCnt, 0)
	st.gaps = append(st.gaps, [gapRing]int64{})
	st.gapPos = append(st.gapPos, 0)
	st.batchNS = append(st.batchNS, -1)
	return hi
}

// UpdateState folds the appended rows into the next feature state with
// the default batch-episode signature (3h / 20 distinct hosts). It is
// the package's fold function and follows the incremental section
// contract exactly: prev is nil on the first fold and after a rebuild;
// newRows is the appended row range in global (time, id) order and is
// neither retained nor mutated; prev is never written through — a fold
// with no eligible rows returns prev itself (identity = unchanged), any
// other fold returns a fresh top-level state absorbing prev's containers.
func UpdateState(prev core.SectionState, ix *fot.TraceIndex, newRows []int32) (core.SectionState, error) {
	return stateUpdater(3*60*60*1e9, 20)(prev, ix, newRows)
}

// stateUpdater returns the fold function for the given batch-episode
// window and threshold (the Engine's configured values). The returned
// function has the exact incremental fold shape, so fotlint's incpurity
// rule checks its body like any section's Update.
func stateUpdater(batchWindowNS int64, batchThreshold int) func(core.SectionState, *fot.TraceIndex, []int32) (core.SectionState, error) {
	return func(prev core.SectionState, ix *fot.TraceIndex, newRows []int32) (core.SectionState, error) {
		st, _ := prev.(*featureState)
		cols := ix.Cols()
		var next *featureState
		for _, r := range newRows {
			if !fot.Category(cols.Category[r]).IsFailure() {
				continue
			}
			dev := fot.Component(cols.Device[r])
			if dev == fot.Misc {
				continue // manual reports are not detector output (§VII-A rule)
			}
			if next == nil {
				if st != nil {
					next = &featureState{}
					*next = *st // containers absorbed: prev handed off
				} else {
					next = newFeatureState()
				}
			}
			t := cols.TimeNS[r]
			hi := next.hostFor(cols.Host[r])

			// Population + class mix, classified exactly like the batch path.
			code := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
			fatal, ok := next.fatalByCode[code]
			if !ok {
				fatal = fot.IsFatalType(dev, cols.TypeName(cols.TypeSym[r]))
				next.fatalByCode[code] = fatal
			}
			if fatal {
				next.fatalCnt[hi]++
			} else {
				next.warnCnt[hi]++
				next.warnNS[hi] = append(next.warnNS[hi], t)
			}
			next.classCnt[int(hi)*numClasses+int(dev)]++

			// TBF trend bookkeeping.
			if prevT := next.lastNS[hi]; prevT != 0 {
				gap := t - prevT
				next.gapSum[hi] += gap
				next.gapCnt[hi]++
				next.gaps[hi][next.gapPos[hi]] = gap
				next.gapPos[hi] = (next.gapPos[hi] + 1) % gapRing
			}
			next.lastNS[hi] = t

			// Batch-episode window for this failure kind.
			kw := next.kinds[code]
			if kw == nil {
				kw = &kindWin{hosts: make(map[int32]int)}
				next.kinds[code] = kw
			}
			cutoff := t - batchWindowNS
			drop := 0
			for drop < len(kw.events) && kw.events[drop].t < cutoff {
				h := kw.events[drop].hi
				if kw.hosts[h]--; kw.hosts[h] == 0 {
					delete(kw.hosts, h)
				}
				drop++
			}
			kw.events = kw.events[drop:]
			kw.events = append(kw.events, batchEv{t: t, hi: hi})
			kw.hosts[hi]++
			if len(kw.hosts) < batchThreshold/2 {
				kw.alerted = false // episode over; re-arm
			}
			switch {
			case kw.alerted:
				// Episode in progress: members were stamped when it fired;
				// only this arrival needs its membership recorded.
				next.batchNS[hi] = t
			case len(kw.hosts) >= batchThreshold:
				kw.alerted = true
				for _, ev := range kw.events {
					if t > next.batchNS[ev.hi] {
						next.batchNS[ev.hi] = t
					}
				}
			}
		}
		if next == nil {
			if st == nil {
				return newFeatureState(), nil
			}
			return prev, nil
		}
		return next, nil
	}
}

// HostFeatures is one host's feature vector at a fold-time instant, the
// input every Scorer sees and the breakdown /predict/{host} returns.
type HostFeatures struct {
	Host uint64 `json:"host"`
	// Tickets / Warnings / Fatals are the lifetime predictor-eligible
	// populations (failure category, non-Misc device); Warnings+Fatals
	// equals Tickets by construction.
	Tickets  int `json:"tickets"`
	Warnings int `json:"warnings"`
	Fatals   int `json:"fatals"`
	// RecentWarnings counts warnings in [asOf-window, asOf] — inclusive
	// on the left so a lead time of exactly the window still counts,
	// matching the batch §VII-A horizon rule.
	RecentWarnings int     `json:"recent_warnings"`
	WarnRatePerDay float64 `json:"warn_rate_per_day"`
	// TopClass is the component class with the most lifetime tickets on
	// this host (ties break in Table II code order) and its share.
	TopClass      string  `json:"top_class"`
	TopClassShare float64 `json:"top_class_share"`
	// BatchMember reports a batch-episode membership within the window.
	BatchMember bool `json:"batch_member"`
	// TBFTrend is mean(recent gaps)/mean(all gaps): < 1 means failures
	// are accelerating. 0 when fewer than two gaps exist.
	TBFTrend float64 `json:"tbf_trend"`
	// LastEventAgeHours is fold-time minus the host's newest ticket.
	LastEventAgeHours float64 `json:"last_event_age_hours"`
}

// features computes host hi's vector at asOf over the given window. Pure
// read over the state; O(log warnings) thanks to the sorted timeline.
func (st *featureState) features(hi int32, asOfNS, windowNS int64) HostFeatures {
	f := HostFeatures{
		Host:     st.hosts[hi],
		Warnings: int(st.warnCnt[hi]),
		Fatals:   int(st.fatalCnt[hi]),
	}
	f.Tickets = f.Warnings + f.Fatals
	wt := st.warnNS[hi]
	// Window [asOf-W, asOf]: first index with t >= asOf-W.
	lo, _ := slices.BinarySearch(wt, asOfNS-windowNS)
	f.RecentWarnings = len(wt) - lo
	if windowNS > 0 {
		f.WarnRatePerDay = float64(f.RecentWarnings) / (float64(windowNS) / float64(24*60*60*1e9))
	}
	base := int(hi) * numClasses
	best, bestN := 0, uint32(0)
	for c := 1; c < numClasses; c++ {
		if n := st.classCnt[base+c]; n > bestN {
			best, bestN = c, n
		}
	}
	if bestN > 0 {
		f.TopClass = fot.Component(best).String()
		f.TopClassShare = float64(bestN) / float64(f.Tickets)
	}
	f.BatchMember = st.batchNS[hi] >= 0 && st.batchNS[hi] >= asOfNS-windowNS
	if n := int(st.gapCnt[hi]); n > 0 {
		allMean := float64(st.gapSum[hi]) / float64(n)
		k := n
		if k > gapRing {
			k = gapRing
		}
		var recent int64
		for i := 0; i < k; i++ {
			recent += st.gaps[hi][i]
		}
		if allMean > 0 {
			f.TBFTrend = (float64(recent) / float64(k)) / allMean
		}
	}
	if st.lastNS[hi] != 0 {
		f.LastEventAgeHours = float64(asOfNS-st.lastNS[hi]) / float64(60*60*1e9)
	}
	return f
}

// Populations returns every tracked host's lifetime warning/fatal
// populations — the streaming-vs-batch consistency surface: on a frozen
// trace this map must equal mine.WarningFatalPopulations over the same
// index, however the rows were split across epochs.
func (st *featureState) populations() map[uint64]mine.PredictorPopulation {
	out := make(map[uint64]mine.PredictorPopulation, len(st.hosts))
	for hi, host := range st.hosts {
		out[host] = mine.PredictorPopulation{
			Warnings: int(st.warnCnt[hi]),
			Fatals:   int(st.fatalCnt[hi]),
		}
	}
	return out
}

// sigmoid is the logistic link, shared by the calibrated scorer.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
