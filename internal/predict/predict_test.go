package predict

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
)

var (
	once sync.Once
	res  *fms.Result
	gerr error
)

func fixture(t testing.TB) *fms.Result {
	t.Helper()
	once.Do(func() {
		res, gerr = fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 555)
	})
	if gerr != nil {
		t.Fatal(gerr)
	}
	return res
}

// tk builds one synthetic ticket. HDD "SMARTFail" is a warning type,
// "NotReady" a fatal one (fot type catalogue).
func tk(id, host uint64, typ string, at time.Time, cat fot.Category) fot.Ticket {
	return fot.Ticket{
		ID: id, HostID: host, IDC: "dc01", Rack: "r1", Position: 1,
		Device: fot.HDD, Slot: "sda", Type: typ, Time: at,
		Category: cat, ProductLine: "A", DeployTime: at.Add(-365 * 24 * time.Hour),
	}
}

// advanceSchedule folds the trace into an Engine under the given row
// chunking and returns the engine.
func advanceSchedule(t *testing.T, tr *fot.Trace, chunks []int) *Engine {
	t.Helper()
	e := NewEngine(Options{})
	tickets := tr.Tickets
	var prefix []fot.Ticket
	epoch := uint64(0)
	for _, n := range chunks {
		if n > len(tickets)-len(prefix) {
			n = len(tickets) - len(prefix)
		}
		prefix = tickets[:len(prefix)+n]
		epoch++
		e.Advance(fot.BorrowTraceIndex(fot.NewTrace(prefix)), epoch)
	}
	if len(prefix) != len(tickets) {
		epoch++
		e.Advance(fot.BorrowTraceIndex(fot.NewTrace(tickets)), epoch)
	}
	return e
}

func popsEqual(t *testing.T, got, want map[uint64]mine.PredictorPopulation, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hosts tracked, batch says %d", label, len(got), len(want))
	}
	for h, w := range want {
		if g, ok := got[h]; !ok || g != w {
			t.Fatalf("%s: host %d populations %+v, batch says %+v", label, h, got[h], w)
		}
	}
}

// TestConsistencyGate is the streaming-vs-batch satellite: however the
// frozen trace is split across epochs, the streaming per-host
// warning/fatal populations must exactly match the batch §VII-A
// classification, and the totals must match EvaluateWarningPredictorIndexed.
func TestConsistencyGate(t *testing.T) {
	r := fixture(t)
	ix := fot.BorrowTraceIndex(r.Trace)
	want := mine.WarningFatalPopulations(ix)
	if len(want) == 0 {
		t.Fatal("degenerate fixture: no eligible hosts")
	}
	n := len(r.Trace.Tickets)

	rng := rand.New(rand.NewSource(7))
	randomChunks := make([]int, 0, 64)
	for left := n; left > 0; {
		c := 1 + rng.Intn(n/10+1)
		if c > left {
			c = left
		}
		randomChunks = append(randomChunks, c)
		left -= c
	}
	schedules := map[string][]int{
		"one-shot":   {n},
		"halves":     {n / 2, n - n/2},
		"row-by-row": nil, // special-cased below: 200 single-row folds then the rest
		"random":     randomChunks,
	}
	rows := make([]int, 200)
	for i := range rows {
		rows[i] = 1
	}
	schedules["row-by-row"] = append(rows, n-200)

	for name, chunks := range schedules {
		e := advanceSchedule(t, r.Trace, chunks)
		popsEqual(t, e.Populations(), want, name)
	}

	// Totals line up with the batch scorecard's populations.
	eval, err := mine.EvaluateWarningPredictorIndexed(ix, 240*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var warn, fatal int
	for _, p := range want {
		warn += p.Warnings
		fatal += p.Fatals
	}
	if warn != eval.Warnings || fatal != eval.Fatals {
		t.Fatalf("population totals (%d, %d) disagree with batch eval (%d, %d)",
			warn, fatal, eval.Warnings, eval.Fatals)
	}
}

// TestOutOfOrderRebuild hands the engine a batch older than its
// watermark: it must rebuild from the permutation and still match the
// batch populations.
func TestOutOfOrderRebuild(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	late := []fot.Ticket{
		tk(1, 10, "SMARTFail", base.Add(48*time.Hour), fot.Fixing),
		tk(2, 11, "NotReady", base.Add(72*time.Hour), fot.Fixing),
	}
	early := tk(3, 10, "SMARTFail", base, fot.Fixing) // older than the watermark

	e := NewEngine(Options{})
	e.Advance(fot.BorrowTraceIndex(fot.NewTrace(late)), 1)
	if st := e.Stats(); st.Rebuilds != 0 {
		t.Fatalf("in-order fold rebuilt: %+v", st)
	}
	all := append(append([]fot.Ticket{}, late...), early)
	e.Advance(fot.BorrowTraceIndex(fot.NewTrace(all)), 2)
	st := e.Stats()
	if st.Rebuilds != 1 {
		t.Fatalf("out-of-order batch did not rebuild: %+v", st)
	}
	popsEqual(t, e.Populations(),
		mine.WarningFatalPopulations(fot.BorrowTraceIndex(fot.NewTrace(all))), "after rebuild")
	sc, _, ok := e.ScoreHost(10)
	if !ok || sc.Features.Warnings != 2 {
		t.Fatalf("host 10 after rebuild: ok=%v features=%+v", ok, sc.Features)
	}
}

// TestWarningAfterFatal checks ordering: a warning folded after a fatal
// still lands in the warning population and the recent-warning window,
// exactly as the batch classification counts it.
func TestWarningAfterFatal(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tickets := []fot.Ticket{
		tk(1, 5, "NotReady", base, fot.Fixing),                      // fatal first
		tk(2, 5, "SMARTFail", base.Add(24*time.Hour), fot.Fixing),   // then a warning
		tk(3, 5, "SMARTFail", base.Add(48*time.Hour), fot.Error),    // D_error counts too
		tk(4, 5, "SMARTFail", base.Add(72*time.Hour), fot.FalseAlarm), // excluded
	}
	e := advanceSchedule(t, fot.NewTrace(tickets), []int{1, 1, 1, 1})
	sc, _, ok := e.ScoreHost(5)
	if !ok {
		t.Fatal("host untracked")
	}
	f := sc.Features
	if f.Fatals != 1 || f.Warnings != 2 || f.Tickets != 3 {
		t.Fatalf("populations wrong: %+v", f)
	}
	if f.RecentWarnings != 2 {
		t.Fatalf("warnings after the fatal must stay in the window: %+v", f)
	}
}

// TestHorizonBoundary pins the inclusive-left window edge: a warning
// whose age is exactly the window still counts as recent (lead ==
// horizon predicts, per the batch [f-h, f) rule), one nanosecond older
// does not.
func TestHorizonBoundary(t *testing.T) {
	window := 240 * time.Hour
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	boundary := []fot.Ticket{
		tk(1, 7, "SMARTFail", base, fot.Fixing),
		tk(2, 7, "NotReady", base.Add(window), fot.Fixing), // lead == horizon
	}
	e := advanceSchedule(t, fot.NewTrace(boundary), []int{2})
	sc, _, ok := e.ScoreHost(7)
	if !ok || sc.Features.RecentWarnings != 1 {
		t.Fatalf("lead == horizon must count: ok=%v %+v", ok, sc.Features)
	}

	past := []fot.Ticket{
		tk(1, 7, "SMARTFail", base, fot.Fixing),
		tk(2, 7, "NotReady", base.Add(window).Add(time.Nanosecond), fot.Fixing),
	}
	e = advanceSchedule(t, fot.NewTrace(past), []int{2})
	sc, _, ok = e.ScoreHost(7)
	if !ok || sc.Features.RecentWarnings != 0 {
		t.Fatalf("lead just past horizon must not count: ok=%v %+v", ok, sc.Features)
	}
}

// TestWarningsNoFatals: a host with only warnings is tracked, scored,
// and carries a zero fatal population.
func TestWarningsNoFatals(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tickets := []fot.Ticket{
		tk(1, 9, "SMARTFail", base, fot.Fixing),
		tk(2, 9, "SMARTFail", base.Add(time.Hour), fot.Fixing),
	}
	e := advanceSchedule(t, fot.NewTrace(tickets), []int{2})
	sc, _, ok := e.ScoreHost(9)
	if !ok {
		t.Fatal("warning-only host must be tracked")
	}
	if sc.Features.Fatals != 0 || sc.Features.Warnings != 2 {
		t.Fatalf("populations wrong: %+v", sc.Features)
	}
	if sc.Score <= 0 || sc.Score >= 1 {
		t.Fatalf("logistic score out of (0,1): %v", sc.Score)
	}
	ranked, _ := e.AtRisk(10)
	if len(ranked) != 1 || ranked[0].Host != 9 {
		t.Fatalf("atrisk missing the host: %+v", ranked)
	}
}

// TestAtRiskDeterministicTieBreak: equal scores order by ascending host.
func TestAtRiskDeterministicTieBreak(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var tickets []fot.Ticket
	for i, h := range []uint64{42, 17, 99, 3} {
		tickets = append(tickets, tk(uint64(i+1), h, "SMARTFail", base.Add(time.Duration(i)*time.Minute), fot.Fixing))
	}
	e := advanceSchedule(t, fot.NewTrace(tickets), []int{len(tickets)})
	ranked, _ := e.AtRisk(0)
	if len(ranked) != 4 {
		t.Fatalf("want 4 hosts, got %d", len(ranked))
	}
	// The last arrival has the freshest event (lower staleness decay), so
	// scores differ slightly; verify global order is (score desc, host asc).
	for i := 1; i < len(ranked); i++ {
		a, b := ranked[i-1], ranked[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Host > b.Host) {
			t.Fatalf("order violated at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestConcurrentScoreVsFold exercises the read/fold race under -race:
// scores and rankings run against the engine while epochs advance.
func TestConcurrentScoreVsFold(t *testing.T) {
	r := fixture(t)
	tickets := r.Trace.Tickets
	if len(tickets) > 4000 {
		tickets = tickets[:4000]
	}
	e := NewEngine(Options{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(2) == 0 {
					e.ScoreHost(tickets[rng.Intn(len(tickets))].HostID)
				} else {
					e.AtRisk(5)
				}
				e.Stats()
			}
		}(int64(w))
	}
	step := 200
	for n := step; n <= len(tickets); n += step {
		e.Advance(fot.BorrowTraceIndex(fot.NewTrace(tickets[:n])), uint64(n/step))
	}
	close(stop)
	wg.Wait()
	popsEqual(t, e.Populations(),
		mine.WarningFatalPopulations(fot.BorrowTraceIndex(fot.NewTrace(tickets[:len(tickets)/step*step]))),
		"after concurrent folds")
}

// TestEvaluateHarness runs the full DC-Prophet-style loop on tiny
// simulated fleets: two variants, one train seed, three held-out seeds,
// two horizons — and checks shape and metric sanity.
func TestEvaluateHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-fleet evaluation")
	}
	mk := func(seed int64) EvalTrace {
		r, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		return EvalTrace{Name: "seed-" + string(rune('0'+seed)), Ix: fot.BorrowTraceIndex(r.Trace)}
	}
	train := mk(1)
	held := []EvalTrace{mk(2), mk(3), mk(4)}
	cfg := EvalConfig{Horizons: []time.Duration{120 * time.Hour, 240 * time.Hour}, Cuts: 4}
	rep, err := Evaluate(train, held, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 /*variants*/ * 2 /*horizons*/ * (1 + len(held))
	if len(rep.Results) != wantRows {
		t.Fatalf("want %d result rows, got %d", wantRows, len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.TP+r.FN == 0 {
			t.Fatalf("row %+v has no actual positives — degenerate cut placement", r)
		}
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("metrics out of range: %+v", r)
		}
	}
	// The calibrated logistic variant should not lose to the raw warning
	// baseline on F1 pooled across every held-out row.
	sum := map[string]float64{}
	for _, r := range rep.Results {
		if r.Trace != train.Name+" (train)" {
			sum[r.Variant] += r.F1
		}
	}
	t.Logf("held-out F1 sums: %v", sum)
	if sum["logistic"] < sum["warning-baseline"]*0.9 {
		t.Errorf("logistic F1 %.3f far below baseline %.3f", sum["logistic"], sum["warning-baseline"])
	}
}
