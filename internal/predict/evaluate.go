package predict

import (
	"fmt"
	"io"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fot"
)

// EvalTrace is one named trace for the evaluation harness (the name is a
// seed label in the report tables).
type EvalTrace struct {
	Name string
	Ix   *fot.TraceIndex
}

// EvalConfig tunes the DC-Prophet-style evaluation. Zero values default.
type EvalConfig struct {
	// Horizons are the prediction horizons H: at each cut instant T a
	// host is an actual positive iff it has a predictor-eligible fatal
	// in (T, T+H]. The feature window equals the horizon. Default
	// {120h, 240h}.
	Horizons []time.Duration
	// Cuts is how many evaluation instants are spread across each
	// trace's failure span (first quarter skipped as warm-up, last
	// horizon reserved for labels). Default 6.
	Cuts int
	// BatchWindow / BatchThreshold configure the streaming fold exactly
	// like Options. Defaults 3h / 20.
	BatchWindow    time.Duration
	BatchThreshold int
	// Grid is the threshold grid fitted on the training trace; the
	// lowest F1-maximizing value wins (deterministic). Default
	// 0.05, 0.10, ..., 0.95.
	Grid []float64
}

func (c EvalConfig) withDefaults() EvalConfig {
	if len(c.Horizons) == 0 {
		c.Horizons = []time.Duration{120 * time.Hour, 240 * time.Hour}
	}
	if c.Cuts <= 0 {
		c.Cuts = 6
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 3 * time.Hour
	}
	if c.BatchThreshold < 2 {
		c.BatchThreshold = 20
	}
	if len(c.Grid) == 0 {
		for i := 1; i <= 19; i++ {
			c.Grid = append(c.Grid, float64(i)*0.05)
		}
	}
	return c
}

// VariantScore is one (variant, trace, horizon) row of the comparison
// table: pooled confusion counts over every cut instant plus the derived
// precision/recall/F-score.
type VariantScore struct {
	Variant   string        `json:"variant"`
	Trace     string        `json:"trace"`
	Horizon   time.Duration `json:"horizon"`
	Threshold float64       `json:"threshold"`
	Cuts      int           `json:"cuts"`
	TP        int           `json:"tp"`
	FP        int           `json:"fp"`
	FN        int           `json:"fn"`
	Precision float64       `json:"precision"`
	Recall    float64       `json:"recall"`
	F1        float64       `json:"f1"`
}

// EvalReport is the harness output: thresholds fitted on the training
// trace, then every variant scored on the training trace (reference) and
// each held-out trace, per horizon.
type EvalReport struct {
	Train    string         `json:"train"`
	Held     []string       `json:"held"`
	Variants []string       `json:"variants"`
	Results  []VariantScore `json:"results"`
}

// sample is one (host, cut) scoring decision: the variant's score and
// whether the host actually failed within the horizon after the cut.
type sample struct {
	score float64
	pos   bool
}

// cutSamples is one trace replayed under one horizon: per-variant score
// samples over every (tracked host, cut) pair, plus the actual positives
// the tracker had never seen at cut time (always false negatives).
type cutSamples struct {
	perScorer [][]sample
	missed    int
	cuts      int
}

// collect replays one trace through the streaming fold function, pausing
// at each cut instant to score every tracked host with every variant.
// The replay IS the production path: the same stateUpdater fold over
// row batches in global time order, features read at the cut instant.
func collect(ix *fot.TraceIndex, horizonNS int64, cfg EvalConfig, scorers []Scorer) (*cutSamples, error) {
	if ix == nil || ix.Len() == 0 {
		return nil, fmt.Errorf("predict: empty trace")
	}
	cols := ix.Cols()

	// Eligible rows in global time order, plus per-host fatal timelines
	// for labeling. fatalHosts keeps first-seen (time) order so the
	// missed-positive scan is deterministic.
	fatalByCode := make(map[uint64]bool)
	var elig []int32
	hostFatal := make(map[uint64][]int64)
	var fatalHosts []uint64
	for _, r := range ix.TimePerm() {
		if !fot.Category(cols.Category[r]).IsFailure() {
			continue
		}
		dev := fot.Component(cols.Device[r])
		if dev == fot.Misc {
			continue
		}
		elig = append(elig, r)
		code := uint64(cols.Device[r])<<32 | uint64(cols.TypeSym[r])
		fatal, ok := fatalByCode[code]
		if !ok {
			fatal = fot.IsFatalType(dev, cols.TypeName(cols.TypeSym[r]))
			fatalByCode[code] = fatal
		}
		if fatal {
			h := cols.Host[r]
			if _, seen := hostFatal[h]; !seen {
				fatalHosts = append(fatalHosts, h)
			}
			hostFatal[h] = append(hostFatal[h], cols.TimeNS[r])
		}
	}
	if len(elig) == 0 {
		return nil, fmt.Errorf("predict: no predictor-eligible tickets")
	}
	loNS := cols.TimeNS[elig[0]]
	hiNS := cols.TimeNS[elig[len(elig)-1]]

	// Cut instants: skip the first quarter (cold state scores nothing
	// useful), and leave one horizon of trailing trace so every cut's
	// label window is fully observed.
	start := loNS + (hiNS-loNS)/4
	end := hiNS - horizonNS
	if end < start {
		end = start
	}
	var instants []int64
	if cfg.Cuts == 1 || end == start {
		instants = []int64{start}
	} else {
		step := (end - start) / int64(cfg.Cuts-1)
		for i := 0; i < cfg.Cuts; i++ {
			t := start + int64(i)*step
			if len(instants) == 0 || t > instants[len(instants)-1] {
				instants = append(instants, t)
			}
		}
	}

	update := stateUpdater(int64(cfg.BatchWindow), cfg.BatchThreshold)
	out := &cutSamples{perScorer: make([][]sample, len(scorers)), cuts: len(instants)}
	var state core.SectionState
	pos := 0
	for _, T := range instants {
		// Fold everything up to and including T — one batch per cut, the
		// same shape a serve epoch advance would hand the engine.
		batchEnd := pos
		for batchEnd < len(elig) && cols.TimeNS[elig[batchEnd]] <= T {
			batchEnd++
		}
		if batchEnd > pos {
			next, err := update(state, ix, elig[pos:batchEnd])
			if err != nil {
				return nil, err
			}
			state = next
			pos = batchEnd
		}
		st, _ := state.(*featureState)

		hasFatalAfter := func(h uint64, t int64) bool {
			ft := hostFatal[h]
			for _, f := range ft {
				if f > t {
					return f <= t+horizonNS
				}
			}
			return false
		}
		if st != nil {
			for hi := range st.hosts {
				f := st.features(int32(hi), T, horizonNS)
				label := hasFatalAfter(f.Host, T)
				for si, sc := range scorers {
					out.perScorer[si] = append(out.perScorer[si], sample{score: sc.Score(&f), pos: label})
				}
			}
		}
		// Actual positives the tracker has never seen: no features to
		// score, so every variant misses them (false negatives).
		for _, h := range fatalHosts {
			if st != nil {
				if _, tracked := st.hostIdx[h]; tracked {
					continue
				}
			}
			if hasFatalAfter(h, T) {
				out.missed++
			}
		}
	}
	return out, nil
}

// confusion thresholds one variant's samples into pooled counts.
func confusion(samples []sample, missed int, threshold float64) (tp, fp, fn int) {
	for _, s := range samples {
		switch {
		case s.score >= threshold && s.pos:
			tp++
		case s.score >= threshold:
			fp++
		case s.pos:
			fn++
		}
	}
	return tp, fp, fn + missed
}

func prf(tp, fp, fn int) (p, r, f1 float64) {
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1
}

// fitThreshold sweeps the grid on the training samples and returns the
// lowest threshold maximizing F1 — deterministic for every input.
func fitThreshold(samples []sample, missed int, grid []float64) float64 {
	best, bestF1 := grid[0], -1.0
	for _, th := range grid {
		_, _, f1 := prf(confusion(samples, missed, th))
		if f1 > bestF1 {
			best, bestF1 = th, f1
		}
	}
	return best
}

// Evaluate runs the DC-Prophet-style harness: fit each variant's
// decision threshold on the training trace, then score the training
// trace (reference row) and every held-out trace at every horizon.
// Row order is deterministic: horizon, then train + held trace order,
// then variant order.
func Evaluate(train EvalTrace, held []EvalTrace, scorers []Scorer, cfg EvalConfig) (*EvalReport, error) {
	if len(scorers) == 0 {
		scorers = []Scorer{DefaultLogistic(), WarningScorer{}}
	}
	cfg = cfg.withDefaults()
	rep := &EvalReport{Train: train.Name}
	for _, h := range held {
		rep.Held = append(rep.Held, h.Name)
	}
	for _, s := range scorers {
		rep.Variants = append(rep.Variants, s.Name())
	}
	for _, horizon := range cfg.Horizons {
		horizonNS := int64(horizon)
		trainCS, err := collect(train.Ix, horizonNS, cfg, scorers)
		if err != nil {
			return nil, fmt.Errorf("train %s: %w", train.Name, err)
		}
		thresholds := make([]float64, len(scorers))
		for si := range scorers {
			thresholds[si] = fitThreshold(trainCS.perScorer[si], trainCS.missed, cfg.Grid)
		}
		score := func(name string, cs *cutSamples) {
			for si, sc := range scorers {
				tp, fp, fn := confusion(cs.perScorer[si], cs.missed, thresholds[si])
				p, r, f1 := prf(tp, fp, fn)
				rep.Results = append(rep.Results, VariantScore{
					Variant: sc.Name(), Trace: name, Horizon: horizon,
					Threshold: thresholds[si], Cuts: cs.cuts,
					TP: tp, FP: fp, FN: fn,
					Precision: p, Recall: r, F1: f1,
				})
			}
		}
		score(train.Name+" (train)", trainCS)
		for _, ht := range held {
			cs, err := collect(ht.Ix, horizonNS, cfg, scorers)
			if err != nil {
				return nil, fmt.Errorf("held %s: %w", ht.Name, err)
			}
			score(ht.Name, cs)
		}
	}
	return rep, nil
}

// WriteReport renders the comparison table as fixed-width text, the
// fotmine -eval-predictor output.
func WriteReport(w io.Writer, rep *EvalReport) error {
	if _, err := fmt.Fprintf(w, "Predictor evaluation — train %s, held-out %d trace(s)\n\n", rep.Train, len(rep.Held)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-18s %-16s %8s %6s %5s %5s %5s %5s %7s %7s %7s\n",
		"variant", "trace", "horizon", "thresh", "cuts", "TP", "FP", "FN", "prec", "recall", "F1"); err != nil {
		return err
	}
	for _, r := range rep.Results {
		if _, err := fmt.Fprintf(w, "%-18s %-16s %8s %6.2f %5d %5d %5d %5d %7.3f %7.3f %7.3f\n",
			r.Variant, r.Trace, r.Horizon, r.Threshold, r.Cuts, r.TP, r.FP, r.FN,
			r.Precision, r.Recall, r.F1); err != nil {
			return err
		}
	}
	return nil
}
