// Package serve is the live analytics service behind cmd/fotqueryd: it
// tails a ticket source (an fmsd archive directory, a collector
// subscription, or a frozen trace) and keeps the paper's full statistics
// warm and queryable over HTTP while tickets stream in.
//
// Three pieces:
//
//   - State: an epoch-based copy-on-append snapshot model over
//     fot.TraceIndex — one ingest goroutine folds ticket batches into
//     the next epoch; readers always see an immutable, self-consistent
//     index (every section of one response is computed from the same
//     ticket prefix).
//   - A per-epoch result cache keyed by section id: repeated queries for
//     Tables I–VIII / Figs. 2–11 / hypotheses / trend are served from
//     memory; an epoch advance abandons the cache wholesale, and stale
//     sections are recomputed in parallel through core.Runner over
//     report.StandardSections.
//   - An HTTP (JSON + text) API: /report, /report/{section},
//     /hosts/{id}, /alerts, /healthz and /stats, with per-request
//     timeouts, bounded concurrency and graceful drain.
package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/predict"
)

// Options configures a Daemon. The zero value of every field has a
// usable default except Census, which the report sections need.
type Options struct {
	// Census is the asset view the population-normalized sections
	// (Fig. 6, Table IV, Fig. 8, verdicts) join against.
	Census *core.Census
	// Workers caps parallel section recomputation; <= 0 means one per
	// CPU.
	Workers int
	// FoldInterval is how often buffered tickets are folded into a new
	// epoch (default 200ms). Folding is cheap; the interval exists so a
	// steady trickle of tickets does not invalidate the section cache
	// on every single ticket.
	FoldInterval time.Duration
	// FoldBatch folds early once this many tickets are pending
	// (default 8192).
	FoldBatch int
	// MaxConcurrent bounds in-flight HTTP requests (default 64).
	MaxConcurrent int
	// RequestTimeout bounds one request end to end (default 30s).
	RequestTimeout time.Duration
	// AlertWindow / AlertThreshold tune the streaming batch detector
	// feeding /alerts (defaults: mine.NewBatchDetector's 3h / 20).
	AlertWindow    time.Duration
	AlertThreshold int
	// SourceDrops, when set, is surfaced in /stats as the ingest
	// source's drop counter (e.g. fmsnet.TicketSub.Dropped). The daemon
	// tracks a high-water mark over the probe, so the exported counter is
	// monotonic even if the source is swapped or reset underneath it.
	SourceDrops func() uint64
	// DegradedAfter is the source-lag threshold for /healthz: when the
	// oldest pending (unfolded) ticket — or, with a lag probe installed,
	// the replication stream — has been waiting longer than this, the
	// endpoint reports status "degraded" with 503 so a router can fail
	// over. 0 disables lag-based degradation (always "ok" while the
	// ingest loop is healthy).
	DegradedAfter time.Duration
	// Now supplies fold timestamps and /stats lag measurements (nil
	// means time.Now), mirroring fmsnet.CollectorOptions.Now: inject a
	// fake clock to make fold timing and ingest lag deterministic in
	// tests.
	Now func() time.Time
	// Predict, when set, configures the streaming risk-scoring engine
	// behind /predict/{host} and /atrisk (nil keeps predict.Options
	// defaults: 240h window, logistic scorer).
	Predict *predict.Options
}

// maxAlerts caps the /alerts ring buffer.
const maxAlerts = 256

// Daemon is the live query service: ingest loop + HTTP handlers around
// one State.
type Daemon struct {
	opts  Options
	state *State
	now   func() time.Time

	detMu    sync.Mutex
	detector *mine.BatchDetector
	alerts   []mine.BatchAlert
	alertN   uint64 // lifetime count (ring may have evicted)

	pending   atomic.Int64
	ingested  atomic.Uint64
	drained   atomic.Bool
	ingestErr atomic.Pointer[string]
	dropsHW   atomic.Uint64 // high-water mark over Options.SourceDrops
	lagProbe  atomic.Pointer[func() time.Duration]

	ingestCancel context.CancelFunc
	ingestDone   chan struct{}

	sem     chan struct{}
	handler http.Handler
	srv     *http.Server
}

// New builds a daemon over an empty epoch-0 state. Start ingestion with
// StartIngest, then serve HTTP via Serve/ListenAndServe or wire
// Handler() into a server of your own.
func New(opts Options) *Daemon {
	if opts.FoldInterval <= 0 {
		opts.FoldInterval = 200 * time.Millisecond
	}
	if opts.FoldBatch <= 0 {
		opts.FoldBatch = 8192
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 64
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	d := &Daemon{
		opts:     opts,
		state:    NewState(opts.Census, opts.Workers),
		now:      opts.Now,
		detector: mine.NewBatchDetector(opts.AlertWindow, opts.AlertThreshold),
		sem:      make(chan struct{}, opts.MaxConcurrent),
	}
	if d.now == nil {
		//lint:ignore walltime injection-point default; Options.Now overrides the clock for deterministic fold timing
		d.now = time.Now
	}
	if opts.Predict != nil {
		d.state.SetPredictor(*opts.Predict)
	}
	d.handler = d.buildHandler()
	return d
}

// State exposes the underlying snapshot state (tests, embedders).
func (d *Daemon) State() *State { return d.state }

// SetLagProbe overrides the /healthz lag measurement with an external
// source — a replica daemon installs its syncer's replication lag here,
// so "behind the primary" degrades health exactly like "behind the
// ingest queue" does on a primary. Safe to call after New, before or
// while serving.
func (d *Daemon) SetLagProbe(probe func() time.Duration) {
	d.lagProbe.Store(&probe)
}

// lag reports how far behind the daemon's published state is: the
// installed lag probe if any, else how long the oldest pending (unfolded)
// ticket has been waiting.
func (d *Daemon) lag() time.Duration {
	if p := d.lagProbe.Load(); p != nil {
		return (*p)()
	}
	snap := d.state.Current()
	if d.pending.Load() > 0 && !snap.FoldedAt().IsZero() {
		return d.now().Sub(snap.FoldedAt())
	}
	return 0
}

// sourceDrops returns the monotonic high-water mark over the configured
// drop probe. A probe that goes backwards (source swap, reset) can never
// make the exported counter regress.
func (d *Daemon) sourceDrops() uint64 {
	if d.opts.SourceDrops == nil {
		return d.dropsHW.Load()
	}
	v := d.opts.SourceDrops()
	for {
		cur := d.dropsHW.Load()
		if v <= cur {
			return cur
		}
		if d.dropsHW.CompareAndSwap(cur, v) {
			return v
		}
	}
}

// Drained reports whether a finite ingest source has been fully folded.
func (d *Daemon) Drained() bool { return d.drained.Load() }

// StartIngest launches the ingest goroutine: it pulls batches from src,
// feeds the streaming batch detector, and folds pending tickets into a
// new epoch every FoldInterval (or sooner at FoldBatch). Call once;
// Shutdown stops it.
func (d *Daemon) StartIngest(src TicketSource) {
	ctx, cancel := context.WithCancel(context.Background())
	d.ingestCancel = cancel
	d.ingestDone = make(chan struct{})
	go d.ingest(ctx, src)
}

// pollResult is one pump delivery: a batch and/or a terminal error.
type pollResult struct {
	batch []fot.Ticket
	err   error
}

func (d *Daemon) ingest(ctx context.Context, src TicketSource) {
	defer close(d.ingestDone)

	// The pump turns the blocking Poll into a channel the fold loop can
	// select against alongside its ticker.
	pump := make(chan pollResult)
	go func() {
		defer close(pump)
		for {
			batch, err := src.Poll(ctx)
			select {
			case pump <- pollResult{batch: batch, err: err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()

	var pending []fot.Ticket
	fold := func() {
		if len(pending) == 0 {
			return
		}
		d.state.Fold(pending, d.now())
		d.ingested.Add(uint64(len(pending)))
		pending = nil
		d.pending.Store(0)
	}
	observe := func(batch []fot.Ticket) {
		d.detMu.Lock()
		defer d.detMu.Unlock()
		for _, t := range batch {
			if a := d.detector.Observe(t); a != nil {
				d.alertN++
				d.alerts = append(d.alerts, *a)
				if len(d.alerts) > maxAlerts {
					d.alerts = d.alerts[len(d.alerts)-maxAlerts:]
				}
			}
		}
	}

	ticker := time.NewTicker(d.opts.FoldInterval)
	defer ticker.Stop()
	for {
		select {
		case res, ok := <-pump:
			if !ok {
				fold()
				return
			}
			if len(res.batch) > 0 {
				observe(res.batch)
				pending = append(pending, res.batch...)
				d.pending.Store(int64(len(pending)))
			}
			if res.err != nil {
				fold()
				switch {
				case errors.Is(res.err, io.EOF):
					d.drained.Store(true)
				case errors.Is(res.err, context.Canceled):
					// Shutdown path, not a source failure.
				default:
					msg := res.err.Error()
					d.ingestErr.Store(&msg)
				}
				return
			}
			if len(pending) >= d.opts.FoldBatch {
				fold()
			}
		case <-ticker.C:
			fold()
		case <-ctx.Done():
			fold()
			return
		}
	}
}

// Alerts returns the recent batch alerts (newest last) and the lifetime
// alert count.
func (d *Daemon) Alerts() ([]mine.BatchAlert, uint64) {
	d.detMu.Lock()
	defer d.detMu.Unlock()
	out := make([]mine.BatchAlert, len(d.alerts))
	copy(out, d.alerts)
	return out, d.alertN
}

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (d *Daemon) Serve(ln net.Listener) error {
	d.srv = &http.Server{
		Handler:           d.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return d.srv.Serve(ln)
}

// ListenAndServe binds addr and serves until Shutdown.
func (d *Daemon) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return d.Serve(ln)
}

// Shutdown stops ingestion (folding whatever is pending), then drains
// the HTTP server gracefully: in-flight requests finish, new ones are
// refused.
func (d *Daemon) Shutdown(ctx context.Context) error {
	if d.ingestCancel != nil {
		d.ingestCancel()
		select {
		case <-d.ingestDone:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if d.srv != nil {
		return d.srv.Shutdown(ctx)
	}
	return nil
}
