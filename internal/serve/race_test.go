package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/report"
)

// TestConcurrentQueryVsIngest hammers every endpoint while the ingest
// goroutine folds epochs as fast as it can. Run under -race (tier2) this
// is the epoch model's safety proof; the assertions additionally pin the
// reader-visible invariants:
//
//   - a reader never observes a partially folded epoch: X-Tickets only
//     ever takes values that were published fold points, and both
//     sections of one response agree on it;
//   - epochs observed by one client are monotonically non-decreasing;
//   - the cache never serves a section from a previous epoch after the
//     epoch advances (checked by re-rendering a sample against the
//     serial reference for exactly the claimed prefix).
func TestConcurrentQueryVsIngest(t *testing.T) {
	trace, census := smallWorld(t)
	d := New(Options{Census: census, FoldInterval: time.Millisecond, FoldBatch: 128})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Record every published fold point so readers can be checked
	// against the set of legal ticket counts.
	foldPoints := make(map[int]bool)
	var foldMu sync.Mutex
	src := &recordingSource{inner: FromTrace(trace, 173), onBatch: func(total int) {
		foldMu.Lock()
		foldPoints[total] = true
		foldMu.Unlock()
	}}
	d.StartIngest(src)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// close broadcasts to every reader; a shared time.After channel
	// would release only one of them.
	stop := make(chan struct{})
	time.AfterFunc(2*time.Second, func() { close(stop) })

	// Readers: light two-section reports, section endpoint, stats,
	// hosts, alerts.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 4 {
				case 0:
					resp, err := srv.Client().Get(srv.URL + "/report?sections=table1,table2")
					if err != nil {
						errs <- err
						return
					}
					epoch, _ := strconv.ParseUint(resp.Header.Get("X-Epoch"), 10, 64)
					n, _ := strconv.Atoi(resp.Header.Get("X-Tickets"))
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK && n > 0 {
						foldMu.Lock()
						legal := foldPoints[n]
						foldMu.Unlock()
						if !legal {
							errs <- fmt.Errorf("reader saw %d tickets, which was never a fold point", n)
							return
						}
					}
					if epoch < lastEpoch {
						errs <- fmt.Errorf("epoch went backwards: %d after %d", epoch, lastEpoch)
						return
					}
					lastEpoch = epoch
				case 1:
					resp, err := srv.Client().Get(srv.URL + "/stats")
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				case 2:
					resp, err := srv.Client().Get(srv.URL + "/report/table1")
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				case 3:
					resp, err := srv.Client().Get(srv.URL + fmt.Sprintf("/hosts/%d", trace.Tickets[g].HostID))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles: the final epoch serves the full trace,
	// byte-identical to the serial reference (no stale cache survived
	// the concurrent folds).
	waitDrained(t, d)
	resp, body := get(t, srv, "/report?sections=table2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final /report status %d", resp.StatusCode)
	}
	var want bytes.Buffer
	if err := report.SerialReference(&want, fot.NewTrace(trace.Tickets), census, func(id string) bool { return id == "table2" }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatal("final table2 differs from serial reference — stale cache after epoch advances")
	}
}

// recordingSource wraps a TicketSource and records the cumulative ticket
// count after each delivered batch. The fold loop always folds all
// pending tickets at once and pending only grows by whole Poll batches,
// so every publishable fold point is one of these cumulative counts —
// the recorded set is a superset of the fold points actually published,
// which is what the never-a-torn-prefix check needs. Recording happens
// in Poll, strictly before the batch can reach the fold loop, so a
// legal count is always in the set before a reader can observe it.
type recordingSource struct {
	inner   TicketSource
	total   int
	onBatch func(total int)
}

func (s *recordingSource) Poll(ctx context.Context) ([]fot.Ticket, error) {
	batch, err := s.inner.Poll(ctx)
	if len(batch) > 0 {
		s.total += len(batch)
		s.onBatch(s.total)
	}
	return batch, err
}
