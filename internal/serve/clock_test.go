package serve

import (
	"context"
	"testing"
	"time"
)

// TestInjectedClockMakesFoldTimingDeterministic locks in the serve
// daemon's clock injection (Options.Now): every epoch the ingest loop
// publishes is stamped by the injected clock, not the wall clock, so
// fold timing is exactly reproducible in tests — the same contract the
// collector has had since PR 1.
func TestInjectedClockMakesFoldTimingDeterministic(t *testing.T) {
	trace, census := smallWorld(t)
	fake := time.Date(2017, 6, 26, 12, 0, 0, 0, time.UTC)

	d := New(Options{
		Census: census,
		Now:    func() time.Time { return fake },
		// A long interval proves the stamp comes from the injection at
		// fold time, not from ticker arithmetic.
		FoldInterval: time.Hour,
	})
	d.StartIngest(FromTrace(trace, 0))
	waitDrained(t, d)
	defer d.Shutdown(context.Background())

	snap := d.State().Current()
	if snap.Tickets() != trace.Len() {
		t.Fatalf("folded %d tickets, want %d", snap.Tickets(), trace.Len())
	}
	if !snap.FoldedAt().Equal(fake) {
		t.Fatalf("FoldedAt = %v, want the injected clock's %v", snap.FoldedAt(), fake)
	}
}
