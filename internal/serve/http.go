package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/predict"
)

// Handler returns the daemon's HTTP handler: the API mux wrapped in the
// bounded-concurrency gate and the per-request timeout. Useful for
// embedding the daemon in an existing server or an httptest.Server.
func (d *Daemon) Handler() http.Handler { return d.handler }

func (d *Daemon) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", d.handleStats)
	mux.HandleFunc("GET /report", d.handleReport)
	mux.HandleFunc("GET /report/{section}", d.handleSection)
	mux.HandleFunc("GET /hosts/{id}", d.handleHost)
	mux.HandleFunc("GET /alerts", d.handleAlerts)
	mux.HandleFunc("GET /predict/{host}", d.handlePredict)
	mux.HandleFunc("GET /atrisk", d.handleAtRisk)
	limited := d.limitConcurrency(mux)
	// /healthz deliberately bypasses the concurrency gate: a health probe
	// must report whether the process is alive and fresh, not whether the
	// query queue happens to be deep. A probe that queues behind slow
	// reports makes a saturated-but-healthy replica look dead, and a
	// router that believes it amplifies the very stampede that caused the
	// queue (observed in the chaos harness before this split).
	outer := http.NewServeMux()
	outer.HandleFunc("GET /healthz", d.handleHealthz)
	outer.Handle("/", limited)
	return http.TimeoutHandler(outer, d.opts.RequestTimeout, "request timed out\n")
}

// limitConcurrency admits at most MaxConcurrent requests at once;
// excess requests wait for a slot until the client gives up.
func (d *Daemon) limitConcurrency(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case d.sem <- struct{}{}:
			defer func() { <-d.sem }()
			next.ServeHTTP(w, r)
		case <-r.Context().Done():
			http.Error(w, "server saturated", http.StatusServiceUnavailable)
		}
	})
}

// HealthReply is the /healthz JSON body. Status is "ok" (HTTP 200) or
// "degraded" (HTTP 503 with Reason set): the source lag exceeded
// Options.DegradedAfter or the ingest loop died — the failover signal
// cmd/fotrouter keys on. Epoch rides along so one probe tells a router
// both "is it healthy" and "how fresh is it".
type HealthReply struct {
	Status  string `json:"status"`
	Epoch   uint64 `json:"epoch"`
	Tickets int    `json:"tickets"`
	LagMS   int64  `json:"lag_ms"`
	Reason  string `json:"reason,omitempty"`
}

// HealthOK and HealthDegraded are the HealthReply.Status values.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := d.state.Current()
	lag := d.lag()
	reply := HealthReply{
		Status:  HealthOK,
		Epoch:   snap.Epoch(),
		Tickets: snap.Tickets(),
		LagMS:   lag.Milliseconds(),
	}
	if msg := d.ingestErr.Load(); msg != nil {
		reply.Status = HealthDegraded
		reply.Reason = "ingest failed: " + *msg
	} else if limit := d.opts.DegradedAfter; limit > 0 && lag > limit {
		reply.Status = HealthDegraded
		reply.Reason = fmt.Sprintf("source lag %dms exceeds %dms", reply.LagMS, limit.Milliseconds())
	}
	if reply.Status != HealthOK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, reply)
}

// StatsReply is the /stats JSON body.
type StatsReply struct {
	Epoch    uint64 `json:"epoch"`
	Tickets  int    `json:"tickets"`
	Ingested uint64 `json:"ingested"`
	Pending  int64  `json:"pending"`
	Drained  bool   `json:"drained"`
	// LastFold is when the current epoch was published (zero before the
	// first fold); IngestLagMS is how long the oldest pending (not yet
	// folded) state has been waiting — 0 when nothing is pending.
	LastFold    time.Time `json:"last_fold"`
	IngestLagMS int64     `json:"ingest_lag_ms"`
	CacheHits   uint64    `json:"cache_hits"`
	CacheMisses uint64    `json:"cache_misses"`
	// CacheWaits counts readers that piggybacked on another request's
	// in-flight render — neither a hit (they blocked) nor a miss (the
	// renderer already counted the compute).
	CacheWaits uint64  `json:"cache_waits"`
	CacheRate  float64 `json:"cache_hit_rate"`
	// Incremental render accounting: per-section counts of cache misses
	// served from carried fold state vs the full recompute, plus engine
	// health (fold epoch, rebuilds after out-of-order ingest, sections
	// permanently on the full path).
	IncSections map[string]SectionRenderStats `json:"incremental_sections"`
	IncEpoch    uint64                        `json:"incremental_epoch"`
	IncRebuilds uint64                        `json:"incremental_rebuilds"`
	IncBroken   []string                      `json:"incremental_broken,omitempty"`
	Alerts      uint64                        `json:"alerts"`
	SourceDrops uint64                        `json:"source_drops"`
	IngestError string                        `json:"ingest_error,omitempty"`
	// Predict is the streaming risk-scoring engine's health: hosts
	// tracked, scores served, cumulative fold cost, rebuilds.
	Predict predict.EngineStats `json:"predict"`
}

func (d *Daemon) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := d.state.Current()
	hits, misses, cacheWaits := d.state.CacheStats()
	secStats, engineStats := d.state.IncrementalStats()
	_, alertN := d.Alerts()
	reply := StatsReply{
		Epoch:       snap.Epoch(),
		Tickets:     snap.Tickets(),
		Ingested:    d.ingested.Load(),
		Pending:     d.pending.Load(),
		Drained:     d.drained.Load(),
		LastFold:    snap.FoldedAt(),
		CacheHits:   hits,
		CacheMisses: misses,
		CacheWaits:  cacheWaits,
		IncSections: secStats,
		IncEpoch:    engineStats.Epoch,
		IncRebuilds: engineStats.Rebuilds,
		IncBroken:   engineStats.Broken,
		Alerts:      alertN,
		Predict:     d.state.Predictor().Stats(),
	}
	if total := hits + misses; total > 0 {
		reply.CacheRate = float64(hits) / float64(total)
	}
	if reply.Pending > 0 && !snap.FoldedAt().IsZero() {
		reply.IngestLagMS = d.now().Sub(snap.FoldedAt()).Milliseconds()
	}
	reply.SourceDrops = d.sourceDrops()
	if msg := d.ingestErr.Load(); msg != nil {
		reply.IngestError = *msg
	}
	writeJSON(w, reply)
}

// handleReport serves the full paper report, or a comma-separated subset
// via ?sections=table1,fig5. The body is byte-identical to what
// report.SerialReference prints for the same tickets: every section is
// rendered from the single snapshot grabbed at entry, so a response
// during active ingestion is still one self-consistent epoch (headers
// X-Epoch and X-Tickets say which).
func (d *Daemon) handleReport(w http.ResponseWriter, r *http.Request) {
	ids := d.state.SectionIDs()
	if raw := r.URL.Query().Get("sections"); raw != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(raw, ",") {
			if id = strings.TrimSpace(id); id != "" {
				want[strings.ToLower(id)] = true
			}
		}
		var sel []string
		for _, id := range ids {
			if want[id] {
				sel = append(sel, id)
				delete(want, id)
			}
		}
		if len(want) > 0 {
			// Name the leftovers deterministically: map order must not
			// pick which unknown section the client hears about.
			unknown := make([]string, 0, len(want))
			for id := range want {
				unknown = append(unknown, id)
			}
			sort.Strings(unknown)
			http.Error(w, fmt.Sprintf("unknown section %q", unknown[0]), http.StatusBadRequest)
			return
		}
		ids = sel
	}
	snap := d.state.Current()
	results, err := d.state.RenderSections(snap, ids)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	bundle := &core.ReportBundle{Sections: results}
	if err := bundle.Err(); err != nil {
		// No partial reports over the wire: one-line error instead.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeSnapshotHeaders(w, snap)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bundle.WriteTo(w)
}

// handleSection serves one section's body alone (no trailing separator).
func (d *Daemon) handleSection(w http.ResponseWriter, r *http.Request) {
	id := strings.ToLower(r.PathValue("section"))
	snap := d.state.Current()
	results, err := d.state.RenderSections(snap, []string{id})
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if results[0].Err != nil {
		http.Error(w, fmt.Sprintf("%s: %v", id, results[0].Err), http.StatusInternalServerError)
		return
	}
	writeSnapshotHeaders(w, snap)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(results[0].Text)
}

// HostTicket is the JSON view of one ticket in a /hosts reply.
type HostTicket struct {
	ID       uint64    `json:"id"`
	Device   string    `json:"error_device"`
	Slot     string    `json:"error_slot,omitempty"`
	Type     string    `json:"error_type"`
	Time     time.Time `json:"error_time"`
	Category string    `json:"category"`
	Action   string    `json:"action"`
}

// HostReply is the /hosts/{id} JSON body: the server's ticket history
// plus the §VII-B context of its most recent ticket — what the paper
// says operators need so each FOT stops being handled in isolation.
type HostReply struct {
	HostID  uint64       `json:"host_id"`
	Epoch   uint64       `json:"epoch"`
	Tickets []HostTicket `json:"tickets"`
	// Context of the newest ticket.
	SlotRepeats    int      `json:"slot_repeats"`
	ChronicSuspect bool     `json:"chronic_suspect"`
	BatchPeers     int      `json:"batch_peers"`
	BatchSuspect   bool     `json:"batch_suspect"`
	TwinHosts      []uint64 `json:"twin_hosts,omitempty"`
}

func (d *Daemon) handleHost(w http.ResponseWriter, r *http.Request) {
	host, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad host id", http.StatusBadRequest)
		return
	}
	snap := d.state.Current()
	mix, err := snap.MineIndex()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	tickets := mix.HostTickets(host)
	if len(tickets) == 0 {
		http.Error(w, fmt.Sprintf("host %d has no tickets", host), http.StatusNotFound)
		return
	}
	reply := HostReply{HostID: host, Epoch: snap.Epoch()}
	for _, t := range tickets {
		reply.Tickets = append(reply.Tickets, HostTicket{
			ID:       t.ID,
			Device:   t.Device.String(),
			Slot:     t.Slot,
			Type:     t.Type,
			Time:     t.Time,
			Category: t.Category.String(),
			Action:   t.Action.String(),
		})
	}
	if ctx, err := mix.Contextualize(tickets[len(tickets)-1].ID); err == nil {
		reply.SlotRepeats = ctx.SlotRepeats
		reply.ChronicSuspect = ctx.IsChronicSuspect()
		reply.BatchPeers = ctx.BatchPeers
		reply.BatchSuspect = ctx.IsBatchSuspect()
		reply.TwinHosts = ctx.TwinHosts
	}
	writeSnapshotHeaders(w, snap)
	writeJSON(w, reply)
}

// AlertReply is one /alerts entry.
type AlertReply struct {
	Device  string        `json:"error_device"`
	Type    string        `json:"error_type"`
	At      time.Time     `json:"at"`
	Window  time.Duration `json:"window_ns"`
	Servers int           `json:"servers"`
}

func (d *Daemon) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	alerts, total := d.Alerts()
	reply := struct {
		Total  uint64       `json:"total"`
		Recent []AlertReply `json:"recent"`
	}{Total: total, Recent: []AlertReply{}}
	for _, a := range alerts {
		reply.Recent = append(reply.Recent, AlertReply{
			Device:  a.Device.String(),
			Type:    a.Type,
			At:      a.At,
			Window:  a.WindowLen,
			Servers: a.Count,
		})
	}
	writeJSON(w, reply)
}

// PredictReply is the /predict/{host} JSON body: the risk score, the
// feature breakdown it was computed from, and the model version. Epoch
// identifies the fold the score came from (also the X-Epoch header) —
// all scoring time is fold-time, so any replica serving the same epoch
// returns the same body.
type PredictReply struct {
	Host        uint64               `json:"host"`
	Epoch       uint64               `json:"epoch"`
	Score       float64              `json:"score"`
	Model       string               `json:"model"`
	WindowHours float64              `json:"window_hours"`
	Features    predict.HostFeatures `json:"features"`
}

func (d *Daemon) handlePredict(w http.ResponseWriter, r *http.Request) {
	host, err := strconv.ParseUint(r.PathValue("host"), 10, 64)
	if err != nil {
		http.Error(w, "bad host id", http.StatusBadRequest)
		return
	}
	pred := d.state.Predictor()
	sc, epoch, ok := pred.ScoreHost(host)
	if !ok {
		http.Error(w, fmt.Sprintf("host %d has no predictor-eligible tickets", host), http.StatusNotFound)
		return
	}
	w.Header().Set("X-Epoch", strconv.FormatUint(epoch, 10))
	writeJSON(w, PredictReply{
		Host:        host,
		Epoch:       epoch,
		Score:       sc.Score,
		Model:       pred.Model(),
		WindowHours: pred.Window().Hours(),
		Features:    sc.Features,
	})
}

// AtRiskReply is the /atrisk JSON body: the n highest-risk hosts at the
// reply's epoch, ordered score-descending with ascending host id as the
// deterministic tie-break.
type AtRiskReply struct {
	Epoch uint64              `json:"epoch"`
	Model string              `json:"model"`
	Hosts []predict.HostScore `json:"hosts"`
}

func (d *Daemon) handleAtRisk(w http.ResponseWriter, r *http.Request) {
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if v > 10000 {
			v = 10000
		}
		n = v
	}
	pred := d.state.Predictor()
	ranked, epoch := pred.AtRisk(n)
	if ranked == nil {
		ranked = []predict.HostScore{}
	}
	w.Header().Set("X-Epoch", strconv.FormatUint(epoch, 10))
	writeJSON(w, AtRiskReply{Epoch: epoch, Model: pred.Model(), Hosts: ranked})
}

func writeSnapshotHeaders(w http.ResponseWriter, snap *Snapshot) {
	w.Header().Set("X-Epoch", strconv.FormatUint(snap.Epoch(), 10))
	w.Header().Set("X-Tickets", strconv.Itoa(snap.Tickets()))
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
