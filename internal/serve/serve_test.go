package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fleetgen"
	"dcfail/internal/fms"
	"dcfail/internal/fot"
	"dcfail/internal/report"
)

// smallRun caches one SmallProfile simulation for every test in the
// package — the generator is deterministic, and tests only read.
var (
	smallOnce   sync.Once
	smallTrace  *fot.Trace
	smallCensus *core.Census
	smallErr    error
)

func smallWorld(t *testing.T) (*fot.Trace, *core.Census) {
	t.Helper()
	smallOnce.Do(func() {
		res, err := fms.Run(fleetgen.SmallProfile(), fms.DefaultConfig(), 7)
		if err != nil {
			smallErr = err
			return
		}
		smallTrace = res.Trace
		smallCensus = core.CensusFromFleet(res.Fleet)
	})
	if smallErr != nil {
		t.Fatal(smallErr)
	}
	return smallTrace, smallCensus
}

// waitDrained spins until the daemon has folded a finite source.
func waitDrained(t *testing.T, d *Daemon) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !d.Drained() || d.pending.Load() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never drained its source")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestReportByteIdenticalToSerialReference is the frozen-trace golden:
// the daemon's /report body must match report.SerialReference bytes
// exactly once the whole trace is folded.
func TestReportByteIdenticalToSerialReference(t *testing.T) {
	trace, census := smallWorld(t)
	d := New(Options{Census: census, FoldInterval: 10 * time.Millisecond})
	d.StartIngest(FromTrace(trace, 0))
	waitDrained(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/report")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/report status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Tickets"); got != strconv.Itoa(trace.Len()) {
		t.Fatalf("X-Tickets = %s, want %d", got, trace.Len())
	}

	var want bytes.Buffer
	if err := report.SerialReference(&want, trace, census, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("/report body differs from SerialReference (%d vs %d bytes)", len(body), want.Len())
	}

	// Per-section endpoint serves the same bytes as the section subset.
	resp, section := get(t, srv, "/report/table1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/report/table1 status %d", resp.StatusCode)
	}
	var wantSec bytes.Buffer
	if err := report.SerialReference(&wantSec, trace, census, func(id string) bool { return id == "table1" }); err != nil {
		t.Fatal(err)
	}
	// SerialReference appends the blank separator line; the bare section
	// endpoint does not.
	if !bytes.Equal(append(append([]byte{}, section...), '\n'), wantSec.Bytes()) {
		t.Fatal("/report/table1 body differs from the serial reference section")
	}
}

// TestMidIngestReportIsSelfConsistent is the live golden: a /report
// issued while tickets are still flowing must equal SerialReference over
// exactly the ticket prefix its X-Tickets header claims — every section
// computed from the same count.
func TestMidIngestReportIsSelfConsistent(t *testing.T) {
	trace, census := smallWorld(t)
	d := New(Options{Census: census, FoldInterval: time.Millisecond, FoldBatch: 64})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	d.StartIngest(FromTrace(trace, 97)) // slow drip: many epochs

	type sample struct {
		n    int
		body []byte
	}
	var samples []sample
	for len(samples) < 3 && !d.Drained() {
		resp, body := get(t, srv, "/report")
		n, err := strconv.Atoi(resp.Header.Get("X-Tickets"))
		if err != nil {
			t.Fatalf("bad X-Tickets header: %v", err)
		}
		if resp.StatusCode == http.StatusOK && n > 0 && n < trace.Len() {
			samples = append(samples, sample{n: n, body: body})
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitDrained(t, d)
	if len(samples) == 0 {
		t.Skip("ingest finished before any mid-flight sample; timing too coarse on this machine")
	}
	for _, s := range samples {
		prefix := fot.NewTrace(trace.Tickets[:s.n])
		var want bytes.Buffer
		if err := report.SerialReference(&want, prefix, census, nil); err != nil {
			t.Fatalf("serial reference over %d-ticket prefix: %v", s.n, err)
		}
		if !bytes.Equal(s.body, want.Bytes()) {
			t.Fatalf("mid-ingest report at %d tickets is not the serial reference over that prefix", s.n)
		}
	}
}

// TestSectionCacheServesRepeatsAndInvalidatesOnFold pins the cache
// contract: same epoch + same section = cache hit; a fold abandons the
// cache so the next render recomputes against the new epoch.
func TestSectionCacheServesRepeatsAndInvalidatesOnFold(t *testing.T) {
	trace, census := smallWorld(t)
	st := NewState(census, 0)
	half := trace.Len() / 2
	st.Fold(trace.Tickets[:half], time.Now())

	snap := st.Current()
	first, err := st.RenderSections(snap, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := st.CacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after first render: hits=%d misses=%d, want 0/1", hits, misses)
	}
	again, err := st.RenderSections(snap, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := st.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("after repeat render: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !bytes.Equal(first[0].Text, again[0].Text) {
		t.Fatal("cache returned different bytes for the same epoch")
	}

	st.Fold(trace.Tickets[half:], time.Now())
	snap2 := st.Current()
	if snap2.Epoch() != 2 {
		t.Fatalf("epoch after second fold = %d, want 2", snap2.Epoch())
	}
	fresh, err := st.RenderSections(snap2, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := st.CacheStats(); hits != 1 || misses != 2 {
		t.Fatalf("after post-fold render: hits=%d misses=%d, want 1/2", hits, misses)
	}
	// Not stale: the new epoch's section must match a from-scratch serial
	// render of the full trace, not the old half.
	var want bytes.Buffer
	if err := report.SerialReference(&want, fot.NewTrace(trace.Tickets), census, func(id string) bool { return id == "table1" }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(append([]byte{}, fresh[0].Text...), '\n'), want.Bytes()) {
		t.Fatal("post-fold render served stale (pre-fold) section bytes")
	}
}

// TestFoldThroughput guards the ≥10k tickets/s ingest requirement on the
// SmallProfile trace. Folding is an append plus a pointer swap, so the
// bar is intentionally far below what the implementation does; a 100×
// regression still fails loudly.
func TestFoldThroughput(t *testing.T) {
	trace, census := smallWorld(t)
	st := NewState(census, 0)
	start := time.Now()
	const batch = 256
	for lo := 0; lo < trace.Len(); lo += batch {
		hi := lo + batch
		if hi > trace.Len() {
			hi = trace.Len()
		}
		st.Fold(trace.Tickets[lo:hi], time.Now())
	}
	elapsed := time.Since(start)
	rate := float64(trace.Len()) / elapsed.Seconds()
	t.Logf("folded %d tickets in %v (%.0f tickets/s, %d epochs)", trace.Len(), elapsed, rate, st.Current().Epoch())
	if rate < 10000 {
		t.Fatalf("fold throughput %.0f tickets/s, want >= 10000", rate)
	}
	if got := st.Current().Tickets(); got != trace.Len() {
		t.Fatalf("final epoch has %d tickets, want %d", got, trace.Len())
	}
}

// TestEndpointsHostsAlertsStatsHealthz exercises the JSON endpoints on a
// crafted stream with a deterministic batch episode.
func TestEndpointsHostsAlertsStatsHealthz(t *testing.T) {
	_, census := smallWorld(t)
	base := time.Date(2015, 6, 1, 12, 0, 0, 0, time.UTC)
	var tickets []fot.Ticket
	// Six distinct servers hit the same failure kind within minutes —
	// crosses an alert threshold of 5.
	for i := 0; i < 6; i++ {
		tickets = append(tickets, fot.Ticket{
			ID: uint64(i + 1), HostID: uint64(100 + i), IDC: "dc01", Position: 1,
			Device: fot.HDD, Slot: "sdb", Type: "SMARTFail",
			Time: base.Add(time.Duration(i) * time.Minute), Category: fot.Fixing, Action: fot.ActionRepairOrder,
		})
	}
	// One chronic host: the same slot failing five more times.
	for i := 0; i < 5; i++ {
		tickets = append(tickets, fot.Ticket{
			ID: uint64(10 + i), HostID: 100, IDC: "dc01", Position: 1,
			Device: fot.HDD, Slot: "sdb", Type: "SMARTFail",
			Time: base.Add(time.Duration(i+1) * 24 * time.Hour), Category: fot.Fixing, Action: fot.ActionRepairOrder,
		})
	}
	d := New(Options{Census: census, FoldInterval: 5 * time.Millisecond, AlertThreshold: 5})
	d.StartIngest(FromTrace(fot.NewTrace(tickets), 0))
	waitDrained(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/healthz")
	var health HealthReply
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("/healthz body %q: %v", body, err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != HealthOK {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
	if health.Tickets != len(tickets) || health.Epoch == 0 {
		t.Fatalf("/healthz freshness = %+v, want %d tickets at a nonzero epoch", health, len(tickets))
	}

	resp, body = get(t, srv, "/hosts/100")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/hosts/100 status %d: %s", resp.StatusCode, body)
	}
	var host HostReply
	if err := json.Unmarshal(body, &host); err != nil {
		t.Fatal(err)
	}
	if len(host.Tickets) != 6 {
		t.Fatalf("host 100 has %d tickets, want 6", len(host.Tickets))
	}
	if host.SlotRepeats != 5 || !host.ChronicSuspect {
		t.Fatalf("host 100 context = repeats %d chronic %v, want 5/true", host.SlotRepeats, host.ChronicSuspect)
	}
	if resp, _ := get(t, srv, "/hosts/424242"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown host status %d, want 404", resp.StatusCode)
	}

	_, body = get(t, srv, "/alerts")
	var alerts struct {
		Total  uint64       `json:"total"`
		Recent []AlertReply `json:"recent"`
	}
	if err := json.Unmarshal(body, &alerts); err != nil {
		t.Fatal(err)
	}
	if alerts.Total != 1 || len(alerts.Recent) != 1 || alerts.Recent[0].Servers < 5 {
		t.Fatalf("alerts = %+v, want one 5-server episode", alerts)
	}

	// A couple of section renders so the hit-rate is visible.
	get(t, srv, "/report/table1")
	get(t, srv, "/report/table1")
	_, body = get(t, srv, "/stats")
	var stats StatsReply
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Tickets != len(tickets) || !stats.Drained {
		t.Fatalf("stats = %+v, want %d tickets drained", stats, len(tickets))
	}
	if stats.Epoch == 0 || stats.Ingested != uint64(len(tickets)) {
		t.Fatalf("stats epoch/ingested = %d/%d", stats.Epoch, stats.Ingested)
	}
	if stats.CacheHits == 0 {
		t.Fatalf("stats shows no cache hits after repeated section query: %+v", stats)
	}

	if resp, _ := get(t, srv, "/report/nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown section status %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, srv, "/report?sections=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus sections filter status %d, want 400", resp.StatusCode)
	}
}

// TestGracefulShutdownDrains starts a request, shuts the daemon down,
// and checks the in-flight request completes while new ones are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	trace, census := smallWorld(t)
	d := New(Options{Census: census, FoldInterval: 10 * time.Millisecond})
	d.StartIngest(FromTrace(trace, 0))
	waitDrained(t, d)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	// Warm one section, then shut down mid-idle.
	if _, err := http.Get(url + "/healthz"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("request after shutdown unexpectedly succeeded")
	}
}
