package serve

import (
	"context"
	"io"
	"time"

	"dcfail/internal/archive"
	"dcfail/internal/fot"
)

// TicketSource is where the daemon's ingest loop pulls tickets from.
// Poll blocks until at least one ticket is available, the context is
// done (ctx.Err), or the source is permanently drained — a drained
// source returns io.EOF, optionally alongside its final batch.
type TicketSource interface {
	Poll(ctx context.Context) ([]fot.Ticket, error)
}

// traceSource replays a frozen, already-loaded trace in fixed batches —
// the one-shot mode used for frozen-trace serving and tests.
type traceSource struct {
	tickets []fot.Ticket
	batch   int
}

// FromTrace returns a source that serves the trace's tickets in order,
// batch tickets per Poll (<= 0 means all at once), then reports EOF.
func FromTrace(tr *fot.Trace, batch int) TicketSource {
	if batch <= 0 {
		batch = tr.Len()
	}
	return &traceSource{tickets: tr.Tickets, batch: batch}
}

func (s *traceSource) Poll(ctx context.Context) ([]fot.Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(s.tickets) == 0 {
		return nil, io.EOF
	}
	n := s.batch
	if n > len(s.tickets) {
		n = len(s.tickets)
	}
	out := s.tickets[:n]
	s.tickets = s.tickets[n:]
	if len(s.tickets) == 0 {
		return out, io.EOF
	}
	return out, nil
}

// archiveSource tails an archive directory through archive.Follow,
// sleeping between empty polls.
type archiveSource struct {
	f        *archive.Follower
	interval time.Duration
}

// TailArchive returns a source that follows an archive directory written
// by another process (e.g. fmsd), resuming from pos and re-polling every
// interval (default 500ms) while idle. The source never reports EOF: an
// archive can always grow.
func TailArchive(dir string, pos archive.Position, interval time.Duration) TicketSource {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &archiveSource{f: archive.Follow(dir, pos), interval: interval}
}

func (s *archiveSource) Poll(ctx context.Context) ([]fot.Ticket, error) {
	for {
		tickets, err := s.f.Poll()
		if err != nil || len(tickets) > 0 {
			return tickets, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.interval):
		}
	}
}

// channelSource adapts a ticket channel — typically a collector
// subscription's C() — into a TicketSource. Poll blocks for the first
// ticket, then opportunistically drains whatever else is already
// buffered (up to 1024) so a burst folds as one batch.
type channelSource struct {
	ch <-chan fot.Ticket
}

// FromChannel wraps a ticket channel (e.g. fmsnet.TicketSub.C()). The
// source reports EOF when the channel is closed.
func FromChannel(ch <-chan fot.Ticket) TicketSource {
	return &channelSource{ch: ch}
}

func (s *channelSource) Poll(ctx context.Context) ([]fot.Ticket, error) {
	var out []fot.Ticket
	select {
	case t, ok := <-s.ch:
		if !ok {
			return nil, io.EOF
		}
		out = append(out, t)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	for len(out) < 1024 {
		select {
		case t, ok := <-s.ch:
			if !ok {
				return out, io.EOF
			}
			out = append(out, t)
		default:
			return out, nil
		}
	}
	return out, nil
}
