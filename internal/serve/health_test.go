package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fot"
)

// healthz is a helper that hits /healthz and decodes the reply.
func healthz(t *testing.T, srv *httptest.Server) (int, HealthReply) {
	t.Helper()
	resp, body := get(t, srv, "/healthz")
	var reply HealthReply
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("/healthz body %q: %v", body, err)
	}
	return resp.StatusCode, reply
}

// TestHealthzDegradesOnSourceLag pins the failover signal: once pending
// tickets have waited longer than DegradedAfter, /healthz flips to 503 +
// status "degraded"; folding them flips it back. The clock is injected so
// the lag is exact, and the fold interval is effectively infinite so the
// test controls every fold.
func TestHealthzDegradesOnSourceLag(t *testing.T) {
	_, census := smallWorld(t)
	now := time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	d := New(Options{
		Census:        census,
		FoldInterval:  time.Hour,
		DegradedAfter: 500 * time.Millisecond,
		Now:           clock,
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Nothing pending: healthy.
	if code, reply := healthz(t, srv); code != http.StatusOK || reply.Status != HealthOK {
		t.Fatalf("idle healthz = %d %+v, want 200 ok", code, reply)
	}

	// Fold one ticket so FoldedAt is set, then simulate a stuck source:
	// pending tickets age past the threshold without a fold.
	tk := fot.Ticket{ID: 1, HostID: 1, IDC: "dc01", Device: fot.HDD, Type: "SMARTFail",
		Time: now, Category: fot.Fixing, Action: fot.ActionRepairOrder}
	d.state.Fold([]fot.Ticket{tk}, now)
	d.pending.Store(3)
	now = now.Add(200 * time.Millisecond)
	if code, reply := healthz(t, srv); code != http.StatusOK || reply.Status != HealthOK {
		t.Fatalf("lag under threshold: healthz = %d %+v, want 200 ok", code, reply)
	}
	now = now.Add(time.Second)
	code, reply := healthz(t, srv)
	if code != http.StatusServiceUnavailable || reply.Status != HealthDegraded {
		t.Fatalf("lag over threshold: healthz = %d %+v, want 503 degraded", code, reply)
	}
	if reply.Reason == "" || reply.LagMS < 1000 {
		t.Fatalf("degraded reply carries no diagnosis: %+v", reply)
	}

	// The fold catches up: healthy again, epoch visible.
	d.pending.Store(0)
	if code, reply := healthz(t, srv); code != http.StatusOK || reply.Status != HealthOK || reply.Epoch != 1 {
		t.Fatalf("recovered healthz = %d %+v, want 200 ok at epoch 1", code, reply)
	}
}

// TestHealthzUsesLagProbe: a replica daemon reports replication lag, not
// pending-queue lag — SetLagProbe overrides the measurement.
func TestHealthzUsesLagProbe(t *testing.T) {
	_, census := smallWorld(t)
	d := New(Options{Census: census, DegradedAfter: 100 * time.Millisecond})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	lag := int64(0)
	d.SetLagProbe(func() time.Duration { return time.Duration(lag) })
	if code, reply := healthz(t, srv); code != http.StatusOK || reply.Status != HealthOK {
		t.Fatalf("zero-lag probe: healthz = %d %+v, want 200 ok", code, reply)
	}
	lag = int64(5 * time.Second)
	if code, reply := healthz(t, srv); code != http.StatusServiceUnavailable || reply.Status != HealthDegraded {
		t.Fatalf("lagging probe: healthz = %d %+v, want 503 degraded", code, reply)
	}
	lag = 0
	if code, reply := healthz(t, srv); code != http.StatusOK || reply.Status != HealthOK {
		t.Fatalf("caught-up probe: healthz = %d %+v, want 200 ok", code, reply)
	}
}

// TestStatsSourceDropsMonotonic: the /stats drop counter is a high-water
// mark — a probe that resets (source swap, reconnect) never makes the
// exported counter go backwards, so chaos runs can assert "zero new
// drops" by simple subtraction.
func TestStatsSourceDropsMonotonic(t *testing.T) {
	_, census := smallWorld(t)
	drops := uint64(0)
	d := New(Options{Census: census, SourceDrops: func() uint64 { return drops }})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	read := func() uint64 {
		t.Helper()
		_, body := get(t, srv, "/stats")
		var stats StatsReply
		if err := json.Unmarshal(body, &stats); err != nil {
			t.Fatal(err)
		}
		return stats.SourceDrops
	}

	if got := read(); got != 0 {
		t.Fatalf("initial source_drops = %d, want 0", got)
	}
	drops = 7
	if got := read(); got != 7 {
		t.Fatalf("source_drops after probe=7: %d, want 7", got)
	}
	drops = 2 // source replaced: its counter restarted
	if got := read(); got != 7 {
		t.Fatalf("source_drops after probe reset to 2: %d, want high-water 7", got)
	}
	drops = 11
	if got := read(); got != 11 {
		t.Fatalf("source_drops after probe=11: %d, want 11", got)
	}
}

// TestStateRowsAndWatch covers the replication hooks: Rows hands out
// immutable log prefixes, Watch signals on every published fold, and
// FoldTo publishes under an explicit epoch (including the empty-batch
// marker-replay case) while rejecting regressions.
func TestStateRowsAndWatch(t *testing.T) {
	_, census := smallWorld(t)
	st := NewState(census, 0)
	ch := st.Watch()
	defer st.Unwatch(ch)

	base := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(id uint64) fot.Ticket {
		return fot.Ticket{ID: id, HostID: id, IDC: "dc01", Device: fot.HDD, Type: "SMARTFail",
			Time: base.Add(time.Duration(id) * time.Hour), Category: fot.Fixing, Action: fot.ActionRepairOrder}
	}

	st.Fold([]fot.Ticket{mk(1), mk(2)}, base)
	select {
	case <-ch:
	default:
		t.Fatal("no watch signal after Fold")
	}

	if _, err := st.FoldTo([]fot.Ticket{mk(3)}, 1, base); err == nil {
		t.Fatal("FoldTo with a non-advancing epoch succeeded")
	}
	snap, err := st.FoldTo([]fot.Ticket{mk(3)}, 5, base)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch() != 5 || snap.Tickets() != 3 {
		t.Fatalf("FoldTo published epoch %d with %d tickets, want 5/3", snap.Epoch(), snap.Tickets())
	}
	// Empty-batch epoch advance (marker replay after reconnect).
	if _, err := st.FoldTo(nil, 6, base); err != nil {
		t.Fatalf("empty-batch FoldTo: %v", err)
	}
	if got := st.Current(); got.Epoch() != 6 || got.Tickets() != 3 {
		t.Fatalf("after empty FoldTo: epoch %d tickets %d, want 6/3", got.Epoch(), got.Tickets())
	}

	rows, err := st.Rows(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].ID != 2 || rows[1].ID != 3 {
		t.Fatalf("Rows(1,3) = %v", rows)
	}
	if _, err := st.Rows(0, 4); err == nil {
		t.Fatal("Rows past the published tail succeeded")
	}
	if _, err := st.Rows(-1, 1); err == nil {
		t.Fatal("Rows with negative from succeeded")
	}
}

// TestRenderSectionsSingleflight pins the stampede guard: N concurrent
// requests for the same cold section trigger exactly one render — the
// rest wait for it — and everyone gets identical bytes. A gated test
// section holds the render open until every waiter has registered, so
// the counter assertions are deterministic: one miss (the renderer),
// N-1 waits, zero hits — a waiter blocks on an in-flight render, it is
// NOT served from the done map and must not be counted as a hit.
func TestRenderSectionsSingleflight(t *testing.T) {
	trace, census := smallWorld(t)
	st := NewState(census, 0)
	release := make(chan struct{})
	st.sections["slowtest"] = core.Section{ID: "slowtest", Render: func(_ *fot.TraceIndex, w io.Writer) error {
		<-release
		_, err := io.WriteString(w, "slow section body\n")
		return err
	}}
	st.Fold(trace.Tickets, time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC))
	snap := st.Current()

	const readers = 32
	start := make(chan struct{})
	bodies := make([][]byte, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := st.RenderSections(snap, []string{"slowtest"})
			if err != nil {
				errs[i] = err
				return
			}
			if res[0].Err != nil {
				errs[i] = res[0].Err
				return
			}
			bodies[i] = res[0].Text
		}(i)
	}
	close(start)
	// Let every reader classify itself against the in-flight render, then
	// release it. The renderer holds the channel open until this fires.
	for {
		_, misses, waits := st.CacheStats()
		if misses == 1 && waits == readers-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("reader %d got different bytes", i)
		}
	}
	hits, misses, waits := st.CacheStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 render for %d concurrent readers", misses, readers)
	}
	if waits != readers-1 {
		t.Fatalf("waits = %d, want %d", waits, readers-1)
	}
	if hits != 0 {
		t.Fatalf("hits = %d, want 0: waiters must not count as cache hits", hits)
	}
}
