package serve

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/predict"
	"dcfail/internal/report"
)

// Snapshot is one immutable epoch of the live analytics state: a
// consistent TraceIndex over every ticket folded so far, plus the
// per-epoch section cache and a lazily built mining index. Readers that
// grab a Snapshot keep exactly this view no matter how many folds happen
// afterwards — all sections they render come from the same ticket
// prefix, which is what makes a mid-ingestion report self-consistent.
type Snapshot struct {
	epoch    uint64
	index    *fot.TraceIndex
	tickets  int
	foldedAt time.Time

	cache sectionCache

	mineOnce sync.Once
	mineIx   *mine.Index
	mineErr  error
}

// Epoch returns the snapshot's fold generation (0 = empty, pre-ingest).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Tickets returns how many tickets this epoch contains.
func (s *Snapshot) Tickets() int { return s.tickets }

// Index returns the epoch's shared immutable trace index.
func (s *Snapshot) Index() *fot.TraceIndex { return s.index }

// FoldedAt returns when this epoch was published.
func (s *Snapshot) FoldedAt() time.Time { return s.foldedAt }

// MineIndex returns the epoch's §VII-B mining index, built on first use
// and cached for the life of the snapshot.
func (s *Snapshot) MineIndex() (*mine.Index, error) {
	s.mineOnce.Do(func() {
		s.mineIx, s.mineErr = mine.NewIndex(s.index.All())
	})
	return s.mineIx, s.mineErr
}

// sectionCache holds the rendered sections of one epoch. It only ever
// grows; epoch advance abandons the whole cache with its snapshot, so
// nothing stale can survive a fold. inflight dedups concurrent misses:
// the first reader to miss a section computes it, later readers wait on
// its channel (closed when the result lands in done) instead of racing
// duplicate renders — on a fresh epoch under a request stampede, N
// identical renders on one box otherwise multiply the epoch's cold cost
// by N (observed as a collapse in the chaos harness).
type sectionCache struct {
	mu       sync.Mutex
	done     map[string]core.SectionResult
	inflight map[string]chan struct{}
}

// State is the incrementally updated analytics state behind the query
// daemon: an epoch-based copy-on-append snapshot model. One ingest
// goroutine folds new tickets into the next epoch with Fold; any number
// of readers take the current Snapshot with Current and render sections
// against it. The ticket backing array is append-only and every
// published index views a capped prefix of it, so folding never copies
// the history and never invalidates a reader's view.
type State struct {
	census   *core.Census
	workers  int
	sections map[string]core.Section
	order    []string // section ids in print order

	foldMu sync.Mutex // serializes folds; Current never takes it
	all    []fot.Ticket

	watchMu  sync.Mutex
	watchers map[chan struct{}]struct{}

	cur atomic.Pointer[Snapshot]

	hits   atomic.Uint64
	misses atomic.Uint64
	waits  atomic.Uint64

	// engine carries every section's incremental fold state; folds advance
	// it under foldMu, renders consult it before falling back to the full
	// recompute. incOff disables the delta path (benchmark baseline,
	// operational escape hatch).
	engine  *core.IncrementalEngine
	incOff  atomic.Bool
	secStat map[string]*sectionRenderCounters

	// pred is the streaming failure predictor behind /predict and
	// /atrisk. It advances on the same fold path as engine — including
	// the replica FoldTo path — so every replica serving epoch N ranks
	// hosts from identical feature state.
	pred *predict.Engine
}

// sectionRenderCounters tracks how one section's cache misses were
// served: from carried fold state, or by the full recompute.
type sectionRenderCounters struct {
	incremental atomic.Uint64
	fallback    atomic.Uint64
}

// SectionRenderStats is the exported snapshot of one section's counters.
type SectionRenderStats struct {
	Incremental uint64 `json:"incremental"`
	Fallback    uint64 `json:"fallback"`
}

// NewState builds an empty state (epoch 0) whose reports use the given
// census and fan section recomputation across workers goroutines (<= 0
// means one per CPU, as in core.Runner).
func NewState(census *core.Census, workers int) *State {
	st := &State{
		census:   census,
		workers:  workers,
		sections: make(map[string]core.Section),
		watchers: make(map[chan struct{}]struct{}),
	}
	for _, sec := range report.StandardSections(census) {
		st.sections[sec.ID] = sec
		st.order = append(st.order, sec.ID)
	}
	st.engine = core.NewIncrementalEngine(report.StandardIncrementalSections(census))
	st.secStat = make(map[string]*sectionRenderCounters, len(st.order))
	for _, id := range st.order {
		st.secStat[id] = &sectionRenderCounters{}
	}
	st.pred = predict.NewEngine(predict.Options{})
	//lint:ignore epochpub epoch-0 bootstrap: the empty snapshot is installed before State escapes the constructor, so no reader can race it
	st.cur.Store(st.newSnapshot(nil, 0, nil, time.Time{}))
	return st
}

// SetPredictor replaces the streaming predictor's configuration. Must be
// called before the first fold (the daemon does it from New); a later
// call would discard folded feature state.
func (st *State) SetPredictor(opts predict.Options) {
	st.foldMu.Lock()
	defer st.foldMu.Unlock()
	st.pred = predict.NewEngine(opts)
}

// Predictor exposes the streaming risk-scoring engine.
func (st *State) Predictor() *predict.Engine { return st.pred }

// SetIncremental toggles the delta render path. Disabled, every cache
// miss takes the full recompute — the benchmark baseline and the escape
// hatch if a section's fold state is ever suspect in production.
func (st *State) SetIncremental(enabled bool) { st.incOff.Store(!enabled) }

// newSnapshot indexes view as an incremental extension of the previous
// epoch's index: the columnar decomposition and global time permutation
// of the shared ticket prefix carry over, so a fold pays for its batch,
// not the whole history.
func (st *State) newSnapshot(prev *fot.TraceIndex, epoch uint64, view []fot.Ticket, at time.Time) *Snapshot {
	return &Snapshot{
		epoch:    epoch,
		index:    fot.ExtendTraceIndex(prev, fot.NewTrace(view)),
		tickets:  len(view),
		foldedAt: at,
		cache: sectionCache{
			done:     make(map[string]core.SectionResult),
			inflight: make(map[string]chan struct{}),
		},
	}
}

// Current returns the live snapshot. Wait-free; safe from any goroutine.
func (st *State) Current() *Snapshot { return st.cur.Load() }

// SectionIDs returns every section id in print order.
func (st *State) SectionIDs() []string { return st.order }

// Fold appends a batch of tickets and publishes the next epoch. The
// previous epoch's snapshot (and any reader holding it) is untouched:
// published ticket prefixes are immutable, so the new index shares the
// same backing array and only the new tail is ever written. Folding an
// empty batch returns the current snapshot without advancing the epoch,
// so idle ticks never invalidate the section cache.
func (st *State) Fold(batch []fot.Ticket, now time.Time) *Snapshot {
	st.foldMu.Lock()
	defer st.foldMu.Unlock()
	prev := st.cur.Load()
	if len(batch) == 0 {
		return prev
	}
	return st.publish(batch, prev.epoch+1, now)
}

// FoldTo appends a batch and publishes it under an explicit epoch number
// — the replication path: a replica replaying a primary's epoch markers
// folds each marker's rows under the primary's epoch, so /report bodies
// and X-Epoch headers agree across the whole serving tier. The epoch must
// advance; an empty batch is allowed (a marker whose rows all arrived
// before a reconnect still has to move the epoch forward).
func (st *State) FoldTo(batch []fot.Ticket, epoch uint64, now time.Time) (*Snapshot, error) {
	st.foldMu.Lock()
	defer st.foldMu.Unlock()
	prev := st.cur.Load()
	if epoch <= prev.epoch {
		return nil, fmt.Errorf("serve: FoldTo epoch %d not after current %d", epoch, prev.epoch)
	}
	return st.publish(batch, epoch, now), nil
}

// publish appends batch (possibly empty) and installs the new epoch.
// Callers hold foldMu.
func (st *State) publish(batch []fot.Ticket, epoch uint64, now time.Time) *Snapshot {
	prev := st.cur.Load()
	st.all = append(st.all, batch...)
	// Full slice expression: the snapshot's view can never observe a
	// later Fold's appends, even when they land in the same array.
	view := st.all[:len(st.all):len(st.all)]
	snap := st.newSnapshot(prev.index, epoch, view, now)
	// Fold the appended rows into the engine, then pre-seed the new
	// epoch's cache with every rendered section the fold provably left
	// byte-identical: a warm epoch advance re-renders only what changed.
	changed := st.engine.Advance(snap.index, epoch)
	st.pred.Advance(snap.index, epoch)
	prev.cache.mu.Lock()
	for id, res := range prev.cache.done {
		//lint:ignore maporder cache carry-over; per-key copy, order immaterial
		if !changed[id] {
			snap.cache.done[id] = res
		}
	}
	prev.cache.mu.Unlock()
	st.cur.Store(snap)
	st.notifyWatchers()
	return snap
}

// Rows returns rows [from, to) of the append-only ticket log. Published
// prefixes are immutable, so the returned (capped) subslice stays valid
// and read-only no matter how many folds happen afterwards. to must not
// exceed the published row count (Current().Tickets()).
func (st *State) Rows(from, to int) ([]fot.Ticket, error) {
	st.foldMu.Lock()
	defer st.foldMu.Unlock()
	if from < 0 || to < from || to > len(st.all) {
		return nil, fmt.Errorf("serve: rows [%d, %d) out of range (have %d)", from, to, len(st.all))
	}
	return st.all[from:to:to], nil
}

// Watch registers an epoch-advance signal: the returned capacity-1
// channel receives (coalesced, non-blocking) after every published fold.
// Pair with Unwatch.
func (st *State) Watch() chan struct{} {
	ch := make(chan struct{}, 1)
	st.watchMu.Lock()
	st.watchers[ch] = struct{}{}
	st.watchMu.Unlock()
	return ch
}

// Unwatch removes a channel registered with Watch.
func (st *State) Unwatch(ch chan struct{}) {
	st.watchMu.Lock()
	delete(st.watchers, ch)
	st.watchMu.Unlock()
}

func (st *State) notifyWatchers() {
	st.watchMu.Lock()
	for ch := range st.watchers {
		select {
		//lint:ignore maporder coalesced wake-up signals carry no payload; delivery order across watchers is immaterial
		case ch <- struct{}{}:
		default: // watcher already has a pending signal
		}
	}
	st.watchMu.Unlock()
}

// CacheStats reports the lifetime section-cache counters. hits are
// served straight from an epoch's done map; misses triggered a render;
// waits piggybacked on another request's in-flight render — not free
// like a hit (the caller blocks) and not a render like a miss, so they
// are counted apart from both.
func (st *State) CacheStats() (hits, misses, waits uint64) {
	return st.hits.Load(), st.misses.Load(), st.waits.Load()
}

// IncrementalStats reports, per section, how many cache misses were
// served from fold state vs the full recompute, plus the engine's health
// snapshot.
func (st *State) IncrementalStats() (map[string]SectionRenderStats, core.IncrementalEngineStats) {
	out := make(map[string]SectionRenderStats, len(st.secStat))
	for id, c := range st.secStat {
		//lint:ignore maporder snapshot copy into a map; order immaterial
		out[id] = SectionRenderStats{Incremental: c.incremental.Load(), Fallback: c.fallback.Load()}
	}
	return out, st.engine.Stats()
}

// RenderSections renders the requested section ids against one snapshot,
// serving repeats from the epoch's cache and recomputing every missing
// section in parallel through core.Runner. Concurrent misses of the same
// section are deduplicated: exactly one caller renders it, the rest wait
// for its result. Results come back in the requested order; an unknown
// id is an error.
func (st *State) RenderSections(snap *Snapshot, ids []string) ([]core.SectionResult, error) {
	results := make([]core.SectionResult, len(ids))
	var missing []core.Section
	var missingAt []int
	type waiter struct {
		at int
		id string
		ch chan struct{}
	}
	var waits []waiter

	snap.cache.mu.Lock()
	for i, id := range ids {
		if res, ok := snap.cache.done[id]; ok {
			results[i] = res
			st.hits.Add(1)
			continue
		}
		if _, ok := st.sections[id]; !ok {
			snap.cache.mu.Unlock()
			return nil, fmt.Errorf("serve: unknown section %q", id)
		}
		if ch, ok := snap.cache.inflight[id]; ok {
			// Another request is already rendering this section. Not a
			// hit — the result isn't here yet and this caller blocks for
			// it — and not a miss — the renderer already counted the
			// compute. Counted as a wait.
			st.waits.Add(1)
			waits = append(waits, waiter{at: i, id: id, ch: ch})
			continue
		}
		st.misses.Add(1)
		snap.cache.inflight[id] = make(chan struct{})
		missing = append(missing, st.sections[id])
		missingAt = append(missingAt, i)
	}
	snap.cache.mu.Unlock()

	if len(missing) > 0 {
		// Delta path first: sections whose fold state matches this
		// snapshot's epoch render from carried state instead of rescanning
		// history. A stale snapshot, a broken section or a disabled engine
		// falls back to the full recompute transparently.
		rendered := make([]core.SectionResult, 0, len(missing))
		renderedAt := make([]int, 0, len(missing))
		var fallback []core.Section
		var fallbackAt []int
		for j, sec := range missing {
			if !st.incOff.Load() {
				var buf bytes.Buffer
				if ok, err := st.engine.TryRender(sec.ID, snap.epoch, snap.index, &buf); ok {
					rendered = append(rendered, core.SectionResult{ID: sec.ID, Text: buf.Bytes(), Err: err})
					renderedAt = append(renderedAt, missingAt[j])
					if c := st.secStat[sec.ID]; c != nil {
						c.incremental.Add(1)
					}
					continue
				}
			}
			if c := st.secStat[sec.ID]; c != nil {
				c.fallback.Add(1)
			}
			fallback = append(fallback, sec)
			fallbackAt = append(fallbackAt, missingAt[j])
		}
		if len(fallback) > 0 {
			bundle := core.Runner{Workers: st.workers}.RunAll(snap.index, fallback)
			rendered = append(rendered, bundle.Sections...)
			renderedAt = append(renderedAt, fallbackAt...)
		}
		snap.cache.mu.Lock()
		for j, res := range rendered {
			snap.cache.done[res.ID] = res
			results[renderedAt[j]] = res
			if ch, ok := snap.cache.inflight[res.ID]; ok {
				close(ch)
				delete(snap.cache.inflight, res.ID)
			}
		}
		snap.cache.mu.Unlock()
	}
	for _, w := range waits {
		<-w.ch
		snap.cache.mu.Lock()
		results[w.at] = snap.cache.done[w.id]
		snap.cache.mu.Unlock()
	}
	return results, nil
}
