package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dcfail/internal/core"
	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/report"
)

// Snapshot is one immutable epoch of the live analytics state: a
// consistent TraceIndex over every ticket folded so far, plus the
// per-epoch section cache and a lazily built mining index. Readers that
// grab a Snapshot keep exactly this view no matter how many folds happen
// afterwards — all sections they render come from the same ticket
// prefix, which is what makes a mid-ingestion report self-consistent.
type Snapshot struct {
	epoch    uint64
	index    *fot.TraceIndex
	tickets  int
	foldedAt time.Time

	cache sectionCache

	mineOnce sync.Once
	mineIx   *mine.Index
	mineErr  error
}

// Epoch returns the snapshot's fold generation (0 = empty, pre-ingest).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Tickets returns how many tickets this epoch contains.
func (s *Snapshot) Tickets() int { return s.tickets }

// Index returns the epoch's shared immutable trace index.
func (s *Snapshot) Index() *fot.TraceIndex { return s.index }

// FoldedAt returns when this epoch was published.
func (s *Snapshot) FoldedAt() time.Time { return s.foldedAt }

// MineIndex returns the epoch's §VII-B mining index, built on first use
// and cached for the life of the snapshot.
func (s *Snapshot) MineIndex() (*mine.Index, error) {
	s.mineOnce.Do(func() {
		s.mineIx, s.mineErr = mine.NewIndex(s.index.All())
	})
	return s.mineIx, s.mineErr
}

// sectionCache holds the rendered sections of one epoch. It only ever
// grows; epoch advance abandons the whole cache with its snapshot, so
// nothing stale can survive a fold.
type sectionCache struct {
	mu   sync.Mutex
	done map[string]core.SectionResult
}

// State is the incrementally updated analytics state behind the query
// daemon: an epoch-based copy-on-append snapshot model. One ingest
// goroutine folds new tickets into the next epoch with Fold; any number
// of readers take the current Snapshot with Current and render sections
// against it. The ticket backing array is append-only and every
// published index views a capped prefix of it, so folding never copies
// the history and never invalidates a reader's view.
type State struct {
	census   *core.Census
	workers  int
	sections map[string]core.Section
	order    []string // section ids in print order

	foldMu sync.Mutex // serializes folds; Current never takes it
	all    []fot.Ticket

	cur atomic.Pointer[Snapshot]

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewState builds an empty state (epoch 0) whose reports use the given
// census and fan section recomputation across workers goroutines (<= 0
// means one per CPU, as in core.Runner).
func NewState(census *core.Census, workers int) *State {
	st := &State{
		census:   census,
		workers:  workers,
		sections: make(map[string]core.Section),
	}
	for _, sec := range report.StandardSections(census) {
		st.sections[sec.ID] = sec
		st.order = append(st.order, sec.ID)
	}
	st.cur.Store(st.newSnapshot(nil, 0, nil, time.Time{}))
	return st
}

// newSnapshot indexes view as an incremental extension of the previous
// epoch's index: the columnar decomposition and global time permutation
// of the shared ticket prefix carry over, so a fold pays for its batch,
// not the whole history.
func (st *State) newSnapshot(prev *fot.TraceIndex, epoch uint64, view []fot.Ticket, at time.Time) *Snapshot {
	return &Snapshot{
		epoch:    epoch,
		index:    fot.ExtendTraceIndex(prev, fot.NewTrace(view)),
		tickets:  len(view),
		foldedAt: at,
		cache:    sectionCache{done: make(map[string]core.SectionResult)},
	}
}

// Current returns the live snapshot. Wait-free; safe from any goroutine.
func (st *State) Current() *Snapshot { return st.cur.Load() }

// SectionIDs returns every section id in print order.
func (st *State) SectionIDs() []string { return st.order }

// Fold appends a batch of tickets and publishes the next epoch. The
// previous epoch's snapshot (and any reader holding it) is untouched:
// published ticket prefixes are immutable, so the new index shares the
// same backing array and only the new tail is ever written. Folding an
// empty batch returns the current snapshot without advancing the epoch,
// so idle ticks never invalidate the section cache.
func (st *State) Fold(batch []fot.Ticket, now time.Time) *Snapshot {
	st.foldMu.Lock()
	defer st.foldMu.Unlock()
	prev := st.cur.Load()
	if len(batch) == 0 {
		return prev
	}
	st.all = append(st.all, batch...)
	// Full slice expression: the snapshot's view can never observe a
	// later Fold's appends, even when they land in the same array.
	view := st.all[:len(st.all):len(st.all)]
	snap := st.newSnapshot(prev.index, prev.epoch+1, view, now)
	st.cur.Store(snap)
	return snap
}

// CacheStats reports the lifetime section-cache hit/miss counters.
func (st *State) CacheStats() (hits, misses uint64) {
	return st.hits.Load(), st.misses.Load()
}

// RenderSections renders the requested section ids against one snapshot,
// serving repeats from the epoch's cache and recomputing every missing
// section in parallel through core.Runner. Results come back in the
// requested order; an unknown id is an error.
func (st *State) RenderSections(snap *Snapshot, ids []string) ([]core.SectionResult, error) {
	results := make([]core.SectionResult, len(ids))
	var missing []core.Section
	var missingAt []int

	snap.cache.mu.Lock()
	for i, id := range ids {
		if res, ok := snap.cache.done[id]; ok {
			results[i] = res
			st.hits.Add(1)
			continue
		}
		sec, ok := st.sections[id]
		if !ok {
			snap.cache.mu.Unlock()
			return nil, fmt.Errorf("serve: unknown section %q", id)
		}
		st.misses.Add(1)
		missing = append(missing, sec)
		missingAt = append(missingAt, i)
	}
	snap.cache.mu.Unlock()

	if len(missing) > 0 {
		bundle := core.Runner{Workers: st.workers}.RunAll(snap.index, missing)
		snap.cache.mu.Lock()
		for j, res := range bundle.Sections {
			// Two racing requests may both compute a section; the
			// renders are deterministic over one snapshot, so either
			// result is the same bytes.
			snap.cache.done[res.ID] = res
			results[missingAt[j]] = res
		}
		snap.cache.mu.Unlock()
	}
	return results, nil
}
