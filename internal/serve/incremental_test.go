package serve

import (
	"bytes"
	"slices"
	"testing"
	"time"

	"dcfail/internal/fot"
)

// timeSorted returns the small-world tickets in global (time, id) order —
// the append order a live source delivers, which keeps the incremental
// engine on its delta fast path (no rebuilds).
func timeSorted(t *testing.T) ([]fot.Ticket, *State) {
	t.Helper()
	trace, census := smallWorld(t)
	tickets := append([]fot.Ticket(nil), trace.Tickets...)
	slices.SortFunc(tickets, func(a, b fot.Ticket) int {
		if !a.Time.Equal(b.Time) {
			return a.Time.Compare(b.Time)
		}
		if a.ID < b.ID {
			return -1
		} else if a.ID > b.ID {
			return 1
		}
		return 0
	})
	return tickets, NewState(census, 0)
}

// TestIncrementalRenderAccounting pins the serve wiring of the delta
// path: current-epoch misses render from fold state (incremental counter
// advances, fallback stays zero), a stale snapshot falls back to the
// full recompute, and disabling the engine routes everything to the
// fallback path.
func TestIncrementalRenderAccounting(t *testing.T) {
	tickets, st := timeSorted(t)
	half := len(tickets) / 2
	st.Fold(tickets[:half], time.Now())

	snap := st.Current()
	if _, err := st.RenderSections(snap, []string{"table1", "fig5"}); err != nil {
		t.Fatal(err)
	}
	sec, eng := st.IncrementalStats()
	if got := sec["table1"]; got.Incremental != 1 || got.Fallback != 0 {
		t.Fatalf("table1 after warm render = %+v, want incremental=1 fallback=0", got)
	}
	if got := sec["fig5"]; got.Incremental != 1 || got.Fallback != 0 {
		t.Fatalf("fig5 after warm render = %+v, want incremental=1 fallback=0", got)
	}
	if eng.Rebuilds != 0 || len(eng.Broken) != 0 {
		t.Fatalf("engine stats = %+v, want no rebuilds, nothing broken", eng)
	}

	// A reader holding the old snapshot after a fold: the engine has
	// moved on, so an uncached section on that snapshot must fall back —
	// and still render the old epoch's bytes.
	st.Fold(tickets[half:], time.Now())
	res, err := st.RenderSections(snap, []string{"table2"})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	sec, _ = st.IncrementalStats()
	if got := sec["table2"]; got.Incremental != 0 || got.Fallback != 1 {
		t.Fatalf("table2 on stale snapshot = %+v, want incremental=0 fallback=1", got)
	}

	// Disabled engine: a current-epoch miss takes the full path too.
	st.SetIncremental(false)
	if _, err := st.RenderSections(st.Current(), []string{"table2"}); err != nil {
		t.Fatal(err)
	}
	sec, _ = st.IncrementalStats()
	if got := sec["table2"]; got.Fallback != 2 {
		t.Fatalf("table2 with engine disabled = %+v, want fallback=2", got)
	}
	st.SetIncremental(true)

	// Re-enabled engine serves the next current-epoch miss from fold state.
	if _, err := st.RenderSections(st.Current(), []string{"fig7"}); err != nil {
		t.Fatal(err)
	}
	sec, _ = st.IncrementalStats()
	if got := sec["fig7"]; got.Incremental != 1 || got.Fallback != 0 {
		t.Fatalf("fig7 after re-enable = %+v, want incremental=1 fallback=0", got)
	}
}

// TestWarmEpochCarriesUnchangedSections pins the fold-time cache
// carry-over: advancing the epoch with rows that cannot change a cached
// section's bytes (an empty replication marker) re-publishes the cached
// render in the new snapshot — no miss, no re-render.
func TestWarmEpochCarriesUnchangedSections(t *testing.T) {
	tickets, st := timeSorted(t)
	st.Fold(tickets, time.Now())
	snap := st.Current()
	first, err := st.RenderSections(snap, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	_, misses0, _ := st.CacheStats()

	// Empty epoch marker (replication path): nothing changed, so the new
	// snapshot's cache must already hold table1.
	if _, err := st.FoldTo(nil, snap.Epoch()+1, time.Now()); err != nil {
		t.Fatal(err)
	}
	snap2 := st.Current()
	if snap2.Epoch() != snap.Epoch()+1 {
		t.Fatalf("epoch = %d, want %d", snap2.Epoch(), snap.Epoch()+1)
	}
	again, err := st.RenderSections(snap2, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first[0].Text, again[0].Text) {
		t.Fatal("carried section bytes differ across an empty epoch advance")
	}
	hits, misses, _ := st.CacheStats()
	if misses != misses0 {
		t.Fatalf("misses advanced %d -> %d across an unchanged-epoch render, want a carried cache hit", misses0, misses)
	}
	if hits == 0 {
		t.Fatal("expected the carried section to count as a cache hit")
	}
}
