package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"dcfail/internal/fot"
	"dcfail/internal/mine"
	"dcfail/internal/predict"
)

// TestPredictEndpoints drives /predict/{host}, /atrisk and the /stats
// predictor counters over a drained frozen trace, and checks the scores
// agree with the batch classification.
func TestPredictEndpoints(t *testing.T) {
	trace, census := smallWorld(t)
	d := New(Options{Census: census, FoldInterval: 10 * time.Millisecond})
	d.StartIngest(FromTrace(trace, 0))
	waitDrained(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	pops := mine.WarningFatalPopulations(fot.BorrowTraceIndex(trace))
	if len(pops) == 0 {
		t.Fatal("degenerate fixture")
	}
	var someHost uint64
	for h := range pops {
		someHost = h
		break
	}

	// /predict/{host}: tracked host scores with the populations the
	// batch rule assigns it.
	resp, body := get(t, srv, "/predict/"+strconv.FormatUint(someHost, 10))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict status %d: %s", resp.StatusCode, body)
	}
	var pr PredictReply
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	want := pops[someHost]
	if pr.Features.Warnings != want.Warnings || pr.Features.Fatals != want.Fatals {
		t.Fatalf("host %d populations (%d, %d), batch says %+v",
			someHost, pr.Features.Warnings, pr.Features.Fatals, want)
	}
	if pr.Score <= 0 || pr.Score >= 1 {
		t.Fatalf("logistic score out of (0,1): %v", pr.Score)
	}
	if pr.Model == "" {
		t.Fatal("model version missing")
	}
	curEpoch := d.State().Current().Epoch()
	if got := resp.Header.Get("X-Epoch"); got != strconv.FormatUint(curEpoch, 10) {
		t.Fatalf("X-Epoch = %s, current epoch %d", got, curEpoch)
	}

	// Unknown host and bad id.
	if resp, _ := get(t, srv, "/predict/18446744073709551615"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown host status %d", resp.StatusCode)
	}
	if resp, _ := get(t, srv, "/predict/notahost"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad host id status %d", resp.StatusCode)
	}

	// /atrisk: n respected, deterministic order, epoch header matches.
	resp, body = get(t, srv, "/atrisk?n=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/atrisk status %d: %s", resp.StatusCode, body)
	}
	var ar AtRiskReply
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Hosts) != 5 {
		t.Fatalf("want 5 hosts, got %d", len(ar.Hosts))
	}
	for i := 1; i < len(ar.Hosts); i++ {
		a, b := ar.Hosts[i-1], ar.Hosts[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Host > b.Host) {
			t.Fatalf("ranking order violated at %d: %+v then %+v", i, a, b)
		}
	}
	if got := resp.Header.Get("X-Epoch"); got != strconv.FormatUint(ar.Epoch, 10) {
		t.Fatalf("X-Epoch %s disagrees with body epoch %d", got, ar.Epoch)
	}
	// Same request twice: byte-identical on a frozen trace.
	_, body2 := get(t, srv, "/atrisk?n=5")
	if string(body) != string(body2) {
		t.Fatal("/atrisk not deterministic on a frozen trace")
	}
	if resp, _ := get(t, srv, "/atrisk?n=0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("n=0 status %d", resp.StatusCode)
	}

	// /stats carries the predictor counters.
	_, body = get(t, srv, "/stats")
	var st StatsReply
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Predict.Hosts != len(pops) {
		t.Fatalf("stats says %d hosts tracked, batch classification has %d", st.Predict.Hosts, len(pops))
	}
	if st.Predict.ScoresServed == 0 || st.Predict.Folds == 0 {
		t.Fatalf("predictor counters not advancing: %+v", st.Predict)
	}
	if st.Predict.Epoch != curEpoch {
		t.Fatalf("predictor epoch %d, snapshot epoch %d", st.Predict.Epoch, curEpoch)
	}
}

// TestPredictorOptionsWiring: a custom scorer configured through
// serve.Options reaches the endpoints.
func TestPredictorOptionsWiring(t *testing.T) {
	trace, census := smallWorld(t)
	d := New(Options{
		Census:       census,
		FoldInterval: 10 * time.Millisecond,
		Predict:      &predict.Options{Scorer: predict.WarningScorer{}, Window: 48 * time.Hour},
	})
	d.StartIngest(FromTrace(trace, 0))
	waitDrained(t, d)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/atrisk?n=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/atrisk status %d: %s", resp.StatusCode, body)
	}
	var ar AtRiskReply
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Model != (predict.WarningScorer{}).Version() {
		t.Fatalf("model %q, want the configured baseline", ar.Model)
	}
}
