package fot

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)

func mkTicket(id uint64, mutate ...func(*Ticket)) Ticket {
	t := Ticket{
		ID:          id,
		HostID:      100 + id%50,
		Hostname:    "host",
		IDC:         "dc-01",
		Rack:        "r01",
		Position:    int(id%40) + 1,
		Device:      HDD,
		Type:        "SMARTFail",
		Time:        t0.Add(time.Duration(id) * time.Hour),
		Category:    Fixing,
		Action:      ActionRepairOrder,
		Operator:    "op-1",
		OpTime:      t0.Add(time.Duration(id)*time.Hour + 48*time.Hour),
		ProductLine: "pl-web",
		DeployTime:  t0.AddDate(-1, 0, 0),
		Model:       "gen3",
	}
	for _, m := range mutate {
		m(&t)
	}
	return t
}

func TestCategoryRoundTrip(t *testing.T) {
	for _, c := range []Category{Fixing, Error, FalseAlarm} {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v: got %v, %v", c, got, err)
		}
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Error("bogus category should fail")
	}
	if !strings.Contains(Category(99).String(), "99") {
		t.Error("unknown category String should embed the value")
	}
}

func TestCategoryIsFailure(t *testing.T) {
	if !Fixing.IsFailure() || !Error.IsFailure() {
		t.Error("Fixing and Error are failures")
	}
	if FalseAlarm.IsFailure() {
		t.Error("FalseAlarm is not a failure")
	}
}

func TestComponentRoundTrip(t *testing.T) {
	comps := Components()
	if len(comps) != 11 {
		t.Fatalf("got %d components, want 11", len(comps))
	}
	for _, c := range comps {
		got, err := ParseComponent(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v: got %v, %v", c, got, err)
		}
	}
	if _, err := ParseComponent("gpu"); err == nil {
		t.Error("unknown component should fail")
	}
}

func TestActionRoundTrip(t *testing.T) {
	for a := ActionNone; a <= ActionMarkFalseAlarm; a++ {
		got, err := ParseAction(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: got %v, %v", a, got, err)
		}
	}
	if _, err := ParseAction("bogus"); err == nil {
		t.Error("bogus action should fail")
	}
}

func TestResponseTime(t *testing.T) {
	tk := mkTicket(1)
	rt, ok := tk.ResponseTime()
	if !ok || rt != 48*time.Hour {
		t.Errorf("rt = %v, %v", rt, ok)
	}
	tk.OpTime = time.Time{}
	if _, ok := tk.ResponseTime(); ok {
		t.Error("zero op time should report no response")
	}
	tk.OpTime = tk.Time.Add(-time.Hour)
	if _, ok := tk.ResponseTime(); ok {
		t.Error("op before detection should report no response")
	}
}

func TestAgeAtFailure(t *testing.T) {
	tk := mkTicket(1)
	age, ok := tk.AgeAtFailure()
	if !ok || age <= 0 {
		t.Errorf("age = %v, %v", age, ok)
	}
	tk.DeployTime = time.Time{}
	if _, ok := tk.AgeAtFailure(); ok {
		t.Error("zero deploy time should report unknown age")
	}
}

func TestTicketValidate(t *testing.T) {
	if err := mkTicket(1).Validate(); err != nil {
		t.Fatalf("valid ticket rejected: %v", err)
	}
	bad := []func(*Ticket){
		func(t *Ticket) { t.ID = 0 },
		func(t *Ticket) { t.HostID = 0 },
		func(t *Ticket) { t.Device = 0 },
		func(t *Ticket) { t.Device = Component(99) },
		func(t *Ticket) { t.Type = "" },
		func(t *Ticket) { t.Time = time.Time{} },
		func(t *Ticket) { t.Category = 0 },
		func(t *Ticket) { t.OpTime = t.Time.Add(-time.Minute) },
	}
	for i, m := range bad {
		if err := mkTicket(1, m).Validate(); err == nil {
			t.Errorf("mutation %d should invalidate ticket", i)
		}
	}
}

func TestTypeCatalogue(t *testing.T) {
	for _, c := range Components() {
		types := TypesOf(c)
		if len(types) == 0 {
			t.Errorf("%v has no failure types", c)
			continue
		}
		sum := 0.0
		seen := map[string]bool{}
		for _, ft := range types {
			if ft.Name == "" || ft.Explanation == "" {
				t.Errorf("%v: incomplete type %+v", c, ft)
			}
			if ft.Weight <= 0 {
				t.Errorf("%v/%s: non-positive weight", c, ft.Name)
			}
			if seen[ft.Name] {
				t.Errorf("%v: duplicate type %s", c, ft.Name)
			}
			seen[ft.Name] = true
			sum += ft.Weight
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%v: weights sum to %g, want 1", c, sum)
		}
	}
}

func TestLookupType(t *testing.T) {
	ft, ok := LookupType(HDD, "SMARTFail")
	if !ok || ft.Fatal {
		t.Errorf("SMARTFail lookup: %+v, %v", ft, ok)
	}
	if !IsFatalType(Memory, "DIMMUE") {
		t.Error("DIMMUE should be fatal")
	}
	if IsFatalType(Memory, "DIMMCE") {
		t.Error("DIMMCE should not be fatal")
	}
	if IsFatalType(HDD, "nope") {
		t.Error("unknown type should not be fatal")
	}
	// The paper's Misc breakdown: 44% no description.
	misc, ok := LookupType(Misc, "MiscNoDescription")
	if !ok || misc.Weight != 0.44 {
		t.Errorf("Misc no-description weight = %+v", misc)
	}
}
