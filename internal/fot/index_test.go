package fot

import (
	"testing"
	"time"
)

func indexTrace() *Trace {
	tickets := make([]Ticket, 0, 40)
	for i := 1; i <= 40; i++ {
		tk := mkTicket(uint64(i))
		switch {
		case i%7 == 0:
			tk.Category = FalseAlarm
		case i%5 == 0:
			tk.Category = Error
		}
		if i%3 == 0 {
			tk.Device = Memory
		}
		if i%4 == 0 {
			tk.IDC = "dc-02"
			tk.ProductLine = "pl-storage"
		}
		// Shuffle detection order so sorting is observable.
		tk.Time = t0.Add(time.Duration((i*17)%40) * time.Hour)
		tickets = append(tickets, tk)
	}
	return NewTrace(tickets)
}

func TestTraceIndexMatchesTraceViews(t *testing.T) {
	tr := indexTrace()
	ix := NewTraceIndex(tr)

	sameTickets := func(name string, got, want *Trace) {
		t.Helper()
		if len(got.Tickets) != len(want.Tickets) {
			t.Fatalf("%s: got %d tickets, want %d", name, len(got.Tickets), len(want.Tickets))
		}
		for i := range got.Tickets {
			if got.Tickets[i].ID != want.Tickets[i].ID {
				t.Fatalf("%s: ticket %d is id %d, want %d", name, i, got.Tickets[i].ID, want.Tickets[i].ID)
			}
		}
	}

	sameTickets("All", ix.All(), tr)
	sameTickets("Failures", ix.Failures(), tr.Failures())
	sameTickets("ByCategory", ix.ByCategory(FalseAlarm), tr.ByCategory(FalseAlarm))
	sameTickets("FailuresByComponent", ix.FailuresByComponent(Memory), tr.Failures().ByComponent(Memory))
	sameTickets("AllByComponent", ix.AllByComponent(HDD), tr.ByComponent(HDD))
	sameTickets("FailuresByIDC", ix.FailuresByIDC("dc-02"), tr.Failures().ByIDC("dc-02"))
	sameTickets("FailuresByProductLine", ix.FailuresByProductLine("pl-storage"), tr.Failures().ByProductLine("pl-storage"))
	sameTickets("FirstPerInstance", ix.FailuresFirstPerInstance(), tr.Failures().FirstPerInstance())

	ordered := tr.Failures()
	ordered.SortByTime()
	sameTickets("FailuresByTime", ix.FailuresByTime(), ordered)

	if got, want := ix.FailureIDCs(), tr.Failures().IDCs(); len(got) != len(want) {
		t.Fatalf("FailureIDCs: got %v, want %v", got, want)
	}
	if got, want := ix.FailureProductLines(), tr.Failures().ProductLines(); len(got) != len(want) {
		t.Fatalf("FailureProductLines: got %v, want %v", got, want)
	}
	wantCounts := tr.Failures().CountByComponent()
	for c, n := range ix.FailureCountByComponent() {
		if wantCounts[c] != n {
			t.Fatalf("FailureCountByComponent[%v] = %d, want %d", c, n, wantCounts[c])
		}
	}
	wantTBF := tr.Failures().TBF()
	gotTBF := ix.FailureTBF()
	if len(gotTBF) != len(wantTBF) {
		t.Fatalf("FailureTBF: %d gaps, want %d", len(gotTBF), len(wantTBF))
	}
	for i := range gotTBF {
		if gotTBF[i] != wantTBF[i] {
			t.Fatalf("FailureTBF[%d] = %v, want %v", i, gotTBF[i], wantTBF[i])
		}
	}
	lo, hi, ok := ix.FailureSpan()
	wlo, whi, wok := tr.Failures().Span()
	if ok != wok || !lo.Equal(wlo) || !hi.Equal(whi) {
		t.Fatalf("FailureSpan: got (%v, %v, %v), want (%v, %v, %v)", lo, hi, ok, wlo, whi, wok)
	}

	if ix.ByCategory(Category(99)).Len() != 0 {
		t.Error("unknown category should yield an empty trace")
	}
	if ix.FailuresByIDC("nope").Len() != 0 {
		t.Error("unknown IDC should yield an empty trace")
	}
}

// TestTraceIndexImmutableAfterSourceMutation enforces the snapshot
// contract: once NewTraceIndex has run, reordering or editing the source
// trace must not change any view the index serves.
func TestTraceIndexImmutableAfterSourceMutation(t *testing.T) {
	tr := indexTrace()
	wantFailures := tr.Failures()
	ix := NewTraceIndex(tr)

	// Touch one view before mutation, leave the rest lazy: both paths
	// must survive the mutation below.
	if ix.Failures().Len() != wantFailures.Len() {
		t.Fatal("failures view wrong before mutation")
	}

	tr.SortByTime()
	for i := range tr.Tickets {
		tr.Tickets[i].Category = FalseAlarm
		tr.Tickets[i].IDC = "poisoned"
		tr.Tickets[i].Time = tr.Tickets[i].Time.Add(1000 * time.Hour)
	}

	if got := ix.Failures().Len(); got != wantFailures.Len() {
		t.Errorf("Failures after source mutation: %d tickets, want %d", got, wantFailures.Len())
	}
	for i, tk := range ix.All().Tickets {
		if tk.IDC == "poisoned" {
			t.Fatalf("ticket %d leaked source mutation", i)
		}
	}
	for _, idc := range ix.FailureIDCs() {
		if idc == "poisoned" {
			t.Fatal("FailureIDCs leaked source mutation")
		}
	}
	lo, _, _ := ix.FailureSpan()
	wlo, _, _ := wantFailures.Span()
	if !lo.Equal(wlo) {
		t.Errorf("FailureSpan lo moved after source mutation: %v, want %v", lo, wlo)
	}
}

func TestTraceIndexNilAndEmpty(t *testing.T) {
	for _, ix := range []*TraceIndex{NewTraceIndex(nil), BorrowTraceIndex(nil), NewTraceIndex(&Trace{})} {
		if ix.Len() != 0 || ix.Failures().Len() != 0 || len(ix.FailureTBF()) != 0 {
			t.Fatal("empty index should serve empty views")
		}
		if _, _, ok := ix.FailureSpan(); ok {
			t.Fatal("empty index should have no span")
		}
		buckets, days := ix.FailureDayBuckets()
		if len(buckets) != 0 || days != 0 {
			t.Fatal("empty index should have no day buckets")
		}
	}
}

func TestUTCDayIndex(t *testing.T) {
	d1 := time.Date(2013, 6, 1, 23, 59, 0, 0, time.UTC)
	d2 := time.Date(2013, 6, 2, 0, 1, 0, 0, time.UTC)
	if utcDayIndex(d1) == utcDayIndex(d2) {
		t.Error("instants across midnight must land in different buckets")
	}
	if utcDayIndex(d2)-utcDayIndex(d1) != 1 {
		t.Error("consecutive days must have consecutive indexes")
	}
	d3 := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	if utcDayIndex(d1) != utcDayIndex(d3) {
		t.Error("same calendar day must share a bucket")
	}
}

func TestFailureDayBuckets(t *testing.T) {
	mk := func(id uint64, at time.Time) Ticket {
		return mkTicket(id, func(tk *Ticket) { tk.Time = at })
	}
	day := time.Date(2013, 3, 10, 0, 0, 0, 0, time.UTC)
	tr := NewTrace([]Ticket{
		mk(1, day.Add(23*time.Hour)),
		mk(2, day.Add(23*time.Hour+30*time.Minute)),
		mk(3, day.Add(24*time.Hour+15*time.Minute)),
		mk(4, day.Add(24*time.Hour+30*time.Minute)),
	})
	buckets, days := NewTraceIndex(tr).FailureDayBuckets()
	if days != 2 {
		t.Fatalf("span touches 2 calendar days, got %d", days)
	}
	hdd := buckets[HDD]
	if hdd[0] != 2 || hdd[1] != 2 {
		t.Fatalf("want 2 failures on each day, got %v", hdd)
	}
}
