package fot

// Fuzz targets for the trace codecs. Under plain `go test` the seed
// corpus runs as regression cases; `go test -fuzz=FuzzReadJSONL` explores
// further.

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzUnmarshalJSONLine(f *testing.F) {
	tr := buildTrace(3)
	for _, tk := range tr.Tickets {
		line, err := MarshalJSONLine(tk)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(line))
	}
	f.Add(`{}`)
	f.Add(`{"error_device":"hdd"`)
	f.Add(`{"error_device":"hdd","error_time":"2013-01-01T00:00:00Z","category":"D_fixing","action":"none"}`)
	f.Fuzz(func(t *testing.T, line string) {
		tk, err := UnmarshalJSONLine([]byte(line))
		if err != nil {
			return // malformed input must error, never panic
		}
		// Round-trip stability for accepted inputs.
		out, err := MarshalJSONLine(tk)
		if err != nil {
			t.Fatalf("re-marshal failed for accepted ticket: %v", err)
		}
		tk2, err := UnmarshalJSONLine(out)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if tk2.Device != tk.Device || tk2.Type != tk.Type || !tk2.Time.Equal(tk.Time) {
			t.Fatal("round trip not stable")
		}
	})
}

func FuzzReadCSV(f *testing.F) {
	tr := buildTrace(3)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(strings.Join(csvHeader, ",") + "\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted traces must re-serialize.
		var out bytes.Buffer
		if err := got.WriteCSV(&out); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
	})
}

func FuzzReadJSONL(f *testing.F) {
	tr := buildTrace(3)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteJSONL(&out); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
	})
}
