package fot

import (
	"cmp"
	"slices"
	"sync"
	"sync/atomic"
)

// Columns is the structure-of-arrays decomposition of one ticket slice:
// every field an analysis filters, groups or counts on is pulled out
// into its own dense column, indexed by row number (the ticket's
// position in the source slice). Views over the trace — the failure
// subset, per-component groups, time order — are []int32 row-index
// slices into these shared columns, so deriving a view never copies a
// Ticket and never re-sorts what a shared permutation already ordered.
//
// Strings with small value sets (IDC, product line, error type, slot)
// are interned to dense uint32 symbols: grouping and equality become
// integer ops, and per-symbol groups become counting sorts. Symbols are
// assigned in first-seen row order, so they are only meaningful for
// equality and grouping — anything order-sensitive must sort the
// resolved strings, never the symbol ids.
//
// A Columns is immutable once published (see extend for the one
// controlled exception) and safe for concurrent readers.
type Columns struct {
	tickets []Ticket // shared row storage; read-only

	TimeNS   []int64 // Time.UnixNano()
	ID       []uint64
	Host     []uint64
	Device   []uint8 // Component code
	Category []uint8 // Category code
	Weekday  []uint8 // Time.Weekday(), in the ticket's own location
	Hour     []uint8 // Time.Hour(), in the ticket's own location
	DayIdx   []int32 // utcDayIndex(Time)
	Position []int32 // rack slot number
	IDCSym   []uint32
	LineSym  []uint32 // product line
	TypeSym  []uint32 // error type
	SlotSym  []uint32 // component instance within the server
	RTNS     []int64  // ResponseTime() in ns; -1 when none
	AgeNS    []int64  // AgeAtFailure() in ns; -1 when unknown

	idcs  *symtab
	lines *symtab
	types *symtab
	slots *symtab

	// Perm support. parent links an extended Columns to the prefix it
	// grew from until the permutation is built; extended marks a prefix
	// that has already donated its spare array capacity to one
	// extension (a second concurrent extension falls back to a fresh
	// build instead of racing on the shared backing arrays).
	parent    *Columns
	parentLen int
	extended  atomic.Bool

	permOnce sync.Once
	permVal  []int32
	permDone atomic.Bool
}

// Len returns the number of rows.
func (c *Columns) Len() int { return len(c.TimeNS) }

// Ticket returns a read-only pointer to row r's full ticket, for the
// cold fields (Hostname, Detail, Model, raw time.Time values) that do
// not justify a column.
func (c *Columns) Ticket(r int32) *Ticket { return &c.tickets[r] }

// IDCName resolves an IDC symbol. Symbol ids are first-seen order —
// resolve before sorting, never sort by id.
func (c *Columns) IDCName(sym uint32) string { return c.idcs.strs[sym] }

// LineName resolves a product-line symbol.
func (c *Columns) LineName(sym uint32) string { return c.lines.strs[sym] }

// TypeName resolves an error-type symbol.
func (c *Columns) TypeName(sym uint32) string { return c.types.strs[sym] }

// SlotName resolves a slot symbol.
func (c *Columns) SlotName(sym uint32) string { return c.slots.strs[sym] }

// IDCSymOf looks up the symbol for an IDC string; ok is false when the
// string never occurs in the trace.
func (c *Columns) IDCSymOf(idc string) (uint32, bool) { return c.idcs.lookup(idc) }

// LineSymOf looks up the symbol for a product-line string.
func (c *Columns) LineSymOf(line string) (uint32, bool) { return c.lines.lookup(line) }

// TypeSymOf looks up the symbol for an error-type string.
func (c *Columns) TypeSymOf(typ string) (uint32, bool) { return c.types.lookup(typ) }

// IDCCount returns the number of distinct IDC symbols.
func (c *Columns) IDCCount() int { return len(c.idcs.strs) }

// LineCount returns the number of distinct product-line symbols.
func (c *Columns) LineCount() int { return len(c.lines.strs) }

// TypeCount returns the number of distinct error-type symbols.
func (c *Columns) TypeCount() int { return len(c.types.strs) }

// symtab interns strings to dense uint32 symbols in first-seen order.
type symtab struct {
	ids  map[string]uint32
	strs []string
}

func newSymtab() *symtab { return &symtab{ids: make(map[string]uint32)} }

func (s *symtab) intern(v string) uint32 {
	if id, ok := s.ids[v]; ok {
		return id
	}
	id := uint32(len(s.strs))
	s.ids[v] = id
	s.strs = append(s.strs, v)
	return id
}

func (s *symtab) lookup(v string) (uint32, bool) {
	id, ok := s.ids[v]
	return id, ok
}

func (s *symtab) clone() *symtab {
	cp := &symtab{
		ids:  make(map[string]uint32, len(s.ids)),
		strs: slices.Clip(slices.Clone(s.strs)),
	}
	for k, v := range s.ids {
		cp.ids[k] = v
	}
	return cp
}

// cowSymtab wraps a possibly-shared symtab during an extension: lookups
// hit the shared table until the first unseen string forces a private
// clone, so extending with no new symbols shares the parent's tables.
type cowSymtab struct {
	tab   *symtab
	owned bool
}

func (s *cowSymtab) intern(v string) uint32 {
	if id, ok := s.tab.lookup(v); ok {
		return id
	}
	if !s.owned {
		s.tab = s.tab.clone()
		s.owned = true
	}
	return s.tab.intern(v)
}

// buildColumns decomposes tickets in one pass.
func buildColumns(tickets []Ticket) *Columns {
	n := len(tickets)
	c := &Columns{
		tickets:  tickets,
		TimeNS:   make([]int64, n),
		ID:       make([]uint64, n),
		Host:     make([]uint64, n),
		Device:   make([]uint8, n),
		Category: make([]uint8, n),
		Weekday:  make([]uint8, n),
		Hour:     make([]uint8, n),
		DayIdx:   make([]int32, n),
		Position: make([]int32, n),
		IDCSym:   make([]uint32, n),
		LineSym:  make([]uint32, n),
		TypeSym:  make([]uint32, n),
		SlotSym:  make([]uint32, n),
		RTNS:     make([]int64, n),
		AgeNS:    make([]int64, n),
		idcs:     newSymtab(),
		lines:    newSymtab(),
		types:    newSymtab(),
		slots:    newSymtab(),
	}
	for i := range tickets {
		fillRow(c, i, &tickets[i], c.idcs.intern, c.lines.intern, c.types.intern, c.slots.intern)
	}
	return c
}

// extend grows prev's columns by the tail rows of tickets, whose prefix
// tickets[:prev.Len()] must hold the same values prev was built from.
// The new Columns shares prev's array backing (append reuses spare
// capacity) and, when the tail introduces no new strings, prev's symbol
// tables. Each Columns can donate its capacity to at most one
// extension; a second caller gets nil and must build fresh. Readers of
// prev are never affected: they read only prev's own length.
func extend(prev *Columns, tickets []Ticket) *Columns {
	if !prev.extended.CompareAndSwap(false, true) {
		return nil
	}
	n, pn := len(tickets), prev.Len()
	k := n - pn
	c := &Columns{
		tickets:   tickets,
		TimeNS:    append(prev.TimeNS, make([]int64, k)...),
		ID:        append(prev.ID, make([]uint64, k)...),
		Host:      append(prev.Host, make([]uint64, k)...),
		Device:    append(prev.Device, make([]uint8, k)...),
		Category:  append(prev.Category, make([]uint8, k)...),
		Weekday:   append(prev.Weekday, make([]uint8, k)...),
		Hour:      append(prev.Hour, make([]uint8, k)...),
		DayIdx:    append(prev.DayIdx, make([]int32, k)...),
		Position:  append(prev.Position, make([]int32, k)...),
		IDCSym:    append(prev.IDCSym, make([]uint32, k)...),
		LineSym:   append(prev.LineSym, make([]uint32, k)...),
		TypeSym:   append(prev.TypeSym, make([]uint32, k)...),
		SlotSym:   append(prev.SlotSym, make([]uint32, k)...),
		RTNS:      append(prev.RTNS, make([]int64, k)...),
		AgeNS:     append(prev.AgeNS, make([]int64, k)...),
		parent:    prev,
		parentLen: pn,
	}
	idcs := cowSymtab{tab: prev.idcs}
	lines := cowSymtab{tab: prev.lines}
	types := cowSymtab{tab: prev.types}
	slots := cowSymtab{tab: prev.slots}
	for i := pn; i < n; i++ {
		fillRow(c, i, &tickets[i], idcs.intern, lines.intern, types.intern, slots.intern)
	}
	c.idcs, c.lines, c.types, c.slots = idcs.tab, lines.tab, types.tab, slots.tab
	return c
}

func fillRow(c *Columns, i int, tk *Ticket, idc, line, typ, slot func(string) uint32) {
	c.TimeNS[i] = tk.Time.UnixNano()
	c.ID[i] = tk.ID
	c.Host[i] = tk.HostID
	c.Device[i] = uint8(tk.Device)
	c.Category[i] = uint8(tk.Category)
	c.Weekday[i] = uint8(tk.Time.Weekday())
	c.Hour[i] = uint8(tk.Time.Hour())
	c.DayIdx[i] = int32(utcDayIndex(tk.Time))
	c.Position[i] = int32(tk.Position)
	c.IDCSym[i] = idc(tk.IDC)
	c.LineSym[i] = line(tk.ProductLine)
	c.TypeSym[i] = typ(tk.Type)
	c.SlotSym[i] = slot(tk.Slot)
	if rt, ok := tk.ResponseTime(); ok {
		c.RTNS[i] = int64(rt)
	} else {
		c.RTNS[i] = -1
	}
	if age, ok := tk.AgeAtFailure(); ok {
		c.AgeNS[i] = int64(age)
	} else {
		c.AgeNS[i] = -1
	}
}

// rowLess is the one global ordering: detection time, ties by ticket
// id. Every time-ordered view is a subsequence of this permutation.
func (c *Columns) rowLess(a, b int32) int {
	if d := cmp.Compare(c.TimeNS[a], c.TimeNS[b]); d != 0 {
		return d
	}
	return cmp.Compare(c.ID[a], c.ID[b])
}

// Perm returns all rows ordered by (time, id). It is computed once: an
// extended Columns merges its parent's already-sorted permutation with
// the sorted tail in O(n) instead of re-sorting the world.
func (c *Columns) Perm() []int32 {
	c.permOnce.Do(func() {
		if p := c.parent; p != nil && p.permDone.Load() {
			c.permVal = mergePerm(c, p.permVal, c.parentLen)
		} else {
			c.permVal = sortPerm(c)
		}
		c.permDone.Store(true)
		c.parent = nil // release the epoch chain for GC
	})
	return c.permVal
}

func sortPerm(c *Columns) []int32 {
	perm := make([]int32, c.Len())
	for i := range perm {
		perm[i] = int32(i)
	}
	slices.SortFunc(perm, c.rowLess)
	return perm
}

func mergePerm(c *Columns, parentPerm []int32, parentLen int) []int32 {
	tail := make([]int32, 0, c.Len()-parentLen)
	for i := parentLen; i < c.Len(); i++ {
		tail = append(tail, int32(i))
	}
	slices.SortFunc(tail, c.rowLess)
	out := make([]int32, 0, c.Len())
	i, j := 0, 0
	for i < len(parentPerm) && j < len(tail) {
		if c.rowLess(parentPerm[i], tail[j]) <= 0 {
			out = append(out, parentPerm[i])
			i++
		} else {
			out = append(out, tail[j])
			j++
		}
	}
	out = append(out, parentPerm[i:]...)
	return append(out, tail[j:]...)
}
