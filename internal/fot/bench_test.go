package fot

import (
	"bytes"
	"testing"
)

func benchTrace(n int) *Trace {
	tickets := make([]Ticket, 0, n)
	for i := 1; i <= n; i++ {
		tickets = append(tickets, mkTicket(uint64(i)))
	}
	return NewTrace(tickets)
}

func BenchmarkWriteCSV(b *testing.B) {
	tr := benchTrace(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCSV(b *testing.B) {
	tr := benchTrace(10000)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteJSONL(b *testing.B) {
	tr := benchTrace(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadJSONL(b *testing.B) {
	tr := benchTrace(10000)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadJSONL(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceTBF(b *testing.B) {
	tr := benchTrace(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.TBF(); len(got) == 0 {
			b.Fatal("no gaps")
		}
	}
}

func BenchmarkGroupByHost(b *testing.B) {
	tr := benchTrace(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.GroupByHost(); len(got) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkFilterFailures exercises Filter at the Failures() selectivity
// (~98% of tickets kept). With the old len/2 preallocation this path
// re-grew the output slice per call (4 allocs/op and ~3x the bytes at
// this size); count-then-copy sizes it exactly (2 allocs/op: slice +
// Trace) and halves the wall time.
func BenchmarkFilterFailures(b *testing.B) {
	tickets := make([]Ticket, 0, 100000)
	for i := 1; i <= 100000; i++ {
		tk := mkTicket(uint64(i))
		if i%50 == 0 {
			tk.Category = FalseAlarm
		}
		tickets = append(tickets, tk)
	}
	tr := NewTrace(tickets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.Failures(); got.Len() == 0 {
			b.Fatal("no failures")
		}
	}
}
