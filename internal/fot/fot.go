// Package fot defines the Failure Operation Ticket (FOT) data model used
// throughout dcfail: the ticket schema, component-class and category
// enumerations, the failure-type catalogue, and the Trace container with
// filtering and indexing helpers.
//
// The schema mirrors DSN'17 §II: each FOT carries id, host id, hostname,
// host idc, error device, error type, error time, error position and
// error detail; tickets in D_fixing and D_falsealarm additionally carry
// the operator action, the operator id, and op_time. Product line, deploy
// time and server model are enrichment fields the paper's analyses join
// in from the asset database (needed for Figs. 6 and 11).
package fot

import (
	"fmt"
	"time"
)

// Category classifies how a ticket was ultimately handled (paper Table I).
type Category int

const (
	// Fixing tickets received a repair order (70.3% in the paper).
	Fixing Category = iota + 1
	// Error tickets were left unrepaired, typically out-of-warranty
	// servers that are decommissioned or left degraded (28.0%).
	Error
	// FalseAlarm tickets were detector mistakes (1.7%).
	FalseAlarm
)

var categoryNames = map[Category]string{
	Fixing:     "D_fixing",
	Error:      "D_error",
	FalseAlarm: "D_falsealarm",
}

func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// ParseCategory converts the wire name (e.g. "D_fixing") back to a Category.
func ParseCategory(s string) (Category, error) {
	for c, name := range categoryNames {
		if name == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("fot: unknown category %q", s)
}

// IsFailure reports whether the category counts as a real failure for the
// paper's analyses (D_fixing and D_error; false alarms are excluded).
func (c Category) IsFailure() bool {
	return c == Fixing || c == Error
}

// Component is a hardware component class (paper Table II).
type Component int

const (
	HDD Component = iota + 1
	Misc
	Memory
	Power
	RAIDCard
	FlashCard
	Motherboard
	SSD
	Fan
	HDDBackboard
	CPU

	numComponents = int(CPU)
)

var componentNames = [...]string{
	HDD:          "hdd",
	Misc:         "misc",
	Memory:       "memory",
	Power:        "power",
	RAIDCard:     "raid_card",
	FlashCard:    "flash_card",
	Motherboard:  "motherboard",
	SSD:          "ssd",
	Fan:          "fan",
	HDDBackboard: "hdd_backboard",
	CPU:          "cpu",
}

func (c Component) String() string {
	if c >= 1 && int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// ParseComponent converts a wire name (e.g. "hdd") back to a Component.
func ParseComponent(s string) (Component, error) {
	for i := 1; i < len(componentNames); i++ {
		if componentNames[i] == s {
			return Component(i), nil
		}
	}
	return 0, fmt.Errorf("fot: unknown component %q", s)
}

// Components returns every component class in Table II order.
func Components() []Component {
	out := make([]Component, 0, numComponents)
	for i := 1; i <= numComponents; i++ {
		out = append(out, Component(i))
	}
	return out
}

// Action is the operator's response that closes a ticket.
type Action int

const (
	// ActionNone means the ticket has not been closed (no op_time).
	ActionNone Action = iota
	// ActionRepairOrder is the typical D_fixing response: issue an RO.
	ActionRepairOrder
	// ActionDecommission retires a broken out-of-warranty server.
	ActionDecommission
	// ActionIgnore leaves a partially failed out-of-warranty server in
	// production.
	ActionIgnore
	// ActionMarkFalseAlarm closes a detector mistake.
	ActionMarkFalseAlarm
)

var actionNames = [...]string{
	ActionNone:           "none",
	ActionRepairOrder:    "repair_order",
	ActionDecommission:   "decommission",
	ActionIgnore:         "ignore",
	ActionMarkFalseAlarm: "false_alarm",
}

func (a Action) String() string {
	if a >= 0 && int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// ParseAction converts a wire name back to an Action.
func ParseAction(s string) (Action, error) {
	for i := range actionNames {
		if actionNames[i] == s {
			return Action(i), nil
		}
	}
	return 0, fmt.Errorf("fot: unknown action %q", s)
}

// Ticket is one failure operation ticket.
type Ticket struct {
	ID       uint64    `json:"id"`
	HostID   uint64    `json:"host_id"`
	Hostname string    `json:"hostname"`
	IDC      string    `json:"host_idc"` // datacenter identifier
	Rack     string    `json:"rack"`
	Position int       `json:"position"` // slot number within the rack
	Device   Component `json:"error_device"`
	// Slot identifies the failing component instance within the server
	// (the paper's error_position, e.g. "sdh8" or "dimm3") — the key for
	// telling a repeating failure from a second instance failing.
	Slot   string    `json:"error_slot,omitempty"`
	Type   string    `json:"error_type"`
	Time   time.Time `json:"error_time"` // detection timestamp
	Detail string    `json:"error_detail,omitempty"`

	Category Category  `json:"category"`
	Action   Action    `json:"action"`
	Operator string    `json:"operator,omitempty"`
	OpTime   time.Time `json:"op_time,omitempty"` // zero if never closed

	// Enrichment fields joined from the asset database.
	ProductLine string    `json:"product_line"`
	DeployTime  time.Time `json:"deploy_time"`
	Model       string    `json:"model,omitempty"`
}

// ResponseTime returns op_time − error_time and whether the ticket has a
// recorded operator response (paper §VI's RT metric).
func (t Ticket) ResponseTime() (time.Duration, bool) {
	if t.OpTime.IsZero() || t.OpTime.Before(t.Time) {
		return 0, false
	}
	return t.OpTime.Sub(t.Time), true
}

// AgeAtFailure returns the component's time in production at failure,
// and whether deploy time is known.
func (t Ticket) AgeAtFailure() (time.Duration, bool) {
	if t.DeployTime.IsZero() || t.Time.Before(t.DeployTime) {
		return 0, false
	}
	return t.Time.Sub(t.DeployTime), true
}

// Validate reports schema violations in the ticket.
func (t Ticket) Validate() error {
	switch {
	case t.ID == 0:
		return fmt.Errorf("fot: ticket has zero id")
	case t.HostID == 0:
		return fmt.Errorf("fot: ticket %d has zero host id", t.ID)
	case t.Device < 1 || int(t.Device) > numComponents:
		return fmt.Errorf("fot: ticket %d has invalid device %d", t.ID, int(t.Device))
	case t.Type == "":
		return fmt.Errorf("fot: ticket %d has empty error type", t.ID)
	case t.Time.IsZero():
		return fmt.Errorf("fot: ticket %d has zero error time", t.ID)
	case t.Category < Fixing || t.Category > FalseAlarm:
		return fmt.Errorf("fot: ticket %d has invalid category %d", t.ID, int(t.Category))
	case !t.OpTime.IsZero() && t.OpTime.Before(t.Time):
		return fmt.Errorf("fot: ticket %d closed before it was detected", t.ID)
	}
	return nil
}
