package fot

import (
	"testing"
	"time"
)

func buildTrace(n int) *Trace {
	tickets := make([]Ticket, 0, n)
	for i := 1; i <= n; i++ {
		tk := mkTicket(uint64(i))
		switch i % 4 {
		case 0:
			tk.Category = Error
			tk.Action = ActionIgnore
			tk.OpTime = time.Time{}
		case 1:
			tk.Device = Memory
			tk.Type = "DIMMCE"
		case 2:
			tk.IDC = "dc-02"
			tk.ProductLine = "pl-hadoop"
		}
		tickets = append(tickets, tk)
	}
	return NewTrace(tickets)
}

func TestTraceFilters(t *testing.T) {
	tr := buildTrace(100)
	if tr.Len() != 100 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got := tr.ByCategory(Error).Len(); got != 25 {
		t.Errorf("error tickets = %d, want 25", got)
	}
	if got := tr.Failures().Len(); got != 100 {
		t.Errorf("failures = %d, want 100 (no false alarms)", got)
	}
	if got := tr.ByComponent(Memory).Len(); got != 25 {
		t.Errorf("memory = %d, want 25", got)
	}
	if got := tr.ByIDC("dc-02").Len(); got != 25 {
		t.Errorf("dc-02 = %d, want 25", got)
	}
	if got := tr.ByProductLine("pl-hadoop").Len(); got != 25 {
		t.Errorf("pl-hadoop = %d, want 25", got)
	}
}

func TestTraceBetween(t *testing.T) {
	tr := buildTrace(48)
	lo := t0.Add(10 * time.Hour)
	hi := t0.Add(20 * time.Hour)
	sub := tr.Between(lo, hi)
	if sub.Len() != 10 {
		t.Errorf("between = %d, want 10", sub.Len())
	}
	for _, tk := range sub.Tickets {
		if tk.Time.Before(lo) || !tk.Time.Before(hi) {
			t.Errorf("ticket %d outside window", tk.ID)
		}
	}
}

func TestTraceSortAndClone(t *testing.T) {
	tr := buildTrace(10)
	// Reverse, then sort.
	for i, j := 0, len(tr.Tickets)-1; i < j; i, j = i+1, j-1 {
		tr.Tickets[i], tr.Tickets[j] = tr.Tickets[j], tr.Tickets[i]
	}
	clone := tr.Clone()
	tr.SortByTime()
	for i := 1; i < tr.Len(); i++ {
		if tr.Tickets[i].Time.Before(tr.Tickets[i-1].Time) {
			t.Fatal("not sorted")
		}
	}
	// Clone must be unaffected by the sort.
	if clone.Tickets[0].ID == tr.Tickets[0].ID {
		t.Error("clone aliases original")
	}
}

func TestTraceCounts(t *testing.T) {
	tr := buildTrace(100)
	byComp := tr.CountByComponent()
	if byComp[HDD]+byComp[Memory] != 100 {
		t.Errorf("component counts: %v", byComp)
	}
	byCat := tr.CountByCategory()
	if byCat[Fixing] != 75 || byCat[Error] != 25 {
		t.Errorf("category counts: %v", byCat)
	}
	byType := tr.CountByType()
	if byType["DIMMCE"] != 25 {
		t.Errorf("type counts: %v", byType)
	}
}

func TestTraceDistinct(t *testing.T) {
	tr := buildTrace(10)
	idcs := tr.IDCs()
	if len(idcs) != 2 || idcs[0] != "dc-01" || idcs[1] != "dc-02" {
		t.Errorf("idcs = %v", idcs)
	}
	pls := tr.ProductLines()
	if len(pls) != 2 {
		t.Errorf("product lines = %v", pls)
	}
}

func TestTraceGroupByHost(t *testing.T) {
	tr := buildTrace(100)
	groups := tr.GroupByHost()
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 100 {
		t.Errorf("grouped total = %d", total)
	}
}

func TestTraceTBF(t *testing.T) {
	tickets := []Ticket{
		mkTicket(1, func(t *Ticket) { t.Time = t0 }),
		mkTicket(2, func(t *Ticket) { t.Time = t0.Add(30 * time.Minute) }),
		mkTicket(3, func(t *Ticket) { t.Time = t0.Add(30 * time.Minute) }), // batch: zero gap
		mkTicket(4, func(t *Ticket) { t.Time = t0.Add(90 * time.Minute) }),
	}
	tr := NewTrace(tickets)
	tbf := tr.TBF()
	want := []float64{30, 0, 60}
	if len(tbf) != len(want) {
		t.Fatalf("tbf = %v", tbf)
	}
	for i := range want {
		if tbf[i] != want[i] {
			t.Errorf("tbf[%d] = %g, want %g", i, tbf[i], want[i])
		}
	}
	if got := NewTrace(tickets[:1]).TBF(); got != nil {
		t.Error("single-ticket TBF should be nil")
	}
}

func TestTraceSpan(t *testing.T) {
	tr := buildTrace(10)
	lo, hi, ok := tr.Span()
	if !ok || !lo.Equal(t0.Add(time.Hour)) || !hi.Equal(t0.Add(10*time.Hour)) {
		t.Errorf("span = %v..%v, %v", lo, hi, ok)
	}
	if _, _, ok := NewTrace(nil).Span(); ok {
		t.Error("empty span should be !ok")
	}
}

func TestTraceValidate(t *testing.T) {
	tr := buildTrace(10)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	tr.Tickets[3].Type = ""
	if err := tr.Validate(); err == nil {
		t.Error("invalid ticket not caught")
	}
}
