package fot

import (
	"cmp"
	"slices"
	"time"
)

// Trace is an ordered collection of tickets — the unit every dcfail
// analysis consumes. Analyses assume nothing about ordering unless they
// sort explicitly.
type Trace struct {
	Tickets []Ticket
}

// NewTrace wraps tickets in a Trace. The slice is owned by the Trace
// afterwards; callers who need the original unchanged should pass a copy.
func NewTrace(tickets []Ticket) *Trace {
	return &Trace{Tickets: tickets}
}

// Len returns the number of tickets.
func (tr *Trace) Len() int { return len(tr.Tickets) }

// Clone returns a deep-enough copy (tickets are value types).
func (tr *Trace) Clone() *Trace {
	cp := make([]Ticket, len(tr.Tickets))
	copy(cp, tr.Tickets)
	return &Trace{Tickets: cp}
}

// SortByTime orders tickets by detection time (ties by ID) in place.
func (tr *Trace) SortByTime() {
	slices.SortFunc(tr.Tickets, func(a, b Ticket) int {
		if d := a.Time.Compare(b.Time); d != 0 {
			return d
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// Filter returns a new Trace containing tickets for which keep is true.
// The predicate must be pure: it is called twice per ticket (a counting
// pass sizes the result exactly, so high-selectivity filters such as
// Failures never re-grow the output slice).
func (tr *Trace) Filter(keep func(Ticket) bool) *Trace {
	n := 0
	for i := range tr.Tickets {
		if keep(tr.Tickets[i]) {
			n++
		}
	}
	out := make([]Ticket, 0, n)
	for i := range tr.Tickets {
		if keep(tr.Tickets[i]) {
			out = append(out, tr.Tickets[i])
		}
	}
	return &Trace{Tickets: out}
}

// Failures returns tickets in D_fixing or D_error — the paper's definition
// of a failure (§II, excluding false alarms).
func (tr *Trace) Failures() *Trace {
	return tr.Filter(func(t Ticket) bool { return t.Category.IsFailure() })
}

// ByCategory returns tickets of one category.
func (tr *Trace) ByCategory(c Category) *Trace {
	return tr.Filter(func(t Ticket) bool { return t.Category == c })
}

// ByComponent returns tickets of one component class.
func (tr *Trace) ByComponent(c Component) *Trace {
	return tr.Filter(func(t Ticket) bool { return t.Device == c })
}

// ByIDC returns tickets from one datacenter.
func (tr *Trace) ByIDC(idc string) *Trace {
	return tr.Filter(func(t Ticket) bool { return t.IDC == idc })
}

// ByProductLine returns tickets from one product line.
func (tr *Trace) ByProductLine(pl string) *Trace {
	return tr.Filter(func(t Ticket) bool { return t.ProductLine == pl })
}

// Between returns tickets with lo <= error_time < hi.
func (tr *Trace) Between(lo, hi time.Time) *Trace {
	return tr.Filter(func(t Ticket) bool {
		return !t.Time.Before(lo) && t.Time.Before(hi)
	})
}

// Times returns all detection timestamps in ticket order.
func (tr *Trace) Times() []time.Time {
	out := make([]time.Time, len(tr.Tickets))
	for i, t := range tr.Tickets {
		out[i] = t.Time
	}
	return out
}

// CountByComponent tallies tickets per component class.
func (tr *Trace) CountByComponent() map[Component]int {
	out := make(map[Component]int, numComponents)
	for _, t := range tr.Tickets {
		out[t.Device]++
	}
	return out
}

// CountByCategory tallies tickets per category.
func (tr *Trace) CountByCategory() map[Category]int {
	out := make(map[Category]int, 3)
	for _, t := range tr.Tickets {
		out[t.Category]++
	}
	return out
}

// CountByType tallies tickets per failure type name.
func (tr *Trace) CountByType() map[string]int {
	out := make(map[string]int)
	for _, t := range tr.Tickets {
		out[t.Type]++
	}
	return out
}

// IDCs returns the sorted set of datacenters present in the trace.
func (tr *Trace) IDCs() []string {
	return tr.distinctString(func(t Ticket) string { return t.IDC })
}

// ProductLines returns the sorted set of product lines present.
func (tr *Trace) ProductLines() []string {
	return tr.distinctString(func(t Ticket) string { return t.ProductLine })
}

func (tr *Trace) distinctString(key func(Ticket) string) []string {
	set := make(map[string]struct{})
	for _, t := range tr.Tickets {
		if k := key(t); k != "" {
			set[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// FirstPerInstance returns the first ticket, in detection-time order, of
// each (host, device, slot, type) group — the paper's "filter out
// repeating failures" step. The slot keeps a second drive failing on the
// same server distinct from the same drive failing twice.
func (tr *Trace) FirstPerInstance() *Trace {
	ordered := tr.Clone()
	ordered.SortByTime()
	return firstPerInstance(ordered.Tickets)
}

type instanceKey struct {
	host uint64
	dev  Component
	slot string
	typ  string
}

// firstPerInstance assumes tickets are already time-ordered.
func firstPerInstance(tickets []Ticket) *Trace {
	seen := make(map[instanceKey]bool, len(tickets))
	out := make([]Ticket, 0, len(tickets))
	for _, tk := range tickets {
		k := instanceKey{tk.HostID, tk.Device, tk.Slot, tk.Type}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, tk)
	}
	return &Trace{Tickets: out}
}

// GroupByHost indexes tickets by host id. Each group preserves trace order.
func (tr *Trace) GroupByHost() map[uint64][]Ticket {
	out := make(map[uint64][]Ticket)
	for _, t := range tr.Tickets {
		out[t.HostID] = append(out[t.HostID], t)
	}
	return out
}

// TBF returns the time-between-failures series of the trace in minutes:
// the consecutive differences of the time-sorted detection timestamps.
// Zero gaps (same-timestamp batches) are preserved — they are the paper's
// batch-failure signature. A trace with fewer than two tickets yields nil.
func (tr *Trace) TBF() []float64 {
	if len(tr.Tickets) < 2 {
		return nil
	}
	times := tr.Times()
	slices.SortFunc(times, func(a, b time.Time) int { return a.Compare(b) })
	out := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		out = append(out, times[i].Sub(times[i-1]).Minutes())
	}
	return out
}

// Validate checks every ticket and returns the first violation found.
func (tr *Trace) Validate() error {
	for _, t := range tr.Tickets {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Span returns the earliest and latest detection times, and false when the
// trace is empty.
func (tr *Trace) Span() (lo, hi time.Time, ok bool) {
	if len(tr.Tickets) == 0 {
		return time.Time{}, time.Time{}, false
	}
	lo, hi = tr.Tickets[0].Time, tr.Tickets[0].Time
	for _, t := range tr.Tickets[1:] {
		if t.Time.Before(lo) {
			lo = t.Time
		}
		if t.Time.After(hi) {
			hi = t.Time
		}
	}
	return lo, hi, true
}
