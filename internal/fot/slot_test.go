package fot

import (
	"math/rand"
	"testing"
)

func TestSlotName(t *testing.T) {
	cases := []struct {
		c    Component
		idx  int
		want string
	}{
		{HDD, 0, "sda"},
		{HDD, 3, "sdd"},
		{HDD, 25, "sdz"},
		{HDD, 26, "sdaa"},
		{HDD, 27, "sdab"},
		{HDD, -1, "sda"},
		{Memory, 7, "dimm7"},
		{SSD, 1, "nvme1"},
		{Fan, 2, "fan_2"},
		{Power, 0, "psu_0"},
		{RAIDCard, 0, "raid0"},
		{Motherboard, 0, "mb0"},
		{Misc, 0, ""},
	}
	for _, cs := range cases {
		if got := SlotName(cs.c, cs.idx); got != cs.want {
			t.Errorf("SlotName(%v, %d) = %q, want %q", cs.c, cs.idx, got, cs.want)
		}
	}
	// Unknown components degrade to the bare index.
	if got := SlotName(Component(99), 4); got != "4" {
		t.Errorf("unknown component slot = %q", got)
	}
}

func TestSampleSlotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		s := SampleSlot(rng, HDD, 12)
		seen[s] = true
	}
	if len(seen) < 10 {
		t.Errorf("sampling 12 slots hit only %d distinct", len(seen))
	}
	for s := range seen {
		if len(s) < 3 || s[:2] != "sd" {
			t.Errorf("bad slot %q", s)
		}
	}
	if got := SampleSlot(rng, RAIDCard, 1); got != "raid0" {
		t.Errorf("single-instance slot = %q", got)
	}
	if got := SampleSlot(rng, RAIDCard, 0); got != "raid0" {
		t.Errorf("zero-count slot = %q", got)
	}
}

func TestSampleTypeDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[SampleType(rng, HDD)]++
	}
	// SMARTFail carries weight 0.44; expect its share within a few points.
	share := float64(counts["SMARTFail"]) / n
	if share < 0.40 || share > 0.48 {
		t.Errorf("SMARTFail share = %.3f, want ≈0.44", share)
	}
	for name := range counts {
		if _, ok := LookupType(HDD, name); !ok {
			t.Errorf("sampled unknown type %q", name)
		}
	}
}

func TestSampleFatalType(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		name, ok := SampleFatalType(rng, HDD)
		if !ok {
			t.Fatal("HDD has fatal types")
		}
		if !IsFatalType(HDD, name) {
			t.Fatalf("sampled non-fatal %q", name)
		}
	}
	// A class with no fatal types reports !ok. Build one synthetically by
	// checking a class whose catalogue is all-fatal vs warnings: all
	// catalogue classes have fatal entries except... misc has one fatal
	// (MiscServerCrash), backboard all fatal. Verify via the catalogue.
	for _, c := range Components() {
		hasFatal := false
		for _, ft := range TypesOf(c) {
			if ft.Fatal {
				hasFatal = true
			}
		}
		_, ok := SampleFatalType(rng, c)
		if ok != hasFatal {
			t.Errorf("%v: SampleFatalType ok=%v, catalogue hasFatal=%v", c, ok, hasFatal)
		}
	}
}
