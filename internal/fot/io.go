package fot

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the canonical CSV column layout for FOT traces.
var csvHeader = []string{
	"id", "host_id", "hostname", "host_idc", "rack", "position",
	"error_device", "error_slot", "error_type", "error_time", "error_detail",
	"category", "action", "operator", "op_time",
	"product_line", "deploy_time", "model",
}

const timeLayout = time.RFC3339

// WriteCSV writes the trace as CSV with a header row.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("fot: write csv header: %w", err)
	}
	rec := make([]string, len(csvHeader))
	for _, t := range tr.Tickets {
		rec[0] = strconv.FormatUint(t.ID, 10)
		rec[1] = strconv.FormatUint(t.HostID, 10)
		rec[2] = t.Hostname
		rec[3] = t.IDC
		rec[4] = t.Rack
		rec[5] = strconv.Itoa(t.Position)
		rec[6] = t.Device.String()
		rec[7] = t.Slot
		rec[8] = t.Type
		rec[9] = t.Time.UTC().Format(timeLayout)
		rec[10] = t.Detail
		rec[11] = t.Category.String()
		rec[12] = t.Action.String()
		rec[13] = t.Operator
		rec[14] = formatOptTime(t.OpTime)
		rec[15] = t.ProductLine
		rec[16] = formatOptTime(t.DeployTime)
		rec[17] = t.Model
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("fot: write csv ticket %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("fot: read csv header: %w", err)
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("fot: csv header column %d is %q, want %q", i, header[i], col)
		}
	}
	var tickets []Ticket
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("fot: read csv line %d: %w", line, err)
		}
		t, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("fot: csv line %d: %w", line, err)
		}
		tickets = append(tickets, t)
	}
	return NewTrace(tickets), nil
}

func parseCSVRecord(rec []string) (Ticket, error) {
	var t Ticket
	var err error
	if t.ID, err = strconv.ParseUint(rec[0], 10, 64); err != nil {
		return t, fmt.Errorf("id: %w", err)
	}
	if t.HostID, err = strconv.ParseUint(rec[1], 10, 64); err != nil {
		return t, fmt.Errorf("host_id: %w", err)
	}
	t.Hostname = rec[2]
	t.IDC = rec[3]
	t.Rack = rec[4]
	if t.Position, err = strconv.Atoi(rec[5]); err != nil {
		return t, fmt.Errorf("position: %w", err)
	}
	if t.Device, err = ParseComponent(rec[6]); err != nil {
		return t, err
	}
	t.Slot = rec[7]
	t.Type = rec[8]
	if t.Time, err = time.Parse(timeLayout, rec[9]); err != nil {
		return t, fmt.Errorf("error_time: %w", err)
	}
	t.Detail = rec[10]
	if t.Category, err = ParseCategory(rec[11]); err != nil {
		return t, err
	}
	if t.Action, err = ParseAction(rec[12]); err != nil {
		return t, err
	}
	t.Operator = rec[13]
	if t.OpTime, err = parseOptTime(rec[14]); err != nil {
		return t, fmt.Errorf("op_time: %w", err)
	}
	t.ProductLine = rec[15]
	if t.DeployTime, err = parseOptTime(rec[16]); err != nil {
		return t, fmt.Errorf("deploy_time: %w", err)
	}
	t.Model = rec[17]
	return t, nil
}

func formatOptTime(ts time.Time) string {
	if ts.IsZero() {
		return ""
	}
	return ts.UTC().Format(timeLayout)
}

func parseOptTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(timeLayout, s)
}

// jsonTicket is the JSONL wire form; times are RFC3339 strings with empty
// string for unset optional times.
type jsonTicket struct {
	ID          uint64 `json:"id"`
	HostID      uint64 `json:"host_id"`
	Hostname    string `json:"hostname,omitempty"`
	IDC         string `json:"host_idc"`
	Rack        string `json:"rack,omitempty"`
	Position    int    `json:"position"`
	Device      string `json:"error_device"`
	Slot        string `json:"error_slot,omitempty"`
	Type        string `json:"error_type"`
	Time        string `json:"error_time"`
	Detail      string `json:"error_detail,omitempty"`
	Category    string `json:"category"`
	Action      string `json:"action"`
	Operator    string `json:"operator,omitempty"`
	OpTime      string `json:"op_time,omitempty"`
	ProductLine string `json:"product_line,omitempty"`
	DeployTime  string `json:"deploy_time,omitempty"`
	Model       string `json:"model,omitempty"`
}

// MarshalJSONLine encodes a single ticket as one JSON object.
func MarshalJSONLine(t Ticket) ([]byte, error) {
	return json.Marshal(jsonTicket{
		ID: t.ID, HostID: t.HostID, Hostname: t.Hostname, IDC: t.IDC,
		Rack: t.Rack, Position: t.Position,
		Device: t.Device.String(), Slot: t.Slot, Type: t.Type,
		Time: t.Time.UTC().Format(timeLayout), Detail: t.Detail,
		Category: t.Category.String(), Action: t.Action.String(),
		Operator: t.Operator, OpTime: formatOptTime(t.OpTime),
		ProductLine: t.ProductLine, DeployTime: formatOptTime(t.DeployTime),
		Model: t.Model,
	})
}

// UnmarshalJSONLine decodes one ticket from a JSON object.
func UnmarshalJSONLine(data []byte) (Ticket, error) {
	var j jsonTicket
	if err := json.Unmarshal(data, &j); err != nil {
		return Ticket{}, fmt.Errorf("fot: decode json ticket: %w", err)
	}
	var t Ticket
	var err error
	t.ID, t.HostID, t.Hostname, t.IDC = j.ID, j.HostID, j.Hostname, j.IDC
	t.Rack, t.Position, t.Slot = j.Rack, j.Position, j.Slot
	t.Type, t.Detail = j.Type, j.Detail
	t.Operator, t.ProductLine, t.Model = j.Operator, j.ProductLine, j.Model
	if t.Device, err = ParseComponent(j.Device); err != nil {
		return t, err
	}
	if t.Time, err = time.Parse(timeLayout, j.Time); err != nil {
		return t, fmt.Errorf("fot: error_time: %w", err)
	}
	if t.Category, err = ParseCategory(j.Category); err != nil {
		return t, err
	}
	if t.Action, err = ParseAction(j.Action); err != nil {
		return t, err
	}
	if t.OpTime, err = parseOptTime(j.OpTime); err != nil {
		return t, fmt.Errorf("fot: op_time: %w", err)
	}
	if t.DeployTime, err = parseOptTime(j.DeployTime); err != nil {
		return t, fmt.Errorf("fot: deploy_time: %w", err)
	}
	return t, nil
}

// WriteJSONL writes the trace as JSON lines (one ticket per line).
func (tr *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range tr.Tickets {
		line, err := MarshalJSONLine(t)
		if err != nil {
			return fmt.Errorf("fot: encode ticket %d: %w", t.ID, err)
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL. Blank lines are skipped.
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var tickets []Ticket
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		t, err := UnmarshalJSONLine(raw)
		if err != nil {
			return nil, fmt.Errorf("fot: jsonl line %d: %w", line, err)
		}
		tickets = append(tickets, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fot: read jsonl: %w", err)
	}
	return NewTrace(tickets), nil
}
