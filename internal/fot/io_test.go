package fot

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := buildTrace(50)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Tickets {
		if !ticketsEqual(tr.Tickets[i], got.Tickets[i]) {
			t.Fatalf("ticket %d round trip mismatch:\n%+v\n%+v", i, tr.Tickets[i], got.Tickets[i])
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := buildTrace(50)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Tickets {
		if !ticketsEqual(tr.Tickets[i], got.Tickets[i]) {
			t.Fatalf("ticket %d round trip mismatch:\n%+v\n%+v", i, tr.Tickets[i], got.Tickets[i])
		}
	}
}

// ticketsEqual compares tickets up to time normalization (IO normalizes
// all times to UTC).
func ticketsEqual(a, b Ticket) bool {
	timesEq := a.Time.Equal(b.Time) && a.OpTime.Equal(b.OpTime) && a.DeployTime.Equal(b.DeployTime)
	a.Time, b.Time = time.Time{}, time.Time{}
	a.OpTime, b.OpTime = time.Time{}, time.Time{}
	a.DeployTime, b.DeployTime = time.Time{}, time.Time{}
	return timesEq && reflect.DeepEqual(a, b)
}

func TestJSONLSkipsBlankLines(t *testing.T) {
	tr := NewTrace([]Ticket{mkTicket(1)})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	in := "\n" + buf.String() + "\n\n"
	got, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("len = %d", got.Len())
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := []string{
		"",           // no header
		"id,wrong\n", // bad header
		strings.Join(csvHeader, ",") + "\nnot-a-number,1,h,d,r,1,hdd,T,2013-01-01T00:00:00Z,,D_fixing,repair_order,op,,pl,,m\n",
		strings.Join(csvHeader, ",") + "\n1,1,h,d,r,1,gpu,T,2013-01-01T00:00:00Z,,D_fixing,repair_order,op,,pl,,m\n",
		strings.Join(csvHeader, ",") + "\n1,1,h,d,r,1,hdd,T,when,,D_fixing,repair_order,op,,pl,,m\n",
		strings.Join(csvHeader, ",") + "\n1,1,h,d,r,1,hdd,T,2013-01-01T00:00:00Z,,D_bogus,repair_order,op,,pl,,m\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestUnmarshalJSONLineRejectsBadInput(t *testing.T) {
	cases := []string{
		"{",
		`{"error_device":"gpu"}`,
		`{"error_device":"hdd","error_time":"bogus","category":"D_fixing","action":"none"}`,
		`{"error_device":"hdd","error_time":"2013-01-01T00:00:00Z","category":"nope","action":"none"}`,
		`{"error_device":"hdd","error_time":"2013-01-01T00:00:00Z","category":"D_fixing","action":"nope"}`,
	}
	for i, in := range cases {
		if _, err := UnmarshalJSONLine([]byte(in)); err == nil {
			t.Errorf("case %d: bad JSON accepted", i)
		}
	}
}

// TestTicketJSONPropertyRoundTrip drives random (but schema-valid) tickets
// through the JSONL codec.
func TestTicketJSONPropertyRoundTrip(t *testing.T) {
	f := func(id, host uint64, comp uint8, cat uint8, hours uint16, pos int16) bool {
		tk := Ticket{
			ID:       id%1e6 + 1,
			HostID:   host%1e6 + 1,
			IDC:      "dc-xyz",
			Position: int(pos),
			Device:   Component(int(comp)%numComponents + 1),
			Type:     "T",
			Time:     t0.Add(time.Duration(hours) * time.Hour),
			Category: Category(int(cat)%3 + 1),
			Action:   ActionRepairOrder,
		}
		line, err := MarshalJSONLine(tk)
		if err != nil {
			return false
		}
		got, err := UnmarshalJSONLine(line)
		if err != nil {
			return false
		}
		return ticketsEqual(tk, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
