package fot

import (
	"slices"
	"testing"
	"time"
)

// epochTickets builds an append-only ticket slice in serve's epoch shape:
// the first 30 rows are one epoch, the rest a later batch that arrives
// out of time order and introduces strings the prefix never interned.
func epochTickets() []Ticket {
	tickets := make([]Ticket, 0, 48)
	for i := 1; i <= 30; i++ {
		tk := mkTicket(uint64(i))
		if i%5 == 0 {
			tk.Category = Error
		}
		if i%3 == 0 {
			tk.Device = Memory
		}
		tk.Time = t0.Add(time.Duration((i*13)%30) * time.Hour)
		tickets = append(tickets, tk)
	}
	for i := 31; i <= 48; i++ {
		tk := mkTicket(uint64(i))
		if i%4 == 0 {
			tk.Category = FalseAlarm
		}
		if i%2 == 0 {
			// Straddle the prefix's time range so the merged permutation
			// interleaves old and new rows.
			tk.Time = t0.Add(time.Duration((i*7)%30) * time.Hour)
		} else {
			tk.Time = t0.Add(time.Duration(30+i) * time.Hour)
		}
		if i%6 == 0 {
			tk.IDC = "dc-new"
			tk.ProductLine = "pl-new"
			tk.Type = "NewType"
		}
		tickets = append(tickets, tk)
	}
	return tickets
}

// requireSameViews checks that an extended index serves exactly what a
// fresh build over the same tickets serves: permutation, failure rows,
// every column value, and symbol resolution.
func requireSameViews(t *testing.T, got, want *TraceIndex) {
	t.Helper()
	if !slices.Equal(got.TimePerm(), want.TimePerm()) {
		t.Fatalf("TimePerm diverges:\n got %v\nwant %v", got.TimePerm(), want.TimePerm())
	}
	if !slices.Equal(got.FailureRows(), want.FailureRows()) {
		t.Fatalf("FailureRows diverges: got %v, want %v", got.FailureRows(), want.FailureRows())
	}
	if !slices.Equal(got.FirstInstanceRows(), want.FirstInstanceRows()) {
		t.Fatalf("FirstInstanceRows diverges")
	}
	gc, wc := got.Cols(), want.Cols()
	if gc.Len() != wc.Len() {
		t.Fatalf("Cols len %d, want %d", gc.Len(), wc.Len())
	}
	for r := int32(0); r < int32(gc.Len()); r++ {
		if gc.TimeNS[r] != wc.TimeNS[r] || gc.ID[r] != wc.ID[r] ||
			gc.Device[r] != wc.Device[r] || gc.Category[r] != wc.Category[r] {
			t.Fatalf("row %d columns diverge", r)
		}
		// Symbol ids may differ between builds; the resolved strings
		// must not.
		if gc.IDCName(gc.IDCSym[r]) != wc.IDCName(wc.IDCSym[r]) ||
			gc.LineName(gc.LineSym[r]) != wc.LineName(wc.LineSym[r]) ||
			gc.TypeName(gc.TypeSym[r]) != wc.TypeName(wc.TypeSym[r]) ||
			gc.SlotName(gc.SlotSym[r]) != wc.SlotName(wc.SlotSym[r]) {
			t.Fatalf("row %d interned strings diverge", r)
		}
	}
}

func TestExtendTraceIndexMatchesFreshBuild(t *testing.T) {
	all := epochTickets()
	prev := ExtendTraceIndex(nil, NewTrace(all[:30:30]))
	prev.TimePerm() // build the prefix's columns and permutation

	ext := ExtendTraceIndex(prev, NewTrace(all))
	fresh := NewTraceIndex(NewTrace(all))
	requireSameViews(t, ext, fresh)

	// The prefix index must keep serving its own (shorter) views after
	// donating its decomposition.
	if prev.Len() != 30 || len(prev.TimePerm()) != 30 {
		t.Errorf("prefix index changed shape after extension: len %d, perm %d",
			prev.Len(), len(prev.TimePerm()))
	}
}

func TestExtendSharesSymtabsWhenNoNewStrings(t *testing.T) {
	all := epochTickets()[:30]
	grown := append(slices.Clip(all), all[5], all[11]) // repeats: no unseen strings
	grown[30].ID, grown[31].ID = 1001, 1002
	prev := ExtendTraceIndex(nil, NewTrace(all))
	prev.TimePerm()
	ext := ExtendTraceIndex(prev, NewTrace(grown))
	if ext.Cols().idcs != prev.Cols().idcs || ext.Cols().types != prev.Cols().types {
		t.Error("extension with no unseen strings should share the prefix's symbol tables")
	}
	requireSameViews(t, ext, NewTraceIndex(NewTrace(grown)))
}

func TestExtendSecondExtensionFallsBackToFreshBuild(t *testing.T) {
	all := epochTickets()
	prev := ExtendTraceIndex(nil, NewTrace(all[:30:30]))
	prev.TimePerm()

	first := ExtendTraceIndex(prev, NewTrace(all[:40:40]))
	first.TimePerm() // consumes prev's one extension slot
	second := ExtendTraceIndex(prev, NewTrace(all))
	requireSameViews(t, second, NewTraceIndex(NewTrace(all)))
	requireSameViews(t, first, NewTraceIndex(NewTrace(all[:40:40])))
}

func TestExtendSkipsUnbuiltIntermediateEpochs(t *testing.T) {
	all := epochTickets()
	e0 := ExtendTraceIndex(nil, NewTrace(all[:20:20]))
	e0.TimePerm()
	e1 := ExtendTraceIndex(e0, NewTrace(all[:35:35])) // never built
	e2 := ExtendTraceIndex(e1, NewTrace(all))
	requireSameViews(t, e2, NewTraceIndex(NewTrace(all)))
}

func TestExtendNonPrefixPrevDegradesToFresh(t *testing.T) {
	all := epochTickets()
	longer := ExtendTraceIndex(nil, NewTrace(all))
	longer.TimePerm()
	// prev longer than tr: the chain must be dropped, not trusted.
	ix := ExtendTraceIndex(longer, NewTrace(all[:25:25]))
	requireSameViews(t, ix, NewTraceIndex(NewTrace(all[:25:25])))
}

func TestTraceIndexMemoBuildsOnce(t *testing.T) {
	ix := NewTraceIndex(indexTrace())
	builds := 0
	for i := 0; i < 3; i++ {
		v := ix.Memo("k", func() any {
			builds++
			return 42
		})
		if v.(int) != 42 {
			t.Fatalf("Memo returned %v, want 42", v)
		}
	}
	if builds != 1 {
		t.Fatalf("Memo ran build %d times, want 1", builds)
	}
	if v := ix.Memo("other", func() any { return "x" }); v.(string) != "x" {
		t.Fatalf("second key returned %v", v)
	}
}
