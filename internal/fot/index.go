package fot

import (
	"sync"
	"time"
)

// TraceIndex is a set of precomputed, shareable views over one trace: the
// failure subset, per-component / per-IDC / per-product-line groupings, a
// time-sorted copy, the sorted TBF gap series, the repeat-deduplicated
// view, the failure span and UTC calendar-day buckets. It exists so that
// the ~20 analyses of a full report — which each used to re-filter and
// re-sort the whole trace — can share one pass over the data, and so that
// a parallel report runner can hand every analysis the same immutable
// snapshot.
//
// Immutability contract: NewTraceIndex deep-copies the source tickets, so
// mutating the source trace afterwards (SortByTime, editing tickets)
// never changes what the index serves. In exchange, everything an index
// method returns — traces, slices, maps — is shared and must be treated
// as read-only by callers. Views are built lazily on first use and cached
// under sync.Once, so a TraceIndex is safe for concurrent use by any
// number of goroutines.
type TraceIndex struct {
	all *Trace

	failuresOnce sync.Once
	failures     *Trace

	byTimeOnce sync.Once
	byTime     *Trace

	firstOnce sync.Once
	first     *Trace

	categoryOnce sync.Once
	byCategory   map[Category]*Trace

	failCompOnce sync.Once
	failByComp   map[Component]*Trace

	allCompOnce sync.Once
	allByComp   map[Component]*Trace

	failIDCOnce sync.Once
	failByIDC   map[string]*Trace
	failIDCs    []string

	failLineOnce sync.Once
	failByLine   map[string]*Trace
	failLines    []string

	countOnce   sync.Once
	failByClass map[Component]int

	spanOnce       sync.Once
	spanLo, spanHi time.Time
	spanOK         bool

	tbfOnce sync.Once
	tbf     []float64

	dayOnce    sync.Once
	dayBuckets map[Component]map[int]int
	dayCount   int
}

// NewTraceIndex builds an index over a private snapshot of tr. The source
// trace may be mutated freely afterwards without affecting the index.
func NewTraceIndex(tr *Trace) *TraceIndex {
	if tr == nil {
		return &TraceIndex{all: &Trace{}}
	}
	return &TraceIndex{all: tr.Clone()}
}

// BorrowTraceIndex indexes tr without copying it. The caller must not
// mutate tr (or the tickets reachable from it) while the index is in use;
// NewTraceIndex is the safe choice for long-lived or shared indexes. It
// backs the one-shot *Trace analysis entry points, where snapshotting
// every call would cost a full ticket copy for nothing.
func BorrowTraceIndex(tr *Trace) *TraceIndex {
	if tr == nil {
		return &TraceIndex{all: &Trace{}}
	}
	return &TraceIndex{all: tr}
}

// Len returns the number of tickets in the indexed snapshot.
func (ix *TraceIndex) Len() int { return ix.all.Len() }

// All returns the indexed snapshot in original trace order.
func (ix *TraceIndex) All() *Trace { return ix.all }

// Failures returns the D_fixing + D_error subset in trace order.
func (ix *TraceIndex) Failures() *Trace {
	ix.failuresOnce.Do(func() { ix.failures = ix.all.Failures() })
	return ix.failures
}

// FailuresByTime returns the failure subset sorted by detection time
// (ties by ID).
func (ix *TraceIndex) FailuresByTime() *Trace {
	ix.byTimeOnce.Do(func() {
		ordered := ix.Failures().Clone()
		ordered.SortByTime()
		ix.byTime = ordered
	})
	return ix.byTime
}

// FailuresFirstPerInstance returns the repeat-deduplicated failure view:
// the first ticket of each (host, device, slot, type) group in time
// order, as used by the spatial, lifecycle and correlated-pair analyses.
func (ix *TraceIndex) FailuresFirstPerInstance() *Trace {
	ix.firstOnce.Do(func() { ix.first = firstPerInstance(ix.FailuresByTime().Tickets) })
	return ix.first
}

// ByCategory returns the tickets of one category, in trace order.
func (ix *TraceIndex) ByCategory(c Category) *Trace {
	ix.categoryOnce.Do(func() {
		ix.byCategory = make(map[Category]*Trace, 3)
		for _, tk := range ix.all.Tickets {
			sub := ix.byCategory[tk.Category]
			if sub == nil {
				sub = &Trace{}
				ix.byCategory[tk.Category] = sub
			}
			sub.Tickets = append(sub.Tickets, tk)
		}
	})
	if sub := ix.byCategory[c]; sub != nil {
		return sub
	}
	return &Trace{}
}

// FailuresByComponent returns the failures of one component class, in
// trace order.
func (ix *TraceIndex) FailuresByComponent(c Component) *Trace {
	ix.failCompOnce.Do(func() {
		ix.failByComp = groupByComponent(ix.Failures())
	})
	if sub := ix.failByComp[c]; sub != nil {
		return sub
	}
	return &Trace{}
}

// AllByComponent returns every ticket (false alarms included) of one
// component class, in trace order.
func (ix *TraceIndex) AllByComponent(c Component) *Trace {
	ix.allCompOnce.Do(func() {
		ix.allByComp = groupByComponent(ix.all)
	})
	if sub := ix.allByComp[c]; sub != nil {
		return sub
	}
	return &Trace{}
}

func groupByComponent(tr *Trace) map[Component]*Trace {
	out := make(map[Component]*Trace, numComponents)
	for _, tk := range tr.Tickets {
		sub := out[tk.Device]
		if sub == nil {
			sub = &Trace{}
			out[tk.Device] = sub
		}
		sub.Tickets = append(sub.Tickets, tk)
	}
	return out
}

// FailureIDCs returns the sorted set of datacenters present among the
// failures.
func (ix *TraceIndex) FailureIDCs() []string {
	ix.buildIDCViews()
	return ix.failIDCs
}

// FailuresByIDC returns the failures of one datacenter, in trace order.
func (ix *TraceIndex) FailuresByIDC(idc string) *Trace {
	ix.buildIDCViews()
	if sub := ix.failByIDC[idc]; sub != nil {
		return sub
	}
	return &Trace{}
}

func (ix *TraceIndex) buildIDCViews() {
	ix.failIDCOnce.Do(func() {
		ix.failByIDC = make(map[string]*Trace)
		for _, tk := range ix.Failures().Tickets {
			sub := ix.failByIDC[tk.IDC]
			if sub == nil {
				sub = &Trace{}
				ix.failByIDC[tk.IDC] = sub
			}
			sub.Tickets = append(sub.Tickets, tk)
		}
		ix.failIDCs = ix.Failures().IDCs()
	})
}

// FailureProductLines returns the sorted set of product lines present
// among the failures.
func (ix *TraceIndex) FailureProductLines() []string {
	ix.buildLineViews()
	return ix.failLines
}

// FailuresByProductLine returns the failures of one product line, in
// trace order.
func (ix *TraceIndex) FailuresByProductLine(pl string) *Trace {
	ix.buildLineViews()
	if sub := ix.failByLine[pl]; sub != nil {
		return sub
	}
	return &Trace{}
}

func (ix *TraceIndex) buildLineViews() {
	ix.failLineOnce.Do(func() {
		ix.failByLine = make(map[string]*Trace)
		for _, tk := range ix.Failures().Tickets {
			sub := ix.failByLine[tk.ProductLine]
			if sub == nil {
				sub = &Trace{}
				ix.failByLine[tk.ProductLine] = sub
			}
			sub.Tickets = append(sub.Tickets, tk)
		}
		ix.failLines = ix.Failures().ProductLines()
	})
}

// FailureCountByComponent tallies failures per component class.
func (ix *TraceIndex) FailureCountByComponent() map[Component]int {
	ix.countOnce.Do(func() { ix.failByClass = ix.Failures().CountByComponent() })
	return ix.failByClass
}

// FailureSpan returns the earliest and latest failure detection times,
// and false when there are no failures.
func (ix *TraceIndex) FailureSpan() (lo, hi time.Time, ok bool) {
	ix.spanOnce.Do(func() { ix.spanLo, ix.spanHi, ix.spanOK = ix.Failures().Span() })
	return ix.spanLo, ix.spanHi, ix.spanOK
}

// FailureTBF returns the time-between-failures series of the failure
// subset in minutes. The slice is cached and shared: callers that modify
// gaps (e.g. zero-gap flooring before a fit) must copy it first.
func (ix *TraceIndex) FailureTBF() []float64 {
	ix.tbfOnce.Do(func() { ix.tbf = ix.Failures().TBF() })
	return ix.tbf
}

// utcDayIndex buckets a timestamp into its UTC calendar date, counted in
// days. Midnight UTC has a Unix time divisible by 86400 for every date,
// so the division is exact and two instants share an index iff they fall
// on the same calendar day.
func utcDayIndex(t time.Time) int {
	u := t.UTC()
	return int(time.Date(u.Year(), u.Month(), u.Day(), 0, 0, 0, 0, time.UTC).Unix() / 86400)
}

// FailureDayBuckets returns, per component class, the number of failures
// on each UTC calendar day (keyed by day index relative to the first
// failure's date), together with the total number of calendar days the
// failure span touches. Calendar-date bucketing keeps the Table V r_N
// values independent of the trace's start time-of-day — a cluster
// straddling midnight counts on two days, exactly as the paper's
// "study days" denominator implies.
func (ix *TraceIndex) FailureDayBuckets() (map[Component]map[int]int, int) {
	ix.dayOnce.Do(func() {
		ix.dayBuckets = make(map[Component]map[int]int)
		lo, hi, ok := ix.FailureSpan()
		if !ok {
			return
		}
		first := utcDayIndex(lo)
		ix.dayCount = utcDayIndex(hi) - first + 1
		for _, tk := range ix.Failures().Tickets {
			m := ix.dayBuckets[tk.Device]
			if m == nil {
				m = make(map[int]int)
				ix.dayBuckets[tk.Device] = m
			}
			m[utcDayIndex(tk.Time)-first]++
		}
	})
	return ix.dayBuckets, ix.dayCount
}
