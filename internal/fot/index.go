package fot

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// TraceIndex is the columnar analysis engine over one immutable trace
// snapshot. On first use it decomposes the tickets into
// structure-of-arrays Columns and computes one global (time, id)
// permutation; every view the ~20 report analyses consume — the
// failure subset, time order, first-per-instance dedup, per-component
// / per-IDC / per-product-line groups, day buckets, TBF gaps — is a
// []int32 row-index slice into those shared columns. Deriving a view
// copies no tickets and sorts nothing the permutation hasn't already
// ordered.
//
// Two API layers share the engine:
//
//   - Row views (FailureRows, FailureRowsByComponent, Cols, …) are the
//     hot path: internal/core iterates row indices over dense columns.
//   - The legacy *Trace views (Failures, ByCategory, …) materialize
//     real ticket slices lazily, preserving their documented trace-
//     order semantics for callers that still want tickets.
//
// Immutability contract: NewTraceIndex deep-copies the source tickets,
// so mutating the source trace afterwards never changes what the index
// serves. In exchange, everything an index method returns — traces,
// slices, maps, columns — is shared and must be treated as read-only
// by callers. Views are built lazily under sync.Once, so a TraceIndex
// is safe for concurrent use by any number of goroutines.
type TraceIndex struct {
	all *Trace

	// prev chains an incrementally-extended index (ExtendTraceIndex) to
	// its predecessor until the columns are built, letting serve's
	// epoch snapshots reuse the previous epoch's decomposition and
	// permutation instead of re-deriving them from scratch.
	prev atomic.Pointer[TraceIndex]

	colsOnce sync.Once
	cols     atomic.Pointer[Columns]

	failRowsOnce sync.Once
	failRows     []int32 // failures in (time, id) order

	firstRowsOnce sync.Once
	firstRows     []int32 // first-per-instance failures, (time, id) order

	catRowsOnce sync.Once
	catRows     [][]int32 // per Category code, (time, id) order, all tickets

	failCompRowsOnce sync.Once
	failCompRows     [][]int32 // failures per Component code, (time, id) order

	allCompRowsOnce sync.Once
	allCompRows     [][]int32 // all tickets per Component code, (time, id) order

	idcRowsOnce  sync.Once
	failIDCRows  [][]int32 // failures per IDC symbol, (time, id) order
	failIDCNames []string  // sorted distinct IDCs among failures

	lineRowsOnce  sync.Once
	failLineRows  [][]int32 // failures per product-line symbol, (time, id) order
	failLineNames []string  // sorted distinct product lines among failures

	hostRowsOnce  sync.Once
	failHosts     []uint64  // ascending distinct failing hosts
	failHostRows  [][]int32 // failures per failHosts[i], (time, id) order
	firstHostRows [][]int32 // first-per-instance rows per failHosts[i]

	countOnce      sync.Once
	failCompCounts []int // failures per Component code

	dayOnce   sync.Once
	dayCounts [][]int32 // failures per Component code per relative UTC day
	dayCount  int

	tbfOnce sync.Once
	tbf     []float64

	memoMu sync.Mutex
	memo   map[string]*memoEntry

	// Lazily materialized legacy *Trace views.
	failuresOnce sync.Once
	failures     *Trace

	byTimeOnce sync.Once
	byTime     *Trace

	firstOnce sync.Once
	first     *Trace

	categoryOnce sync.Once
	byCategory   map[Category]*Trace

	failCompOnce sync.Once
	failByComp   map[Component]*Trace

	allCompOnce sync.Once
	allByComp   map[Component]*Trace

	failIDCOnce sync.Once
	failByIDC   map[string]*Trace

	failLineOnce sync.Once
	failByLine   map[string]*Trace

	countMapOnce sync.Once
	failByClass  map[Component]int

	dayMapOnce sync.Once
	dayBuckets map[Component]map[int]int
}

// NewTraceIndex builds an index over a private snapshot of tr. The source
// trace may be mutated freely afterwards without affecting the index.
func NewTraceIndex(tr *Trace) *TraceIndex {
	if tr == nil {
		return &TraceIndex{all: &Trace{}}
	}
	return &TraceIndex{all: tr.Clone()}
}

// BorrowTraceIndex indexes tr without copying it. The caller must not
// mutate tr (or the tickets reachable from it) while the index is in use;
// NewTraceIndex is the safe choice for long-lived or shared indexes. It
// backs the one-shot *Trace analysis entry points, where snapshotting
// every call would cost a full ticket copy for nothing.
func BorrowTraceIndex(tr *Trace) *TraceIndex {
	if tr == nil {
		return &TraceIndex{all: &Trace{}}
	}
	return &TraceIndex{all: tr}
}

// ExtendTraceIndex indexes tr as an incremental extension of prev: tr
// must contain prev's tickets as a value-identical prefix (the serve
// epoch model — one append-only slice, each epoch a longer prefix).
// Column decomposition and the global permutation are then reused from
// prev and only the tail is decomposed and merged, keeping per-epoch
// cost proportional to the batch, not the history. Like
// BorrowTraceIndex, the caller must not mutate tr afterwards. A prev
// of nil (or one that is not actually a prefix) degrades to
// BorrowTraceIndex semantics with a fresh build.
func ExtendTraceIndex(prev *TraceIndex, tr *Trace) *TraceIndex {
	if tr == nil {
		return &TraceIndex{all: &Trace{}}
	}
	ix := &TraceIndex{all: tr}
	if prev != nil && prev.Len() <= tr.Len() {
		ix.prev.Store(prev)
	}
	return ix
}

// Len returns the number of tickets in the indexed snapshot.
func (ix *TraceIndex) Len() int { return ix.all.Len() }

// All returns the indexed snapshot in original trace order.
func (ix *TraceIndex) All() *Trace { return ix.all }

// Cols returns the shared column decomposition, building it on first
// use. An extended index reuses the nearest built ancestor's columns
// and decomposes only its tail rows.
func (ix *TraceIndex) Cols() *Columns {
	ix.colsOnce.Do(func() {
		var built *Columns
		// Walk the epoch chain to the nearest ancestor whose columns
		// exist; unbuilt intermediate epochs are skipped (their prefix
		// is ours too).
		for p := ix.prev.Load(); p != nil; p = p.prev.Load() {
			if pc := p.cols.Load(); pc != nil {
				built = extend(pc, ix.all.Tickets)
				break
			}
		}
		if built == nil {
			built = buildColumns(ix.all.Tickets)
		}
		ix.cols.Store(built)
		ix.prev.Store(nil) // release the chain for GC
	})
	return ix.cols.Load()
}

// TimePerm returns every row ordered by (time, id) — the one global
// permutation all time-ordered views are subsequences of.
func (ix *TraceIndex) TimePerm() []int32 { return ix.Cols().Perm() }

// FailureRows returns the D_fixing + D_error rows in (time, id) order.
func (ix *TraceIndex) FailureRows() []int32 {
	ix.failRowsOnce.Do(func() {
		cols := ix.Cols()
		perm := cols.Perm()
		n := 0
		for _, r := range perm {
			if Category(cols.Category[r]).IsFailure() {
				n++
			}
		}
		rows := make([]int32, 0, n)
		for _, r := range perm {
			if Category(cols.Category[r]).IsFailure() {
				rows = append(rows, r)
			}
		}
		ix.failRows = rows
	})
	return ix.failRows
}

// FirstInstanceRows returns the repeat-deduplicated failure rows: the
// first row of each (host, device, slot, type) group in (time, id)
// order — the paper's "filter out repeating failures" step.
func (ix *TraceIndex) FirstInstanceRows() []int32 {
	ix.firstRowsOnce.Do(func() {
		cols := ix.Cols()
		fail := ix.FailureRows()
		type key struct {
			host      uint64
			dev       uint8
			slot, typ uint32
		}
		seen := make(map[key]struct{}, len(fail))
		rows := make([]int32, 0, len(fail))
		for _, r := range fail {
			k := key{cols.Host[r], cols.Device[r], cols.SlotSym[r], cols.TypeSym[r]}
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = struct{}{}
			rows = append(rows, r)
		}
		ix.firstRows = rows
	})
	return ix.firstRows
}

// partitionRows is one counting-sort pass: scatter src rows (already in
// a canonical order) into one group per code, preserving order.
func partitionRows(src []int32, codes int, codeOf func(int32) int) [][]int32 {
	counts := make([]int32, codes)
	for _, r := range src {
		counts[codeOf(r)]++
	}
	backing := make([]int32, len(src))
	groups := make([][]int32, codes)
	off := int32(0)
	for c, n := range counts {
		groups[c] = backing[off : off : off+n]
		off += n
	}
	for _, r := range src {
		c := codeOf(r)
		groups[c] = append(groups[c], r)
	}
	return groups
}

// RowsByCategory returns all rows of one category in (time, id) order.
func (ix *TraceIndex) RowsByCategory(c Category) []int32 {
	ix.catRowsOnce.Do(func() {
		cols := ix.Cols()
		ix.catRows = partitionRows(cols.Perm(), int(FalseAlarm)+1, func(r int32) int {
			cat := int(cols.Category[r])
			if cat > int(FalseAlarm) {
				cat = 0 // invalid categories bucket at 0, never served
			}
			return cat
		})
	})
	if c < 0 || int(c) >= len(ix.catRows) {
		return nil
	}
	return ix.catRows[c]
}

// FailureRowsByComponent returns the failure rows of one component
// class in (time, id) order.
func (ix *TraceIndex) FailureRowsByComponent(c Component) []int32 {
	ix.failCompRowsOnce.Do(func() {
		cols := ix.Cols()
		ix.failCompRows = partitionRows(ix.FailureRows(), numComponents+1, func(r int32) int {
			return int(cols.Device[r])
		})
	})
	if c < 1 || int(c) > numComponents {
		return nil
	}
	return ix.failCompRows[c]
}

// AllRowsByComponent returns every row (false alarms included) of one
// component class in (time, id) order.
func (ix *TraceIndex) AllRowsByComponent(c Component) []int32 {
	ix.allCompRowsOnce.Do(func() {
		cols := ix.Cols()
		ix.allCompRows = partitionRows(cols.Perm(), numComponents+1, func(r int32) int {
			return int(cols.Device[r])
		})
	})
	if c < 1 || int(c) > numComponents {
		return nil
	}
	return ix.allCompRows[c]
}

// buildSymGroups partitions failure rows by a symbol column and
// resolves the occupied symbols' sorted names.
func buildSymGroups(rows []int32, col []uint32, syms int, name func(uint32) string) (groups [][]int32, names []string) {
	groups = partitionRows(rows, syms, func(r int32) int { return int(col[r]) })
	names = make([]string, 0, syms)
	for sym, g := range groups {
		if len(g) > 0 && name(uint32(sym)) != "" {
			names = append(names, name(uint32(sym)))
		}
	}
	slices.Sort(names)
	return groups, names
}

func (ix *TraceIndex) buildIDCRows() {
	ix.idcRowsOnce.Do(func() {
		cols := ix.Cols()
		ix.failIDCRows, ix.failIDCNames = buildSymGroups(ix.FailureRows(), cols.IDCSym, cols.IDCCount(), cols.IDCName)
	})
}

// FailureRowsByIDC returns the failure rows of one datacenter in
// (time, id) order.
func (ix *TraceIndex) FailureRowsByIDC(idc string) []int32 {
	ix.buildIDCRows()
	if sym, ok := ix.Cols().IDCSymOf(idc); ok {
		return ix.failIDCRows[sym]
	}
	return nil
}

func (ix *TraceIndex) buildLineRows() {
	ix.lineRowsOnce.Do(func() {
		cols := ix.Cols()
		ix.failLineRows, ix.failLineNames = buildSymGroups(ix.FailureRows(), cols.LineSym, cols.LineCount(), cols.LineName)
	})
}

// FailureRowsByProductLine returns the failure rows of one product line
// in (time, id) order.
func (ix *TraceIndex) FailureRowsByProductLine(line string) []int32 {
	ix.buildLineRows()
	if sym, ok := ix.Cols().LineSymOf(line); ok {
		return ix.failLineRows[sym]
	}
	return nil
}

func (ix *TraceIndex) buildHostRows() {
	ix.hostRowsOnce.Do(func() {
		cols := ix.Cols()
		fail := ix.FailureRows()
		idx := make(map[uint64]int32, 256)
		hosts := make([]uint64, 0, 256)
		for _, r := range fail {
			h := cols.Host[r]
			if _, ok := idx[h]; !ok {
				idx[h] = 0
				hosts = append(hosts, h)
			}
		}
		slices.Sort(hosts)
		for i, h := range hosts {
			idx[h] = int32(i)
		}
		hostOf := func(r int32) int { return int(idx[cols.Host[r]]) }
		ix.failHostRows = partitionRows(fail, len(hosts), hostOf)
		ix.firstHostRows = partitionRows(ix.FirstInstanceRows(), len(hosts), hostOf)
		ix.failHosts = hosts
	})
}

// FailureHostGroups returns the ascending distinct failing hosts and,
// aligned with them, each host's failure rows in (time, id) order.
func (ix *TraceIndex) FailureHostGroups() ([]uint64, [][]int32) {
	ix.buildHostRows()
	return ix.failHosts, ix.failHostRows
}

// FirstInstanceHostGroups returns the ascending distinct failing hosts
// and each host's first-per-instance rows in (time, id) order. Hosts
// whose failures are all repeats have empty groups.
func (ix *TraceIndex) FirstInstanceHostGroups() ([]uint64, [][]int32) {
	ix.buildHostRows()
	return ix.failHosts, ix.firstHostRows
}

// FailureComponentCounts tallies failures per component code into a
// dense array of length numComponents+1 (index by Component value).
func (ix *TraceIndex) FailureComponentCounts() []int {
	ix.countOnce.Do(func() {
		cols := ix.Cols()
		counts := make([]int, numComponents+1)
		for _, r := range ix.FailureRows() {
			counts[cols.Device[r]]++
		}
		ix.failCompCounts = counts
	})
	return ix.failCompCounts
}

// FailureDayCounts returns, per component code, the number of failures
// on each UTC calendar day (index 0 = the first failure's date), and
// the total number of calendar days the failure span touches.
func (ix *TraceIndex) FailureDayCounts() ([][]int32, int) {
	ix.dayOnce.Do(func() {
		cols := ix.Cols()
		fail := ix.FailureRows()
		if len(fail) == 0 {
			return
		}
		first := cols.DayIdx[fail[0]]
		last := first
		for _, r := range fail {
			if d := cols.DayIdx[r]; d > last {
				last = d
			}
		}
		ix.dayCount = int(last-first) + 1
		counts := make([][]int32, numComponents+1)
		for _, r := range fail {
			dev := cols.Device[r]
			if counts[dev] == nil {
				counts[dev] = make([]int32, ix.dayCount)
			}
			counts[dev][cols.DayIdx[r]-first]++
		}
		ix.dayCounts = counts
	})
	return ix.dayCounts, ix.dayCount
}

// memoEntry computes one cached analysis result exactly once.
type memoEntry struct {
	once sync.Once
	val  any
}

// Memo returns the cached value for key, running build on first use.
// It exists so analyses that feed several report sections (TBF fits,
// rack skew, day-of-week profiles) are computed once per snapshot even
// when sections run concurrently; build runs at most once per key and
// its result is shared, so it must return immutable data.
func (ix *TraceIndex) Memo(key string, build func() any) any {
	ix.memoMu.Lock()
	if ix.memo == nil {
		ix.memo = make(map[string]*memoEntry)
	}
	e := ix.memo[key]
	if e == nil {
		e = &memoEntry{}
		ix.memo[key] = e
	}
	ix.memoMu.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}

// materialize copies the rows' tickets into a real Trace, for the
// legacy views.
func (ix *TraceIndex) materialize(rows []int32) *Trace {
	cols := ix.Cols()
	out := make([]Ticket, len(rows))
	for i, r := range rows {
		out[i] = cols.tickets[r]
	}
	return &Trace{Tickets: out}
}

// Failures returns the D_fixing + D_error subset in trace order.
func (ix *TraceIndex) Failures() *Trace {
	ix.failuresOnce.Do(func() { ix.failures = ix.all.Failures() })
	return ix.failures
}

// FailuresByTime returns the failure subset sorted by detection time
// (ties by ID).
func (ix *TraceIndex) FailuresByTime() *Trace {
	ix.byTimeOnce.Do(func() { ix.byTime = ix.materialize(ix.FailureRows()) })
	return ix.byTime
}

// FailuresFirstPerInstance returns the repeat-deduplicated failure view:
// the first ticket of each (host, device, slot, type) group in time
// order, as used by the spatial, lifecycle and correlated-pair analyses.
func (ix *TraceIndex) FailuresFirstPerInstance() *Trace {
	ix.firstOnce.Do(func() { ix.first = ix.materialize(ix.FirstInstanceRows()) })
	return ix.first
}

// ByCategory returns the tickets of one category, in trace order.
func (ix *TraceIndex) ByCategory(c Category) *Trace {
	ix.categoryOnce.Do(func() {
		ix.byCategory = make(map[Category]*Trace, 3)
		for _, tk := range ix.all.Tickets {
			sub := ix.byCategory[tk.Category]
			if sub == nil {
				sub = &Trace{}
				ix.byCategory[tk.Category] = sub
			}
			sub.Tickets = append(sub.Tickets, tk)
		}
	})
	if sub := ix.byCategory[c]; sub != nil {
		return sub
	}
	return &Trace{}
}

// FailuresByComponent returns the failures of one component class, in
// trace order.
func (ix *TraceIndex) FailuresByComponent(c Component) *Trace {
	ix.failCompOnce.Do(func() {
		ix.failByComp = groupByComponent(ix.Failures())
	})
	if sub := ix.failByComp[c]; sub != nil {
		return sub
	}
	return &Trace{}
}

// AllByComponent returns every ticket (false alarms included) of one
// component class, in trace order.
func (ix *TraceIndex) AllByComponent(c Component) *Trace {
	ix.allCompOnce.Do(func() {
		ix.allByComp = groupByComponent(ix.all)
	})
	if sub := ix.allByComp[c]; sub != nil {
		return sub
	}
	return &Trace{}
}

func groupByComponent(tr *Trace) map[Component]*Trace {
	out := make(map[Component]*Trace, numComponents)
	for _, tk := range tr.Tickets {
		sub := out[tk.Device]
		if sub == nil {
			sub = &Trace{}
			out[tk.Device] = sub
		}
		sub.Tickets = append(sub.Tickets, tk)
	}
	return out
}

// FailureIDCs returns the sorted set of datacenters present among the
// failures.
func (ix *TraceIndex) FailureIDCs() []string {
	ix.buildIDCRows()
	return ix.failIDCNames
}

// FailuresByIDC returns the failures of one datacenter, in trace order.
func (ix *TraceIndex) FailuresByIDC(idc string) *Trace {
	ix.failIDCOnce.Do(func() {
		ix.failByIDC = make(map[string]*Trace)
		for _, tk := range ix.Failures().Tickets {
			sub := ix.failByIDC[tk.IDC]
			if sub == nil {
				sub = &Trace{}
				ix.failByIDC[tk.IDC] = sub
			}
			sub.Tickets = append(sub.Tickets, tk)
		}
	})
	if sub := ix.failByIDC[idc]; sub != nil {
		return sub
	}
	return &Trace{}
}

// FailureProductLines returns the sorted set of product lines present
// among the failures.
func (ix *TraceIndex) FailureProductLines() []string {
	ix.buildLineRows()
	return ix.failLineNames
}

// FailuresByProductLine returns the failures of one product line, in
// trace order.
func (ix *TraceIndex) FailuresByProductLine(pl string) *Trace {
	ix.failLineOnce.Do(func() {
		ix.failByLine = make(map[string]*Trace)
		for _, tk := range ix.Failures().Tickets {
			sub := ix.failByLine[tk.ProductLine]
			if sub == nil {
				sub = &Trace{}
				ix.failByLine[tk.ProductLine] = sub
			}
			sub.Tickets = append(sub.Tickets, tk)
		}
	})
	if sub := ix.failByLine[pl]; sub != nil {
		return sub
	}
	return &Trace{}
}

// FailureCountByComponent tallies failures per component class.
func (ix *TraceIndex) FailureCountByComponent() map[Component]int {
	ix.countMapOnce.Do(func() {
		counts := ix.FailureComponentCounts()
		ix.failByClass = make(map[Component]int, numComponents)
		for c, n := range counts {
			if n > 0 {
				ix.failByClass[Component(c)] = n
			}
		}
	})
	return ix.failByClass
}

// FailureSpan returns the earliest and latest failure detection times,
// and false when there are no failures.
func (ix *TraceIndex) FailureSpan() (lo, hi time.Time, ok bool) {
	fail := ix.FailureRows()
	if len(fail) == 0 {
		return time.Time{}, time.Time{}, false
	}
	cols := ix.Cols()
	return cols.tickets[fail[0]].Time, cols.tickets[fail[len(fail)-1]].Time, true
}

// FailureTBF returns the time-between-failures series of the failure
// subset in minutes. The slice is cached and shared: callers that modify
// gaps (e.g. zero-gap flooring before a fit) must copy it first.
func (ix *TraceIndex) FailureTBF() []float64 {
	ix.tbfOnce.Do(func() {
		fail := ix.FailureRows()
		if len(fail) < 2 {
			return
		}
		cols := ix.Cols()
		gaps := make([]float64, len(fail)-1)
		for i := 1; i < len(fail); i++ {
			gaps[i-1] = time.Duration(cols.TimeNS[fail[i]] - cols.TimeNS[fail[i-1]]).Minutes()
		}
		ix.tbf = gaps
	})
	return ix.tbf
}

// utcDayIndex buckets a timestamp into its UTC calendar date, counted in
// days. Midnight UTC has a Unix time divisible by 86400 for every date,
// so the division is exact and two instants share an index iff they fall
// on the same calendar day.
func utcDayIndex(t time.Time) int {
	u := t.UTC()
	return int(time.Date(u.Year(), u.Month(), u.Day(), 0, 0, 0, 0, time.UTC).Unix() / 86400)
}

// FailureDayBuckets returns, per component class, the number of failures
// on each UTC calendar day (keyed by day index relative to the first
// failure's date), together with the total number of calendar days the
// failure span touches. Calendar-date bucketing keeps the Table V r_N
// values independent of the trace's start time-of-day — a cluster
// straddling midnight counts on two days, exactly as the paper's
// "study days" denominator implies.
func (ix *TraceIndex) FailureDayBuckets() (map[Component]map[int]int, int) {
	ix.dayMapOnce.Do(func() {
		counts, days := ix.FailureDayCounts()
		if days == 0 {
			return
		}
		ix.dayBuckets = make(map[Component]map[int]int)
		for c, daily := range counts {
			if daily == nil {
				continue
			}
			m := make(map[int]int)
			for d, n := range daily {
				if n > 0 {
					m[d] = int(n)
				}
			}
			ix.dayBuckets[Component(c)] = m
		}
	})
	return ix.dayBuckets, ix.dayCount
}
