package fot

import (
	"math/rand"
	"strconv"
)

// SampleType draws a failure-type name for a component class according to
// the catalogue weights. It panics only if the class has an empty
// catalogue, which Validate-time checks rule out for all known classes.
func SampleType(rng *rand.Rand, c Component) string {
	types := typeCatalogue[c]
	if len(types) == 0 {
		panic("fot: SampleType on class without catalogue: " + c.String())
	}
	x := rng.Float64()
	acc := 0.0
	for _, ft := range types {
		acc += ft.Weight
		if x < acc {
			return ft.Name
		}
	}
	return types[len(types)-1].Name
}

// slotPrefixes names component instances the way host tooling does.
var slotPrefixes = map[Component]string{
	HDD:          "sd",
	SSD:          "nvme",
	Memory:       "dimm",
	Fan:          "fan_",
	Power:        "psu_",
	CPU:          "cpu",
	RAIDCard:     "raid",
	FlashCard:    "flash",
	Motherboard:  "mb",
	HDDBackboard: "bb",
	Misc:         "",
}

// SlotName renders the instance identifier for the idx-th component of a
// class (0-based), e.g. SlotName(HDD, 3) == "sdd". Misc tickets have no
// slot and return "".
func SlotName(c Component, idx int) string {
	if idx < 0 {
		idx = 0
	}
	prefix, ok := slotPrefixes[c]
	if !ok {
		return strconv.Itoa(idx)
	}
	if prefix == "" {
		return ""
	}
	if c == HDD {
		// Drive letters: sda..sdz, then sdaa...
		name := ""
		for {
			name = string(rune('a'+idx%26)) + name
			idx = idx/26 - 1
			if idx < 0 {
				break
			}
		}
		return prefix + name
	}
	return prefix + strconv.Itoa(idx)
}

// SampleSlot draws a uniform instance slot for a class with n installed
// components.
func SampleSlot(rng *rand.Rand, c Component, n int) string {
	if n <= 1 {
		return SlotName(c, 0)
	}
	return SlotName(c, rng.Intn(n))
}

// SampleFatalType draws a fatal failure type for a class, weighted within
// the fatal subset. It reports false when the class has no fatal types.
func SampleFatalType(rng *rand.Rand, c Component) (string, bool) {
	total := 0.0
	for _, ft := range typeCatalogue[c] {
		if ft.Fatal {
			total += ft.Weight
		}
	}
	if total == 0 {
		return "", false
	}
	x := rng.Float64() * total
	for _, ft := range typeCatalogue[c] {
		if !ft.Fatal {
			continue
		}
		x -= ft.Weight
		if x < 0 {
			return ft.Name, true
		}
	}
	for i := len(typeCatalogue[c]) - 1; i >= 0; i-- {
		if typeCatalogue[c][i].Fatal {
			return typeCatalogue[c][i].Name, true
		}
	}
	return "", false
}
