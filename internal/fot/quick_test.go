package fot

// Property-based tests (testing/quick) on the Trace container invariants.

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

// arbTrace builds a schema-valid trace from raw fuzz input.
func arbTrace(raw []uint16) *Trace {
	tickets := make([]Ticket, 0, len(raw))
	for i, r := range raw {
		tickets = append(tickets, Ticket{
			ID:       uint64(i + 1),
			HostID:   uint64(r%97 + 1),
			IDC:      []string{"dc01", "dc02", "dc03"}[int(r)%3],
			Position: int(r%40) + 1,
			Device:   Component(int(r)%numComponents + 1),
			Type:     "T",
			Time:     t0.Add(time.Duration(r) * time.Minute),
			Category: Category(int(r)%3 + 1),
		})
	}
	return NewTrace(tickets)
}

// TestFilterPartitionProperty: any predicate splits a trace into two
// disjoint parts whose sizes sum to the whole.
func TestFilterPartitionProperty(t *testing.T) {
	f := func(raw []uint16, pivot uint16) bool {
		tr := arbTrace(raw)
		keep := func(tk Ticket) bool { return tk.HostID%uint64(pivot%7+2) == 0 }
		yes := tr.Filter(keep)
		no := tr.Filter(func(tk Ticket) bool { return !keep(tk) })
		return yes.Len()+no.Len() == tr.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCategoryPartitionProperty: the three category filters partition the
// trace exactly.
func TestCategoryPartitionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := arbTrace(raw)
		total := 0
		for _, c := range []Category{Fixing, Error, FalseAlarm} {
			total += tr.ByCategory(c).Len()
		}
		if total != tr.Len() {
			return false
		}
		return tr.Failures().Len() == tr.ByCategory(Fixing).Len()+tr.ByCategory(Error).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestComponentCountsProperty: CountByComponent sums to the trace size and
// matches ByComponent filters.
func TestComponentCountsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := arbTrace(raw)
		counts := tr.CountByComponent()
		total := 0
		for c, n := range counts {
			if tr.ByComponent(c).Len() != n {
				return false
			}
			total += n
		}
		return total == tr.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTBFNonNegativeProperty: the TBF series has len-1 entries, all >= 0.
func TestTBFNonNegativeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := arbTrace(raw)
		gaps := tr.TBF()
		if tr.Len() < 2 {
			return gaps == nil
		}
		if len(gaps) != tr.Len()-1 {
			return false
		}
		for _, g := range gaps {
			if g < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGroupByHostPartitionProperty: host groups cover the trace exactly.
func TestGroupByHostPartitionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := arbTrace(raw)
		total := 0
		for host, g := range tr.GroupByHost() {
			for _, tk := range g {
				if tk.HostID != host {
					return false
				}
			}
			total += len(g)
		}
		return total == tr.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSortByTimeIsPermutationProperty: sorting preserves the multiset of
// ticket ids and orders times.
func TestSortByTimeIsPermutationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := arbTrace(raw)
		before := map[uint64]int{}
		for _, tk := range tr.Tickets {
			before[tk.ID]++
		}
		tr.SortByTime()
		after := map[uint64]int{}
		for i, tk := range tr.Tickets {
			after[tk.ID]++
			if i > 0 && tk.Time.Before(tr.Tickets[i-1].Time) {
				return false
			}
		}
		if len(before) != len(after) {
			return false
		}
		for id, n := range before {
			if after[id] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCSVRoundTripProperty: arbitrary valid traces survive the CSV codec.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := arbTrace(raw)
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Tickets {
			a, b := tr.Tickets[i], got.Tickets[i]
			if a.ID != b.ID || a.HostID != b.HostID || a.Device != b.Device ||
				!a.Time.Equal(b.Time) || a.Category != b.Category {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25} // IO-heavy; fewer iterations
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
