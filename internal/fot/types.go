package fot

// FailureType describes one entry of the failure-type catalogue
// (paper Table III and Fig. 2). Weight is the relative within-class
// frequency used both to generate synthetic traces and as the Fig. 2
// reference series; the absolute values for classes beyond the paper's
// published examples are synthesized and documented in EXPERIMENTS.md.
type FailureType struct {
	Name string
	// Explanation is the human description (Table III).
	Explanation string
	// Weight is the relative frequency within the component class.
	Weight float64
	// Fatal marks failures that stop the component outright, as opposed
	// to predictive warnings such as SMARTFail.
	Fatal bool
}

// syslogClasses marks the component classes whose failures the FMS agents
// detect by listening to log messages (paper §III-A: hard drive and
// memory failures surface through dmesg, so detection is near-immediate
// once the workload touches the fault). Other classes are found by the
// periodic device-status poll and carry up to a poll interval of latency.
var syslogClasses = map[Component]bool{
	HDD:    true,
	Memory: true,
	SSD:    true,
}

// IsSyslogDetected reports whether a class is detected via syslog rather
// than the periodic poll.
func IsSyslogDetected(c Component) bool {
	return syslogClasses[c]
}

// typeCatalogue maps each component class to its failure types.
// HDD, RAID card and memory entries follow paper Table III; the remaining
// classes are synthesized to match the paper's narrative (e.g. the Misc
// split in §II-A: 44% no description, ~25% suspected HDD, ~25% crash).
var typeCatalogue = map[Component][]FailureType{
	HDD: {
		{"SMARTFail", "Some HDD SMART value exceeds the predefined threshold.", 0.44, false},
		{"RaidPdPreErr", "The prediction error count exceeds the predefined threshold.", 0.20, false},
		{"NotReady", "Some device file could not be accessed.", 0.12, true},
		{"Missing", "Some device file could not be detected.", 0.08, true},
		{"PendingLBA", "Failures are detected on the sectors that are not accessed.", 0.07, false},
		{"TooMany", "Large number of failed sectors are detected on the HDD.", 0.05, false},
		{"DStatus", "IO requests are not handled by the HDD and are in D status.", 0.03, true},
		{"SixthFixing", "Recurrent drive fault re-detected after an automatic recovery.", 0.01, false},
	},
	SSD: {
		{"SSDSMARTFail", "Some SSD SMART value exceeds the predefined threshold.", 0.40, false},
		{"SSDWearLevel", "Remaining program/erase cycles below threshold.", 0.25, false},
		{"SSDMissing", "SSD device file could not be detected.", 0.20, true},
		{"SSDIOError", "Read/write exceptions on the SSD.", 0.15, false},
	},
	RAIDCard: {
		{"BBTFail", "The bad block table (BBT) could not be accessed.", 0.35, false},
		{"HighMaxBbRate", "The max bad block rate exceeds the predefined threshold.", 0.25, false},
		{"RaidVdNoBBU-CacheErr", "Abnormal cache setting due to BBU is detected, which degrades the performance.", 0.25, false},
		{"RaidCtrlDown", "The RAID controller stopped responding.", 0.15, true},
	},
	FlashCard: {
		{"FlashBBTFail", "The flash card bad block table could not be accessed.", 0.40, false},
		{"FlashHighBbRate", "The flash card bad block rate exceeds the predefined threshold.", 0.30, false},
		{"FlashIOHang", "IO requests to the flash card hang.", 0.20, true},
		{"FlashMissing", "Flash card device file could not be detected.", 0.10, true},
	},
	Memory: {
		{"DIMMCE", "Large number of correctable errors are detected.", 0.70, false},
		{"DIMMUE", "Uncorrectable errors are detected on the memory.", 0.30, true},
	},
	Motherboard: {
		{"MBSensorFail", "A motherboard health sensor reports out-of-range values.", 0.40, false},
		{"MBSASFault", "The on-board SAS controller misbehaves.", 0.30, true},
		{"MBNoPost", "The server fails to POST.", 0.30, true},
	},
	CPU: {
		{"CPUCacheErr", "Correctable CPU cache errors exceed the threshold.", 0.60, false},
		{"CPUMCE", "A machine-check exception was raised.", 0.40, true},
	},
	Fan: {
		{"FanSpeedLow", "Fan speed below the minimum RPM threshold.", 0.60, false},
		{"FanStop", "The fan stopped.", 0.40, true},
	},
	Power: {
		{"PSUVoltage", "PSU output voltage out of range.", 0.40, false},
		{"PSUFail", "The power supply unit failed.", 0.35, true},
		{"PSUFanFail", "The PSU cooling fan failed.", 0.25, false},
	},
	HDDBackboard: {
		{"BackboardLinkLoss", "Drives behind the backboard intermittently disappear.", 1.0, true},
	},
	Misc: {
		{"MiscNoDescription", "Manually filed ticket with no description.", 0.44, false},
		{"MiscSuspectHDD", "Manually filed ticket; operator suspects a hard drive.", 0.25, false},
		{"MiscServerCrash", "Manually filed ticket: server crash without clear reason.", 0.25, true},
		{"MiscOther", "Manually filed ticket: other described problems.", 0.06, false},
	},
}

// TypesOf returns the failure-type catalogue for a component class, in
// decreasing weight order. The returned slice is shared; callers must not
// modify it.
func TypesOf(c Component) []FailureType {
	return typeCatalogue[c]
}

// LookupType finds a failure type by name within a component class.
func LookupType(c Component, name string) (FailureType, bool) {
	for _, ft := range typeCatalogue[c] {
		if ft.Name == name {
			return ft, true
		}
	}
	return FailureType{}, false
}

// IsFatalType reports whether the named failure type of class c is fatal.
// Unknown types are treated as non-fatal warnings.
func IsFatalType(c Component, name string) bool {
	ft, ok := LookupType(c, name)
	return ok && ft.Fatal
}
