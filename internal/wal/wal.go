// Package wal implements the collector's write-ahead log: a segmented,
// append-only record log with CRC-framed JSON-line records and batched
// fsync (group commit). The networked FMS appends a record for every
// state transition (report accepted, ticket closed) before acking, so a
// collector crash loses nothing that was acknowledged: on restart the
// log is replayed to rebuild the in-memory failure pool.
//
// Layout inside the WAL directory:
//
//	wal-000001.log    one record per line: "crc32c<space>payload\n"
//	wal-000002.log    ...
//
// Records are opaque byte payloads (the caller's JSON); the only framing
// constraint is that a payload may not contain '\n'. Each line carries a
// CRC-32C of its payload, so a torn write (crash or truncated copy
// mid-frame) is detected and discarded rather than replayed as garbage.
// Open truncates a torn tail on the newest segment and always starts a
// fresh segment for new appends; a torn frame anywhere else is reported
// as corruption.
package wal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Options tunes a WAL.
type Options struct {
	// SegmentBytes is the rotation threshold; a segment is finalized
	// once it grows past this size. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips fsync on append (throughput over durability — e.g.
	// unit tests). Sync and Close still flush the OS buffers.
	NoSync bool
}

// DefaultSegmentBytes is the rotation threshold used when Options leaves
// SegmentBytes zero.
const DefaultSegmentBytes = 4 << 20

// MaxRecordBytes bounds one payload (matches the fmsnet frame limit).
const MaxRecordBytes = 1 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a CRC mismatch or malformed frame before the tail
// of the newest segment — data loss that replay cannot repair silently.
var ErrCorrupt = errors.New("wal: corrupt record")

// WAL is an append-only record log. It is safe for concurrent use;
// concurrent Appends share fsyncs (group commit): each call returns only
// once its record is durable, but one fsync covers every record written
// while the previous fsync was in flight.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	bw       *bufio.Writer
	size     int64
	seq      int    // current segment number
	appended uint64 // records written into the buffer
	synced   uint64 // records known durable
	syncing  bool   // a leader is flushing+fsyncing
	err      error  // sticky failure
	closed   bool

	tornBytes int64 // discarded from a torn tail at Open
}

// Open opens (creating if needed) a WAL directory for appending. A torn
// tail on the newest segment is truncated; new records always go to a
// fresh segment so finalized segments stay immutable.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}
	w.cond = sync.NewCond(&w.mu)
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if n := len(segs); n > 0 {
		w.seq = segSeq(segs[n-1])
		torn, err := truncateTorn(filepath.Join(dir, segs[n-1]))
		if err != nil {
			return nil, err
		}
		w.tornBytes = torn
	}
	if err := w.openNextSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

// TornBytes reports how many bytes of torn tail Open discarded (0 means
// the log was clean).
func (w *WAL) TornBytes() int64 { return w.tornBytes }

// Dir returns the WAL directory.
func (w *WAL) Dir() string { return w.dir }

func segName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }

func segSeq(name string) int {
	n, _ := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
	return n
}

func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// truncateTorn validates the segment's framing and cuts off a torn tail,
// returning how many bytes were discarded.
func truncateTorn(path string) (int64, error) {
	valid, torn, err := scanSegment(path, nil)
	if err != nil && !errors.Is(err, ErrCorrupt) {
		return 0, err
	}
	// A corrupt frame at the tail is indistinguishable from a torn
	// write; anything before the last frame would also surface here,
	// and truncating is the only way to make the log appendable again.
	if torn == 0 {
		return 0, nil
	}
	if terr := os.Truncate(path, valid); terr != nil {
		return 0, fmt.Errorf("wal: truncate torn tail: %w", terr)
	}
	return torn, nil
}

func (w *WAL) openNextSegment() error {
	w.seq++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.size = 0
	return nil
}

// frame builds "crc32c payload\n".
func frame(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+10)
	out = append(out, fmt.Sprintf("%08x ", crc32.Checksum(payload, crcTable))...)
	out = append(out, payload...)
	return append(out, '\n')
}

// parseFrame validates one line (without its trailing '\n') and returns
// the payload.
func parseFrame(line []byte) ([]byte, error) {
	if len(line) < 9 || line[8] != ' ' {
		return nil, ErrCorrupt
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, ErrCorrupt
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != uint32(want) {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// Append stores one record. It returns once the record is durable
// (unless Options.NoSync), sharing fsyncs with concurrent appenders.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	if bytes.IndexByte(payload, '\n') >= 0 {
		return fmt.Errorf("wal: record contains a newline")
	}
	rec := frame(payload)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("wal: append to closed log")
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.size > 0 && w.size+int64(len(rec)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			w.mu.Unlock()
			return err
		}
	}
	if _, err := w.bw.Write(rec); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		err = w.err
		w.mu.Unlock()
		return err
	}
	w.size += int64(len(rec))
	w.appended++
	my := w.appended
	if w.opts.NoSync {
		w.mu.Unlock()
		return nil
	}
	err := w.waitDurableLocked(my)
	w.mu.Unlock()
	return err
}

// waitDurableLocked blocks (releasing w.mu while fsyncing) until record
// number target is durable. Exactly one waiter acts as the group-commit
// leader; the rest wait on the condition variable.
func (w *WAL) waitDurableLocked(target uint64) error {
	for w.synced < target && w.err == nil {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		covered := w.appended
		flushErr := w.bw.Flush()
		f := w.f
		w.mu.Unlock()
		var syncErr error
		if flushErr == nil {
			syncErr = f.Sync()
		}
		w.mu.Lock()
		w.syncing = false
		switch {
		case flushErr != nil:
			if w.err == nil {
				w.err = fmt.Errorf("wal: flush: %w", flushErr)
			}
		case syncErr != nil:
			if w.err == nil {
				w.err = fmt.Errorf("wal: fsync: %w", syncErr)
			}
		default:
			if covered > w.synced {
				w.synced = covered
			}
		}
		w.cond.Broadcast()
	}
	return w.err
}

// Sync forces everything appended so far onto stable storage (even with
// Options.NoSync set) — the barrier the collector uses before re-acking
// a duplicate.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: sync on closed log")
	}
	return w.waitDurableLocked(w.appended)
}

// rotateLocked finalizes the current segment and opens the next. The
// caller holds w.mu; any in-flight fsync must finish first so we never
// fsync a closed file.
func (w *WAL) rotateLocked() error {
	for w.syncing {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	w.synced = w.appended
	return w.openNextSegment()
}

// Close flushes, fsyncs, and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	for w.syncing {
		w.cond.Wait()
	}
	w.closed = true
	if w.f == nil {
		return w.err
	}
	err := w.bw.Flush()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if err != nil && w.err == nil {
		w.err = fmt.Errorf("wal: close: %w", err)
	}
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	Records   int
	Segments  int
	TornBytes int64 // torn tail discarded on the newest segment
}

// Replay reads every record in dir in append order, calling fn for each
// payload. A torn tail on the newest segment is skipped (and reported in
// the stats); torn or corrupt frames anywhere else return ErrCorrupt.
// Replay is a read-only pass — it may run before Open, or on a live
// directory between appends (but not concurrently with one).
func Replay(dir string, fn func(payload []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return stats, nil
		}
		return stats, err
	}
	for i, name := range segs {
		last := i == len(segs)-1
		_, torn, err := scanSegment(filepath.Join(dir, name), func(payload []byte) error {
			stats.Records++
			return fn(payload)
		})
		if err != nil {
			if errors.Is(err, ErrCorrupt) && last {
				stats.TornBytes = torn
				stats.Segments++
				return stats, nil
			}
			return stats, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		if torn > 0 {
			if !last {
				return stats, fmt.Errorf("wal: segment %s: %w (torn frame before newest segment)", name, ErrCorrupt)
			}
			stats.TornBytes = torn
		}
		stats.Segments++
	}
	return stats, nil
}

// scanSegment streams one segment, calling fn per valid payload. It
// returns the byte offset of the end of the last valid frame and how
// many trailing bytes are torn (unparseable or missing the newline).
// A CRC/framing failure also surfaces as err == ErrCorrupt; fn errors
// abort the scan unchanged.
func scanSegment(path string, fn func(payload []byte) error) (valid, torn int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64*1024)
	var off int64
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil {
			if rerr == io.EOF {
				if len(line) > 0 {
					// No trailing newline: torn write.
					return off, int64(len(line)), ErrCorrupt
				}
				return off, 0, nil
			}
			return off, 0, fmt.Errorf("wal: read segment: %w", rerr)
		}
		payload, perr := parseFrame(line[:len(line)-1])
		if perr != nil {
			rest := int64(len(line))
			for {
				b := make([]byte, 32*1024)
				n, e := r.Read(b)
				rest += int64(n)
				if e != nil {
					break
				}
			}
			return off, rest, ErrCorrupt
		}
		if fn != nil {
			if ferr := fn(payload); ferr != nil {
				return off, 0, ferr
			}
		}
		off += int64(len(line))
	}
}
