package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func appendAll(t *testing.T, w *WAL, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := w.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, dir string) ([]string, ReplayStats) {
	t.Helper()
	var got []string
	stats, err := Replay(dir, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, `{"op":"report","id":1}`, `{"op":"close","id":1}`, `{"op":"report","id":2}`)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, dir)
	if len(got) != 3 || got[0] != `{"op":"report","id":1}` || got[2] != `{"op":"report","id":2}` {
		t.Fatalf("replay = %q", got)
	}
	if stats.Records != 3 || stats.TornBytes != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	got, stats := replayAll(t, t.TempDir())
	if len(got) != 0 || stats.Records != 0 {
		t.Errorf("empty dir replay = %q, %+v", got, stats)
	}
	if _, err := Replay(filepath.Join(t.TempDir(), "nope"), func([]byte) error { return nil }); err != nil {
		t.Errorf("missing dir should replay empty: %v", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf(`{"n":%d,"pad":"xxxxxxxxxxxxxxxx"}`, i)
		want = append(want, p)
	}
	appendAll(t, w, want...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Errorf("expected rotation, got %d segment(s)", len(segs))
	}
	got, stats := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if stats.Segments != len(segs) {
		t.Errorf("stats.Segments = %d, want %d", stats.Segments, len(segs))
	}
}

func TestTornTailDiscardedOnReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, `{"id":1}`, `{"id":2}`)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-frame: append half a record to the newest
	// segment.
	segs, _ := listSegments(dir)
	last := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"id":3`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, stats := replayAll(t, dir)
	if len(got) != 2 {
		t.Fatalf("replay after torn tail = %q", got)
	}
	if stats.TornBytes == 0 {
		t.Error("torn bytes not reported")
	}
}

func TestOpenTruncatesTornTailAndContinues(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, `{"id":1}`)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	last := filepath.Join(dir, segs[len(segs)-1])
	f, _ := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("00000000 torn-with-bad-crc\n")
	f.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.TornBytes() == 0 {
		t.Error("reopen did not report torn tail")
	}
	appendAll(t, w2, `{"id":2}`)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	if len(got) != 2 || got[0] != `{"id":1}` || got[1] != `{"id":2}` {
		t.Fatalf("replay after recovery = %q", got)
	}
}

func TestCorruptionBeforeNewestSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 32, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, `{"id":1,"pad":"aaaaaaaa"}`, `{"id":2,"pad":"bbbbbbbb"}`, `{"id":3,"pad":"cccccccc"}`)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	// Flip a byte in the first (non-newest) segment's payload.
	first := filepath.Join(dir, segs[0])
	raw, _ := os.ReadFile(first)
	raw[12] ^= 0xff
	os.WriteFile(first, raw, 0o644)

	_, err = Replay(dir, func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("corruption in old segment: err = %v, want ErrCorrupt", err)
	}
}

func TestAppendRejectsBadPayloads(t *testing.T) {
	w, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("line1\nline2")); err == nil {
		t.Error("payload with newline accepted")
	}
	if err := w.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := w.Append([]byte(fmt.Sprintf(`{"w":%d,"i":%d}`, g, i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	seen := map[string]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatalf("duplicate record %q", p)
		}
		seen[p] = true
	}
}

func TestSyncBarrierWithNoSync(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, `{"id":1}`)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// The record must be visible on disk before Close.
	got, _ := replayAll(t, dir)
	if len(got) != 1 {
		t.Fatalf("after Sync, replay sees %d records", len(got))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err == nil {
		t.Error("append after close accepted")
	}
}
