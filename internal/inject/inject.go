// Package inject provides the correlated-failure generators of the dcfail
// simulator. Independent hazard-driven failures (internal/fleetgen) cannot
// reproduce the paper's headline findings — batch failures (§V-A),
// correlated component failures (§V-B), and synchronously repeating
// failures (§V-C) — so each mechanism the paper identifies is modeled as
// an explicit injector:
//
//   - HDDBatch:       recurring same-model hard-drive epidemics (case 1,
//     Table V's dominant driver)
//   - SASBatch:       motherboard cohorts killed by faulty SAS cards (case 2)
//   - PDUOutage:      hidden single-point power failures (case 3), with
//     power→fan causality (Table VII)
//   - OperatorMistake: the August-2016 electricity-provider misoperation
//   - CorrelatedPairs: same-server two-component failures (Table VI)
//   - SyncRepeat:     synchronized repeating failures on near-identical
//     servers (Table VIII) plus the chronic BBU server (§III-D)
package inject

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"dcfail/internal/event"
	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// Context carries the shared state injectors need.
type Context struct {
	Fleet *topo.Fleet
	// Start and End bound the study window; injectors only emit inside it.
	Start, End time.Time
	// NextBatchID allocates ground-truth batch identifiers.
	NextBatchID func() uint64
}

// Years returns the window length in years.
func (c *Context) Years() float64 {
	return c.End.Sub(c.Start).Hours() / (24 * 365.25)
}

// Days returns the window length in whole days.
func (c *Context) Days() int {
	return int(c.End.Sub(c.Start).Hours() / 24)
}

// Injector generates correlated failure events.
type Injector interface {
	// Name identifies the injector in logs and reports.
	Name() string
	// Inject emits the injector's events for the context window.
	Inject(rng *rand.Rand, ctx *Context) ([]event.Event, error)
	// ExpectedPerClass estimates the expected number of emitted events
	// per component class, used by the calibration step to apportion the
	// Table II budget between baseline and injected failures.
	ExpectedPerClass(ctx *Context) map[fot.Component]float64
}

// validateContext checks the pieces every injector relies on.
func validateContext(ctx *Context) error {
	switch {
	case ctx == nil:
		return fmt.Errorf("inject: nil context")
	case ctx.Fleet == nil || ctx.Fleet.NumServers() == 0:
		return fmt.Errorf("inject: empty fleet")
	case !ctx.End.After(ctx.Start):
		return fmt.Errorf("inject: empty window")
	case ctx.NextBatchID == nil:
		return fmt.Errorf("inject: missing batch id allocator")
	}
	return nil
}

// eligible reports whether a server can emit a failure of class c at ts:
// it must be deployed and actually contain such a component.
func eligible(s *topo.Server, c fot.Component, ts time.Time) bool {
	return !ts.Before(s.DeployTime) && s.Inventory[c] > 0
}

// coolingLookup builds a per-server thermal-multiplier function for a
// fleet. Environmental batch injectors weight victim selection by it: the
// same shared-stress mechanisms that cause epidemics trip hot servers
// first, which is what couples the paper's batch failures to its spatial
// findings (§IV).
func coolingLookup(fleet *topo.Fleet) func(*topo.Server) float64 {
	dcs := make(map[string]*topo.Datacenter, len(fleet.Datacenters))
	for i := range fleet.Datacenters {
		dcs[fleet.Datacenters[i].ID] = &fleet.Datacenters[i]
	}
	return func(s *topo.Server) float64 {
		if dc, ok := dcs[s.IDC]; ok {
			return dc.CoolingAt(s.Position)
		}
		return 1
	}
}

// sampleWeighted picks up to k distinct servers from cohort with
// probability proportional to weight(s), via the Efraimidis–Spirakis
// reservoir keys (u^(1/w), take the k largest).
func sampleWeighted(rng *rand.Rand, cohort []*topo.Server, k int, weight func(*topo.Server) float64) []*topo.Server {
	if k >= len(cohort) {
		out := make([]*topo.Server, len(cohort))
		copy(out, cohort)
		return out
	}
	type keyed struct {
		s   *topo.Server
		key float64
	}
	keys := make([]keyed, len(cohort))
	for i, s := range cohort {
		w := weight(s)
		if w <= 0 {
			w = 1e-9
		}
		keys[i] = keyed{s: s, key: math.Pow(rng.Float64(), 1/w)}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key > keys[j].key })
	out := make([]*topo.Server, k)
	for i := 0; i < k; i++ {
		out[i] = keys[i].s
	}
	return out
}

// sampleDistinct picks up to k distinct indexes from [0, n) using a
// partial Fisher–Yates shuffle.
func sampleDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// uniformTime draws a uniform timestamp in [lo, hi).
func uniformTime(rng *rand.Rand, lo, hi time.Time) time.Time {
	span := hi.Sub(lo)
	if span <= 0 {
		return lo
	}
	return lo.Add(time.Duration(rng.Int63n(int64(span))))
}

// serversByModel groups a fleet's servers per model, optionally within one
// datacenter ("" means fleet-wide).
func serversByModel(fleet *topo.Fleet, idc string) map[string][]*topo.Server {
	out := make(map[string][]*topo.Server)
	add := func(s *topo.Server) { out[s.Model] = append(out[s.Model], s) }
	if idc == "" {
		for i := range fleet.Servers {
			add(&fleet.Servers[i])
		}
		return out
	}
	for _, s := range fleet.ServersByIDC(idc) {
		add(s)
	}
	return out
}
