package inject

import (
	"math/rand"
	"time"

	"dcfail/internal/event"
	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// PairWeight is one cell of the Table VI correlated-pair matrix.
type PairWeight struct {
	A, B   fot.Component
	Weight float64
}

// TableVIWeights returns the paper's correlated-pair frequency matrix
// (Table VI): miscellaneous reports accompany 71.5% of two-component
// failures, and hard drives appear in nearly all the rest.
func TableVIWeights() []PairWeight {
	return []PairWeight{
		{fot.Misc, fot.HDD, 349},
		{fot.Misc, fot.Memory, 18},
		{fot.Misc, fot.Power, 6},
		{fot.Misc, fot.Motherboard, 6},
		{fot.Misc, fot.RAIDCard, 4},
		{fot.Misc, fot.SSD, 2},
		{fot.Misc, fot.FlashCard, 2},
		{fot.Motherboard, fot.HDD, 17},
		{fot.Motherboard, fot.Memory, 2},
		{fot.Motherboard, fot.SSD, 1},
		{fot.Motherboard, fot.Power, 1},
		{fot.Fan, fot.HDD, 3},
		{fot.Power, fot.HDD, 46},
		{fot.Power, fot.Fan, 7},
		{fot.RAIDCard, fot.HDD, 22},
		{fot.FlashCard, fot.HDD, 40},
		{fot.Memory, fot.HDD, 15},
		{fot.SSD, fot.HDD, 2},
	}
}

// CorrelatedPairs emits same-server two-component failures within a single
// day (the paper's §V-B definition). The first component's failure causes
// the second's report: for power→fan the gap is minutes (Table VII), and
// for misc-involving pairs the misc ticket is the operator noticing and
// immediately reporting what the FMS already detected.
type CorrelatedPairs struct {
	// RatePer10kServerYears scales the number of pairs with fleet size.
	RatePer10kServerYears float64
	// Weights is the pair-frequency matrix (defaults to Table VI).
	Weights []PairWeight
}

// DefaultCorrelatedPairs returns the paper-profile configuration.
func DefaultCorrelatedPairs() *CorrelatedPairs {
	return &CorrelatedPairs{RatePer10kServerYears: 30, Weights: TableVIWeights()}
}

// Name implements Injector.
func (cp *CorrelatedPairs) Name() string { return "correlated-pairs" }

func (cp *CorrelatedPairs) expectedPairs(ctx *Context) float64 {
	serverYears := float64(ctx.Fleet.NumServers()) * ctx.Years()
	return cp.RatePer10kServerYears * serverYears / 10000
}

// ExpectedPerClass implements Injector.
func (cp *CorrelatedPairs) ExpectedPerClass(ctx *Context) map[fot.Component]float64 {
	total := cp.expectedPairs(ctx)
	wsum := 0.0
	for _, w := range cp.Weights {
		wsum += w.Weight
	}
	out := make(map[fot.Component]float64)
	if wsum == 0 {
		return out
	}
	for _, w := range cp.Weights {
		share := total * w.Weight / wsum
		out[w.A] += share
		out[w.B] += share
	}
	return out
}

// Inject implements Injector.
func (cp *CorrelatedPairs) Inject(rng *rand.Rand, ctx *Context) ([]event.Event, error) {
	if err := validateContext(ctx); err != nil {
		return nil, err
	}
	weights := cp.Weights
	if len(weights) == 0 {
		weights = TableVIWeights()
	}
	wsum := 0.0
	for _, w := range weights {
		wsum += w.Weight
	}
	n := poisson(rng, cp.expectedPairs(ctx))
	var out []event.Event
	for i := 0; i < n; i++ {
		pw := pickPair(rng, weights, wsum)
		s := findServerWith(rng, ctx.Fleet, pw.A, pw.B)
		if s == nil {
			continue
		}
		first := uniformTime(rng, ctx.Start, ctx.End.Add(-24*time.Hour))
		if first.Before(s.DeployTime) {
			first = s.DeployTime.Add(time.Duration(rng.Intn(86400)) * time.Second)
		}
		// Correlated multi-component failures concentrate on aged
		// hardware — the cascade mechanisms (§V-B) need worn parts — so
		// avoid placing them inside a server's first year when the
		// window allows it.
		if minAge := s.DeployTime.AddDate(1, 0, 0); first.Before(minAge) {
			if hi := ctx.End.Add(-24 * time.Hour); minAge.Before(hi) {
				first = uniformTime(rng, minAge, hi)
			}
		}
		gap := pairGap(rng, pw)
		second := first.Add(gap)
		if second.After(ctx.End) {
			continue
		}
		batchID := ctx.NextBatchID()
		out = append(out,
			event.Event{
				Server: s, Component: pw.A,
				Slot: fot.SampleSlot(rng, pw.A, s.Inventory[pw.A]),
				Type: fot.SampleType(rng, pw.A),
				Time: first, Cause: event.CauseCorrelated, BatchID: batchID,
			},
			event.Event{
				Server: s, Component: pw.B,
				Slot: fot.SampleSlot(rng, pw.B, s.Inventory[pw.B]),
				Type: fot.SampleType(rng, pw.B),
				Time: second, Cause: event.CauseCorrelated, BatchID: batchID,
			},
		)
	}
	return out, nil
}

// pairGap returns the delay between the two component reports: minutes for
// power→fan causality, up to a few hours otherwise — always within the
// same-day window the paper's detector uses.
func pairGap(rng *rand.Rand, pw PairWeight) time.Duration {
	if pw.A == fot.Power && pw.B == fot.Fan {
		return time.Duration(30+rng.Intn(150)) * time.Second
	}
	return time.Duration(5+rng.Intn(6*60)) * time.Minute
}

func pickPair(rng *rand.Rand, weights []PairWeight, wsum float64) PairWeight {
	x := rng.Float64() * wsum
	for _, w := range weights {
		x -= w.Weight
		if x < 0 {
			return w
		}
	}
	return weights[len(weights)-1]
}

// findServerWith samples servers until one carries both component classes
// (a bounded number of attempts keeps pathological fleets from hanging).
func findServerWith(rng *rand.Rand, fleet *topo.Fleet, a, b fot.Component) *topo.Server {
	for i := 0; i < 256; i++ {
		s := &fleet.Servers[rng.Intn(fleet.NumServers())]
		if s.Inventory[a] > 0 && s.Inventory[b] > 0 {
			return s
		}
	}
	return nil
}
