package inject

import (
	"math"
	"math/rand"
	"time"

	"dcfail/internal/event"
	"dcfail/internal/fot"
	"dcfail/internal/topo"
)

// SyncRepeat reproduces §V-C / Table VIII: small groups of near-identical
// servers (same product line, same model, adjacent racks, same distributed
// storage system) whose ineffectively repaired disk faults recur almost
// synchronously, many times. It also plants the paper's §III-D extreme
// case: a single server whose failing BBU flaps the RAID card and drives
// for ~a year, producing hundreds of tickets that an automatic reboot
// keeps marking "solved".
type SyncRepeat struct {
	// Groups is the number of synchronized repeat groups to plant.
	Groups int
	// MinRepeats/MaxRepeats bound the recurrences per group.
	MinRepeats, MaxRepeats int
	// ChronicBBUTickets is the ticket count of the chronic server
	// (paper: "over 400 failures ... for almost a year").
	ChronicBBUTickets int
}

// DefaultSyncRepeat returns the paper-profile configuration.
func DefaultSyncRepeat() *SyncRepeat {
	return &SyncRepeat{Groups: 25, MinRepeats: 4, MaxRepeats: 8, ChronicBBUTickets: 420}
}

// Name implements Injector.
func (sr *SyncRepeat) Name() string { return "sync-repeat" }

// ExpectedPerClass implements Injector.
func (sr *SyncRepeat) ExpectedPerClass(ctx *Context) map[fot.Component]float64 {
	perGroup := float64(sr.MinRepeats+sr.MaxRepeats) / 2 * 2 // two servers
	return map[fot.Component]float64{
		fot.HDD:      float64(sr.Groups)*perGroup + float64(sr.ChronicBBUTickets)/2,
		fot.RAIDCard: float64(sr.ChronicBBUTickets) / 2,
	}
}

// Inject implements Injector.
func (sr *SyncRepeat) Inject(rng *rand.Rand, ctx *Context) ([]event.Event, error) {
	if err := validateContext(ctx); err != nil {
		return nil, err
	}
	var out []event.Event
	for g := 0; g < sr.Groups; g++ {
		pair := findTwinServers(rng, ctx.Fleet)
		if pair == nil {
			continue
		}
		out = append(out, sr.oneGroup(rng, ctx, *pair)...)
	}
	out = append(out, sr.chronicBBU(rng, ctx)...)
	return out, nil
}

// oneGroup emits the synchronized repeating failures of one twin pair.
func (sr *SyncRepeat) oneGroup(rng *rand.Rand, ctx *Context, pair [2]*topo.Server) []event.Event {
	repeats := sr.MinRepeats
	if sr.MaxRepeats > sr.MinRepeats {
		repeats += rng.Intn(sr.MaxRepeats - sr.MinRepeats + 1)
	}
	deploy := pair[0].DeployTime
	if pair[1].DeployTime.After(deploy) {
		deploy = pair[1].DeployTime
	}
	lo := ctx.Start
	if deploy.After(lo) {
		lo = deploy
	}
	// Leave room for the repeat chain.
	margin := time.Duration(repeats) * 21 * 24 * time.Hour
	hi := ctx.End.Add(-margin)
	if !hi.After(lo) {
		return nil
	}
	ts := uniformTime(rng, lo, hi)
	batchID := ctx.NextBatchID()
	var out []event.Event
	failureType := "SMARTFail"
	// Table VIII shape: each twin starts with its own flaky drive
	// (sdh8 / sdd4), then the shared root cause resurfaces on the system
	// drive of both under the recurrent-fault label.
	initialSlot := [2]string{
		fot.SampleSlot(rng, fot.HDD, pair[0].Inventory[fot.HDD]),
		fot.SampleSlot(rng, fot.HDD, pair[1].Inventory[fot.HDD]),
	}
	recurrentSlot := fot.SlotName(fot.HDD, 0)
	for r := 0; r <= repeats; r++ {
		if r >= 2 {
			// After the first "fixes" the same underlying fault
			// resurfaces under the recurrent-fault label (Table VIII's
			// SixthFixing entries).
			failureType = "SixthFixing"
		}
		for i, s := range pair {
			// Near-synchronous: the two servers report seconds apart.
			skew := time.Duration(rng.Intn(30)) * time.Second
			t := ts.Add(skew)
			if !eligible(s, fot.HDD, t) || t.After(ctx.End) {
				continue
			}
			slot := initialSlot[i]
			if r >= 2 {
				slot = recurrentSlot
			}
			out = append(out, event.Event{
				Server: s, Component: fot.HDD, Slot: slot, Type: failureType,
				Time: t, Cause: event.CauseRepeat, BatchID: batchID,
			})
		}
		// Next recurrence days later (lognormal gap: most within a week,
		// occasionally a long lull — compare Table VIII's timestamps).
		gapHours := math.Exp(math.Log(4*24) + 0.7*rng.NormFloat64())
		ts = ts.Add(time.Duration(gapHours * float64(time.Hour)))
		if ts.After(ctx.End) {
			break
		}
	}
	return out
}

// chronicBBU plants the 400-ticket BBU-flap server: alternating RAID-card
// cache errors and drive-offline reports every few hours to days, for
// about a year.
func (sr *SyncRepeat) chronicBBU(rng *rand.Rand, ctx *Context) []event.Event {
	if sr.ChronicBBUTickets <= 0 {
		return nil
	}
	s := findServerWith(rng, ctx.Fleet, fot.RAIDCard, fot.HDD)
	if s == nil {
		return nil
	}
	lo := ctx.Start
	if s.DeployTime.After(lo) {
		lo = s.DeployTime
	}
	yearEnd := ctx.End.AddDate(-1, 0, 0)
	if yearEnd.After(lo) {
		lo = uniformTime(rng, lo, yearEnd)
	}
	ts := lo
	batchID := ctx.NextBatchID()
	var out []event.Event
	for i := 0; i < sr.ChronicBBUTickets && ts.Before(ctx.End); i++ {
		comp, typ := fot.RAIDCard, "RaidVdNoBBU-CacheErr"
		slot := fot.SlotName(fot.RAIDCard, 0)
		if i%2 == 1 {
			comp, typ = fot.HDD, "NotReady"
			slot = fot.SlotName(fot.HDD, 0)
		}
		if eligible(s, comp, ts) {
			out = append(out, event.Event{
				Server: s, Component: comp, Slot: slot, Type: typ,
				Time: ts, Cause: event.CauseRepeat, BatchID: batchID,
			})
		}
		// Reboot "fixes" it; it flaps again within hours to ~2 days.
		gapHours := math.Exp(math.Log(20) + 0.8*rng.NormFloat64())
		ts = ts.Add(time.Duration(gapHours * float64(time.Hour)))
	}
	return out
}

// findTwinServers looks for two servers of the same model and product line
// in the same datacenter at nearby rack positions — the paper's "almost
// identical" twins.
func findTwinServers(rng *rand.Rand, fleet *topo.Fleet) *[2]*topo.Server {
	for attempt := 0; attempt < 128; attempt++ {
		a := &fleet.Servers[rng.Intn(fleet.NumServers())]
		if a.Inventory[fot.HDD] == 0 {
			continue
		}
		for _, b := range fleet.ServersByIDC(a.IDC) {
			if b.HostID != a.HostID &&
				b.Model == a.Model &&
				b.ProductLine == a.ProductLine &&
				b.Inventory[fot.HDD] > 0 {
				return &[2]*topo.Server{a, b}
			}
		}
	}
	return nil
}
